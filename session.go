package dynq

import (
	"fmt"

	"dynq/internal/core"
	"dynq/internal/geom"
	"dynq/internal/trajectory"
)

// Waypoint is one key snapshot of an observer trajectory: the view
// rectangle the observer sees at time T. Between waypoints the view's
// borders interpolate linearly.
type Waypoint struct {
	T    float64
	View Rect
}

// PredictiveOptions tune a predictive session.
type PredictiveOptions struct {
	// Live subscribes the session to concurrent insertions so objects
	// reported after the session started still appear in its results.
	Live bool
	// RebuildOnRootSplit re-seeds the session's queue when the index
	// grows a new root instead of patching it incrementally.
	RebuildOnRootSplit bool
	// Slack inflates every waypoint view by δ(t), turning the session
	// into a semi-predictive query (SPDQ): the observer may deviate from
	// the registered trajectory by up to Slack(t) without missing
	// results. Nil means exact.
	Slack func(t float64) float64
}

// PredictiveSession is a running predictive dynamic query (PDQ). Results
// are pulled with Next or Fetch in order of appearance; each index node
// is read at most once over the session's lifetime. Not safe for
// concurrent use by multiple goroutines.
type PredictiveSession struct {
	pdq *core.PDQ
}

// buildTrajectory converts API waypoints into the core trajectory form,
// applying the optional slack inflation. Shared by the single-tree and
// sharded predictive queries.
func buildTrajectory(waypoints []Waypoint, dims int, slack func(t float64) float64) (*trajectory.Trajectory, error) {
	keys := make([]trajectory.Key, len(waypoints))
	for i, w := range waypoints {
		box, err := toBoxDims(w.View, dims)
		if err != nil {
			return nil, fmt.Errorf("waypoint %d: %w", i, err)
		}
		keys[i] = trajectory.Key{T: w.T, Window: box}
	}
	traj, err := trajectory.New(keys)
	if err != nil {
		return nil, err
	}
	if slack != nil {
		return traj.Inflate(slack)
	}
	return traj, nil
}

// PredictiveQuery registers an observer trajectory and starts a
// predictive dynamic query over it.
func (db *DB) PredictiveQuery(waypoints []Waypoint, opts PredictiveOptions) (*PredictiveSession, error) {
	traj, err := buildTrajectory(waypoints, db.Dims(), opts.Slack)
	if err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	pdq, err := core.NewPDQ(db.tree, traj, core.PDQOptions{
		LiveUpdates:        opts.Live,
		RebuildOnRootSplit: opts.RebuildOnRootSplit,
	}, &db.counters)
	if err != nil {
		return nil, err
	}
	return &PredictiveSession{pdq: pdq}, nil
}

// Next returns the next object becoming visible during [t0, t1], or nil
// when no further object appears in that window. Windows must advance
// monotonically along the trajectory.
func (s *PredictiveSession) Next(t0, t1 float64) (*Result, error) {
	r, err := s.pdq.GetNext(t0, t1)
	if err != nil || r == nil {
		return nil, err
	}
	out := fromResult(*r)
	return &out, nil
}

// Fetch returns every object becoming visible during [t0, t1] — the
// per-frame fetch loop of a rendering client.
func (s *PredictiveSession) Fetch(t0, t1 float64) ([]Result, error) {
	rs, err := s.pdq.Drain(t0, t1)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = fromResult(r)
	}
	return out, nil
}

// Close releases the session (and its live-update subscription).
func (s *PredictiveSession) Close() { s.pdq.Close() }

// NonPredictiveOptions tune a non-predictive session.
type NonPredictiveOptions struct {
	// TrackIDs suppresses re-delivery by remembering the object ids the
	// previous snapshot's traversal produced, instead of the default
	// geometric test.
	TrackIDs bool
	// ExactAnswers filters results with the exact trajectory test at the
	// cost of disabling node-discarding (see package core).
	ExactAnswers bool
}

// NonPredictiveSession is a running non-predictive dynamic query (NPDQ):
// a stream of snapshot queries where each answer contains only objects
// not delivered by the immediately preceding snapshot. Not safe for
// concurrent use by multiple goroutines.
type NonPredictiveSession struct {
	db   *DB
	npdq *core.NPDQ
}

// NonPredictiveQuery starts a non-predictive dynamic query session.
func (db *DB) NonPredictiveQuery(opts NonPredictiveOptions) *NonPredictiveSession {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return &NonPredictiveSession{
		db: db,
		npdq: core.NewNPDQ(db.tree, core.NPDQOptions{
			TrackIDs:     opts.TrackIDs,
			ExactAnswers: opts.ExactAnswers,
		}, &db.counters),
	}
}

// Snapshot evaluates the next snapshot of the dynamic query and returns
// the additional answers not delivered by the previous snapshot.
func (s *NonPredictiveSession) Snapshot(view Rect, t0, t1 float64) ([]Result, error) {
	box, err := s.db.toBox(view)
	if err != nil {
		return nil, err
	}
	rs, err := s.npdq.Next(box, geom.Interval{Lo: t0, Hi: t1})
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = fromResult(r)
	}
	return out, nil
}

// Reset forgets the previous snapshot (observer teleported): the next
// Snapshot returns a full answer.
func (s *NonPredictiveSession) Reset() { s.npdq.Reset() }
