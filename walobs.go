package dynq

import (
	"time"

	"dynq/internal/obs"
)

// WALInfo is a point-in-time view of the armed write-ahead log's header
// state, for inspection tools (dqload inspect prints it next to the
// recovery report).
type WALInfo struct {
	Path          string
	Epoch         uint64 // committed header sequence; stamps new records
	LastLSN       uint64 // highest LSN appended
	DurableLSN    uint64 // highest LSN known fsynced (or checkpointed)
	CheckpointLSN uint64 // records at or below it live in the base file
	LiveRecords   uint64 // records appended since the last checkpoint
	LiveBytes     int64  // encoded bytes of those records
	Size          int64  // total log file size, headers included
}

// WALInfo reports the armed write-ahead log's header state; ok is false
// when the database has no WAL.
func (db *DB) WALInfo() (WALInfo, bool) {
	if db.wal == nil {
		return WALInfo{}, false
	}
	return WALInfo{
		Path:          db.wal.Path(),
		Epoch:         db.wal.Epoch(),
		LastLSN:       db.wal.LastLSN(),
		DurableLSN:    db.wal.DurableLSN(),
		CheckpointLSN: db.wal.CheckpointLSN(),
		LiveRecords:   db.wal.CheckpointLag(),
		LiveBytes:     db.wal.LiveBytes(),
		Size:          db.wal.Size(),
	}, true
}

// WALTelemetry snapshots the armed write-ahead log's instrumentation —
// fsync latency, batch sizes, coalesce ratio, checkpoint state — with
// rolling histogram windows over the given spans. ok is false when the
// database has no WAL; the netq server uses that to omit the section.
func (db *DB) WALTelemetry(windows []time.Duration) (obs.WALTelemetry, bool) {
	if db.wal == nil {
		return obs.WALTelemetry{}, false
	}
	return db.wal.Telemetry(windows), true
}

// RegisterWALMetrics exposes the armed write-ahead log's histograms,
// counters, and gauges in a registry, reporting whether a WAL was
// present to register.
func (db *DB) RegisterWALMetrics(reg *obs.Registry) bool {
	if db.wal == nil {
		return false
	}
	db.wal.RegisterMetrics(reg)
	return true
}
