package dynq

import "testing"

// TestChaosSoakShort runs a condensed chaos soak — crash cycles, torn
// log tails, sticky and transient disk-full episodes on both volumes,
// probe-driven healing, and clean scrub passes — and asserts every
// invariant the full dqbench -chaos run enforces.
func TestChaosSoakShort(t *testing.T) {
	rep, err := ChaosSoak(ChaosSoakOptions{
		Cycles: 15,
		Dir:    t.TempDir(),
		Log:    t.Logf,
	})
	if err != nil {
		t.Fatalf("chaos soak: %v (report: %s)", err, rep)
	}
	t.Logf("report: %s", rep)
	if rep.LostAcked != 0 {
		t.Errorf("lost %d acknowledged batches", rep.LostAcked)
	}
	if rep.WrongAnswers != 0 {
		t.Errorf("%d wrong answers", rep.WrongAnswers)
	}
	if rep.WALBoundViolations != 0 {
		t.Errorf("%d WAL bound violations", rep.WALBoundViolations)
	}
	if rep.UntypedWriteErrors != 0 {
		t.Errorf("%d fault-path errors missing their typed sentinel", rep.UntypedWriteErrors)
	}
	if rep.ScrubCorruptions != 0 {
		t.Errorf("scrub reported %d corruptions on clean data", rep.ScrubCorruptions)
	}
	if rep.DiskFullEpisodes == 0 || rep.TransientFaults == 0 {
		t.Errorf("fault schedule did not run: %d sticky episodes, %d transients",
			rep.DiskFullEpisodes, rep.TransientFaults)
	}
	if rep.Degradations == 0 || rep.Heals < rep.Degradations {
		t.Errorf("healing incomplete: %d degradations, %d heals", rep.Degradations, rep.Heals)
	}
	if rep.AutoCheckpoints == 0 {
		t.Errorf("maintenance loop took no auto-checkpoints")
	}
	if rep.ScrubPasses == 0 {
		t.Errorf("no scrub passes completed")
	}
}
