package dynq

import (
	"errors"
	"path/filepath"
	"testing"
)

// TestDegradedModeTripsAfterConsecutiveWriteFailures: storage write
// failures must flip the database to read-only at the configured
// threshold, reads must keep working, and clearing the flag restores
// writes.
func TestDegradedModeTripsAfterConsecutiveWriteFailures(t *testing.T) {
	path := filepath.Join(t.TempDir(), "degrade.dynq")
	if err := rebuildFile(path, nil, 0); err != nil {
		t.Fatalf("seed: %v", err)
	}
	db, fs, faults, err := openFaulted(path, nil, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer fs.Crash()
	db.health.after = 3 // override openFaulted's "never degrade"

	if err := db.Insert(1, Segment{T0: 0, T1: 1, From: []float64{1, 1}, To: []float64{1, 1}}); err != nil {
		t.Fatalf("healthy insert: %v", err)
	}

	faults.ArmWrites(1)
	faults.ArmAllocs(1)
	var sawReadOnly bool
	for i := 0; i < 10; i++ {
		err := db.Insert(ObjectID(100+i), Segment{T0: 0, T1: 1, From: []float64{2, 2}, To: []float64{2, 2}})
		if err == nil {
			t.Fatalf("insert %d succeeded despite armed write faults", i)
		}
		if errors.Is(err, ErrReadOnly) {
			sawReadOnly = true
			if i < 2 {
				t.Fatalf("degraded after only %d failures, threshold is 3", i+1)
			}
			break
		}
	}
	if !sawReadOnly {
		t.Fatal("10 consecutive write failures never tripped degraded mode")
	}
	if !db.Degraded() {
		t.Fatal("Degraded() is false after the trip")
	}

	// Reads still answer while degraded.
	if _, err := db.Snapshot(Rect{Min: []float64{0, 0}, Max: []float64{10, 10}}, 0, 1); err != nil {
		t.Fatalf("read while degraded: %v", err)
	}
	// Sync is a mutation: gated too.
	if err := db.Sync(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Sync while degraded: got %v, want ErrReadOnly", err)
	}

	faults.Disarm()
	db.SetReadOnly(false)
	if db.Degraded() {
		t.Fatal("SetReadOnly(false) did not clear the flag")
	}
	if err := db.Insert(200, Segment{T0: 0, T1: 1, From: []float64{3, 3}, To: []float64{3, 3}}); err != nil {
		t.Fatalf("insert after clearing degraded mode: %v", err)
	}
}

// TestDegradeDisabled: a negative DegradeAfter must never trip, and
// ErrNotFound from Delete must not count as a storage failure.
func TestDegradeDisabled(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nodegrade.dynq")
	if err := rebuildFile(path, nil, 0); err != nil {
		t.Fatalf("seed: %v", err)
	}
	db, fs, faults, err := openFaulted(path, nil, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer fs.Crash()
	// openFaulted sets after = -1 (never degrade); hammer it.
	faults.ArmWrites(1)
	faults.ArmAllocs(1)
	for i := 0; i < 8; i++ {
		if err := db.Insert(ObjectID(i), Segment{T0: 0, T1: 1, From: []float64{1, 1}, To: []float64{1, 1}}); err == nil {
			t.Fatal("insert succeeded despite armed faults")
		} else if errors.Is(err, ErrReadOnly) {
			t.Fatalf("degraded despite DegradeAfter < 0 (failure %d)", i)
		}
	}
}

// TestDeleteNotFoundDoesNotDegrade: a missing segment is an answer, not
// a storage failure — it must never advance the degrade counter.
func TestDeleteNotFoundDoesNotDegrade(t *testing.T) {
	db, err := Open(Options{DegradeAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 5; i++ {
		err := db.Delete(ObjectID(i), 0)
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("delete of absent segment: got %v, want ErrNotFound", err)
		}
	}
	if db.Degraded() {
		t.Fatal("ErrNotFound deletes degraded the database")
	}
}
