package dynq

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"

	"dynq/internal/pager"
	"dynq/internal/rtree"
)

// SoakOptions configure FaultSoak, the crash/reopen loop behind
// dqbench -faults.
type SoakOptions struct {
	// Cycles is the number of crash/reopen iterations (default 50).
	Cycles int
	// Seed drives the workload, the fault schedule, and the query mix;
	// the same seed replays the same soak (default 1).
	Seed int64
	// Batch is the number of segments inserted per cycle (default 32).
	Batch int
	// BufferPages is the write-phase buffer capacity (default 256). A
	// buffer makes crash points interesting: dirty pages reach disk in a
	// burst at Sync, which is where torn writes bite.
	BufferPages int
	// MaxSegments rotates to a fresh file once the committed set grows
	// past it, bounding per-cycle cost (default 4096).
	MaxSegments int
	// Plan is the fault schedule for the write phase; nil uses
	// DefaultSoakPlan. Plan.Seed is re-derived per cycle from Seed.
	Plan *pager.FaultPlan
	// Dir is the working directory (default: a fresh temp dir, removed
	// afterwards).
	Dir string
	// Log, when set, receives one progress line per 25 cycles.
	Log func(format string, args ...any)
}

// DefaultSoakPlan is the fault mix the soak uses when none is given:
// occasional torn writes and failed syncs (the crash-consistency
// killers), rarer plain I/O errors, and a trickle of bit rot.
func DefaultSoakPlan() pager.FaultPlan {
	return pager.FaultPlan{
		ReadErr:   0.01,
		WriteErr:  0.02,
		SyncErr:   0.05,
		TornWrite: 0.05,
		BitFlip:   0.01,
	}
}

// SoakReport summarizes a FaultSoak run. The invariant the soak asserts
// is WrongAnswers == 0: every cycle either recovers the exact committed
// state (verified against a never-crashed in-memory replica across all
// four query types) or reports a typed corruption error and is rebuilt.
type SoakReport struct {
	Cycles             int // crash/reopen iterations executed
	CommitsSucceeded   int // cycles whose batch committed durably
	InsertFailures     int // cycles aborted by an injected insert fault
	SyncFailures       int // cycles whose Sync failed (state rolls back)
	CleanRecoveries    int // reopens that verified and matched committed state
	DetectedCorruption int // reopens that reported a typed corruption error
	WrongAnswers       int // query answers that differed from the replica (MUST be 0)
	QueriesCompared    int // individual query comparisons performed
	PagesVerified      int // pages checksum+epoch-verified across recoveries
	Rebuilds           int // files rebuilt from committed state after corruption
	Rotations          int // fresh-file rotations after MaxSegments
}

func (r SoakReport) String() string {
	return fmt.Sprintf(
		"%d cycles: %d committed, %d insert faults, %d sync faults | %d clean recoveries (%d pages verified, %d queries compared), %d detected corruptions (%d rebuilds), %d rotations | %d wrong answers",
		r.Cycles, r.CommitsSucceeded, r.InsertFailures, r.SyncFailures,
		r.CleanRecoveries, r.PagesVerified, r.QueriesCompared,
		r.DetectedCorruption, r.Rebuilds, r.Rotations, r.WrongAnswers)
}

// soakSeg is one committed (object, segment) pair, replayed in order to
// rebuild state deterministically.
type soakSeg struct {
	id  ObjectID
	seg Segment
}

// FaultSoak runs crash/reopen cycles against a file-backed database
// under an injected-fault plan: each cycle inserts a batch, attempts a
// Sync, hard-crashes the file (no commit), reopens with full recovery,
// and — when recovery reports a clean state — verifies Snapshot, KNN,
// predictive, and non-predictive answers against an in-memory replica
// that never crashed. It returns an error only for harness failures
// (untyped reopen errors, query infrastructure errors); injected faults
// and detected corruption are normal outcomes counted in the report.
func FaultSoak(opts SoakOptions) (SoakReport, error) {
	if opts.Cycles <= 0 {
		opts.Cycles = 50
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Batch <= 0 {
		opts.Batch = 32
	}
	if opts.BufferPages <= 0 {
		opts.BufferPages = 256
	}
	if opts.MaxSegments <= 0 {
		opts.MaxSegments = 4096
	}
	plan := DefaultSoakPlan()
	if opts.Plan != nil {
		plan = *opts.Plan
	}
	dir := opts.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "dynq-soak")
		if err != nil {
			return SoakReport{}, err
		}
		defer os.RemoveAll(dir)
	}
	path := filepath.Join(dir, "soak.dynq")

	var rep SoakReport
	var committed []soakSeg
	replica, err := Open(Options{})
	if err != nil {
		return rep, err
	}
	defer func() { replica.Close() }()
	if err := rebuildFile(path, committed, opts.BufferPages); err != nil {
		return rep, err
	}

	wrand := rand.New(rand.NewSource(opts.Seed))
	var nextID ObjectID
	for cycle := 0; cycle < opts.Cycles; cycle++ {
		rep.Cycles++
		batch := genSoakBatch(wrand, opts.Batch, &nextID)
		cyclePlan := plan
		cyclePlan.Seed = uint64(opts.Seed)*0x9E3779B97F4A7C15 + uint64(cycle)

		// Write phase under faults, ending in a hard crash.
		db, fs, _, err := openFaulted(path, &cyclePlan, opts.BufferPages)
		if err != nil {
			return rep, fmt.Errorf("cycle %d: fault-free reopen for writes failed: %w", cycle, err)
		}
		ok := true
		for _, s := range batch {
			if err := db.Insert(s.id, s.seg); err != nil {
				rep.InsertFailures++
				ok = false
				break
			}
		}
		if ok {
			if err := db.Sync(); err != nil {
				rep.SyncFailures++
				ok = false
			}
		}
		if err := fs.Crash(); err != nil {
			return rep, fmt.Errorf("cycle %d: crash: %w", cycle, err)
		}
		if ok {
			// The Sync committed: the batch is durable by contract.
			committed = append(committed, batch...)
			for _, s := range batch {
				if err := replica.Insert(s.id, s.seg); err != nil {
					return rep, fmt.Errorf("cycle %d: replica insert: %w", cycle, err)
				}
			}
			rep.CommitsSucceeded++
		}

		// Recovery phase, fault-free.
		rdb, rrep, err := OpenFileRecover(path)
		if err != nil {
			if !isTypedCorruption(err) {
				return rep, fmt.Errorf("cycle %d: reopen failed with untyped error: %w", cycle, err)
			}
			rep.DetectedCorruption++
			rep.Rebuilds++
			if err := rebuildFile(path, committed, opts.BufferPages); err != nil {
				return rep, fmt.Errorf("cycle %d: rebuild after corruption: %w", cycle, err)
			}
		} else {
			rep.CleanRecoveries++
			rep.PagesVerified += rrep.PagesChecked
			qrand := rand.New(rand.NewSource(opts.Seed ^ (int64(cycle)+1)*0x5DEECE66D))
			wrong, compared, err := compareAnswers(rdb, replica, qrand)
			if cerr := rdb.Close(); cerr != nil && err == nil {
				err = cerr
			}
			if err != nil {
				return rep, fmt.Errorf("cycle %d: query comparison: %w", cycle, err)
			}
			rep.WrongAnswers += wrong
			rep.QueriesCompared += compared
		}

		if len(committed) >= opts.MaxSegments {
			committed = committed[:0]
			replica.Close()
			if replica, err = Open(Options{}); err != nil {
				return rep, err
			}
			if err := rebuildFile(path, committed, opts.BufferPages); err != nil {
				return rep, err
			}
			rep.Rotations++
		}
		if opts.Log != nil && (cycle+1)%25 == 0 {
			opts.Log("soak cycle %d/%d: %s", cycle+1, opts.Cycles, rep)
		}
	}
	return rep, nil
}

// isTypedCorruption reports whether a reopen failure is one of the
// typed corruption errors recovery is allowed to return.
func isTypedCorruption(err error) bool {
	return errors.Is(err, ErrCorrupt) ||
		errors.Is(err, pager.ErrCorruptPage) ||
		errors.Is(err, pager.ErrCorruptHeader)
}

// openFaulted reopens the committed file with a scripted FaultStore
// interposed between the tree and the FileStore, so the write phase sees
// injected faults while the file beneath stays a real FileStore the
// harness can Crash.
func openFaulted(path string, plan *pager.FaultPlan, bufferPages int) (*DB, *pager.FileStore, *pager.FaultStore, error) {
	fs, err := pager.OpenFileStore(path)
	if err != nil {
		return nil, nil, nil, err
	}
	faults := pager.NewFaultStore(fs)
	faults.Script(plan)
	m, appliedLSN, err := decodeMeta(fs.Aux())
	if err != nil {
		fs.Close()
		return nil, nil, nil, err
	}
	tree, err := rtree.Restore(m.Config, faults, m.Root, m.Height, m.Size, m.ModSeq)
	if err != nil {
		fs.Close()
		return nil, nil, nil, err
	}
	if bufferPages > 0 {
		if err := tree.UseBuffer(bufferPages); err != nil {
			fs.Close()
			return nil, nil, nil, err
		}
	}
	db := &DB{tree: tree, cfg: m.Config, store: faults, bufferPages: bufferPages, appliedLSN: appliedLSN}
	db.health.after = -1 // the soak handles failures itself
	tree.SetCounters(&db.counters)
	return db, fs, faults, nil
}

// rebuildFile recreates path from the committed sequence with the same
// insert order the replica saw, so both trees are structurally
// identical.
func rebuildFile(path string, committed []soakSeg, bufferPages int) error {
	db, err := Open(Options{Path: path, BufferPages: bufferPages})
	if err != nil {
		return err
	}
	for _, s := range committed {
		if err := db.Insert(s.id, s.seg); err != nil {
			db.Close()
			return err
		}
	}
	if err := db.Sync(); err != nil {
		db.Close()
		return err
	}
	return db.Close()
}

// genSoakBatch produces the next deterministic batch of motion segments
// in a [0,100]^2 space over t in [0,200].
func genSoakBatch(r *rand.Rand, n int, nextID *ObjectID) []soakSeg {
	batch := make([]soakSeg, n)
	for i := range batch {
		id := *nextID
		*nextID++
		t0 := r.Float64() * 200
		from := []float64{r.Float64() * 100, r.Float64() * 100}
		to := []float64{from[0] + r.Float64()*10 - 5, from[1] + r.Float64()*10 - 5}
		batch[i] = soakSeg{
			id: id,
			seg: Segment{
				T0: t0, T1: t0 + r.Float64()*5,
				From: from, To: to,
			},
		}
	}
	return batch
}

// compareAnswers runs the four query types against the recovered
// database and the replica and counts mismatches. Both indexes were
// built by the same insert sequence (per shard, for sharded backends),
// so answers — including order-sensitive KNN ties — must be
// bit-identical.
func compareAnswers(got, want Database, r *rand.Rand) (wrong, compared int, err error) {
	randRect := func() Rect {
		x, y := r.Float64()*90, r.Float64()*90
		return Rect{Min: []float64{x, y}, Max: []float64{x + 5 + r.Float64()*20, y + 5 + r.Float64()*20}}
	}
	randT := func() (float64, float64) {
		t0 := r.Float64() * 190
		return t0, t0 + 1 + r.Float64()*20
	}

	for i := 0; i < 3; i++ { // Snapshot
		view := randRect()
		t0, t1 := randT()
		a, err := got.Snapshot(view, t0, t1)
		if err != nil {
			return wrong, compared, err
		}
		b, err := want.Snapshot(view, t0, t1)
		if err != nil {
			return wrong, compared, err
		}
		compared++
		if !resultsEqual(a, b) {
			wrong++
		}
	}

	for i := 0; i < 2; i++ { // KNN
		p := []float64{r.Float64() * 100, r.Float64() * 100}
		t := r.Float64() * 200
		a, err := got.KNN(p, t, 5)
		if err != nil {
			return wrong, compared, err
		}
		b, err := want.KNN(p, t, 5)
		if err != nil {
			return wrong, compared, err
		}
		compared++
		if !reflect.DeepEqual(a, b) {
			wrong++
		}
	}

	{ // Predictive (PDQ)
		v1, v2 := randRect(), randRect()
		wps := []Waypoint{{T: 0, View: v1}, {T: 200, View: v2}}
		a, err := fetchPDQ(got, wps)
		if err != nil {
			return wrong, compared, err
		}
		b, err := fetchPDQ(want, wps)
		if err != nil {
			return wrong, compared, err
		}
		compared++
		if !resultsEqual(a, b) {
			wrong++
		}
	}

	{ // Non-predictive (NPDQ), two frames sharing session state
		v1 := randRect()
		v2 := Rect{
			Min: []float64{v1.Min[0] + 2, v1.Min[1] + 2},
			Max: []float64{v1.Max[0] + 2, v1.Max[1] + 2},
		}
		t0, t1 := randT()
		sa := got.NonPredictive(NonPredictiveOptions{})
		sb := want.NonPredictive(NonPredictiveOptions{})
		for _, fr := range []struct {
			v      Rect
			lo, hi float64
		}{{v1, t0, t1}, {v2, t1, t1 + 10}} {
			a, err := sa.Snapshot(fr.v, fr.lo, fr.hi)
			if err != nil {
				return wrong, compared, err
			}
			b, err := sb.Snapshot(fr.v, fr.lo, fr.hi)
			if err != nil {
				return wrong, compared, err
			}
			compared++
			if !resultsEqual(a, b) {
				wrong++
			}
		}
	}
	return wrong, compared, nil
}

func fetchPDQ(db Database, wps []Waypoint) ([]Result, error) {
	s, err := db.Predictive(wps, PredictiveOptions{})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.Fetch(0, 200)
}

// resultsEqual compares result sets order-insensitively (sessions may
// deliver in traversal order) but value-exactly.
func resultsEqual(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(r Result) [3]float64 {
		return [3]float64{float64(r.ID), r.Segment.T0, r.Appear}
	}
	sortResults := func(rs []Result) []Result {
		out := append([]Result(nil), rs...)
		sort.Slice(out, func(i, j int) bool {
			ki, kj := key(out[i]), key(out[j])
			for d := 0; d < 3; d++ {
				if ki[d] != kj[d] {
					return ki[d] < kj[d]
				}
			}
			return false
		})
		return out
	}
	return reflect.DeepEqual(sortResults(a), sortResults(b))
}
