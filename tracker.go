package dynq

import (
	"fmt"
	"sync"

	"dynq/internal/geom"
	"dynq/internal/stats"
	"dynq/internal/tpr"
	"dynq/internal/trajectory"
)

// TrackerOptions configure a Tracker.
type TrackerOptions struct {
	// Dims is the spatial dimensionality (default 2).
	Dims int
	// Horizon is the anticipation window the index optimizes for — choose
	// it near the expected time between motion updates (default 2).
	Horizon float64
	// Fanout is the node capacity (default 32).
	Fanout int
}

// Tracker indexes the *current* motion state of a fleet — one (position,
// velocity) entry per object — and answers questions about the present
// and the anticipated future: who is (or will be) inside a window, now,
// during an interval, or along an observer's trajectory. It is the
// TPR-tree companion (the paper's future work (iii)) to DB, which stores
// the full motion history.
//
// Safe for concurrent use: queries (At, During, Along, Len, Now) hold a
// shared lock and run in parallel; Update and Remove hold the exclusive
// lock.
type Tracker struct {
	mu       sync.RWMutex
	tree     *tpr.Tree
	counters stats.Counters
	dims     int
}

// Anticipated is one Tracker answer: an object's current motion state and
// the time interval during which it satisfies the query, assuming it
// keeps its course.
type Anticipated struct {
	ID       ObjectID
	Time     float64 // reference time of the state
	Pos, Vel []float64
	Appear   float64
	Vanish   float64
}

// NewTracker creates an empty current-state index.
func NewTracker(opts TrackerOptions) (*Tracker, error) {
	if opts.Dims == 0 {
		opts.Dims = 2
	}
	if opts.Horizon == 0 {
		opts.Horizon = 2
	}
	if opts.Fanout == 0 {
		opts.Fanout = 32
	}
	tree, err := tpr.New(opts.Dims, opts.Horizon, opts.Fanout)
	if err != nil {
		return nil, err
	}
	return &Tracker{tree: tree, dims: opts.Dims}, nil
}

// Update records an object's latest motion state: at time t it is at pos
// moving with velocity vel. Updates for one object must not go back in
// time.
func (tk *Tracker) Update(id ObjectID, t float64, pos, vel []float64) error {
	tk.mu.Lock()
	defer tk.mu.Unlock()
	return tk.tree.Update(tpr.Entry{
		ID:      id,
		RefTime: t,
		Pos:     geom.Point(pos),
		Vel:     geom.Point(vel),
	})
}

// Remove forgets an object, reporting whether it was tracked.
func (tk *Tracker) Remove(id ObjectID) bool {
	tk.mu.Lock()
	defer tk.mu.Unlock()
	return tk.tree.Remove(id)
}

// Len reports how many objects are tracked.
func (tk *Tracker) Len() int {
	tk.mu.RLock()
	defer tk.mu.RUnlock()
	return tk.tree.Len()
}

// Now returns the latest update time; queries must not start before it.
func (tk *Tracker) Now() float64 {
	tk.mu.RLock()
	defer tk.mu.RUnlock()
	return tk.tree.Now()
}

// At returns every object anticipated inside the view at time t.
func (tk *Tracker) At(view Rect, t float64) ([]Anticipated, error) {
	return tk.During(view, t, t)
}

// During returns every object anticipated inside the view at some time
// in [t0, t1], each with the interval it stays inside.
func (tk *Tracker) During(view Rect, t0, t1 float64) ([]Anticipated, error) {
	box, err := toTrackerBox(view, tk.dims)
	if err != nil {
		return nil, err
	}
	tk.mu.RLock()
	defer tk.mu.RUnlock()
	ms, err := tk.tree.SearchDuring(box, geom.Interval{Lo: t0, Hi: t1}, &tk.counters)
	if err != nil {
		return nil, err
	}
	return fromMatches(ms), nil
}

// Along returns every object anticipated to enter the moving view defined
// by the waypoints — a predictive dynamic query against current states.
func (tk *Tracker) Along(waypoints []Waypoint) ([]Anticipated, error) {
	keys := make([]trajectory.Key, len(waypoints))
	for i, w := range waypoints {
		box, err := toTrackerBox(w.View, tk.dims)
		if err != nil {
			return nil, err
		}
		keys[i] = trajectory.Key{T: w.T, Window: box}
	}
	traj, err := trajectory.New(keys)
	if err != nil {
		return nil, err
	}
	tk.mu.RLock()
	defer tk.mu.RUnlock()
	ms, err := tk.tree.SearchTrajectory(traj, &tk.counters)
	if err != nil {
		return nil, err
	}
	return fromMatches(ms), nil
}

// Cost returns the tracker's accumulated query cost.
func (tk *Tracker) Cost() CostReport {
	s := tk.counters.Snapshot()
	return CostReport{
		DiskReads:     s.Reads(),
		LeafReads:     s.LeafReads,
		InternalReads: s.InternalReads,
		DistanceComps: s.DistanceComps,
		Results:       s.Results,
	}
}

// ResetCost zeroes the tracker's cost counters.
func (tk *Tracker) ResetCost() { tk.counters.Reset() }

func toTrackerBox(r Rect, dims int) (geom.Box, error) {
	if len(r.Min) != dims || len(r.Max) != dims {
		return nil, fmt.Errorf("dynq: rect must have %d dims", dims)
	}
	b := make(geom.Box, dims)
	for i := 0; i < dims; i++ {
		b[i] = geom.Interval{Lo: r.Min[i], Hi: r.Max[i]}
	}
	return b, nil
}

func fromMatches(ms []tpr.Match) []Anticipated {
	out := make([]Anticipated, len(ms))
	for i, m := range ms {
		out[i] = Anticipated{
			ID:     m.Entry.ID,
			Time:   m.Entry.RefTime,
			Pos:    append([]float64(nil), m.Entry.Pos...),
			Vel:    append([]float64(nil), m.Entry.Vel...),
			Appear: m.Overlap.Lo,
			Vanish: m.Overlap.Hi,
		}
	}
	return out
}
