package dynq

import (
	"math"
	"testing"
)

func TestTrackerBasics(t *testing.T) {
	tk, err := NewTracker(TrackerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tk.Len() != 0 {
		t.Error("new tracker should be empty")
	}
	// A convoy heading east and one stray heading north.
	for i := 0; i < 5; i++ {
		err := tk.Update(ObjectID(i), 0, []float64{float64(i * 2), 50}, []float64{1, 0})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := tk.Update(99, 0, []float64{50, 0}, []float64{0, 2}); err != nil {
		t.Fatal(err)
	}
	if tk.Len() != 6 {
		t.Fatalf("len = %d", tk.Len())
	}
	// Who is in [10,20]×[45,55] at t=10? Convoy members at x0+10 ∈ [10,20].
	got, err := tk.At(Rect{Min: []float64{10, 45}, Max: []float64{20, 55}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("at t=10: %d objects, want the 5 convoy members: %v", len(got), got)
	}
	// The stray reaches y∈[45,55] when 2t ∈ [45,55] ⇒ t ∈ [22.5,27.5].
	got, err = tk.During(Rect{Min: []float64{45, 45}, Max: []float64{55, 55}}, 20, 30)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range got {
		if a.ID == 99 {
			found = true
			if math.Abs(a.Appear-22.5) > 1e-9 || math.Abs(a.Vanish-27.5) > 1e-9 {
				t.Errorf("stray episode = [%g,%g], want [22.5,27.5]", a.Appear, a.Vanish)
			}
		}
	}
	if !found {
		t.Error("stray not anticipated in the window")
	}
	// Along a trajectory paralleling the convoy: everyone shows up.
	along, err := tk.Along([]Waypoint{
		{T: 0, View: Rect{Min: []float64{0, 45}, Max: []float64{12, 55}}},
		{T: 40, View: Rect{Min: []float64{40, 45}, Max: []float64{52, 55}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := map[ObjectID]bool{}
	for _, a := range along {
		ids[a.ID] = true
	}
	for i := 0; i < 5; i++ {
		if !ids[ObjectID(i)] {
			t.Errorf("convoy member %d missing from trajectory query", i)
		}
	}
	if tk.Cost().DiskReads == 0 {
		t.Error("tracker cost accounting empty")
	}
	tk.ResetCost()
	if tk.Cost().DiskReads != 0 {
		t.Error("ResetCost failed")
	}
	// Validation paths.
	if _, err := tk.At(Rect{Min: []float64{0}, Max: []float64{1}}, 50); err == nil {
		t.Error("bad rect should be rejected")
	}
	if _, err := tk.Along([]Waypoint{{T: 50, View: Rect{Min: []float64{0}, Max: []float64{1}}}}); err == nil {
		t.Error("bad waypoint rect should be rejected")
	}
	if !tk.Remove(99) || tk.Remove(99) {
		t.Error("remove semantics wrong")
	}
	if tk.Now() != 0 {
		t.Errorf("now = %g", tk.Now())
	}
}

func TestTrackerDefaultsAndErrors(t *testing.T) {
	if _, err := NewTracker(TrackerOptions{Dims: -1}); err == nil {
		t.Error("negative dims should be rejected")
	}
	tk, err := NewTracker(TrackerOptions{Dims: 3, Horizon: 5, Fanout: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Update(1, 0, []float64{1, 2, 3}, []float64{0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	got, err := tk.At(Rect{Min: []float64{0, 0, 0}, Max: []float64{5, 5, 5}}, 1)
	if err != nil || len(got) != 1 {
		t.Fatalf("3-d tracker query = %v, %v", got, err)
	}
}
