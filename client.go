package dynq

import "dynq/internal/cache"

// ViewCache is the client-side companion of a dynamic query session
// (Section 4.1 of the paper): the server sends each object once, together
// with its disappearance time, and the client keeps it cached until then.
// Applying every batch of session results and advancing the clock each
// frame maintains the complete set of currently visible objects without
// the server ever re-sending one.
type ViewCache struct {
	c        *cache.Cache[Result]
	episodes int
}

// NewViewCache creates an empty client cache.
func NewViewCache() *ViewCache {
	return &ViewCache{c: cache.New[Result]()}
}

// Apply upserts a batch of query results. A result for an object whose
// cached visibility episode is still open (the incoming Appear is not
// after the cached Disappear) is a re-announcement of that same episode —
// PDQ can re-send one when a concurrent insert lands mid-frame — and is
// merged into it: the cache keeps the earliest appearance and the latest
// disappearance, so a stale re-send can never shrink the deadline, and
// the episode is not counted twice. A result starting strictly after the
// cached episode ends (or for an uncached object) opens a new episode.
func (v *ViewCache) Apply(results []Result) {
	for _, r := range results {
		if cur, ok := v.c.Get(r.ID); ok && r.Appear <= cur.Disappear {
			if cur.Appear < r.Appear {
				r.Appear = cur.Appear
			}
			if cur.Disappear > r.Disappear {
				r.Disappear = cur.Disappear
			}
			v.c.Put(r.ID, r, r.Disappear)
			continue
		}
		v.episodes++
		v.c.Put(r.ID, r, r.Disappear)
	}
}

// Episodes reports how many distinct visibility episodes the cache has
// admitted since creation: re-announcements of an open episode do not
// count, an object re-entering the view after leaving it does.
func (v *ViewCache) Episodes() int { return v.episodes }

// Advance evicts everything that has left the view by time now,
// returning the evicted results.
func (v *ViewCache) Advance(now float64) []Result {
	return v.c.Advance(now)
}

// Visible returns the currently cached (visible) objects in unspecified
// order.
func (v *ViewCache) Visible() []Result { return v.c.Values() }

// Get returns the cached result for an object, if visible.
func (v *ViewCache) Get(id ObjectID) (Result, bool) { return v.c.Get(id) }

// Len reports how many objects are currently cached.
func (v *ViewCache) Len() int { return v.c.Len() }
