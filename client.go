package dynq

import "dynq/internal/cache"

// ViewCache is the client-side companion of a dynamic query session
// (Section 4.1 of the paper): the server sends each object once, together
// with its disappearance time, and the client keeps it cached until then.
// Applying every batch of session results and advancing the clock each
// frame maintains the complete set of currently visible objects without
// the server ever re-sending one.
type ViewCache struct {
	c *cache.Cache[Result]
}

// NewViewCache creates an empty client cache.
func NewViewCache() *ViewCache {
	return &ViewCache{c: cache.New[Result]()}
}

// Apply upserts a batch of query results. Re-delivered objects (e.g. an
// object re-entering the view) refresh their disappearance deadline.
func (v *ViewCache) Apply(results []Result) {
	for _, r := range results {
		v.c.Put(r.ID, r, r.Disappear)
	}
}

// Advance evicts everything that has left the view by time now,
// returning the evicted results.
func (v *ViewCache) Advance(now float64) []Result {
	return v.c.Advance(now)
}

// Visible returns the currently cached (visible) objects in unspecified
// order.
func (v *ViewCache) Visible() []Result { return v.c.Values() }

// Get returns the cached result for an object, if visible.
func (v *ViewCache) Get(id ObjectID) (Result, bool) { return v.c.Get(id) }

// Len reports how many objects are currently cached.
func (v *ViewCache) Len() int { return v.c.Len() }
