module dynq

go 1.22
