package dynq

import (
	"testing"

	"dynq/internal/pager"
)

// TestFaultSoakShort runs a scaled-down version of the dqbench -faults
// soak: every cycle must either recover the exact committed state or
// report typed corruption — never a wrong answer.
func TestFaultSoakShort(t *testing.T) {
	cycles := 40
	if testing.Short() {
		cycles = 10
	}
	rep, err := FaultSoak(SoakOptions{
		Cycles: cycles,
		Seed:   7,
		Batch:  24,
		Dir:    t.TempDir(),
		Log:    t.Logf,
	})
	if err != nil {
		t.Fatalf("soak harness error: %v\nreport: %s", err, rep)
	}
	if rep.WrongAnswers != 0 {
		t.Fatalf("soak returned %d wrong answers: %s", rep.WrongAnswers, rep)
	}
	if rep.Cycles != cycles {
		t.Fatalf("ran %d cycles, want %d", rep.Cycles, cycles)
	}
	if rep.CleanRecoveries+rep.DetectedCorruption != cycles {
		t.Fatalf("every cycle must end in clean recovery or detected corruption: %s", rep)
	}
	if rep.CleanRecoveries == 0 {
		t.Fatalf("soak never recovered cleanly — fault mix too hot to test recovery: %s", rep)
	}
	t.Logf("soak: %s", rep)
}

// TestFaultSoakDeterministic replays the same seed twice and expects
// identical reports — the property that makes soak failures debuggable.
func TestFaultSoakDeterministic(t *testing.T) {
	run := func() SoakReport {
		rep, err := FaultSoak(SoakOptions{Cycles: 12, Seed: 42, Batch: 16, Dir: t.TempDir()})
		if err != nil {
			t.Fatalf("soak: %v", err)
		}
		return rep
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different soaks:\n  %s\n  %s", a, b)
	}
}

// TestFaultSoakAllFaultsOff is the control: with an empty plan every
// cycle commits and recovers cleanly.
func TestFaultSoakAllFaultsOff(t *testing.T) {
	rep, err := FaultSoak(SoakOptions{
		Cycles: 8,
		Seed:   3,
		Batch:  16,
		Plan:   &pager.FaultPlan{},
		Dir:    t.TempDir(),
	})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	if rep.DetectedCorruption != 0 || rep.WrongAnswers != 0 ||
		rep.CommitsSucceeded != rep.Cycles || rep.CleanRecoveries != rep.Cycles {
		t.Fatalf("fault-free soak should commit and recover every cycle: %s", rep)
	}
}
