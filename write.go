package dynq

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"dynq/internal/geom"
	"dynq/internal/rtree"
	"dynq/internal/stats"
)

// MotionUpdate is one element of a write batch: an insertion of a motion
// segment, or — with Delete set — the removal of the object's segment
// that starts at Segment.T0 (the other segment fields are ignored for
// deletions). A dead-reckoning re-announcement is its canonical source:
// delete the old prediction, insert the corrected one, in one batch.
type MotionUpdate struct {
	ID      ObjectID
	Segment Segment
	Delete  bool
}

// Durability says how hard ApplyUpdates must try before returning. The
// explicit levels are a contract: requesting DurabilityGroupCommit or
// DurabilitySync against a backend with no write-ahead log armed fails
// with ErrNoWAL rather than acknowledging an in-memory write as durable.
// Only the zero value adapts to whether a log is present.
type Durability int

const (
	// DurabilityDefault (the zero value) is the adaptive default: with a
	// WAL armed it behaves exactly like DurabilityGroupCommit; without
	// one the update is applied in memory and a later Sync persists it —
	// the pre-WAL contract. It is the only level that never fails for
	// lack of a log.
	DurabilityDefault Durability = iota
	// DurabilityGroupCommit returns once the batch's WAL record is
	// fsynced, coalescing with concurrent writers: the first waiter
	// leads a commit round, waits the group-commit window for others to
	// pile in, and one fsync covers them all. Throughput of batched
	// fsyncs, latency of at most one window plus one fsync. ErrNoWAL
	// without a log.
	DurabilityGroupCommit
	// DurabilitySync returns once the batch's WAL record is fsynced,
	// without waiting the coalescing window (it still shares an fsync
	// with any round already forming). Lowest latency per write.
	// ErrNoWAL without a log.
	DurabilitySync
	// DurabilityAsync returns as soon as the batch is applied in memory
	// and appended to the WAL's OS buffer; a crash may lose it. A later
	// synchronous write or Sync makes it durable retroactively (the log
	// is sequential: fsyncing record n covers every record before it).
	// Valid with or without a log.
	DurabilityAsync
)

// ErrNoWAL reports a write that requested explicit durability
// (DurabilityGroupCommit or DurabilitySync) against a database with no
// write-ahead log armed. The write is NOT applied: acknowledging it
// would silently downgrade a durability guarantee the caller asked for.
// Use DurabilityDefault (or DurabilityAsync) for backends that may run
// without a log, or arm one (Options.WALPath, ShardOptions.WAL).
var ErrNoWAL = errors.New("dynq: durability requested but no write-ahead log is armed")

// checkDurability enforces the Durability contract for a backend whose
// log may be absent: explicit sync levels require a WAL, and unknown
// levels are rejected before anything is applied.
func checkDurability(d Durability, walArmed bool) error {
	switch d {
	case DurabilityDefault, DurabilityAsync:
		return nil
	case DurabilityGroupCommit, DurabilitySync:
		if !walArmed {
			return ErrNoWAL
		}
		return nil
	default:
		return fmt.Errorf("dynq: unknown durability level %d", d)
	}
}

// WriteOptions carries per-write knobs for the context-aware write entry
// points (ApplyUpdates, InsertCtx, DeleteCtx, BulkLoadCtx), mirroring
// the read path's QueryOptions. The zero value — default durability
// (group commit when a WAL is armed), no deadline, no stats — matches
// the plain methods exactly.
type WriteOptions struct {
	// Durability selects how durable the write must be before the call
	// returns; see the Durability constants. Explicit sync levels fail
	// with ErrNoWAL when no log is armed.
	Durability Durability
	// Deadline, when positive, bounds the write's admission: the context
	// is wrapped with this timeout and checked before the batch is
	// applied. Once the batch is logged it applies in full — a deadline
	// cannot tear a batch in half — so the timeout covers lock
	// acquisition, not the fsync.
	Deadline time.Duration
	// Stats, when non-nil, receives the write's cost-counter delta (page
	// reads and writes, node splits surface as writes) when it completes.
	// Under concurrent operations the delta may include work charged by
	// overlapping operations.
	Stats func(stats.Snapshot)
}

// begin mirrors QueryOptions.begin: apply the deadline, arm the stats
// sink; finish must be called (deferred) when the write completes.
func (o WriteOptions) begin(ctx context.Context, snap func() stats.Snapshot) (context.Context, func()) {
	cancel := func() {}
	if o.Deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, o.Deadline)
	}
	if o.Stats == nil {
		return ctx, cancel
	}
	before := snap()
	return ctx, func() {
		o.Stats(snap().Sub(before))
		cancel()
	}
}

// ApplyUpdates applies a batch of motion updates as one write: one lock
// acquisition, one WAL record, one durability wait — the high-rate
// ingest path for dead-reckoning bursts. Updates apply in slice order,
// so a delete-then-reinsert of the same object works within one batch.
//
// The batch is validated upfront, before anything is applied or logged:
// a malformed segment, or a delete with no matching segment (in the
// index or earlier in the batch), fails the whole batch — the latter
// with ErrNotFound — and nothing of it survives a crash.
//
// With a WAL armed the record is appended BEFORE the updates touch the
// index (write-ahead), then the call waits according to
// opts.Durability. The batch is atomic across crashes: recovery replays
// either the whole record or none of it. The one non-atomic case is a
// storage error mid-apply: the earlier updates stay applied and, because
// the record is already logged, crash recovery replays the WHOLE batch —
// possibly more of it than was applied in-process. Storage errors also
// count toward degraded read-only mode, so the database does not keep
// accepting writes onto a diverging index.
//
// When ctx carries a tracer (netq threads one per request), the batch is
// recorded as a traced span with validate / wal-append / tree-apply /
// fsync-wait stage deltas, continuing any trace context in ctx.
func (db *DB) ApplyUpdates(ctx context.Context, updates []MotionUpdate, opts WriteOptions) error {
	if len(updates) == 0 {
		return nil
	}
	ws := beginWriteSpan(ctx)
	err := db.applyUpdates(ctx, updates, opts, &ws, true)
	ws.finish(len(updates), err)
	return err
}

// applyUpdates is the batch write path. gated controls the degraded
// read-only check: public writes pass true; the maintenance probe passes
// false, because its whole purpose is to attempt a write while the
// database is degraded.
func (db *DB) applyUpdates(ctx context.Context, updates []MotionUpdate, opts WriteOptions, ws *writeSpan, gated bool) error {
	ctx, finish := opts.begin(ctx, db.counters.Snapshot)
	defer finish()
	// db.wal is immutable after open, so the durability contract can be
	// checked before any work: an explicit sync level with no log armed
	// must fail rather than ack an in-memory write as durable.
	if err := checkDurability(opts.Durability, db.wal != nil); err != nil {
		return err
	}
	// Validate and convert every update before taking the lock, so a bad
	// batch costs nothing and a logged batch never fails validation on
	// replay.
	mark := ws.now()
	segs := make([]geom.Segment, len(updates))
	for i, u := range updates {
		if u.Delete {
			continue
		}
		g, err := db.toSegment(u.Segment)
		if err != nil {
			return err
		}
		segs[i] = g
	}
	validate := ws.since(mark)
	if err := ctx.Err(); err != nil {
		return err
	}
	db.mu.Lock()
	if gated {
		if err := db.writeGate(); err != nil {
			db.mu.Unlock()
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		db.mu.Unlock()
		return err
	}
	// The validate stage spans both intervals: pre-lock conversion and
	// the in-lock delete balance check (lock wait is not attributed).
	mark = ws.now()
	verr := db.validateDeletesLocked(updates)
	ws.stage(stageValidate, validate+ws.since(mark))
	if verr != nil {
		db.mu.Unlock()
		return verr
	}
	var lsn uint64
	if db.wal != nil {
		mark = ws.now()
		var err error
		lsn, err = db.wal.Append(encodeUpdates(db.cfg.Dims, updates))
		ws.stage(stageWALAppend, ws.since(mark))
		if err != nil {
			err = db.noteWriteResult(fmt.Errorf("dynq: wal append: %w", err))
			db.mu.Unlock()
			return err
		}
	}
	mark = ws.now()
	err := db.applyLocked(updates, segs, false)
	ws.stage(stageTreeApply, ws.since(mark))
	db.mu.Unlock()
	if err != nil {
		return err
	}
	// The durability wait runs OUTSIDE the database lock: an fsync never
	// blocks readers, and concurrent writers can pile into the same
	// group-commit round.
	if db.wal != nil && opts.Durability != DurabilityAsync {
		mark = ws.now()
		var werr error
		if opts.Durability == DurabilitySync {
			werr = db.wal.SyncNow(lsn)
		} else {
			werr = db.wal.Sync(lsn)
		}
		ws.stage(stageFsyncWait, ws.since(mark))
		if werr != nil {
			return db.noteWriteResult(fmt.Errorf("dynq: wal commit: %w", werr))
		}
	}
	return nil
}

// validateDeletesLocked checks, under the held write lock, that every
// deletion in the batch has a segment to remove — already indexed, or
// inserted earlier in the batch and not yet consumed — so ErrNotFound
// surfaces BEFORE the batch is WAL-logged. Without this check a batch
// the caller saw fail would still replay in full after a crash,
// durably resurrecting a write that was never acknowledged.
func (db *DB) validateDeletesLocked(updates []MotionUpdate) error {
	err := validateDeletesOn(db.tree, updates)
	if err != nil && err != ErrNotFound {
		return db.noteWriteResult(err)
	}
	return err
}

// validateDeletesOn is the tree-level delete balance check shared by the
// single-tree and per-shard write paths; the caller must hold the lock
// guarding tree and attribute storage errors to its own health state.
func validateDeletesOn(tree *rtree.Tree, updates []MotionUpdate) error {
	hasDelete := false
	for _, u := range updates {
		if u.Delete {
			hasDelete = true
			break
		}
	}
	if !hasDelete {
		return nil
	}
	type segKey struct {
		id ObjectID
		t0 float64
	}
	// avail tracks the batch's net balance per key on top of the index,
	// which holds at most one segment per (object, start time).
	avail := make(map[segKey]int)
	for _, u := range updates {
		k := segKey{u.ID, float64(float32(u.Segment.T0))} // match on-disk quantization
		if !u.Delete {
			avail[k]++
			continue
		}
		if avail[k] > 0 {
			avail[k]--
			continue
		}
		if avail[k] < 0 {
			// An earlier delete already consumed the index's only copy.
			return ErrNotFound
		}
		ok, err := tree.Contains(rtree.ObjectID(u.ID), u.Segment.T0)
		if err != nil {
			return err
		}
		if !ok {
			return ErrNotFound
		}
		avail[k]--
	}
	return nil
}

// applyLocked applies converted updates to the index under the held
// write lock. segs[i] holds the pre-converted geometry for insert
// updates. In replay mode a delete of a missing segment is skipped
// rather than failed: the segment may have been removed by a later
// replayed record the first time around, then checkpointed.
func (db *DB) applyLocked(updates []MotionUpdate, segs []geom.Segment, replay bool) error {
	err := applyToTree(db.tree, updates, segs, replay)
	if err != nil && err != ErrNotFound {
		return db.noteWriteResult(err)
	}
	if err == nil {
		db.noteWriteResult(nil)
	}
	return err
}

// applyToTree applies converted updates to one tree in slice order — the
// shared mutation loop behind the single-tree and per-shard write paths.
// The caller holds the lock guarding tree and owns health accounting.
func applyToTree(tree *rtree.Tree, updates []MotionUpdate, segs []geom.Segment, replay bool) error {
	for i, u := range updates {
		if u.Delete {
			err := tree.Delete(rtree.ObjectID(u.ID), u.Segment.T0)
			if err == rtree.ErrNotFound {
				if replay {
					continue
				}
				// A missing segment is an answer, not a storage failure.
				return ErrNotFound
			}
			if err != nil {
				return err
			}
			continue
		}
		if err := tree.Insert(rtree.ObjectID(u.ID), segs[i]); err != nil {
			return err
		}
	}
	return nil
}

// InsertCtx is Insert with a context and per-write options.
func (db *DB) InsertCtx(ctx context.Context, id ObjectID, seg Segment, opts WriteOptions) error {
	return db.ApplyUpdates(ctx, []MotionUpdate{{ID: id, Segment: seg}}, opts)
}

// DeleteCtx is Delete with a context and per-write options.
func (db *DB) DeleteCtx(ctx context.Context, id ObjectID, t0 float64, opts WriteOptions) error {
	return db.ApplyUpdates(ctx, []MotionUpdate{{ID: id, Segment: Segment{T0: t0}, Delete: true}}, opts)
}

// BulkLoadCtx builds the index from an ordered batch at a 0.5 fill
// factor, replacing any current contents; the database must be empty and
// the batch must contain no deletions. It is far faster than repeated
// inserts for large historical loads. The load itself is NOT WAL-logged
// (a log entry per bulk segment would defeat the point); call Sync to
// make it durable, exactly as before the WAL existed.
func (db *DB) BulkLoadCtx(ctx context.Context, updates []MotionUpdate, opts WriteOptions) error {
	ctx, finish := opts.begin(ctx, db.counters.Snapshot)
	defer finish()
	entries := make([]rtree.LeafEntry, len(updates))
	for i, u := range updates {
		if u.Delete {
			return fmt.Errorf("dynq: BulkLoad batch contains a deletion (object %d); deletions need an existing index", u.ID)
		}
		g, err := db.toSegment(u.Segment)
		if err != nil {
			return err
		}
		entries[i] = rtree.LeafEntry{ID: rtree.ObjectID(u.ID), Seg: g}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writeGate(); err != nil {
		return err
	}
	if db.tree.Size() != 0 {
		return fmt.Errorf("dynq: BulkLoad requires an empty database")
	}
	tree, err := rtree.BulkLoad(db.tree.Config(), db.store, entries)
	if err != nil {
		return db.noteWriteResult(err)
	}
	db.noteWriteResult(nil)
	if db.bufferPages > 0 {
		if err := tree.UseBuffer(db.bufferPages); err != nil {
			return err
		}
	}
	tree.SetCounters(&db.counters)
	db.tree = tree
	return nil
}

// BulkLoadUpdates is BulkLoadCtx without a context: the order-preserving
// bulk load form sharing MotionUpdate with ApplyUpdates and WAL replay.
func (db *DB) BulkLoadUpdates(updates []MotionUpdate) error {
	return db.BulkLoadCtx(context.Background(), updates, WriteOptions{})
}

// sortedUpdates flattens the legacy map form into the ordered form,
// sorted by (object, start time) for determinism.
func sortedUpdates(segs map[ObjectID][]Segment) []MotionUpdate {
	ids := make([]ObjectID, 0, len(segs))
	for id := range segs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var updates []MotionUpdate
	for _, id := range ids {
		list := append([]Segment(nil), segs[id]...)
		sort.Slice(list, func(i, j int) bool { return list[i].T0 < list[j].T0 })
		for _, s := range list {
			updates = append(updates, MotionUpdate{ID: id, Segment: s})
		}
	}
	return updates
}

// WAL record payload: a batch of motion updates in slice order.
//
//	offset 0  1 byte  payload version (1)
//	offset 1  1 byte  spatial dimensionality
//	offset 2  4 bytes update count
//	then per update:
//	  1 byte  flags (bit 0 = delete)
//	  8 bytes object id
//	  8 bytes t0
//	  inserts only: 8 bytes t1, dims×8 bytes from, dims×8 bytes to
const updatesPayloadVersion = 1

func encodeUpdates(dims int, updates []MotionUpdate) []byte {
	size := 6
	for _, u := range updates {
		size += 1 + 8 + 8
		if !u.Delete {
			size += 8 + 2*8*dims
		}
	}
	buf := make([]byte, 0, size)
	buf = append(buf, updatesPayloadVersion, byte(dims))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(updates)))
	for _, u := range updates {
		var flags byte
		if u.Delete {
			flags |= 1
		}
		buf = append(buf, flags)
		buf = binary.LittleEndian.AppendUint64(buf, u.ID)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(u.Segment.T0))
		if u.Delete {
			continue
		}
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(u.Segment.T1))
		for _, v := range u.Segment.From {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
		for _, v := range u.Segment.To {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf
}

// decodeUpdates parses a WAL batch payload, validating it against the
// database's dimensionality. The record-level checksum already caught
// random corruption; this guards the logical layer.
func decodeUpdates(payload []byte, wantDims int) ([]MotionUpdate, error) {
	if len(payload) < 6 {
		return nil, fmt.Errorf("batch payload truncated (%d bytes)", len(payload))
	}
	if payload[0] != updatesPayloadVersion {
		return nil, fmt.Errorf("unsupported batch payload version %d", payload[0])
	}
	dims := int(payload[1])
	if dims != wantDims {
		return nil, fmt.Errorf("batch has %d dims, database has %d", dims, wantDims)
	}
	count := int(binary.LittleEndian.Uint32(payload[2:]))
	// Bound the claim by the real minimum update size (17 bytes) before
	// sizing the slice, so a corrupt-but-checksummed count cannot force a
	// multi-gigabyte allocation.
	if count > (len(payload)-6)/17 {
		return nil, fmt.Errorf("batch claims %d updates in %d bytes", count, len(payload))
	}
	readF64 := func(off int) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
	}
	updates := make([]MotionUpdate, 0, count)
	off := 6
	for i := 0; i < count; i++ {
		if off+17 > len(payload) {
			return nil, fmt.Errorf("update %d truncated", i)
		}
		del := payload[off]&1 == 1
		u := MotionUpdate{ID: binary.LittleEndian.Uint64(payload[off+1:]), Delete: del}
		u.Segment.T0 = readF64(off + 9)
		off += 17
		if del {
			updates = append(updates, u)
			continue
		}
		need := 8 + 2*8*dims
		if off+need > len(payload) {
			return nil, fmt.Errorf("update %d truncated", i)
		}
		u.Segment.T1 = readF64(off)
		off += 8
		u.Segment.From = make([]float64, dims)
		u.Segment.To = make([]float64, dims)
		for d := 0; d < dims; d++ {
			u.Segment.From[d] = readF64(off)
			off += 8
		}
		for d := 0; d < dims; d++ {
			u.Segment.To[d] = readF64(off)
			off += 8
		}
		updates = append(updates, u)
	}
	if off != len(payload) {
		return nil, fmt.Errorf("batch carries %d trailing bytes", len(payload)-off)
	}
	return updates, nil
}
