package dynq

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"dynq/internal/pager"
	"dynq/internal/rtree"
)

func validMetaBytes() []byte {
	m := rtree.Meta{Root: 3, Height: 2, Size: 100, ModSeq: 7, Config: rtree.DefaultConfig()}
	return encodeMeta(m, 0)
}

func TestDecodeMetaRoundTrip(t *testing.T) {
	cfg := rtree.DefaultConfig()
	cfg.Dims = 3
	cfg.DualTime = true
	cfg.Split = rtree.SplitRStarAxis
	in := rtree.Meta{Root: 42, Height: 4, Size: 12345, ModSeq: 99, Config: cfg}
	out, lsn, err := decodeMeta(encodeMeta(in, 777))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Root != in.Root || out.Height != in.Height || out.Size != in.Size ||
		out.ModSeq != in.ModSeq || out.Config.Dims != 3 || !out.Config.DualTime ||
		out.Config.Split != rtree.SplitRStarAxis {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
	if lsn != 777 {
		t.Fatalf("applied LSN = %d, want 777", lsn)
	}
}

// TestDecodeMetaAcceptsVersion1 checks the upgrade path: a 28-byte
// version-1 header (pre-WAL) decodes with an applied LSN of 0.
func TestDecodeMetaAcceptsVersion1(t *testing.T) {
	b := validMetaBytes()[:metaLenV1]
	b[0] = metaVersion1
	m, lsn, err := decodeMeta(b)
	if err != nil {
		t.Fatalf("decode v1: %v", err)
	}
	if lsn != 0 || m.Root != 3 || m.Height != 2 || m.Size != 100 {
		t.Fatalf("v1 decode = (%+v, %d), want original fields with LSN 0", m, lsn)
	}
}

// TestDecodeMetaRejectsCorruption drives every validation branch: each
// mutation must produce a descriptive error wrapping ErrCorrupt, never a
// silently-accepted bogus config.
func TestDecodeMetaRejectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(b []byte) []byte
		wantSub string
	}{
		{"empty", func(b []byte) []byte { return nil }, "no database metadata"},
		{"truncated", func(b []byte) []byte { return b[:metaLenV1-1] }, "truncated"},
		{"truncated v2", func(b []byte) []byte { return b[:metaLen-1] }, "truncated"},
		{"bad version", func(b []byte) []byte { b[0] = 9; return b }, "version"},
		{"dims zero", func(b []byte) []byte { b[1] = 0; return b }, "dimensionality"},
		{"dims huge", func(b []byte) []byte { b[1] = 200; return b }, "dimensionality"},
		{"dual flag", func(b []byte) []byte { b[2] = 7; return b }, "dual-time"},
		{"split policy", func(b []byte) []byte { b[3] = 250; return b }, "split policy"},
		{"height huge", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 1<<20)
			return b
		}, "height"},
		{"size huge", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[12:], 1<<50)
			return b
		}, "segment count"},
		{"root without height", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 0)
			return b
		}, "inconsistent"},
		{"height without root", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], uint32(pager.InvalidPage))
			return b
		}, "inconsistent"},
		{"empty with segments", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], uint32(pager.InvalidPage))
			binary.LittleEndian.PutUint32(b[8:], 0)
			return b
		}, "claims"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := decodeMeta(tc.mutate(validMetaBytes()))
			if err == nil {
				t.Fatal("corrupt metadata accepted")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error does not wrap ErrCorrupt: %v", err)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// FuzzDecodeMeta asserts decodeMeta never panics and never accepts bytes
// that re-encode differently — acceptance means every field was in
// range, so encode(decode(x)) must reproduce the input exactly.
func FuzzDecodeMeta(f *testing.F) {
	f.Add(validMetaBytes())
	empty := encodeMeta(rtree.Meta{Root: pager.InvalidPage, Config: rtree.DefaultConfig()}, 0)
	f.Add(empty)
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{2, 2, 0, 0, 3, 0, 0, 0, 1, 0, 0, 0, 5, 0, 0, 0, 0, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, lsn, err := decodeMeta(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("rejection not typed as ErrCorrupt: %v", err)
			}
			return
		}
		// Acceptance means every field was in range, so re-encoding must
		// reproduce the input. Version-1 inputs (no LSN field) re-encode
		// as version 2: compare the shared fields and require LSN 0.
		re := encodeMeta(m, lsn)
		switch data[0] {
		case metaVersion1:
			if lsn != 0 || len(data) < metaLenV1 || string(re[1:metaLenV1]) != string(data[1:metaLenV1]) {
				t.Fatalf("accepted v1 metadata does not round-trip:\n in  %x\n out %x", data, re)
			}
		default:
			if len(data) < metaLen || string(re) != string(data[:metaLen]) {
				t.Fatalf("accepted metadata does not round-trip:\n in  %x\n out %x", data, re)
			}
		}
	})
}
