// Package dynq is a spatio-temporal database engine for mobile objects
// with dynamic (continuously moving) queries, reproducing "Dynamic
// Queries over Mobile Objects" (Lazaridis, Porkaew, Mehrotra; EDBT 2002).
//
// Mobile objects report piecewise-linear motion updates; each update is a
// motion segment indexed by its space-time bounding box in a disk-based
// R-tree (Native Space Indexing), with exact segment geometry at the leaf
// level. On top of the index, three query strategies answer a moving
// observer's continuous view query:
//
//   - Snapshot: an independent spatio-temporal range query (the paper's
//     baseline when repeated per frame).
//   - PredictiveQuery (PDQ): the observer registers a trajectory; results
//     stream out incrementally in order of appearance, each index node is
//     read at most once, and concurrent insertions are merged in live.
//   - NonPredictiveQuery (NPDQ): no trajectory is known; each snapshot
//     reuses the previous snapshot's coverage to prune index nodes.
//
// A typical session:
//
//	db, _ := dynq.Open(dynq.Options{})
//	db.Insert(42, dynq.Segment{T0: 0, T1: 1, From: []float64{1, 2}, To: []float64{2, 3}})
//	res, _ := db.Snapshot(dynq.Rect{Min: []float64{0, 0}, Max: []float64{10, 10}}, 0, 1)
//
// See the examples directory for a visualization fly-through (PDQ), a
// vicinity monitor under live updates (NPDQ), and a quickstart.
package dynq

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dynq/internal/core"
	"dynq/internal/geom"
	"dynq/internal/pager"
	"dynq/internal/rtree"
	"dynq/internal/stats"
	"dynq/internal/wal"
)

// ObjectID identifies a mobile object across all of its motion updates.
type ObjectID = uint64

// Rect is an axis-aligned spatial rectangle; Min and Max must have the
// database's dimensionality.
type Rect struct {
	Min, Max []float64
}

// Segment is one motion update: the object moved linearly from From at
// time T0 to To at time T1.
type Segment struct {
	T0, T1   float64
	From, To []float64
}

// Result is one object delivered by a query: the motion segment that made
// it visible and the [Appear, Disappear] interval during which it stays
// in the (possibly moving) query window.
type Result struct {
	ID        ObjectID
	Segment   Segment
	Appear    float64
	Disappear float64
}

// Neighbor is one k-nearest-neighbor answer.
type Neighbor struct {
	ID      ObjectID
	Segment Segment
	Dist    float64
}

// SplitPolicy names an R-tree node splitting algorithm.
type SplitPolicy string

// Split policies accepted in Options.
const (
	SplitQuadratic SplitPolicy = "quadratic" // Guttman quadratic (default)
	SplitLinear    SplitPolicy = "linear"    // Guttman linear
	SplitRStar     SplitPolicy = "rstar"     // R*-style axis split
)

// Options configure a database.
type Options struct {
	// Dims is the spatial dimensionality (default 2).
	Dims int
	// DualTimeAxes stores segment start- and end-time ranges separately
	// in internal index entries. Required for non-predictive dynamic
	// queries to prune effectively; costs internal fanout (113 vs 145).
	DualTimeAxes bool
	// Split selects the R-tree split policy (default quadratic).
	Split SplitPolicy
	// Path, when non-empty, stores index pages in a file; otherwise the
	// index lives in memory. Open CREATES the file, truncating any
	// existing contents — use OpenFile to reattach a previously written
	// index.
	Path string
	// BufferPages enables a server-side LRU page buffer of the given
	// capacity. The paper's experiments run bufferless (0): the client,
	// not the server, caches results. With WALPath set, 0 selects a
	// default buffer instead (see defaultWALBufferPages): a logged
	// database must keep post-checkpoint writes in memory so a crash
	// cannot tear the committed base file the log replays onto.
	BufferPages int
	// DegradeAfter is the number of consecutive storage write failures
	// after which the database degrades to read-only mode (mutations
	// return ErrReadOnly until SetReadOnly(false)). 0 means the default
	// of 3; a negative value disables degradation.
	DegradeAfter int
	// WALPath, when non-empty, arms a write-ahead log at that path: every
	// ApplyUpdates/Insert/Delete appends a checksummed record before
	// touching the index, Sync checkpoints the log, and reopening through
	// OpenFileRecover replays whatever the last page commit missed. Open
	// creates the log fresh (like Path, truncating any existing file);
	// the conventional sidecar path "<Path>.wal" is what OpenFileRecover
	// detects automatically.
	WALPath string
	// GroupCommitWindow is how long a group-commit leader waits for
	// concurrent writers to pile into its fsync (0 = the 2ms default; a
	// negative value disables coalescing — every commit round fsyncs
	// immediately). Only meaningful with WALPath set.
	GroupCommitWindow time.Duration
	// Maintenance configures the self-healing maintenance loop
	// (auto-checkpoint policy, background scrub, degraded-mode recovery
	// probe). The zero value disables it.
	Maintenance MaintenanceOptions
}

// DB is a mobile-object database: an NSI R-tree plus the dynamic query
// engines.
//
// Concurrency: read-only operations (Snapshot, SnapshotCtx, KNN, KNNCtx,
// Within, JoinWith, CountSeries, Stats, Validate, Len) hold a shared lock
// and run in parallel with each other; mutating operations (Insert,
// Delete, BulkLoad, Sync) hold the exclusive lock, so every query
// observes the index either entirely before or entirely after a given
// write. Stats accessors (Cost, CostSnapshot, BufferStats) are atomic and
// lock-free. Session types (PredictiveQuery, NonPredictiveQuery,
// AdaptiveQuery) are each single-goroutine but may run alongside queries
// and writers, synchronizing at index-node granularity as the paper's
// live-update semantics require.
type DB struct {
	// mu isolates whole operations: queries share it, writers own it.
	// The index beneath has its own reader-writer lock at node-load
	// granularity, used by dynamic query sessions.
	mu          sync.RWMutex
	tree        *rtree.Tree
	cfg         rtree.Config
	store       pager.Store
	counters    stats.Counters
	bufferPages int
	health      degradeState
	// wal is the armed write-ahead log, nil when the database runs
	// without one (Options.WALPath empty and no sidecar found on open).
	wal *wal.Log
	// appliedLSN is the WAL position the committed page state had
	// absorbed when the database was opened; replay starts above it.
	appliedLSN uint64
	// recovery holds the open-time verification report when the database
	// was opened through OpenFileRecover, nil otherwise.
	recovery *RecoveryReport
	// maint is the self-healing maintenance loop, nil when
	// Options.Maintenance left it disabled.
	maint *maintainer
}

// LastRecovery returns the report from open-time recovery, or nil when
// the database was not opened through OpenFileRecover.
func (db *DB) LastRecovery() *RecoveryReport { return db.recovery }

// Open creates a database. With Options.Path set, a new page file is
// created, TRUNCATING any existing file at that path; use OpenFile to
// reattach an existing one.
// defaultWALBufferPages is the page buffer capacity a WAL-armed database
// gets when Options.BufferPages is left 0. Unbuffered writes rewrite
// committed pages in place; after a crash the page file then carries
// epochs newer than its committed header — detected as corruption on
// open, leaving the log nothing intact to replay onto. Buffered, dirty
// pages stay in memory between checkpoints and the committed base
// survives any crash.
const defaultWALBufferPages = 1024

func Open(opts Options) (*DB, error) {
	cfg, err := opts.toConfig()
	if err != nil {
		return nil, err
	}
	bufferPages := opts.BufferPages
	if opts.WALPath != "" && bufferPages == 0 {
		bufferPages = defaultWALBufferPages
	}
	var store pager.Store
	if opts.Path != "" {
		fs, err := pager.CreateFileStore(opts.Path)
		if err != nil {
			return nil, err
		}
		store = fs
	} else {
		store = pager.NewMemStore()
	}
	tree, err := rtree.NewBuffered(cfg, store, bufferPages)
	if err != nil {
		return nil, err
	}
	db := &DB{tree: tree, cfg: cfg, store: store, bufferPages: bufferPages}
	db.health.after = int32(opts.DegradeAfter)
	tree.SetCounters(&db.counters)
	if fs, ok := store.(*pager.FileStore); ok {
		// Commit the empty base state immediately: a crash before the
		// first Sync must leave an openable (empty) file — with a WAL
		// armed, that base is what replay rebuilds from.
		cerr := fs.SetAux(encodeMeta(tree.Meta(), 0))
		if cerr == nil {
			cerr = fs.Sync()
		}
		if cerr != nil {
			store.Close()
			return nil, cerr
		}
	}
	if opts.WALPath != "" {
		w, err := wal.Create(opts.WALPath, wal.Options{GroupCommitWindow: opts.GroupCommitWindow})
		if err != nil {
			store.Close()
			return nil, fmt.Errorf("dynq: create wal: %w", err)
		}
		db.wal = w
	}
	db.maint = startMaintainer(db, opts.Maintenance)
	return db, nil
}

func (o Options) toConfig() (rtree.Config, error) {
	cfg := rtree.DefaultConfig()
	if o.Dims < 0 {
		return cfg, fmt.Errorf("dynq: Options.Dims must be positive, got %d", o.Dims)
	}
	if o.BufferPages < 0 {
		return cfg, fmt.Errorf("dynq: Options.BufferPages must be >= 0, got %d", o.BufferPages)
	}
	if o.Dims != 0 {
		cfg.Dims = o.Dims
	}
	cfg.DualTime = o.DualTimeAxes
	switch o.Split {
	case "", SplitQuadratic:
		cfg.Split = rtree.SplitQuadratic
	case SplitLinear:
		cfg.Split = rtree.SplitLinear
	case SplitRStar:
		cfg.Split = rtree.SplitRStarAxis
	default:
		return cfg, fmt.Errorf("dynq: unknown split policy %q", o.Split)
	}
	return cfg, nil
}

// Close releases the underlying page store and the write-ahead log.
// Close does NOT Sync: with a WAL armed the log itself carries the
// unsynced tail across the restart; without one, unsynced writes are
// lost as before.
func (db *DB) Close() error {
	db.maint.stop()
	var werr error
	if db.wal != nil {
		werr = db.wal.Close()
	}
	return errors.Join(werr, db.store.Close())
}

// WALStats returns the armed write-ahead log's counters, or zero when no
// WAL is armed.
func (db *DB) WALStats() (wal.Stats, bool) {
	if db.wal == nil {
		return wal.Stats{}, false
	}
	return db.wal.Stats(), true
}

// Dims returns the spatial dimensionality.
func (db *DB) Dims() int { return db.cfg.Dims }

// Len returns the number of indexed motion segments.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tree.Size()
}

// Insert records one motion update for an object. Coordinates are stored
// at float32 precision (the on-disk key format). It is a thin wrapper
// over ApplyUpdates with default (group-commit) durability; batch
// updates through ApplyUpdates when ingesting at rate.
func (db *DB) Insert(id ObjectID, seg Segment) error {
	return db.InsertCtx(context.Background(), id, seg, WriteOptions{})
}

// BulkLoad builds the index from a segment set at a 0.5 fill factor,
// replacing any current contents. It is far faster than repeated Insert
// for large historical loads. The db must be empty.
//
// Deprecated: the map form loses input order. Use BulkLoadUpdates (or
// BulkLoadCtx), which shares the ordered MotionUpdate batch form with
// ApplyUpdates; this wrapper flattens the map sorted by (object, start
// time) and delegates.
func (db *DB) BulkLoad(segs map[ObjectID][]Segment) error {
	return db.BulkLoadUpdates(sortedUpdates(segs))
}

// Delete removes the motion update of an object that started at t0.
// It returns ErrNotFound if no such segment is indexed. Like Insert it
// is a thin wrapper over ApplyUpdates.
func (db *DB) Delete(id ObjectID, t0 float64) error {
	return db.DeleteCtx(context.Background(), id, t0, WriteOptions{})
}

// ErrNotFound is returned by Delete for a missing segment.
var ErrNotFound = rtree.ErrNotFound

// Snapshot answers one spatio-temporal range query: all objects whose
// trajectory passes through view during [t0, t1].
func (db *DB) Snapshot(view Rect, t0, t1 float64) ([]Result, error) {
	box, err := db.toBox(view)
	if err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	ms, err := db.tree.RangeSearch(box, geom.Interval{Lo: t0, Hi: t1}, rtree.SearchOptions{}, &db.counters)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(ms))
	for i, m := range ms {
		out[i] = Result{
			ID:        ObjectID(m.ID),
			Segment:   fromSegment(m.Seg),
			Appear:    m.Overlap.Lo,
			Disappear: m.Overlap.Hi,
		}
	}
	return out, nil
}

// KNN returns the k objects nearest to point at time t.
func (db *DB) KNN(point []float64, t float64, k int) ([]Neighbor, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	nbs, err := core.KNN(db.tree, geom.Point(point), t, k, &db.counters)
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, len(nbs))
	for i, n := range nbs {
		out[i] = Neighbor{ID: ObjectID(n.ID), Segment: fromSegment(n.Seg), Dist: n.Dist}
	}
	return out, nil
}

// CostReport is the cumulative query cost since the last ResetCost, in
// the paper's metrics.
type CostReport struct {
	DiskReads     int64 // index nodes fetched
	LeafReads     int64 // of which leaf-level
	InternalReads int64 // of which internal-level
	DistanceComps int64 // geometric predicate evaluations
	Results       int64 // objects returned
}

// CostSnapshot returns the raw cumulative counter snapshot (all paper
// metrics plus buffer hits, page writes, and pruned nodes). Two
// snapshots bracket an operation: after.Sub(before) is its cost.
func (db *DB) CostSnapshot() stats.Snapshot { return db.counters.Snapshot() }

// BufferStats describes the server-side page buffer pool.
type BufferStats struct {
	Hits       int64 // page requests served from the pool
	Misses     int64 // page requests that went to the store
	Evictions  int64 // frames displaced by LRU replacement
	WriteBacks int64 // dirty frames written back
	Len        int   // currently buffered frames
	Capacity   int   // frame capacity (0 = bufferless pass-through)
}

// HitRatio returns hits/(hits+misses), or 0 when no requests were made.
func (b BufferStats) HitRatio() float64 {
	total := b.Hits + b.Misses
	if total == 0 {
		return 0
	}
	return float64(b.Hits) / float64(total)
}

// BufferStats reports the buffer pool's live accounting. Safe to call
// concurrently with queries.
func (db *DB) BufferStats() BufferStats {
	db.mu.RLock()
	p := db.tree.Pool()
	db.mu.RUnlock()
	return BufferStats{
		Hits:       p.Hits(),
		Misses:     p.Misses(),
		Evictions:  p.Evictions(),
		WriteBacks: p.WriteBacks(),
		Len:        p.Len(),
		Capacity:   p.Capacity(),
	}
}

// BufferSegmentStats is a point-in-time view of one lock segment of the
// buffer pool, for contention observability: a cold or thrashing segment
// shows up as a hit-ratio outlier.
type BufferSegmentStats struct {
	Hits     int64
	Misses   int64
	Len      int
	Capacity int
}

// HitRatio returns hits/(hits+misses), or 0 when no requests were made.
func (b BufferSegmentStats) HitRatio() float64 {
	total := b.Hits + b.Misses
	if total == 0 {
		return 0
	}
	return float64(b.Hits) / float64(total)
}

// BufferSegments reports the buffer pool's per-segment accounting, in
// segment order (empty for a bufferless pass-through pool). Safe to call
// concurrently with queries.
func (db *DB) BufferSegments() []BufferSegmentStats {
	db.mu.RLock()
	p := db.tree.Pool()
	db.mu.RUnlock()
	segs := p.SegmentStats()
	out := make([]BufferSegmentStats, len(segs))
	for i, s := range segs {
		out[i] = BufferSegmentStats{Hits: s.Hits, Misses: s.Misses, Len: s.Len, Capacity: s.Capacity}
	}
	return out
}

// Cost returns the accumulated query cost counters.
func (db *DB) Cost() CostReport {
	s := db.counters.Snapshot()
	return CostReport{
		DiskReads:     s.Reads(),
		LeafReads:     s.LeafReads,
		InternalReads: s.InternalReads,
		DistanceComps: s.DistanceComps,
		Results:       s.Results,
	}
}

// ResetCost zeroes the cost counters.
func (db *DB) ResetCost() { db.counters.Reset() }

// IndexStats describes the physical index shape.
type IndexStats struct {
	Height        int
	Segments      int
	LeafNodes     int
	InternalNodes int
	LeafFanout    int
	IntFanout     int
	AvgLeafFill   float64
	AvgIntFill    float64
}

// Stats walks the index and reports its shape.
func (db *DB) Stats() (IndexStats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	st, err := db.tree.Stats()
	if err != nil {
		return IndexStats{}, err
	}
	return IndexStats{
		Height:        st.Height,
		Segments:      st.Segments,
		LeafNodes:     st.LeafNodes,
		InternalNodes: st.InternalNodes,
		LeafFanout:    st.MaxLeafFan,
		IntFanout:     st.MaxIntFan,
		AvgLeafFill:   st.AvgLeafFill,
		AvgIntFill:    st.AvgIntFill,
	}, nil
}

// Validate checks the index's structural invariants (tests/tools).
func (db *DB) Validate() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tree.Validate()
}

func (db *DB) toSegment(s Segment) (geom.Segment, error) {
	return toSegmentDims(s, db.Dims())
}

func toSegmentDims(s Segment, d int) (geom.Segment, error) {
	if len(s.From) != d || len(s.To) != d {
		return geom.Segment{}, fmt.Errorf("dynq: segment endpoints must have %d dims", d)
	}
	if s.T1 < s.T0 {
		return geom.Segment{}, fmt.Errorf("dynq: segment times inverted (%g > %g)", s.T0, s.T1)
	}
	return geom.Segment{
		T:     geom.Interval{Lo: s.T0, Hi: s.T1},
		Start: append(geom.Point(nil), s.From...),
		End:   append(geom.Point(nil), s.To...),
	}, nil
}

func fromSegment(g geom.Segment) Segment {
	return Segment{
		T0:   g.T.Lo,
		T1:   g.T.Hi,
		From: append([]float64(nil), g.Start...),
		To:   append([]float64(nil), g.End...),
	}
}

func (db *DB) toBox(r Rect) (geom.Box, error) {
	return toBoxDims(r, db.Dims())
}

func toBoxDims(r Rect, d int) (geom.Box, error) {
	if len(r.Min) != d || len(r.Max) != d {
		return nil, fmt.Errorf("dynq: rect must have %d dims", d)
	}
	b := make(geom.Box, d)
	for i := 0; i < d; i++ {
		b[i] = geom.Interval{Lo: r.Min[i], Hi: r.Max[i]}
	}
	return b, nil
}

func fromResult(r core.Result) Result {
	return Result{
		ID:        ObjectID(r.ID),
		Segment:   fromSegment(r.Seg),
		Appear:    r.Appear,
		Disappear: r.Disappear,
	}
}
