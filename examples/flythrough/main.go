// Flythrough: the paper's motivating scenario — a terrain visualization
// client flying over a large mobile-object population in "tour mode"
// (a pre-registered trajectory), fetching the view contents at 10 frames
// per simulated time unit.
//
// The example runs the same tour twice, once with repeated snapshot
// queries (the naive baseline) and once as a predictive dynamic query,
// and prints the per-frame I/O of each — the contrast behind Figure 6.
package main

import (
	"fmt"
	"log"

	"dynq"
	"dynq/internal/motion"
)

const (
	world   = 100.0
	tourT0  = 10.0
	tourT1  = 60.0
	viewW   = 12.0
	frameDt = 0.1
)

func main() {
	db := buildDatabase()
	defer db.Close()

	// The tour: a closed sweep over the terrain, east then north then
	// back, at ~1.2 length units per time unit.
	waypoints := []dynq.Waypoint{
		{T: 10, View: view(5, 40)},
		{T: 30, View: view(70, 40)},
		{T: 45, View: view(70, 75)},
		{T: 60, View: view(20, 75)},
	}

	fmt.Println("running tour with naive per-frame snapshots...")
	naiveReads, naiveObjects := runNaive(db, waypoints)

	fmt.Println("running the same tour as a predictive dynamic query...")
	pdqReads, pdqDelivered := runPDQ(db, waypoints)

	frames := int((tourT1 - tourT0) / frameDt)
	fmt.Printf("\n%-28s %14s %14s\n", "", "naive", "PDQ")
	fmt.Printf("%-28s %14d %14d\n", "disk reads (whole tour)", naiveReads, pdqReads)
	fmt.Printf("%-28s %14.2f %14.2f\n", "disk reads per frame",
		float64(naiveReads)/float64(frames), float64(pdqReads)/float64(frames))
	fmt.Printf("%-28s %14d %14d\n", "objects shipped to client", naiveObjects, pdqDelivered)
	fmt.Printf("\nthe naive client re-receives every visible object each frame;\n")
	fmt.Printf("the PDQ client receives each object once with its disappearance time.\n")
}

func view(x, y float64) dynq.Rect {
	return dynq.Rect{Min: []float64{x, y}, Max: []float64{x + viewW, y + viewW}}
}

// buildDatabase indexes a 500-object population (1/10 of the paper's) —
// about 50k motion segments.
func buildDatabase() *dynq.DB {
	sim := motion.PaperConfig()
	sim.Objects = 500
	segs, err := motion.GenerateSegments(sim)
	if err != nil {
		log.Fatal(err)
	}
	db, err := dynq.Open(dynq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	byObject := map[dynq.ObjectID][]dynq.Segment{}
	for _, s := range segs {
		byObject[s.ObjID] = append(byObject[s.ObjID], dynq.Segment{
			T0: s.Seg.T.Lo, T1: s.Seg.T.Hi,
			From: s.Seg.Start, To: s.Seg.End,
		})
	}
	if err := db.BulkLoad(byObject); err != nil {
		log.Fatal(err)
	}
	st, err := db.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d segments (tree height %d)\n\n", st.Segments, st.Height)
	return db
}

// runNaive replays the tour as independent snapshot queries, one per
// frame, interpolating the view between waypoints client-side.
func runNaive(db *dynq.DB, wps []dynq.Waypoint) (reads int64, objects int) {
	db.ResetCost()
	for t := tourT0; t < tourT1; t += frameDt {
		res, err := db.Snapshot(interpolate(wps, t), t, t+frameDt)
		if err != nil {
			log.Fatal(err)
		}
		objects += len(res)
	}
	return db.Cost().DiskReads, objects
}

// runPDQ replays the tour as one predictive session plus a client cache.
func runPDQ(db *dynq.DB, wps []dynq.Waypoint) (reads int64, delivered int) {
	db.ResetCost()
	sess, err := db.PredictiveQuery(wps, dynq.PredictiveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	view := dynq.NewViewCache()
	peak := 0
	for t := tourT0; t < tourT1; t += frameDt {
		batch, err := sess.Fetch(t, t+frameDt)
		if err != nil {
			log.Fatal(err)
		}
		view.Apply(batch)
		view.Advance(t)
		delivered += len(batch)
		if view.Len() > peak {
			peak = view.Len()
		}
	}
	fmt.Printf("  peak client cache: %d objects\n", peak)
	return db.Cost().DiskReads, delivered
}

// interpolate reproduces the view the trajectory has at time t (what the
// renderer would compute from its camera path).
func interpolate(wps []dynq.Waypoint, t float64) dynq.Rect {
	if t <= wps[0].T {
		return wps[0].View
	}
	for i := 1; i < len(wps); i++ {
		if t <= wps[i].T {
			a, b := wps[i-1], wps[i]
			f := (t - a.T) / (b.T - a.T)
			lerp := func(x, y float64) float64 { return x + f*(y-x) }
			return dynq.Rect{
				Min: []float64{lerp(a.View.Min[0], b.View.Min[0]), lerp(a.View.Min[1], b.View.Min[1])},
				Max: []float64{lerp(a.View.Max[0], b.View.Max[0]), lerp(a.View.Max[1], b.View.Max[1])},
			}
		}
	}
	return wps[len(wps)-1].View
}
