// Situational: the paper's introduction scenario — a military exercise
// where a command client tracks friendly/enemy vehicles (mobile), field
// sensors and obstructions (static) through a database server, over the
// network. Static objects are "a special case of mobile ones" (Section 1):
// they are indexed as zero-velocity segments and flow through the same
// dynamic query machinery.
//
// The example starts an in-process TCP server (the same netq protocol
// cmd/dqserver speaks), registers a patrol trajectory as a predictive
// query, and renders a textual tactical picture per frame, closing with a
// proximity sweep (distance self-join) and the server's cost counters.
package main

import (
	"fmt"
	"log"
	"math"
	"net"

	"dynq"
	"dynq/netq"
)

const (
	world   = 100.0
	nMobile = 120
	nStatic = 60
)

func main() {
	db := buildTheater()
	defer db.Close()

	// Serve it like a real deployment; the client talks TCP.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := netq.NewServer(db)
	go srv.Serve(l)
	defer srv.Close()

	client, err := netq.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	st, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connected: %d segments indexed (height %d)\n\n", st.Segments, st.Height)

	// Patrol route: a 16×16 view sweeping a diagonal over 40 time units.
	patrol := []dynq.Waypoint{
		{T: 0, View: view(10, 10)},
		{T: 20, View: view(60, 40)},
		{T: 40, View: view(20, 70)},
	}
	if err := client.StartPredictive(patrol, false); err != nil {
		log.Fatal(err)
	}

	picture := dynq.NewViewCache()
	for f := 0; f <= 20; f++ {
		t0 := float64(f) * 2
		batch, err := client.FetchPredictive(t0, t0+2)
		if err != nil {
			log.Fatal(err)
		}
		picture.Apply(batch)
		picture.Advance(t0)
		if f%4 == 0 {
			mob, stat := 0, 0
			for _, r := range picture.Visible() {
				if r.ID >= 1000 {
					stat++
				} else {
					mob++
				}
			}
			fmt.Printf("t=%4.0f  tactical picture: %2d vehicles, %2d static installations (+%d this frame)\n",
				t0, mob, stat, len(batch))
		}
	}

	// Proximity sweep at the end of the patrol: vehicle pairs within 3
	// units of each other (collision / rendezvous detection).
	pairs, err := db.Within(3.0, 40)
	if err != nil {
		log.Fatal(err)
	}
	close := 0
	for _, p := range pairs {
		if p.A < 1000 && p.B < 1000 {
			close++
		}
	}
	fmt.Printf("\nproximity sweep at t=40: %d vehicle pairs within 3 units\n", close)

	cost := db.Cost()
	fmt.Printf("server cost for the whole session: %d disk reads, %d distance computations\n",
		cost.DiskReads, cost.DistanceComps)
}

func view(x, y float64) dynq.Rect {
	return dynq.Rect{Min: []float64{x, y}, Max: []float64{x + 16, y + 16}}
}

// buildTheater populates mobile vehicles (ids < 1000) and static
// installations (ids ≥ 1000).
func buildTheater() *dynq.DB {
	db, err := dynq.Open(dynq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// Vehicles: piecewise-linear patrols, one motion update every ~2 tu.
	for v := 0; v < nMobile; v++ {
		x := pseudo(v, 1) * world
		y := pseudo(v, 2) * world
		heading := pseudo(v, 3) * 2 * math.Pi
		for t := 0.0; t < 40; t += 2 {
			heading += (pseudo(v, int(t)+4) - 0.5) * 0.8
			nx := clamp(x+math.Cos(heading)*2.4, 0, world)
			ny := clamp(y+math.Sin(heading)*2.4, 0, world)
			err := db.Insert(dynq.ObjectID(v), dynq.Segment{
				T0: t, T1: t + 2,
				From: []float64{x, y}, To: []float64{nx, ny},
			})
			if err != nil {
				log.Fatal(err)
			}
			x, y = nx, ny
		}
	}
	// Static installations: sensors, minefields, obstructions — one
	// zero-velocity segment covering the whole exercise.
	for s := 0; s < nStatic; s++ {
		x := pseudo(s, 7) * world
		y := pseudo(s, 8) * world
		err := db.Insert(dynq.ObjectID(1000+s), dynq.Segment{
			T0: 0, T1: 40,
			From: []float64{x, y}, To: []float64{x, y},
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	return db
}

// pseudo is a tiny deterministic hash → [0,1) so the example needs no RNG
// seed plumbing.
func pseudo(a, b int) float64 {
	h := uint64(a*2654435761) ^ uint64(b)*0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return float64(h%1e9) / 1e9
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
