// Monitor: the paper's situational-awareness scenario — a vehicle in a
// military exercise continuously monitoring its vicinity while other
// units keep reporting motion updates.
//
// The observer's own motion is not known in advance (it reacts to what it
// sees), so the vicinity query runs as a non-predictive dynamic query:
// each snapshot returns only the contacts not reported by the previous
// one, while newly inserted motion updates are guaranteed to surface
// (the timestamp-guarded discardability of Section 4.2). Every few
// frames the vehicle also asks for its 3 nearest contacts (the paper's
// future-work kNN extension).
package main

import (
	"fmt"
	"log"
	"math"

	"dynq"
	"dynq/internal/motion"
)

const (
	world    = 100.0
	radius   = 7.0 // vicinity half-width
	frameDt  = 0.5
	duration = 40.0
)

func main() {
	// Historical contacts: 200 units reporting since t=0.
	db, stream := buildDatabase()
	defer db.Close()

	sess := db.NonPredictiveQuery(dynq.NonPredictiveOptions{})
	view := dynq.NewViewCache()

	// The observer wanders pseudo-randomly (unknown trajectory).
	ox, oy := 30.0, 50.0
	heading := 0.7
	contactsSeen := map[dynq.ObjectID]bool{}

	for t := 0.0; t < duration; t += frameDt {
		// Units keep reporting: feed every motion update due by now into
		// the index while the dynamic query is live. The stream is
		// time-ordered; one look-ahead slot holds the first not-yet-due
		// update between frames.
		inserted := 0
		for {
			if pending == nil {
				ts, ok := stream.Next()
				if !ok {
					break
				}
				pending = &ts
			}
			if pending.Seg.T.Lo > t {
				break
			}
			insertUpdate(db, *pending)
			pending = nil
			inserted++
		}

		// Move the observer (decide direction only now — non-predictive).
		heading += 0.25 * math.Sin(t/3)
		ox = clamp(ox+math.Cos(heading)*1.5*frameDt, radius, world-radius)
		oy = clamp(oy+math.Sin(heading)*1.5*frameDt, radius, world-radius)

		vicinity := dynq.Rect{
			Min: []float64{ox - radius, oy - radius},
			Max: []float64{ox + radius, oy + radius},
		}
		batch, err := sess.Snapshot(vicinity, t, t+frameDt)
		if err != nil {
			log.Fatal(err)
		}
		view.Apply(batch)
		view.Advance(t)
		for _, r := range batch {
			contactsSeen[r.ID] = true
		}

		if int(t/frameDt)%16 == 0 {
			nbs, err := db.KNN([]float64{ox, oy}, t, 3)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("t=%5.1f pos=(%4.1f,%4.1f) +%2d new contacts, %2d in view, %2d updates fed",
				t, ox, oy, len(batch), view.Len(), inserted)
			if len(nbs) > 0 {
				fmt.Printf(" | nearest: unit %d at %.1f", nbs[0].ID, nbs[0].Dist)
			}
			fmt.Println()
		}
	}

	cost := db.Cost()
	fmt.Printf("\ndistinct contacts encountered: %d\n", len(contactsSeen))
	fmt.Printf("query cost over %d frames: %d disk reads, %d distance computations\n",
		int(duration/frameDt), cost.DiskReads, cost.DistanceComps)
}

var pending *motion.TimedSegment

func insertUpdate(db *dynq.DB, ts motion.TimedSegment) {
	err := db.Insert(ts.ObjID, dynq.Segment{
		T0: ts.Seg.T.Lo, T1: ts.Seg.T.Hi,
		From: ts.Seg.Start, To: ts.Seg.End,
	})
	if err != nil {
		log.Fatal(err)
	}
}

// buildDatabase creates an empty dual-axes index plus the live update
// stream that will be fed during monitoring.
func buildDatabase() (*dynq.DB, *motion.Stream) {
	db, err := dynq.Open(dynq.Options{DualTimeAxes: true})
	if err != nil {
		log.Fatal(err)
	}
	sim := motion.PaperConfig()
	sim.Objects = 200
	sim.Duration = duration
	stream, err := motion.NewStream(sim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monitoring %d units for %.0f time units (%d motion updates incoming)\n\n",
		sim.Objects, duration, stream.Remaining())
	return db, stream
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
