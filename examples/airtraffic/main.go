// Airtraffic: anticipation queries over *current* motion states with the
// TPR-tree tracker (the paper's future work (iii)). An en-route control
// center receives position/velocity reports from aircraft and asks
// forward-looking questions the historical index cannot answer:
//
//   - sector load "now + 10 minutes" (range query at a future instant),
//   - which flights will cross a weather cell in the next half hour
//     (interval query),
//   - what a patrol aircraft will encounter along its filed route
//     (trajectory query).
//
// Positions are in nautical-mile-like units, time in minutes; every
// answer carries the anticipated entry/exit times, assuming flights hold
// their current course until the next report.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"dynq"
)

func main() {
	tracker, err := dynq.NewTracker(dynq.TrackerOptions{Horizon: 15})
	if err != nil {
		log.Fatal(err)
	}

	// 40 flights reporting at t=0: positioned on a ring around the hub at
	// (220,220); half inbound toward it, half on crossing courses.
	for i := 0; i < 40; i++ {
		angle := float64(i) * 2 * math.Pi / 40
		pos := []float64{220 + 160*math.Cos(angle), 220 + 160*math.Sin(angle)}
		speed := 6 + math.Mod(float64(i)*1.3, 3) // units per minute
		heading := angle + math.Pi               // inbound
		if i%2 == 1 {
			heading += 0.9 // crossing traffic
		}
		vel := []float64{speed * math.Cos(heading), speed * math.Sin(heading)}
		if err := tracker.Update(dynq.ObjectID(1000+i), 0, pos, vel); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("tracking %d flights\n\n", tracker.Len())

	// 1. Sector load in 20 minutes: who will be inside sector [180,260]²?
	sector := dynq.Rect{Min: []float64{180, 180}, Max: []float64{260, 260}}
	sector20, err := tracker.At(sector, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sector [180,260]^2 at t+20: %d flights anticipated\n", len(sector20))

	// 2. Weather cell [300,340]×[150,190] over the next 30 minutes: who
	// crosses it, and when?
	cell := dynq.Rect{Min: []float64{300, 150}, Max: []float64{340, 190}}
	crossing, err := tracker.During(cell, 0, 30)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(crossing, func(i, j int) bool { return crossing[i].Appear < crossing[j].Appear })
	fmt.Printf("\nweather cell crossings in the next 30 min: %d\n", len(crossing))
	for i, a := range crossing {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(crossing)-5)
			break
		}
		fmt.Printf("  flight %d enters t+%.1f, exits t+%.1f\n", a.ID, a.Appear, a.Vanish)
	}

	// 3. A patrol's filed route: 60×60 surveillance footprint sweeping
	// north-east over 25 minutes. Everything it will encounter:
	route := []dynq.Waypoint{
		{T: 0, View: dynq.Rect{Min: []float64{100, 100}, Max: []float64{160, 160}}},
		{T: 12, View: dynq.Rect{Min: []float64{200, 160}, Max: []float64{260, 220}}},
		{T: 25, View: dynq.Rect{Min: []float64{260, 260}, Max: []float64{320, 320}}},
	}
	contacts, err := tracker.Along(route)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npatrol route will encounter %d flights\n", len(contacts))

	// Mid-flight updates: one flight turns; anticipation adjusts.
	turning := dynq.ObjectID(1007)
	if before, err := tracker.During(cell, 30, 60); err == nil {
		fmt.Printf("\ncell occupancy t+30..60 before the turn: %d\n", len(before))
	}
	if err := tracker.Update(turning, 30, []float64{320, 170}, []float64{0, -8}); err != nil {
		log.Fatal(err)
	}
	after, err := tracker.During(cell, 30, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flight %d reported a turn at t=30; cell occupancy t+30..60 now: %d\n", turning, len(after))

	cost := tracker.Cost()
	fmt.Printf("\ntracker cost: %d node visits, %d distance computations\n",
		cost.DiskReads, cost.DistanceComps)
}
