// Quickstart: index a handful of mobile objects, pose a snapshot query,
// then follow a moving observer with a predictive dynamic query.
package main

import (
	"fmt"
	"log"

	"dynq"
)

func main() {
	// An in-memory database over 2-d space.
	db, err := dynq.Open(dynq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Three objects: a truck driving east, a drone circling via two motion
	// updates, and a stationary depot. Each Insert is one motion update:
	// linear motion over a validity interval.
	updates := []struct {
		id  dynq.ObjectID
		seg dynq.Segment
	}{
		{1, dynq.Segment{T0: 0, T1: 10, From: []float64{0, 5}, To: []float64{20, 5}}},   // truck
		{2, dynq.Segment{T0: 0, T1: 5, From: []float64{10, 0}, To: []float64{10, 10}}},  // drone leg 1
		{2, dynq.Segment{T0: 5, T1: 10, From: []float64{10, 10}, To: []float64{15, 5}}}, // drone leg 2
		{3, dynq.Segment{T0: 0, T1: 10, From: []float64{18, 6}, To: []float64{18, 6}}},  // depot (static)
	}
	for _, u := range updates {
		if err := db.Insert(u.id, u.seg); err != nil {
			log.Fatal(err)
		}
	}

	// Snapshot query: who is inside [8,12]×[3,7] during t ∈ [4,6]?
	res, err := db.Snapshot(dynq.Rect{Min: []float64{8, 3}, Max: []float64{12, 7}}, 4, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("snapshot [8,12]x[3,7] during t=[4,6]:")
	for _, r := range res {
		fmt.Printf("  object %d visible t=[%.2f, %.2f]\n", r.ID, r.Appear, r.Disappear)
	}

	// A moving observer: the view slides east from [0,10]² to [10,20]×[0,10]
	// between t=0 and t=10. The predictive session streams each object once,
	// with the interval it stays in view; the ViewCache reconstructs the
	// visible set every frame.
	sess, err := db.PredictiveQuery([]dynq.Waypoint{
		{T: 0, View: dynq.Rect{Min: []float64{0, 0}, Max: []float64{10, 10}}},
		{T: 10, View: dynq.Rect{Min: []float64{10, 0}, Max: []float64{20, 10}}},
	}, dynq.PredictiveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	view := dynq.NewViewCache()
	fmt.Println("\nfly-through, 1 time unit per frame:")
	for f := 0; f < 10; f++ {
		t0, t1 := float64(f), float64(f+1)
		batch, err := sess.Fetch(t0, t1)
		if err != nil {
			log.Fatal(err)
		}
		view.Apply(batch)
		gone := view.Advance(t0)
		fmt.Printf("  frame t=%2.0f: +%d new, -%d gone, %d visible\n",
			t0, len(batch), len(gone), view.Len())
	}

	// The whole fly-through touched each index node at most once:
	cost := db.Cost()
	fmt.Printf("\ntotal cost: %d disk reads, %d distance computations, %d results\n",
		cost.DiskReads, cost.DistanceComps, cost.Results)
}
