package dynq

import (
	"dynq/internal/core"
	"dynq/internal/geom"
)

// Pair is one proximity-join answer: two objects within the join distance
// of each other at the query time.
type Pair struct {
	A, B     ObjectID
	SegmentA Segment
	SegmentB Segment
	Dist     float64
}

// Within finds every pair of objects whose positions at time t lie within
// delta of each other (a spatial self-join, the paper's future work (ii)).
// Pairs are reported once, with A < B.
func (db *DB) Within(delta, t float64) ([]Pair, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	pairs, err := core.DistanceJoin(db.tree, db.tree, delta, t, &db.counters)
	if err != nil {
		return nil, err
	}
	out := make([]Pair, len(pairs))
	for i, p := range pairs {
		out[i] = Pair{
			A: ObjectID(p.A), B: ObjectID(p.B),
			SegmentA: fromSegment(p.SegA), SegmentB: fromSegment(p.SegB),
			Dist: p.Dist,
		}
	}
	return out, nil
}

// JoinWith finds every pair (a ∈ db, b ∈ other) within delta of each
// other at time t. Both databases must have the same dimensionality.
// Only the receiver is read-locked; concurrent writes to other
// synchronize at its index level, so they may land mid-join.
func (db *DB) JoinWith(other *DB, delta, t float64) ([]Pair, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	pairs, err := core.DistanceJoin(db.tree, other.tree, delta, t, &db.counters)
	if err != nil {
		return nil, err
	}
	out := make([]Pair, len(pairs))
	for i, p := range pairs {
		out[i] = Pair{
			A: ObjectID(p.A), B: ObjectID(p.B),
			SegmentA: fromSegment(p.SegA), SegmentB: fromSegment(p.SegB),
			Dist: p.Dist,
		}
	}
	return out, nil
}

// AdaptiveOptions tune the automatic PDQ↔NPDQ hand-off of an adaptive
// session (the paper's future work (iv)).
type AdaptiveOptions struct {
	// Slack is the deviation tolerated before a prediction is abandoned;
	// predictive phases run as SPDQ with views inflated by this much.
	Slack float64
	// Horizon is how far ahead (time units) each prediction extends.
	Horizon float64
	// StableFrames is how many consecutive consistent frames are needed
	// before switching to predictive mode (default 3).
	StableFrames int
}

// AdaptiveSession evaluates a dynamic query without a registered
// trajectory: it starts non-predictive, switches to a semi-predictive
// session whenever the observer's recent motion extrapolates, and falls
// back when the observer deviates. Not safe for concurrent use.
type AdaptiveSession struct {
	db *DB
	a  *core.Adaptive
}

// AdaptiveQuery starts an adaptive dynamic query session.
func (db *DB) AdaptiveQuery(opts AdaptiveOptions) (*AdaptiveSession, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	a, err := core.NewAdaptive(db.tree, core.AdaptiveOptions{
		Slack:        opts.Slack,
		Horizon:      opts.Horizon,
		StableFrames: opts.StableFrames,
	}, &db.counters)
	if err != nil {
		return nil, err
	}
	return &AdaptiveSession{db: db, a: a}, nil
}

// Frame reports the observer's actual view for one frame and returns the
// newly visible objects. Frames must advance monotonically in time.
func (s *AdaptiveSession) Frame(view Rect, t0, t1 float64) ([]Result, error) {
	box, err := s.db.toBox(view)
	if err != nil {
		return nil, err
	}
	rs, err := s.a.Frame(box, geom.Interval{Lo: t0, Hi: t1})
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = fromResult(r)
	}
	return out, nil
}

// Predictive reports whether the session is currently running on a
// predicted trajectory.
func (s *AdaptiveSession) Predictive() bool { return s.a.Mode() == core.ModePredictive }

// Handoffs reports how many PDQ↔NPDQ switches have happened.
func (s *AdaptiveSession) Handoffs() int { return s.a.Switches() }

// Close releases any live predictive sub-session.
func (s *AdaptiveSession) Close() { s.a.Close() }

// CountSeries evaluates the continuous aggregate COUNT(*) of a moving
// view: how many objects are inside the observer's window at each sample
// time. The whole series costs one incremental traversal (the dynamic
// query machinery), not one aggregation per sample.
func (db *DB) CountSeries(waypoints []Waypoint, times []float64) ([]int, error) {
	traj, err := buildTrajectory(waypoints, db.Dims(), nil)
	if err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return core.ContinuousCount(db.tree, traj, times, &db.counters)
}
