package dynq

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"

	"dynq/internal/pager"
)

// WALSoakOptions configure WALSoak, the crash/reopen loop behind
// dqbench -faults -wal. Unlike FaultSoak it injects no storage faults
// into the page file; the adversary here is the crash itself — torn
// bytes at the tail of the write-ahead log, exactly where a real crash
// mid-append or mid-group-commit tears.
type WALSoakOptions struct {
	// Cycles is the number of crash/reopen iterations (default 50).
	Cycles int
	// Seed drives the workload, the tear schedule, and the query mix;
	// the same seed replays the same soak (default 1).
	Seed int64
	// Batch is the number of motion updates per ApplyUpdates batch
	// (default 32).
	Batch int
	// AckedBatches is the number of durably acknowledged batches per
	// cycle, spread across Writers goroutines so group commit coalesces
	// them (default 4). Every acknowledged batch MUST survive the crash.
	AckedBatches int
	// AsyncBatches is the number of DurabilityAsync batches appended
	// after the acknowledged phase (default 4). These are the torn
	// tail's victims: a crash may keep a prefix of them, record by
	// record, never a partial record.
	AsyncBatches int
	// Writers is the number of concurrent goroutines issuing the
	// acknowledged batches (default 4).
	Writers int
	// BufferPages is the page-buffer capacity (default 4096). It must
	// hold the working set: the soak relies on dirty pages staying in
	// memory between checkpoints so the crash never tears the page file
	// itself — that failure class is FaultSoak's department.
	BufferPages int
	// CheckpointEvery checkpoints (Sync) after the acknowledged phase
	// every n-th cycle, exercising log truncation and the epoch bump
	// (default 3; <0 disables).
	CheckpointEvery int
	// MaxSegments rotates to a fresh file + log once the committed set
	// grows past it (default 8192).
	MaxSegments int
	// Shards > 1 runs the soak against a sharded database: one page file
	// and one log per shard, each crash tearing a random subset of the
	// logs independently. Acked batches must survive across ALL logs;
	// async sub-batches survive per shard, record-aligned in that
	// shard's log.
	Shards int
	// Dir is the working directory (default: a fresh temp dir).
	Dir string
	// Log, when set, receives one progress line per 25 cycles.
	Log func(format string, args ...any)
}

// WALSoakReport summarizes a WALSoak run. The invariants are
// LostAcked == 0 (no acknowledged write may vanish, whatever was torn)
// and WrongAnswers == 0 (the recovered database answers every query
// exactly like a replica that never crashed).
type WALSoakReport struct {
	Cycles          int // crash/reopen iterations executed
	BatchesAcked    int // durably acknowledged batches (all must survive)
	BatchesAsync    int // async batches exposed to the tear
	AsyncSurvived   int // async batches found intact after replay
	Tears           int // cycles whose log tail was torn or corrupted
	TornTails       int // reopens that reported a discarded torn tail
	Checkpoints     int // Sync checkpoints taken
	RecordsReplayed int // WAL records re-applied across all reopens
	UpdatesReplayed int // motion updates re-applied across all reopens
	Rotations       int // fresh-file rotations after MaxSegments
	LostAcked       int // acknowledged batches missing after replay (MUST be 0)
	WrongAnswers    int // query answers differing from the replica (MUST be 0)
	QueriesCompared int // individual query comparisons performed
}

func (r WALSoakReport) String() string {
	return fmt.Sprintf(
		"%d cycles: %d acked + %d async batches (%d survived), %d tears (%d torn tails discarded), %d checkpoints, replayed %d records (%d updates), %d rotations | %d lost acked, %d wrong answers (%d queries compared)",
		r.Cycles, r.BatchesAcked, r.BatchesAsync, r.AsyncSurvived,
		r.Tears, r.TornTails, r.Checkpoints,
		r.RecordsReplayed, r.UpdatesReplayed, r.Rotations,
		r.LostAcked, r.WrongAnswers, r.QueriesCompared)
}

// WALSoak runs crash/reopen cycles against a WAL-armed file database.
// Each cycle reopens with recovery (replaying the log), verifies the
// recovered answers against an in-memory replica fed the same batches,
// then writes a new round: concurrently group-committed batches that
// must survive, a checkpoint every few cycles, and a tail of
// DurabilityAsync batches. The cycle ends in a hard crash — the page
// file and log are abandoned without a sync — followed, most cycles, by
// a tear: truncating or flipping bytes strictly after the last
// acknowledged (fsynced) log offset, simulating a torn append or a
// group commit that died mid-write. Acknowledged data is never touched,
// because a completed fsync means those bytes survive a real crash.
func WALSoak(opts WALSoakOptions) (WALSoakReport, error) {
	if opts.Cycles <= 0 {
		opts.Cycles = 50
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Batch <= 0 {
		opts.Batch = 32
	}
	if opts.AckedBatches <= 0 {
		opts.AckedBatches = 4
	}
	if opts.AsyncBatches <= 0 {
		opts.AsyncBatches = 4
	}
	if opts.Writers <= 0 {
		opts.Writers = 4
	}
	if opts.BufferPages <= 0 {
		opts.BufferPages = 4096
	}
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = 3
	}
	if opts.MaxSegments <= 0 {
		opts.MaxSegments = 8192
	}
	dir := opts.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "dynq-walsoak")
		if err != nil {
			return WALSoakReport{}, err
		}
		defer os.RemoveAll(dir)
	}
	if opts.Shards > 1 {
		return walSoakSharded(opts, filepath.Join(dir, "walsoak.dynq"))
	}
	path := filepath.Join(dir, "walsoak.dynq")
	walPath := path + ".wal"

	var rep WALSoakReport
	var committed []soakSeg // acknowledged state, for rotation rebuilds
	replica, err := Open(Options{})
	if err != nil {
		return rep, err
	}
	defer func() { replica.Close() }()
	if err := rebuildFileWAL(path, walPath, committed, opts.BufferPages); err != nil {
		return rep, err
	}

	wrand := rand.New(rand.NewSource(opts.Seed))
	var nextID ObjectID
	// pendingAsync holds the async batches appended before the last
	// crash, in append order; replay keeps a per-record prefix of them.
	var pendingAsync [][]soakSeg
	for cycle := 0; cycle < opts.Cycles; cycle++ {
		rep.Cycles++

		// Recovery phase: reopen, replay, reconcile the replica with the
		// surviving async prefix, and compare answers.
		db, rrep, err := OpenFileRecoverWith(path, RecoverOptions{BufferPages: opts.BufferPages})
		if err != nil {
			return rep, fmt.Errorf("cycle %d: reopen: %w", cycle, err)
		}
		if !rrep.WALArmed {
			db.Close()
			return rep, fmt.Errorf("cycle %d: reopen did not arm the wal sidecar", cycle)
		}
		rep.RecordsReplayed += rrep.WALRecordsReplayed
		rep.UpdatesReplayed += rrep.WALUpdatesReplayed
		if rrep.WALTornTail {
			rep.TornTails++
		}
		survived, err := reconcileAsync(db, replica, &committed, pendingAsync)
		if err != nil {
			db.Close()
			return rep, fmt.Errorf("cycle %d: %w", cycle, err)
		}
		if survived < 0 {
			rep.LostAcked++
			survived = 0
		}
		rep.AsyncSurvived += survived
		pendingAsync = nil
		qrand := rand.New(rand.NewSource(opts.Seed ^ (int64(cycle)+1)*0x5DEECE66D))
		wrong, compared, err := compareAnswers(db, replica, qrand)
		if err != nil {
			db.Close()
			return rep, fmt.Errorf("cycle %d: query comparison: %w", cycle, err)
		}
		rep.WrongAnswers += wrong
		rep.QueriesCompared += compared

		// Acknowledged write phase: concurrent batches, group-committed.
		// Batches use disjoint fresh ids, so they commute — the replica
		// can apply them in any order and still answer identically. A
		// third of the batches carry churn (delete + reinsert of their
		// own first segment) so replay exercises the delete path without
		// changing the final state.
		acked := make([][]soakSeg, opts.AckedBatches)
		ackedUps := make([][]MotionUpdate, opts.AckedBatches)
		for i := range acked {
			acked[i] = genSoakBatch(wrand, opts.Batch, &nextID)
			ackedUps[i] = toUpdates(acked[i])
			if wrand.Intn(3) == 0 {
				ackedUps[i] = withChurn(ackedUps[i])
			}
		}
		var wg sync.WaitGroup
		errs := make([]error, opts.Writers)
		for w := 0; w < opts.Writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(ackedUps); i += opts.Writers {
					d := DurabilityGroupCommit
					if i%5 == 4 {
						d = DurabilitySync
					}
					if err := db.ApplyUpdates(context.Background(), ackedUps[i], WriteOptions{Durability: d}); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				db.Close()
				return rep, fmt.Errorf("cycle %d: acked batch: %w", cycle, err)
			}
		}
		rep.BatchesAcked += len(acked)
		for _, b := range acked {
			committed = append(committed, b...)
			for _, s := range b {
				if err := replica.Insert(s.id, s.seg); err != nil {
					db.Close()
					return rep, fmt.Errorf("cycle %d: replica insert: %w", cycle, err)
				}
			}
		}

		if opts.CheckpointEvery > 0 && cycle%opts.CheckpointEvery == opts.CheckpointEvery-1 {
			if err := db.Sync(); err != nil {
				db.Close()
				return rep, fmt.Errorf("cycle %d: checkpoint: %w", cycle, err)
			}
			rep.Checkpoints++
		}

		// The durable boundary: every log byte on disk right now is
		// covered by a completed fsync (the soak is quiescent), so the
		// tear must land strictly beyond this offset.
		ackedSize, err := fileSize(walPath)
		if err != nil {
			db.Close()
			return rep, fmt.Errorf("cycle %d: %w", cycle, err)
		}

		// Async tail: appended, applied in memory, never awaited.
		for i := 0; i < opts.AsyncBatches; i++ {
			b := genSoakBatch(wrand, opts.Batch, &nextID)
			if err := db.ApplyUpdates(context.Background(), toUpdates(b), WriteOptions{Durability: DurabilityAsync}); err != nil {
				db.Close()
				return rep, fmt.Errorf("cycle %d: async batch: %w", cycle, err)
			}
			pendingAsync = append(pendingAsync, b)
		}
		rep.BatchesAsync += len(pendingAsync)

		if err := crashDB(db); err != nil {
			return rep, fmt.Errorf("cycle %d: crash: %w", cycle, err)
		}
		torn, err := tearWALTail(walPath, ackedSize, wrand)
		if err != nil {
			return rep, fmt.Errorf("cycle %d: tear: %w", cycle, err)
		}
		if torn {
			rep.Tears++
		}

		if len(committed) >= opts.MaxSegments {
			committed = committed[:0]
			pendingAsync = nil
			replica.Close()
			if replica, err = Open(Options{}); err != nil {
				return rep, err
			}
			if err := rebuildFileWAL(path, walPath, committed, opts.BufferPages); err != nil {
				return rep, err
			}
			rep.Rotations++
		}
		if opts.Log != nil && (cycle+1)%25 == 0 {
			opts.Log("wal soak cycle %d/%d: %s", cycle+1, opts.Cycles, rep)
		}
	}
	return rep, nil
}

// reconcileAsync determines, from the recovered database's size, how
// many of the pre-crash async batches survived replay (the log keeps a
// record-aligned prefix), applies exactly those to the replica, and
// returns the count. A negative return means acknowledged data is
// missing — the invariant violation the soak exists to catch.
func reconcileAsync(db, replica *DB, committed *[]soakSeg, pendingAsync [][]soakSeg) (int, error) {
	base := replica.Len()
	got := db.Len()
	if got < base {
		return -1, nil
	}
	extra := got - base
	if len(pendingAsync) == 0 {
		if extra != 0 {
			return 0, fmt.Errorf("recovered %d unexplained segments (no async batches were pending)", extra)
		}
		return 0, nil
	}
	per := len(pendingAsync[0]) // async batches are insert-only, fixed size
	if per == 0 || extra%per != 0 || extra/per > len(pendingAsync) {
		return 0, fmt.Errorf("recovered %d extra segments, not a record-aligned prefix of %d async batches of %d",
			extra, len(pendingAsync), per)
	}
	survived := extra / per
	for _, b := range pendingAsync[:survived] {
		*committed = append(*committed, b...)
		for _, s := range b {
			if err := replica.Insert(s.id, s.seg); err != nil {
				return 0, fmt.Errorf("replica insert: %w", err)
			}
		}
	}
	return survived, nil
}

// toUpdates converts a generated batch to the ApplyUpdates form.
func toUpdates(batch []soakSeg) []MotionUpdate {
	ups := make([]MotionUpdate, len(batch))
	for i, s := range batch {
		ups[i] = MotionUpdate{ID: s.id, Segment: s.seg}
	}
	return ups
}

// withChurn appends a delete and an identical reinsert of the batch's
// first segment, so replay exercises deletion while the batch's final
// state stays exactly that of the plain inserts.
func withChurn(ups []MotionUpdate) []MotionUpdate {
	u := ups[0]
	return append(ups,
		MotionUpdate{ID: u.ID, Segment: Segment{T0: u.Segment.T0}, Delete: true},
		u)
}

// crashDB abandons the database without flushing: the page store and
// the log are closed as a real crash would leave them — no final sync,
// buffered pages lost, log ending wherever the last append stopped.
func crashDB(db *DB) error {
	db.wal.Crash()
	if fs, ok := db.store.(*pager.FileStore); ok {
		return fs.Crash()
	}
	return db.store.Close()
}

// tearWALTail damages the crash-exposed region of the log — the bytes
// past the last completed fsync. Three moves, chosen by the schedule:
// truncate into the region (a torn append: the OS persisted a prefix of
// a record), truncate deeper (a group commit that died after its first
// record hit the platter), or flip a byte mid-region (a sector that
// persisted garbage). About a quarter of cycles leave the tail intact,
// covering the every-byte-made-it crash.
func tearWALTail(walPath string, ackedSize int64, r *rand.Rand) (bool, error) {
	total, err := fileSize(walPath)
	if err != nil {
		return false, err
	}
	exposed := total - ackedSize
	if exposed <= 0 || r.Float64() < 0.25 {
		return false, nil
	}
	f, err := os.OpenFile(walPath, os.O_RDWR, 0)
	if err != nil {
		return false, err
	}
	defer f.Close()
	switch r.Intn(3) {
	case 0: // tear the final record: cut 1..min(64, exposed) bytes
		cut := int64(1 + r.Intn(int(min64(64, exposed))))
		return true, f.Truncate(total - cut)
	case 1: // tear deep: cut anywhere into the exposed region
		cut := int64(1 + r.Intn(int(exposed)))
		return true, f.Truncate(total - cut)
	default: // flip one byte somewhere in the exposed region
		off := ackedSize + int64(r.Intn(int(exposed)))
		var b [1]byte
		if _, err := f.ReadAt(b[:], off); err != nil {
			return false, err
		}
		b[0] ^= 0x40
		_, err := f.WriteAt(b[:], off)
		return true, err
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func fileSize(path string) (int64, error) {
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// rebuildFileWAL recreates the page file from the committed sequence
// and leaves a clean (checkpointed) log beside it, so the next
// recovering open arms the sidecar with nothing to replay.
func rebuildFileWAL(path, walPath string, committed []soakSeg, bufferPages int) error {
	db, err := Open(Options{Path: path, WALPath: walPath, BufferPages: bufferPages})
	if err != nil {
		return err
	}
	for _, s := range committed {
		if err := db.Insert(s.id, s.seg); err != nil {
			db.Close()
			return err
		}
	}
	if err := db.Sync(); err != nil {
		db.Close()
		return err
	}
	return db.Close()
}
