package dynq

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"time"

	"dynq/internal/geom"
	"dynq/internal/obs"
	"dynq/internal/pager"
	"dynq/internal/rtree"
	"dynq/internal/wal"
)

// ErrCorrupt is the umbrella for every integrity failure detected when
// opening a file-backed database: invalid metadata, checksum mismatches,
// a malformed tree, or pages newer than the committed header (a flush
// that died after overwriting committed pages in place). All such errors
// satisfy errors.Is(err, ErrCorrupt); page-level checksum failures
// additionally satisfy errors.Is(err, pager.ErrCorruptPage).
var ErrCorrupt = errors.New("dynq: database corrupt")

// RecoveryReport describes what Open-time recovery verified and
// repaired.
type RecoveryReport struct {
	// HeaderSeq is the committed header sequence number the database
	// opened at.
	HeaderSeq uint64
	// TornHeaderRepaired is true when only one header slot was valid at
	// open — the signature of a crash during a header commit. The commit
	// issued at the end of recovery rewrites the stale slot.
	TornHeaderRepaired bool
	// PagesChecked is the number of reachable pages whose checksum,
	// epoch, and structure were verified (the whole committed tree).
	PagesChecked int
	// LeafPages and InternalPages partition PagesChecked by level.
	LeafPages, InternalPages int
	// Segments is the number of leaf entries found, cross-checked
	// against the committed metadata.
	Segments int
	// FreePages is the number of allocated-but-unreachable pages, all on
	// the free list after recovery.
	FreePages int
	// FreeListRebuilt is true when the on-disk free chain disagreed with
	// the reachability walk (broken links, orphaned pages) and was
	// rebuilt from the tree.
	FreeListRebuilt bool
	// OrphanPages is the number of unreachable pages that were not on
	// the free chain and were returned to it.
	OrphanPages int
	// WALArmed is true when a write-ahead log was opened (and re-armed)
	// alongside the page file; the fields below are meaningful only then.
	WALArmed bool
	// WALCheckpointLSN is the log's committed checkpoint: every update at
	// or below it was already captured by a page commit.
	WALCheckpointLSN uint64
	// WALRecordsReplayed and WALUpdatesReplayed count the log records
	// (batches) and individual motion updates re-applied on top of the
	// committed tree.
	WALRecordsReplayed, WALUpdatesReplayed int
	// WALTornTail is true when the log ended in a torn record — a crash
	// mid-append or mid-group-commit — whose bytes were discarded. Only
	// un-acknowledged writes can be torn: a record covered by a completed
	// Sync/group-commit fsync is never part of the torn tail.
	WALTornTail bool
}

// String renders a one-line summary for logs and tools.
func (r RecoveryReport) String() string {
	s := fmt.Sprintf("seq %d: verified %d pages (%d internal, %d leaf, %d segments), %d free",
		r.HeaderSeq, r.PagesChecked, r.InternalPages, r.LeafPages, r.Segments, r.FreePages)
	if r.TornHeaderRepaired {
		s += ", repaired torn header slot"
	}
	if r.FreeListRebuilt {
		s += fmt.Sprintf(", rebuilt free list (%d orphans)", r.OrphanPages)
	}
	if r.WALArmed {
		s += fmt.Sprintf(", wal: replayed %d records (%d updates) past checkpoint %d",
			r.WALRecordsReplayed, r.WALUpdatesReplayed, r.WALCheckpointLSN)
		if r.WALTornTail {
			s += ", discarded torn tail"
		}
	}
	return s
}

// OpenFileRecover opens a file-backed database, verifying the committed
// tree before handing it out: every reachable page's checksum and epoch
// are checked, the structure is validated against the committed
// metadata, and the free list is rebuilt from the tree if the on-disk
// chain is damaged. Corruption surfaces as a typed error wrapping
// ErrCorrupt; the returned report says what was checked and repaired.
func OpenFileRecover(path string) (*DB, *RecoveryReport, error) {
	return OpenFileRecoverWith(path, RecoverOptions{})
}

// RecoverOptions tune OpenFileRecoverWith; the zero value matches
// OpenFileRecover exactly.
type RecoverOptions struct {
	// WALPath forces a write-ahead log at that path (created when
	// missing, replayed when not). Empty means auto-detect: the
	// conventional sidecar "<path>.wal" is armed iff it already exists.
	WALPath string
	// GroupCommitWindow is the armed log's coalescing window (see
	// Options.GroupCommitWindow).
	GroupCommitWindow time.Duration
	// BufferPages enables the server-side LRU page buffer (see
	// Options.BufferPages).
	BufferPages int
	// DegradeAfter is the consecutive-write-failure threshold (see
	// Options.DegradeAfter).
	DegradeAfter int
	// Maintenance configures the self-healing maintenance loop (see
	// Options.Maintenance).
	Maintenance MaintenanceOptions
}

// OpenFileRecoverWith is OpenFileRecover with knobs: it can force-arm a
// write-ahead log (dqserver -wal), set the group-commit window, and
// restore buffer/degradation options that plain recovery leaves at their
// defaults.
func OpenFileRecoverWith(path string, opts RecoverOptions) (*DB, *RecoveryReport, error) {
	if opts.BufferPages < 0 {
		return nil, nil, fmt.Errorf("dynq: RecoverOptions.BufferPages must be >= 0, got %d", opts.BufferPages)
	}
	fs, err := pager.OpenFileStore(path)
	if err != nil {
		return nil, nil, err
	}
	db, rep, err := recoverFileStore(fs, fs)
	if err != nil {
		fs.Close()
		return nil, nil, err
	}
	db.health.after = int32(opts.DegradeAfter)
	walPath := opts.WALPath
	if walPath == "" {
		sidecar := path + ".wal"
		if _, serr := os.Stat(sidecar); serr == nil {
			walPath = sidecar
		}
	}
	bufferPages := opts.BufferPages
	if walPath != "" && bufferPages == 0 {
		// Same default as Open: a logged database buffers dirty pages so
		// crashes cannot tear the committed base the log replays onto.
		bufferPages = defaultWALBufferPages
	}
	if bufferPages > 0 {
		if err := db.tree.UseBuffer(bufferPages); err != nil {
			db.Close()
			return nil, nil, err
		}
		db.bufferPages = bufferPages
	}
	if walPath != "" {
		if err := db.armWAL(walPath, opts.GroupCommitWindow, rep); err != nil {
			db.Close()
			return nil, nil, err
		}
	}
	db.maint = startMaintainer(db, opts.Maintenance)
	return db, rep, nil
}

// armWAL opens (or creates) the write-ahead log, replays every record
// the committed page state has not yet absorbed, and attaches the log so
// subsequent writes append to it. Replay happens before the database is
// visible, so no locking is needed; deletes of missing segments are
// tolerated (the segment may have died to a later record before the
// crash). The replayed state lives in memory until the next Sync
// checkpoints it — exactly like writes that never crashed.
func (db *DB) armWAL(path string, window time.Duration, rep *RecoveryReport) error {
	return db.armWALWith(path, wal.Options{GroupCommitWindow: window}, rep)
}

// armWALWith is armWAL with the full log option set; the chaos soak uses
// it to interpose a fault hook on the log's physical writes.
func (db *DB) armWALWith(path string, wopts wal.Options, rep *RecoveryReport) error {
	w, scan, err := wal.Open(path, wopts)
	if err != nil {
		return fmt.Errorf("dynq: open wal: %w", err)
	}
	records, updates := 0, 0
	err = w.Replay(db.appliedLSN, func(lsn uint64, payload []byte) error {
		ups, derr := decodeUpdates(payload, db.cfg.Dims)
		if derr != nil {
			return fmt.Errorf("%w: wal record %d: %v", ErrCorrupt, lsn, derr)
		}
		segs := make([]geom.Segment, len(ups))
		for i, u := range ups {
			if u.Delete {
				continue
			}
			g, serr := toSegmentDims(u.Segment, db.cfg.Dims)
			if serr != nil {
				return fmt.Errorf("%w: wal record %d: %v", ErrCorrupt, lsn, serr)
			}
			segs[i] = g
		}
		if aerr := db.applyLocked(ups, segs, true); aerr != nil {
			return fmt.Errorf("dynq: wal replay record %d: %w", lsn, aerr)
		}
		records++
		updates += len(ups)
		return nil
	})
	if err != nil {
		w.Close()
		return err
	}
	db.wal = w
	if rep != nil {
		rep.WALArmed = true
		rep.WALCheckpointLSN = scan.Checkpoint
		rep.WALRecordsReplayed = records
		rep.WALUpdatesReplayed = updates
		rep.WALTornTail = scan.TornTail
	}
	if records > 0 || scan.TornTail {
		sev := obs.SeverityInfo
		if scan.TornTail {
			sev = obs.SeverityWarn
		}
		obs.DefaultJournal().Record(obs.EventWALReplay, sev,
			fmt.Sprintf("wal replay: %d records (%d updates) past checkpoint %d, torn tail: %v",
				records, updates, scan.Checkpoint, scan.TornTail),
			map[string]string{
				"records":     strconv.Itoa(records),
				"updates":     strconv.Itoa(updates),
				"checkpoint":  strconv.FormatUint(scan.Checkpoint, 10),
				"torn_tail":   strconv.FormatBool(scan.TornTail),
				"last_lsn":    strconv.FormatUint(scan.LastLSN, 10),
				"applied_lsn": strconv.FormatUint(db.appliedLSN, 10),
			})
	}
	return nil
}

// recoverFileStore verifies the committed state of fs and builds a DB
// whose tree reads through treeStore — normally fs itself, but tests and
// the fault soak pass a FaultStore wrapping it.
func recoverFileStore(fs *pager.FileStore, treeStore pager.Store) (*DB, *RecoveryReport, error) {
	tree, m, appliedLSN, rep, err := recoverStoreTree(fs, treeStore)
	if err != nil {
		return nil, nil, err
	}
	db := &DB{tree: tree, cfg: m.Config, store: treeStore, appliedLSN: appliedLSN}
	tree.SetCounters(&db.counters)
	db.recovery = rep
	rep.journal()
	return db, rep, nil
}

// recoverStoreTree is the tree-level half of recovery, shared by the
// single-tree and sharded reopen paths: it verifies the committed state
// of fs (checksums, epochs, structure, free list), repairs what it can,
// and restores the tree reading through treeStore. The returned
// applied-LSN is the committed metadata's WAL watermark — replay starts
// past it.
func recoverStoreTree(fs *pager.FileStore, treeStore pager.Store) (*rtree.Tree, rtree.Meta, uint64, *RecoveryReport, error) {
	fail := func(err error) (*rtree.Tree, rtree.Meta, uint64, *RecoveryReport, error) {
		return nil, rtree.Meta{}, 0, nil, err
	}
	m, appliedLSN, err := decodeMeta(fs.Aux())
	if err != nil {
		return fail(err)
	}
	rep := &RecoveryReport{
		HeaderSeq:          fs.CommittedSeq(),
		TornHeaderRepaired: !fs.BothHeaderSlotsValid(),
	}
	reachable, err := verifyTree(fs, m, rep)
	if err != nil {
		return fail(err)
	}
	if err := recoverFreeList(fs, reachable, rep); err != nil {
		return fail(err)
	}
	if rep.TornHeaderRepaired && !rep.FreeListRebuilt {
		// Re-commit so the stale header slot is rewritten and the file
		// tolerates another torn commit.
		if err := fs.Sync(); err != nil {
			return fail(fmt.Errorf("dynq: repair torn header: %w", err))
		}
	}
	tree, err := rtree.Restore(m.Config, treeStore, m.Root, m.Height, m.Size, m.ModSeq)
	if err != nil {
		return fail(err)
	}
	return tree, m, appliedLSN, rep, nil
}

// journal leaves a queryable record of the recovery in the process-wide
// event journal, so operators see what open-time verification repaired
// without having run `dqload inspect`.
func (r RecoveryReport) journal() {
	sev := obs.SeverityInfo
	if r.TornHeaderRepaired || r.FreeListRebuilt {
		sev = obs.SeverityWarn
	}
	obs.DefaultJournal().Record(obs.EventRecovery, sev,
		"recovery-on-open completed: "+r.String(), map[string]string{
			"header_seq":           strconv.FormatUint(r.HeaderSeq, 10),
			"pages_checked":        strconv.Itoa(r.PagesChecked),
			"segments":             strconv.Itoa(r.Segments),
			"free_pages":           strconv.Itoa(r.FreePages),
			"orphan_pages":         strconv.Itoa(r.OrphanPages),
			"torn_header_repaired": strconv.FormatBool(r.TornHeaderRepaired),
			"free_list_rebuilt":    strconv.FormatBool(r.FreeListRebuilt),
		})
}

// verifyTree walks the committed tree breadth-first from the root,
// checking each page's checksum, epoch, level, and fanout, and returns
// the set of reachable pages.
func verifyTree(fs *pager.FileStore, m rtree.Meta, rep *RecoveryReport) (map[pager.PageID]bool, error) {
	seq := fs.CommittedSeq()
	count := uint32(fs.NumPages())
	reachable := make(map[pager.PageID]bool)
	if m.Root == pager.InvalidPage {
		return reachable, nil
	}
	type frame struct {
		id    pager.PageID
		level int
	}
	queue := []frame{{m.Root, m.Height - 1}}
	buf := make([]byte, pager.PageSize)
	for len(queue) > 0 {
		fr := queue[0]
		queue = queue[1:]
		if reachable[fr.id] {
			return nil, fmt.Errorf("%w: page %d reachable through two tree paths", ErrCorrupt, fr.id)
		}
		if uint32(fr.id) >= count {
			return nil, fmt.Errorf("%w: child pointer %d beyond allocated pages (%d)", ErrCorrupt, fr.id, count)
		}
		reachable[fr.id] = true
		epoch, err := fs.ReadPageEpoch(fr.id, buf)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
		}
		if epoch > seq {
			// The page was rewritten after the commit this header
			// describes: an unfinished flush clobbered committed state.
			return nil, fmt.Errorf("%w: page %d carries epoch %d newer than committed header %d (torn flush overwrote committed state)",
				ErrCorrupt, fr.id, epoch, seq)
		}
		n, err := rtree.DecodePage(m.Config, fr.id, buf)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
		}
		if n.Level != fr.level {
			return nil, fmt.Errorf("%w: page %d stores level %d, tree position implies %d", ErrCorrupt, fr.id, n.Level, fr.level)
		}
		if n.Leaf() {
			rep.LeafPages++
			rep.Segments += len(n.Entries)
			continue
		}
		rep.InternalPages++
		if len(n.Children) == 0 {
			return nil, fmt.Errorf("%w: internal page %d has no children", ErrCorrupt, fr.id)
		}
		for _, c := range n.Children {
			queue = append(queue, frame{c.ID, fr.level - 1})
		}
	}
	rep.PagesChecked = len(reachable)
	if rep.Segments != m.Size {
		return nil, fmt.Errorf("%w: tree holds %d segments, metadata claims %d", ErrCorrupt, rep.Segments, m.Size)
	}
	return reachable, nil
}

// recoverFreeList checks that the on-disk free chain is exactly the
// complement of the reachable set and rebuilds it from the tree when it
// is not (broken links, pages orphaned by a crash between Alloc and
// commit). A rebuild is committed immediately so the repair survives.
func recoverFreeList(fs *pager.FileStore, reachable map[pager.PageID]bool, rep *RecoveryReport) error {
	var unreachable []pager.PageID
	for id := pager.PageID(0); uint32(id) < uint32(fs.NumPages()); id++ {
		if !reachable[id] {
			unreachable = append(unreachable, id)
		}
	}
	rep.FreePages = len(unreachable)

	chain, chainErr := fs.FreeList()
	intact := chainErr == nil && len(chain) == len(unreachable)
	onChain := make(map[pager.PageID]bool, len(chain))
	if chainErr == nil {
		for _, id := range chain {
			onChain[id] = true
		}
		for _, id := range unreachable {
			if !onChain[id] {
				intact = false
			}
		}
		if len(onChain) != len(chain) {
			intact = false // duplicate links
		}
		for _, id := range chain {
			if reachable[id] {
				// A live tree page on the free chain would be handed out
				// by Alloc and overwritten. Always rebuild.
				intact = false
			}
		}
	}
	if intact {
		return nil
	}
	for _, id := range unreachable {
		if !onChain[id] {
			rep.OrphanPages++
		}
	}
	rep.FreeListRebuilt = true
	if err := fs.ResetFreeList(unreachable); err != nil {
		return fmt.Errorf("dynq: rebuild free list: %w", err)
	}
	if err := fs.Sync(); err != nil {
		return fmt.Errorf("dynq: commit rebuilt free list: %w", err)
	}
	return nil
}
