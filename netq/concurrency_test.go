package netq

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"

	"dynq"
)

// startServerWith is startServer with a hook to configure the server
// before it begins accepting.
func startServerWith(t *testing.T, db dynq.Database, configure func(*Server)) (addr string, srv *Server, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv = NewServer(db)
	if configure != nil {
		configure(srv)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Serve(l)
	}()
	return l.Addr().String(), srv, func() {
		l.Close()
		srv.Close()
		wg.Wait()
	}
}

// TestConcurrentClientsMatchSerial runs many clients issuing snapshot
// and KNN queries at once and checks every answer against the direct
// single-threaded result.
func TestConcurrentClientsMatchSerial(t *testing.T) {
	db := testDB(t)
	// Queue sized for the client count: on a single-CPU host the default
	// gate is 1 wide with a queue of 4, which 8 clients would overflow.
	addr, _, stop := startServerWith(t, db, func(s *Server) {
		s.WithConcurrency(runtime.GOMAXPROCS(0), 2*8)
	})
	defer stop()

	view := dynq.Rect{Min: []float64{0, 0}, Max: []float64{100, 100}}
	want, err := db.Snapshot(view, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	wantKNN, err := db.KNN([]float64{50, 50}, 10, 5)
	if err != nil {
		t.Fatal(err)
	}

	const clients, rounds = 8, 25
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer cl.Close()
			for r := 0; r < rounds; r++ {
				got, err := cl.Snapshot(view, 0, 100)
				if err != nil {
					errCh <- err
					return
				}
				if !sameIDs(got, want) {
					errCh <- fmt.Errorf("concurrent snapshot returned %d results, want %d", len(got), len(want))
					return
				}
				nbs, err := cl.KNN([]float64{50, 50}, 10, 5)
				if err != nil {
					errCh <- err
					return
				}
				if len(nbs) != len(wantKNN) {
					errCh <- fmt.Errorf("concurrent KNN returned %d neighbors, want %d", len(nbs), len(wantKNN))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func sameIDs(a, b []dynq.Result) bool {
	if len(a) != len(b) {
		return false
	}
	ids := func(rs []dynq.Result) []dynq.ObjectID {
		out := make([]dynq.ObjectID, len(rs))
		for i, r := range rs {
			out[i] = r.ID
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	x, y := ids(a), ids(b)
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// TestAdmissionControlOverload fills the read gate and checks that the
// next read is rejected with the typed overload error, round-tripped
// through the wire, while a write op still passes.
func TestAdmissionControlOverload(t *testing.T) {
	db := testDB(t)
	addr, srv, stop := startServerWith(t, db, func(s *Server) {
		s.WithConcurrency(1, 1)
	})
	defer stop()

	// Occupy the only execution slot and the only queue slot directly,
	// making the outcome deterministic without timing games.
	srv.readSem <- struct{}{}
	srv.queued.Add(1)

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	view := dynq.Rect{Min: []float64{0, 0}, Max: []float64{100, 100}}
	if _, err := cl.Snapshot(view, 0, 100); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("snapshot with full gate: err = %v, want ErrOverloaded", err)
	}
	// Writes bypass the read gate entirely.
	if err := cl.Insert(999, dynq.Segment{T0: 0, T1: 1, From: []float64{1, 1}, To: []float64{2, 2}}); err != nil {
		t.Fatalf("insert with full read gate: %v", err)
	}
	// Session ops (NPDQ lives per connection) bypass it too.
	if _, err := cl.NonPredictive(view, 0, 100); err != nil {
		t.Fatalf("npdq with full read gate: %v", err)
	}

	// Releasing the gate lets reads through again, and the rejection was
	// counted.
	srv.queued.Add(-1)
	<-srv.readSem
	if _, err := cl.Snapshot(view, 0, 100); err != nil {
		t.Fatalf("snapshot after release: %v", err)
	}
	if got := srv.metrics.overloads.Value(); got != 1 {
		t.Fatalf("overload counter = %d, want 1", got)
	}
}

// TestAdmissionControlQueueing verifies a read waits (rather than being
// rejected) while the queue has room, and proceeds once a slot frees up.
func TestAdmissionControlQueueing(t *testing.T) {
	db := testDB(t)
	addr, srv, stop := startServerWith(t, db, func(s *Server) {
		s.WithConcurrency(1, 2)
	})
	defer stop()

	srv.readSem <- struct{}{} // hold the only slot

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	view := dynq.Rect{Min: []float64{0, 0}, Max: []float64{100, 100}}
	done := make(chan error, 1)
	go func() {
		_, err := cl.Snapshot(view, 0, 100)
		done <- err
	}()

	// The snapshot is queued; free the slot and it must complete.
	select {
	case err := <-done:
		t.Fatalf("snapshot finished while the gate was held (err=%v)", err)
	default:
	}
	<-srv.readSem
	if err := <-done; err != nil {
		t.Fatalf("queued snapshot failed: %v", err)
	}
}

// TestSegmentHitRatioGauges serves a buffered, file-backed database and
// checks the per-segment buffer gauges land on /metrics after traffic.
func TestSegmentHitRatioGauges(t *testing.T) {
	db, err := dynq.Open(dynq.Options{Path: t.TempDir() + "/seg.dqi", BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for i := 0; i < 200; i++ {
		x := float64(i % 100)
		if err := db.Insert(dynq.ObjectID(i), dynq.Segment{
			T0: 0, T1: 100, From: []float64{x, 50}, To: []float64{x, 50},
		}); err != nil {
			t.Fatal(err)
		}
	}
	addr, srv, stop := startServerWith(t, db, nil)
	defer stop()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 3; i++ {
		if _, err := cl.Snapshot(dynq.Rect{Min: []float64{0, 0}, Max: []float64{100, 100}}, 0, 100); err != nil {
			t.Fatal(err)
		}
	}

	var buf strings.Builder
	srv.Registry().WritePrometheus(&buf)
	out := buf.String()
	if !strings.Contains(out, `pager_buffer_segment_hit_ratio{segment="0"}`) {
		t.Fatalf("per-segment hit-ratio gauges missing from scrape:\n%s", out)
	}
	segs := db.BufferSegments()
	if len(segs) == 0 {
		t.Fatal("buffered DB reports no segments")
	}
	var traffic int64
	for _, s := range segs {
		traffic += s.Hits + s.Misses
	}
	if traffic == 0 {
		t.Error("segments saw no traffic after buffered snapshots")
	}
}

// TestWithConcurrencyUnlimited pins the <=0 escape hatch.
func TestWithConcurrencyUnlimited(t *testing.T) {
	srv := NewServer(testDB(t))
	if srv.MaxConcurrent() == 0 {
		t.Fatal("default server has no read bound")
	}
	srv.WithConcurrency(0, 0)
	if srv.readSem != nil || srv.MaxConcurrent() != 0 {
		t.Fatal("WithConcurrency(0,0) did not remove the bound")
	}
	if release, err := srv.admitRead(); err != nil || release == nil {
		t.Fatalf("unlimited admitRead: release nil=%v err=%v", release == nil, err)
	}
}
