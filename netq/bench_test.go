package netq

import (
	"net"
	"testing"

	"dynq"
)

func BenchmarkSnapshotRoundTrip(b *testing.B) {
	db, err := dynq.Open(dynq.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 500; i++ {
		x := float64(i % 100)
		err := db.Insert(dynq.ObjectID(i), dynq.Segment{
			T0: 0, T1: 100,
			From: []float64{x, 50}, To: []float64{x, 50},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	l, stop := listen(b, db)
	defer stop()
	cl, err := Dial(l)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	view := dynq.Rect{Min: []float64{40, 40}, Max: []float64{60, 60}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Snapshot(view, 10, 11); err != nil {
			b.Fatal(err)
		}
	}
}

func listen(b *testing.B, db *dynq.DB) (addr string, stop func()) {
	b.Helper()
	// Reuse the test helper shape without *testing.T.
	srv := NewServer(db)
	l, err := netListen()
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	return l.Addr().String(), func() {
		l.Close()
		srv.Close()
	}
}

func netListen() (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }
