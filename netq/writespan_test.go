package netq

import (
	"context"
	"path/filepath"
	"testing"

	"dynq"
	"dynq/internal/obs"
)

// walTestDB opens a WAL-armed file database so the write path runs all
// four stages: validate, wal-append, tree-apply, and fsync-wait.
func walTestDB(t *testing.T) *dynq.DB {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.pages")
	db, err := dynq.Open(dynq.Options{
		Path:        path,
		WALPath:     path + ".wal",
		BufferPages: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func probeUpdates(n int) []dynq.MotionUpdate {
	ups := make([]dynq.MotionUpdate, n)
	for i := range ups {
		ups[i] = dynq.MotionUpdate{ID: dynq.ObjectID(i + 1), Segment: dynq.Segment{
			T0: 0, T1: 10,
			From: []float64{float64(i), 0}, To: []float64{float64(i), 10},
		}}
	}
	return ups
}

// findSpan returns the first span in the trace with the given op.
func findSpan(spans []obs.Span, op string) (obs.Span, bool) {
	for _, s := range spans {
		if s.Op == op {
			return s, true
		}
	}
	return obs.Span{}, false
}

// TestWriteSpanTracePropagation is the write-path acceptance test: an
// ApplyUpdates through the netq client with a caller trace context must
// yield a server trace containing the apply-updates op span (parented
// on the client's span) and a write.apply-updates child span carrying
// all four stage deltas.
func TestWriteSpanTracePropagation(t *testing.T) {
	db := walTestDB(t)
	srv, addr, stop := startServerKeep(t, db)
	defer stop()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tc := obs.NewTraceContext()
	ctx := obs.ContextWithTrace(context.Background(), tc)
	ups := probeUpdates(16)
	if err := cl.ApplyUpdatesCtx(ctx, ups, dynq.DurabilityGroupCommit); err != nil {
		t.Fatal(err)
	}

	spans := srv.Tracer().Trace(tc.TraceID.String())
	opSpan, ok := findSpan(spans, "apply-updates")
	if !ok {
		t.Fatalf("trace %s has no apply-updates op span; spans: %+v", tc.TraceID, spans)
	}
	if opSpan.ParentID != tc.SpanID.String() {
		t.Errorf("op span parent = %q, want the client span %q", opSpan.ParentID, tc.SpanID)
	}

	ws, ok := findSpan(spans, "write.apply-updates")
	if !ok {
		t.Fatalf("trace %s has no write.apply-updates span; spans: %+v", tc.TraceID, spans)
	}
	if ws.ParentID != opSpan.SpanID {
		t.Errorf("write span parent = %q, want the op span %q", ws.ParentID, opSpan.SpanID)
	}
	if ws.TraceID != tc.TraceID.String() {
		t.Errorf("write span trace id = %q, want %q", ws.TraceID, tc.TraceID)
	}
	if ws.Results != len(ups) {
		t.Errorf("write span results = %d, want %d", ws.Results, len(ups))
	}
	if ws.Shard != obs.NoShard {
		t.Errorf("write span shard = %d, want NoShard", ws.Shard)
	}

	want := []string{"validate", "wal-append", "tree-apply", "fsync-wait"}
	got := map[string]int64{}
	for _, st := range ws.Stages {
		got[st.Stage] = st.WallNS
	}
	for _, stage := range want {
		ns, ok := got[stage]
		if !ok {
			t.Errorf("write span missing stage %q (have %v)", stage, ws.Stages)
			continue
		}
		if ns < 0 {
			t.Errorf("stage %q wall time = %dns, want >= 0", stage, ns)
		}
	}
	if len(ws.Stages) != len(want) {
		t.Errorf("write span has %d stages, want %d: %+v", len(ws.Stages), len(want), ws.Stages)
	}
}

// TestWriteSpanShardedStages checks the sharded engine's write span:
// memory-backed, so no logs are armed and only the validate and
// tree-apply stages appear.
func TestWriteSpanShardedStages(t *testing.T) {
	db := shardedTestDB(t, 2)
	srv, addr, stop := startServerKeep(t, db)
	defer stop()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tc := obs.NewTraceContext()
	ctx := obs.ContextWithTrace(context.Background(), tc)
	ups := probeUpdates(8)
	for i := range ups {
		ups[i].ID += 1000 // clear of shardedTestDB's seeded ids
	}
	if err := cl.ApplyUpdatesCtx(ctx, ups, dynq.DurabilityDefault); err != nil {
		t.Fatal(err)
	}

	spans := srv.Tracer().Trace(tc.TraceID.String())
	ws, ok := findSpan(spans, "write.apply-updates")
	if !ok {
		t.Fatalf("trace %s has no write.apply-updates span; spans: %+v", tc.TraceID, spans)
	}
	var stages []string
	for _, st := range ws.Stages {
		stages = append(stages, st.Stage)
	}
	if len(stages) != 2 || stages[0] != "validate" || stages[1] != "tree-apply" {
		t.Errorf("sharded write span stages = %v, want [validate tree-apply]", stages)
	}
}
