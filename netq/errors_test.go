package netq

import (
	"errors"
	"fmt"
	"testing"

	"dynq"
)

// TestTypedErrorRoundTrip pins the errKind/typedError pairing: every
// typed sentinel a server can return must classify to a wire kind and
// reconstruct client-side so errors.Is keeps working across the wire.
func TestTypedErrorRoundTrip(t *testing.T) {
	cases := []struct {
		name     string
		server   error
		kind     string
		sentinel error
	}{
		{
			name:     "disk full",
			server:   fmt.Errorf("dynq: wal append: %w", dynq.ErrDiskFull),
			kind:     ErrKindDiskFull,
			sentinel: dynq.ErrDiskFull,
		},
		{
			name:     "read only",
			server:   fmt.Errorf("refusing write: %w", dynq.ErrReadOnly),
			kind:     ErrKindReadOnly,
			sentinel: dynq.ErrReadOnly,
		},
		{
			// A disk-full failure that also tripped read-only mode must
			// surface as disk-full: it names the actionable cause.
			name:     "disk full wins over read only",
			server:   fmt.Errorf("%w: %w", dynq.ErrReadOnly, dynq.ErrDiskFull),
			kind:     ErrKindDiskFull,
			sentinel: dynq.ErrDiskFull,
		},
		{
			name:     "not found",
			server:   fmt.Errorf("delete: %w", dynq.ErrNotFound),
			kind:     ErrKindNotFound,
			sentinel: dynq.ErrNotFound,
		},
		{
			name:     "overloaded",
			server:   ErrOverloaded,
			kind:     ErrKindOverloaded,
			sentinel: ErrOverloaded,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			kind := errKind(tc.server)
			if kind != tc.kind {
				t.Fatalf("errKind(%v) = %q, want %q", tc.server, kind, tc.kind)
			}
			got := typedError(Request{Op: OpApplyUpdates}, Response{Err: tc.server.Error(), ErrKind: kind})
			if !errors.Is(got, tc.sentinel) {
				t.Fatalf("reconstructed error %v does not match the sentinel %v", got, tc.sentinel)
			}
			if got.Error() != tc.server.Error() {
				t.Fatalf("message lost in transit: %q != %q", got.Error(), tc.server.Error())
			}
		})
	}
}
