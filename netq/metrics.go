package netq

import (
	"net"
	"strconv"

	"dynq"
	"dynq/internal/obs"
	"dynq/internal/pager"
)

// knownOps enumerates the protocol operations, in declaration order, for
// per-op metric pre-registration (lock-free lookup on the request path).
var knownOps = []Op{
	OpSnapshot, OpInsert, OpApplyUpdates, OpKNN,
	OpPDQStart, OpPDQFetch,
	OpNPDQ, OpNPDQReset,
	OpAdaptiveStart, OpAdaptiveFrame,
	OpStats, OpTelemetry,
	OpTrackUpdate, OpTrackAt, OpTrackDuring, OpTrackAlong,
}

// opMetrics aggregates the per-operation signals.
type opMetrics struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

// serverMetrics is the server's registry-backed instrumentation: per-op
// request counts, error counts and latency histograms, connection and
// session gauges, byte counters, and pager/engine gauges that read the
// database's live cost counters at render time.
type serverMetrics struct {
	perOp             map[Op]*opMetrics
	activeConns       *obs.Gauge
	activePDQ         *obs.Gauge
	activeAdaptive    *obs.Gauge
	bytesIn           *obs.Counter
	bytesOut          *obs.Counter
	unknownOps        *obs.Counter
	noTracker         *obs.Counter
	versionMismatches *obs.Counter

	// Contention observability for the concurrent read path.
	inflightOps    *obs.Gauge     // ops currently executing (all kinds)
	readQueueDepth *obs.Gauge     // read ops waiting for an execution slot
	admissionWait  *obs.Histogram // seconds a read spent waiting to start
	overloads      *obs.Counter   // reads rejected by admission control
}

func newServerMetrics(reg *obs.Registry, db dynq.Database) *serverMetrics {
	reg.SetHelp("netq_requests_total", "Requests received, by protocol op.")
	reg.SetHelp("netq_request_errors_total", "Requests answered with an error, by protocol op.")
	reg.SetHelp("netq_request_seconds", "Request handling latency in seconds, by protocol op.")
	reg.SetHelp("netq_active_connections", "Currently open client connections.")
	reg.SetHelp("netq_active_sessions", "Currently running dynamic-query sessions, by kind.")
	reg.SetHelp("netq_bytes_in_total", "Bytes read from clients.")
	reg.SetHelp("netq_bytes_out_total", "Bytes written to clients.")
	reg.SetHelp("netq_unknown_ops_total", "Requests naming an operation the server has no handler for.")
	reg.SetHelp("netq_no_tracker_errors_total", "Tracker operations rejected because no tracker is attached.")
	reg.SetHelp("netq_version_mismatches_total", "Connections rejected by the protocol version handshake.")
	reg.SetHelp("netq_inflight_ops", "Operations currently executing.")
	reg.SetHelp("netq_read_queue_depth", "Read operations waiting for an execution slot.")
	reg.SetHelp("netq_read_admission_wait_seconds", "Time read operations spent waiting for an execution slot.")
	reg.SetHelp("netq_overload_rejections_total", "Read operations rejected because the wait queue was full.")
	reg.SetHelp("pager_buffer_segment_hit_ratio", "Per-lock-segment buffer pool hits / (hits + misses).")
	reg.SetHelp("pager_buffer_hit_ratio", "Buffer pool hits / (hits + misses).")
	reg.SetHelp("dynq_page_reads_total", "Cumulative index node fetches (the paper's disk-access metric).")
	reg.SetHelp("dynq_distance_comps_total", "Cumulative geometric predicate evaluations (the paper's CPU metric).")
	reg.SetHelp("pager_checksum_failures_total", "Pages whose CRC32C trailer failed verification on read.")
	reg.SetHelp("netq_retries_total", "Transparent redial-and-retry attempts by reconnecting clients in this process.")
	reg.SetHelp("dynq_degraded_mode", "1 when the database has degraded to read-only after storage write failures.")

	m := &serverMetrics{perOp: make(map[Op]*opMetrics, len(knownOps))}
	for _, op := range knownOps {
		l := obs.L("op", string(op))
		m.perOp[op] = &opMetrics{
			requests: reg.Counter("netq_requests_total", l),
			errors:   reg.Counter("netq_request_errors_total", l),
			latency:  reg.Histogram("netq_request_seconds", nil, l),
		}
	}
	m.activeConns = reg.Gauge("netq_active_connections")
	m.activePDQ = reg.Gauge("netq_active_sessions", obs.L("kind", "pdq"))
	m.activeAdaptive = reg.Gauge("netq_active_sessions", obs.L("kind", "adaptive"))
	m.bytesIn = reg.Counter("netq_bytes_in_total")
	m.bytesOut = reg.Counter("netq_bytes_out_total")
	m.unknownOps = reg.Counter("netq_unknown_ops_total")
	m.noTracker = reg.Counter("netq_no_tracker_errors_total")
	m.versionMismatches = reg.Counter("netq_version_mismatches_total")
	m.inflightOps = reg.Gauge("netq_inflight_ops")
	m.readQueueDepth = reg.Gauge("netq_read_queue_depth")
	m.admissionWait = reg.Histogram("netq_read_admission_wait_seconds", nil)
	m.overloads = reg.Counter("netq_overload_rejections_total")
	obs.RegisterBuildInfo(reg)

	// Buffer pool and engine totals are owned by the database; expose
	// them as render-time gauges over its live (atomic) accounting.
	reg.GaugeFunc("pager_buffer_hit_ratio", func() float64 { return db.BufferStats().HitRatio() })
	reg.GaugeFunc("pager_buffer_hits_total", func() float64 { return float64(db.BufferStats().Hits) })
	reg.GaugeFunc("pager_buffer_misses_total", func() float64 { return float64(db.BufferStats().Misses) })
	reg.GaugeFunc("pager_buffer_writebacks_total", func() float64 { return float64(db.BufferStats().WriteBacks) })
	reg.GaugeFunc("pager_buffer_frames", func() float64 { return float64(db.BufferStats().Len) })
	reg.GaugeFunc("dynq_page_reads_total", func() float64 { return float64(db.CostSnapshot().Reads()) })
	reg.GaugeFunc("dynq_page_writes_total", func() float64 { return float64(db.CostSnapshot().PageWrites) })
	reg.GaugeFunc("dynq_distance_comps_total", func() float64 { return float64(db.CostSnapshot().DistanceComps) })
	reg.GaugeFunc("dynq_pruned_nodes_total", func() float64 { return float64(db.CostSnapshot().PrunedNodes) })
	reg.GaugeFunc("dynq_results_total", func() float64 { return float64(db.CostSnapshot().Results) })
	reg.GaugeFunc("pager_checksum_failures_total", func() float64 { return float64(pager.ChecksumFailures()) })
	reg.GaugeFunc("netq_retries_total", func() float64 { return float64(RetriesTotal()) })
	reg.GaugeFunc("dynq_degraded_mode", func() float64 {
		if db.Degraded() {
			return 1
		}
		return 0
	})

	// One hit-ratio gauge per buffer pool lock segment: a cold or
	// thrashing segment shows up as an outlier. The segment count is
	// fixed by the pool's capacity, so registration at startup is safe.
	for i := range db.BufferSegments() {
		idx := i
		reg.GaugeFunc("pager_buffer_segment_hit_ratio", func() float64 {
			segs := db.BufferSegments()
			if idx >= len(segs) {
				return 0
			}
			return segs[idx].HitRatio()
		}, obs.L("segment", strconv.Itoa(i)))
	}

	// A sharded backend also exposes its per-shard gauges and fan-out
	// latency histograms.
	if sdb, ok := db.(*dynq.ShardedDB); ok {
		sdb.RegisterMetrics(reg)
	}
	// A database with a WAL armed exposes the log's group-commit
	// instrumentation (fsync latency, batch sizes, checkpoint lag).
	if wdb, ok := db.(walMetricsSource); ok {
		wdb.RegisterWALMetrics(reg)
	}
	// A database running the self-healing maintenance loop exposes its
	// checkpoint/probe/scrub counters.
	if mdb, ok := db.(maintMetricsSource); ok {
		mdb.RegisterMaintenanceMetrics(reg)
	}
	return m
}

// maintMetricsSource is the optional Database capability registering
// the maintenance loop's metrics (registration is a no-op when no loop
// is running).
type maintMetricsSource interface {
	RegisterMaintenanceMetrics(reg *obs.Registry) bool
}

// walMetricsSource is the optional Database capability registering an
// armed write-ahead log's metrics (*dynq.DB implements it; registration
// is a no-op when no WAL is armed).
type walMetricsSource interface {
	RegisterWALMetrics(reg *obs.Registry) bool
}

// isWriteOp classifies the ops that mutate the index through the batched
// write path, for separate SLO tracking and slow-write capture. Tracker
// updates mutate only the in-memory tracker and stay in the read class.
func isWriteOp(op Op) bool {
	switch op {
	case OpInsert, OpApplyUpdates:
		return true
	}
	return false
}

// engineFor names the query engine behind an op, for the tracer's stage
// decomposition. Ops that do not traverse the index report no stages.
func engineFor(op Op) (string, bool) {
	switch op {
	case OpSnapshot:
		return "snapshot", true
	case OpKNN:
		return "knn", true
	case OpPDQFetch:
		return "pdq", true
	case OpNPDQ:
		return "npdq", true
	case OpAdaptiveFrame:
		return "adaptive", true
	case OpInsert, OpApplyUpdates:
		return "insert", true
	}
	return "", false
}

// countingConn counts bytes flowing through a client connection.
type countingConn struct {
	net.Conn
	in, out *obs.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}
