package netq

import (
	"errors"
	"fmt"

	"dynq"
)

// Error kinds carried in Response.ErrKind so clients can reconstruct
// typed errors across the wire (the Err string alone is ambiguous).
const (
	ErrKindUnknownOp  = "unknown_op"
	ErrKindNoTracker  = "no_tracker"
	ErrKindNoSession  = "no_session"
	ErrKindOverloaded = "overloaded"
	ErrKindReadOnly   = "read_only"
	ErrKindNotFound   = "not_found"
	ErrKindNoWAL      = "no_wal"
	ErrKindDiskFull   = "disk_full"
)

// ErrNoTracker is returned (and matched with errors.Is on both sides of
// the wire) when a tracker operation reaches a server that was not given
// a tracker.
var ErrNoTracker = errors.New("netq: server has no tracker")

// ErrNoSession is returned when a session-scoped operation (pdq-fetch,
// adaptive-frame) arrives before the corresponding start op.
var ErrNoSession = errors.New("netq: no session started on this connection")

// ErrOverloaded is returned (and matched with errors.Is on both sides of
// the wire) when a read operation is rejected by admission control: the
// configured number of reads are already executing and the wait queue is
// full. Clients should back off and retry.
var ErrOverloaded = errors.New("netq: server overloaded, read rejected by admission control")

// UnknownOpError is returned when a request names an operation the
// server has no handler for.
type UnknownOpError struct {
	Op Op
}

func (e *UnknownOpError) Error() string { return fmt.Sprintf("netq: unknown op %q", e.Op) }

// VersionError reports a protocol version mismatch detected during the
// connection handshake. Remote is 0 when the peer predates the
// handshake (protocol version 1) or is not a netq endpoint at all;
// Detail carries the peer's own description of the failure, if any.
type VersionError struct {
	Local  int
	Remote int
	Detail string
}

func (e *VersionError) Error() string {
	msg := fmt.Sprintf("netq: protocol version mismatch: local v%d, peer v%d", e.Local, e.Remote)
	if e.Remote == 0 {
		msg += " (peer predates the handshake or is not a netq server)"
	}
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	return msg
}

// errKind classifies a server-side error for the wire.
func errKind(err error) string {
	var uo *UnknownOpError
	switch {
	case errors.As(err, &uo):
		return ErrKindUnknownOp
	case errors.Is(err, ErrNoTracker):
		return ErrKindNoTracker
	case errors.Is(err, ErrNoSession):
		return ErrKindNoSession
	case errors.Is(err, ErrOverloaded):
		return ErrKindOverloaded
	case errors.Is(err, dynq.ErrDiskFull):
		// Checked before the generic kinds: a disk-full failure is more
		// actionable than "storage error" on the client side.
		return ErrKindDiskFull
	case errors.Is(err, dynq.ErrReadOnly):
		return ErrKindReadOnly
	case errors.Is(err, dynq.ErrNotFound):
		return ErrKindNotFound
	case errors.Is(err, dynq.ErrNoWAL):
		return ErrKindNoWAL
	}
	return ""
}

// wireError carries the server's message while unwrapping to the typed
// sentinel, so errors.Is works client-side.
type wireError struct {
	msg      string
	sentinel error
}

func (e *wireError) Error() string { return e.msg }
func (e *wireError) Unwrap() error { return e.sentinel }

// typedError reconstructs a typed error on the client from a response.
func typedError(req Request, resp Response) error {
	switch resp.ErrKind {
	case ErrKindUnknownOp:
		return &UnknownOpError{Op: req.Op}
	case ErrKindNoTracker:
		return &wireError{msg: resp.Err, sentinel: ErrNoTracker}
	case ErrKindNoSession:
		return &wireError{msg: resp.Err, sentinel: ErrNoSession}
	case ErrKindOverloaded:
		return &wireError{msg: resp.Err, sentinel: ErrOverloaded}
	case ErrKindDiskFull:
		return &wireError{msg: resp.Err, sentinel: dynq.ErrDiskFull}
	case ErrKindReadOnly:
		return &wireError{msg: resp.Err, sentinel: dynq.ErrReadOnly}
	case ErrKindNotFound:
		return &wireError{msg: resp.Err, sentinel: dynq.ErrNotFound}
	case ErrKindNoWAL:
		return &wireError{msg: resp.Err, sentinel: dynq.ErrNoWAL}
	}
	return errors.New(resp.Err)
}
