package netq

import (
	"context"
	"encoding/gob"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"dynq"
)

// startServerAt is startServer pinned to a specific address, so a test
// can restart a server on the port a client is retrying against.
func startServerAt(t *testing.T, addr string, db dynq.Database) (string, func()) {
	t.Helper()
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	srv := NewServer(db)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Serve(l)
	}()
	return l.Addr().String(), func() {
		l.Close()
		srv.Close()
		wg.Wait()
	}
}

// TestReadRetriesAcrossServerRestart is the read half of the resilience
// acceptance criterion: with Reconnect enabled, a snapshot issued while
// the server is down succeeds transparently once it comes back, within
// the context deadline.
func TestReadRetriesAcrossServerRestart(t *testing.T) {
	db := testDB(t)
	addr, stop := startServerAt(t, "127.0.0.1:0", db)
	cl, err := DialWithOptions(addr, DialOptions{
		Reconnect:     true,
		RetryMax:      40,
		RetryBase:     5 * time.Millisecond,
		RetryMaxDelay: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	view := dynq.Rect{Min: []float64{0, 0}, Max: []float64{100, 100}}
	before, err := cl.Snapshot(view, 0, 1)
	if err != nil {
		t.Fatalf("snapshot before restart: %v", err)
	}

	stop() // the client's connection is now dead
	retriesBefore := RetriesTotal()
	done := make(chan func(), 1)
	go func() {
		time.Sleep(150 * time.Millisecond)
		_, stop2 := startServerAt(t, addr, db)
		done <- stop2
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	after, err := cl.SnapshotCtx(ctx, view, 0, 1)
	defer (<-done)()
	if err != nil {
		t.Fatalf("snapshot across restart should retry to success, got: %v", err)
	}
	if len(after) != len(before) {
		t.Fatalf("snapshot across restart returned %d results, want %d", len(after), len(before))
	}
	if RetriesTotal() == retriesBefore {
		t.Fatal("the retried snapshot did not advance the RetriesTotal counter")
	}
}

// TestWriteFailsFastWhenServerDies is the write half of the acceptance
// criterion: in the same outage window a write must NOT be retried — it
// fails promptly with an error matching ErrConnectionLost, and once the
// server is back the object count shows the insert was never applied
// twice (or at all, here: the connection died before the request left).
func TestWriteFailsFastWhenServerDies(t *testing.T) {
	db := testDB(t)
	sizeBefore := mustSize(t, db)
	addr, stop := startServerAt(t, "127.0.0.1:0", db)
	cl, err := DialWithOptions(addr, DialOptions{
		Reconnect:     true, // reconnect applies to reads only
		RetryMax:      40,
		RetryBase:     5 * time.Millisecond,
		RetryMaxDelay: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Insert(1000, seg(5, 5)); err != nil {
		t.Fatalf("insert before outage: %v", err)
	}

	stop()
	start := time.Now()
	err = cl.Insert(1001, seg(6, 6))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("insert against a dead server reported success")
	}
	if !errors.Is(err, ErrConnectionLost) {
		t.Fatalf("insert failure not typed: got %v, want errors.Is(err, ErrConnectionLost)", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("write took %v to fail — it must fail fast, not sit in a retry loop", elapsed)
	}

	if got, want := mustSize(t, db), sizeBefore+1; got != want {
		t.Fatalf("database holds %d segments, want %d (exactly one applied insert, none duplicated)", got, want)
	}
}

func mustSize(t *testing.T, db *dynq.DB) int {
	t.Helper()
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	return st.Segments
}

func seg(x, y float64) dynq.Segment {
	return dynq.Segment{T0: 0, T1: 100, From: []float64{x, y}, To: []float64{x, y}}
}

// TestDialHandshakeTimeout reproduces the half-open-peer hang: a
// listener that accepts connections but never answers the handshake.
// Dial must fail within the handshake timeout instead of blocking
// forever.
func TestDialHandshakeTimeout(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold the connection open, say nothing
		}
	}()

	start := time.Now()
	_, err = DialWithOptions(l.Addr().String(), DialOptions{HandshakeTimeout: 200 * time.Millisecond})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dialing a mute peer should fail")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("dial took %v, the 200ms handshake timeout did not bound it", elapsed)
	}
}

// TestCloseInterruptsInflightCall: Close from another goroutine must
// unblock a roundTrip stuck waiting for a response and surface
// ErrClientClosed.
func TestCloseInterruptsInflightCall(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// A fake server that handshakes correctly, then swallows the first
	// request without ever responding.
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		dec, enc := gob.NewDecoder(conn), gob.NewEncoder(conn)
		var h hello
		if dec.Decode(&h) != nil {
			return
		}
		if enc.Encode(helloAck{Magic: protocolMagic, Version: ProtocolVersion}) != nil {
			return
		}
		var req Request
		if dec.Decode(&req) != nil {
			return
		}
		select {} // never answer
	}()

	cl, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := cl.Snapshot(dynq.Rect{Min: []float64{0, 0}, Max: []float64{1, 1}}, 0, 1)
		errc <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the call reach the blocked decode
	if err := cl.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClientClosed) {
			t.Fatalf("interrupted call returned %v, want ErrClientClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock the in-flight call")
	}
	if _, err := cl.Stats(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("call after Close returned %v, want ErrClientClosed", err)
	}
}

// TestReadOnlyErrorOverTheWire: a degraded (read-only) database must
// reject writes with an error that survives the wire as
// errors.Is(err, dynq.ErrReadOnly), while reads keep working.
func TestReadOnlyErrorOverTheWire(t *testing.T) {
	db := testDB(t)
	db.SetReadOnly(true)
	defer db.SetReadOnly(false)
	addr, stop := startServer(t, db)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	err = cl.Insert(2000, seg(1, 1))
	if !errors.Is(err, dynq.ErrReadOnly) {
		t.Fatalf("insert against degraded server: got %v, want errors.Is(err, dynq.ErrReadOnly)", err)
	}
	if _, err := cl.Snapshot(dynq.Rect{Min: []float64{0, 0}, Max: []float64{100, 100}}, 0, 1); err != nil {
		t.Fatalf("reads must keep working in degraded mode: %v", err)
	}
}

// TestRetryBudgetExhausts: with the server gone for good, a retrying
// read gives up after its budget and reports the connection loss.
func TestRetryBudgetExhausts(t *testing.T) {
	db := testDB(t)
	addr, stop := startServerAt(t, "127.0.0.1:0", db)
	cl, err := DialWithOptions(addr, DialOptions{
		Reconnect:     true,
		RetryMax:      3,
		RetryBase:     time.Millisecond,
		RetryMaxDelay: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	stop()
	_, err = cl.Snapshot(dynq.Rect{Min: []float64{0, 0}, Max: []float64{1, 1}}, 0, 1)
	if !errors.Is(err, ErrConnectionLost) {
		t.Fatalf("exhausted retries returned %v, want errors.Is(err, ErrConnectionLost)", err)
	}
}

// TestRetryHonorsContextDeadline: the backoff loop must return the
// context's error as soon as the deadline passes, not sleep through it.
func TestRetryHonorsContextDeadline(t *testing.T) {
	db := testDB(t)
	addr, stop := startServerAt(t, "127.0.0.1:0", db)
	cl, err := DialWithOptions(addr, DialOptions{
		Reconnect:     true,
		RetryMax:      1000,
		RetryBase:     50 * time.Millisecond,
		RetryMaxDelay: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	stop()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cl.SnapshotCtx(ctx, dynq.Rect{Min: []float64{0, 0}, Max: []float64{1, 1}}, 0, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("call outlived its deadline by too much: %v", elapsed)
	}
}
