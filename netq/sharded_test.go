package netq

import (
	"context"
	"errors"
	"testing"

	"dynq"
)

// testShardedDB mirrors testDB's population on a 3-shard engine.
func testShardedDB(t *testing.T) *dynq.ShardedDB {
	t.Helper()
	sdb, err := dynq.OpenSharded(dynq.ShardOptions{Shards: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sdb.Close() })
	for i := 0; i < 50; i++ {
		x := float64(i * 2)
		err := sdb.Insert(dynq.ObjectID(i), dynq.Segment{
			T0: 0, T1: 100,
			From: []float64{x, 50}, To: []float64{x, 50},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return sdb
}

// TestShardedBackendOverTheWire serves a ShardedDB behind the unchanged
// wire protocol: snapshot, insert, KNN, stats and a predictive session
// must behave exactly as they do on a single tree.
func TestShardedBackendOverTheWire(t *testing.T) {
	addr, stop := startServer(t, testShardedDB(t))
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	rs, err := cl.Snapshot(dynq.Rect{Min: []float64{0, 0}, Max: []float64{20, 100}}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 11 { // x = 0,2,...,20
		t.Errorf("snapshot found %d, want 11", len(rs))
	}
	if err := cl.Insert(999, dynq.Segment{T0: 0, T1: 1, From: []float64{1, 1}, To: []float64{1, 1}}); err != nil {
		t.Fatal(err)
	}
	rs, err = cl.Snapshot(dynq.Rect{Min: []float64{0, 0}, Max: []float64{2, 2}}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].ID != 999 {
		t.Errorf("inserted object not found: %v", rs)
	}
	nbs, err := cl.KNN([]float64{0, 50}, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbs) != 3 || nbs[0].ID != 0 {
		t.Errorf("knn = %v", nbs)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 51 {
		t.Errorf("stats segments = %d", st.Segments)
	}

	wps := []dynq.Waypoint{
		{T: 0, View: dynq.Rect{Min: []float64{0, 40}, Max: []float64{10, 60}}},
		{T: 10, View: dynq.Rect{Min: []float64{40, 40}, Max: []float64{50, 60}}},
	}
	if err := cl.StartPredictive(wps, false); err != nil {
		t.Fatal(err)
	}
	view := dynq.NewViewCache()
	for f := 0; f < 10; f++ {
		rs, err := cl.FetchPredictive(float64(f), float64(f+1))
		if err != nil {
			t.Fatal(err)
		}
		view.Apply(rs)
	}
	for i := 0; i <= 25; i++ {
		if _, ok := view.Get(dynq.ObjectID(i)); !ok {
			t.Errorf("object %d (x=%d) never delivered by sharded PDQ", i, i*2)
		}
	}
}

// TestClientContextCancellation checks that a cancelled context aborts a
// client call before it touches the wire, and that the connection stays
// usable afterwards (nothing was sent, so the gob stream is still in
// sync).
func TestClientContextCancellation(t *testing.T) {
	addr, stop := startServer(t, testDB(t))
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	view := dynq.Rect{Min: []float64{0, 0}, Max: []float64{100, 100}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.SnapshotCtx(ctx, view, 0, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("SnapshotCtx on cancelled ctx: %v", err)
	}
	if _, err := cl.KNNCtx(ctx, []float64{0, 50}, 1, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("KNNCtx on cancelled ctx: %v", err)
	}
	if err := cl.InsertCtx(ctx, 1000, dynq.Segment{T0: 0, T1: 1, From: []float64{3, 3}, To: []float64{3, 3}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("InsertCtx on cancelled ctx: %v", err)
	}

	// The aborted calls never hit the wire: the same connection still
	// answers, and the cancelled insert never happened.
	rs, err := cl.SnapshotCtx(context.Background(), view, 0, 1)
	if err != nil {
		t.Fatalf("connection unusable after cancelled calls: %v", err)
	}
	if len(rs) != 50 {
		t.Errorf("snapshot after cancel found %d, want 50", len(rs))
	}
}
