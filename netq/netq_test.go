package netq

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"

	"dynq"
)

func startServer(t *testing.T, db dynq.Database) (addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(db)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Serve(l)
	}()
	return l.Addr().String(), func() {
		l.Close()
		srv.Close()
		wg.Wait()
	}
}

func testDB(t *testing.T) *dynq.DB {
	t.Helper()
	db, err := dynq.Open(dynq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for i := 0; i < 50; i++ {
		x := float64(i * 2)
		err := db.Insert(dynq.ObjectID(i), dynq.Segment{
			T0: 0, T1: 100,
			From: []float64{x, 50}, To: []float64{x, 50},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestSnapshotOverTheWire(t *testing.T) {
	db := testDB(t)
	addr, stop := startServer(t, db)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	rs, err := cl.Snapshot(dynq.Rect{Min: []float64{0, 0}, Max: []float64{20, 100}}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 11 { // x = 0,2,...,20
		t.Errorf("snapshot found %d, want 11", len(rs))
	}
	// Insert over the wire, then find it.
	if err := cl.Insert(999, dynq.Segment{T0: 0, T1: 1, From: []float64{1, 1}, To: []float64{1, 1}}); err != nil {
		t.Fatal(err)
	}
	rs, err = cl.Snapshot(dynq.Rect{Min: []float64{0, 0}, Max: []float64{2, 2}}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].ID != 999 {
		t.Errorf("inserted object not found: %v", rs)
	}
	// Stats round-trip.
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 51 {
		t.Errorf("stats segments = %d", st.Segments)
	}
	// KNN round-trip.
	nbs, err := cl.KNN([]float64{0, 50}, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbs) != 3 || nbs[0].ID != 0 {
		t.Errorf("knn = %v", nbs)
	}
}

// TestApplyUpdatesOverTheWire drives the batched write op: inserts and
// deletes in one round trip, in slice order, against both backends.
func TestApplyUpdatesOverTheWire(t *testing.T) {
	sharded, err := dynq.OpenSharded(dynq.ShardOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sharded.Close() })
	for name, db := range map[string]dynq.Database{
		"single":  testDB(t),
		"sharded": sharded,
	} {
		t.Run(name, func(t *testing.T) {
			addr, stop := startServer(t, db)
			defer stop()
			cl, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()

			seg := func(x float64) dynq.Segment {
				return dynq.Segment{T0: 0, T1: 1, From: []float64{x, x}, To: []float64{x, x}}
			}
			// One batch: insert three objects, then delete-and-reinsert the
			// middle one (order within the batch must hold).
			batch := []dynq.MotionUpdate{
				{ID: 1001, Segment: seg(200)},
				{ID: 1002, Segment: seg(201)},
				{ID: 1003, Segment: seg(202)},
				{ID: 1002, Segment: dynq.Segment{T0: 0}, Delete: true},
				{ID: 1002, Segment: seg(203)},
			}
			if err := cl.ApplyUpdates(batch); err != nil {
				t.Fatal(err)
			}
			rs, err := cl.Snapshot(dynq.Rect{Min: []float64{199, 199}, Max: []float64{204, 204}}, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(rs) != 3 {
				t.Fatalf("snapshot after batch found %d objects, want 3: %v", len(rs), rs)
			}
			// A delete of a missing segment fails the batch server-side.
			err = cl.ApplyUpdatesCtx(context.Background(),
				[]dynq.MotionUpdate{{ID: 424242, Segment: dynq.Segment{T0: 5}, Delete: true}},
				dynq.DurabilityDefault)
			if err == nil {
				t.Fatal("deleting a missing segment over the wire should fail")
			}
			if !errors.Is(err, dynq.ErrNotFound) {
				t.Fatalf("deleting a missing segment = %v, want ErrNotFound", err)
			}
		})
	}
}

// TestDurabilityWithoutWALOverTheWire: a client requesting an explicit
// durability level from a WAL-less server must get the typed ErrNoWAL
// back across the wire — not a silent in-memory ack — against both
// backends. The adaptive default still succeeds.
func TestDurabilityWithoutWALOverTheWire(t *testing.T) {
	sharded, err := dynq.OpenSharded(dynq.ShardOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sharded.Close() })
	for name, db := range map[string]dynq.Database{
		"single":  testDB(t),
		"sharded": sharded,
	} {
		t.Run(name, func(t *testing.T) {
			addr, stop := startServer(t, db)
			defer stop()
			cl, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()

			batch := []dynq.MotionUpdate{{ID: 5001, Segment: dynq.Segment{
				T0: 0, T1: 1, From: []float64{300, 300}, To: []float64{300, 300},
			}}}
			err = cl.ApplyUpdatesCtx(context.Background(), batch, dynq.DurabilityGroupCommit)
			if !errors.Is(err, dynq.ErrNoWAL) {
				t.Fatalf("group-commit against a WAL-less server = %v, want ErrNoWAL", err)
			}
			err = cl.ApplyUpdatesCtx(context.Background(), batch, dynq.DurabilitySync)
			if !errors.Is(err, dynq.ErrNoWAL) {
				t.Fatalf("sync against a WAL-less server = %v, want ErrNoWAL", err)
			}
			if err := cl.ApplyUpdates(batch); err != nil {
				t.Fatalf("default durability against a WAL-less server = %v, want nil", err)
			}
		})
	}
}

func TestPredictiveSessionOverTheWire(t *testing.T) {
	db := testDB(t)
	addr, stop := startServer(t, db)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Fetch before start is an error.
	if _, err := cl.FetchPredictive(0, 1); err == nil {
		t.Error("fetch without a session should fail")
	}
	wps := []dynq.Waypoint{
		{T: 0, View: dynq.Rect{Min: []float64{0, 40}, Max: []float64{10, 60}}},
		{T: 10, View: dynq.Rect{Min: []float64{40, 40}, Max: []float64{50, 60}}},
	}
	if err := cl.StartPredictive(wps, false); err != nil {
		t.Fatal(err)
	}
	view := dynq.NewViewCache()
	total := 0
	for f := 0; f < 10; f++ {
		t0, t1 := float64(f), float64(f+1)
		rs, err := cl.FetchPredictive(t0, t1)
		if err != nil {
			t.Fatal(err)
		}
		view.Apply(rs)
		total += len(rs)
	}
	if total == 0 {
		t.Error("predictive session returned nothing")
	}
	// Objects between x=0 and x=50 with y=50 should all have appeared.
	for i := 0; i <= 25; i++ {
		if _, ok := view.Get(dynq.ObjectID(i)); !ok {
			t.Errorf("object %d (x=%d) never delivered", i, i*2)
		}
	}
}

func TestNonPredictiveSessionOverTheWire(t *testing.T) {
	db := testDB(t)
	addr, stop := startServer(t, db)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	view := dynq.Rect{Min: []float64{0, 0}, Max: []float64{30, 100}}
	first, err := cl.NonPredictive(view, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("first NPDQ snapshot empty")
	}
	repeat, err := cl.NonPredictive(view, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(repeat) != 0 {
		t.Errorf("same-window follow-up returned %d new results", len(repeat))
	}
	if err := cl.ResetNonPredictive(); err != nil {
		t.Fatal(err)
	}
	again, err := cl.NonPredictive(view, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(first) {
		t.Errorf("post-reset snapshot returned %d, want %d", len(again), len(first))
	}
}

func TestTwoClientsAreIsolated(t *testing.T) {
	db := testDB(t)
	addr, stop := startServer(t, db)
	defer stop()
	a, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	view := dynq.Rect{Min: []float64{0, 0}, Max: []float64{30, 100}}
	if _, err := a.NonPredictive(view, 0, 1); err != nil {
		t.Fatal(err)
	}
	// Client B's NPDQ session must be independent: same window still
	// returns the full answer.
	rs, err := b.NonPredictive(view, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Error("second client's first snapshot should be a full answer")
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	db := testDB(t)
	addr, stop := startServer(t, db)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.roundTrip(context.Background(), Request{Op: "bogus"}); err == nil {
		t.Error("unknown op should error")
	}
	if _, err := cl.Snapshot(dynq.Rect{Min: []float64{0}, Max: []float64{1}}, 0, 1); err == nil {
		t.Error("bad rect should error")
	}
	// The connection survives request errors.
	if _, err := cl.Stats(); err != nil {
		t.Errorf("connection should survive a rejected request: %v", err)
	}
}

func TestAdaptiveOverTheWire(t *testing.T) {
	db := testDB(t)
	addr, stop := startServer(t, db)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Frame before start is rejected.
	if _, _, err := cl.AdaptiveFrame(dynq.Rect{Min: []float64{0, 0}, Max: []float64{10, 10}}, 0, 1); err == nil {
		t.Error("frame without a session should fail")
	}
	if err := cl.StartAdaptive(dynq.AdaptiveOptions{Slack: 1, Horizon: 10}); err != nil {
		t.Fatal(err)
	}
	x := 0.0
	predictive := false
	total := 0
	for f := 0; f < 20; f++ {
		t0 := float64(f)
		x += 1.5
		rs, pred, err := cl.AdaptiveFrame(dynq.Rect{
			Min: []float64{x, 40}, Max: []float64{x + 15, 60},
		}, t0, t0+1)
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		total += len(rs)
		predictive = pred
	}
	if !predictive {
		t.Error("steady motion over the wire should reach predictive mode")
	}
	if total == 0 {
		t.Error("adaptive session delivered nothing")
	}
}

func TestTrackerOverTheWire(t *testing.T) {
	db := testDB(t)
	tk, err := dynq.NewTracker(dynq.TrackerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := netListen()
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(db).WithTracker(tk)
	go srv.Serve(l)
	defer func() { l.Close(); srv.Close() }()

	cl, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Report a fleet heading east.
	for i := 0; i < 5; i++ {
		if err := cl.TrackUpdate(dynq.ObjectID(i), 0, []float64{float64(i * 3), 50}, []float64{1, 0}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := cl.TrackAt(dynq.Rect{Min: []float64{10, 45}, Max: []float64{22, 55}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 { // at t=10 fleet spans x ∈ [10, 22]
		t.Errorf("anticipated %d at t=10, want 5: %v", len(got), got)
	}
	during, err := cl.TrackDuring(dynq.Rect{Min: []float64{30, 45}, Max: []float64{35, 55}}, 10, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(during) != 5 {
		t.Errorf("during = %d, want 5", len(during))
	}
	along, err := cl.TrackAlong([]dynq.Waypoint{
		{T: 0, View: dynq.Rect{Min: []float64{0, 45}, Max: []float64{10, 55}}},
		{T: 30, View: dynq.Rect{Min: []float64{30, 45}, Max: []float64{40, 55}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(along) == 0 {
		t.Error("trajectory query returned nothing")
	}
	// Stale update rejected over the wire.
	if err := cl.TrackUpdate(1, -5, []float64{0, 0}, []float64{0, 0}); err == nil {
		t.Error("stale tracker update should fail")
	}
}

func TestTrackerOpsWithoutTracker(t *testing.T) {
	db := testDB(t)
	addr, stop := startServer(t, db)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.TrackAt(dynq.Rect{Min: []float64{0, 0}, Max: []float64{1, 1}}, 0); err == nil {
		t.Error("tracker ops on a tracker-less server should fail")
	}
}
