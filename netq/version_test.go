package netq

import (
	"encoding/gob"
	"errors"
	"net"
	"strings"
	"testing"
)

// TestOldClientRejectedLoudly simulates a pre-handshake (v1) client: its
// first message is a Request, which the v2 server must reject with a
// readable version-mismatch error delivered through the Response.Err
// field old clients already decode — not by feeding garbage into their
// gob stream.
func TestOldClientRejectedLoudly(t *testing.T) {
	db := testDB(t)
	srv, addr, stop := startServerKeep(t, db)
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	// A v1 client sends a Request straight away.
	if err := enc.Encode(Request{Op: OpSnapshot}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := dec.Decode(&resp); err != nil {
		t.Fatalf("old client got a broken stream instead of an error response: %v", err)
	}
	if !strings.Contains(resp.Err, "version mismatch") {
		t.Errorf("rejection message = %q, want a version mismatch", resp.Err)
	}
	// The rejection is visible in the server's metrics.
	if got := srv.Registry().Export()["netq_version_mismatches_total"]; got != int64(1) {
		t.Errorf("netq_version_mismatches_total = %v, want 1", got)
	}
}

// TestNewClientAgainstOldServer simulates a v1 server: it tries to
// decode the first message as a Request, chokes on the hello (gob finds
// no matching fields) and drops the connection — exactly what the
// pre-handshake handler did on a protocol error. NewClient must turn
// that into a typed *VersionError instead of silently desynchronizing.
func TestNewClientAgainstOldServer(t *testing.T) {
	cs, ss := net.Pipe()
	go func() {
		defer ss.Close()
		dec := gob.NewDecoder(ss)
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // v1 handler: disconnect on protocol error
		}
		gob.NewEncoder(ss).Encode(Response{Err: `netq: unknown op ""`, ErrKind: ErrKindUnknownOp})
	}()

	_, err := NewClient(cs)
	if err == nil {
		cs.Close()
		t.Fatal("handshake against a v1 server succeeded")
	}
	var verr *VersionError
	if !errors.As(err, &verr) {
		t.Fatalf("err = %v (%T), want *VersionError", err, err)
	}
	if verr.Local != ProtocolVersion || verr.Remote != 0 {
		t.Errorf("VersionError = %+v, want local v%d / remote v0", verr, ProtocolVersion)
	}
	cs.Close()
}

// TestNonNetqPeerRejected: a peer speaking the right gob framing but the
// wrong magic is refused.
func TestNonNetqPeerRejected(t *testing.T) {
	db := testDB(t)
	_, addr, stop := startServerKeep(t, db)
	defer stop()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	if err := enc.Encode(hello{Magic: "some-other-protocol", Version: ProtocolVersion}); err != nil {
		t.Fatal(err)
	}
	var ack helloAck
	if err := dec.Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Err == "" || !strings.Contains(ack.Err, "version mismatch") {
		t.Errorf("ack = %+v, want a rejection", ack)
	}
}
