package netq

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dynq"
	"dynq/internal/obs"
)

// fakeClock drives a WindowedHistogram deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestTelemetryOpOverTheWire drives real traffic through a server and
// fetches the stats snapshot via the wire op, checking that per-op
// windows, SLO state, runtime health, and events all arrive.
func TestTelemetryOpOverTheWire(t *testing.T) {
	db := testDB(t)
	addr, stop := startServer(t, db)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	view := dynq.Rect{Min: []float64{0, 0}, Max: []float64{50, 100}}
	for i := 0; i < 20; i++ {
		if _, err := cl.Snapshot(view, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Stats(); err != nil {
		t.Fatal(err)
	}

	tel, err := cl.Telemetry()
	if err != nil {
		t.Fatal(err)
	}
	if tel.Addr != addr {
		t.Errorf("Addr = %q, want %q", tel.Addr, addr)
	}
	if tel.GoVersion == "" || tel.UptimeSeconds <= 0 {
		t.Errorf("missing build/uptime info: %+v", tel)
	}
	if tel.ActiveConns != 1 {
		t.Errorf("ActiveConns = %d, want 1", tel.ActiveConns)
	}
	var snap *obs.OpTelemetry
	for i := range tel.Ops {
		if tel.Ops[i].Op == string(OpSnapshot) {
			snap = &tel.Ops[i]
		}
	}
	if snap == nil {
		t.Fatalf("no snapshot op in telemetry: %+v", tel.Ops)
	}
	if snap.Count != 20 {
		t.Errorf("snapshot count = %d, want 20", snap.Count)
	}
	if len(snap.Windows) != len(obs.DefWindows()) {
		t.Fatalf("snapshot windows = %d, want %d", len(snap.Windows), len(obs.DefWindows()))
	}
	// All traffic just happened, so the shortest window holds all of it
	// and its percentiles are populated.
	if w := snap.Windows[0]; w.Count != 20 || w.P99 <= 0 {
		t.Errorf("1m window = %+v, want count 20 with positive p99", w)
	}
	if len(tel.SLOs) == 0 {
		t.Error("no SLO status in telemetry")
	}
	for _, slo := range tel.SLOs {
		if slo.Op == string(OpSnapshot) && (!slo.Met || slo.Availability != 1) {
			t.Errorf("snapshot SLO not met with error-free traffic: %+v", slo)
		}
	}
	if tel.Runtime == nil || tel.Runtime.Goroutines <= 0 {
		t.Errorf("runtime sample missing: %+v", tel.Runtime)
	}
	if _, ok := tel.Runtime.Extra["buffer_frames"]; !ok {
		t.Errorf("runtime sample lacks server sources: %+v", tel.Runtime.Extra)
	}
	// Serve journaled server_start into the process journal; the snapshot
	// rides the most recent events along.
	found := false
	for _, ev := range tel.Events {
		if ev.Type == obs.EventServerStart {
			found = true
		}
	}
	if !found {
		t.Errorf("no server_start event in telemetry events: %+v", tel.Events)
	}
}

// TestTelemetryWindowedDivergesFromCumulative pins the headline behavior
// of the windowed histograms as surfaced through Server.Telemetry(): a
// latency regression that has aged out of the rolling window still
// dominates the cumulative p99, while the window reports current
// latency.
func TestTelemetryWindowedDivergesFromCumulative(t *testing.T) {
	db := testDB(t)
	srv := NewServer(db)

	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	srv.tel.windows[OpSnapshot].WithClock(clock.Now)

	span := obs.Span{Op: string(OpSnapshot)}
	for i := 0; i < 100; i++ {
		srv.tel.record(OpSnapshot, 500*time.Millisecond, false, span)
	}
	clock.Advance(2 * time.Minute) // age the slow phase out of the 1m window
	for i := 0; i < 100; i++ {
		srv.tel.record(OpSnapshot, time.Millisecond, false, span)
	}

	tel := srv.Telemetry()
	var snap *obs.OpTelemetry
	for i := range tel.Ops {
		if tel.Ops[i].Op == string(OpSnapshot) {
			snap = &tel.Ops[i]
		}
	}
	if snap == nil {
		t.Fatal("snapshot op missing from telemetry")
	}
	if snap.Count != 200 {
		t.Errorf("cumulative count = %d, want 200", snap.Count)
	}
	if snap.P99 < 0.4 {
		t.Errorf("cumulative p99 = %v, want >= 0.4 (remembers the slow phase)", snap.P99)
	}
	oneMin := snap.Windows[0]
	if oneMin.Count != 100 {
		t.Errorf("1m window count = %d, want 100 (slow phase aged out)", oneMin.Count)
	}
	if oneMin.P99 > 0.01 {
		t.Errorf("1m window p99 = %v, want <= 0.01 (current latency only)", oneMin.P99)
	}
}

// TestSlowQueryCapturedWithStages checks that a query past the threshold
// lands in the slow-query log with its full span: trace id, parameters,
// and per-stage cost deltas.
func TestSlowQueryCapturedWithStages(t *testing.T) {
	db := testDB(t)
	srv := NewServer(db).WithSlowQueryThreshold(time.Nanosecond) // capture everything
	addr, stop := serveOn(t, srv)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	view := dynq.Rect{Min: []float64{0, 0}, Max: []float64{50, 100}}
	if _, err := cl.Snapshot(view, 0, 1); err != nil {
		t.Fatal(err)
	}

	entries := srv.SlowLog().Recent(0)
	if len(entries) == 0 {
		t.Fatal("no slow queries captured at a 1ns threshold")
	}
	var got *obs.SlowEntry
	for i := range entries {
		if entries[i].Span.Op == string(OpSnapshot) {
			got = &entries[i]
		}
	}
	if got == nil {
		t.Fatalf("no snapshot span captured: %+v", entries)
	}
	if got.Span.TraceID == "" || got.Span.WallNS <= 0 {
		t.Errorf("captured span incomplete: %+v", got.Span)
	}
	if len(got.Span.Stages) == 0 {
		t.Errorf("captured span has no per-stage cost deltas: %+v", got.Span)
	}
	if len(got.Span.ViewMin) == 0 {
		t.Errorf("captured span lost its query parameters: %+v", got.Span)
	}
	if srv.Telemetry().SlowCaptured == 0 {
		t.Error("telemetry snapshot does not count the captured slow query")
	}
}

// serveOn serves an already-configured server on a loopback listener.
func serveOn(t *testing.T, srv *Server) (addr string, stop func()) {
	t.Helper()
	l, err := netListen()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Serve(l)
	}()
	return l.Addr().String(), func() {
		l.Close()
		srv.Close()
		wg.Wait()
	}
}

// TestDegradedEventsReachTelemetry flips the database into read-only
// mode and checks that both the flag and the journal events surface in
// the wire snapshot.
func TestDegradedEventsReachTelemetry(t *testing.T) {
	db := testDB(t)
	addr, stop := startServer(t, db)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	db.SetReadOnly(true)
	tel, err := cl.Telemetry()
	if err != nil {
		t.Fatal(err)
	}
	if !tel.Degraded {
		t.Error("telemetry does not report degraded mode")
	}
	var enter bool
	for _, ev := range tel.Events {
		if ev.Type == obs.EventDegradedEnter {
			enter = true
		}
	}
	if !enter {
		t.Errorf("no degraded_enter event in telemetry: %+v", tel.Events)
	}

	db.SetReadOnly(false)
	tel, err = cl.Telemetry()
	if err != nil {
		t.Fatal(err)
	}
	if tel.Degraded {
		t.Error("telemetry still reports degraded mode after clear")
	}
	var exit bool
	for _, ev := range tel.Events {
		if ev.Type == obs.EventDegradedExit {
			exit = true
		}
	}
	if !exit {
		t.Errorf("no degraded_exit event in telemetry: %+v", tel.Events)
	}
}

// TestRecoveryReportInTelemetry opens a committed file through recovery
// and checks the journaled event reaches telemetry and the report's
// gauges reach /metrics.
func TestRecoveryReportInTelemetry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tel.dynq")
	seed, err := dynq.Open(dynq.Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		x := float64(i)
		if err := seed.Insert(dynq.ObjectID(i), dynq.Segment{
			T0: 0, T1: 10, From: []float64{x, x}, To: []float64{x, x},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	marker := obs.DefaultJournal().Total()
	db, rep, err := dynq.OpenFileRecover(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.LastRecovery() != rep {
		t.Error("LastRecovery does not return the open's report")
	}

	srv := NewServer(db).WithRecoveryReport(rep)
	addr, stop := serveOn(t, srv)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tel, err := cl.Telemetry()
	if err != nil {
		t.Fatal(err)
	}
	var recovered bool
	for _, ev := range tel.Events {
		if ev.Type == obs.EventRecovery && ev.Seq >= marker {
			recovered = true
			if ev.Fields["pages_checked"] == "" || ev.Fields["segments"] == "" {
				t.Errorf("recovery event lacks fields: %+v", ev)
			}
		}
	}
	if !recovered {
		t.Errorf("no recovery event in telemetry after OpenFileRecover: %+v", tel.Events)
	}

	var prom strings.Builder
	if err := srv.Registry().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{
		"dynq_recovery_pages_checked", "dynq_recovery_segments", "dynq_recovery_repairs",
		"netq_request_window_seconds", "netq_slow_queries_total", "netq_journal_events_total",
	} {
		if !strings.Contains(prom.String(), metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}
}

// TestTelemetryBypassesAdmissionControl saturates read admission control
// and checks that the telemetry op still answers while a read is
// rejected — monitoring must work best exactly when the server is
// overloaded. The rejection lands in the journal as an overload burst.
func TestTelemetryBypassesAdmissionControl(t *testing.T) {
	db := testDB(t)
	srv := NewServer(db).WithConcurrency(1, 1)
	j := obs.NewJournal(16)
	srv.WithJournal(j)

	// Fill the execution slot and the wait queue by hand, so the next
	// read is deterministically rejected.
	srv.readSem <- struct{}{}
	srv.queued.Store(int64(srv.maxQueue))

	sess := &connSessions{npdq: db.NonPredictive(dynq.NonPredictiveOptions{})}
	view := dynq.Rect{Min: []float64{0, 0}, Max: []float64{50, 100}}
	resp := srv.serve(sess, Request{Op: OpSnapshot, View: view, T0: 0, T1: 1})
	if resp.ErrKind != ErrKindOverloaded {
		t.Fatalf("saturated read: ErrKind = %q, want %q", resp.ErrKind, ErrKindOverloaded)
	}

	resp = srv.serve(sess, Request{Op: OpTelemetry})
	if resp.Err != "" || resp.Telemetry == nil {
		t.Fatalf("telemetry under overload: err=%q telemetry=%v", resp.Err, resp.Telemetry)
	}
	if resp.Telemetry.ReadQueueDepth != srv.maxQueue {
		t.Errorf("ReadQueueDepth = %d, want %d", resp.Telemetry.ReadQueueDepth, srv.maxQueue)
	}

	events := j.Recent(0)
	var burst bool
	for _, ev := range events {
		if ev.Type == obs.EventOverloadBurst {
			burst = true
			if ev.Fields["rejections"] != "1" {
				t.Errorf("burst event rejections = %q, want 1", ev.Fields["rejections"])
			}
		}
	}
	if !burst {
		t.Errorf("no overload_burst event journaled: %+v", events)
	}

	// A second rejection inside the burst interval aggregates silently.
	resp = srv.serve(sess, Request{Op: OpSnapshot, View: view, T0: 0, T1: 1})
	if resp.ErrKind != ErrKindOverloaded {
		t.Fatalf("second saturated read: ErrKind = %q", resp.ErrKind)
	}
	var bursts int
	for _, ev := range j.Recent(0) {
		if ev.Type == obs.EventOverloadBurst {
			bursts++
		}
	}
	if bursts != 1 {
		t.Errorf("burst events = %d, want 1 (rate-limited aggregation)", bursts)
	}
	<-srv.readSem
}
