package netq

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dynq"
	"dynq/internal/obs"
)

// Telemetry is the server stats snapshot returned by the telemetry op
// and by /debug/telemetry — aliased so clients can consume it without
// importing the internal obs package.
type Telemetry = obs.Telemetry

// SlowLogCapacity is the number of slow-query entries a server retains.
const SlowLogCapacity = 128

// telemetryEventLimit is how many recent journal events ride along in a
// telemetry snapshot (the full ring stays available at /debug/events).
const telemetryEventLimit = 16

// overloadBurstInterval rate-limits overload journal events: rejections
// inside one interval are aggregated into a single burst event, so a
// storm of rejected reads cannot flood the journal.
const overloadBurstInterval = 10 * time.Second

// serverTelemetry is the server's rolling-window observability state:
// per-op windowed latency, SLO attainment (reads and writes tracked
// against separate objectives), the slow-op log, the operational event
// journal, and the runtime collector. It lives beside the cumulative
// serverMetrics, which feed /metrics since boot.
type serverTelemetry struct {
	started   time.Time
	winSpans  []time.Duration
	windows   map[Op]*obs.WindowedHistogram
	slo       *obs.SLOTracker // read/query objectives
	sloWrite  *obs.SLOTracker // write objectives (availability + durability-wait latency)
	slowLog   *obs.SlowLog    // one shared ring; writes use their own bar
	slowWrite atomic.Int64    // slow-write capture threshold, nanoseconds
	journal   *obs.Journal
	collector *obs.Collector
	recovery  *dynq.RecoveryReport

	collectorOnce sync.Once
	collectorOn   atomic.Bool

	// Overload burst aggregation (see noteOverload).
	burstMu   sync.Mutex
	burstAcc  int64
	lastBurst time.Time
}

// newServerTelemetry builds the rolling-window state for a server and
// exposes the windowed per-op percentiles as render-time gauges, so
// /metrics carries netq_request_window_seconds{op,window,quantile}
// alongside the cumulative netq_request_seconds histograms.
func newServerTelemetry(s *Server) *serverTelemetry {
	t := &serverTelemetry{
		started:  time.Now(),
		winSpans: obs.DefWindows(),
		windows:  make(map[Op]*obs.WindowedHistogram, len(knownOps)),
		slo:      obs.NewSLOTracker(obs.SLOConfig{}),
		sloWrite: obs.NewSLOTracker(obs.SLOConfig{}),
		slowLog:  obs.NewSlowLog(SlowLogCapacity, obs.DefSlowThreshold),
		journal:  obs.DefaultJournal(),
	}
	t.slowWrite.Store(int64(obs.DefSlowThreshold))
	maxWin := t.winSpans[len(t.winSpans)-1]
	reg := s.reg
	reg.SetHelp("netq_request_window_seconds",
		"Rolling-window request latency quantiles in seconds, by op, window, and quantile.")
	reg.SetHelp("netq_slow_queries_total", "Operations (read queries and writes) captured by the slow-op log.")
	reg.SetHelp("netq_journal_events_total", "Operational events recorded in the journal.")
	for _, op := range knownOps {
		w := obs.NewWindowedHistogram(nil, obs.DefWindowInterval, maxWin)
		t.windows[op] = w
		for _, span := range t.winSpans {
			win := span
			for _, q := range []struct {
				name string
				get  func(obs.WindowSnapshot) float64
			}{
				{"0.5", func(s obs.WindowSnapshot) float64 { return s.P50 }},
				{"0.95", func(s obs.WindowSnapshot) float64 { return s.P95 }},
				{"0.99", func(s obs.WindowSnapshot) float64 { return s.P99 }},
			} {
				get := q.get
				reg.GaugeFunc("netq_request_window_seconds",
					func() float64 { return get(w.Snapshot(win)) },
					obs.L("op", string(op)), obs.L("window", win.String()), obs.L("quantile", q.name))
			}
		}
	}
	reg.GaugeFunc("netq_slow_queries_total", func() float64 { return float64(t.slowLog.Captured()) })
	reg.GaugeFunc("netq_journal_events_total", func() float64 { return float64(t.journal.Total()) })

	// The runtime collector samples scheduler/heap/GC state plus the
	// server's own load signals into a time series for /debug/runtime.
	col := obs.NewCollector(0, 0)
	col.Source("buffer_frames", func() float64 { return float64(s.db.BufferStats().Len) })
	col.Source("buffer_occupancy", func() float64 {
		bs := s.db.BufferStats()
		if bs.Capacity == 0 {
			return 0
		}
		return float64(bs.Len) / float64(bs.Capacity)
	})
	col.Source("read_queue_depth", func() float64 { return float64(s.queued.Load()) })
	col.Source("inflight_ops", func() float64 { return s.metrics.inflightOps.Value() })
	col.Source("active_conns", func() float64 { return s.metrics.activeConns.Value() })
	col.Register(reg)
	t.collector = col
	return t
}

// record folds one finished request into the rolling-window state:
// windowed latency, SLO accounting against the op class's objectives,
// and — past the class's threshold — the slow-op log, span (with its
// per-stage cost deltas) included. Writes are tracked separately from
// reads: their own SLO tracker and their own slow capture bar.
func (t *serverTelemetry) record(op Op, elapsed time.Duration, failed bool, span obs.Span) {
	if w := t.windows[op]; w != nil {
		w.ObserveDuration(elapsed)
	}
	if isWriteOp(op) {
		t.sloWrite.Record(string(op), elapsed, failed)
		t.slowLog.RecordAt(span, time.Duration(t.slowWrite.Load()))
		return
	}
	t.slo.Record(string(op), elapsed, failed)
	t.slowLog.Record(span)
}

// walTelemetrySource is the optional Database capability exposing an
// armed write-ahead log's telemetry. *dynq.DB implements it for its
// single log; *dynq.ShardedDB implements it by aggregating the
// per-shard logs (totals summed, quantiles from the worst shard, with
// Logs saying how many were merged). Databases without a log return
// ok=false and their snapshots omit the section.
type walTelemetrySource interface {
	WALTelemetry(windows []time.Duration) (obs.WALTelemetry, bool)
}

// maintenanceTelemetrySource is the optional Database capability
// exposing the self-healing maintenance loop's snapshot. Both dynq
// database flavors implement it; databases without a loop running
// return ok=false and their snapshots omit the section.
type maintenanceTelemetrySource interface {
	MaintenanceTelemetry() (obs.MaintenanceTelemetry, bool)
}

// noteOverload aggregates admission-control rejections into journal
// burst events: the first rejection of a quiet period is journaled
// immediately, then further rejections accumulate until
// overloadBurstInterval passes, when one event carries the whole burst.
func (t *serverTelemetry) noteOverload(executing, queued int) {
	t.burstMu.Lock()
	t.burstAcc++
	now := time.Now()
	if now.Sub(t.lastBurst) < overloadBurstInterval {
		t.burstMu.Unlock()
		return
	}
	n := t.burstAcc
	t.burstAcc = 0
	t.lastBurst = now
	t.burstMu.Unlock()
	t.journal.Record(obs.EventOverloadBurst, obs.SeverityWarn,
		"read admission control rejecting requests", map[string]string{
			"rejections": strconv.FormatInt(n, 10),
			"executing":  strconv.Itoa(executing),
			"queue_cap":  strconv.Itoa(queued),
		})
}

// WithSlowQueryThreshold sets the latency above which a query is
// captured into the slow-query log (default obs.DefSlowThreshold;
// negative disables capture). Safe to call at any time.
func (s *Server) WithSlowQueryThreshold(d time.Duration) *Server {
	s.tel.slowLog.SetThreshold(d)
	return s
}

// WithSLO replaces the default service-level objectives (99.9%
// availability, 99% of requests under 100ms, over a 5-minute window).
// Call before Serve.
func (s *Server) WithSLO(cfg obs.SLOConfig) *Server {
	s.tel.slo = obs.NewSLOTracker(cfg)
	return s
}

// WithSlowWriteThreshold sets the latency above which a WRITE op
// (insert, apply-updates) is captured into the shared slow-op log,
// independently of the query threshold (default obs.DefSlowThreshold;
// negative disables write capture). Safe to call at any time.
func (s *Server) WithSlowWriteThreshold(d time.Duration) *Server {
	if d == 0 {
		d = obs.DefSlowThreshold
	}
	s.tel.slowWrite.Store(int64(d))
	return s
}

// WithWriteSLO replaces the write ops' service-level objectives,
// tracked separately from reads: availability plus a durability-wait
// latency target per acknowledged write. Call before Serve.
func (s *Server) WithWriteSLO(cfg obs.SLOConfig) *Server {
	s.tel.sloWrite = obs.NewSLOTracker(cfg)
	return s
}

// WithJournal redirects operational events recorded by this server
// (overload bursts, lifecycle) into j instead of the process-wide
// default journal. Events recorded below the server — recovery,
// degraded-mode flips, checksum failures — still go to
// obs.DefaultJournal(). Call before Serve.
func (s *Server) WithJournal(j *obs.Journal) *Server {
	if j != nil {
		s.tel.journal = j
	}
	return s
}

// WithRecoveryReport attaches the report from OpenFileRecover, exposing
// what open-time verification checked and repaired as dynq_recovery_*
// gauges (the recovery event itself is journaled by the open). Call
// before Serve.
func (s *Server) WithRecoveryReport(rep *dynq.RecoveryReport) *Server {
	if rep == nil {
		return s
	}
	s.tel.recovery = rep
	reg := s.reg
	reg.SetHelp("dynq_recovery_pages_checked", "Pages verified by recovery at open.")
	reg.SetHelp("dynq_recovery_orphan_pages", "Unreachable pages reclaimed to the free list by recovery.")
	reg.SetHelp("dynq_recovery_repairs", "1 when recovery repaired a torn header or rebuilt the free list.")
	r := *rep
	reg.GaugeFunc("dynq_recovery_header_seq", func() float64 { return float64(r.HeaderSeq) })
	reg.GaugeFunc("dynq_recovery_pages_checked", func() float64 { return float64(r.PagesChecked) })
	reg.GaugeFunc("dynq_recovery_segments", func() float64 { return float64(r.Segments) })
	reg.GaugeFunc("dynq_recovery_free_pages", func() float64 { return float64(r.FreePages) })
	reg.GaugeFunc("dynq_recovery_orphan_pages", func() float64 { return float64(r.OrphanPages) })
	reg.GaugeFunc("dynq_recovery_repairs", func() float64 {
		if r.TornHeaderRepaired || r.FreeListRebuilt {
			return 1
		}
		return 0
	})
	return s
}

// SlowLog exposes the server's slow-query log (for /debug/slow).
func (s *Server) SlowLog() *obs.SlowLog { return s.tel.slowLog }

// Journal exposes the journal this server records operational events
// into (for /debug/events).
func (s *Server) Journal() *obs.Journal { return s.tel.journal }

// Collector exposes the server's runtime collector (for
// /debug/runtime). Serve starts it; Close stops it.
func (s *Server) Collector() *obs.Collector { return s.tel.collector }

// startCollector launches the runtime sampling goroutine, once.
func (s *Server) startCollector() {
	s.tel.collectorOnce.Do(func() {
		s.tel.collector.Start()
		s.tel.collectorOn.Store(true)
		s.tel.journal.Record(obs.EventServerStart, obs.SeverityInfo,
			"netq server accepting connections", nil)
	})
}

// Telemetry assembles the live stats snapshot served by the telemetry
// op and /debug/telemetry: rolling-window and cumulative per-op
// latency, SLO attainment, the latest runtime sample, slow-query and
// event-journal summaries.
func (s *Server) Telemetry() Telemetry {
	goVersion, revision := obs.BuildInfo()
	tel := Telemetry{
		Time:           time.Now(),
		UptimeSeconds:  time.Since(s.tel.started).Seconds(),
		GoVersion:      goVersion,
		Revision:       revision,
		Degraded:       s.db.Degraded(),
		ActiveConns:    int(s.metrics.activeConns.Value()),
		InflightOps:    int(s.metrics.inflightOps.Value()),
		ReadQueueDepth: int(s.queued.Load()),
		SLOs:           append(s.tel.slo.Status(), s.tel.sloWrite.Status()...),
		SlowThreshold:  s.tel.slowLog.Threshold(),
		SlowCaptured:   s.tel.slowLog.Captured(),
		EventsTotal:    s.tel.journal.Total(),
		Events:         s.tel.journal.Recent(telemetryEventLimit),
	}
	if sample, ok := s.tel.collector.Latest(); ok {
		tel.Runtime = &sample
	} else {
		sample := s.tel.collector.SampleOnce()
		tel.Runtime = &sample
	}
	if src, ok := s.db.(walTelemetrySource); ok {
		if w, ok := src.WALTelemetry(s.tel.winSpans); ok {
			tel.WAL = &w
		}
	}
	if src, ok := s.db.(maintenanceTelemetrySource); ok {
		if mt, ok := src.MaintenanceTelemetry(); ok {
			tel.Maintenance = &mt
		}
	}
	for _, op := range knownOps {
		w := s.tel.windows[op]
		cum := w.Cumulative()
		if cum.Count() == 0 {
			continue
		}
		ot := obs.OpTelemetry{
			Op:     string(op),
			Count:  cum.Count(),
			Errors: s.metrics.perOp[op].errors.Value(),
			Sum:    cum.Sum(),
			P50:    cum.Quantile(0.50),
			P95:    cum.Quantile(0.95),
			P99:    cum.Quantile(0.99),
		}
		for _, span := range s.tel.winSpans {
			ot.Windows = append(ot.Windows, w.Snapshot(span))
		}
		tel.Ops = append(tel.Ops, ot)
	}
	return tel
}

// Telemetry fetches the server's stats snapshot: rolling-window and
// cumulative per-op latency, SLO attainment, runtime health, and recent
// operational events. The op bypasses read admission control so a
// monitoring poll (dqtop, a cluster router's health probe) still
// answers while the server sheds query load.
func (c *Client) Telemetry() (Telemetry, error) {
	return c.TelemetryCtx(context.Background())
}

// TelemetryCtx is Telemetry with cooperative cancellation.
func (c *Client) TelemetryCtx(ctx context.Context) (Telemetry, error) {
	resp, err := c.roundTrip(ctx, Request{Op: OpTelemetry})
	if err != nil {
		return Telemetry{}, err
	}
	if resp.Telemetry == nil {
		return Telemetry{}, fmt.Errorf("netq: server answered the telemetry op without a snapshot")
	}
	tel := *resp.Telemetry
	tel.Addr = c.addr
	return tel, nil
}
