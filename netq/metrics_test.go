package netq

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dynq"
	"dynq/internal/obs"
)

// startInstrumentedServer is like startServer but also exposes the
// *Server (for registry/tracer access) and an HTTP observability
// endpoint over it.
func startInstrumentedServer(t *testing.T, db *dynq.DB) (addr string, srv *Server, hs *httptest.Server, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv = NewServer(db)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Serve(l)
	}()
	hs = httptest.NewServer(obs.Handler(srv.Registry(), srv.Tracer()))
	return l.Addr().String(), srv, hs, func() {
		hs.Close()
		l.Close()
		srv.Close()
		wg.Wait()
	}
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// TestMetricsEndToEnd drives a live server over the wire, then scrapes
// the observability endpoints and checks the acceptance signals: per-op
// request counters, a per-op latency histogram with extractable
// percentiles, the buffer-pool hit ratio, the active-connection gauge,
// per-stage trace spans for PDQ and NPDQ, and a responding pprof
// profile.
func TestMetricsEndToEnd(t *testing.T) {
	db := testDB(t)
	addr, srv, hs, stop := startInstrumentedServer(t, db)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// One op of each interesting kind.
	view := dynq.Rect{Min: []float64{0, 0}, Max: []float64{30, 100}}
	if _, err := cl.Snapshot(view, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.NonPredictive(view, 0, 1); err != nil {
		t.Fatal(err)
	}
	wps := []dynq.Waypoint{
		{T: 0, View: dynq.Rect{Min: []float64{0, 40}, Max: []float64{10, 60}}},
		{T: 10, View: dynq.Rect{Min: []float64{40, 40}, Max: []float64{50, 60}}},
	}
	if err := cl.StartPredictive(wps, false); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.FetchPredictive(0, 5); err != nil {
		t.Fatal(err)
	}
	cl.roundTrip(context.Background(), Request{Op: "bogus"}) // counted as unknown op
	cl.TrackAt(view, 0)                                      // counted as no-tracker error

	code, body := httpGet(t, hs.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		`netq_requests_total{op="snapshot"} 1`,
		`netq_requests_total{op="npdq"} 1`,
		`netq_requests_total{op="pdq-start"} 1`,
		`netq_requests_total{op="pdq-fetch"} 1`,
		`netq_request_seconds_bucket{op="snapshot",le="+Inf"} 1`,
		`netq_request_seconds_count{op="snapshot"} 1`,
		`netq_active_connections 1`,
		`netq_active_sessions{kind="pdq"} 1`,
		`netq_unknown_ops_total 1`,
		`netq_no_tracker_errors_total 1`,
		`pager_buffer_hit_ratio`,
		`dynq_page_reads_total`,
		`# TYPE netq_request_seconds histogram`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Percentiles are extractable from the per-op histogram.
	h := srv.Registry().Histogram("netq_request_seconds", nil, obs.L("op", "snapshot"))
	if h.Count() != 1 {
		t.Fatalf("snapshot latency count = %d", h.Count())
	}
	for _, q := range []float64{0.50, 0.95, 0.99} {
		if v := h.Quantile(q); v <= 0 {
			t.Errorf("p%d = %g, want > 0", int(q*100), v)
		}
	}

	// /debug/vars renders the same registry as JSON.
	code, body = httpGet(t, hs.URL+"/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars status = %d", code)
	}
	var vars struct {
		Metrics map[string]any `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if vars.Metrics[`netq_requests_total{op="snapshot"}`] != float64(1) {
		t.Errorf("vars snapshot requests = %v", vars.Metrics[`netq_requests_total{op="snapshot"}`])
	}

	// /debug/trace dumps spans with per-stage deltas for PDQ and NPDQ.
	code, body = httpGet(t, hs.URL+"/debug/trace")
	if code != 200 {
		t.Fatalf("/debug/trace status = %d", code)
	}
	stages := map[string][]obs.StageDelta{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		var span obs.Span
		if err := json.Unmarshal(sc.Bytes(), &span); err != nil {
			t.Fatalf("trace line not JSON: %v (%s)", err, sc.Text())
		}
		if len(span.Stages) > 0 {
			stages[span.Op] = span.Stages
		}
	}
	for _, op := range []string{"npdq", "pdq-fetch"} {
		st, ok := stages[op]
		if !ok {
			t.Fatalf("no traced span with stages for op %q", op)
		}
		if len(st) != 3 || st[0].Stage != "pager" || st[1].Stage != "rtree" {
			t.Fatalf("op %q stages = %+v", op, st)
		}
		if st[1].Delta.Reads() == 0 {
			t.Errorf("op %q traced zero index reads", op)
		}
	}

	// pprof responds (a 1-second CPU profile exercises the real path).
	code, _ = httpGet(t, hs.URL+"/debug/pprof/profile?seconds=1")
	if code != 200 {
		t.Errorf("/debug/pprof/profile status = %d", code)
	}
}

func TestTypedErrorsOverTheWire(t *testing.T) {
	db := testDB(t)
	addr, srv, hs, stop := startInstrumentedServer(t, db)
	defer stop()
	_ = hs
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Unknown op reconstructs as *UnknownOpError.
	_, err = cl.roundTrip(context.Background(), Request{Op: "flux-capacitor"})
	var uo *UnknownOpError
	if !errors.As(err, &uo) || uo.Op != "flux-capacitor" {
		t.Errorf("unknown op error = %#v, want UnknownOpError", err)
	}

	// Tracker op on a tracker-less server matches ErrNoTracker.
	_, err = cl.TrackAt(dynq.Rect{Min: []float64{0, 0}, Max: []float64{1, 1}}, 0)
	if !errors.Is(err, ErrNoTracker) {
		t.Errorf("no-tracker error = %#v, want ErrNoTracker", err)
	}

	// Session ops before start match ErrNoSession.
	if _, err := cl.FetchPredictive(0, 1); !errors.Is(err, ErrNoSession) {
		t.Errorf("pdq-fetch error = %#v, want ErrNoSession", err)
	}
	if _, _, err := cl.AdaptiveFrame(dynq.Rect{Min: []float64{0, 0}, Max: []float64{1, 1}}, 0, 1); !errors.Is(err, ErrNoSession) {
		t.Errorf("adaptive-frame error = %#v, want ErrNoSession", err)
	}

	// Both rejections are counted in the registry.
	if got := srv.Registry().Counter("netq_unknown_ops_total").Value(); got != 1 {
		t.Errorf("unknown ops counted = %d, want 1", got)
	}
	if got := srv.Registry().Counter("netq_no_tracker_errors_total").Value(); got != 1 {
		t.Errorf("no-tracker errors counted = %d, want 1", got)
	}
}

// TestSessionGauges checks that session lifecycle keeps the gauges
// balanced: start, restart, and disconnect.
func TestSessionGauges(t *testing.T) {
	db := testDB(t)
	addr, srv, hs, stop := startInstrumentedServer(t, db)
	defer stop()
	_ = hs
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}

	pdqGauge := srv.Registry().Gauge("netq_active_sessions", obs.L("kind", "pdq"))
	wps := []dynq.Waypoint{
		{T: 0, View: dynq.Rect{Min: []float64{0, 40}, Max: []float64{10, 60}}},
		{T: 10, View: dynq.Rect{Min: []float64{40, 40}, Max: []float64{50, 60}}},
	}
	if err := cl.StartPredictive(wps, false); err != nil {
		t.Fatal(err)
	}
	if got := pdqGauge.Value(); got != 1 {
		t.Errorf("after start: pdq sessions = %g, want 1", got)
	}
	// Restarting replaces, not leaks.
	if err := cl.StartPredictive(wps, false); err != nil {
		t.Fatal(err)
	}
	if got := pdqGauge.Value(); got != 1 {
		t.Errorf("after restart: pdq sessions = %g, want 1", got)
	}
	cl.Close()
	// The server notices the disconnect asynchronously.
	deadline := time.Now().Add(2 * time.Second)
	for pdqGauge.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("after close: pdq sessions = %g, want 0", pdqGauge.Value())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
