// Package netq exposes a dynq database over TCP, reflecting the paper's
// client/server architecture (Section 4): retrieval happens at the
// server, buffering at the client. A client opens one connection per
// query session; dynamic-query state (the PDQ priority queue, the NPDQ
// previous-snapshot memory) lives server-side with the connection, while
// the client keeps results in a ViewCache keyed on disappearance time.
//
// The wire protocol is gob-encoded request/response pairs, one in flight
// per connection. Across connections, read-only operations (snapshot,
// knn, stats, tracker queries) execute concurrently under a bounded
// admission-control gate (see Server.WithConcurrency); writes are
// serialized by the database's writer lock, and dynamic-query session
// state stays serialized per connection.
package netq

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dynq"
	"dynq/internal/obs"
)

// ProtocolVersion is the netq wire protocol version. Peers exchange it
// in a hello/ack pair immediately after connecting, before the first
// request; a mismatch is rejected with a *VersionError so new fields
// (like the trace-context request header) fail loudly against old
// binaries instead of gob-decoding garbage.
//
// History:
//
//	1  original gob request/response stream, no handshake (implicit)
//	2  hello/ack handshake; Request carries TraceID/SpanID.
//	   Later additions within 2: the telemetry op and the
//	   Response.Telemetry field, then the apply-updates op with the
//	   Request.Updates/Durability fields. All are additive and
//	   gob-compatible (gob ignores unknown fields), and the handshake
//	   already demands exact version equality, so they did not warrant
//	   a bump; a v2 server without an op answers it with a typed
//	   UnknownOpError.
const ProtocolVersion = 2

// protocolMagic distinguishes a netq peer from an arbitrary TCP
// endpoint (and from a v1 peer, whose first message decodes into a
// zero-valued hello).
const protocolMagic = "dynq/netq"

// hello is the client's first message on a connection.
type hello struct {
	Magic   string
	Version int
}

// helloAck is the server's reply: its own version, and a non-empty Err
// when the connection is rejected.
type helloAck struct {
	Magic   string
	Version int
	Err     string
}

// Op identifies a request type.
type Op string

// Protocol operations.
const (
	OpSnapshot      Op = "snapshot"       // independent snapshot query
	OpInsert        Op = "insert"         // motion update
	OpApplyUpdates  Op = "apply-updates"  // batched motion updates (one round trip)
	OpKNN           Op = "knn"            // k nearest neighbors at a time instant
	OpPDQStart      Op = "pdq-start"      // register a trajectory (one per conn)
	OpPDQFetch      Op = "pdq-fetch"      // fetch newly visible objects
	OpNPDQ          Op = "npdq"           // next snapshot of the NPDQ session
	OpNPDQReset     Op = "npdq-reset"     // forget NPDQ history (teleport)
	OpAdaptiveStart Op = "adaptive-start" // start an adaptive session (one per conn)
	OpAdaptiveFrame Op = "adaptive-frame" // report a view frame, get new objects
	OpStats         Op = "stats"          // index statistics
	OpTelemetry     Op = "telemetry"      // server stats snapshot (SLOs, windows, runtime, events)
	// Tracker operations (available when the server was given one).
	OpTrackUpdate Op = "track-update" // report an object's current state
	OpTrackAt     Op = "track-at"     // anticipated occupants at an instant
	OpTrackDuring Op = "track-during" // anticipated occupants over an interval
	OpTrackAlong  Op = "track-along"  // anticipated occupants along a trajectory
)

// Request is one client→server message. TraceID and SpanID carry the
// caller's trace context (obs.TraceContext wire form, version 2+): the
// server continues that trace, so one client operation yields a single
// correlated trace spanning the client call, the server op, and every
// per-shard traversal.
type Request struct {
	Op        Op
	TraceID   string
	SpanID    string
	View      dynq.Rect
	T0, T1    float64
	Waypoints []dynq.Waypoint
	Live      bool
	Point     []float64
	Vel       []float64
	K         int
	ID        dynq.ObjectID
	Segment   dynq.Segment
	Adaptive  dynq.AdaptiveOptions
	// Updates and Durability carry the apply-updates op: a write batch
	// applied as one database write, with the requested dynq.Durability
	// level (meaningful when the server's database has a WAL armed).
	Updates    []dynq.MotionUpdate
	Durability dynq.Durability
}

// Response is one server→client message.
type Response struct {
	Err         string
	ErrKind     string // one of the ErrKind* constants, "" for untyped errors
	Results     []dynq.Result
	Neighbors   []dynq.Neighbor
	Stats       dynq.IndexStats
	Anticipated []dynq.Anticipated
	Predictive  bool // adaptive session mode after this frame
	// Telemetry answers the telemetry op (nil for every other op).
	Telemetry *obs.Telemetry
}

// Server serves a database to network clients. Every server carries its
// own observability state: a metric registry (per-op request counts,
// error counts, latency histograms, connection/session gauges, buffer
// pool gauges) and a query tracer ring-buffering recent request spans
// with their per-stage cost deltas. Serve them over HTTP with
// obs.Handler(s.Registry(), s.Tracer()).
type Server struct {
	db      dynq.Database
	tracker *dynq.Tracker

	// Read admission control: read-only ops across all connections run
	// concurrently, bounded by readSem; past the bound they queue up to
	// maxQueue deep, and past that they are rejected with ErrOverloaded.
	// A nil readSem means unlimited read concurrency. Write ops bypass
	// the gate (the database's writer lock serializes them), and session
	// ops are serialized per connection by the one-request-in-flight
	// protocol.
	readSem       chan struct{}
	maxConcurrent int
	maxQueue      int
	queued        atomic.Int64

	reg     *obs.Registry
	tracer  *obs.Tracer
	metrics *serverMetrics
	tel     *serverTelemetry
	logger  *slog.Logger

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  bool
}

// TracerCapacity is the number of recent query spans a server retains.
const TracerCapacity = 512

// NewServer wraps a database — either a single-tree *dynq.DB or a
// *dynq.ShardedDB; the wire protocol is identical for both, and a sharded
// backend additionally registers its per-shard metrics.
func NewServer(db dynq.Database) *Server {
	reg := obs.NewRegistry()
	s := &Server{
		db:      db,
		conns:   make(map[net.Conn]struct{}),
		reg:     reg,
		tracer:  obs.NewTracer(TracerCapacity),
		metrics: newServerMetrics(reg, db),
		logger:  obs.NopLogger(),
	}
	s.WithConcurrency(runtime.GOMAXPROCS(0), 0)
	s.tel = newServerTelemetry(s)
	return s
}

// WithConcurrency configures read admission control: up to maxConcurrent
// read-only operations execute at once, up to maxQueue more wait for a
// slot, and anything beyond that is rejected with ErrOverloaded.
// maxConcurrent <= 0 removes the bound entirely; maxQueue <= 0 defaults
// to 4x maxConcurrent. The default (set by NewServer) is GOMAXPROCS
// concurrent reads. Call before Serve.
func (s *Server) WithConcurrency(maxConcurrent, maxQueue int) *Server {
	if maxConcurrent <= 0 {
		s.readSem = nil
		s.maxConcurrent = 0
		s.maxQueue = 0
		return s
	}
	if maxQueue <= 0 {
		maxQueue = 4 * maxConcurrent
	}
	s.readSem = make(chan struct{}, maxConcurrent)
	s.maxConcurrent = maxConcurrent
	s.maxQueue = maxQueue
	return s
}

// MaxConcurrent reports the read admission-control execution bound
// (0 = unlimited).
func (s *Server) MaxConcurrent() int { return s.maxConcurrent }

// MaxQueue reports the read admission-control queue bound.
func (s *Server) MaxQueue() int { return s.maxQueue }

// isReadOp classifies the ops that are safe to run concurrently: pure
// queries against the database's shared-lock read path or the tracker's.
// Everything else either writes (insert, track-update) or touches
// per-connection session state. The telemetry op is deliberately NOT
// listed: it must bypass admission control so monitoring keeps seeing
// an overloaded server — overload is exactly when the numbers matter.
func isReadOp(op Op) bool {
	switch op {
	case OpSnapshot, OpKNN, OpStats, OpTrackAt, OpTrackDuring, OpTrackAlong:
		return true
	}
	return false
}

// admitReadOp gates read ops through admission control; other ops pass
// straight through.
func (s *Server) admitReadOp(op Op) (func(), error) {
	if !isReadOp(op) {
		return func() {}, nil
	}
	return s.admitRead()
}

// admitRead acquires a read execution slot, waiting in the bounded queue
// if necessary. It returns a release func, or ErrOverloaded when the
// queue is full.
func (s *Server) admitRead() (func(), error) {
	if s.readSem == nil {
		return func() {}, nil
	}
	release := func() { <-s.readSem }
	start := time.Now()
	select {
	case s.readSem <- struct{}{}:
		s.metrics.admissionWait.Observe(time.Since(start).Seconds())
		return release, nil
	default:
	}
	if q := s.queued.Add(1); q > int64(s.maxQueue) {
		s.queued.Add(-1)
		return nil, fmt.Errorf("%w (%d executing, %d queued)", ErrOverloaded, s.maxConcurrent, s.maxQueue)
	}
	s.metrics.readQueueDepth.Inc()
	s.readSem <- struct{}{}
	s.queued.Add(-1)
	s.metrics.readQueueDepth.Dec()
	s.metrics.admissionWait.Observe(time.Since(start).Seconds())
	return release, nil
}

// WithLogger installs a structured logger for connection lifecycle and
// request-scoped log lines (each carrying the request's trace and span
// ids). The default discards everything. Call before Serve.
func (s *Server) WithLogger(l *slog.Logger) *Server {
	if l != nil {
		s.logger = l
	}
	return s
}

// Registry exposes the server's metric registry (for the /metrics and
// /debug/vars endpoints).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Tracer exposes the server's query tracer (for /debug/trace).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// WithTracker attaches a current-state tracker, enabling the OpTrack*
// operations. Call before Serve.
func (s *Server) WithTracker(tk *dynq.Tracker) *Server {
	s.tracker = tk
	return s
}

// Serve accepts connections until the listener closes. It always returns
// a non-nil error (net.ErrClosed after Close). The first Serve starts
// the runtime collector; Close stops it.
func (s *Server) Serve(l net.Listener) error {
	s.startCollector()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close terminates all client connections and stops the runtime
// collector.
func (s *Server) Close() {
	s.mu.Lock()
	s.done = true
	for c := range s.conns {
		c.Close()
	}
	clear(s.conns)
	s.mu.Unlock()
	if s.tel.collectorOn.Swap(false) {
		s.tel.collector.Stop()
		s.tel.journal.Record(obs.EventServerStop, obs.SeverityInfo,
			"netq server shut down", nil)
	}
}

func (s *Server) handle(conn net.Conn) {
	s.metrics.activeConns.Inc()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.metrics.activeConns.Dec()
	}()
	cc := &countingConn{Conn: conn, in: s.metrics.bytesIn, out: s.metrics.bytesOut}
	dec := gob.NewDecoder(cc)
	enc := gob.NewEncoder(cc)

	// Version handshake before the first request. A v1 client's first
	// message is a Request, which fails to decode as a hello (gob finds
	// no matching fields); it is rejected as version 0 like any other
	// mismatch — and because helloAck's Err field lines up with
	// Response.Err, the rejection arrives at the old client as a
	// readable error instead of gob garbage.
	var h hello
	if err := dec.Decode(&h); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
			return
		}
		s.metrics.versionMismatches.Inc()
		verr := &VersionError{Local: ProtocolVersion, Remote: 0}
		s.logger.Warn("netq: rejected peer (no handshake)",
			"remote", conn.RemoteAddr().String(), "decode_err", err.Error(), "err", verr)
		enc.Encode(helloAck{Magic: protocolMagic, Version: ProtocolVersion, Err: verr.Error()})
		return
	}
	if h.Magic != protocolMagic || h.Version != ProtocolVersion {
		s.metrics.versionMismatches.Inc()
		verr := &VersionError{Local: ProtocolVersion, Remote: h.Version}
		s.logger.Warn("netq: rejected peer", "remote", conn.RemoteAddr().String(),
			"magic", h.Magic, "peer_version", h.Version, "err", verr)
		enc.Encode(helloAck{Magic: protocolMagic, Version: ProtocolVersion, Err: verr.Error()})
		return
	}
	if err := enc.Encode(helloAck{Magic: protocolMagic, Version: ProtocolVersion}); err != nil {
		return
	}
	s.logger.Debug("netq: connection open", "remote", conn.RemoteAddr().String())
	defer s.logger.Debug("netq: connection closed", "remote", conn.RemoteAddr().String())

	// Per-connection session state.
	sess := &connSessions{npdq: s.db.NonPredictive(dynq.NonPredictiveOptions{})}
	defer s.closeSessions(sess)

	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // disconnect (io.EOF) or protocol error
		}
		resp := s.serve(sess, req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// serve wraps dispatch with instrumentation: per-op request/error
// counters and latency histograms, typed-error counters, a structured
// log line, and one tracer span carrying the cost-counter deltas
// measured around the request, decomposed by pipeline stage. The
// counters are server-wide, so under concurrent connections a span's
// delta may include work charged by overlapping requests.
//
// The request's trace context (from the wire header, or a fresh root
// when the client sent none) is continued into a child span for the
// server-side op and threaded — together with the server's tracer —
// through the request context, so a sharded backend's fan-out records
// per-shard grandchild spans under the same trace.
func (s *Server) serve(sess *connSessions, req Request) Response {
	tc, _ := obs.ContinueTrace(req.TraceID, req.SpanID)
	ctx := obs.ContextWithTracer(obs.ContextWithTrace(context.Background(), tc), s.tracer)

	start := time.Now()
	before := s.db.CostSnapshot()
	var resp Response
	if release, aerr := s.admitReadOp(req.Op); aerr != nil {
		resp = Response{Err: aerr.Error(), ErrKind: errKind(aerr)}
	} else {
		s.metrics.inflightOps.Inc()
		resp = s.dispatch(ctx, sess, req)
		s.metrics.inflightOps.Dec()
		release()
	}
	elapsed := time.Since(start)
	delta := s.db.CostSnapshot().Sub(before)

	m := s.metrics
	if om, known := m.perOp[req.Op]; known {
		om.requests.Inc()
		om.latency.Observe(elapsed.Seconds())
		if resp.Err != "" {
			om.errors.Inc()
		}
	}
	switch resp.ErrKind {
	case ErrKindUnknownOp:
		m.unknownOps.Inc()
	case ErrKindNoTracker:
		m.noTracker.Inc()
	case ErrKindOverloaded:
		m.overloads.Inc()
		s.tel.noteOverload(s.maxConcurrent, s.maxQueue)
	}

	span := obs.Span{
		Op:      string(req.Op),
		Shard:   obs.NoShard,
		Start:   start,
		WallNS:  elapsed.Nanoseconds(),
		T0:      req.T0,
		T1:      req.T1,
		Results: len(resp.Results),
		Err:     resp.Err,
	}
	tc.Annotate(&span)
	if len(req.View.Min) > 0 {
		span.ViewMin = req.View.Min
		span.ViewMax = req.View.Max
	}
	if engine, ok := engineFor(req.Op); ok {
		span.Stages = obs.Stages(delta, engine)
	}
	s.tracer.Record(span)
	s.tel.record(req.Op, elapsed, resp.Err != "", span)

	lvl := slog.LevelDebug
	if resp.Err != "" {
		lvl = slog.LevelWarn
	}
	s.logger.LogAttrs(context.Background(), lvl, "netq: request",
		slog.String("op", string(req.Op)),
		slog.String("trace_id", span.TraceID),
		slog.String("span_id", span.SpanID),
		slog.Duration("elapsed", elapsed),
		slog.Int("results", len(resp.Results)),
		slog.Int64("reads", delta.Reads()),
		slog.String("err", resp.Err))
	return resp
}

// connSessions is the dynamic-query state tied to one connection. The
// cursors are held as the interface forms so the server works unchanged
// over single-tree and sharded backends.
type connSessions struct {
	pdq      dynq.PredictiveCursor
	npdq     dynq.NonPredictiveCursor
	adaptive dynq.AdaptiveCursor
}

func (s *Server) closeSessions(cs *connSessions) {
	if cs.pdq != nil {
		cs.pdq.Close()
		s.metrics.activePDQ.Dec()
	}
	if cs.adaptive != nil {
		cs.adaptive.Close()
		s.metrics.activeAdaptive.Dec()
	}
}

func (s *Server) dispatch(ctx context.Context, sess *connSessions, req Request) Response {
	pdq, npdq := &sess.pdq, sess.npdq
	fail := func(err error) Response { return Response{Err: err.Error(), ErrKind: errKind(err)} }
	switch req.Op {
	case OpSnapshot:
		rs, err := s.db.SnapshotCtx(ctx, req.View, req.T0, req.T1, dynq.QueryOptions{})
		if err != nil {
			return fail(err)
		}
		return Response{Results: rs}
	case OpInsert:
		if err := s.db.Insert(req.ID, req.Segment); err != nil {
			return fail(err)
		}
		return Response{}
	case OpApplyUpdates:
		if err := s.db.ApplyUpdates(ctx, req.Updates, dynq.WriteOptions{Durability: req.Durability}); err != nil {
			return fail(err)
		}
		return Response{}
	case OpKNN:
		nbs, err := s.db.KNNCtx(ctx, req.Point, req.T0, req.K, dynq.QueryOptions{})
		if err != nil {
			return fail(err)
		}
		return Response{Neighbors: nbs}
	case OpPDQStart:
		if *pdq != nil {
			(*pdq).Close()
			*pdq = nil
			s.metrics.activePDQ.Dec()
		}
		sess, err := s.db.Predictive(req.Waypoints, dynq.PredictiveOptions{Live: req.Live})
		if err != nil {
			return fail(err)
		}
		*pdq = sess
		s.metrics.activePDQ.Inc()
		return Response{}
	case OpPDQFetch:
		if *pdq == nil {
			return fail(fmt.Errorf("%w: predictive (start with %s)", ErrNoSession, OpPDQStart))
		}
		rs, err := (*pdq).Fetch(req.T0, req.T1)
		if err != nil {
			return fail(err)
		}
		return Response{Results: rs}
	case OpNPDQ:
		rs, err := npdq.Snapshot(req.View, req.T0, req.T1)
		if err != nil {
			return fail(err)
		}
		return Response{Results: rs}
	case OpNPDQReset:
		npdq.Reset()
		return Response{}
	case OpAdaptiveStart:
		if sess.adaptive != nil {
			sess.adaptive.Close()
			sess.adaptive = nil
			s.metrics.activeAdaptive.Dec()
		}
		a, err := s.db.Adaptive(req.Adaptive)
		if err != nil {
			return fail(err)
		}
		sess.adaptive = a
		s.metrics.activeAdaptive.Inc()
		return Response{}
	case OpAdaptiveFrame:
		if sess.adaptive == nil {
			return fail(fmt.Errorf("%w: adaptive (start with %s)", ErrNoSession, OpAdaptiveStart))
		}
		rs, err := sess.adaptive.Frame(req.View, req.T0, req.T1)
		if err != nil {
			return fail(err)
		}
		return Response{Results: rs, Predictive: sess.adaptive.Predictive()}
	case OpTrackUpdate, OpTrackAt, OpTrackDuring, OpTrackAlong:
		return s.dispatchTracker(req)
	case OpStats:
		st, err := s.db.Stats()
		if err != nil {
			return fail(err)
		}
		return Response{Stats: st}
	case OpTelemetry:
		tel := s.Telemetry()
		return Response{Telemetry: &tel}
	default:
		return fail(&UnknownOpError{Op: req.Op})
	}
}

func (s *Server) dispatchTracker(req Request) Response {
	fail := func(err error) Response { return Response{Err: err.Error(), ErrKind: errKind(err)} }
	if s.tracker == nil {
		return fail(ErrNoTracker)
	}
	// The tracker is internally locked: queries share its read lock,
	// updates take its write lock. No server-side serialization needed.
	switch req.Op {
	case OpTrackUpdate:
		if err := s.tracker.Update(req.ID, req.T0, req.Point, req.Vel); err != nil {
			return fail(err)
		}
		return Response{}
	case OpTrackAt:
		as, err := s.tracker.At(req.View, req.T0)
		if err != nil {
			return fail(err)
		}
		return Response{Anticipated: as}
	case OpTrackDuring:
		as, err := s.tracker.During(req.View, req.T0, req.T1)
		if err != nil {
			return fail(err)
		}
		return Response{Anticipated: as}
	default: // OpTrackAlong
		as, err := s.tracker.Along(req.Waypoints)
		if err != nil {
			return fail(err)
		}
		return Response{Anticipated: as}
	}
}

// DialOptions tune the client's connection and resilience behavior. The
// zero value gives the defaults: a 5-second connect+handshake timeout
// and no automatic reconnection.
type DialOptions struct {
	// HandshakeTimeout bounds the TCP connect plus the protocol
	// handshake, so dialing a half-open or wedged peer fails instead of
	// hanging forever. 0 means the 5-second default; negative disables
	// the bound.
	HandshakeTimeout time.Duration
	// Reconnect enables transparent redial-and-retry for IDEMPOTENT
	// read operations (snapshot, knn, stats, tracker queries) after a
	// transport failure. Writes and session operations are NEVER
	// retried — a lost write may or may not have been applied, and
	// retrying could duplicate it; they fail fast with an error matching
	// errors.Is(err, ErrConnectionLost).
	Reconnect bool
	// RetryMax caps redial attempts per call (default 8; negative
	// disables retries even with Reconnect set).
	RetryMax int
	// RetryBase is the first backoff delay; attempts double it up to
	// RetryMaxDelay, each jittered ±50%. Defaults: 25ms base, 1s cap.
	RetryBase     time.Duration
	RetryMaxDelay time.Duration
	// Tracer, when set, records one client-side span per call as with
	// Client.WithTracer.
	Tracer *obs.Tracer
}

// defaultHandshakeTimeout bounds Dial's connect+handshake when
// DialOptions.HandshakeTimeout is zero.
const defaultHandshakeTimeout = 5 * time.Second

func (o DialOptions) handshakeTimeout() time.Duration {
	switch {
	case o.HandshakeTimeout < 0:
		return 0
	case o.HandshakeTimeout == 0:
		return defaultHandshakeTimeout
	}
	return o.HandshakeTimeout
}

func (o DialOptions) retryMax() int {
	switch {
	case o.RetryMax < 0:
		return 0
	case o.RetryMax == 0:
		return 8
	}
	return o.RetryMax
}

func (o DialOptions) retryBase() time.Duration {
	if o.RetryBase <= 0 {
		return 25 * time.Millisecond
	}
	return o.RetryBase
}

func (o DialOptions) retryMaxDelay() time.Duration {
	if o.RetryMaxDelay <= 0 {
		return time.Second
	}
	return o.RetryMaxDelay
}

// ErrConnectionLost is wrapped by every client error caused by a
// transport failure (peer restart, broken pipe, failed redial) — as
// opposed to an error the server itself returned. A write that fails
// with it may or may not have been applied; the caller must decide
// whether re-sending is safe.
var ErrConnectionLost = errors.New("netq: connection lost")

// ErrClientClosed is returned by calls made after (or interrupted by)
// Client.Close.
var ErrClientClosed = errors.New("netq: client closed")

// retriesTotal counts transparent redial-and-retry attempts across all
// clients in the process, exported for the netq_retries_total metric.
var retriesTotal atomic.Int64

// RetriesTotal reports the cumulative number of transparent retries
// performed by reconnecting clients in this process.
func RetriesTotal() int64 { return retriesTotal.Load() }

// Client is a connection to a dqserver. Request methods are safe for
// sequential use only (one request in flight per connection); Close may
// be called concurrently and interrupts an in-flight call.
type Client struct {
	addr   string // "" when wrapped around an existing conn (no redial)
	opts   DialOptions
	tracer *obs.Tracer
	closed atomic.Bool

	mu   sync.Mutex // guards conn/enc/dec replacement, not request I/O
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a server and performs the protocol handshake, both
// bounded by the default 5-second handshake timeout.
func Dial(addr string) (*Client, error) {
	return DialWithOptions(addr, DialOptions{})
}

// DialWithOptions is Dial with explicit connection and resilience
// options.
func DialWithOptions(addr string, opts DialOptions) (*Client, error) {
	c := &Client{addr: addr, opts: opts, tracer: opts.Tracer}
	conn, enc, dec, err := c.dialOnce()
	if err != nil {
		return nil, err
	}
	c.conn, c.enc, c.dec = conn, enc, dec
	return c, nil
}

// dialOnce establishes and handshakes one connection under the
// handshake timeout.
func (c *Client) dialOnce() (net.Conn, *gob.Encoder, *gob.Decoder, error) {
	timeout := c.opts.handshakeTimeout()
	var conn net.Conn
	var err error
	if timeout > 0 {
		conn, err = net.DialTimeout("tcp", c.addr, timeout)
	} else {
		conn, err = net.Dial("tcp", c.addr)
	}
	if err != nil {
		return nil, nil, nil, err
	}
	enc, dec, err := handshake(conn, timeout)
	if err != nil {
		conn.Close()
		return nil, nil, nil, err
	}
	return conn, enc, dec, nil
}

// NewClient wraps an established connection (useful for tests with
// in-memory pipes) and performs the protocol handshake under the default
// handshake timeout, returning a *VersionError if the peer speaks a
// different protocol version. A client built this way cannot reconnect
// (it has no address to redial).
func NewClient(conn net.Conn) (*Client, error) {
	return NewClientWithOptions(conn, DialOptions{})
}

// NewClientWithOptions is NewClient with explicit options; Reconnect is
// ignored (there is no address to redial).
func NewClientWithOptions(conn net.Conn, opts DialOptions) (*Client, error) {
	enc, dec, err := handshake(conn, opts.handshakeTimeout())
	if err != nil {
		return nil, err
	}
	return &Client{opts: opts, tracer: opts.Tracer, conn: conn, enc: enc, dec: dec}, nil
}

// handshake performs the version exchange on conn, bounded by timeout
// (0 = unbounded) so a half-open peer cannot hang the caller forever.
func handshake(conn net.Conn, timeout time.Duration) (*gob.Encoder, *gob.Decoder, error) {
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
		defer conn.SetDeadline(time.Time{})
	}
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	if err := enc.Encode(hello{Magic: protocolMagic, Version: ProtocolVersion}); err != nil {
		return nil, nil, fmt.Errorf("netq: handshake send: %w", err)
	}
	var ack helloAck
	if err := dec.Decode(&ack); err != nil {
		if isTimeout(err) {
			return nil, nil, fmt.Errorf("netq: handshake timed out after %v (peer accepted but never answered): %w", timeout, err)
		}
		// A v1 server chokes on the hello (its Request decoder finds no
		// matching fields) and drops the connection, surfacing here as
		// EOF: classify that as a version mismatch, not an I/O mystery.
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
			return nil, nil, &VersionError{Local: ProtocolVersion, Remote: 0,
				Detail: "peer closed the connection during the handshake"}
		}
		return nil, nil, fmt.Errorf("netq: handshake read: %w", err)
	}
	if ack.Magic != protocolMagic || ack.Version != ProtocolVersion {
		// A v1 server decodes our hello into a zero Request and answers
		// Response{Err: unknown op}; its Err field lands in ack.Err.
		return nil, nil, &VersionError{Local: ProtocolVersion, Remote: ack.Version, Detail: ack.Err}
	}
	if ack.Err != "" {
		return nil, nil, errors.New(ack.Err)
	}
	return enc, dec, nil
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// WithTracer records one client-side span per call (op prefixed
// "client/", carrying the trace id sent to the server) into t, so a
// client process can correlate its view of latency with the server's
// /debug/trace spans. Call before issuing requests.
func (c *Client) WithTracer(t *obs.Tracer) *Client {
	c.tracer = t
	return c
}

// Close terminates the connection (and the server-side sessions). It is
// safe to call while a request is blocked in I/O: the call unblocks and
// returns ErrClientClosed.
func (c *Client) Close() error {
	c.closed.Store(true)
	c.mu.Lock()
	conn := c.conn
	c.conn, c.enc, c.dec = nil, nil, nil
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// current returns the live connection, redialing if the previous one was
// dropped. Redialing is safe even before a write: nothing has been sent
// on the new connection yet.
func (c *Client) current() (net.Conn, *gob.Encoder, *gob.Decoder, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return nil, nil, nil, ErrClientClosed
	}
	if c.conn != nil {
		return c.conn, c.enc, c.dec, nil
	}
	if c.addr == "" {
		return nil, nil, nil, fmt.Errorf("%w: no address to reconnect (client wraps an existing connection)", ErrConnectionLost)
	}
	conn, enc, dec, err := c.dialOnce()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%w: redial %s: %w", ErrConnectionLost, c.addr, err)
	}
	c.conn, c.enc, c.dec = conn, enc, dec
	return conn, enc, dec, nil
}

// drop discards conn if it is still the client's current connection.
// Called after any transport error: a half-finished exchange leaves the
// gob stream desynchronized, so the connection must not be reused.
func (c *Client) drop(conn net.Conn) {
	c.mu.Lock()
	if c.conn == conn {
		c.conn, c.enc, c.dec = nil, nil, nil
	}
	c.mu.Unlock()
	conn.Close()
}

// transportError marks an exchange failure caused by the transport (as
// opposed to an error the server returned in a Response).
type transportError struct{ err error }

func (e *transportError) Error() string { return e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// exchange performs one request/response pair on the current connection,
// honoring the context: cancellation (or the context's deadline)
// interrupts blocked connection I/O immediately. Transport failures come
// back as *transportError and drop the connection.
func (c *Client) exchange(ctx context.Context, req Request) (Response, error) {
	conn, enc, dec, err := c.current()
	if err != nil {
		if errors.Is(err, ErrClientClosed) {
			return Response{}, err
		}
		return Response{}, &transportError{err: err}
	}
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			conn.SetDeadline(time.Unix(1, 0)) // wake any blocked read/write
		})
		defer func() {
			if stop() {
				conn.SetDeadline(time.Time{})
			}
		}()
	}
	if err := enc.Encode(req); err != nil {
		c.drop(conn)
		return Response{}, &transportError{err: ctxError(ctx, err)}
	}
	var resp Response
	if err := dec.Decode(&resp); err != nil {
		c.drop(conn)
		if errors.Is(err, io.EOF) {
			return Response{}, &transportError{err: fmt.Errorf("netq: server closed the connection")}
		}
		return Response{}, &transportError{err: ctxError(ctx, err)}
	}
	if resp.Err != "" {
		return Response{}, typedError(req, resp)
	}
	return resp, nil
}

// roundTrip sends one request and awaits its response. With
// DialOptions.Reconnect set, idempotent read operations that hit a
// transport failure are transparently retried over a fresh connection
// with capped exponential backoff, within the context's deadline and the
// per-call retry budget. Writes and session ops never retry: they fail
// with an error matching errors.Is(err, ErrConnectionLost), leaving the
// resend decision to the caller.
func (c *Client) roundTrip(ctx context.Context, req Request) (Response, error) {
	if c.closed.Load() {
		return Response{}, ErrClientClosed
	}
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	// Propagate the caller's trace context (or start a fresh trace) in
	// the request header, so the server's op and per-shard spans share
	// one trace id with this call.
	tc, ok := obs.TraceFromContext(ctx)
	if !ok {
		tc = obs.NewTraceContext()
	}
	req.TraceID = tc.TraceID.String()
	req.SpanID = tc.SpanID.String()
	start := time.Now()
	defer func() {
		if c.tracer == nil {
			return
		}
		span := obs.Span{
			Op:     "client/" + string(req.Op),
			Shard:  obs.NoShard,
			Start:  start,
			WallNS: time.Since(start).Nanoseconds(),
		}
		tc.Annotate(&span)
		c.tracer.Record(span)
	}()

	retriable := c.opts.Reconnect && c.addr != "" && isReadOp(req.Op)
	budget := c.opts.retryMax()
	for attempt := 0; ; attempt++ {
		resp, err := c.exchange(ctx, req)
		var terr *transportError
		if err == nil || !errors.As(err, &terr) {
			return resp, err // success, or an error the server returned
		}
		if c.closed.Load() {
			return Response{}, ErrClientClosed
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Response{}, ctxErr
		}
		if !retriable || attempt >= budget {
			if errors.Is(terr.err, ErrConnectionLost) {
				return Response{}, terr.err
			}
			return Response{}, fmt.Errorf("%w: %w", ErrConnectionLost, terr.err)
		}
		retriesTotal.Add(1)
		if err := sleepBackoff(ctx, attempt, c.opts.retryBase(), c.opts.retryMaxDelay()); err != nil {
			return Response{}, err
		}
	}
}

// sleepBackoff waits base*2^attempt capped at maxDelay, jittered ±50%,
// or until the context is done.
func sleepBackoff(ctx context.Context, attempt int, base, maxDelay time.Duration) error {
	d := base << uint(attempt)
	if d > maxDelay || d <= 0 {
		d = maxDelay
	}
	d = d/2 + time.Duration(rand.Int64N(int64(d)))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// ctxError prefers the context's error over the I/O timeout it provoked.
func ctxError(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	return err
}

// Snapshot runs an independent snapshot query.
func (c *Client) Snapshot(view dynq.Rect, t0, t1 float64) ([]dynq.Result, error) {
	return c.SnapshotCtx(context.Background(), view, t0, t1)
}

// SnapshotCtx is Snapshot with cooperative cancellation.
func (c *Client) SnapshotCtx(ctx context.Context, view dynq.Rect, t0, t1 float64) ([]dynq.Result, error) {
	resp, err := c.roundTrip(ctx, Request{Op: OpSnapshot, View: view, T0: t0, T1: t1})
	return resp.Results, err
}

// Insert sends a motion update.
func (c *Client) Insert(id dynq.ObjectID, seg dynq.Segment) error {
	return c.InsertCtx(context.Background(), id, seg)
}

// InsertCtx is Insert with cooperative cancellation.
func (c *Client) InsertCtx(ctx context.Context, id dynq.ObjectID, seg dynq.Segment) error {
	_, err := c.roundTrip(ctx, Request{Op: OpInsert, ID: id, Segment: seg})
	return err
}

// ApplyUpdates sends a batch of motion updates applied as ONE database
// write on the server: one round trip, one lock acquisition, one WAL
// record — the high-rate ingest path. Updates apply in slice order. It
// requests DurabilityDefault: group-commit durable when the server has
// a log armed, plain in-memory otherwise. Callers that must not be
// acked by a WAL-less server pass an explicit level via
// ApplyUpdatesCtx and handle dynq.ErrNoWAL.
func (c *Client) ApplyUpdates(updates []dynq.MotionUpdate) error {
	return c.ApplyUpdatesCtx(context.Background(), updates, dynq.DurabilityDefault)
}

// ApplyUpdatesCtx is ApplyUpdates with cooperative cancellation and an
// explicit durability level (meaningful when the server database has a
// WAL armed). Like every write it is never auto-retried: a transport
// failure surfaces as ErrConnectionLost and the batch may or may not
// have been applied.
func (c *Client) ApplyUpdatesCtx(ctx context.Context, updates []dynq.MotionUpdate, d dynq.Durability) error {
	_, err := c.roundTrip(ctx, Request{Op: OpApplyUpdates, Updates: updates, Durability: d})
	return err
}

// KNN asks for the k objects nearest to point at time t.
func (c *Client) KNN(point []float64, t float64, k int) ([]dynq.Neighbor, error) {
	return c.KNNCtx(context.Background(), point, t, k)
}

// KNNCtx is KNN with cooperative cancellation.
func (c *Client) KNNCtx(ctx context.Context, point []float64, t float64, k int) ([]dynq.Neighbor, error) {
	resp, err := c.roundTrip(ctx, Request{Op: OpKNN, Point: point, T0: t, K: k})
	return resp.Neighbors, err
}

// StartPredictive registers the observer trajectory for this connection.
func (c *Client) StartPredictive(waypoints []dynq.Waypoint, live bool) error {
	return c.StartPredictiveCtx(context.Background(), waypoints, live)
}

// StartPredictiveCtx is StartPredictive with cooperative cancellation.
func (c *Client) StartPredictiveCtx(ctx context.Context, waypoints []dynq.Waypoint, live bool) error {
	_, err := c.roundTrip(ctx, Request{Op: OpPDQStart, Waypoints: waypoints, Live: live})
	return err
}

// FetchPredictive returns the objects becoming visible during [t0, t1].
func (c *Client) FetchPredictive(t0, t1 float64) ([]dynq.Result, error) {
	return c.FetchPredictiveCtx(context.Background(), t0, t1)
}

// FetchPredictiveCtx is FetchPredictive with cooperative cancellation.
func (c *Client) FetchPredictiveCtx(ctx context.Context, t0, t1 float64) ([]dynq.Result, error) {
	resp, err := c.roundTrip(ctx, Request{Op: OpPDQFetch, T0: t0, T1: t1})
	return resp.Results, err
}

// NonPredictive evaluates the next snapshot of this connection's
// non-predictive dynamic query.
func (c *Client) NonPredictive(view dynq.Rect, t0, t1 float64) ([]dynq.Result, error) {
	return c.NonPredictiveCtx(context.Background(), view, t0, t1)
}

// NonPredictiveCtx is NonPredictive with cooperative cancellation.
func (c *Client) NonPredictiveCtx(ctx context.Context, view dynq.Rect, t0, t1 float64) ([]dynq.Result, error) {
	resp, err := c.roundTrip(ctx, Request{Op: OpNPDQ, View: view, T0: t0, T1: t1})
	return resp.Results, err
}

// ResetNonPredictive forgets the NPDQ history (observer teleported).
func (c *Client) ResetNonPredictive() error {
	return c.ResetNonPredictiveCtx(context.Background())
}

// ResetNonPredictiveCtx is ResetNonPredictive with cooperative
// cancellation.
func (c *Client) ResetNonPredictiveCtx(ctx context.Context) error {
	_, err := c.roundTrip(ctx, Request{Op: OpNPDQReset})
	return err
}

// Stats fetches index statistics.
func (c *Client) Stats() (dynq.IndexStats, error) {
	return c.StatsCtx(context.Background())
}

// StatsCtx is Stats with cooperative cancellation.
func (c *Client) StatsCtx(ctx context.Context) (dynq.IndexStats, error) {
	resp, err := c.roundTrip(ctx, Request{Op: OpStats})
	return resp.Stats, err
}

// StartAdaptive starts this connection's adaptive dynamic query session.
func (c *Client) StartAdaptive(opts dynq.AdaptiveOptions) error {
	return c.StartAdaptiveCtx(context.Background(), opts)
}

// StartAdaptiveCtx is StartAdaptive with cooperative cancellation.
func (c *Client) StartAdaptiveCtx(ctx context.Context, opts dynq.AdaptiveOptions) error {
	_, err := c.roundTrip(ctx, Request{Op: OpAdaptiveStart, Adaptive: opts})
	return err
}

// AdaptiveFrame reports the observer's view for one frame; it returns the
// newly visible objects and whether the server is currently predicting
// the observer's motion.
func (c *Client) AdaptiveFrame(view dynq.Rect, t0, t1 float64) ([]dynq.Result, bool, error) {
	return c.AdaptiveFrameCtx(context.Background(), view, t0, t1)
}

// AdaptiveFrameCtx is AdaptiveFrame with cooperative cancellation.
func (c *Client) AdaptiveFrameCtx(ctx context.Context, view dynq.Rect, t0, t1 float64) ([]dynq.Result, bool, error) {
	resp, err := c.roundTrip(ctx, Request{Op: OpAdaptiveFrame, View: view, T0: t0, T1: t1})
	return resp.Results, resp.Predictive, err
}

// TrackUpdate reports an object's current motion state to the server's
// tracker.
func (c *Client) TrackUpdate(id dynq.ObjectID, t float64, pos, vel []float64) error {
	return c.TrackUpdateCtx(context.Background(), id, t, pos, vel)
}

// TrackUpdateCtx is TrackUpdate with cooperative cancellation.
func (c *Client) TrackUpdateCtx(ctx context.Context, id dynq.ObjectID, t float64, pos, vel []float64) error {
	_, err := c.roundTrip(ctx, Request{Op: OpTrackUpdate, ID: id, T0: t, Point: pos, Vel: vel})
	return err
}

// TrackAt returns the objects anticipated inside the view at time t.
func (c *Client) TrackAt(view dynq.Rect, t float64) ([]dynq.Anticipated, error) {
	return c.TrackAtCtx(context.Background(), view, t)
}

// TrackAtCtx is TrackAt with cooperative cancellation.
func (c *Client) TrackAtCtx(ctx context.Context, view dynq.Rect, t float64) ([]dynq.Anticipated, error) {
	resp, err := c.roundTrip(ctx, Request{Op: OpTrackAt, View: view, T0: t})
	return resp.Anticipated, err
}

// TrackDuring returns the objects anticipated inside the view during
// [t0, t1].
func (c *Client) TrackDuring(view dynq.Rect, t0, t1 float64) ([]dynq.Anticipated, error) {
	return c.TrackDuringCtx(context.Background(), view, t0, t1)
}

// TrackDuringCtx is TrackDuring with cooperative cancellation.
func (c *Client) TrackDuringCtx(ctx context.Context, view dynq.Rect, t0, t1 float64) ([]dynq.Anticipated, error) {
	resp, err := c.roundTrip(ctx, Request{Op: OpTrackDuring, View: view, T0: t0, T1: t1})
	return resp.Anticipated, err
}

// TrackAlong returns the objects anticipated to enter the moving view.
func (c *Client) TrackAlong(waypoints []dynq.Waypoint) ([]dynq.Anticipated, error) {
	return c.TrackAlongCtx(context.Background(), waypoints)
}

// TrackAlongCtx is TrackAlong with cooperative cancellation.
func (c *Client) TrackAlongCtx(ctx context.Context, waypoints []dynq.Waypoint) ([]dynq.Anticipated, error) {
	resp, err := c.roundTrip(ctx, Request{Op: OpTrackAlong, Waypoints: waypoints})
	return resp.Anticipated, err
}
