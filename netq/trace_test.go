package netq

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"dynq"
	"dynq/internal/obs"
)

// startServerKeep is startServer, but also returns the server so tests
// can inspect its tracer and registry.
func startServerKeep(t *testing.T, db dynq.Database) (srv *Server, addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv = NewServer(db)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Serve(l)
	}()
	return srv, l.Addr().String(), func() {
		l.Close()
		srv.Close()
		wg.Wait()
	}
}

func shardedTestDB(t *testing.T, shards int) *dynq.ShardedDB {
	t.Helper()
	db, err := dynq.OpenSharded(dynq.ShardOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for i := 0; i < 200; i++ {
		x := float64(i % 100)
		err := db.Insert(dynq.ObjectID(i), dynq.Segment{
			T0: 0, T1: 100,
			From: []float64{x, 50}, To: []float64{x, 50},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestTracePropagationAcrossWireAndShards is the acceptance path: one
// SnapshotCtx through the netq client against a 4-shard server must
// yield a single trace containing the client span, the server op span,
// and one span per shard, each shard span carrying pager/rtree/engine
// stage deltas.
func TestTracePropagationAcrossWireAndShards(t *testing.T) {
	const shards = 4
	db := shardedTestDB(t, shards)
	srv, addr, stop := startServerKeep(t, db)
	defer stop()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	clientTracer := obs.NewTracer(8)
	cl.WithTracer(clientTracer)

	view := dynq.Rect{Min: []float64{0, 0}, Max: []float64{100, 100}}
	rs, err := cl.SnapshotCtx(context.Background(), view, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("snapshot returned nothing; the trace would be trivial")
	}

	// Client side: one span, a root (no parent), carrying the trace id.
	cspans := clientTracer.Recent()
	if len(cspans) != 1 || cspans[0].Op != "client/snapshot" {
		t.Fatalf("client spans = %+v", cspans)
	}
	traceID, clientSpan := cspans[0].TraceID, cspans[0].SpanID
	if traceID == "" || clientSpan == "" || cspans[0].ParentID != "" {
		t.Fatalf("client span ids wrong: %+v", cspans[0])
	}

	// Server side: the op span continues the client's trace, and every
	// shard span is its child.
	spans := srv.Tracer().Trace(traceID)
	if len(spans) != 1+shards {
		t.Fatalf("server trace has %d spans, want %d: %+v", len(spans), 1+shards, spans)
	}
	var opSpan string
	seenShards := make(map[int]bool)
	for _, s := range spans {
		switch s.Op {
		case "snapshot":
			if s.ParentID != clientSpan {
				t.Errorf("op span parent = %q, want client span %s", s.ParentID, clientSpan)
			}
			if s.Shard != obs.NoShard {
				t.Errorf("op span shard = %d", s.Shard)
			}
			opSpan = s.SpanID
		case "snapshot/shard":
			seenShards[s.Shard] = true
			if len(s.Stages) != 3 || s.Stages[0].Stage != "pager" ||
				s.Stages[1].Stage != "rtree" || s.Stages[2].Stage != "snapshot" {
				t.Errorf("shard %d stages = %+v", s.Shard, s.Stages)
			}
		default:
			t.Errorf("unexpected span op %q in trace", s.Op)
		}
	}
	if opSpan == "" {
		t.Fatal("no server op span in trace")
	}
	if len(seenShards) != shards {
		t.Fatalf("shard spans cover %d shards, want %d", len(seenShards), shards)
	}
	for _, s := range spans {
		if s.Op == "snapshot/shard" && s.ParentID != opSpan {
			t.Errorf("shard %d span parent = %q, want op span %s", s.Shard, s.ParentID, opSpan)
		}
	}

	// /debug/trace?trace=<id> serves the correlated trace as JSON that
	// round-trips through encoding/json.
	hs := httptest.NewServer(obs.Handler(srv.Registry(), srv.Tracer()))
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/debug/trace?trace=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc obs.TraceDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/debug/trace?trace= not JSON: %v\n%s", err, body)
	}
	if doc.TraceID != traceID || len(doc.Spans) != 1+shards {
		t.Errorf("correlated doc: trace=%s spans=%d, want %s / %d",
			doc.TraceID, len(doc.Spans), traceID, 1+shards)
	}
	re, err := json.Marshal(doc)
	if err != nil || len(re) == 0 {
		t.Errorf("re-marshal failed: %v", err)
	}
}

// TestCallerTraceContextIsUsed checks that a trace context supplied by
// the caller (rather than auto-generated) flows through to the server.
func TestCallerTraceContextIsUsed(t *testing.T) {
	db := testDB(t)
	srv, addr, stop := startServerKeep(t, db)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tc := obs.NewTraceContext()
	ctx := obs.ContextWithTrace(context.Background(), tc)
	if _, err := cl.KNNCtx(ctx, []float64{50, 50}, 0, 3); err != nil {
		t.Fatal(err)
	}
	spans := srv.Tracer().Trace(tc.TraceID.String())
	if len(spans) != 1 {
		t.Fatalf("trace %s has %d server spans, want 1", tc.TraceID, len(spans))
	}
	if spans[0].Op != "knn" || spans[0].ParentID != tc.SpanID.String() {
		t.Errorf("op span = %+v, want knn parented to %s", spans[0], tc.SpanID)
	}
}
