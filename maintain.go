package dynq

// Self-healing maintenance: a background loop that keeps a database
// healthy without operator intervention.
//
//	healthy ──write/scrub failure──▶ degraded ──probe succeeds──▶ healthy
//	   │                                 ▲  │
//	   └── auto-checkpoint + scrub       │  └── probing (capped
//	       while healthy                 │      exponential backoff)
//	                                     └── scrub corruption holds the
//	                                         flag until a clean pass
//
// The loop has three jobs, all driven from one clock-injectable tick:
//
//   - Auto-checkpoint: when a write-ahead log crosses a CheckpointPolicy
//     threshold (live bytes, record lag, or age of the oldest
//     un-checkpointed record), the loop checkpoints it through the same
//     Sync machinery callers use — worst-pressure log first on a sharded
//     database — so the log stays bounded with no caller cooperation.
//
//   - Degraded-mode probe: once the database trips read-only, the loop
//     periodically clears sticky log sync errors, re-verifies the page
//     file header, and attempts a small self-canceling durable write
//     (insert + delete of a reserved object id, then a checkpoint). A
//     successful probe clears the degraded flag and journals the exit
//     with the probe count and downtime; failures double the backoff up
//     to a cap. DegradeAfter becomes a circuit breaker, not a one-way
//     latch.
//
//   - Background scrub: a rate-limited walker re-reads the COMMITTED
//     tree's reachable pages through the store, verifying checksums and
//     epoch trailers. Unrepairable corruption trips degraded mode and
//     holds it until a later pass comes back clean (probing resumes
//     then), so a bit-flip cannot hide until the next crash.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dynq/internal/obs"
	"dynq/internal/pager"
	"dynq/internal/rtree"
)

// CheckpointPolicy bounds a write-ahead log without caller cooperation:
// the maintenance loop checkpoints any log that crosses one of the
// thresholds. The zero value disables policy-driven checkpointing.
type CheckpointPolicy struct {
	// MaxBytes checkpoints a log once its live record bytes (bytes
	// appended since the last checkpoint) reach this many. 0 disables.
	MaxBytes int64
	// MaxLagRecords checkpoints a log once this many records have been
	// appended since the last checkpoint. 0 disables.
	MaxLagRecords uint64
	// MaxAge checkpoints a log once its oldest un-checkpointed record is
	// this old. 0 disables.
	MaxAge time.Duration
}

func (p CheckpointPolicy) enabled() bool {
	return p.MaxBytes > 0 || p.MaxLagRecords > 0 || p.MaxAge > 0
}

// pressure is how close a log is to its nearest threshold: the maximum
// ratio across enabled thresholds, so >= 1 means the log is due.
func (p CheckpointPolicy) pressure(live int64, lag uint64, since, now time.Time) float64 {
	var m float64
	if p.MaxBytes > 0 {
		if r := float64(live) / float64(p.MaxBytes); r > m {
			m = r
		}
	}
	if p.MaxLagRecords > 0 {
		if r := float64(lag) / float64(p.MaxLagRecords); r > m {
			m = r
		}
	}
	if p.MaxAge > 0 && !since.IsZero() {
		if r := float64(now.Sub(since)) / float64(p.MaxAge); r > m {
			m = r
		}
	}
	return m
}

// MaintenanceOptions configure the self-healing maintenance loop. The
// zero value disables it entirely; setting any of Checkpoint,
// ScrubPagesPerSec, or ProbeBackoff starts it. Whenever the loop runs,
// degraded-mode probing is on — ProbeBackoff only tunes its pacing.
type MaintenanceOptions struct {
	// Checkpoint is the auto-checkpoint policy (WAL-armed databases
	// only; without a log there is nothing to bound).
	Checkpoint CheckpointPolicy
	// ScrubPagesPerSec rate-limits the background scrubber (pages
	// verified per second, spread across ticks). 0 disables scrubbing.
	// Only file-backed stores can be scrubbed; an in-memory database
	// records one "unsupported" error and stops.
	ScrubPagesPerSec int
	// ProbeBackoff is the initial spacing between degraded-mode recovery
	// probes; each failure doubles it up to 32x. 0 means the 1s default.
	ProbeBackoff time.Duration
	// Interval is the tick spacing of the loop (0 = the 250ms default).
	// A NEGATIVE interval starts no goroutine: ticks are driven manually
	// (tests and the chaos soak inject a clock and call tick directly).
	Interval time.Duration
}

// Enabled reports whether these options start a maintenance loop.
func (m MaintenanceOptions) Enabled() bool {
	return m.Checkpoint.enabled() || m.ScrubPagesPerSec > 0 || m.ProbeBackoff > 0
}

const (
	defaultMaintInterval  = 250 * time.Millisecond
	defaultProbeBackoff   = time.Second
	maxProbeBackoffFactor = 32
)

// maintProbeID is the reserved object id the recovery probe inserts and
// deletes. It is distinct from dqtop's write-probe base (1<<60) so an
// operator probe and the maintenance loop never collide.
const maintProbeID ObjectID = 1<<61 + 1

// errScrubUnsupported marks a store without the page-verification
// capability (an in-memory database); the scrubber disables itself.
var errScrubUnsupported = errors.New("dynq: store does not support scrubbing (no page epochs)")

// maintLogStat is one write-ahead log's checkpoint pressure inputs.
type maintLogStat struct {
	liveBytes int64
	lag       uint64
}

// maintainable is what the maintenance loop needs from a database
// flavor; *DB and *ShardedDB both implement it.
type maintainable interface {
	maintHealth() *degradeState
	// maintLogs reports each armed log's live bytes and record lag, in
	// log order; nil when the database runs without a WAL.
	maintLogs() []maintLogStat
	// maintCheckpoint checkpoints the given log indexes (already sorted
	// worst pressure first); a single-log database ignores the indexes.
	maintCheckpoint(idx []int) error
	// maintRepair clears recoverable fault state before a probe: sticky
	// log sync errors are retried and the page header re-verified.
	maintRepair() error
	// maintProbe attempts the self-canceling durable write while the
	// database is degraded (the write path runs ungated).
	maintProbe() error
	// maintScrub verifies up to budget reachable pages under the
	// database's exclusive lock, advancing the cursor in s.
	maintScrub(s *scrubState, budget int) scrubResult
}

// maintainer is the background maintenance loop's state. One per
// database; tick runs on a single goroutine (or is driven manually),
// telemetry readers synchronize through atomics and mu.
type maintainer struct {
	target   maintainable
	opts     MaintenanceOptions
	interval time.Duration // resolved tick spacing, for scrub budgeting
	now      func() time.Time

	manual   bool
	stopc    chan struct{}
	donec    chan struct{}
	stopOnce sync.Once

	// Counters, exact and lock-free for telemetry and metrics.
	ticks              atomic.Int64
	autoCheckpoints    atomic.Int64
	checkpointFailures atomic.Int64
	probeCount         atomic.Int64
	probeFailures      atomic.Int64
	heals              atomic.Int64
	scrubPageCount     atomic.Int64
	scrubCorruptCount  atomic.Int64
	scrubPassCount     atomic.Int64
	downtimeNS         atomic.Int64
	pressureBits       atomic.Uint64

	// Episodic state, guarded by mu (tick mutates, telemetry reads).
	mu            sync.Mutex
	lagSince      []time.Time // per log: when it was first seen lagging
	degradedAt    time.Time   // start of the current degraded episode
	nextProbe     time.Time
	probeDelay    time.Duration
	episodeProbes int
	corrupt       bool // scrub-tripped: probing paused until a clean pass
	lastProbeErr  string
	lastScrubErr  string
	scrubBudget   float64 // fractional page budget carried across ticks
	scrub         scrubState
	lastScrubNote time.Time // rate-limits pass-completion journal events
}

// startMaintainer builds (and, unless manual, starts) the maintenance
// loop for a database. Returns nil when the options disable it.
func startMaintainer(t maintainable, opts MaintenanceOptions) *maintainer {
	if !opts.Enabled() {
		return nil
	}
	if opts.ProbeBackoff <= 0 {
		opts.ProbeBackoff = defaultProbeBackoff
	}
	interval := opts.Interval
	if interval == 0 {
		interval = defaultMaintInterval
	}
	m := &maintainer{
		target:   t,
		opts:     opts,
		interval: interval,
		now:      time.Now,
		stopc:    make(chan struct{}),
		donec:    make(chan struct{}),
	}
	if opts.Interval < 0 {
		m.manual = true
		m.interval = defaultMaintInterval
		return m
	}
	go m.run()
	return m
}

func (m *maintainer) run() {
	defer close(m.donec)
	t := time.NewTicker(m.interval)
	defer t.Stop()
	for {
		select {
		case <-m.stopc:
			return
		case <-t.C:
			m.tick()
		}
	}
}

// stop terminates the loop and waits for an in-flight tick to finish.
// Safe on a nil maintainer and safe to call twice.
func (m *maintainer) stop() {
	if m == nil {
		return
	}
	m.stopOnce.Do(func() {
		close(m.stopc)
		if !m.manual {
			<-m.donec
		}
	})
}

// tick runs one maintenance iteration: recovery work while the database
// is degraded, checkpoint policy and scrubbing while it is healthy.
func (m *maintainer) tick() {
	m.ticks.Add(1)
	now := m.now()
	if m.target.maintHealth().degraded.Load() {
		m.mu.Lock()
		corrupt := m.corrupt
		m.mu.Unlock()
		if corrupt {
			// Scrub tripped the flag: a durable write proves nothing about
			// the corrupt page, so keep scrubbing instead of probing — a
			// fully clean pass clears the hold and probing resumes.
			m.scrubTick(now)
			return
		}
		m.probeTick(now)
		return
	}
	m.mu.Lock()
	m.degradedAt, m.nextProbe, m.episodeProbes = time.Time{}, time.Time{}, 0
	m.probeDelay = 0
	m.mu.Unlock()
	m.checkpointTick(now)
	m.scrubTick(now)
}

// checkpointTick evaluates the checkpoint policy against every armed
// log and checkpoints the ones past a threshold, worst pressure first.
func (m *maintainer) checkpointTick(now time.Time) {
	if !m.opts.Checkpoint.enabled() {
		return
	}
	stats := m.target.maintLogs()
	if len(stats) == 0 {
		return
	}
	m.mu.Lock()
	if len(m.lagSince) != len(stats) {
		m.lagSince = make([]time.Time, len(stats))
	}
	type dueLog struct {
		idx      int
		pressure float64
	}
	var due []dueLog
	var maxP float64
	for i, st := range stats {
		if st.lag == 0 {
			m.lagSince[i] = time.Time{}
		} else if m.lagSince[i].IsZero() {
			m.lagSince[i] = now
		}
		p := m.opts.Checkpoint.pressure(st.liveBytes, st.lag, m.lagSince[i], now)
		if p > maxP {
			maxP = p
		}
		if p >= 1 {
			due = append(due, dueLog{i, p})
		}
	}
	m.mu.Unlock()
	m.pressureBits.Store(math.Float64bits(maxP))
	if len(due) == 0 {
		return
	}
	sort.Slice(due, func(a, b int) bool { return due[a].pressure > due[b].pressure })
	idx := make([]int, len(due))
	for i, d := range due {
		idx[i] = d.idx
	}
	if err := m.target.maintCheckpoint(idx); err != nil {
		m.checkpointFailures.Add(1)
		obs.DefaultJournal().Record(obs.EventAutoCheckpoint, obs.SeverityWarn,
			"auto-checkpoint failed", map[string]string{
				"logs":  strconv.Itoa(len(idx)),
				"error": err.Error(),
			})
		return
	}
	m.autoCheckpoints.Add(1)
	m.mu.Lock()
	for _, d := range due {
		if d.idx < len(m.lagSince) {
			m.lagSince[d.idx] = time.Time{}
		}
	}
	m.mu.Unlock()
	m.pressureBits.Store(0)
	obs.DefaultJournal().Record(obs.EventAutoCheckpoint, obs.SeverityInfo,
		"auto-checkpoint: policy threshold crossed; log truncated",
		map[string]string{
			"logs":     strconv.Itoa(len(idx)),
			"pressure": strconv.FormatFloat(maxP, 'f', 2, 64),
		})
}

// probeTick drives degraded-mode recovery: repair what is sticky, then
// attempt the durable probe write, backing off exponentially (capped)
// between failures.
func (m *maintainer) probeTick(now time.Time) {
	m.mu.Lock()
	if m.degradedAt.IsZero() {
		m.degradedAt = now
		m.probeDelay = m.opts.ProbeBackoff
		m.nextProbe = now // first probe fires immediately
		m.episodeProbes = 0
	}
	if now.Before(m.nextProbe) {
		m.mu.Unlock()
		return
	}
	m.episodeProbes++
	attempt := m.episodeProbes
	degradedAt := m.degradedAt
	m.mu.Unlock()

	m.probeCount.Add(1)
	err := m.target.maintRepair()
	if err == nil {
		err = m.target.maintProbe()
	}
	if err != nil {
		m.probeFailures.Add(1)
		m.mu.Lock()
		m.lastProbeErr = err.Error()
		m.probeDelay *= 2
		if max := m.opts.ProbeBackoff * maxProbeBackoffFactor; m.probeDelay > max {
			m.probeDelay = max
		}
		m.nextProbe = now.Add(m.probeDelay)
		delay := m.probeDelay
		m.mu.Unlock()
		obs.DefaultJournal().Record(obs.EventProbe, obs.SeverityWarn,
			"degraded-mode recovery probe failed", map[string]string{
				"attempt":      strconv.Itoa(attempt),
				"error":        err.Error(),
				"next_backoff": delay.String(),
			})
		return
	}
	downtime := now.Sub(degradedAt)
	m.downtimeNS.Add(int64(downtime))
	if m.target.maintHealth().heal(attempt, downtime) {
		m.heals.Add(1)
	}
	m.mu.Lock()
	m.lastProbeErr = ""
	m.degradedAt, m.nextProbe, m.episodeProbes = time.Time{}, time.Time{}, 0
	m.probeDelay = 0
	m.mu.Unlock()
	obs.DefaultJournal().Record(obs.EventProbe, obs.SeverityInfo,
		"recovery probe wrote durably; database healed", map[string]string{
			"probes":   strconv.Itoa(attempt),
			"downtime": downtime.Round(time.Millisecond).String(),
		})
}

// scrubTick spends this tick's page budget walking the committed tree.
func (m *maintainer) scrubTick(now time.Time) {
	if m.opts.ScrubPagesPerSec <= 0 {
		return
	}
	m.mu.Lock()
	if m.lastScrubErr == errScrubUnsupported.Error() {
		m.mu.Unlock()
		return
	}
	m.scrubBudget += float64(m.opts.ScrubPagesPerSec) * m.interval.Seconds()
	budget := int(m.scrubBudget)
	if budget < 1 {
		m.mu.Unlock()
		return
	}
	m.scrubBudget -= float64(budget)
	s := &m.scrub
	m.mu.Unlock()

	// The cursor is only ever touched by tick (single goroutine), so the
	// target may mutate it outside m.mu.
	res := m.target.maintScrub(s, budget)
	m.scrubPageCount.Add(int64(res.pages))
	m.scrubCorruptCount.Add(int64(res.corruptions))
	if res.passDone {
		m.scrubPassCount.Add(1)
	}
	if res.err != nil {
		m.mu.Lock()
		m.lastScrubErr = res.err.Error()
		m.mu.Unlock()
		return
	}
	if res.corruptions > 0 {
		m.mu.Lock()
		m.corrupt = true
		if res.lastErr != nil {
			m.lastScrubErr = res.lastErr.Error()
		}
		m.mu.Unlock()
		msg := "background scrub found unrepairable page corruption; degrading to read-only"
		fields := map[string]string{
			"corrupt_pages": strconv.Itoa(res.corruptions),
		}
		if res.lastErr != nil {
			fields["error"] = res.lastErr.Error()
		}
		obs.DefaultJournal().Record(obs.EventScrub, obs.SeverityError, msg, fields)
		m.target.maintHealth().trip(msg, fields)
		return
	}
	if res.passDone {
		m.mu.Lock()
		wasCorrupt := m.corrupt
		m.corrupt = false
		m.lastScrubErr = ""
		note := wasCorrupt || now.Sub(m.lastScrubNote) >= time.Minute
		if note {
			m.lastScrubNote = now
		}
		m.mu.Unlock()
		if wasCorrupt {
			// A fully clean pass lifts the corruption hold; the probe path
			// takes over and clears the degraded flag with a durable write.
			obs.DefaultJournal().Record(obs.EventScrub, obs.SeverityInfo,
				"scrub pass clean; corruption hold lifted, recovery probing resumes", nil)
		} else if note {
			obs.DefaultJournal().Record(obs.EventScrub, obs.SeverityInfo,
				"background scrub pass completed", map[string]string{
					"passes": strconv.FormatInt(m.scrubPassCount.Load(), 10),
					"pages":  strconv.FormatInt(m.scrubPageCount.Load(), 10),
				})
		}
	}
}

// telemetry snapshots the loop for the obs/netq maintenance section.
func (m *maintainer) telemetry() obs.MaintenanceTelemetry {
	now := m.now()
	t := obs.MaintenanceTelemetry{
		Ticks:                m.ticks.Load(),
		Checkpoints:          m.autoCheckpoints.Load(),
		CheckpointFailures:   m.checkpointFailures.Load(),
		CheckpointPressure:   math.Float64frombits(m.pressureBits.Load()),
		Degraded:             m.target.maintHealth().degraded.Load(),
		Probes:               m.probeCount.Load(),
		ProbeFailures:        m.probeFailures.Load(),
		Heals:                m.heals.Load(),
		DowntimeTotalSeconds: time.Duration(m.downtimeNS.Load()).Seconds(),
		ScrubPages:           m.scrubPageCount.Load(),
		ScrubCorruptions:     m.scrubCorruptCount.Load(),
		ScrubPasses:          m.scrubPassCount.Load(),
	}
	m.mu.Lock()
	if !m.degradedAt.IsZero() {
		t.DegradedSeconds = now.Sub(m.degradedAt).Seconds()
	}
	if t.Degraded && !m.nextProbe.IsZero() {
		if d := m.nextProbe.Sub(now); d > 0 {
			t.NextProbeInSeconds = d.Seconds()
		}
	}
	t.LastProbeError = m.lastProbeErr
	t.LastScrubError = m.lastScrubErr
	t.ScrubCursor = int64(len(m.scrub.walk.seen))
	m.mu.Unlock()
	return t
}

// registerMetrics exposes the loop's counters in a metric registry.
func (m *maintainer) registerMetrics(reg *obs.Registry) {
	reg.SetHelp("dynq_maintenance_ticks_total", "Maintenance loop iterations.")
	reg.SetHelp("dynq_maintenance_checkpoints_total", "Policy-driven WAL checkpoints completed by the maintenance loop.")
	reg.SetHelp("dynq_maintenance_checkpoint_failures_total", "Policy-driven WAL checkpoints that failed.")
	reg.SetHelp("dynq_maintenance_checkpoint_pressure", "Worst log's fraction of its nearest checkpoint threshold (>= 1 means due).")
	reg.SetHelp("dynq_maintenance_probes_total", "Degraded-mode recovery probes attempted.")
	reg.SetHelp("dynq_maintenance_probe_failures_total", "Degraded-mode recovery probes that failed.")
	reg.SetHelp("dynq_maintenance_heals_total", "Degraded episodes cleared by a successful probe.")
	reg.SetHelp("dynq_maintenance_downtime_seconds_total", "Cumulative read-only time across healed episodes.")
	reg.SetHelp("dynq_scrub_pages_total", "Pages verified by the background scrubber.")
	reg.SetHelp("dynq_scrub_corruptions_total", "Pages the scrubber failed to verify (checksum, epoch, or decode).")
	reg.SetHelp("dynq_scrub_passes_total", "Complete scrub sweeps of the reachable page set.")
	reg.GaugeFunc("dynq_maintenance_ticks_total", func() float64 { return float64(m.ticks.Load()) })
	reg.GaugeFunc("dynq_maintenance_checkpoints_total", func() float64 { return float64(m.autoCheckpoints.Load()) })
	reg.GaugeFunc("dynq_maintenance_checkpoint_failures_total", func() float64 { return float64(m.checkpointFailures.Load()) })
	reg.GaugeFunc("dynq_maintenance_checkpoint_pressure", func() float64 { return math.Float64frombits(m.pressureBits.Load()) })
	reg.GaugeFunc("dynq_maintenance_probes_total", func() float64 { return float64(m.probeCount.Load()) })
	reg.GaugeFunc("dynq_maintenance_probe_failures_total", func() float64 { return float64(m.probeFailures.Load()) })
	reg.GaugeFunc("dynq_maintenance_heals_total", func() float64 { return float64(m.heals.Load()) })
	reg.GaugeFunc("dynq_maintenance_downtime_seconds_total", func() float64 {
		return time.Duration(m.downtimeNS.Load()).Seconds()
	})
	reg.GaugeFunc("dynq_scrub_pages_total", func() float64 { return float64(m.scrubPageCount.Load()) })
	reg.GaugeFunc("dynq_scrub_corruptions_total", func() float64 { return float64(m.scrubCorruptCount.Load()) })
	reg.GaugeFunc("dynq_scrub_passes_total", func() float64 { return float64(m.scrubPassCount.Load()) })
}

// ---------------------------------------------------------------------
// Scrubbing: an incremental BFS over the COMMITTED tree, resumable
// across ticks within a rate budget.

// scrubState is the scrub cursor: which unit (shard) is being walked
// and the walk's frontier. It persists across ticks; only the tick
// goroutine touches it.
type scrubState struct {
	unit int
	walk scrubWalk
}

// scrubWalk is one unit's in-progress BFS.
type scrubWalk struct {
	active  bool
	passSeq uint64 // committed header seq when this walk began
	cfg     rtree.Config
	queue   []pager.PageID
	seen    map[pager.PageID]struct{}
}

// scrubResult reports one maintScrub call's work.
type scrubResult struct {
	pages       int
	corruptions int
	unitDone    bool  // current unit's walk completed
	passDone    bool  // every unit's walk completed (set by the caller)
	lastErr     error // most recent corruption detail
	err         error // non-corruption failure (disables scrubbing)
}

func (r *scrubResult) add(o scrubResult) {
	r.pages += o.pages
	r.corruptions += o.corruptions
	if o.lastErr != nil {
		r.lastErr = o.lastErr
	}
}

// scrubPageReader is the store capability the scrubber needs; FileStore
// implements it and FaultStore forwards it.
type scrubPageReader interface {
	ReadPageEpoch(pager.PageID, []byte) (uint64, error)
	CommittedSeq() uint64
}

// scrubStep verifies up to budget pages of one unit's committed tree.
// The caller holds the database's exclusive lock, so no page is being
// written concurrently; pages rewritten since the walk began (their
// epoch is newer than the walk's passSeq) are skipped — the next pass
// covers them from the new committed root.
func scrubStep(store pager.Store, w *scrubWalk, budget int) scrubResult {
	var res scrubResult
	pr, ok := store.(scrubPageReader)
	aux, ok2 := store.(auxStore)
	if !ok || !ok2 {
		res.err = errScrubUnsupported
		return res
	}
	if !w.active {
		meta, _, err := decodeMeta(aux.Aux())
		if err != nil {
			res.corruptions++
			res.lastErr = fmt.Errorf("scrub: committed metadata: %w", err)
			res.unitDone = true
			return res
		}
		w.active = true
		w.passSeq = pr.CommittedSeq()
		w.cfg = meta.Config
		w.queue = w.queue[:0]
		w.seen = make(map[pager.PageID]struct{})
		if meta.Root != pager.InvalidPage {
			w.queue = append(w.queue, meta.Root)
		}
	}
	buf := make([]byte, pager.PageSize)
	for res.pages < budget && len(w.queue) > 0 {
		id := w.queue[len(w.queue)-1]
		w.queue = w.queue[:len(w.queue)-1]
		if _, dup := w.seen[id]; dup {
			// A stale pointer can alias pages already visited; the seen
			// set keeps cycles from walking forever.
			continue
		}
		w.seen[id] = struct{}{}
		res.pages++
		if uint32(id) >= uint32(store.NumPages()) {
			res.corruptions++
			res.lastErr = fmt.Errorf("%w: scrub: child pointer %d beyond allocated pages (%d)", ErrCorrupt, id, store.NumPages())
			continue
		}
		epoch, err := pr.ReadPageEpoch(id, buf)
		if err != nil {
			res.corruptions++
			res.lastErr = fmt.Errorf("%w: scrub: page %d: %w", ErrCorrupt, id, err)
			continue
		}
		seq := pr.CommittedSeq()
		if epoch > seq+1 {
			// Nothing live can carry an epoch from the future; a torn
			// flush overwrote committed state.
			res.corruptions++
			res.lastErr = fmt.Errorf("%w: scrub: page %d carries epoch %d newer than committed header %d", ErrCorrupt, id, epoch, seq)
			continue
		}
		if epoch > w.passSeq {
			// Rewritten since this walk began (a checkpoint or eviction
			// write-back between ticks); content and children belong to a
			// newer tree — the next pass verifies them from its root.
			continue
		}
		n, err := rtree.DecodePage(w.cfg, id, buf)
		if err != nil {
			res.corruptions++
			res.lastErr = fmt.Errorf("%w: scrub: page %d: %w", ErrCorrupt, id, err)
			continue
		}
		if !n.Leaf() {
			for _, c := range n.Children {
				w.queue = append(w.queue, c.ID)
			}
		}
	}
	if len(w.queue) == 0 {
		w.active = false
		res.unitDone = true
	}
	return res
}

// ---------------------------------------------------------------------
// DB: the single-tree maintainable.

func (db *DB) maintHealth() *degradeState { return &db.health }

func (db *DB) maintLogs() []maintLogStat {
	if db.wal == nil {
		return nil
	}
	return []maintLogStat{{liveBytes: db.wal.LiveBytes(), lag: db.wal.CheckpointLag()}}
}

func (db *DB) maintCheckpoint([]int) error { return db.Sync() }

func (db *DB) maintRepair() error {
	if db.wal != nil {
		if err := db.wal.RetrySync(); err != nil {
			return fmt.Errorf("dynq: probe retry sync: %w", err)
		}
	}
	if v, ok := db.store.(interface{ VerifyHeader() error }); ok {
		if err := v.VerifyHeader(); err != nil {
			return fmt.Errorf("dynq: probe header check: %w", err)
		}
	}
	return nil
}

// maintApply runs a batch through the ungated write path (the probe
// writes while the database is degraded).
func (db *DB) maintApply(ctx context.Context, ups []MotionUpdate, opts WriteOptions) error {
	ws := beginWriteSpan(ctx)
	err := db.applyUpdates(ctx, ups, opts, &ws, false)
	ws.finish(len(ups), err)
	return err
}

func (db *DB) maintProbe() error {
	ctx := context.Background()
	pt := make([]float64, db.Dims())
	ins := []MotionUpdate{{ID: maintProbeID, Segment: Segment{From: pt, To: pt}}}
	del := []MotionUpdate{{ID: maintProbeID, Delete: true}}
	// Clear a probe segment a previously half-failed probe left behind.
	if err := db.maintApply(ctx, del, WriteOptions{}); err != nil && !errors.Is(err, ErrNotFound) {
		return err
	}
	opts := WriteOptions{}
	if db.wal != nil {
		opts.Durability = DurabilitySync
	}
	if err := db.maintApply(ctx, ins, opts); err != nil {
		return err
	}
	if err := db.maintApply(ctx, del, WriteOptions{}); err != nil {
		return err
	}
	// Prove the checkpoint path too: degradations caused by a failed
	// Sync must not heal while Sync still fails — and the checkpoint
	// truncates the probe records out of the log.
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.syncLocked()
}

func (db *DB) maintScrub(s *scrubState, budget int) scrubResult {
	db.mu.Lock()
	defer db.mu.Unlock()
	res := scrubStep(db.store, &s.walk, budget)
	res.passDone = res.unitDone
	return res
}

// MaintenanceTelemetry returns the self-healing loop's snapshot; ok is
// false when no maintenance loop is running.
func (db *DB) MaintenanceTelemetry() (obs.MaintenanceTelemetry, bool) {
	if db.maint == nil {
		return obs.MaintenanceTelemetry{}, false
	}
	return db.maint.telemetry(), true
}

// RegisterMaintenanceMetrics exposes the maintenance loop's counters in
// a metric registry, reporting whether a loop was running to register.
func (db *DB) RegisterMaintenanceMetrics(reg *obs.Registry) bool {
	if db.maint == nil {
		return false
	}
	db.maint.registerMetrics(reg)
	return true
}

// ---------------------------------------------------------------------
// ShardedDB: the sharded maintainable.

func (db *ShardedDB) maintHealth() *degradeState { return &db.health }

func (db *ShardedDB) maintLogs() []maintLogStat {
	if db.wals == nil {
		return nil
	}
	out := make([]maintLogStat, len(db.wals))
	for i, w := range db.wals {
		out[i] = maintLogStat{liveBytes: w.LiveBytes(), lag: w.CheckpointLag()}
	}
	return out
}

// maintCheckpoint checkpoints only the listed shards (already worst
// pressure first), paying for the lagging logs instead of all of them.
func (db *ShardedDB) maintCheckpoint(idx []int) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.health.gate(); err != nil {
		return err
	}
	for _, i := range idx {
		if _, err := db.syncShardLocked(i); err != nil {
			return err
		}
	}
	return db.health.note(nil)
}

func (db *ShardedDB) maintRepair() error {
	for i, w := range db.wals {
		if err := w.RetrySync(); err != nil {
			return fmt.Errorf("dynq: probe retry sync (shard %d): %w", i, err)
		}
	}
	for i := 0; i < db.engine.Shards(); i++ {
		if v, ok := db.engine.Shard(i).Store().(interface{ VerifyHeader() error }); ok {
			if err := v.VerifyHeader(); err != nil {
				return fmt.Errorf("dynq: probe header check (shard %d): %w", i, err)
			}
		}
	}
	return nil
}

func (db *ShardedDB) maintApply(ctx context.Context, ups []MotionUpdate, opts WriteOptions) error {
	ws := beginWriteSpan(ctx)
	err := db.applyUpdates(ctx, ups, opts, &ws, false)
	ws.finish(len(ups), err)
	return err
}

func (db *ShardedDB) maintProbe() error {
	ctx := context.Background()
	pt := make([]float64, db.dims)
	ins := []MotionUpdate{{ID: maintProbeID, Segment: Segment{From: pt, To: pt}}}
	del := []MotionUpdate{{ID: maintProbeID, Delete: true}}
	if err := db.maintApply(ctx, del, WriteOptions{}); err != nil && !errors.Is(err, ErrNotFound) {
		return err
	}
	opts := WriteOptions{}
	if db.wals != nil {
		opts.Durability = DurabilitySync
	}
	if err := db.maintApply(ctx, ins, opts); err != nil {
		return err
	}
	if err := db.maintApply(ctx, del, WriteOptions{}); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.syncLocked()
}

func (db *ShardedDB) maintScrub(s *scrubState, budget int) scrubResult {
	db.mu.Lock()
	defer db.mu.Unlock()
	var total scrubResult
	for budget > 0 {
		r := scrubStep(db.engine.Shard(s.unit).Store(), &s.walk, budget)
		total.add(r)
		if r.err != nil {
			total.err = r.err
			return total
		}
		budget -= r.pages
		if !r.unitDone {
			break
		}
		s.unit++
		s.walk = scrubWalk{}
		if s.unit >= db.engine.Shards() {
			s.unit = 0
			total.passDone = true
			break
		}
	}
	return total
}

// MaintenanceTelemetry returns the self-healing loop's snapshot; ok is
// false when no maintenance loop is running.
func (db *ShardedDB) MaintenanceTelemetry() (obs.MaintenanceTelemetry, bool) {
	if db.maint == nil {
		return obs.MaintenanceTelemetry{}, false
	}
	return db.maint.telemetry(), true
}

// RegisterMaintenanceMetrics exposes the maintenance loop's counters in
// a metric registry, reporting whether a loop was running to register.
func (db *ShardedDB) RegisterMaintenanceMetrics(reg *obs.Registry) bool {
	if db.maint == nil {
		return false
	}
	db.maint.registerMetrics(reg)
	return true
}

// Compile-time checks.
var (
	_ maintainable = (*DB)(nil)
	_ maintainable = (*ShardedDB)(nil)
)
