// Command dqbench regenerates the evaluation figures of "Dynamic Queries
// over Mobile Objects" (EDBT 2002), printing one table per figure:
// per-query disk accesses (split leaf/internal) or distance computations,
// for the first snapshot query and averaged over subsequent snapshot
// queries, across the paper's overlap and query-range sweeps.
//
// Usage:
//
//	dqbench [-fig N] [-scale F] [-trajectories N] [-seed N] [-csv] [-mixed] [-hist] [-shards N]
//	        [-concurrency N] [-json FILE] [-compare FILE] [-compare-threshold F] [-compare-warn]
//	        [-log-level L] [-log-format F]
//
//	-fig 0            regenerate all figures (6-13); or a single figure
//	-scale 0.2        object population scale (1.0 = the paper's 5000
//	                  objects / ~500k segments)
//	-trajectories 20  dynamic queries averaged per cell (paper: 1000)
//	-seed 1           workload RNG seed
//	-csv              machine-readable output for plotting
//	-mixed            also run the mixed static+mobile NPDQ experiment
//	-hist             report per-frame wall-time percentiles per figure
//	-concurrency 8    also run the 1-vs-N concurrent netq client comparison
//	-ingest           also run the serial-Insert vs batched-ApplyUpdates
//	                  ingest throughput comparison (memory and WAL engines)
//	-shards 4         also run the 1-vs-N sharded engine comparison
//	-faults 200       crash/reopen fault-injection soak instead of benchmarks
//	-wal              with -faults: tear the WAL tail instead of the page
//	                  file and assert exact replay of acknowledged writes
//	-chaos            with -faults -wal: interleave disk-full episodes and
//	                  the self-healing maintenance loop with the crashes
//	-json FILE        write a versioned machine-readable report (BENCH_*.json)
//	-compare FILE     check this run against a baseline report; exits 3 on
//	                  regression unless -compare-warn is set
//	-log-level info   diagnostic log level: debug, info, warn, error
//	-log-format text  diagnostic log format: text or json
//
// SIGINT/SIGTERM finishes the current figure and exits cleanly; a second
// signal forces exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"dynq"
	"dynq/internal/bench"
	"dynq/internal/bench/compare"
	"dynq/internal/obs"
	"dynq/internal/stats"
)

func main() {
	var (
		fig          = flag.Int("fig", 0, "figure to regenerate (6-13), 0 = all")
		scale        = flag.Float64("scale", 0.2, "object population scale (1.0 = paper)")
		trajectories = flag.Int("trajectories", 20, "dynamic queries per cell (paper: 1000)")
		seed         = flag.Int64("seed", 1, "workload RNG seed")
		mixed        = flag.Bool("mixed", false, "also run the mixed static+mobile NPDQ experiment")
		csvOut       = flag.Bool("csv", false, "emit machine-readable CSV instead of tables")
		hist         = flag.Bool("hist", false, "report per-frame wall-time percentiles (p50/p95/p99) per figure")
		shards       = flag.Int("shards", 0, "also run the 1-vs-N sharded engine comparison with N shards")
		workers      = flag.Int("workers", 0, "worker-pool bound for -shards (0 = GOMAXPROCS)")
		concurrency  = flag.Int("concurrency", 0, "also run the 1-vs-N concurrent netq client comparison with N clients")
		ingest       = flag.Bool("ingest", false, "also run the serial-Insert vs batched-ApplyUpdates ingest throughput comparison")
		faults       = flag.Int("faults", 0, "run N crash/reopen fault-injection soak cycles instead of benchmarks")
		faultSeed    = flag.Int64("fault-seed", 1, "deterministic seed for the -faults soak (workload + fault schedule)")
		walSoak      = flag.Bool("wal", false, "with -faults: tear the write-ahead log instead of the page file (crash mid-record and mid-group-commit, assert exact replay)")
		chaos        = flag.Bool("chaos", false, "with -faults -wal: interleave disk-full episodes and self-healing maintenance (auto-checkpoint, recovery probe, scrub) with the crash cycles")

		jsonOut          = flag.String("json", "", "write a machine-readable benchmark report (BENCH_*.json) to this file")
		comparePath      = flag.String("compare", "", "baseline BENCH_*.json to check this run against")
		compareThreshold = flag.Float64("compare-threshold", compare.DefaultThreshold, "relative cost increase -compare flags as a regression")
		compareWarn      = flag.Bool("compare-warn", false, "report -compare regressions without failing the run")
		latThreshold     = flag.Float64("compare-latency", 0, "also compare p95 frame latency at this threshold (0 = skip; needs comparable hardware)")

		logLevel  = flag.String("log-level", "info", "diagnostic log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "diagnostic log format: text or json")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dqbench:", err)
		os.Exit(2)
	}
	fatal := func(err error) {
		logger.Error("dqbench failed", "err", err)
		os.Exit(1)
	}

	// Shut down cleanly on SIGINT/SIGTERM: finish the figure in flight,
	// skip the rest. A second signal forces exit.
	var interrupted atomic.Bool
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		logger.Warn("interrupted, finishing current figure (^C again to force)")
		interrupted.Store(true)
		<-sig
		logger.Error("forced exit")
		os.Exit(130)
	}()

	if *faults > 0 && *walSoak && *chaos {
		// Chaos soak mode: WAL crash cycles interleaved with disk-full
		// episodes (sticky and transient, on the log and the page store),
		// with the self-healing maintenance loop — auto-checkpoint,
		// degraded-mode recovery probe, background scrub — driven under an
		// injected clock. Exits non-zero on any lost acknowledged batch,
		// wrong answer, unbounded log, untyped fault error, scrub false
		// positive, or an episode that fails to heal.
		logger.Info("chaos soak starting", "cycles", *faults, "seed", *faultSeed)
		rep, err := dynq.ChaosSoak(dynq.ChaosSoakOptions{
			Cycles: *faults,
			Seed:   *faultSeed,
			Log: func(format string, args ...any) {
				logger.Info(fmt.Sprintf(format, args...))
			},
		})
		if err != nil {
			fatal(fmt.Errorf("chaos soak harness: %w (partial report: %s)", err, rep))
		}
		fmt.Println(rep)
		if rep.LostAcked != 0 || rep.WrongAnswers != 0 || rep.WALBoundViolations != 0 ||
			rep.UntypedWriteErrors != 0 || rep.ScrubCorruptions != 0 || rep.Heals < rep.Degradations {
			fatal(fmt.Errorf("chaos soak invariant violation: %d lost acked, %d wrong answers, %d wal bound violations, %d untyped errors, %d scrub corruptions, %d/%d episodes healed",
				rep.LostAcked, rep.WrongAnswers, rep.WALBoundViolations,
				rep.UntypedWriteErrors, rep.ScrubCorruptions, rep.Heals, rep.Degradations))
		}
		logger.Info("chaos soak passed", "cycles", rep.Cycles,
			"disk_full_episodes", rep.DiskFullEpisodes, "transients", rep.TransientFaults,
			"heals", rep.Heals, "auto_checkpoints", rep.AutoCheckpoints,
			"scrub_passes", rep.ScrubPasses, "torn_tails", rep.TornTails)
		return
	}
	if *faults > 0 && *walSoak {
		// WAL soak mode: crash/reopen cycles that tear the write-ahead
		// log's unsynced tail (mid-record, mid-group-commit), asserting
		// that replay restores every acknowledged write exactly. With
		// -shards N the soak runs against the sharded engine — one log
		// per shard, each crash tearing a random subset of them. Exits
		// non-zero on any lost acknowledged batch or wrong answer.
		logger.Info("wal soak starting", "cycles", *faults, "seed", *faultSeed, "shards", *shards)
		rep, err := dynq.WALSoak(dynq.WALSoakOptions{
			Cycles: *faults,
			Seed:   *faultSeed,
			Shards: *shards,
			Log: func(format string, args ...any) {
				logger.Info(fmt.Sprintf(format, args...))
			},
		})
		if err != nil {
			fatal(fmt.Errorf("wal soak harness: %w (partial report: %s)", err, rep))
		}
		fmt.Println(rep)
		if rep.LostAcked != 0 || rep.WrongAnswers != 0 {
			fatal(fmt.Errorf("wal soak lost %d acknowledged batches, %d wrong answers — durability violation",
				rep.LostAcked, rep.WrongAnswers))
		}
		logger.Info("wal soak passed", "cycles", rep.Cycles, "tears", rep.Tears,
			"torn_tails", rep.TornTails, "records_replayed", rep.RecordsReplayed)
		return
	}
	if *faults > 0 {
		// Fault soak mode: crash/reopen cycles under injected storage
		// faults, asserting zero silent corruption. Exits non-zero on any
		// wrong answer.
		logger.Info("fault soak starting", "cycles", *faults, "seed", *faultSeed)
		rep, err := dynq.FaultSoak(dynq.SoakOptions{
			Cycles: *faults,
			Seed:   *faultSeed,
			Log: func(format string, args ...any) {
				logger.Info(fmt.Sprintf(format, args...))
			},
		})
		if err != nil {
			fatal(fmt.Errorf("fault soak harness: %w (partial report: %s)", err, rep))
		}
		fmt.Println(rep)
		if rep.WrongAnswers != 0 {
			fatal(fmt.Errorf("fault soak found %d wrong answers — silent corruption", rep.WrongAnswers))
		}
		logger.Info("fault soak passed", "cycles", rep.Cycles,
			"clean_recoveries", rep.CleanRecoveries, "detected_corruptions", rep.DetectedCorruption)
		return
	}

	cfg := bench.Config{Scale: *scale, Trajectories: *trajectories, Seed: *seed}
	telemetry := *jsonOut != "" || *comparePath != ""
	// The latency hook feeds whichever histogram the current figure owns
	// (figures run sequentially, so a single indirection suffices). The
	// telemetry report wants per-figure percentiles too, so -json implies
	// collection even without -hist.
	var curHist *obs.Histogram
	if *hist || telemetry {
		cfg.Latency = func(d time.Duration) {
			if curHist != nil {
				curHist.ObserveDuration(d)
			}
		}
	}
	report := bench.NewReport(cfg)
	// finish writes the telemetry report and runs the baseline comparison;
	// every successful exit path goes through it so `-json`/`-compare`
	// work with `-mixed`/`-shards`-only runs and after an interrupt.
	finish := func() {
		if !telemetry {
			return
		}
		if *jsonOut != "" {
			if err := report.WriteFile(*jsonOut); err != nil {
				fatal(err)
			}
			logger.Info("wrote benchmark report", "path", *jsonOut,
				"schema_version", bench.ReportSchemaVersion, "figures", len(report.Figures))
		}
		if *comparePath != "" {
			baseline, err := bench.ReadReport(*comparePath)
			if err != nil {
				fatal(err)
			}
			res, err := compare.Compare(baseline, report, compare.Options{
				Threshold:        *compareThreshold,
				LatencyThreshold: *latThreshold,
			})
			if err != nil {
				fatal(err)
			}
			fmt.Fprintln(os.Stderr, res.Summary())
			if !res.OK() && !*compareWarn {
				logger.Error("benchmark regression against baseline",
					"baseline", *comparePath, "regressions", len(res.Regressions))
				os.Exit(3)
			}
		}
	}
	// Extra experiments run before the figures; with the default -fig 0
	// they replace the figure sweep entirely.
	extrasOnly := *fig == 0 && (*mixed || *shards > 0 || *concurrency > 0 || *ingest)
	if *mixed {
		if err := runMixed(cfg); err != nil {
			fatal(err)
		}
	}
	if *shards > 0 {
		if err := runShards(cfg, *shards, *workers, report); err != nil {
			fatal(err)
		}
	}
	if *concurrency > 0 {
		if err := runConcurrency(cfg, *concurrency, report); err != nil {
			fatal(err)
		}
	}
	if *ingest {
		if err := runIngest(cfg, *shards, report); err != nil {
			fatal(err)
		}
	}
	if extrasOnly {
		finish()
		return
	}
	var specs []bench.FigureSpec
	if *fig == 0 {
		specs = bench.Specs()
	} else {
		s, err := bench.SpecFor(bench.Figure(*fig))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		specs = []bench.FigureSpec{s}
	}

	// Indexes are shared across figures with the same temporal layout.
	var single, dual *bench.Index
	index := func(dualTime bool) (*bench.Index, error) {
		if dualTime {
			if dual == nil {
				var err error
				dual, err = bench.BuildIndex(cfg, true)
				return dual, err
			}
			return dual, nil
		}
		if single == nil {
			var err error
			single, err = bench.BuildIndex(cfg, false)
			return single, err
		}
		return single, nil
	}

	for _, spec := range specs {
		if interrupted.Load() {
			logger.Warn("skipping remaining figures", "from_fig", int(spec.Fig))
			break
		}
		start := time.Now()
		if *hist || telemetry {
			curHist = obs.NewHistogram(nil)
		}
		ix, err := index(spec.DualTime)
		if err != nil {
			fatal(err)
		}
		cells, err := bench.RunFigureOn(ix, spec)
		if err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)
		if *csvOut {
			printCSV(spec, cells)
		} else {
			printFigure(spec, cells, ix.Segments, elapsed)
		}
		if *hist && curHist.Count() > 0 {
			printHist(spec, curHist)
		}
		report.AddFigure(spec, cells, ix.Segments, elapsed, bench.LatencyFromHistogram(curHist))
	}
	finish()
}

// printHist reports the figure's per-frame wall-time percentiles — the
// tail-latency complement to the paper's mean cost counters.
func printHist(spec bench.FigureSpec, h *obs.Histogram) {
	toDur := func(q float64) time.Duration {
		return time.Duration(h.Quantile(q) * float64(time.Second)).Round(100 * time.Nanosecond)
	}
	fmt.Printf("figure %d frame latency (n=%d): p50=%v p95=%v p99=%v mean=%v\n",
		spec.Fig, h.Count(), toDur(0.50), toDur(0.95), toDur(0.99),
		time.Duration(h.Sum()/float64(h.Count())*float64(time.Second)).Round(100*time.Nanosecond))
}

var csvHeaderDone bool

// printCSV emits one row per cell with both metrics, suitable for
// plotting the figures directly.
func printCSV(spec bench.FigureSpec, cells []bench.Cell) {
	if !csvHeaderDone {
		fmt.Println("figure,range,overlap,strategy," +
			"first_leaf_reads,first_internal_reads,first_reads,first_dist," +
			"subseq_leaf_reads,subseq_internal_reads,subseq_reads,subseq_dist")
		csvHeaderDone = true
	}
	for _, c := range cells {
		fmt.Printf("%d,%g,%g,%s,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			spec.Fig, c.Range, c.Overlap, c.Strategy,
			c.First.LeafReads, c.First.InternalReads, c.First.Reads(), c.First.DistanceComps,
			c.Subseq.LeafReads, c.Subseq.InternalReads, c.Subseq.Reads(), c.Subseq.DistanceComps)
	}
}

// runShards prints the sharded-engine comparison: the same snapshot and
// KNN workload on one tree vs an N-shard parallel engine. Speedup needs
// real cores; on one CPU the table shows the fan-out overhead instead.
func runShards(cfg bench.Config, shards, workers int, report *bench.Report) error {
	fmt.Printf("\n=== Sharded engine: 1 tree vs %d shards (snapshot sweep + KNN) ===\n", shards)
	cells, segments, err := bench.ShardExperiment(cfg, shards, workers)
	if err != nil {
		return err
	}
	report.AddShardCells(shards, cells)
	fmt.Printf("index: %d segments; workers=%d (0=GOMAXPROCS)\n", segments, workers)
	fmt.Printf("%-9s | %-8s | %-12s | %-12s | %s\n", "workload", "queries", "single", "sharded", "speedup")
	for _, c := range cells {
		name := fmt.Sprintf("range %g", c.Range)
		if c.Range == 0 {
			name = "knn k=10"
		}
		fmt.Printf("%-9s | %8d | %12v | %12v | %6.2fx\n",
			name, c.Queries, c.Single.Round(time.Microsecond), c.Sharded.Round(time.Microsecond), c.Speedup())
	}
	return nil
}

// runConcurrency prints the concurrent-read comparison: the same
// snapshot batch through one netq server with 1 vs N client goroutines.
// Every concurrent answer is checked against the serial in-process
// result, so the table is also a correctness run for the parallel read
// path. Speedup needs real cores.
func runConcurrency(cfg bench.Config, clients int, report *bench.Report) error {
	fmt.Printf("\n=== Concurrent reads: 1 vs %d netq clients (snapshot sweep) ===\n", clients)
	cells, segments, err := bench.ConcurrencyExperiment(cfg, clients)
	if err != nil {
		return err
	}
	report.AddConcurrencyCells(clients, cells)
	fmt.Printf("index: %d segments; server read gate = GOMAXPROCS\n", segments)
	fmt.Printf("%-8s | %-8s | %-12s | %-12s | %-8s | %-10s | %s\n",
		"clients", "queries", "wall", "qps", "speedup", "srv p50", "srv p99")
	var base time.Duration
	for _, c := range cells {
		if c.Clients == 1 {
			base = c.Wall
		}
	}
	for _, c := range cells {
		speedup := 0.0
		if c.Wall > 0 && base > 0 {
			speedup = float64(base) / float64(c.Wall)
		}
		fmt.Printf("%8d | %8d | %12v | %12.0f | %6.2fx | %10v | %v\n",
			c.Clients, c.Queries, c.Wall.Round(time.Microsecond), c.QPS(), speedup,
			time.Duration(c.WindowP50*float64(time.Second)).Round(time.Microsecond),
			time.Duration(c.WindowP99*float64(time.Second)).Round(time.Microsecond))
	}
	return nil
}

// runIngest prints the ingest-throughput comparison: the same motion
// update stream through a netq server as serial Insert round trips vs
// batched ApplyUpdates requests, against the in-memory engine and a
// WAL-armed file engine (group-commit durability). With -shards N it
// appends batched rows against a sharded database with one log per
// shard (mode "wal-Nsh"), compared to the same serial durable
// baseline. Each row's final segment count is checked against what was
// sent.
func runIngest(cfg bench.Config, shards int, report *bench.Report) error {
	fmt.Println("\n=== Ingest: serial Insert vs batched ApplyUpdates (netq, updates/sec) ===")
	cells, err := bench.IngestExperiment(cfg, []int{64, 256}, shards)
	if err != nil {
		return err
	}
	report.AddIngestCells(cells)
	fmt.Printf("%-10s | %-6s | %-8s | %-12s | %-12s | %-7s | %-10s | %s\n",
		"durability", "batch", "updates", "wall", "updates/s", "speedup", "op p99", "fsync p99")
	base := map[bool]float64{}
	for _, c := range cells {
		if c.Batch == 1 {
			base[c.WAL] = c.UPS()
		}
	}
	for _, c := range cells {
		mode := "memory"
		if c.WAL {
			mode = "wal"
		}
		if c.Maint {
			mode = "wal+maint"
		}
		if c.Shards > 1 {
			mode = fmt.Sprintf("wal-%dsh", c.Shards)
		}
		speedup := 0.0
		if b := base[c.WAL]; b > 0 {
			speedup = c.UPS() / b
		}
		fsync := "-"
		if c.FsyncP99 > 0 {
			fsync = time.Duration(c.FsyncP99 * float64(time.Second)).Round(time.Microsecond).String()
		}
		fmt.Printf("%-10s | %6d | %8d | %12v | %12.0f | %6.2fx | %10v | %s\n",
			mode, c.Batch, c.Updates, c.Wall.Round(time.Microsecond), c.UPS(), speedup,
			time.Duration(c.WindowP99*float64(time.Second)).Round(time.Microsecond), fsync)
	}
	return nil
}

// runMixed prints the situational-awareness-mix experiment: NPDQ over a
// population dominated by long-lived static objects.
func runMixed(cfg bench.Config) error {
	fmt.Println("\n=== Mixed workload: 200 vehicles + 30000 static landmarks (NPDQ, 8x8) ===")
	fmt.Printf("%-7s | %-12s | %-12s | %s\n", "overlap", "naive subseq", "npdq subseq", "saving")
	for _, ov := range []float64{0, 0.5, 0.8, 0.9, 0.9999} {
		naive, npdq, err := bench.MixedExperiment(cfg, 200, 30000, ov)
		if err != nil {
			return err
		}
		nv, dq := naive.Subseq.Reads(), npdq.Subseq.Reads()
		fmt.Printf("%-7.4g | %12.2f | %12.2f | %5.1f%%\n", ov, nv, dq, 100*(1-dq/nv))
	}
	return nil
}

func printFigure(spec bench.FigureSpec, cells []bench.Cell, segments int, elapsed time.Duration) {
	fmt.Printf("\n=== Figure %d: %s ===\n", spec.Fig, spec.Title)
	fmt.Printf("index: %d segments (dual-time=%v); %d cells in %v\n",
		segments, spec.DualTime, len(cells), elapsed.Round(time.Millisecond))
	switch spec.Metric {
	case "io":
		fmt.Printf("%-8s %-7s %-9s | %-28s | %-28s\n",
			"range", "overlap", "strategy", "first query (leaf+int=total)", "subsequent avg (leaf+int=total)")
		for _, c := range cells {
			fmt.Printf("%-8.0f %-7.4g %-9s | %8.2f +%8.2f =%9.2f | %8.2f +%8.2f =%9.2f\n",
				c.Range, c.Overlap, c.Strategy,
				c.First.LeafReads, c.First.InternalReads, c.First.Reads(),
				c.Subseq.LeafReads, c.Subseq.InternalReads, c.Subseq.Reads())
		}
		printFrameBudgets(cells)
	case "cpu":
		fmt.Printf("%-8s %-7s %-9s | %-16s | %-16s\n",
			"range", "overlap", "strategy", "first dist comps", "subsequent avg")
		for _, c := range cells {
			fmt.Printf("%-8.0f %-7.4g %-9s | %16.1f | %16.1f\n",
				c.Range, c.Overlap, c.Strategy,
				c.First.DistanceComps, c.Subseq.DistanceComps)
		}
	}
}

// printFrameBudgets reads the 90%-overlap row through the disk cost model:
// how many snapshot queries per second each strategy would sustain on
// era-appropriate and modern hardware (the renderer needs 15-30 per
// second, Section 4).
func printFrameBudgets(cells []bench.Cell) {
	models := []stats.DiskModel{stats.HDD2002(), stats.NVMe2020()}
	printed := false
	for _, c := range cells {
		if c.Overlap != 0.9 {
			continue
		}
		if !printed {
			fmt.Printf("frame budget at 90%% overlap (subsequent queries, modeled):\n")
			printed = true
		}
		fmt.Printf("  %-6s range %-3.0f", c.Strategy, c.Range)
		for _, m := range models {
			fmt.Printf("  %s: %8.0f queries/s", m.Name, m.FrameBudget(c.Subseq))
		}
		fmt.Println()
	}
}
