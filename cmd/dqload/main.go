// Command dqload builds a persistent dynq database file from the paper's
// synthetic mobile-object workload or a CSV motion trace, inspects an
// existing database, or exports a synthetic trace for other tools.
//
// Usage:
//
//	dqload -out db.dynq [-scale F] [-seed N] [-dual]    build from the synthetic workload
//	dqload -out db.dynq -import trace.csv [-dual]       build from a CSV trace
//	dqload -export trace.csv [-scale F] [-seed N]       write the synthetic trace as CSV
//	dqload -stats db.dynq                               validate + inspect a database
//
// The trace format is one motion segment per line:
// id,t0,t1,x0,y0,x1,y1.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dynq"
	"dynq/internal/motion"
	"dynq/internal/rtree"
	"dynq/internal/workload"
)

func main() {
	var (
		out   = flag.String("out", "", "path of the database file to create")
		stat  = flag.String("stats", "", "path of an existing database to inspect")
		scale = flag.Float64("scale", 1.0, "object population scale (1.0 = paper's 5000 objects)")
		seed  = flag.Int64("seed", 1, "workload RNG seed")
		dual  = flag.Bool("dual", false, "use the dual-temporal-axes layout (for NPDQ workloads)")
		imp   = flag.String("import", "", "CSV motion trace to load instead of the synthetic workload")
		exp   = flag.String("export", "", "write the synthetic workload as a CSV trace and exit")
	)
	flag.Parse()

	var err error
	switch {
	case *stat != "":
		err = inspect(*stat)
	case *exp != "":
		err = export(*exp, *scale, *seed)
	case *out != "" && *imp != "":
		err = buildFromTrace(*out, *imp, *dual)
	case *out != "":
		err = build(*out, *scale, *seed, *dual)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// export writes the synthetic workload as a CSV trace.
func export(path string, scale float64, seed int64) error {
	segs, err := generate(scale, seed)
	if err != nil {
		return err
	}
	entries := make([]rtree.LeafEntry, len(segs))
	for i, s := range segs {
		entries[i] = rtree.LeafEntry{ID: rtree.ObjectID(s.ObjID), Seg: s.Seg}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := workload.WriteTrace(f, 2, entries); err != nil {
		return err
	}
	fmt.Printf("exported %d segments to %s\n", len(entries), path)
	return nil
}

// buildFromTrace loads a CSV motion trace into a new database file.
func buildFromTrace(out, tracePath string, dual bool) error {
	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	entries, err := workload.ReadTrace(f, 2)
	if err != nil {
		return err
	}
	fmt.Printf("read %d segments from %s\n", len(entries), tracePath)
	db, err := dynq.Open(dynq.Options{Path: out, DualTimeAxes: dual})
	if err != nil {
		return err
	}
	defer db.Close()
	updates := make([]dynq.MotionUpdate, len(entries))
	for i, e := range entries {
		updates[i] = dynq.MotionUpdate{ID: uint64(e.ID), Segment: dynq.Segment{
			T0: e.Seg.T.Lo, T1: e.Seg.T.Hi,
			From: e.Seg.Start, To: e.Seg.End,
		}}
	}
	start := time.Now()
	if err := db.BulkLoadUpdates(updates); err != nil {
		return err
	}
	if err := db.Sync(); err != nil {
		return err
	}
	fmt.Printf("bulk-loaded and synced %s in %v\n", out, time.Since(start).Round(time.Millisecond))
	return printStats(db)
}

// generate produces the paper's synthetic workload at the given scale.
func generate(scale float64, seed int64) ([]motion.TimedSegment, error) {
	sim := motion.PaperConfig()
	sim.Objects = int(float64(sim.Objects) * scale)
	if sim.Objects < 1 {
		sim.Objects = 1
	}
	sim.Seed = seed
	return motion.GenerateSegments(sim)
}

func build(path string, scale float64, seed int64, dual bool) error {
	start := time.Now()
	segs, err := generate(scale, seed)
	if err != nil {
		return err
	}
	fmt.Printf("generated %d motion segments in %v\n", len(segs), time.Since(start).Round(time.Millisecond))

	db, err := dynq.Open(dynq.Options{Path: path, DualTimeAxes: dual})
	if err != nil {
		return err
	}
	defer db.Close()

	updates := make([]dynq.MotionUpdate, len(segs))
	for i, s := range segs {
		updates[i] = dynq.MotionUpdate{ID: s.ObjID, Segment: dynq.Segment{
			T0: s.Seg.T.Lo, T1: s.Seg.T.Hi,
			From: s.Seg.Start, To: s.Seg.End,
		}}
	}
	start = time.Now()
	if err := db.BulkLoadUpdates(updates); err != nil {
		return err
	}
	if err := db.Sync(); err != nil {
		return err
	}
	fmt.Printf("bulk-loaded and synced %s in %v\n", path, time.Since(start).Round(time.Millisecond))
	return printStats(db)
}

func inspect(path string) error {
	db, rep, err := dynq.OpenFileRecover(path)
	if err != nil {
		return err
	}
	defer db.Close()
	fmt.Printf("recovery:        %s\n", rep)
	if info, ok := db.WALInfo(); ok {
		fmt.Printf("wal:             %s (epoch %d, %s)\n", info.Path, info.Epoch, sizeofBytes(info.Size))
		fmt.Printf("  lsn:           last %d, durable %d, checkpoint %d\n",
			info.LastLSN, info.DurableLSN, info.CheckpointLSN)
		fmt.Printf("  live:          %d records (%d bytes) since last checkpoint\n",
			info.LiveRecords, info.LiveBytes)
	}
	if err := db.Validate(); err != nil {
		return fmt.Errorf("index validation FAILED: %w", err)
	}
	fmt.Println("index validation OK")
	return printStats(db)
}

// sizeofBytes renders a byte count compactly for the inspect report.
func sizeofBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

func printStats(db *dynq.DB) error {
	st, err := db.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("segments:        %d\n", st.Segments)
	fmt.Printf("height:          %d levels\n", st.Height)
	fmt.Printf("leaf nodes:      %d (fanout %d, avg fill %.2f)\n", st.LeafNodes, st.LeafFanout, st.AvgLeafFill)
	fmt.Printf("internal nodes:  %d (fanout %d, avg fill %.2f)\n", st.InternalNodes, st.IntFanout, st.AvgIntFill)
	return nil
}
