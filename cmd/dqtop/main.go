// Command dqtop renders a live terminal view of one or more dqserver
// instances, polled over the netq telemetry op (no HTTP endpoint
// needed): per-op rolling-window and cumulative latency percentiles,
// SLO attainment and error-budget burn, runtime health, and recent
// operational events.
//
// The telemetry op bypasses the server's read admission control, so
// dqtop keeps reporting while a server is shedding query load — which
// is exactly when its numbers matter.
//
// Usage:
//
//	dqtop [-refresh 2s] [-once] [-probe] [-events 5] addr [addr...]
//
// -once prints a single snapshot and exits (for scripts and CI
// artifacts); -probe issues one stats query per refresh against each
// server so an otherwise idle server still shows live windows.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"dynq/netq"
)

func main() {
	var (
		refresh = flag.Duration("refresh", 2*time.Second, "poll and redraw interval")
		once    = flag.Bool("once", false, "print one snapshot and exit")
		probe   = flag.Bool("probe", false, "issue a stats query per refresh so idle servers show live windows")
		events  = flag.Int("events", 5, "recent journal events to show per server")
	)
	flag.Parse()
	addrs := flag.Args()
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: dqtop [-refresh 2s] [-once] [-probe] [-events 5] addr [addr...]")
		os.Exit(2)
	}

	clients := make(map[string]*netq.Client, len(addrs))
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	for {
		var out strings.Builder
		if !*once {
			out.WriteString("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		fmt.Fprintf(&out, "dqtop  %s  %d server(s)  refresh %v\n",
			time.Now().Format("15:04:05"), len(addrs), *refresh)
		for _, addr := range addrs {
			tel, err := poll(clients, addr, *probe)
			if err != nil {
				fmt.Fprintf(&out, "\n── %s ", addr)
				out.WriteString(strings.Repeat("─", max(1, 64-len(addr))))
				fmt.Fprintf(&out, "\n  unreachable: %v\n", err)
				continue
			}
			render(&out, addr, tel, *events)
		}
		os.Stdout.WriteString(out.String())
		if *once {
			return
		}
		time.Sleep(*refresh)
	}
}

// poll fetches one server's telemetry, dialing (or redialing) lazily so
// a server that restarts mid-session comes back on the next refresh.
func poll(clients map[string]*netq.Client, addr string, probe bool) (netq.Telemetry, error) {
	c := clients[addr]
	if c == nil {
		var err error
		c, err = netq.DialWithOptions(addr, netq.DialOptions{Reconnect: true})
		if err != nil {
			return netq.Telemetry{}, err
		}
		clients[addr] = c
	}
	if probe {
		// Deliberately before the snapshot so the probe's own latency
		// lands in the windows dqtop is about to display.
		if _, err := c.Stats(); err != nil {
			c.Close()
			delete(clients, addr)
			return netq.Telemetry{}, err
		}
	}
	tel, err := c.Telemetry()
	if err != nil {
		c.Close()
		delete(clients, addr)
		return netq.Telemetry{}, err
	}
	return tel, nil
}

func render(out *strings.Builder, addr string, tel netq.Telemetry, eventLimit int) {
	fmt.Fprintf(out, "\n── %s ", addr)
	out.WriteString(strings.Repeat("─", max(1, 64-len(addr))))
	out.WriteByte('\n')

	state := "healthy"
	if tel.Degraded {
		state = "DEGRADED (read-only)"
	}
	fmt.Fprintf(out, "  up %s  %s  conns %d  inflight %d  queued %d  slow %d (>%v)  events %d\n",
		time.Duration(tel.UptimeSeconds*float64(time.Second)).Round(time.Second),
		state, tel.ActiveConns, tel.InflightOps, tel.ReadQueueDepth,
		tel.SlowCaptured, tel.SlowThreshold, tel.EventsTotal)
	if r := tel.Runtime; r != nil {
		fmt.Fprintf(out, "  goroutines %d  heap %s  gc %d (last pause %v)",
			r.Goroutines, sizeof(r.HeapAllocBytes), r.NumGC, r.LastGCPause.Round(time.Microsecond))
		if v, ok := r.Extra["buffer_frames"]; ok {
			fmt.Fprintf(out, "  buffer %d frames", int(v))
		}
		out.WriteByte('\n')
	}

	if len(tel.Ops) > 0 {
		tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprint(tw, "  op\tcount\terr\tp50\tp99\t")
		for _, w := range tel.Ops[0].Windows {
			fmt.Fprintf(tw, "p99/%v\t", w.Window)
		}
		fmt.Fprintln(tw)
		for _, op := range tel.Ops {
			fmt.Fprintf(tw, "  %s\t%d\t%d\t%s\t%s\t", op.Op, op.Count, op.Errors, ms(op.P50), ms(op.P99))
			for _, w := range op.Windows {
				if w.Count == 0 {
					fmt.Fprint(tw, "-\t")
				} else {
					fmt.Fprintf(tw, "%s\t", ms(w.P99))
				}
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}

	for _, slo := range tel.SLOs {
		status := "ok"
		if !slo.Met {
			status = "VIOLATED"
		}
		fmt.Fprintf(out, "  slo %-14s %s  avail %.4f (burn %.1f)  <%v %.4f (burn %.1f)  n=%d\n",
			slo.Op, status,
			slo.Availability, slo.AvailabilityBurn,
			time.Duration(slo.LatencyTargetSeconds*float64(time.Second)), slo.LatencyAttainment, slo.LatencyBurn,
			slo.Total)
	}

	for i, ev := range tel.Events {
		if i >= eventLimit {
			fmt.Fprintf(out, "  … %d more events\n", len(tel.Events)-i)
			break
		}
		fmt.Fprintf(out, "  [%s] %s %s: %s\n",
			ev.Time.Format("15:04:05"), ev.Severity, ev.Type, ev.Message)
	}
}

// ms renders a latency in seconds as a compact duration string.
func ms(seconds float64) string {
	return time.Duration(seconds * float64(time.Second)).Round(time.Microsecond).String()
}

func sizeof(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
