// Command dqtop renders a live terminal view of one or more dqserver
// instances, polled over the netq telemetry op (no HTTP endpoint
// needed): per-op rolling-window and cumulative latency percentiles,
// SLO attainment and error-budget burn, runtime health, recent
// operational events, and — when the server has a WAL armed — an ingest
// panel (appends/s, bytes/s, fsync p50/p99, coalesce ratio, batch size,
// checkpoint lag, log size). A server running the self-healing
// maintenance loop adds a maint panel (auto-checkpoints, WAL pressure,
// scrub progress, probe/heal counts), and a degraded server gets a
// prominent banner with the age of the current read-only episode.
//
// The telemetry op bypasses the server's read admission control, so
// dqtop keeps reporting while a server is shedding query load — which
// is exactly when its numbers matter.
//
// Usage:
//
//	dqtop [-refresh 2s] [-once] [-probe] [-write-probe] [-events 5] addr [addr...]
//
// -once prints a single snapshot and exits (for scripts and CI
// artifacts); -probe issues one stats query per refresh against each
// server so an otherwise idle server still shows live windows;
// -write-probe additionally sends a small self-canceling write batch per
// refresh, exercising the full durable write path (WAL append, group
// commit, tree apply) so the ingest panel shows live fsync windows.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"dynq"
	"dynq/internal/obs"
	"dynq/netq"
)

func main() {
	var (
		refresh    = flag.Duration("refresh", 2*time.Second, "poll and redraw interval")
		once       = flag.Bool("once", false, "print one snapshot and exit")
		probe      = flag.Bool("probe", false, "issue a stats query per refresh so idle servers show live windows")
		writeProbe = flag.Bool("write-probe", false, "send a self-canceling write batch per refresh so the ingest panel shows live windows")
		events     = flag.Int("events", 5, "recent journal events to show per server")
	)
	flag.Parse()
	addrs := flag.Args()
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: dqtop [-refresh 2s] [-once] [-probe] [-write-probe] [-events 5] addr [addr...]")
		os.Exit(2)
	}

	clients := make(map[string]*netq.Client, len(addrs))
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	for {
		var out strings.Builder
		if !*once {
			out.WriteString("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		fmt.Fprintf(&out, "dqtop  %s  %d server(s)  refresh %v\n",
			time.Now().Format("15:04:05"), len(addrs), *refresh)
		for _, addr := range addrs {
			tel, err := poll(clients, addr, *probe, *writeProbe)
			if err != nil {
				fmt.Fprintf(&out, "\n── %s ", addr)
				out.WriteString(strings.Repeat("─", max(1, 64-len(addr))))
				fmt.Fprintf(&out, "\n  unreachable: %v\n", err)
				continue
			}
			render(&out, addr, tel, *events)
		}
		os.Stdout.WriteString(out.String())
		if *once {
			return
		}
		time.Sleep(*refresh)
	}
}

// poll fetches one server's telemetry, dialing (or redialing) lazily so
// a server that restarts mid-session comes back on the next refresh.
func poll(clients map[string]*netq.Client, addr string, probe, writeProbe bool) (netq.Telemetry, error) {
	c := clients[addr]
	if c == nil {
		var err error
		c, err = netq.DialWithOptions(addr, netq.DialOptions{Reconnect: true})
		if err != nil {
			return netq.Telemetry{}, err
		}
		clients[addr] = c
	}
	if probe {
		// Deliberately before the snapshot so the probe's own latency
		// lands in the windows dqtop is about to display.
		if _, err := c.Stats(); err != nil {
			c.Close()
			delete(clients, addr)
			return netq.Telemetry{}, err
		}
	}
	if writeProbe {
		// A server-side rejection (degraded read-only mode, a dims
		// mismatch) is the server's answer, not a transport failure:
		// keep polling, and let the per-op error counts show it.
		writeProbeBatch(c)
	}
	tel, err := c.Telemetry()
	if err != nil {
		c.Close()
		delete(clients, addr)
		return netq.Telemetry{}, err
	}
	return tel, nil
}

// writeProbeBatch sends the -write-probe payload: paired insert+delete
// updates for a reserved id range, applied in one batch. The deletes
// consume the batch's own inserts, so the index is logically unchanged
// while the write still runs the full durable path — one WAL record,
// one group-commit wait, real tree churn.
func writeProbeBatch(c *netq.Client) error {
	const n = 8
	const probeBase = uint64(1) << 60
	ups := make([]dynq.MotionUpdate, 0, 2*n)
	for i := uint64(0); i < n; i++ {
		ups = append(ups, dynq.MotionUpdate{ID: probeBase + i, Segment: dynq.Segment{
			T0: 0, T1: 1, From: []float64{0, 0}, To: []float64{1, 1},
		}})
	}
	for i := uint64(0); i < n; i++ {
		ups = append(ups, dynq.MotionUpdate{ID: probeBase + i, Segment: dynq.Segment{T0: 0}, Delete: true})
	}
	return c.ApplyUpdates(ups)
}

func render(out *strings.Builder, addr string, tel netq.Telemetry, eventLimit int) {
	fmt.Fprintf(out, "\n── %s ", addr)
	out.WriteString(strings.Repeat("─", max(1, 64-len(addr))))
	out.WriteByte('\n')

	state := "healthy"
	if tel.Degraded {
		state = "DEGRADED (read-only)"
	}
	fmt.Fprintf(out, "  up %s  %s  conns %d  inflight %d  queued %d  slow %d (>%v)  events %d\n",
		time.Duration(tel.UptimeSeconds*float64(time.Second)).Round(time.Second),
		state, tel.ActiveConns, tel.InflightOps, tel.ReadQueueDepth,
		tel.SlowCaptured, tel.SlowThreshold, tel.EventsTotal)
	if tel.Degraded {
		// A degraded server is the one the operator is staring at: give
		// it its own banner with how long writes have been refused.
		age := ""
		if m := tel.Maintenance; m != nil && m.DegradedSeconds > 0 {
			age = fmt.Sprintf(" for %s", time.Duration(m.DegradedSeconds*float64(time.Second)).Round(time.Second))
		} else if since := lastEventTime(tel.Events, obs.EventDegradedEnter); !since.IsZero() {
			age = fmt.Sprintf(" for %s", time.Since(since).Round(time.Second))
		}
		fmt.Fprintf(out, "  !! DEGRADED%s — rejecting writes until a recovery probe succeeds\n", age)
	}
	if r := tel.Runtime; r != nil {
		fmt.Fprintf(out, "  goroutines %d  heap %s  gc %d (last pause %v)",
			r.Goroutines, sizeof(r.HeapAllocBytes), r.NumGC, r.LastGCPause.Round(time.Microsecond))
		if v, ok := r.Extra["buffer_frames"]; ok {
			fmt.Fprintf(out, "  buffer %d frames", int(v))
		}
		out.WriteByte('\n')
	}

	if len(tel.Ops) > 0 {
		tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprint(tw, "  op\tcount\terr\tp50\tp99\t")
		for _, w := range tel.Ops[0].Windows {
			fmt.Fprintf(tw, "p99/%v\t", w.Window)
		}
		fmt.Fprintln(tw)
		for _, op := range tel.Ops {
			fmt.Fprintf(tw, "  %s\t%d\t%d\t%s\t%s\t", op.Op, op.Count, op.Errors, ms(op.P50), ms(op.P99))
			for _, w := range op.Windows {
				if w.Count == 0 {
					fmt.Fprint(tw, "-\t")
				} else {
					fmt.Fprintf(tw, "%s\t", ms(w.P99))
				}
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}

	if w := tel.WAL; w != nil {
		// Throughput comes from the shortest append-bytes window: count
		// per second and byte sum per second over that span.
		var appendsPerSec, bytesPerSec float64
		if len(w.AppendBytes.Windows) > 0 {
			win := w.AppendBytes.Windows[0]
			if secs := win.Window.Seconds(); secs > 0 {
				appendsPerSec = float64(win.Count) / secs
				bytesPerSec = win.Sum / secs
			}
		}
		// Prefer the live window's quantiles; an idle window falls back
		// to the cumulative picture so the panel never goes blank.
		fsyncP50, fsyncP99 := w.FsyncLatency.P50, w.FsyncLatency.P99
		if len(w.FsyncLatency.Windows) > 0 && w.FsyncLatency.Windows[0].Count > 0 {
			fsyncP50, fsyncP99 = w.FsyncLatency.Windows[0].P50, w.FsyncLatency.Windows[0].P99
		}
		batchP50 := w.BatchSize.P50
		if len(w.BatchSize.Windows) > 0 && w.BatchSize.Windows[0].Count > 0 {
			batchP50 = w.BatchSize.Windows[0].P50
		}
		logs := ""
		if w.Logs > 1 {
			logs = fmt.Sprintf(" (%d logs)", w.Logs)
		}
		fmt.Fprintf(out, "  wal%s %s (%d live recs)  %.1f appends/s  %s/s  fsync p50 %s p99 %s\n",
			logs, sizeof(uint64(w.LogBytes)), w.CheckpointLag,
			appendsPerSec, sizeof(uint64(bytesPerSec)), ms(fsyncP50), ms(fsyncP99))
		fmt.Fprintf(out, "      coalesce %.0f%%  batch p50 %.1f  ckpts %d  lsn %d (durable %d, ckpt %d)\n",
			w.CoalesceRatio*100, batchP50, w.Checkpoints,
			w.LastLSN, w.DurableLSN, w.CheckpointLSN)
	}

	if m := tel.Maintenance; m != nil {
		fmt.Fprintf(out, "  maint ckpts %d (%d failed)  wal pressure %.0f%%  scrub %d pages / %d passes / %d corrupt  downtime %s\n",
			m.Checkpoints, m.CheckpointFailures, m.CheckpointPressure*100,
			m.ScrubPages, m.ScrubPasses, m.ScrubCorruptions,
			time.Duration(m.DowntimeTotalSeconds*float64(time.Second)).Round(time.Millisecond))
		if m.Degraded {
			fmt.Fprintf(out, "        probing: %d probes (%d failed)", m.Probes, m.ProbeFailures)
			if m.NextProbeInSeconds > 0 {
				fmt.Fprintf(out, "  next in %s", time.Duration(m.NextProbeInSeconds*float64(time.Second)).Round(time.Millisecond))
			}
			if m.LastProbeError != "" {
				fmt.Fprintf(out, "  last: %s", m.LastProbeError)
			}
			out.WriteByte('\n')
		} else if m.Heals > 0 {
			fmt.Fprintf(out, "        healed %d episode(s) with %d probes (%d failed)\n",
				m.Heals, m.Probes, m.ProbeFailures)
		}
		if m.LastScrubError != "" {
			fmt.Fprintf(out, "        scrub error: %s\n", m.LastScrubError)
		}
	}

	for _, slo := range tel.SLOs {
		status := "ok"
		if !slo.Met {
			status = "VIOLATED"
		}
		fmt.Fprintf(out, "  slo %-14s %s  avail %.4f (burn %.1f)  <%v %.4f (burn %.1f)  n=%d\n",
			slo.Op, status,
			slo.Availability, slo.AvailabilityBurn,
			time.Duration(slo.LatencyTargetSeconds*float64(time.Second)), slo.LatencyAttainment, slo.LatencyBurn,
			slo.Total)
	}

	for i, ev := range tel.Events {
		if i >= eventLimit {
			fmt.Fprintf(out, "  … %d more events\n", len(tel.Events)-i)
			break
		}
		fmt.Fprintf(out, "  [%s] %s %s: %s\n",
			ev.Time.Format("15:04:05"), ev.Severity, ev.Type, ev.Message)
	}
}

// lastEventTime returns the timestamp of the newest event of the given
// type in the snapshot (events arrive newest first), or the zero time.
func lastEventTime(events []obs.Event, typ obs.EventType) time.Time {
	for _, ev := range events {
		if ev.Type == typ {
			return ev.Time
		}
	}
	return time.Time{}
}

// ms renders a latency in seconds as a compact duration string.
func ms(seconds float64) string {
	return time.Duration(seconds * float64(time.Second)).Round(time.Microsecond).String()
}

func sizeof(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
