// Command dqserver serves a dynq database over TCP using the netq
// protocol. It either reopens a database file built by dqload or
// generates the paper's synthetic workload in memory at startup.
//
// With -metrics it also serves an observability endpoint:
//
//	/metrics          Prometheus text format (per-op request counts,
//	                  latency histograms, rolling-window quantiles,
//	                  buffer-pool hit ratio, runtime gauges, ...)
//	/debug/vars       the same metrics as expvar-style JSON
//	/debug/trace      recent query spans (per-stage cost deltas) as JSONL
//	/debug/slow       operations that exceeded -slow-query (reads) or
//	                  -slow-write (writes), spans included; ?op= filters
//	/debug/events     the operational event journal (recovery, degraded
//	                  mode, overload bursts, checksum failures)
//	/debug/runtime    the runtime collector's time series
//	/debug/telemetry  the full stats snapshot (same payload as the netq
//	                  telemetry op that dqtop polls)
//	/debug/pprof/*    the standard runtime profiles
//
// A -db file is opened through recovery: every reachable page is
// verified and repairs are journaled and exported as dynq_recovery_*
// gauges before the server takes traffic.
//
// SIGINT/SIGTERM shut the server down gracefully, logging a final
// cumulative cost summary; a second signal forces exit.
//
// Diagnostics go to stderr through log/slog; -log-format json makes them
// machine-parseable and request-scoped lines carry trace/span ids.
//
// With -wal a write-ahead log sidecar (<db>.wal) is armed: every
// acknowledged write is durable across a crash, and the next open
// replays whatever the last page commit missed. An existing sidecar is
// detected and replayed even without the flag. Combining -db with
// -shards N serves a sharded on-disk database — page files
// <db>.shard0..N-1, one log sidecar each under -wal — created fresh
// when absent and recovered (every shard verified, every log replayed)
// when present; the shard count must match the one the files were
// created with.
//
// The self-healing maintenance loop is opt-in through four flags:
// -auto-checkpoint-bytes and -auto-checkpoint-age bound the WAL by
// checkpointing when live bytes or record age cross the threshold,
// -scrub-rate verifies committed pages in the background at the given
// pages/sec, and -probe-backoff sets the initial retry backoff for
// degraded-mode recovery probes. Any of them enables the loop, which
// also probes a degraded store until a durable write round-trips and
// then returns the server to read-write on its own.
//
// Usage:
//
//	dqserver [-addr :7207] [-metrics :7208] [-db db.dynq [-shards N] | -scale F -seed N [-dual] [-shards N]]
//	         [-wal] [-group-commit-window 2ms]
//	         [-auto-checkpoint-bytes N] [-auto-checkpoint-age 30s]
//	         [-scrub-rate 50000] [-probe-backoff 1s]
//	         [-slow-query 250ms] [-slow-write 250ms]
//	         [-slo-latency 100ms] [-slo-write-latency 50ms] [-slo-window 5m]
//	         [-log-level info] [-log-format text]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dynq"
	"dynq/internal/motion"
	"dynq/internal/obs"
	"dynq/netq"
)

func main() {
	var (
		addr    = flag.String("addr", ":7207", "listen address")
		metrics = flag.String("metrics", "", "observability listen address (e.g. :7208); empty disables")
		path    = flag.String("db", "", "database file to serve (from dqload)")
		scale   = flag.Float64("scale", 0.1, "synthetic population scale when no -db is given")
		seed    = flag.Int64("seed", 1, "synthetic workload seed")
		dual    = flag.Bool("dual", false, "dual temporal axes for the synthetic index")
		track   = flag.Bool("track", false, "attach a current-state tracker (enables OpTrack* operations)")
		horizon = flag.Float64("horizon", 2, "tracker anticipation horizon")
		shards  = flag.Int("shards", 1, "partition the index across N parallel shards; with -db, serves the sharded file set <db>.shard<i> (created fresh or recovered)")
		walArm  = flag.Bool("wal", false, "arm a write-ahead log for durable writes; requires -db (sidecar <db>.wal, or one <db>.shard<i>.wal per shard with -shards)")
		gcWin   = flag.Duration("group-commit-window", 0, "WAL group-commit coalescing window (0 = 2ms default, negative fsyncs every commit round)")

		autoCkptBytes = flag.Int64("auto-checkpoint-bytes", 0, "auto-checkpoint any WAL whose live bytes reach this many (0 disables; needs -wal)")
		autoCkptAge   = flag.Duration("auto-checkpoint-age", 0, "auto-checkpoint any WAL whose oldest un-checkpointed record is this old (0 disables; needs -wal)")
		scrubRate     = flag.Int("scrub-rate", 0, "background scrub rate over committed pages, in pages/sec (0 disables; needs -db)")
		probeBackoff  = flag.Duration("probe-backoff", 0, "initial backoff between degraded-mode recovery probes (0 = 1s once any maintenance flag enables the loop; setting it alone enables probing)")
		maxConc       = flag.Int("max-concurrent", 0, "max concurrently executing read queries (0 = GOMAXPROCS, <0 = unlimited)")
		maxQue        = flag.Int("max-queue", 0, "max read queries waiting for a slot before rejection (0 = 4x max-concurrent)")

		slowQuery       = flag.Duration("slow-query", obs.DefSlowThreshold, "capture queries slower than this into /debug/slow (negative disables)")
		slowWrite       = flag.Duration("slow-write", obs.DefSlowThreshold, "capture writes slower than this into /debug/slow (negative disables)")
		sloLatency      = flag.Duration("slo-latency", 100*time.Millisecond, "latency SLO target per read request")
		sloWriteLatency = flag.Duration("slo-write-latency", 50*time.Millisecond, "durability-wait latency SLO target per acknowledged write")
		sloWindow       = flag.Duration("slo-window", 5*time.Minute, "window over which SLO attainment is computed")

		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error (debug logs every request)")
		logFormat = flag.String("log-format", "text", "log format: text or json")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dqserver:", err)
		os.Exit(2)
	}
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	// Flag combinations fail before any index is built or file touched —
	// a bad invocation should not pay for a synthetic-index setup first.
	if err := validateFlags(*path, *shards, *walArm); err != nil {
		fmt.Fprintln(os.Stderr, "dqserver:", err)
		os.Exit(2)
	}
	if (*autoCkptBytes > 0 || *autoCkptAge > 0) && !*walArm {
		fmt.Fprintln(os.Stderr, "dqserver: -auto-checkpoint-bytes/-auto-checkpoint-age need -wal: without a log there is nothing to checkpoint")
		os.Exit(2)
	}
	if *scrubRate > 0 && *path == "" {
		fmt.Fprintln(os.Stderr, "dqserver: -scrub-rate needs -db: an in-memory index has no pages to scrub")
		os.Exit(2)
	}

	maint := dynq.MaintenanceOptions{
		Checkpoint:       dynq.CheckpointPolicy{MaxBytes: *autoCkptBytes, MaxAge: *autoCkptAge},
		ScrubPagesPerSec: *scrubRate,
		ProbeBackoff:     *probeBackoff,
	}

	db, recovery, err := openDB(*path, *scale, *seed, *dual, *shards, *walArm, *gcWin, maint, logger)
	if err != nil {
		fatal("open database", err)
	}
	defer db.Close()
	st, err := db.Stats()
	if err != nil {
		fatal("read index stats", err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("bind query listener", err)
	}
	shardCount := 1
	args := []any{
		"addr", l.Addr().String(),
		"segments", st.Segments,
		"height", st.Height,
		"internal_nodes", st.InternalNodes,
		"leaf_nodes", st.LeafNodes,
	}
	if sdb, ok := db.(*dynq.ShardedDB); ok {
		shardCount = sdb.Shards()
		args = append(args, "workers", sdb.Workers())
	}
	args = append(args, "shards", shardCount)
	logger.Info("serving", args...)
	if maint.Enabled() {
		logger.Info("self-healing maintenance loop running",
			"auto_checkpoint_bytes", *autoCkptBytes,
			"auto_checkpoint_age", *autoCkptAge,
			"scrub_pages_per_sec", *scrubRate,
			"probe_backoff", *probeBackoff)
	}

	srv := netq.NewServer(db)
	srv.WithLogger(logger)
	srv.WithSlowQueryThreshold(*slowQuery)
	srv.WithSlowWriteThreshold(*slowWrite)
	srv.WithSLO(obs.SLOConfig{Window: *sloWindow, LatencyTarget: *sloLatency})
	srv.WithWriteSLO(obs.SLOConfig{Window: *sloWindow, LatencyTarget: *sloWriteLatency})
	if recovery != nil {
		srv.WithRecoveryReport(recovery)
		logger.Info("recovery-on-open", "report", recovery.String())
	}
	if *maxConc != 0 || *maxQue != 0 {
		n := *maxConc
		if n == 0 {
			n = runtime.GOMAXPROCS(0)
		}
		srv.WithConcurrency(n, *maxQue)
	}
	logger.Info("read admission control",
		"max_concurrent", srv.MaxConcurrent(), "max_queue", srv.MaxQueue())
	if *track {
		tk, err := dynq.NewTracker(dynq.TrackerOptions{Horizon: *horizon})
		if err != nil {
			fatal("attach tracker", err)
		}
		srv.WithTracker(tk)
		logger.Info("tracker attached (OpTrack* enabled)", "horizon", *horizon)
	}

	var hs *http.Server
	if *metrics != "" {
		// Bind synchronously so a taken port is a startup failure, not a
		// warning buried in the logs of an otherwise-healthy server.
		ml, err := net.Listen("tcp", *metrics)
		if err != nil {
			fatal("bind metrics listener", err)
		}
		hs = &http.Server{Handler: obs.NewHandler(obs.HandlerConfig{
			Registry:  srv.Registry(),
			Tracer:    srv.Tracer(),
			SlowLog:   srv.SlowLog(),
			Journal:   srv.Journal(),
			Collector: srv.Collector(),
			Telemetry: srv.Telemetry,
			Health: func() error {
				if db.Degraded() {
					return dynq.ErrReadOnly
				}
				return nil
			},
		})}
		logger.Info("observability endpoint up",
			"addr", ml.Addr().String(),
			"paths", "/metrics /healthz /debug/vars /debug/trace /debug/slow /debug/events /debug/runtime /debug/telemetry /debug/pprof")
		go func() {
			if err := hs.Serve(ml); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("metrics server", "err", err)
			}
		}()
	}

	// Graceful shutdown: the first SIGINT/SIGTERM closes the listener
	// (unblocking Serve) and drains; a second one forces exit.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		logger.Info("shutting down")
		l.Close()
		srv.Close()
		if hs != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			hs.Shutdown(ctx)
		}
		go func() {
			<-sig
			logger.Error("forced exit")
			os.Exit(130)
		}()
	}()

	err = srv.Serve(l)
	if err != nil && !errors.Is(err, net.ErrClosed) {
		fatal("serve", err)
	}
	// Final summary: cumulative paper-metric counters and buffer state.
	bs := db.BufferStats()
	logger.Info("final cost counters", "counters", db.CostSnapshot().String())
	logger.Info("buffer pool",
		"frames", bs.Len, "capacity", bs.Capacity,
		"hits", bs.Hits, "misses", bs.Misses,
		"hit_ratio", bs.HitRatio(), "writebacks", bs.WriteBacks)
	logger.Info("bye")
}

// validateFlags rejects bad flag combinations up front, before any
// index is built or file opened, with messages that say what to change.
func validateFlags(path string, shards int, walArm bool) error {
	if shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", shards)
	}
	if walArm && path == "" {
		return fmt.Errorf("-wal requires -db: a synthetic in-memory index has no page files for a log to recover against")
	}
	return nil
}

func openDB(path string, scale float64, seed int64, dual bool, shards int, walArm bool, gcWin time.Duration, maint dynq.MaintenanceOptions, logger *slog.Logger) (dynq.Database, *dynq.RecoveryReport, error) {
	if err := validateFlags(path, shards, walArm); err != nil {
		return nil, nil, err
	}
	if path != "" && shards > 1 {
		// A sharded on-disk database: one page file and one log per shard
		// under <path>.shard<i>. Created fresh when absent; otherwise every
		// shard file is verified and its log replayed before serving.
		db, reps, err := dynq.OpenShardedRecover(path, dynq.ShardRecoverOptions{
			Shards:            shards,
			WAL:               walArm,
			GroupCommitWindow: gcWin,
			Maintenance:       maint,
		})
		if err != nil {
			return nil, nil, err
		}
		rep := dynq.MergeRecoveryReports(reps)
		if db.WALArmed() {
			args := []any{"logs", shards, "wal_pattern", path + ".shard<i>.wal"}
			if rep != nil {
				args = append(args,
					"replayed_records", rep.WALRecordsReplayed,
					"replayed_updates", rep.WALUpdatesReplayed,
					"torn_tail", rep.WALTornTail)
			}
			logger.Info("per-shard write-ahead logs armed", args...)
		}
		return db, rep, nil
	}
	if path != "" {
		// Open through recovery so the server never takes traffic on an
		// unverified file; the report feeds dynq_recovery_* gauges. -wal
		// forces a log sidecar into existence; without the flag an
		// existing sidecar is still detected and replayed.
		ropts := dynq.RecoverOptions{GroupCommitWindow: gcWin, Maintenance: maint}
		if walArm {
			ropts.WALPath = path + ".wal"
		}
		db, rep, err := dynq.OpenFileRecoverWith(path, ropts)
		if err != nil {
			return nil, nil, err
		}
		if rep.WALArmed {
			logger.Info("write-ahead log armed",
				"wal", path+".wal",
				"replayed_records", rep.WALRecordsReplayed,
				"replayed_updates", rep.WALUpdatesReplayed,
				"torn_tail", rep.WALTornTail)
		}
		return db, rep, nil
	}
	sim := motion.PaperConfig()
	sim.Objects = int(float64(sim.Objects) * scale)
	if sim.Objects < 1 {
		sim.Objects = 1
	}
	sim.Seed = seed
	start := time.Now()
	segs, err := motion.GenerateSegments(sim)
	if err != nil {
		return nil, nil, err
	}
	var db dynq.Database
	if shards > 1 {
		db, err = dynq.OpenSharded(dynq.ShardOptions{
			Options: dynq.Options{DualTimeAxes: dual, Maintenance: maint},
			Shards:  shards,
		})
	} else {
		db, err = dynq.Open(dynq.Options{DualTimeAxes: dual, Maintenance: maint})
	}
	if err != nil {
		return nil, nil, err
	}
	updates := make([]dynq.MotionUpdate, len(segs))
	for i, s := range segs {
		updates[i] = dynq.MotionUpdate{ID: s.ObjID, Segment: dynq.Segment{
			T0: s.Seg.T.Lo, T1: s.Seg.T.Hi,
			From: s.Seg.Start, To: s.Seg.End,
		}}
	}
	if err := db.BulkLoadUpdates(updates); err != nil {
		db.Close()
		return nil, nil, err
	}
	logger.Info("generated and indexed synthetic workload",
		"segments", len(segs), "objects", sim.Objects, "seed", seed,
		"elapsed", time.Since(start).Round(time.Millisecond))
	return db, nil, nil
}
