// Command dqserver serves a dynq database over TCP using the netq
// protocol. It either reopens a database file built by dqload or
// generates the paper's synthetic workload in memory at startup.
//
// Usage:
//
//	dqserver [-addr :7207] [-db db.dynq | -scale F -seed N [-dual]]
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"dynq"
	"dynq/internal/motion"
	"dynq/netq"
)

func main() {
	var (
		addr    = flag.String("addr", ":7207", "listen address")
		path    = flag.String("db", "", "database file to serve (from dqload)")
		scale   = flag.Float64("scale", 0.1, "synthetic population scale when no -db is given")
		seed    = flag.Int64("seed", 1, "synthetic workload seed")
		dual    = flag.Bool("dual", false, "dual temporal axes for the synthetic index")
		track   = flag.Bool("track", false, "attach a current-state tracker (enables OpTrack* operations)")
		horizon = flag.Float64("horizon", 2, "tracker anticipation horizon")
	)
	flag.Parse()

	db, err := openDB(*path, *scale, *seed, *dual)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer db.Close()
	st, err := db.Stats()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("serving %d segments (height %d, %d+%d nodes) on %s\n",
		st.Segments, st.Height, st.InternalNodes, st.LeafNodes, *addr)

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv := netq.NewServer(db)
	if *track {
		tk, err := dynq.NewTracker(dynq.TrackerOptions{Horizon: *horizon})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		srv.WithTracker(tk)
		fmt.Println("tracker attached (OpTrack* enabled)")
	}
	if err := srv.Serve(l); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func openDB(path string, scale float64, seed int64, dual bool) (*dynq.DB, error) {
	if path != "" {
		return dynq.OpenFile(path)
	}
	sim := motion.PaperConfig()
	sim.Objects = int(float64(sim.Objects) * scale)
	if sim.Objects < 1 {
		sim.Objects = 1
	}
	sim.Seed = seed
	start := time.Now()
	segs, err := motion.GenerateSegments(sim)
	if err != nil {
		return nil, err
	}
	db, err := dynq.Open(dynq.Options{DualTimeAxes: dual})
	if err != nil {
		return nil, err
	}
	byObject := map[dynq.ObjectID][]dynq.Segment{}
	for _, s := range segs {
		byObject[s.ObjID] = append(byObject[s.ObjID], dynq.Segment{
			T0: s.Seg.T.Lo, T1: s.Seg.T.Hi,
			From: s.Seg.Start, To: s.Seg.End,
		})
	}
	if err := db.BulkLoad(byObject); err != nil {
		db.Close()
		return nil, err
	}
	fmt.Printf("generated and indexed %d segments in %v\n", len(segs), time.Since(start).Round(time.Millisecond))
	return db, nil
}
