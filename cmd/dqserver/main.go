// Command dqserver serves a dynq database over TCP using the netq
// protocol. It either reopens a database file built by dqload or
// generates the paper's synthetic workload in memory at startup.
//
// With -metrics it also serves an observability endpoint:
//
//	/metrics        Prometheus text format (per-op request counts,
//	                latency histograms, buffer-pool hit ratio, ...)
//	/debug/vars     the same metrics as expvar-style JSON
//	/debug/trace    recent query spans (per-stage cost deltas) as JSONL
//	/debug/pprof/*  the standard runtime profiles
//
// SIGINT/SIGTERM shut the server down gracefully, printing a final
// cumulative cost summary; a second signal forces exit.
//
// Usage:
//
//	dqserver [-addr :7207] [-metrics :7208] [-db db.dynq | -scale F -seed N [-dual] [-shards N]]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dynq"
	"dynq/internal/motion"
	"dynq/internal/obs"
	"dynq/netq"
)

func main() {
	var (
		addr    = flag.String("addr", ":7207", "listen address")
		metrics = flag.String("metrics", "", "observability listen address (e.g. :7208); empty disables")
		path    = flag.String("db", "", "database file to serve (from dqload)")
		scale   = flag.Float64("scale", 0.1, "synthetic population scale when no -db is given")
		seed    = flag.Int64("seed", 1, "synthetic workload seed")
		dual    = flag.Bool("dual", false, "dual temporal axes for the synthetic index")
		track   = flag.Bool("track", false, "attach a current-state tracker (enables OpTrack* operations)")
		horizon = flag.Float64("horizon", 2, "tracker anticipation horizon")
		shards  = flag.Int("shards", 1, "partition the index across N parallel shards (>1 requires a synthetic index, not -db)")
	)
	flag.Parse()

	db, err := openDB(*path, *scale, *seed, *dual, *shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer db.Close()
	st, err := db.Stats()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("serving %d segments (height %d, %d+%d nodes) on %s\n",
		st.Segments, st.Height, st.InternalNodes, st.LeafNodes, *addr)
	if sdb, ok := db.(*dynq.ShardedDB); ok {
		fmt.Printf("sharded engine: %d shards, %d workers\n", sdb.Shards(), sdb.Workers())
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv := netq.NewServer(db)
	if *track {
		tk, err := dynq.NewTracker(dynq.TrackerOptions{Horizon: *horizon})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		srv.WithTracker(tk)
		fmt.Println("tracker attached (OpTrack* enabled)")
	}

	var hs *http.Server
	if *metrics != "" {
		hs = &http.Server{Addr: *metrics, Handler: obs.Handler(srv.Registry(), srv.Tracer())}
		go func() {
			fmt.Printf("observability on %s (/metrics /debug/vars /debug/trace /debug/pprof)\n", *metrics)
			if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "metrics server:", err)
			}
		}()
	}

	// Graceful shutdown: the first SIGINT/SIGTERM closes the listener
	// (unblocking Serve) and drains; a second one forces exit.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("\nshutting down...")
		l.Close()
		srv.Close()
		if hs != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			hs.Shutdown(ctx)
		}
		go func() {
			<-sig
			fmt.Fprintln(os.Stderr, "forced exit")
			os.Exit(130)
		}()
	}()

	err = srv.Serve(l)
	if err != nil && !errors.Is(err, net.ErrClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Final summary: cumulative paper-metric counters and buffer state.
	fmt.Printf("final cost counters: %s\n", db.CostSnapshot())
	bs := db.BufferStats()
	fmt.Printf("buffer pool: %d/%d frames, hits=%d misses=%d ratio=%.2f writebacks=%d\n",
		bs.Len, bs.Capacity, bs.Hits, bs.Misses, bs.HitRatio(), bs.WriteBacks)
	fmt.Println("bye")
}

func openDB(path string, scale float64, seed int64, dual bool, shards int) (dynq.Database, error) {
	if shards < 1 {
		return nil, fmt.Errorf("-shards must be >= 1, got %d", shards)
	}
	if path != "" {
		if shards > 1 {
			return nil, fmt.Errorf("-shards only applies to a synthetic index; a -db file holds one pre-built tree")
		}
		return dynq.OpenFile(path)
	}
	sim := motion.PaperConfig()
	sim.Objects = int(float64(sim.Objects) * scale)
	if sim.Objects < 1 {
		sim.Objects = 1
	}
	sim.Seed = seed
	start := time.Now()
	segs, err := motion.GenerateSegments(sim)
	if err != nil {
		return nil, err
	}
	var db dynq.Database
	if shards > 1 {
		db, err = dynq.OpenSharded(dynq.ShardOptions{
			Options: dynq.Options{DualTimeAxes: dual},
			Shards:  shards,
		})
	} else {
		db, err = dynq.Open(dynq.Options{DualTimeAxes: dual})
	}
	if err != nil {
		return nil, err
	}
	byObject := map[dynq.ObjectID][]dynq.Segment{}
	for _, s := range segs {
		byObject[s.ObjID] = append(byObject[s.ObjID], dynq.Segment{
			T0: s.Seg.T.Lo, T1: s.Seg.T.Hi,
			From: s.Seg.Start, To: s.Seg.End,
		})
	}
	if err := bulkLoad(db, byObject); err != nil {
		db.Close()
		return nil, err
	}
	fmt.Printf("generated and indexed %d segments in %v\n", len(segs), time.Since(start).Round(time.Millisecond))
	return db, nil
}

func bulkLoad(db dynq.Database, segs map[dynq.ObjectID][]dynq.Segment) error {
	switch d := db.(type) {
	case *dynq.DB:
		return d.BulkLoad(segs)
	case *dynq.ShardedDB:
		return d.BulkLoad(segs)
	default:
		return fmt.Errorf("unknown database type %T", db)
	}
}
