package main

import (
	"io"
	"log/slog"
	"path/filepath"
	"strings"
	"testing"

	"dynq"
)

// TestValidateFlags pins the up-front flag rules: bad combinations must
// fail before any index is built, with messages naming the fix.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		path    string
		shards  int
		wal     bool
		wantErr string // substring; empty = valid
	}{
		{name: "synthetic defaults", shards: 1},
		{name: "synthetic sharded", shards: 8},
		{name: "db single", path: "x.dynq", shards: 1},
		{name: "db sharded", path: "x.dynq", shards: 4},
		{name: "db sharded wal", path: "x.dynq", shards: 4, wal: true},
		{name: "db single wal", path: "x.dynq", shards: 1, wal: true},
		{name: "zero shards", shards: 0, wantErr: "-shards must be >= 1"},
		{name: "wal without db", shards: 1, wal: true, wantErr: "-wal requires -db"},
		{name: "wal without db sharded", shards: 4, wal: true, wantErr: "-wal requires -db"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.path, tc.shards, tc.wal)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFlags(%q, %d, %v) = %v, want nil", tc.path, tc.shards, tc.wal, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateFlags(%q, %d, %v) = nil, want error containing %q", tc.path, tc.shards, tc.wal, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// TestOpenDBShardedDurable drives the server's open path end to end:
// -db X -shards N -wal creates a durable sharded database, and a second
// open recovers it with the data intact instead of truncating it.
func TestOpenDBShardedDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "srv.dynq")
	logger := discardLogger()

	db, rep, err := openDB(path, 0, 1, false, 4, true, 0, dynq.MaintenanceOptions{}, logger)
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Errorf("fresh create returned a recovery report: %+v", rep)
	}
	sdb, ok := db.(*dynq.ShardedDB)
	if !ok {
		t.Fatalf("openDB returned %T, want *dynq.ShardedDB", db)
	}
	if !sdb.WALArmed() {
		t.Fatal("-wal did not arm the per-shard logs")
	}
	seg := dynq.Segment{T0: 0, T1: 1, From: []float64{1, 1}, To: []float64{2, 2}}
	if err := sdb.Insert(42, seg); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: recovery path, contents preserved, report merged.
	db2, rep2, err := openDB(path, 0, 1, false, 4, true, 0, dynq.MaintenanceOptions{}, logger)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rep2 == nil {
		t.Fatal("reopen returned no merged recovery report")
	}
	rs, err := db2.Snapshot(dynq.Rect{Min: []float64{0, 0}, Max: []float64{3, 3}}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].ID != 42 {
		t.Fatalf("reopen lost the inserted segment: %v", rs)
	}

	// A mismatched shard count is refused cleanly.
	if _, _, err := openDB(path, 0, 1, false, 2, true, 0, dynq.MaintenanceOptions{}, logger); err == nil {
		t.Fatal("reopen with the wrong shard count succeeded")
	} else if !strings.Contains(err.Error(), "shard count") {
		t.Fatalf("wrong-count error should explain the shard-count rule, got: %v", err)
	}
}
