package dynq_test

import (
	"fmt"
	"log"

	"dynq"
)

// Opening a database, recording motion updates and posing a snapshot
// query.
func ExampleDB_Snapshot() {
	db, err := dynq.Open(dynq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A truck drives east along y=5 between t=0 and t=10.
	db.Insert(1, dynq.Segment{T0: 0, T1: 10, From: []float64{0, 5}, To: []float64{20, 5}})
	// A depot sits still.
	db.Insert(2, dynq.Segment{T0: 0, T1: 10, From: []float64{18, 6}, To: []float64{18, 6}})

	res, err := db.Snapshot(dynq.Rect{Min: []float64{8, 3}, Max: []float64{12, 7}}, 4, 6)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res {
		fmt.Printf("object %d visible during [%.1f, %.1f]\n", r.ID, r.Appear, r.Disappear)
	}
	// Output:
	// object 1 visible during [4.0, 6.0]
}

// A predictive dynamic query streams each object once, with the interval
// it stays inside the moving view; the ViewCache reconstructs the visible
// set every frame.
func ExampleDB_PredictiveQuery() {
	db, err := dynq.Open(dynq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	// Three stationary markers along the observer's path.
	for i, x := range []float64{5, 15, 25} {
		db.Insert(dynq.ObjectID(i+1), dynq.Segment{
			T0: 0, T1: 30, From: []float64{x, 5}, To: []float64{x, 5},
		})
	}

	// The view [0,10]×[0,10] slides east to [20,30]×[0,10] over 20 time
	// units.
	sess, err := db.PredictiveQuery([]dynq.Waypoint{
		{T: 0, View: dynq.Rect{Min: []float64{0, 0}, Max: []float64{10, 10}}},
		{T: 20, View: dynq.Rect{Min: []float64{20, 0}, Max: []float64{30, 10}}},
	}, dynq.PredictiveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	for {
		r, err := sess.Next(0, 20)
		if err != nil {
			log.Fatal(err)
		}
		if r == nil {
			break
		}
		fmt.Printf("object %d appears at t=%.0f\n", r.ID, r.Appear)
	}
	// Output:
	// object 1 appears at t=0
	// object 2 appears at t=5
	// object 3 appears at t=15
}

// A non-predictive session returns only the objects not delivered by the
// previous snapshot.
func ExampleDB_NonPredictiveQuery() {
	db, err := dynq.Open(dynq.Options{DualTimeAxes: true})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	for i, x := range []float64{2, 6, 14} {
		db.Insert(dynq.ObjectID(i+1), dynq.Segment{
			T0: 0, T1: 30, From: []float64{x, 5}, To: []float64{x, 5},
		})
	}
	sess := db.NonPredictiveQuery(dynq.NonPredictiveOptions{})

	first, _ := sess.Snapshot(dynq.Rect{Min: []float64{0, 0}, Max: []float64{10, 10}}, 0, 1)
	fmt.Printf("frame 1: %d new\n", len(first))
	// The view shifts slightly east: only the newly covered object
	// arrives.
	second, _ := sess.Snapshot(dynq.Rect{Min: []float64{4, 0}, Max: []float64{15, 10}}, 1, 2)
	fmt.Printf("frame 2: %d new\n", len(second))
	// Output:
	// frame 1: 2 new
	// frame 2: 1 new
}

// The client cache keyed on disappearance time.
func ExampleViewCache() {
	view := dynq.NewViewCache()
	view.Apply([]dynq.Result{
		{ID: 7, Disappear: 12},
		{ID: 9, Disappear: 4},
	})
	gone := view.Advance(6) // t=6: object 9 left at t=4
	fmt.Printf("evicted %d, %d still visible\n", len(gone), view.Len())
	// Output:
	// evicted 1, 1 still visible
}

// Anticipation queries over current motion states with the TPR-tree
// tracker.
func ExampleTracker() {
	tracker, err := dynq.NewTracker(dynq.TrackerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// At t=0 a vehicle is at (0,5) moving east at 2 units per time unit.
	tracker.Update(42, 0, []float64{0, 5}, []float64{2, 0})

	// When will it cross the zone x∈[10,20]?
	hits, err := tracker.During(dynq.Rect{Min: []float64{10, 0}, Max: []float64{20, 10}}, 0, 100)
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range hits {
		fmt.Printf("object %d inside during [%.1f, %.1f]\n", h.ID, h.Appear, h.Vanish)
	}
	// Output:
	// object 42 inside during [5.0, 10.0]
}

// A proximity self-join: pairs of objects within a distance of each other
// at a time instant.
func ExampleDB_Within() {
	db, err := dynq.Open(dynq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	db.Insert(1, dynq.Segment{T0: 0, T1: 10, From: []float64{0, 0}, To: []float64{10, 0}})
	db.Insert(2, dynq.Segment{T0: 0, T1: 10, From: []float64{10, 0}, To: []float64{0, 0}})

	// The two objects pass each other at t=5 (both at x=5).
	pairs, err := db.Within(1.0, 5)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pairs {
		fmt.Printf("objects %d and %d are %.1f apart\n", p.A, p.B, p.Dist)
	}
	// Output:
	// objects 1 and 2 are 0.0 apart
}
