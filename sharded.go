package dynq

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dynq/internal/core"
	"dynq/internal/geom"
	"dynq/internal/obs"
	"dynq/internal/pager"
	"dynq/internal/rtree"
	"dynq/internal/shard"
	"dynq/internal/stats"
	"dynq/internal/wal"
)

// ShardOptions configure a sharded database: the single-tree Options plus
// the partitioning knobs.
type ShardOptions struct {
	Options
	// Shards is the number of hash partitions (>= 1). Objects are placed
	// by a hash of their id, so every motion update touches exactly one
	// shard while every query fans out across all of them.
	Shards int
	// Workers bounds how many per-shard query tasks run concurrently
	// across ALL queries on the database (default GOMAXPROCS).
	Workers int
	// WAL arms a write-ahead log sidecar per shard ("<Path>.shard<i>.wal"):
	// each shard's sub-batch is logged as one crash-atomic record under
	// that shard's write lock, and Sync checkpoints every log against its
	// shard's committed metadata. Requires Options.Path (the logs recover
	// against the shard page files). Options.WALPath is rejected here —
	// a sharded database has one log PER SHARD, not one log total.
	WAL bool
}

// ShardedDB partitions the object population across Shards independent
// NSI R-trees and answers every query by fanning out over a bounded
// worker pool, merging the per-shard answers deterministically. It
// mirrors the DB API (and satisfies Database), so a server can swap one
// for the other without protocol changes.
//
// Concurrency: writes synchronize per shard, not per database. Data
// mutations (Insert, Delete, ApplyUpdates) hold the database lock in
// SHARED mode and serialize on their owner shard's lock inside the
// engine, so a write burst on shard 3 never blocks a read on shard 7 —
// only on shard 3, and only for the duration of that batch. Queries
// hold the shared database lock plus per-shard read locks inside their
// fan-out tasks. Structural operations (BulkLoad, Close) take the
// database lock exclusively. Stats accessors are atomic, and session
// types are single-goroutine.
type ShardedDB struct {
	mu     sync.RWMutex
	engine *shard.Engine
	dims   int
	health degradeState

	// wals holds the per-shard write-ahead logs, index-aligned with the
	// engine's shards; nil when the database runs without logs. The slice
	// is immutable after open: either every shard has a log or none does.
	wals     []*wal.Log
	path     string
	recovery []*RecoveryReport
	// maint is the self-healing maintenance loop, nil when
	// Options.Maintenance left it disabled.
	maint *maintainer
}

// shardFilePath names shard i's page file under a sharded database path.
func shardFilePath(path string, i int) string {
	return fmt.Sprintf("%s.shard%d", path, i)
}

// shardWALPath names shard i's write-ahead log sidecar.
func shardWALPath(path string, i int) string {
	return shardFilePath(path, i) + ".wal"
}

// OpenSharded creates a NEW sharded database. With Options.Path set,
// each shard stores its pages in its own file "<Path>.shard<i>"; the
// files must not already exist — reopening an existing sharded database
// goes through OpenShardedRecover, which verifies each shard file and
// replays its log instead of truncating it. Without a path all shards
// live in memory. With ShardOptions.WAL set each shard also gets a log
// sidecar "<Path>.shard<i>.wal" armed from the start.
func OpenSharded(opts ShardOptions) (*ShardedDB, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("dynq: ShardOptions.Shards must be >= 1, got %d", opts.Shards)
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("dynq: ShardOptions.Workers must be >= 0, got %d", opts.Workers)
	}
	if opts.WALPath != "" {
		return nil, fmt.Errorf("dynq: ShardOptions.WALPath is not supported: a sharded database has one log per shard, not one log total; set ShardOptions.WAL to arm \"<Path>.shard<i>.wal\" sidecars")
	}
	if opts.WAL && opts.Path == "" {
		return nil, fmt.Errorf("dynq: ShardOptions.WAL requires Options.Path: per-shard logs recover against the shard page files")
	}
	cfg, err := opts.Options.toConfig()
	if err != nil {
		return nil, err
	}
	if opts.Path != "" {
		// Fresh-create is explicit: silently truncating a previous run's
		// shard files on reopen destroyed data. Any existing shard file —
		// including one from a run with a different shard count — is a
		// refusal, not a truncation.
		if existing, err := existingShardFiles(opts.Path); err != nil {
			return nil, err
		} else if len(existing) > 0 {
			return nil, fmt.Errorf("dynq: sharded database files already exist at %q (found %s): use OpenShardedRecover to reopen, or remove them for a fresh database", opts.Path, existing[0])
		}
	}
	bufferPages := opts.BufferPages
	if opts.WAL && bufferPages == 0 {
		// Same rationale as the single-tree WAL default: with a log armed,
		// an unbuffered tree would write every dirty page straight through,
		// defeating the point of logging before checkpointing.
		bufferPages = defaultWALBufferPages
	}
	storeFor := func(i int) (pager.Store, error) {
		if opts.Path == "" {
			return pager.NewMemStore(), nil
		}
		return pager.CreateFileStore(shardFilePath(opts.Path, i))
	}
	engine, err := shard.New(cfg, shard.Options{
		Shards:      opts.Shards,
		Workers:     opts.Workers,
		BufferPages: bufferPages,
	}, storeFor)
	if err != nil {
		return nil, err
	}
	db := &ShardedDB{engine: engine, dims: cfg.Dims, path: opts.Path}
	db.health.after = int32(opts.DegradeAfter)
	if opts.WAL {
		// Commit each shard's empty base state BEFORE arming its log, so a
		// crash between open and the first Sync recovers an empty tree and
		// replays the log against it — never a zero-length unrecoverable
		// file (the same ordering Open uses for the single-tree WAL).
		for i := 0; i < opts.Shards; i++ {
			sh := engine.Shard(i)
			fs, ok := sh.Store().(auxStore)
			if !ok {
				engine.Close()
				return nil, fmt.Errorf("dynq: shard %d store cannot persist metadata", i)
			}
			if err := fs.SetAux(encodeMeta(sh.Tree.Meta(), 0)); err != nil {
				engine.Close()
				return nil, err
			}
			if err := sh.Store().Sync(); err != nil {
				engine.Close()
				return nil, err
			}
		}
		db.wals = make([]*wal.Log, opts.Shards)
		for i := range db.wals {
			w, err := wal.Create(shardWALPath(opts.Path, i), wal.Options{GroupCommitWindow: opts.GroupCommitWindow})
			if err != nil {
				db.closeWALs()
				engine.Close()
				return nil, err
			}
			db.wals[i] = w
		}
	}
	db.maint = startMaintainer(db, opts.Maintenance)
	return db, nil
}

// existingShardFiles lists the shard page files already present for a
// database path, in shard order ("<path>.shard0", "<path>.shard1", ...).
// The scan stops at the first gap; a gap with higher-numbered files
// present is reported as an error rather than treated as absence, so a
// partially deleted shard set is never mistaken for a fresh directory.
func existingShardFiles(path string) ([]string, error) {
	var files []string
	for i := 0; ; i++ {
		p := shardFilePath(path, i)
		if _, err := os.Stat(p); err != nil {
			if os.IsNotExist(err) {
				break
			}
			return nil, err
		}
		files = append(files, p)
	}
	// A hole at the front (shard0 missing, shard1 present) would otherwise
	// read as "no database here".
	if len(files) == 0 {
		if _, err := os.Stat(shardFilePath(path, 1)); err == nil {
			return nil, fmt.Errorf("dynq: shard file %q exists but %q is missing: partial shard set", shardFilePath(path, 1), shardFilePath(path, 0))
		}
	}
	return files, nil
}

func (db *ShardedDB) closeWALs() error {
	var first error
	for _, w := range db.wals {
		if w == nil {
			continue
		}
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close shuts the worker pool down and releases every shard's store and
// log.
func (db *ShardedDB) Close() error {
	db.maint.stop()
	err := db.engine.Close()
	if werr := db.closeWALs(); werr != nil && err == nil {
		err = werr
	}
	return err
}

// Dims returns the spatial dimensionality.
func (db *ShardedDB) Dims() int { return db.dims }

// Len returns the number of indexed motion segments across all shards.
func (db *ShardedDB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.engine.Size()
}

// Shards returns the number of partitions.
func (db *ShardedDB) Shards() int { return db.engine.Shards() }

// Workers returns the worker-pool bound.
func (db *ShardedDB) Workers() int { return db.engine.Workers() }

// ShardFor returns the partition owning an object's motion segments.
func (db *ShardedDB) ShardFor(id ObjectID) int {
	return db.engine.ShardFor(rtree.ObjectID(id))
}

// Insert records one motion update for an object on its owner shard.
func (db *ShardedDB) Insert(id ObjectID, seg Segment) error {
	return db.InsertCtx(context.Background(), id, seg, WriteOptions{})
}

// InsertCtx is Insert with a context and per-write options.
func (db *ShardedDB) InsertCtx(ctx context.Context, id ObjectID, seg Segment, opts WriteOptions) error {
	return db.ApplyUpdates(ctx, []MotionUpdate{{ID: id, Segment: seg}}, opts)
}

// Delete removes the motion update of an object that started at t0 from
// its owner shard. It returns ErrNotFound if no such segment is indexed.
func (db *ShardedDB) Delete(id ObjectID, t0 float64) error {
	return db.DeleteCtx(context.Background(), id, t0, WriteOptions{})
}

// DeleteCtx is Delete with a context and per-write options.
func (db *ShardedDB) DeleteCtx(ctx context.Context, id ObjectID, t0 float64, opts WriteOptions) error {
	return db.ApplyUpdates(ctx, []MotionUpdate{{ID: id, Segment: Segment{T0: t0}, Delete: true}}, opts)
}

// ApplyUpdates applies a batch of motion updates as one write. The batch
// is partitioned by owner shard and each shard's portion applies under
// that shard's lock alone, in slice order within the shard — so
// concurrent batches touching disjoint shards proceed fully in
// parallel, and readers of untouched shards are never blocked.
// Cross-shard order within one batch is unspecified; per-object order
// is preserved (an object lives on exactly one shard).
//
// With per-shard WALs armed (ShardOptions.WAL) every shard's sub-batch
// is appended to that shard's log as ONE record, under the same lock
// acquisition that applies it to the shard's tree, then the call waits
// according to opts.Durability — fsyncs on the touched logs run in
// parallel. Each shard's sub-batch is crash-atomic: recovery replays
// the whole record or none of it. Cross-shard atomicity is NOT
// promised, across crashes or live: shards log and apply independently,
// and an error on one shard (including ErrNotFound from a delete of a
// missing segment) does not undo sub-batches already applied — and
// logged — on other shards.
//
// Without logs, explicit DurabilityGroupCommit/DurabilitySync requests
// fail with ErrNoWAL; DurabilityDefault and DurabilityAsync apply in
// memory as before.
func (db *ShardedDB) ApplyUpdates(ctx context.Context, updates []MotionUpdate, opts WriteOptions) error {
	if len(updates) == 0 {
		return nil
	}
	ws := beginWriteSpan(ctx)
	err := db.applyUpdates(ctx, updates, opts, &ws, true)
	ws.finish(len(updates), err)
	return err
}

// applyUpdates is the batch write path. gated controls the degraded
// read-only check; the maintenance probe passes false to attempt a write
// while the database is degraded.
func (db *ShardedDB) applyUpdates(ctx context.Context, updates []MotionUpdate, opts WriteOptions, ws *writeSpan, gated bool) error {
	ctx, finish := opts.begin(ctx, db.engine.CostSnapshot)
	defer finish()
	// db.wals is immutable after open: requesting an explicit durability
	// level with no logs armed fails here, before anything is applied.
	if err := checkDurability(opts.Durability, db.wals != nil); err != nil {
		return err
	}
	if db.wals == nil {
		return db.applyUnlogged(ctx, updates, ws, gated)
	}
	return db.applyLogged(ctx, updates, opts, ws, gated)
}

// applyUnlogged is the in-memory write path: one engine batch, no log.
func (db *ShardedDB) applyUnlogged(ctx context.Context, updates []MotionUpdate, ws *writeSpan, gated bool) error {
	mark := ws.now()
	ups := make([]shard.Update, len(updates))
	for i, u := range updates {
		if u.Delete {
			ups[i] = shard.Update{ID: rtree.ObjectID(u.ID), T0: u.Segment.T0, Delete: true}
			continue
		}
		g, err := toSegmentDims(u.Segment, db.dims)
		if err != nil {
			return err
		}
		ups[i] = shard.Update{ID: rtree.ObjectID(u.ID), Seg: g}
	}
	ws.stage(stageValidate, ws.since(mark))
	if err := ctx.Err(); err != nil {
		return err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if gated {
		if err := db.health.gate(); err != nil {
			return err
		}
	}
	mark = ws.now()
	err := db.engine.ApplyBatch(ups)
	ws.stage(stageTreeApply, ws.since(mark))
	if err == rtree.ErrNotFound {
		// A missing segment is an answer, not a storage failure.
		return ErrNotFound
	}
	return db.health.note(err)
}

// applyLogged is the durable write path: the batch is partitioned by
// owner shard, and each touched shard — under its own write lock, on the
// engine's worker pool — validates its sub-batch, appends it to its log
// as one record (write-ahead), and applies it to its tree. The
// durability wait runs after every shard lock is released, in parallel
// across the touched logs.
func (db *ShardedDB) applyLogged(ctx context.Context, updates []MotionUpdate, opts WriteOptions, ws *writeSpan, gated bool) error {
	nShards := db.engine.Shards()
	mark := ws.now()
	parts := make([][]MotionUpdate, nShards)
	partSegs := make([][]geom.Segment, nShards)
	touched := make([]bool, nShards)
	for _, u := range updates {
		var g geom.Segment
		if !u.Delete {
			var err error
			g, err = toSegmentDims(u.Segment, db.dims)
			if err != nil {
				return err
			}
		}
		s := shard.Place(rtree.ObjectID(u.ID), nShards)
		parts[s] = append(parts[s], u)
		partSegs[s] = append(partSegs[s], g)
		touched[s] = true
	}
	ws.stage(stageValidate, ws.since(mark))
	if err := ctx.Err(); err != nil {
		return err
	}
	db.mu.RLock()
	if gated {
		if err := db.health.gate(); err != nil {
			db.mu.RUnlock()
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		db.mu.RUnlock()
		return err
	}
	// lsns[i] records shard i's appended record (0 = shard untouched or
	// its append failed); the durability wait below covers exactly these.
	lsns := make([]uint64, nShards)
	var walNS atomic.Int64
	mark = ws.now()
	err := db.engine.UpdateShards(touched, func(i int, sh *shard.Shard) error {
		if err := validateDeletesOn(sh.Tree, parts[i]); err != nil {
			return err
		}
		t := time.Now()
		lsn, werr := db.wals[i].Append(encodeUpdates(db.dims, parts[i]))
		walNS.Add(time.Since(t).Nanoseconds())
		if werr != nil {
			return fmt.Errorf("dynq: wal append (shard %d): %w", i, werr)
		}
		lsns[i] = lsn
		return applyToTree(sh.Tree, parts[i], partSegs[i], false)
	})
	total := ws.since(mark)
	walDur := time.Duration(walNS.Load())
	ws.stage(stageWALAppend, walDur)
	if total > walDur {
		ws.stage(stageTreeApply, total-walDur)
	} else {
		ws.stage(stageTreeApply, total)
	}
	db.mu.RUnlock()
	if err != nil {
		if err == ErrNotFound || err == rtree.ErrNotFound {
			return ErrNotFound
		}
		return db.health.note(err)
	}
	// The durability wait runs OUTSIDE every lock: an fsync never blocks
	// readers or a checkpoint, and concurrent writers pile into each
	// log's group-commit round. Touched logs sync in parallel — the wait
	// is the slowest shard, not the sum.
	if opts.Durability != DurabilityAsync {
		mark = ws.now()
		werrs := make([]error, nShards)
		var wg sync.WaitGroup
		for i := range lsns {
			if lsns[i] == 0 {
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if opts.Durability == DurabilitySync {
					werrs[i] = db.wals[i].SyncNow(lsns[i])
				} else {
					werrs[i] = db.wals[i].Sync(lsns[i])
				}
			}(i)
		}
		wg.Wait()
		ws.stage(stageFsyncWait, ws.since(mark))
		for i, werr := range werrs {
			if werr != nil {
				return db.health.note(fmt.Errorf("dynq: wal commit (shard %d): %w", i, werr))
			}
		}
	}
	return db.health.note(nil)
}

// BulkLoad partitions the segment set by owner shard and bulk-loads every
// shard in parallel, replacing current contents. The db must be empty.
//
// Deprecated: the map form loses insertion order. Use BulkLoadUpdates.
func (db *ShardedDB) BulkLoad(segs map[ObjectID][]Segment) error {
	return db.BulkLoadUpdates(sortedUpdates(segs))
}

// BulkLoadUpdates is BulkLoadCtx without a context: the order-preserving
// bulk load form sharing MotionUpdate with ApplyUpdates.
func (db *ShardedDB) BulkLoadUpdates(updates []MotionUpdate) error {
	return db.BulkLoadCtx(context.Background(), updates, WriteOptions{})
}

// BulkLoadCtx bulk-loads an ordered batch into every shard in parallel,
// replacing current contents; the database must be empty and the batch
// must contain no deletions. Unlike the per-shard data writes it holds
// the database lock exclusively: every shard's tree is swapped at once.
func (db *ShardedDB) BulkLoadCtx(ctx context.Context, updates []MotionUpdate, opts WriteOptions) error {
	ctx, finish := opts.begin(ctx, db.engine.CostSnapshot)
	defer finish()
	entries := make([]rtree.LeafEntry, len(updates))
	for i, u := range updates {
		if u.Delete {
			return fmt.Errorf("dynq: BulkLoad batch contains a deletion (object %d); deletions need an existing index", u.ID)
		}
		g, err := toSegmentDims(u.Segment, db.dims)
		if err != nil {
			return err
		}
		entries[i] = rtree.LeafEntry{ID: rtree.ObjectID(u.ID), Seg: g}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.health.gate(); err != nil {
		return err
	}
	return db.health.note(db.engine.BulkLoad(entries))
}

// Snapshot answers one spatio-temporal range query across all shards.
func (db *ShardedDB) Snapshot(view Rect, t0, t1 float64) ([]Result, error) {
	return db.SnapshotCtx(context.Background(), view, t0, t1, QueryOptions{})
}

// SnapshotCtx is Snapshot with cooperative cancellation and per-query
// options; every shard's traversal checks the context at node-visit
// granularity.
func (db *ShardedDB) SnapshotCtx(ctx context.Context, view Rect, t0, t1 float64, opts QueryOptions) ([]Result, error) {
	box, err := toBoxDims(view, db.dims)
	if err != nil {
		return nil, err
	}
	ctx, finish := opts.begin(ctx, db.engine.CostSnapshot)
	defer finish()
	db.mu.RLock()
	defer db.mu.RUnlock()
	ms, err := db.engine.Snapshot(ctx, box, geom.Interval{Lo: t0, Hi: t1}, opts.Limit)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(ms))
	for i, m := range ms {
		out[i] = Result{
			ID:        ObjectID(m.ID),
			Segment:   fromSegment(m.Seg),
			Appear:    m.Overlap.Lo,
			Disappear: m.Overlap.Hi,
		}
	}
	return out, nil
}

// KNN returns the k objects nearest to point at time t, k-way merging the
// per-shard best-first searches.
func (db *ShardedDB) KNN(point []float64, t float64, k int) ([]Neighbor, error) {
	return db.KNNCtx(context.Background(), point, t, k, QueryOptions{})
}

// KNNCtx is KNN with cooperative cancellation and per-query options.
func (db *ShardedDB) KNNCtx(ctx context.Context, point []float64, t float64, k int, opts QueryOptions) ([]Neighbor, error) {
	if opts.Limit > 0 && opts.Limit < k {
		k = opts.Limit
	}
	ctx, finish := opts.begin(ctx, db.engine.CostSnapshot)
	defer finish()
	db.mu.RLock()
	defer db.mu.RUnlock()
	nbs, err := db.engine.KNN(ctx, geom.Point(point), t, k)
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, len(nbs))
	for i, n := range nbs {
		out[i] = Neighbor{ID: ObjectID(n.ID), Segment: fromSegment(n.Seg), Dist: n.Dist}
	}
	return out, nil
}

// Within finds every pair of objects whose positions at time t lie within
// delta of each other, running the per-shard self-joins and all
// cross-shard joins in parallel. Pairs are reported once, with A < B.
func (db *ShardedDB) Within(delta, t float64) ([]Pair, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	pairs, err := db.engine.SelfJoin(delta, t)
	if err != nil {
		return nil, err
	}
	return fromJoinPairs(pairs), nil
}

// JoinWith finds every pair (a ∈ db, b ∈ other) within delta of each
// other at time t. Both databases must have the same dimensionality.
// Only the receiver is read-locked; concurrent writes to other
// synchronize at its index level, so they may land mid-join.
func (db *ShardedDB) JoinWith(other *ShardedDB, delta, t float64) ([]Pair, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	pairs, err := db.engine.CrossJoin(other.engine, delta, t)
	if err != nil {
		return nil, err
	}
	return fromJoinPairs(pairs), nil
}

func fromJoinPairs(pairs []core.JoinPair) []Pair {
	out := make([]Pair, len(pairs))
	for i, p := range pairs {
		out[i] = Pair{
			A: ObjectID(p.A), B: ObjectID(p.B),
			SegmentA: fromSegment(p.SegA), SegmentB: fromSegment(p.SegB),
			Dist: p.Dist,
		}
	}
	return out
}

// ShardedPredictiveSession is a predictive dynamic query over a sharded
// database: one per-shard cursor each, merged in order of appearance.
// Not safe for concurrent use by multiple goroutines.
type ShardedPredictiveSession struct {
	pdq *shard.PDQ
}

// PredictiveQuery registers an observer trajectory and starts a
// predictive dynamic query over every shard.
func (db *ShardedDB) PredictiveQuery(waypoints []Waypoint, opts PredictiveOptions) (*ShardedPredictiveSession, error) {
	traj, err := buildTrajectory(waypoints, db.dims, opts.Slack)
	if err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	pdq, err := db.engine.NewPDQ(traj, core.PDQOptions{
		LiveUpdates:        opts.Live,
		RebuildOnRootSplit: opts.RebuildOnRootSplit,
	})
	if err != nil {
		return nil, err
	}
	return &ShardedPredictiveSession{pdq: pdq}, nil
}

// Next returns the next object becoming visible during [t0, t1] across
// all shards, or nil when no further object appears in that window.
func (s *ShardedPredictiveSession) Next(t0, t1 float64) (*Result, error) {
	r, err := s.pdq.GetNext(t0, t1)
	if err != nil || r == nil {
		return nil, err
	}
	out := fromResult(*r)
	return &out, nil
}

// Fetch returns every object becoming visible during [t0, t1].
func (s *ShardedPredictiveSession) Fetch(t0, t1 float64) ([]Result, error) {
	rs, err := s.pdq.Drain(t0, t1)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = fromResult(r)
	}
	return out, nil
}

// Close releases every per-shard cursor.
func (s *ShardedPredictiveSession) Close() { s.pdq.Close() }

// ShardedNonPredictiveSession is a non-predictive dynamic query over a
// sharded database. Not safe for concurrent use by multiple goroutines.
type ShardedNonPredictiveSession struct {
	db   *ShardedDB
	npdq *shard.NPDQ
}

// NonPredictiveQuery starts a non-predictive dynamic query session with
// one per-shard sub-session.
func (db *ShardedDB) NonPredictiveQuery(opts NonPredictiveOptions) *ShardedNonPredictiveSession {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return &ShardedNonPredictiveSession{
		db: db,
		npdq: db.engine.NewNPDQ(core.NPDQOptions{
			TrackIDs:     opts.TrackIDs,
			ExactAnswers: opts.ExactAnswers,
		}),
	}
}

// Snapshot evaluates the next snapshot of the dynamic query on every
// shard in parallel and returns the additional answers not delivered by
// the previous snapshot.
func (s *ShardedNonPredictiveSession) Snapshot(view Rect, t0, t1 float64) ([]Result, error) {
	box, err := toBoxDims(view, s.db.dims)
	if err != nil {
		return nil, err
	}
	rs, err := s.npdq.Next(box, geom.Interval{Lo: t0, Hi: t1})
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = fromResult(r)
	}
	return out, nil
}

// Reset forgets every shard's previous snapshot (observer teleported).
func (s *ShardedNonPredictiveSession) Reset() { s.npdq.Reset() }

// ShardedAdaptiveSession is an adaptive dynamic query over a sharded
// database; each shard predicts and hands off independently. Not safe
// for concurrent use.
type ShardedAdaptiveSession struct {
	db *ShardedDB
	a  *shard.Adaptive
}

// AdaptiveQuery starts an adaptive dynamic query session.
func (db *ShardedDB) AdaptiveQuery(opts AdaptiveOptions) (*ShardedAdaptiveSession, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	a, err := db.engine.NewAdaptive(core.AdaptiveOptions{
		Slack:        opts.Slack,
		Horizon:      opts.Horizon,
		StableFrames: opts.StableFrames,
	})
	if err != nil {
		return nil, err
	}
	return &ShardedAdaptiveSession{db: db, a: a}, nil
}

// Frame reports the observer's actual view for one frame and returns the
// newly visible objects, merged across shards.
func (s *ShardedAdaptiveSession) Frame(view Rect, t0, t1 float64) ([]Result, error) {
	box, err := toBoxDims(view, s.db.dims)
	if err != nil {
		return nil, err
	}
	rs, err := s.a.Frame(box, geom.Interval{Lo: t0, Hi: t1})
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = fromResult(r)
	}
	return out, nil
}

// Predictive reports whether every shard session is currently running on
// a predicted trajectory.
func (s *ShardedAdaptiveSession) Predictive() bool { return s.a.Predictive() }

// Handoffs reports the PDQ↔NPDQ switches summed across shards.
func (s *ShardedAdaptiveSession) Handoffs() int { return s.a.Switches() }

// Close releases every shard session.
func (s *ShardedAdaptiveSession) Close() { s.a.Close() }

// CountSeries evaluates the continuous COUNT(*) of a moving view, summing
// the per-shard series evaluated in parallel.
func (db *ShardedDB) CountSeries(waypoints []Waypoint, times []float64) ([]int, error) {
	traj, err := buildTrajectory(waypoints, db.dims, nil)
	if err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.engine.CountSeries(traj, times)
}

// Predictive starts a predictive dynamic query in the interface form
// shared with DB.
func (db *ShardedDB) Predictive(waypoints []Waypoint, opts PredictiveOptions) (PredictiveCursor, error) {
	return db.PredictiveQuery(waypoints, opts)
}

// NonPredictive starts a non-predictive session in the interface form
// shared with DB.
func (db *ShardedDB) NonPredictive(opts NonPredictiveOptions) NonPredictiveCursor {
	return db.NonPredictiveQuery(opts)
}

// Adaptive starts an adaptive session in the interface form shared with
// DB.
func (db *ShardedDB) Adaptive(opts AdaptiveOptions) (AdaptiveCursor, error) {
	return db.AdaptiveQuery(opts)
}

// CostSnapshot returns the cost counters summed across shards.
func (db *ShardedDB) CostSnapshot() stats.Snapshot { return db.engine.CostSnapshot() }

// Cost returns the accumulated query cost counters summed across shards.
func (db *ShardedDB) Cost() CostReport { return costReport(db.engine.CostSnapshot()) }

// ShardCost returns shard i's own accumulated cost counters.
func (db *ShardedDB) ShardCost(i int) CostReport { return costReport(db.engine.ShardCost(i)) }

// ResetCost zeroes every shard's cost counters.
func (db *ShardedDB) ResetCost() { db.engine.ResetCost() }

func costReport(s stats.Snapshot) CostReport {
	return CostReport{
		DiskReads:     s.Reads(),
		LeafReads:     s.LeafReads,
		InternalReads: s.InternalReads,
		DistanceComps: s.DistanceComps,
		Results:       s.Results,
	}
}

// BufferStats reports the buffer-pool accounting summed across shards.
func (db *ShardedDB) BufferStats() BufferStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out BufferStats
	for i := 0; i < db.engine.Shards(); i++ {
		b := db.shardBufferStats(i)
		out.Hits += b.Hits
		out.Misses += b.Misses
		out.Evictions += b.Evictions
		out.WriteBacks += b.WriteBacks
		out.Len += b.Len
		out.Capacity += b.Capacity
	}
	return out
}

// ShardBufferStats reports shard i's own buffer-pool accounting.
func (db *ShardedDB) ShardBufferStats(i int) BufferStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.shardBufferStats(i)
}

func (db *ShardedDB) shardBufferStats(i int) BufferStats {
	p := db.engine.Shard(i).Tree.Pool()
	return BufferStats{
		Hits:       p.Hits(),
		Misses:     p.Misses(),
		Evictions:  p.Evictions(),
		WriteBacks: p.WriteBacks(),
		Len:        p.Len(),
		Capacity:   p.Capacity(),
	}
}

// BufferSegments reports per-segment buffer-pool accounting summed
// across shards by segment index (every shard's pool has the same
// segment layout).
func (db *ShardedDB) BufferSegments() []BufferSegmentStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []BufferSegmentStats
	for i := 0; i < db.engine.Shards(); i++ {
		segs := db.engine.Shard(i).Tree.Pool().SegmentStats()
		if out == nil {
			out = make([]BufferSegmentStats, len(segs))
		}
		for j, s := range segs {
			if j >= len(out) {
				break
			}
			out[j].Hits += s.Hits
			out[j].Misses += s.Misses
			out[j].Len += s.Len
			out[j].Capacity += s.Capacity
		}
	}
	return out
}

// Stats walks every shard and reports the aggregate index shape: node and
// segment counts summed, height and fanout taken as the maximum, fill
// factors weighted by node count.
func (db *ShardedDB) Stats() (IndexStats, error) {
	per, err := db.StatsByShard()
	if err != nil {
		return IndexStats{}, err
	}
	var out IndexStats
	var leafFill, intFill float64
	for _, st := range per {
		out.Segments += st.Segments
		out.LeafNodes += st.LeafNodes
		out.InternalNodes += st.InternalNodes
		if st.Height > out.Height {
			out.Height = st.Height
		}
		if st.LeafFanout > out.LeafFanout {
			out.LeafFanout = st.LeafFanout
		}
		if st.IntFanout > out.IntFanout {
			out.IntFanout = st.IntFanout
		}
		leafFill += st.AvgLeafFill * float64(st.LeafNodes)
		intFill += st.AvgIntFill * float64(st.InternalNodes)
	}
	if out.LeafNodes > 0 {
		out.AvgLeafFill = leafFill / float64(out.LeafNodes)
	}
	if out.InternalNodes > 0 {
		out.AvgIntFill = intFill / float64(out.InternalNodes)
	}
	return out, nil
}

// StatsByShard walks every shard and reports the per-shard index shapes,
// in shard order.
func (db *ShardedDB) StatsByShard() ([]IndexStats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	per, err := db.engine.Stats()
	if err != nil {
		return nil, err
	}
	out := make([]IndexStats, len(per))
	for i, st := range per {
		out[i] = IndexStats{
			Height:        st.Height,
			Segments:      st.Segments,
			LeafNodes:     st.LeafNodes,
			InternalNodes: st.InternalNodes,
			LeafFanout:    st.MaxLeafFan,
			IntFanout:     st.MaxIntFan,
			AvgLeafFill:   st.AvgLeafFill,
			AvgIntFill:    st.AvgIntFill,
		}
	}
	return out, nil
}

// Validate checks every shard's structural invariants (tests/tools).
func (db *ShardedDB) Validate() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.engine.Validate()
}

// RegisterMetrics exposes the per-shard gauges and fan-out latency
// histograms through a metric registry.
func (db *ShardedDB) RegisterMetrics(reg *obs.Registry) { db.engine.Register(reg) }

// Compile-time check: both database flavors present the same surface.
var (
	_ Database = (*DB)(nil)
	_ Database = (*ShardedDB)(nil)
)
