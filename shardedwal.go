package dynq

// Per-shard write-ahead logging for the sharded engine.
//
// A sharded database at Path owns one page file and one log sidecar per
// shard:
//
//	<Path>.shard0       <Path>.shard0.wal
//	<Path>.shard1       <Path>.shard1.wal
//	...                 ...
//
// Each log covers exactly its shard: a write batch splits by owner
// shard, each sub-batch appends to its shard's log as one record under
// that shard's write lock, and recovery replays each log against its
// shard file independently. There is no cross-shard ordering in the
// logs and none is needed — an object lives on exactly one shard, so a
// record on shard i never depends on state held by shard j.
//
// Sync checkpoints the logs shard by shard with the same discipline as
// the single-tree DB: flush the shard's dirty pages, commit its
// metadata carrying the shard log's highest applied LSN, then truncate
// the log to that LSN. Taking the database lock exclusively excludes
// every writer (writers hold it shared), which is what Checkpoint's
// no-concurrent-Append precondition requires.

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"dynq/internal/geom"
	"dynq/internal/obs"
	"dynq/internal/pager"
	"dynq/internal/rtree"
	"dynq/internal/shard"
	"dynq/internal/wal"
)

// ShardRecoverOptions tune OpenShardedRecover. Shards is required and
// must match the count the database was created with; everything else
// mirrors RecoverOptions per shard.
type ShardRecoverOptions struct {
	// Shards is the number of partitions the database was created with.
	// A mismatch against the on-disk shard file set is an error: objects
	// are placed by hash-mod-shards, so opening under a different count
	// would silently misroute every lookup.
	Shards int
	// Workers bounds the worker pool (see ShardOptions.Workers).
	Workers int
	// WAL force-arms a log sidecar per shard (created when missing,
	// replayed when not). Without it, logs are auto-detected: if ANY
	// "<path>.shard<i>.wal" exists, every shard is armed — a database is
	// logged as a whole or not at all.
	WAL bool
	// GroupCommitWindow is each armed log's coalescing window (see
	// Options.GroupCommitWindow).
	GroupCommitWindow time.Duration
	// BufferPages gives every shard its own LRU page buffer (see
	// Options.BufferPages); defaults to the WAL buffering floor when
	// logs are armed.
	BufferPages int
	// DegradeAfter is the consecutive-write-failure threshold (see
	// Options.DegradeAfter).
	DegradeAfter int
	// Maintenance configures the self-healing maintenance loop (see
	// Options.Maintenance).
	Maintenance MaintenanceOptions
}

// OpenShardedRecover reopens a sharded database created by OpenSharded
// with Options.Path, verifying each shard's page file through the same
// recovery machinery as OpenFileRecover and replaying each shard's log
// sidecar independently. The returned reports describe the per-shard
// verification in shard order (MergeRecoveryReports folds them into one
// for single-report consumers).
//
// When no shard files exist yet the database is created fresh — so a
// server can point at a path and get create-or-recover semantics — and
// the returned reports are nil.
func OpenShardedRecover(path string, opts ShardRecoverOptions) (*ShardedDB, []*RecoveryReport, error) {
	if path == "" {
		return nil, nil, fmt.Errorf("dynq: OpenShardedRecover requires a path")
	}
	if opts.Shards < 1 {
		return nil, nil, fmt.Errorf("dynq: ShardRecoverOptions.Shards must be >= 1, got %d", opts.Shards)
	}
	if opts.BufferPages < 0 {
		return nil, nil, fmt.Errorf("dynq: ShardRecoverOptions.BufferPages must be >= 0, got %d", opts.BufferPages)
	}
	existing, err := existingShardFiles(path)
	if err != nil {
		return nil, nil, err
	}
	if len(existing) == 0 {
		db, err := OpenSharded(ShardOptions{
			Options: Options{
				Path:              path,
				GroupCommitWindow: opts.GroupCommitWindow,
				BufferPages:       opts.BufferPages,
				DegradeAfter:      opts.DegradeAfter,
				Maintenance:       opts.Maintenance,
			},
			Shards:  opts.Shards,
			Workers: opts.Workers,
			WAL:     opts.WAL,
		})
		return db, nil, err
	}
	if len(existing) != opts.Shards {
		return nil, nil, fmt.Errorf("dynq: database at %q was created with %d shards, opened with %d: the shard count cannot change (objects are placed by hash mod shards, so a different count would misroute them); reopen with -shards %d or rebuild",
			path, len(existing), opts.Shards, len(existing))
	}

	// Recover every shard's page file first; only then decide on logs.
	trees := make([]*rtree.Tree, opts.Shards)
	stores := make([]pager.Store, opts.Shards)
	appliedLSNs := make([]uint64, opts.Shards)
	reps := make([]*RecoveryReport, opts.Shards)
	var cfg rtree.Config
	closeAll := func() {
		for _, s := range stores {
			if s != nil {
				s.Close()
			}
		}
	}
	for i := 0; i < opts.Shards; i++ {
		fs, err := pager.OpenFileStore(shardFilePath(path, i))
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("dynq: open shard %d: %w", i, err)
		}
		tree, m, lsn, rep, err := recoverStoreTree(fs, fs)
		if err != nil {
			fs.Close()
			closeAll()
			return nil, nil, fmt.Errorf("dynq: recover shard %d: %w", i, err)
		}
		if i == 0 {
			cfg = m.Config
		} else if m.Config != cfg {
			fs.Close()
			closeAll()
			return nil, nil, fmt.Errorf("%w: shard %d config %+v disagrees with shard 0 config %+v", ErrCorrupt, i, m.Config, cfg)
		}
		trees[i], stores[i], appliedLSNs[i], reps[i] = tree, fs, lsn, rep
	}

	// Logs arm as a set: the WAL flag forces them, otherwise any existing
	// sidecar arms all shards (creating the missing ones), so the write
	// path never has to reason about a half-logged database.
	armed := opts.WAL
	if !armed {
		for i := 0; i < opts.Shards && !armed; i++ {
			if _, serr := os.Stat(shardWALPath(path, i)); serr == nil {
				armed = true
			}
		}
	}
	bufferPages := opts.BufferPages
	if armed && bufferPages == 0 {
		bufferPages = defaultWALBufferPages
	}
	if bufferPages > 0 {
		for _, tree := range trees {
			if err := tree.UseBuffer(bufferPages); err != nil {
				closeAll()
				return nil, nil, err
			}
		}
	}

	var wals []*wal.Log
	if armed {
		wals = make([]*wal.Log, opts.Shards)
		for i := 0; i < opts.Shards; i++ {
			w, err := replayShardWAL(shardWALPath(path, i), opts.GroupCommitWindow,
				trees[i], cfg.Dims, i, opts.Shards, appliedLSNs[i], reps[i])
			if err != nil {
				for _, lw := range wals {
					if lw != nil {
						lw.Close()
					}
				}
				closeAll()
				return nil, nil, err
			}
			wals[i] = w
		}
	}

	engine, err := shard.NewFromShards(cfg, shard.Options{
		Shards:      opts.Shards,
		Workers:     opts.Workers,
		BufferPages: bufferPages,
	}, trees, stores)
	if err != nil {
		for _, w := range wals {
			if w != nil {
				w.Close()
			}
		}
		closeAll()
		return nil, nil, err
	}
	db := &ShardedDB{engine: engine, dims: cfg.Dims, path: path, wals: wals, recovery: reps}
	db.health.after = int32(opts.DegradeAfter)
	for _, rep := range reps {
		rep.journal()
	}
	db.maint = startMaintainer(db, opts.Maintenance)
	return db, reps, nil
}

// replayShardWAL opens (or creates) shard i's log, replays every record
// past the shard's committed applied-LSN onto its tree, and returns the
// armed log. Replay happens before the engine exists, so no locking is
// needed. Every replayed object must place on this shard — a record
// routing elsewhere means the log was written under a different shard
// count, and replaying it would materialize objects on the wrong shard.
func replayShardWAL(walPath string, window time.Duration, tree *rtree.Tree,
	dims, shardIdx, shardCount int, appliedLSN uint64, rep *RecoveryReport) (*wal.Log, error) {
	w, scan, err := wal.Open(walPath, wal.Options{GroupCommitWindow: window})
	if err != nil {
		return nil, fmt.Errorf("dynq: open wal (shard %d): %w", shardIdx, err)
	}
	records, updates := 0, 0
	err = w.Replay(appliedLSN, func(lsn uint64, payload []byte) error {
		ups, derr := decodeUpdates(payload, dims)
		if derr != nil {
			return fmt.Errorf("%w: shard %d wal record %d: %v", ErrCorrupt, shardIdx, lsn, derr)
		}
		segs := make([]geom.Segment, len(ups))
		for i, u := range ups {
			if got := shard.Place(rtree.ObjectID(u.ID), shardCount); got != shardIdx {
				return fmt.Errorf("%w: shard %d wal record %d routes object %d to shard %d — log written under a different shard count?",
					ErrCorrupt, shardIdx, lsn, u.ID, got)
			}
			if u.Delete {
				continue
			}
			g, serr := toSegmentDims(u.Segment, dims)
			if serr != nil {
				return fmt.Errorf("%w: shard %d wal record %d: %v", ErrCorrupt, shardIdx, lsn, serr)
			}
			segs[i] = g
		}
		if aerr := applyToTree(tree, ups, segs, true); aerr != nil {
			return fmt.Errorf("dynq: shard %d wal replay record %d: %w", shardIdx, lsn, aerr)
		}
		records++
		updates += len(ups)
		return nil
	})
	if err != nil {
		w.Close()
		return nil, err
	}
	if rep != nil {
		rep.WALArmed = true
		rep.WALCheckpointLSN = scan.Checkpoint
		rep.WALRecordsReplayed = records
		rep.WALUpdatesReplayed = updates
		rep.WALTornTail = scan.TornTail
	}
	if records > 0 || scan.TornTail {
		sev := obs.SeverityInfo
		if scan.TornTail {
			sev = obs.SeverityWarn
		}
		obs.DefaultJournal().Record(obs.EventWALReplay, sev,
			fmt.Sprintf("shard %d wal replay: %d records (%d updates) past checkpoint %d, torn tail: %v",
				shardIdx, records, updates, scan.Checkpoint, scan.TornTail),
			map[string]string{
				"shard":       strconv.Itoa(shardIdx),
				"records":     strconv.Itoa(records),
				"updates":     strconv.Itoa(updates),
				"checkpoint":  strconv.FormatUint(scan.Checkpoint, 10),
				"torn_tail":   strconv.FormatBool(scan.TornTail),
				"last_lsn":    strconv.FormatUint(scan.LastLSN, 10),
				"applied_lsn": strconv.FormatUint(appliedLSN, 10),
			})
	}
	return w, nil
}

// MergeRecoveryReports folds per-shard reports into one database-level
// report for consumers built around a single report (dqserver's
// dynq_recovery_* gauges): counts sum, repair flags OR, and HeaderSeq is
// the maximum. A nil or empty slice yields nil.
func MergeRecoveryReports(reps []*RecoveryReport) *RecoveryReport {
	var out *RecoveryReport
	for _, r := range reps {
		if r == nil {
			continue
		}
		if out == nil {
			cp := *r
			out = &cp
			continue
		}
		if r.HeaderSeq > out.HeaderSeq {
			out.HeaderSeq = r.HeaderSeq
		}
		out.TornHeaderRepaired = out.TornHeaderRepaired || r.TornHeaderRepaired
		out.PagesChecked += r.PagesChecked
		out.LeafPages += r.LeafPages
		out.InternalPages += r.InternalPages
		out.Segments += r.Segments
		out.FreePages += r.FreePages
		out.FreeListRebuilt = out.FreeListRebuilt || r.FreeListRebuilt
		out.OrphanPages += r.OrphanPages
		out.WALArmed = out.WALArmed || r.WALArmed
		out.WALCheckpointLSN += r.WALCheckpointLSN
		out.WALRecordsReplayed += r.WALRecordsReplayed
		out.WALUpdatesReplayed += r.WALUpdatesReplayed
		out.WALTornTail = out.WALTornTail || r.WALTornTail
	}
	return out
}

// LastRecovery returns the per-shard reports from the OpenShardedRecover
// that produced this database, nil for a fresh or in-memory database.
func (db *ShardedDB) LastRecovery() []*RecoveryReport { return db.recovery }

// WALArmed reports whether the database carries per-shard logs.
func (db *ShardedDB) WALArmed() bool { return db.wals != nil }

// Sync persists every shard and checkpoints its log, shard by shard:
// flush the shard's dirty pages, commit its metadata carrying the
// shard log's highest applied LSN (atomic dual-header commit), then
// truncate the log to that LSN. The database lock is held exclusively —
// writers hold it shared, so this exclusion is exactly Checkpoint's
// no-concurrent-Append precondition, with no per-shard lock juggling.
//
// A crash between shard i's commit and shard j's leaves shard j's log
// longer than necessary, never inconsistent: each shard's metadata and
// log agree pairwise, and recovery replays each pair independently.
//
// Failures follow the single-tree rules: with logs armed, a failed
// stage degrades the database to read-only immediately (a log whose
// checkpoint cannot advance grows without bound behind silent retries);
// without logs it feeds the ordinary consecutive-failure counter.
func (db *ShardedDB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.health.gate(); err != nil {
		return err
	}
	return db.syncLocked()
}

// syncLocked is Sync's body without the degraded-mode gate, under the
// already-held exclusive lock; the maintenance probe commits through it
// while the database is still degraded.
func (db *ShardedDB) syncLocked() error {
	start := time.Now()
	var truncated int64
	for i := 0; i < db.engine.Shards(); i++ {
		n, err := db.syncShardLocked(i)
		if err != nil {
			return err
		}
		truncated += n
	}
	if db.wals != nil {
		obs.DefaultJournal().Record(obs.EventCheckpoint, obs.SeverityInfo,
			"sharded wal checkpoint committed; logs truncated",
			map[string]string{
				"shards":          strconv.Itoa(db.engine.Shards()),
				"truncated_bytes": strconv.FormatInt(truncated, 10),
				"duration":        time.Since(start).String(),
			})
	}
	return db.health.note(nil)
}

// syncShardLocked flushes, commits, and checkpoints ONE shard under the
// exclusively held database lock, returning the log bytes truncated. It
// is the unit both Sync and the auto-checkpoint policy are built from —
// the policy checkpoints only the shards whose logs crossed a threshold,
// worst lag first, instead of paying for all of them.
func (db *ShardedDB) syncShardLocked(i int) (int64, error) {
	sh := db.engine.Shard(i)
	var lsn uint64
	if db.wals != nil {
		lsn = db.wals[i].LastLSN()
	}
	if err := sh.Tree.Pool().Flush(); err != nil {
		return 0, db.syncShardFailure(i, "flush pages", err)
	}
	if s, ok := sh.Store().(auxStore); ok {
		if err := s.SetAux(encodeMeta(sh.Tree.Meta(), lsn)); err != nil {
			return 0, db.syncShardFailure(i, "stage metadata", err)
		}
	}
	if err := sh.Store().Sync(); err != nil {
		return 0, db.syncShardFailure(i, "commit", err)
	}
	var truncated int64
	if db.wals != nil {
		truncated = db.wals[i].LiveBytes()
		if err := db.wals[i].Checkpoint(lsn); err != nil {
			return 0, db.syncShardFailure(i, "wal checkpoint", err)
		}
	}
	return truncated, nil
}

// syncShardFailure classifies a failed Sync stage on one shard,
// mirroring the single-tree syncFailure rules.
func (db *ShardedDB) syncShardFailure(i int, stage string, cause error) error {
	err := wrapDiskFull(fmt.Errorf("dynq: shard %d %s: %w", i, stage, cause))
	if db.wals == nil {
		return db.health.note(err)
	}
	obs.DefaultJournal().Record(obs.EventSyncFailure, obs.SeverityError,
		"sharded checkpoint sync failed with WALs armed; degrading to read-only",
		map[string]string{"shard": strconv.Itoa(i), "stage": stage, "error": cause.Error()})
	db.health.set(true)
	return err
}

// WALInfoByShard reports each shard log's header state in shard order;
// ok is false when the database runs without logs.
func (db *ShardedDB) WALInfoByShard() ([]WALInfo, bool) {
	if db.wals == nil {
		return nil, false
	}
	out := make([]WALInfo, len(db.wals))
	for i, w := range db.wals {
		out[i] = WALInfo{
			Path:          w.Path(),
			Epoch:         w.Epoch(),
			LastLSN:       w.LastLSN(),
			DurableLSN:    w.DurableLSN(),
			CheckpointLSN: w.CheckpointLSN(),
			LiveRecords:   w.CheckpointLag(),
			LiveBytes:     w.LiveBytes(),
			Size:          w.Size(),
		}
	}
	return out, true
}

// WALTelemetry aggregates the per-shard logs into one WAL telemetry
// section (see obs.MergeWALTelemetry for the aggregation rules: totals
// sum, quantiles report the worst shard). ok is false without logs. It
// satisfies the same optional capability the netq server probes on the
// single-tree DB, so a sharded server exports the ingest panel
// unchanged.
func (db *ShardedDB) WALTelemetry(windows []time.Duration) (obs.WALTelemetry, bool) {
	if db.wals == nil {
		return obs.WALTelemetry{}, false
	}
	var agg obs.WALTelemetry
	for i, w := range db.wals {
		t := w.Telemetry(windows)
		if i == 0 {
			agg = t
		} else {
			agg = obs.MergeWALTelemetry(agg, t)
		}
	}
	agg.Path = db.path + ".shard*.wal"
	agg.Logs = len(db.wals)
	return agg, true
}

// RegisterWALMetrics exposes every shard log's instrumentation in a
// registry, one {shard="i"}-labeled series per log, reporting whether
// logs were present to register.
func (db *ShardedDB) RegisterWALMetrics(reg *obs.Registry) bool {
	if db.wals == nil {
		return false
	}
	for i, w := range db.wals {
		w.RegisterMetricsLabeled(reg, obs.L("shard", strconv.Itoa(i)))
	}
	return true
}
