package dynq

import (
	"encoding/binary"
	"fmt"

	"dynq/internal/pager"
	"dynq/internal/rtree"
)

// The database's shape metadata is stored in the page file's header so a
// file-backed database can be reopened:
//
//	offset 0  1 byte  format version (1)
//	offset 1  1 byte  spatial dimensionality
//	offset 2  1 byte  dual-time flag
//	offset 3  1 byte  split policy
//	offset 4  4 bytes root page id
//	offset 8  4 bytes height
//	offset 12 8 bytes segment count
//	offset 20 8 bytes modification sequence
const metaVersion = 1

func encodeMeta(m rtree.Meta) []byte {
	buf := make([]byte, 28)
	buf[0] = metaVersion
	buf[1] = byte(m.Config.Dims)
	if m.Config.DualTime {
		buf[2] = 1
	}
	buf[3] = byte(m.Config.Split)
	binary.LittleEndian.PutUint32(buf[4:], uint32(m.Root))
	binary.LittleEndian.PutUint32(buf[8:], uint32(m.Height))
	binary.LittleEndian.PutUint64(buf[12:], uint64(m.Size))
	binary.LittleEndian.PutUint64(buf[20:], m.ModSeq)
	return buf
}

func decodeMeta(buf []byte) (rtree.Meta, error) {
	if len(buf) < 28 || buf[0] != metaVersion {
		return rtree.Meta{}, fmt.Errorf("dynq: page file has no (or incompatible) database metadata")
	}
	cfg := rtree.DefaultConfig()
	cfg.Dims = int(buf[1])
	cfg.DualTime = buf[2] == 1
	cfg.Split = rtree.SplitPolicy(buf[3])
	return rtree.Meta{
		Root:   pager.PageID(binary.LittleEndian.Uint32(buf[4:])),
		Height: int(binary.LittleEndian.Uint32(buf[8:])),
		Size:   int(binary.LittleEndian.Uint64(buf[12:])),
		ModSeq: binary.LittleEndian.Uint64(buf[20:]),
		Config: cfg,
	}, nil
}

// Sync persists index metadata and flushes pages. For a memory-backed
// database it is a no-op.
func (db *DB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.tree.Pool().Flush(); err != nil {
		return err
	}
	if fs, ok := db.store.(*pager.FileStore); ok {
		if err := fs.SetAux(encodeMeta(db.tree.Meta())); err != nil {
			return err
		}
	}
	return db.store.Sync()
}

// OpenFile reattaches a database previously created with Options.Path and
// persisted with Sync.
func OpenFile(path string) (*DB, error) {
	fs, err := pager.OpenFileStore(path)
	if err != nil {
		return nil, err
	}
	m, err := decodeMeta(fs.Aux())
	if err != nil {
		fs.Close()
		return nil, err
	}
	tree, err := rtree.Restore(m.Config, fs, m.Root, m.Height, m.Size, m.ModSeq)
	if err != nil {
		fs.Close()
		return nil, err
	}
	db := &DB{tree: tree, cfg: m.Config, store: fs}
	tree.SetCounters(&db.counters)
	return db, nil
}
