package dynq

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"time"

	"dynq/internal/obs"
	"dynq/internal/pager"
	"dynq/internal/rtree"
)

// The database's shape metadata is stored in the page file's header so a
// file-backed database can be reopened:
//
//	offset 0  1 byte  format version (2)
//	offset 1  1 byte  spatial dimensionality
//	offset 2  1 byte  dual-time flag
//	offset 3  1 byte  split policy
//	offset 4  4 bytes root page id
//	offset 8  4 bytes height
//	offset 12 8 bytes segment count
//	offset 20 8 bytes modification sequence
//	offset 28 8 bytes applied WAL LSN (version 2; every update with an
//	                  LSN at or below it is captured by the page commit,
//	                  so recovery replays only records above it)
//
// Version 1 files (28 bytes, no LSN field) remain readable: they predate
// the WAL, so their applied LSN is implicitly 0.
const (
	metaVersion1 = 1
	metaVersion  = 2
	metaLenV1    = 28
	metaLen      = 36
)

// maxMetaSegments bounds the plausible persisted segment count; a page
// file can hold at most NumPages * leaf fanout segments and PageIDs are
// 32-bit, so anything near 2^40 is corruption, not data.
const maxMetaSegments = 1 << 40

func encodeMeta(m rtree.Meta, appliedLSN uint64) []byte {
	buf := make([]byte, metaLen)
	buf[0] = metaVersion
	buf[1] = byte(m.Config.Dims)
	if m.Config.DualTime {
		buf[2] = 1
	}
	buf[3] = byte(m.Config.Split)
	binary.LittleEndian.PutUint32(buf[4:], uint32(m.Root))
	binary.LittleEndian.PutUint32(buf[8:], uint32(m.Height))
	binary.LittleEndian.PutUint64(buf[12:], uint64(m.Size))
	binary.LittleEndian.PutUint64(buf[20:], m.ModSeq)
	binary.LittleEndian.PutUint64(buf[28:], appliedLSN)
	return buf
}

// decodeMeta parses and VALIDATES persisted metadata. Every field is
// range-checked and cross-checked before an rtree.Config is built from
// it, so corrupt bytes surface as a descriptive error wrapping
// ErrCorrupt instead of a bogus tree shape. The second return is the
// applied WAL LSN (0 for version-1 files, which predate the WAL).
func decodeMeta(buf []byte) (rtree.Meta, uint64, error) {
	if len(buf) == 0 {
		return rtree.Meta{}, 0, fmt.Errorf("%w: page file carries no database metadata", ErrCorrupt)
	}
	if len(buf) < metaLenV1 {
		return rtree.Meta{}, 0, fmt.Errorf("%w: metadata truncated (%d bytes, want %d)", ErrCorrupt, len(buf), metaLenV1)
	}
	var appliedLSN uint64
	switch buf[0] {
	case metaVersion1:
	case metaVersion:
		if len(buf) < metaLen {
			return rtree.Meta{}, 0, fmt.Errorf("%w: metadata truncated (%d bytes, version 2 wants %d)", ErrCorrupt, len(buf), metaLen)
		}
		appliedLSN = binary.LittleEndian.Uint64(buf[28:])
	default:
		return rtree.Meta{}, 0, fmt.Errorf("%w: unsupported metadata version %d (want %d or %d)", ErrCorrupt, buf[0], metaVersion1, metaVersion)
	}
	dims := int(buf[1])
	if dims < 1 || dims > 8 {
		return rtree.Meta{}, 0, fmt.Errorf("%w: spatial dimensionality %d outside [1,8]", ErrCorrupt, dims)
	}
	if buf[2] > 1 {
		return rtree.Meta{}, 0, fmt.Errorf("%w: dual-time flag byte %d is not 0 or 1", ErrCorrupt, buf[2])
	}
	split := rtree.SplitPolicy(buf[3])
	switch split {
	case rtree.SplitQuadratic, rtree.SplitLinear, rtree.SplitRStarAxis:
	default:
		return rtree.Meta{}, 0, fmt.Errorf("%w: unknown split policy byte %d", ErrCorrupt, buf[3])
	}
	root := pager.PageID(binary.LittleEndian.Uint32(buf[4:]))
	height := binary.LittleEndian.Uint32(buf[8:])
	size := binary.LittleEndian.Uint64(buf[12:])
	if height > 255 {
		return rtree.Meta{}, 0, fmt.Errorf("%w: index height %d implausible (node levels are 8-bit)", ErrCorrupt, height)
	}
	if size > maxMetaSegments {
		return rtree.Meta{}, 0, fmt.Errorf("%w: segment count %d implausible", ErrCorrupt, size)
	}
	if (root == pager.InvalidPage) != (height == 0) {
		return rtree.Meta{}, 0, fmt.Errorf("%w: root page %d inconsistent with height %d", ErrCorrupt, root, height)
	}
	if height == 0 && size != 0 {
		return rtree.Meta{}, 0, fmt.Errorf("%w: empty index (height 0) claims %d segments", ErrCorrupt, size)
	}
	cfg := rtree.DefaultConfig()
	cfg.Dims = dims
	cfg.DualTime = buf[2] == 1
	cfg.Split = split
	return rtree.Meta{
		Root:   root,
		Height: int(height),
		Size:   int(size),
		ModSeq: binary.LittleEndian.Uint64(buf[20:]),
		Config: cfg,
	}, appliedLSN, nil
}

// auxStore is the optional store capability for persisting metadata in
// the page file header. FileStore implements it directly; FaultStore
// forwards to its inner store.
type auxStore interface {
	SetAux(data []byte) error
	Aux() []byte
}

// Sync persists index metadata and flushes pages; on a FileStore the
// commit is atomic (dual header slots), so a crash mid-Sync leaves the
// previous committed state intact. For a memory-backed database it is a
// no-op. With a WAL armed, a successful Sync also checkpoints the log:
// the metadata commit records the highest applied LSN, so the now
// redundant records are truncated away and recovery replays only what
// the page commit missed.
//
// Persistent storage failures eventually degrade the database to
// read-only (see Degraded) — and with a WAL armed, a single Sync failure
// degrades immediately: the log would otherwise grow unboundedly while
// silent retries mask a checkpoint that can never advance.
func (db *DB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writeGate(); err != nil {
		return err
	}
	return db.syncLocked()
}

// syncLocked is Sync's body without the degraded-mode gate, under the
// already-held exclusive lock. The maintenance loop uses it directly:
// auto-checkpoints run it through the gate via Sync, while the recovery
// probe must flush and commit exactly while the database is degraded.
func (db *DB) syncLocked() error {
	var lsn uint64
	if db.wal != nil {
		lsn = db.wal.LastLSN()
	}
	if err := db.tree.Pool().Flush(); err != nil {
		return db.syncFailure("flush pages", err)
	}
	if s, ok := db.store.(auxStore); ok {
		if err := s.SetAux(encodeMeta(db.tree.Meta(), lsn)); err != nil {
			return db.syncFailure("stage metadata", err)
		}
	}
	if err := db.store.Sync(); err != nil {
		return db.syncFailure("commit", err)
	}
	if db.wal != nil {
		truncated := db.wal.LiveBytes()
		start := time.Now()
		if err := db.wal.Checkpoint(lsn); err != nil {
			return db.syncFailure("wal checkpoint", err)
		}
		obs.DefaultJournal().Record(obs.EventCheckpoint, obs.SeverityInfo,
			"wal checkpoint committed; log truncated",
			map[string]string{
				"lsn":             strconv.FormatUint(lsn, 10),
				"truncated_bytes": strconv.FormatInt(truncated, 10),
				"duration":        time.Since(start).String(),
			})
	}
	return db.noteWriteResult(nil)
}

// syncFailure classifies a failed Sync stage. Without a WAL it feeds the
// ordinary consecutive-failure degradation counter. With a WAL armed it
// degrades the database to read-only IMMEDIATELY and journals the event:
// writers keep appending to a log whose checkpoint cannot advance, so
// "retry later" silently trades durability for an unbounded log.
func (db *DB) syncFailure(stage string, cause error) error {
	err := wrapDiskFull(fmt.Errorf("dynq: %s: %w", stage, cause))
	if db.wal == nil {
		return db.noteWriteResult(err)
	}
	obs.DefaultJournal().Record(obs.EventSyncFailure, obs.SeverityError,
		"checkpoint sync failed with WAL armed; degrading to read-only",
		map[string]string{"stage": stage, "error": cause.Error()})
	db.health.set(true)
	return err
}

// OpenFile reattaches a database previously created with Options.Path
// and persisted with Sync, running the same integrity verification as
// OpenFileRecover but discarding the report. A WAL sidecar at
// "<path>.wal" is detected, replayed, and re-armed automatically.
func OpenFile(path string) (*DB, error) {
	db, _, err := OpenFileRecover(path)
	return db, err
}
