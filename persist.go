package dynq

import (
	"encoding/binary"
	"fmt"

	"dynq/internal/pager"
	"dynq/internal/rtree"
)

// The database's shape metadata is stored in the page file's header so a
// file-backed database can be reopened:
//
//	offset 0  1 byte  format version (1)
//	offset 1  1 byte  spatial dimensionality
//	offset 2  1 byte  dual-time flag
//	offset 3  1 byte  split policy
//	offset 4  4 bytes root page id
//	offset 8  4 bytes height
//	offset 12 8 bytes segment count
//	offset 20 8 bytes modification sequence
const (
	metaVersion = 1
	metaLen     = 28
)

// maxMetaSegments bounds the plausible persisted segment count; a page
// file can hold at most NumPages * leaf fanout segments and PageIDs are
// 32-bit, so anything near 2^40 is corruption, not data.
const maxMetaSegments = 1 << 40

func encodeMeta(m rtree.Meta) []byte {
	buf := make([]byte, metaLen)
	buf[0] = metaVersion
	buf[1] = byte(m.Config.Dims)
	if m.Config.DualTime {
		buf[2] = 1
	}
	buf[3] = byte(m.Config.Split)
	binary.LittleEndian.PutUint32(buf[4:], uint32(m.Root))
	binary.LittleEndian.PutUint32(buf[8:], uint32(m.Height))
	binary.LittleEndian.PutUint64(buf[12:], uint64(m.Size))
	binary.LittleEndian.PutUint64(buf[20:], m.ModSeq)
	return buf
}

// decodeMeta parses and VALIDATES persisted metadata. Every field is
// range-checked and cross-checked before an rtree.Config is built from
// it, so corrupt bytes surface as a descriptive error wrapping
// ErrCorrupt instead of a bogus tree shape.
func decodeMeta(buf []byte) (rtree.Meta, error) {
	if len(buf) == 0 {
		return rtree.Meta{}, fmt.Errorf("%w: page file carries no database metadata", ErrCorrupt)
	}
	if len(buf) < metaLen {
		return rtree.Meta{}, fmt.Errorf("%w: metadata truncated (%d bytes, want %d)", ErrCorrupt, len(buf), metaLen)
	}
	if buf[0] != metaVersion {
		return rtree.Meta{}, fmt.Errorf("%w: unsupported metadata version %d (want %d)", ErrCorrupt, buf[0], metaVersion)
	}
	dims := int(buf[1])
	if dims < 1 || dims > 8 {
		return rtree.Meta{}, fmt.Errorf("%w: spatial dimensionality %d outside [1,8]", ErrCorrupt, dims)
	}
	if buf[2] > 1 {
		return rtree.Meta{}, fmt.Errorf("%w: dual-time flag byte %d is not 0 or 1", ErrCorrupt, buf[2])
	}
	split := rtree.SplitPolicy(buf[3])
	switch split {
	case rtree.SplitQuadratic, rtree.SplitLinear, rtree.SplitRStarAxis:
	default:
		return rtree.Meta{}, fmt.Errorf("%w: unknown split policy byte %d", ErrCorrupt, buf[3])
	}
	root := pager.PageID(binary.LittleEndian.Uint32(buf[4:]))
	height := binary.LittleEndian.Uint32(buf[8:])
	size := binary.LittleEndian.Uint64(buf[12:])
	if height > 255 {
		return rtree.Meta{}, fmt.Errorf("%w: index height %d implausible (node levels are 8-bit)", ErrCorrupt, height)
	}
	if size > maxMetaSegments {
		return rtree.Meta{}, fmt.Errorf("%w: segment count %d implausible", ErrCorrupt, size)
	}
	if (root == pager.InvalidPage) != (height == 0) {
		return rtree.Meta{}, fmt.Errorf("%w: root page %d inconsistent with height %d", ErrCorrupt, root, height)
	}
	if height == 0 && size != 0 {
		return rtree.Meta{}, fmt.Errorf("%w: empty index (height 0) claims %d segments", ErrCorrupt, size)
	}
	cfg := rtree.DefaultConfig()
	cfg.Dims = dims
	cfg.DualTime = buf[2] == 1
	cfg.Split = split
	return rtree.Meta{
		Root:   root,
		Height: int(height),
		Size:   int(size),
		ModSeq: binary.LittleEndian.Uint64(buf[20:]),
		Config: cfg,
	}, nil
}

// auxStore is the optional store capability for persisting metadata in
// the page file header. FileStore implements it directly; FaultStore
// forwards to its inner store.
type auxStore interface {
	SetAux(data []byte) error
	Aux() []byte
}

// Sync persists index metadata and flushes pages; on a FileStore the
// commit is atomic (dual header slots), so a crash mid-Sync leaves the
// previous committed state intact. For a memory-backed database it is a
// no-op. Persistent storage failures eventually degrade the database to
// read-only (see Degraded).
func (db *DB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writeGate(); err != nil {
		return err
	}
	if err := db.tree.Pool().Flush(); err != nil {
		return db.noteWriteResult(fmt.Errorf("dynq: flush pages: %w", err))
	}
	if s, ok := db.store.(auxStore); ok {
		if err := s.SetAux(encodeMeta(db.tree.Meta())); err != nil {
			return db.noteWriteResult(fmt.Errorf("dynq: stage metadata: %w", err))
		}
	}
	if err := db.store.Sync(); err != nil {
		return db.noteWriteResult(fmt.Errorf("dynq: commit: %w", err))
	}
	return db.noteWriteResult(nil)
}

// OpenFile reattaches a database previously created with Options.Path
// and persisted with Sync, running the same integrity verification as
// OpenFileRecover but discarding the report.
func OpenFile(path string) (*DB, error) {
	db, _, err := OpenFileRecover(path)
	return db, err
}
