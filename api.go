package dynq

import (
	"context"
	"time"

	"dynq/internal/core"
	"dynq/internal/geom"
	"dynq/internal/rtree"
	"dynq/internal/stats"
)

// QueryOptions carries per-query knobs for the context-aware query entry
// points (SnapshotCtx, KNNCtx). The zero value means "no limit, no
// deadline, no stats" and matches the plain methods exactly. New knobs
// are added here rather than as new method parameters.
type QueryOptions struct {
	// Limit, when positive, caps the number of results returned. For
	// range queries the index traversal stops early once the cap is
	// reached; which results survive is deterministic for an unchanged
	// index but otherwise unspecified. For KNN it caps k.
	Limit int
	// Deadline, when positive, bounds the query's execution time: the
	// context is wrapped with this timeout and checked at node-visit
	// granularity, so an expired query returns context.DeadlineExceeded
	// within one page fetch.
	Deadline time.Duration
	// Stats, when non-nil, receives the query's cost-counter delta
	// (reads, distance computations, results, ...) when it completes.
	// Under concurrent queries on the same database the delta may include
	// work charged by overlapping operations.
	Stats func(stats.Snapshot)
}

// begin applies the per-query deadline and arms the stats sink against
// the database's cumulative cost snapshot; finish must be called
// (deferred) when the query completes.
func (o QueryOptions) begin(ctx context.Context, snap func() stats.Snapshot) (context.Context, func()) {
	cancel := func() {}
	if o.Deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, o.Deadline)
	}
	if o.Stats == nil {
		return ctx, cancel
	}
	before := snap()
	return ctx, func() {
		o.Stats(snap().Sub(before))
		cancel()
	}
}

// SnapshotCtx is Snapshot with cooperative cancellation and per-query
// options. The context is checked once per index node visited, so a
// cancelled or expired query stops within one page fetch.
func (db *DB) SnapshotCtx(ctx context.Context, view Rect, t0, t1 float64, opts QueryOptions) ([]Result, error) {
	box, err := db.toBox(view)
	if err != nil {
		return nil, err
	}
	ctx, finish := opts.begin(ctx, db.counters.Snapshot)
	defer finish()
	db.mu.RLock()
	defer db.mu.RUnlock()
	ms, err := db.tree.RangeSearchCtx(ctx, box, geom.Interval{Lo: t0, Hi: t1},
		rtree.SearchOptions{Limit: opts.Limit}, &db.counters)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(ms))
	for i, m := range ms {
		out[i] = Result{
			ID:        ObjectID(m.ID),
			Segment:   fromSegment(m.Seg),
			Appear:    m.Overlap.Lo,
			Disappear: m.Overlap.Hi,
		}
	}
	return out, nil
}

// KNNCtx is KNN with cooperative cancellation and per-query options.
func (db *DB) KNNCtx(ctx context.Context, point []float64, t float64, k int, opts QueryOptions) ([]Neighbor, error) {
	if opts.Limit > 0 && opts.Limit < k {
		k = opts.Limit
	}
	ctx, finish := opts.begin(ctx, db.counters.Snapshot)
	defer finish()
	db.mu.RLock()
	defer db.mu.RUnlock()
	nbs, err := core.KNNCtx(ctx, db.tree, geom.Point(point), t, k, &db.counters)
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, len(nbs))
	for i, n := range nbs {
		out[i] = Neighbor{ID: ObjectID(n.ID), Segment: fromSegment(n.Seg), Dist: n.Dist}
	}
	return out, nil
}

// PredictiveCursor is the predictive dynamic query session surface shared
// by *PredictiveSession (single tree) and *ShardedPredictiveSession.
type PredictiveCursor interface {
	Next(t0, t1 float64) (*Result, error)
	Fetch(t0, t1 float64) ([]Result, error)
	Close()
}

// NonPredictiveCursor is the non-predictive session surface shared by
// *NonPredictiveSession and *ShardedNonPredictiveSession.
type NonPredictiveCursor interface {
	Snapshot(view Rect, t0, t1 float64) ([]Result, error)
	Reset()
}

// AdaptiveCursor is the adaptive session surface shared by
// *AdaptiveSession and *ShardedAdaptiveSession.
type AdaptiveCursor interface {
	Frame(view Rect, t0, t1 float64) ([]Result, error)
	Predictive() bool
	Close()
}

// Database is the query and write surface shared by *DB and *ShardedDB:
// everything a server needs to answer the protocol's operations without
// knowing whether one tree or many stand behind it.
type Database interface {
	Insert(id ObjectID, seg Segment) error
	InsertCtx(ctx context.Context, id ObjectID, seg Segment, opts WriteOptions) error
	Delete(id ObjectID, t0 float64) error
	DeleteCtx(ctx context.Context, id ObjectID, t0 float64, opts WriteOptions) error
	// ApplyUpdates applies a batch of motion updates as one write: the
	// high-rate ingest path. See the concrete types for atomicity and
	// durability semantics.
	ApplyUpdates(ctx context.Context, updates []MotionUpdate, opts WriteOptions) error
	BulkLoadUpdates(updates []MotionUpdate) error
	BulkLoadCtx(ctx context.Context, updates []MotionUpdate, opts WriteOptions) error
	Snapshot(view Rect, t0, t1 float64) ([]Result, error)
	SnapshotCtx(ctx context.Context, view Rect, t0, t1 float64, opts QueryOptions) ([]Result, error)
	KNN(point []float64, t float64, k int) ([]Neighbor, error)
	KNNCtx(ctx context.Context, point []float64, t float64, k int, opts QueryOptions) ([]Neighbor, error)
	Predictive(waypoints []Waypoint, opts PredictiveOptions) (PredictiveCursor, error)
	NonPredictive(opts NonPredictiveOptions) NonPredictiveCursor
	Adaptive(opts AdaptiveOptions) (AdaptiveCursor, error)
	Stats() (IndexStats, error)
	CostSnapshot() stats.Snapshot
	BufferStats() BufferStats
	BufferSegments() []BufferSegmentStats
	// Degraded reports whether the database entered read-only mode after
	// persistent storage write failures (mutations return ErrReadOnly).
	Degraded() bool
	// SetReadOnly manually enters or clears read-only mode.
	SetReadOnly(on bool)
	Close() error
}

// Predictive starts a predictive dynamic query and returns it as the
// interface form shared with ShardedDB (PredictiveQuery returns the
// concrete session).
func (db *DB) Predictive(waypoints []Waypoint, opts PredictiveOptions) (PredictiveCursor, error) {
	return db.PredictiveQuery(waypoints, opts)
}

// NonPredictive starts a non-predictive session in the interface form
// shared with ShardedDB.
func (db *DB) NonPredictive(opts NonPredictiveOptions) NonPredictiveCursor {
	return db.NonPredictiveQuery(opts)
}

// Adaptive starts an adaptive session in the interface form shared with
// ShardedDB.
func (db *DB) Adaptive(opts AdaptiveOptions) (AdaptiveCursor, error) {
	return db.AdaptiveQuery(opts)
}
