package dynq

import (
	"context"
	"time"

	"dynq/internal/obs"
)

// writeSpanOp names the traced span covering one ApplyUpdates batch. It
// is a child of the netq request's op span, so a trace read from
// /debug/trace?trace=<id> shows client → apply-updates → write stages.
const writeSpanOp = "write.apply-updates"

// Write stage names, in pipeline order.
const (
	stageValidate  = "validate"   // segment conversion + delete balance check
	stageWALAppend = "wal-append" // encoding + buffered pwrite of the batch record
	stageTreeApply = "tree-apply" // index mutation under the write lock
	stageFsyncWait = "fsync-wait" // durability wait (group commit) outside the lock
)

// writeSpan instruments one ApplyUpdates batch. When the context carries
// a tracer (the netq server threads one per request), the batch is
// recorded as a traced span with per-stage wall-time deltas, continuing
// the client's 128-bit trace id exactly as read queries do. Without a
// tracer every method is a no-op and the write path pays nothing.
type writeSpan struct {
	tracer *obs.Tracer
	tc     obs.TraceContext
	start  time.Time
	stages []obs.StageDelta
}

func beginWriteSpan(ctx context.Context) writeSpan {
	tracer, ok := obs.TracerFromContext(ctx)
	if !ok {
		return writeSpan{}
	}
	ws := writeSpan{tracer: tracer, start: time.Now()}
	if tc, ok := obs.TraceFromContext(ctx); ok {
		ws.tc = tc.Child()
	} else {
		ws.tc = obs.NewTraceContext()
	}
	return ws
}

// now returns the current time when tracing is active and the zero time
// otherwise, so stage marks cost nothing on untraced writes.
func (w *writeSpan) now() time.Time {
	if w.tracer == nil {
		return time.Time{}
	}
	return time.Now()
}

// since measures the elapsed time from a mark taken with now.
func (w *writeSpan) since(mark time.Time) time.Duration {
	if w.tracer == nil {
		return 0
	}
	return time.Since(mark)
}

// stage appends one stage's wall-time attribution.
func (w *writeSpan) stage(name string, d time.Duration) {
	if w.tracer == nil {
		return
	}
	w.stages = append(w.stages, obs.TimedStage(name, d))
}

// finish records the span: batch size, outcome, and the stages measured
// before the batch succeeded or bailed.
func (w *writeSpan) finish(updates int, err error) {
	if w.tracer == nil {
		return
	}
	span := obs.Span{
		Op:      writeSpanOp,
		Shard:   obs.NoShard,
		Start:   w.start,
		WallNS:  time.Since(w.start).Nanoseconds(),
		Results: updates,
		Stages:  w.stages,
	}
	if err != nil {
		span.Err = err.Error()
	}
	w.tc.Annotate(&span)
	w.tracer.Record(span)
}
