package dynq

import (
	"math"
	"testing"
)

func TestWithinSelfJoin(t *testing.T) {
	db := newTestDB(t, Options{})
	// A tight cluster of three and a loner.
	for i, pos := range [][2]float64{{10, 10}, {10.5, 10}, {10, 10.8}, {90, 90}} {
		err := db.Insert(ObjectID(i), Segment{
			T0: 0, T1: 10,
			From: []float64{pos[0], pos[1]}, To: []float64{pos[0], pos[1]},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	pairs, err := db.Within(1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 { // (0,1), (0,2), (1,2)
		t.Fatalf("pairs = %v", pairs)
	}
	for _, p := range pairs {
		if p.A >= p.B {
			t.Errorf("pair not normalized: %v", p)
		}
		if p.Dist > 1.0 {
			t.Errorf("pair too far: %v", p)
		}
		if p.A == 3 || p.B == 3 {
			t.Errorf("loner joined: %v", p)
		}
	}
}

func TestJoinWithOtherDB(t *testing.T) {
	trucks := newTestDB(t, Options{})
	zones := newTestDB(t, Options{})
	if err := trucks.Insert(1, Segment{T0: 0, T1: 10, From: []float64{0, 0}, To: []float64{20, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := zones.Insert(7, Segment{T0: 0, T1: 10, From: []float64{10, 1}, To: []float64{10, 1}}); err != nil {
		t.Fatal(err)
	}
	// Truck reaches x=10 at t=5; distance to the zone is 1 there.
	pairs, err := trucks.JoinWith(zones, 1.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].A != 1 || pairs[0].B != 7 {
		t.Fatalf("pairs = %v", pairs)
	}
	if math.Abs(pairs[0].Dist-1) > 1e-6 {
		t.Errorf("dist = %g, want 1", pairs[0].Dist)
	}
	// At t=0 the truck is 10+ away: no pair.
	pairs, err = trucks.JoinWith(zones, 1.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Errorf("unexpected pairs at t=0: %v", pairs)
	}
}

func TestCountSeries(t *testing.T) {
	db := newTestDB(t, Options{})
	// Five static objects spread along x = 0, 10, 20, 30, 40 at y=5.
	for i := 0; i < 5; i++ {
		err := db.Insert(ObjectID(i), Segment{
			T0: 0, T1: 100,
			From: []float64{float64(i * 10), 5}, To: []float64{float64(i * 10), 5},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// A 15-wide window sliding from x=[0,15] at t=0 to x=[30,45] at t=30.
	wps := []Waypoint{
		{T: 0, View: Rect{Min: []float64{0, 0}, Max: []float64{15, 10}}},
		{T: 30, View: Rect{Min: []float64{30, 0}, Max: []float64{45, 10}}},
	}
	counts, err := db.CountSeries(wps, []float64{0, 15, 30})
	if err != nil {
		t.Fatal(err)
	}
	// t=0: objects at 0,10 → 2. t=15: window [15,30] → 20,30 → 2.
	// t=30: window [30,45] → 30,40 → 2.
	want := []int{2, 2, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("count[%d] = %d, want %d (counts=%v)", i, counts[i], want[i], counts)
		}
	}
	if _, err := db.CountSeries(wps, []float64{40}); err == nil {
		t.Error("sample beyond the trajectory should be rejected")
	}
	if _, err := db.CountSeries([]Waypoint{{T: 0, View: Rect{Min: []float64{0}, Max: []float64{1}}}}, []float64{0}); err == nil {
		t.Error("bad waypoint rect should be rejected")
	}
}

func TestAdaptiveSessionAPI(t *testing.T) {
	db := newTestDB(t, Options{})
	populate(t, db, 80, 9)
	sess, err := db.AdaptiveQuery(AdaptiveOptions{Slack: 1, Horizon: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.Predictive() {
		t.Error("session should start non-predictive")
	}
	x := 10.0
	delivered := 0
	for f := 0; f < 40; f++ {
		t0 := 5 + float64(f)*0.5
		x += 0.4
		rs, err := sess.Frame(Rect{Min: []float64{x, 30}, Max: []float64{x + 10, 40}}, t0, t0+0.5)
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		delivered += len(rs)
	}
	if !sess.Predictive() {
		t.Error("steady motion should end in predictive mode")
	}
	if sess.Handoffs() == 0 {
		t.Error("expected at least one hand-off")
	}
	if delivered == 0 {
		t.Error("session delivered nothing")
	}
	if _, err := sess.Frame(Rect{Min: []float64{0}, Max: []float64{1}}, 100, 101); err == nil {
		t.Error("bad rect should be rejected")
	}
	if _, err := db.AdaptiveQuery(AdaptiveOptions{}); err == nil {
		t.Error("zero options should be rejected")
	}
}
