package dynq

import (
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"dynq/internal/obs"
)

// ErrReadOnly is returned by mutating operations once the database has
// degraded to read-only mode after persistent storage write failures (or
// after SetReadOnly(true)). Queries keep working; writes fail fast until
// the operator clears the condition or the maintenance probe heals it.
var ErrReadOnly = errors.New("dynq: database is read-only (degraded after storage write failures)")

// ErrDiskFull wraps write failures caused by an exhausted volume
// (ENOSPC), from either the page store or the WAL. It is carried over
// the wire with its own error kind so clients can tell "the server's
// disk is full" from a generic storage failure; the maintenance probe
// clears the resulting degraded mode automatically once space returns.
var ErrDiskFull = errors.New("dynq: disk full")

// wrapDiskFull stamps ErrDiskFull onto ENOSPC-rooted failures so they
// stay detectable after the generic write-path wrapping.
func wrapDiskFull(err error) error {
	if err == nil || !errors.Is(err, syscall.ENOSPC) || errors.Is(err, ErrDiskFull) {
		return err
	}
	return fmt.Errorf("%w: %w", ErrDiskFull, err)
}

// defaultDegradeAfter is the number of CONSECUTIVE storage write
// failures that trips degraded mode when Options.DegradeAfter is 0.
const defaultDegradeAfter = 3

// degradeState tracks consecutive storage write failures and the
// degraded (read-only) flag. It is embedded by DB and ShardedDB; all
// methods are safe for concurrent use.
type degradeState struct {
	degraded   atomic.Bool
	writeFails atomic.Int32
	after      int32 // 0: default threshold; <0: never degrade
}

// gate returns ErrReadOnly when the database is degraded. Mutating
// operations call it before doing any work.
func (d *degradeState) gate() error {
	if d.degraded.Load() {
		return ErrReadOnly
	}
	return nil
}

// note records the outcome of a storage-touching write: success resets
// the consecutive-failure counter, failure advances it and trips
// degraded mode at the threshold. ENOSPC-rooted failures come back
// stamped with ErrDiskFull; other errors return unchanged, so callers
// can `return db.noteWriteResult(err)`.
func (d *degradeState) note(err error) error {
	if err == nil {
		d.writeFails.Store(0)
		return nil
	}
	err = wrapDiskFull(err)
	n := d.writeFails.Add(1)
	limit := d.after
	if limit == 0 {
		limit = defaultDegradeAfter
	}
	if limit > 0 && n >= limit && d.degraded.CompareAndSwap(false, true) {
		obs.DefaultJournal().Record(obs.EventDegradedEnter, obs.SeverityError,
			"database degraded to read-only after consecutive storage write failures",
			map[string]string{
				"consecutive_failures": strconv.Itoa(int(n)),
				"last_error":           err.Error(),
			})
	}
	return err
}

// trip enters degraded mode directly (no failure-count threshold) with
// a caller-supplied journal message — the scrubber's path when it finds
// unrepairable corruption.
func (d *degradeState) trip(msg string, fields map[string]string) {
	if d.degraded.CompareAndSwap(false, true) {
		obs.DefaultJournal().Record(obs.EventDegradedEnter, obs.SeverityError, msg, fields)
	}
}

// heal clears degraded mode from the maintenance probe path, journaling
// the exit with how many probes it took and how long writes were
// refused. Returns false when the database was not degraded (a racing
// manual clear).
func (d *degradeState) heal(probes int, downtime time.Duration) bool {
	if !d.degraded.CompareAndSwap(true, false) {
		return false
	}
	d.writeFails.Store(0)
	obs.DefaultJournal().Record(obs.EventDegradedExit, obs.SeverityInfo,
		"degraded mode cleared: maintenance probe wrote durably",
		map[string]string{
			"probes":   strconv.Itoa(probes),
			"downtime": downtime.Round(time.Millisecond).String(),
		})
	return true
}

// set forces the degraded flag; clearing it also resets the failure
// counter so one old failure doesn't immediately re-trip. Transitions in
// either direction leave an event-journal record.
func (d *degradeState) set(on bool) {
	if !on {
		d.writeFails.Store(0)
	}
	if d.degraded.Swap(on) == on {
		return
	}
	if on {
		obs.DefaultJournal().Record(obs.EventDegradedEnter, obs.SeverityError,
			"database set read-only", nil)
	} else {
		obs.DefaultJournal().Record(obs.EventDegradedExit, obs.SeverityInfo,
			"database left read-only mode", nil)
	}
}

// Degraded reports whether the database has entered read-only mode.
func (db *DB) Degraded() bool { return db.health.degraded.Load() }

// SetReadOnly manually enters (true) or clears (false) read-only mode.
// Clearing also forgets accumulated write failures.
func (db *DB) SetReadOnly(on bool) { db.health.set(on) }

func (db *DB) writeGate() error                { return db.health.gate() }
func (db *DB) noteWriteResult(err error) error { return db.health.note(err) }

// Degraded reports whether the database has entered read-only mode.
func (db *ShardedDB) Degraded() bool { return db.health.degraded.Load() }

// SetReadOnly manually enters (true) or clears (false) read-only mode.
// Clearing also forgets accumulated write failures.
func (db *ShardedDB) SetReadOnly(on bool) { db.health.set(on) }
