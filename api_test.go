package dynq

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"dynq/internal/stats"
)

// wideView covers the whole test population, so unlimited queries return
// plenty of results and Limit has something to cut.
var wideView = Rect{Min: []float64{0, 0}, Max: []float64{110, 110}}

func optionsFixture(t *testing.T) (*DB, *ShardedDB) {
	t.Helper()
	r := rand.New(rand.NewSource(7))
	return equivPair(t, randomPopulation(r, 200, 8), 3, true)
}

func TestQueryOptionsLimit(t *testing.T) {
	db, sdb := optionsFixture(t)
	ctx := context.Background()
	for name, q := range map[string]func(QueryOptions) (int, error){
		"db.SnapshotCtx": func(o QueryOptions) (int, error) {
			rs, err := db.SnapshotCtx(ctx, wideView, 1, 3, o)
			return len(rs), err
		},
		"sharded.SnapshotCtx": func(o QueryOptions) (int, error) {
			rs, err := sdb.SnapshotCtx(ctx, wideView, 1, 3, o)
			return len(rs), err
		},
		"db.KNNCtx": func(o QueryOptions) (int, error) {
			ns, err := db.KNNCtx(ctx, []float64{50, 50}, 2, 20, o)
			return len(ns), err
		},
		"sharded.KNNCtx": func(o QueryOptions) (int, error) {
			ns, err := sdb.KNNCtx(ctx, []float64{50, 50}, 2, 20, o)
			return len(ns), err
		},
	} {
		all, err := q(QueryOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if all <= 5 {
			t.Fatalf("%s: fixture too sparse (%d results), limit test vacuous", name, all)
		}
		capped, err := q(QueryOptions{Limit: 5})
		if err != nil {
			t.Fatalf("%s limited: %v", name, err)
		}
		if capped != 5 {
			t.Fatalf("%s: Limit=5 returned %d results", name, capped)
		}
	}
}

func TestQueryOptionsCancellation(t *testing.T) {
	db, sdb := optionsFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.SnapshotCtx(ctx, wideView, 1, 3, QueryOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("db.SnapshotCtx on cancelled ctx: %v", err)
	}
	if _, err := sdb.SnapshotCtx(ctx, wideView, 1, 3, QueryOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("sharded.SnapshotCtx on cancelled ctx: %v", err)
	}
	if _, err := db.KNNCtx(ctx, []float64{50, 50}, 2, 5, QueryOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("db.KNNCtx on cancelled ctx: %v", err)
	}
	if _, err := sdb.KNNCtx(ctx, []float64{50, 50}, 2, 5, QueryOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("sharded.KNNCtx on cancelled ctx: %v", err)
	}

	// An already-expired Deadline must surface as DeadlineExceeded even
	// with a background parent context.
	expired := QueryOptions{Deadline: time.Nanosecond}
	time.Sleep(time.Millisecond)
	if _, err := db.SnapshotCtx(context.Background(), wideView, 1, 3, expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("db.SnapshotCtx with expired deadline: %v", err)
	}
	if _, err := sdb.SnapshotCtx(context.Background(), wideView, 1, 3, expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("sharded.SnapshotCtx with expired deadline: %v", err)
	}
}

func TestQueryOptionsStatsSink(t *testing.T) {
	db, sdb := optionsFixture(t)
	check := func(name string, q func(QueryOptions) error) {
		var got stats.Snapshot
		called := false
		err := q(QueryOptions{Stats: func(s stats.Snapshot) { got = s; called = true }})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !called {
			t.Fatalf("%s: Stats sink never called", name)
		}
		if got.Reads() == 0 {
			t.Fatalf("%s: stats delta shows zero reads: %+v", name, got)
		}
		// The sink receives a delta, not the cumulative counters: a second
		// identical query must report roughly the same work, not double.
		first := got
		if err := q(QueryOptions{Stats: func(s stats.Snapshot) { got = s }}); err != nil {
			t.Fatalf("%s again: %v", name, err)
		}
		if got.Reads() > 2*first.Reads() {
			t.Fatalf("%s: second delta %d reads vs first %d — sink looks cumulative", name, got.Reads(), first.Reads())
		}
	}
	ctx := context.Background()
	check("db.SnapshotCtx", func(o QueryOptions) error {
		_, err := db.SnapshotCtx(ctx, wideView, 1, 3, o)
		return err
	})
	check("sharded.SnapshotCtx", func(o QueryOptions) error {
		_, err := sdb.SnapshotCtx(ctx, wideView, 1, 3, o)
		return err
	})
	check("db.KNNCtx", func(o QueryOptions) error {
		_, err := db.KNNCtx(ctx, []float64{50, 50}, 2, 10, o)
		return err
	})
	check("sharded.KNNCtx", func(o QueryOptions) error {
		_, err := sdb.KNNCtx(ctx, []float64{50, 50}, 2, 10, o)
		return err
	})
}
