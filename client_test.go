package dynq

import "testing"

// TestViewCacheDedupesReannouncement: a PDQ re-send of an episode the
// cache already holds — possible under concurrent insertion — must not
// double-count the episode, and a stale (smaller) re-sent Disappear must
// not shrink the cached deadline.
func TestViewCacheDedupesReannouncement(t *testing.T) {
	v := NewViewCache()
	v.Apply([]Result{{ID: 1, Appear: 0, Disappear: 20}})
	if v.Episodes() != 1 || v.Len() != 1 {
		t.Fatalf("episodes=%d len=%d after first announce", v.Episodes(), v.Len())
	}

	// Re-announcement of the same episode with a stale, earlier deadline.
	v.Apply([]Result{{ID: 1, Appear: 5, Disappear: 12}})
	if v.Episodes() != 1 {
		t.Errorf("re-announcement counted as new episode: %d", v.Episodes())
	}
	r, ok := v.Get(1)
	if !ok || r.Appear != 0 || r.Disappear != 20 {
		t.Errorf("merged episode = %+v, want [0,20] preserved", r)
	}
	// Deadline must still be 20: advancing past the stale deadline keeps
	// the object, advancing to the real one evicts it.
	if gone := v.Advance(12); len(gone) != 0 {
		t.Errorf("stale re-send shrank the deadline: evicted %v", gone)
	}
	if gone := v.Advance(20); len(gone) != 1 {
		t.Errorf("object not discarded at its disappearance time: %v", gone)
	}
}

// TestViewCacheExtendingReannouncement: a re-send that extends the open
// episode (the object stays visible longer than first computed) merges
// into it rather than opening a second episode.
func TestViewCacheExtendingReannouncement(t *testing.T) {
	v := NewViewCache()
	v.Apply([]Result{{ID: 7, Appear: 0, Disappear: 10}})
	v.Apply([]Result{{ID: 7, Appear: 8, Disappear: 25}})
	if v.Episodes() != 1 {
		t.Errorf("extension counted as new episode: %d", v.Episodes())
	}
	if r, _ := v.Get(7); r.Appear != 0 || r.Disappear != 25 {
		t.Errorf("merged episode = %+v, want [0,25]", r)
	}
}

// TestViewCacheReentryIsNewEpisode: after the object leaves the view
// (evicted at its disappearance time), a later announcement is a fresh
// visibility episode and counts as one.
func TestViewCacheReentryIsNewEpisode(t *testing.T) {
	v := NewViewCache()
	v.Apply([]Result{{ID: 3, Appear: 0, Disappear: 10}})
	if gone := v.Advance(10); len(gone) != 1 {
		t.Fatalf("advance to deadline evicted %d objects", len(gone))
	}
	v.Apply([]Result{{ID: 3, Appear: 30, Disappear: 40}})
	if v.Episodes() != 2 {
		t.Errorf("re-entry episodes = %d, want 2", v.Episodes())
	}
	if r, _ := v.Get(3); r.Appear != 30 || r.Disappear != 40 {
		t.Errorf("re-entry episode = %+v, want [30,40]", r)
	}

	// Even without eviction in between, an episode starting strictly
	// after the cached one ends is a new episode (replacing, not merging).
	v.Apply([]Result{{ID: 3, Appear: 50, Disappear: 60}})
	if v.Episodes() != 3 {
		t.Errorf("disjoint later episode = %d episodes, want 3", v.Episodes())
	}
	if r, _ := v.Get(3); r.Appear != 50 || r.Disappear != 60 {
		t.Errorf("replaced episode = %+v, want [50,60]", r)
	}
}
