package pager

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func fillPage(b byte) []byte {
	p := make([]byte, PageSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func testStoreRoundTrip(t *testing.T, s Store) {
	t.Helper()
	id1, err := s.Alloc()
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	id2, err := s.Alloc()
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	if id1 == id2 {
		t.Fatal("alloc returned duplicate ids")
	}
	if err := s.WritePage(id1, fillPage(0xAA)); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := s.WritePage(id2, fillPage(0xBB)); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, PageSize)
	if err := s.ReadPage(id1, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(buf, fillPage(0xAA)) {
		t.Error("page 1 corrupted")
	}
	if err := s.ReadPage(id2, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(buf, fillPage(0xBB)) {
		t.Error("page 2 corrupted")
	}
	if s.NumPages() != 2 {
		t.Errorf("NumPages = %d, want 2", s.NumPages())
	}
	// Freed pages are reused and zeroed.
	if err := s.Free(id1); err != nil {
		t.Fatalf("free: %v", err)
	}
	id3, err := s.Alloc()
	if err != nil {
		t.Fatalf("realloc: %v", err)
	}
	if id3 != id1 {
		t.Errorf("expected freed page %d to be reused, got %d", id1, id3)
	}
	if err := s.ReadPage(id3, buf); err != nil {
		t.Fatalf("read reused: %v", err)
	}
	if !bytes.Equal(buf, make([]byte, PageSize)) {
		t.Error("reused page not zeroed")
	}
	// Short buffers are rejected.
	if err := s.ReadPage(id3, make([]byte, 10)); !errors.Is(err, ErrBadPageData) {
		t.Errorf("short read buffer: %v", err)
	}
	if err := s.WritePage(id3, make([]byte, 10)); !errors.Is(err, ErrBadPageData) {
		t.Errorf("short write buffer: %v", err)
	}
	// Out-of-range access is rejected.
	if err := s.ReadPage(9999, buf); !errors.Is(err, ErrPageOutOfRange) {
		t.Errorf("out-of-range read: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Errorf("sync: %v", err)
	}
}

func TestMemStore(t *testing.T) {
	s := NewMemStore()
	testStoreRoundTrip(t, s)
	// Access to a freed page is an error in the mem store.
	id, _ := s.Alloc()
	s.Free(id)
	if err := s.ReadPage(id, make([]byte, PageSize)); !errors.Is(err, ErrPageFreed) {
		t.Errorf("freed read: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := s.Alloc(); !errors.Is(err, ErrClosed) {
		t.Errorf("alloc after close: %v", err)
	}
}

func TestFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.dynq")
	s, err := CreateFileStore(path)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	testStoreRoundTrip(t, s)
	if err := s.SetRoot(1); err != nil {
		t.Fatalf("set root: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Reopen: contents, free list and root survive.
	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s2.Close()
	if s2.Root() != 1 {
		t.Errorf("root = %d, want 1", s2.Root())
	}
	buf := make([]byte, PageSize)
	if err := s2.ReadPage(1, buf); err != nil {
		t.Fatalf("read after reopen: %v", err)
	}
	if !bytes.Equal(buf, fillPage(0xBB)) {
		t.Error("page 2 lost across reopen")
	}
}

func TestOpenFileStoreRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := writeJunk(path); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path); err == nil {
		t.Error("opening a non-page file should fail")
	}
	if _, err := OpenFileStore(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("opening a missing file should fail")
	}
}

func writeJunk(path string) error {
	s, err := CreateFileStore(path)
	if err != nil {
		return err
	}
	if err := s.Close(); err != nil {
		return err
	}
	// Corrupt the magic.
	f, err := openRaw(path)
	if err != nil {
		return err
	}
	defer f.Close()
	// Both header slots: a single bad slot is a recoverable torn commit.
	if _, err := f.WriteAt([]byte("NOTMAGIC"), 0); err != nil {
		return err
	}
	_, err = f.WriteAt([]byte("NOTMAGIC"), PageSize)
	return err
}

// A torn header commit — one corrupt slot — must not prevent opening:
// the other slot still holds the previous committed state.
func TestOpenFileStoreSurvivesTornHeaderSlot(t *testing.T) {
	for slot := 0; slot < headerSlots; slot++ {
		path := filepath.Join(t.TempDir(), "torn")
		s, err := CreateFileStore(path)
		if err != nil {
			t.Fatal(err)
		}
		id, err := s.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WritePage(id, fillPage(0xCD)); err != nil {
			t.Fatal(err)
		}
		if err := s.SetRoot(id); err != nil {
			t.Fatal(err)
		}
		// Sync then Close: two commits, so BOTH slots describe the
		// post-alloc state and either alone can open it.
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		f, err := openRaw(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte{0xFF, 0xFF, 0xFF, 0xFF}, int64(slot)*PageSize+100); err != nil {
			t.Fatal(err)
		}
		f.Close()
		s2, err := OpenFileStore(path)
		if err != nil {
			t.Fatalf("open with slot %d corrupted: %v", slot, err)
		}
		if s2.BothHeaderSlotsValid() {
			t.Errorf("slot %d: BothHeaderSlotsValid = true, want false", slot)
		}
		buf := make([]byte, PageSize)
		if err := s2.ReadPage(s2.Root(), buf); err != nil {
			t.Fatalf("slot %d: read root page: %v", slot, err)
		}
		if !bytes.Equal(buf, fillPage(0xCD)) {
			t.Errorf("slot %d: root page content lost", slot)
		}
		s2.Close()
	}
}

// Property: any interleaving of alloc/write/free against the MemStore and
// FileStore behaves identically to a map-based model.
func TestStoreModelProperty(t *testing.T) {
	dir := t.TempDir()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fs, err := CreateFileStore(filepath.Join(dir, "p"))
		if err != nil {
			return false
		}
		defer fs.Close()
		stores := []Store{NewMemStore(), fs}
		model := map[PageID][]byte{}
		var live []PageID
		for step := 0; step < 60; step++ {
			switch op := r.Intn(4); {
			case op == 0 || len(live) == 0: // alloc
				var ids []PageID
				for _, s := range stores {
					id, err := s.Alloc()
					if err != nil {
						return false
					}
					ids = append(ids, id)
				}
				if ids[0] != ids[1] {
					return false // both stores must allocate identically
				}
				model[ids[0]] = make([]byte, PageSize)
				live = append(live, ids[0])
			case op == 1: // write
				id := live[r.Intn(len(live))]
				p := fillPage(byte(r.Intn(256)))
				for _, s := range stores {
					if err := s.WritePage(id, p); err != nil {
						return false
					}
				}
				model[id] = p
			case op == 2: // read + compare
				id := live[r.Intn(len(live))]
				for _, s := range stores {
					buf := make([]byte, PageSize)
					if err := s.ReadPage(id, buf); err != nil {
						return false
					}
					if !bytes.Equal(buf, model[id]) {
						return false
					}
				}
			case op == 3: // free
				k := r.Intn(len(live))
				id := live[k]
				live = append(live[:k], live[k+1:]...)
				delete(model, id)
				for _, s := range stores {
					if err := s.Free(id); err != nil {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
