package pager

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// BufferPool caches pages of an underlying Store with LRU replacement and
// write-back of dirty frames. It tracks hits and misses so the ablation
// experiments can compare "naive + server-side LRU buffer" against the
// dynamic query algorithms.
//
// The pool is safe for concurrent use. Internally the capacity is split
// across independently locked LRU segments keyed by PageID, so parallel
// R-tree descents contend only when they touch pages in the same segment.
// Small pools (fewer than 2×segmentMinFrames frames) collapse to a single
// segment and behave exactly like a global LRU, which the deterministic
// eviction tests and the paper's tiny-buffer ablations rely on.
//
// Concurrent Gets of distinct pages never block each other beyond their
// segment lock. A Get racing a Put of the same page may observe either
// the old or the new contents; the index layer excludes that case by
// holding its writer lock across structural changes.
//
// A BufferPool with capacity 0 is a pass-through (every Get is a miss):
// this models the paper's experimental setting, where the server keeps no
// per-session buffer.
type BufferPool struct {
	store    Store
	capacity int
	segs     []*poolSegment

	// Accounting is atomic so a metrics endpoint can read live values
	// while queries are in flight.
	hits, misses, evictions, writeBacks atomic.Int64
	size                                atomic.Int64 // buffered frame count
}

// poolSegment is one independently locked slice of the pool: its own
// frame map, LRU list, and capacity share. Per-segment hit/miss counters
// feed the contention observability gauges.
type poolSegment struct {
	mu       sync.Mutex
	capacity int
	frames   map[PageID]*list.Element
	lru      *list.List // front = most recently used

	hits, misses atomic.Int64
}

type frame struct {
	id    PageID
	data  []byte
	dirty bool
}

// Segment sizing: a pool only splits once each segment would hold a
// useful number of frames, and never beyond maxSegments locks.
const (
	segmentMinFrames = 8
	maxSegments      = 16
)

func numSegments(capacity int) int {
	if capacity <= 0 {
		return 0
	}
	n := capacity / segmentMinFrames
	if n < 1 {
		n = 1
	}
	if n > maxSegments {
		n = maxSegments
	}
	return n
}

// NewBufferPool wraps store with an LRU buffer holding up to capacity
// pages.
func NewBufferPool(store Store, capacity int) *BufferPool {
	bp := &BufferPool{store: store, capacity: capacity}
	n := numSegments(capacity)
	bp.segs = make([]*poolSegment, n)
	for i := range bp.segs {
		segCap := capacity / n
		if i < capacity%n {
			segCap++
		}
		bp.segs[i] = &poolSegment{
			capacity: segCap,
			frames:   make(map[PageID]*list.Element),
			lru:      list.New(),
		}
	}
	return bp
}

// segment maps a page to its owning segment. Sequential page IDs spread
// round-robin, which keeps hot sibling nodes on different locks.
func (bp *BufferPool) segment(id PageID) *poolSegment {
	return bp.segs[int(uint32(id))%len(bp.segs)]
}

// Get returns the contents of a page. The returned slice must be treated
// as read-only; it stays valid until the page is evicted and re-read
// (writers install fresh buffers rather than mutating cached ones).
func (bp *BufferPool) Get(id PageID) ([]byte, error) {
	buf, _, err := bp.GetHit(id)
	return buf, err
}

// GetHit is Get plus a flag reporting whether the page was served from
// the buffer. The index layer uses the flag for its per-query cost
// counters; the pool-global Hits/Misses totals are not usable for that
// under concurrency.
func (bp *BufferPool) GetHit(id PageID) ([]byte, bool, error) {
	if bp.capacity == 0 {
		bp.misses.Add(1)
		buf := make([]byte, PageSize)
		if err := bp.store.ReadPage(id, buf); err != nil {
			return nil, false, err
		}
		return buf, false, nil
	}
	seg := bp.segment(id)
	seg.mu.Lock()
	if el, ok := seg.frames[id]; ok {
		seg.lru.MoveToFront(el)
		data := el.Value.(*frame).data
		seg.mu.Unlock()
		bp.hits.Add(1)
		seg.hits.Add(1)
		return data, true, nil
	}
	seg.mu.Unlock()
	bp.misses.Add(1)
	seg.misses.Add(1)
	buf := make([]byte, PageSize)
	if err := bp.store.ReadPage(id, buf); err != nil {
		return nil, false, err
	}
	seg.mu.Lock()
	defer seg.mu.Unlock()
	if el, ok := seg.frames[id]; ok {
		// Another goroutine cached the page while we read it; prefer the
		// pooled copy (it may hold a buffered write).
		seg.lru.MoveToFront(el)
		return el.Value.(*frame).data, false, nil
	}
	if err := bp.insertLocked(seg, &frame{id: id, data: buf}); err != nil {
		return nil, false, err
	}
	return buf, false, nil
}

// Put replaces the contents of a page. The write is buffered if the pool
// has capacity, otherwise it goes straight to the store. A buffered
// frame gets a fresh backing array, so slices handed out by earlier Gets
// keep their old contents instead of mutating under a concurrent reader.
func (bp *BufferPool) Put(id PageID, data []byte) error {
	if len(data) != PageSize {
		return ErrBadPageData
	}
	if bp.capacity == 0 {
		return bp.store.WritePage(id, data)
	}
	buf := make([]byte, PageSize)
	copy(buf, data)
	seg := bp.segment(id)
	seg.mu.Lock()
	defer seg.mu.Unlock()
	if el, ok := seg.frames[id]; ok {
		f := el.Value.(*frame)
		f.data = buf
		f.dirty = true
		seg.lru.MoveToFront(el)
		return nil
	}
	return bp.insertLocked(seg, &frame{id: id, data: buf, dirty: true})
}

// insertLocked adds a frame to seg, evicting from seg's own LRU tail as
// needed. Callers hold seg.mu.
func (bp *BufferPool) insertLocked(seg *poolSegment, f *frame) error {
	for seg.lru.Len() >= seg.capacity {
		if err := bp.evictOldestLocked(seg); err != nil {
			return err
		}
	}
	seg.frames[f.id] = seg.lru.PushFront(f)
	bp.size.Add(1)
	return nil
}

func (bp *BufferPool) evictOldestLocked(seg *poolSegment) error {
	el := seg.lru.Back()
	if el == nil {
		return fmt.Errorf("pager: buffer pool eviction with no frames")
	}
	f := el.Value.(*frame)
	if f.dirty {
		bp.writeBacks.Add(1)
		if err := bp.store.WritePage(f.id, f.data); err != nil {
			return err
		}
	}
	seg.lru.Remove(el)
	delete(seg.frames, f.id)
	bp.size.Add(-1)
	bp.evictions.Add(1)
	return nil
}

// Alloc allocates a fresh page in the underlying store.
func (bp *BufferPool) Alloc() (PageID, error) { return bp.store.Alloc() }

// Free drops any buffered frame for the page and releases it in the
// store.
func (bp *BufferPool) Free(id PageID) error {
	if bp.capacity > 0 {
		seg := bp.segment(id)
		seg.mu.Lock()
		if el, ok := seg.frames[id]; ok {
			seg.lru.Remove(el)
			delete(seg.frames, id)
			bp.size.Add(-1)
		}
		seg.mu.Unlock()
	}
	return bp.store.Free(id)
}

// Flush writes all dirty frames back to the store (frames stay cached).
// Every dirty frame is attempted even when some writes fail; the
// failures are aggregated with errors.Join, and a frame's dirty bit is
// cleared only after its own write succeeds, so a partial flush never
// strands unpersisted data behind a clean-looking frame.
func (bp *BufferPool) Flush() error {
	var errs []error
	for _, seg := range bp.segs {
		seg.mu.Lock()
		for el := seg.lru.Front(); el != nil; el = el.Next() {
			f := el.Value.(*frame)
			if !f.dirty {
				continue
			}
			bp.writeBacks.Add(1)
			if err := bp.store.WritePage(f.id, f.data); err != nil {
				errs = append(errs, fmt.Errorf("page %d: %w", f.id, err))
				continue
			}
			f.dirty = false
		}
		seg.mu.Unlock()
	}
	return errors.Join(errs...)
}

// Invalidate flushes and then drops every cached frame, so subsequent
// Gets hit the store again. If any write-back fails the frames are kept
// (dirty ones still dirty) and the error is returned, so no unpersisted
// data is dropped. The experiment harness calls this between queries
// when modelling a bufferless server.
func (bp *BufferPool) Invalidate() error {
	if err := bp.Flush(); err != nil {
		return err
	}
	for _, seg := range bp.segs {
		seg.mu.Lock()
		seg.lru.Init()
		clear(seg.frames)
		seg.mu.Unlock()
	}
	bp.size.Store(0)
	return nil
}

// ResetStats zeroes the hit/miss accounting, including the per-segment
// counters.
func (bp *BufferPool) ResetStats() {
	bp.hits.Store(0)
	bp.misses.Store(0)
	bp.evictions.Store(0)
	bp.writeBacks.Store(0)
	for _, seg := range bp.segs {
		seg.hits.Store(0)
		seg.misses.Store(0)
	}
}

// Hits reports Gets served from the buffer.
func (bp *BufferPool) Hits() int64 { return bp.hits.Load() }

// Misses reports Gets that went to the store.
func (bp *BufferPool) Misses() int64 { return bp.misses.Load() }

// Evictions reports frames displaced by LRU replacement.
func (bp *BufferPool) Evictions() int64 { return bp.evictions.Load() }

// WriteBacks reports dirty frames written to the store.
func (bp *BufferPool) WriteBacks() int64 { return bp.writeBacks.Load() }

// Len reports the number of currently buffered frames. Safe to call
// concurrently with pool operations.
func (bp *BufferPool) Len() int { return int(bp.size.Load()) }

// Capacity reports the pool's frame capacity.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// Segments reports the number of independently locked LRU segments
// (0 for a pass-through pool).
func (bp *BufferPool) Segments() int { return len(bp.segs) }

// SegmentStats is a point-in-time view of one pool segment, for the
// per-segment hit-ratio gauges.
type SegmentStats struct {
	Hits     int64
	Misses   int64
	Len      int
	Capacity int
}

// HitRatio is hits / (hits + misses), or 0 with no traffic.
func (s SegmentStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// SegmentStats snapshots every segment's counters in index order.
func (bp *BufferPool) SegmentStats() []SegmentStats {
	out := make([]SegmentStats, len(bp.segs))
	for i, seg := range bp.segs {
		seg.mu.Lock()
		n := seg.lru.Len()
		seg.mu.Unlock()
		out[i] = SegmentStats{
			Hits:     seg.hits.Load(),
			Misses:   seg.misses.Load(),
			Len:      n,
			Capacity: seg.capacity,
		}
	}
	return out
}
