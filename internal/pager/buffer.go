package pager

import (
	"container/list"
	"fmt"
	"sync/atomic"
)

// BufferPool caches pages of an underlying Store with LRU replacement and
// write-back of dirty frames. It tracks hits and misses so the ablation
// experiments can compare "naive + server-side LRU buffer" against the
// dynamic query algorithms.
//
// A BufferPool with capacity 0 is a pass-through (every Get is a miss):
// this models the paper's experimental setting, where the server keeps no
// per-session buffer.
type BufferPool struct {
	store    Store
	capacity int

	frames map[PageID]*list.Element
	lru    *list.List // front = most recently used

	// Accounting is atomic so a metrics endpoint can read live values
	// while the owning tree holds its structural lock.
	hits, misses, evictions, writeBacks atomic.Int64
	size                                atomic.Int64 // buffered frame count
}

type frame struct {
	id    PageID
	data  []byte
	dirty bool
}

// NewBufferPool wraps store with an LRU buffer holding up to capacity
// pages.
func NewBufferPool(store Store, capacity int) *BufferPool {
	return &BufferPool{
		store:    store,
		capacity: capacity,
		frames:   make(map[PageID]*list.Element),
		lru:      list.New(),
	}
}

// Get returns the contents of a page. The returned slice is only valid
// until the next call on the pool; callers must copy or decode
// immediately.
func (bp *BufferPool) Get(id PageID) ([]byte, error) {
	if el, ok := bp.frames[id]; ok {
		bp.hits.Add(1)
		bp.lru.MoveToFront(el)
		return el.Value.(*frame).data, nil
	}
	bp.misses.Add(1)
	buf := make([]byte, PageSize)
	if err := bp.store.ReadPage(id, buf); err != nil {
		return nil, err
	}
	if bp.capacity > 0 {
		if err := bp.insert(&frame{id: id, data: buf}); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// Put replaces the contents of a page. The write is buffered if the pool
// has capacity, otherwise it goes straight to the store.
func (bp *BufferPool) Put(id PageID, data []byte) error {
	if len(data) != PageSize {
		return ErrBadPageData
	}
	if el, ok := bp.frames[id]; ok {
		f := el.Value.(*frame)
		copy(f.data, data)
		f.dirty = true
		bp.lru.MoveToFront(el)
		return nil
	}
	if bp.capacity == 0 {
		return bp.store.WritePage(id, data)
	}
	buf := make([]byte, PageSize)
	copy(buf, data)
	return bp.insert(&frame{id: id, data: buf, dirty: true})
}

func (bp *BufferPool) insert(f *frame) error {
	for bp.lru.Len() >= bp.capacity {
		if err := bp.evictOldest(); err != nil {
			return err
		}
	}
	bp.frames[f.id] = bp.lru.PushFront(f)
	bp.size.Add(1)
	return nil
}

func (bp *BufferPool) evictOldest() error {
	el := bp.lru.Back()
	if el == nil {
		return fmt.Errorf("pager: buffer pool eviction with no frames")
	}
	f := el.Value.(*frame)
	if f.dirty {
		bp.writeBacks.Add(1)
		if err := bp.store.WritePage(f.id, f.data); err != nil {
			return err
		}
	}
	bp.lru.Remove(el)
	delete(bp.frames, f.id)
	bp.size.Add(-1)
	bp.evictions.Add(1)
	return nil
}

// Alloc allocates a fresh page in the underlying store.
func (bp *BufferPool) Alloc() (PageID, error) { return bp.store.Alloc() }

// Free drops any buffered frame for the page and releases it in the
// store.
func (bp *BufferPool) Free(id PageID) error {
	if el, ok := bp.frames[id]; ok {
		bp.lru.Remove(el)
		delete(bp.frames, id)
		bp.size.Add(-1)
	}
	return bp.store.Free(id)
}

// Flush writes all dirty frames back to the store (frames stay cached).
func (bp *BufferPool) Flush() error {
	for el := bp.lru.Front(); el != nil; el = el.Next() {
		f := el.Value.(*frame)
		if f.dirty {
			bp.writeBacks.Add(1)
			if err := bp.store.WritePage(f.id, f.data); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

// Invalidate flushes and then drops every cached frame, so subsequent
// Gets hit the store again. The experiment harness calls this between
// queries when modelling a bufferless server.
func (bp *BufferPool) Invalidate() error {
	if err := bp.Flush(); err != nil {
		return err
	}
	bp.lru.Init()
	clear(bp.frames)
	bp.size.Store(0)
	return nil
}

// ResetStats zeroes the hit/miss accounting.
func (bp *BufferPool) ResetStats() {
	bp.hits.Store(0)
	bp.misses.Store(0)
	bp.evictions.Store(0)
	bp.writeBacks.Store(0)
}

// Hits reports Gets served from the buffer.
func (bp *BufferPool) Hits() int64 { return bp.hits.Load() }

// Misses reports Gets that went to the store.
func (bp *BufferPool) Misses() int64 { return bp.misses.Load() }

// Evictions reports frames displaced by LRU replacement.
func (bp *BufferPool) Evictions() int64 { return bp.evictions.Load() }

// WriteBacks reports dirty frames written to the store.
func (bp *BufferPool) WriteBacks() int64 { return bp.writeBacks.Load() }

// Len reports the number of currently buffered frames. Safe to call
// concurrently with pool operations.
func (bp *BufferPool) Len() int { return int(bp.size.Load()) }

// Capacity reports the pool's frame capacity.
func (bp *BufferPool) Capacity() int { return bp.capacity }
