package pager

import (
	"path/filepath"
	"testing"
)

func BenchmarkMemStoreReadWrite(b *testing.B) {
	s := NewMemStore()
	id, _ := s.Alloc()
	page := fillPage(0x5A)
	buf := make([]byte, PageSize)
	b.SetBytes(2 * PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.WritePage(id, page); err != nil {
			b.Fatal(err)
		}
		if err := s.ReadPage(id, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFileStoreReadWrite(b *testing.B) {
	s, err := CreateFileStore(filepath.Join(b.TempDir(), "bench.pages"))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	id, _ := s.Alloc()
	page := fillPage(0x5A)
	buf := make([]byte, PageSize)
	b.SetBytes(2 * PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.WritePage(id, page); err != nil {
			b.Fatal(err)
		}
		if err := s.ReadPage(id, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBufferPoolHit(b *testing.B) {
	s := NewMemStore()
	bp := NewBufferPool(s, 64)
	var ids []PageID
	for i := 0; i < 32; i++ {
		id, _ := bp.Alloc()
		if err := bp.Put(id, fillPage(byte(i))); err != nil {
			b.Fatal(err)
		}
		ids = append(ids, id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bp.Get(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}
