package pager

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

func mustCreate(t *testing.T, path string) *FileStore {
	t.Helper()
	s, err := CreateFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustAllocWrite(t *testing.T, s Store, fill byte) PageID {
	t.Helper()
	id, err := s.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WritePage(id, fillPage(fill)); err != nil {
		t.Fatal(err)
	}
	return id
}

// A bit flipped anywhere in a page's stored bytes must surface as a
// typed ErrCorruptPage from ReadPage, and bump the process counter.
func TestFileStoreDetectsBitRot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	s := mustCreate(t, path)
	defer s.Close()
	id := mustAllocWrite(t, s, 0xA5)

	before := ChecksumFailures()
	if err := s.FlipBit(id, 12345); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	err := s.ReadPage(id, buf)
	if !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("ReadPage after bit flip = %v, want ErrCorruptPage", err)
	}
	var ce *CorruptPageError
	if !errors.As(err, &ce) || ce.ID != id {
		t.Fatalf("error %v does not carry page id %d", err, id)
	}
	if ChecksumFailures() <= before {
		t.Error("ChecksumFailures did not increase")
	}
}

// A torn write (prefix-only persistence) must also fail verification —
// including a tear inside the trailer itself.
func TestFileStoreDetectsTornWrite(t *testing.T) {
	for _, n := range []int{0, 1, 100, PageSize - 1, PageSize, PageSize + 8, physPageSize - 1} {
		path := filepath.Join(t.TempDir(), "db")
		s := mustCreate(t, path)
		id := mustAllocWrite(t, s, 0x11)
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := s.WritePageTorn(id, fillPage(0x22), n); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, PageSize)
		err := s.ReadPage(id, buf)
		// The invariant is "no silent partial page": a torn write either
		// reads back as typed corruption, or — when the tear landed
		// entirely outside the meaningful bytes — as exactly the old or
		// exactly the new page. Never a mix.
		switch {
		case errors.Is(err, ErrCorruptPage):
		case err == nil && bytes.Equal(buf, fillPage(0x11)):
		case err == nil && bytes.Equal(buf, fillPage(0x22)):
		default:
			t.Fatalf("n=%d: ReadPage = %v with mixed content", n, err)
		}
		s.Close()
	}
}

// Pages written after the last commit must carry epoch committedSeq+1;
// committed pages carry an epoch <= the committed sequence.
func TestFileStoreEpochs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	s := mustCreate(t, path)
	defer s.Close()
	a := mustAllocWrite(t, s, 0x01)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	seq := s.CommittedSeq()
	b := mustAllocWrite(t, s, 0x02)

	buf := make([]byte, PageSize)
	ea, err := s.ReadPageEpoch(a, buf)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := s.ReadPageEpoch(b, buf)
	if err != nil {
		t.Fatal(err)
	}
	if ea > seq {
		t.Errorf("committed page epoch %d > committed seq %d", ea, seq)
	}
	if eb != seq+1 {
		t.Errorf("post-commit page epoch = %d, want %d", eb, seq+1)
	}
}

// Crash discards everything staged since the last Sync: allocations,
// root, and aux revert on reopen.
func TestFileStoreCrashLosesUncommitted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	s := mustCreate(t, path)
	a := mustAllocWrite(t, s, 0x0A)
	if err := s.SetRoot(a); err != nil {
		t.Fatal(err)
	}
	if err := s.SetAux([]byte("committed")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// Staged but never committed.
	mustAllocWrite(t, s, 0x0B)
	if err := s.SetAux([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.NumPages(); got != 1 {
		t.Errorf("NumPages after crash = %d, want 1", got)
	}
	if got := string(s2.Aux()); got != "committed" {
		t.Errorf("Aux after crash = %q, want %q", got, "committed")
	}
	if s2.Root() != a {
		t.Errorf("Root after crash = %d, want %d", s2.Root(), a)
	}
}

// The free list survives commit, walks correctly, and can be rebuilt.
func TestFileStoreFreeList(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	s := mustCreate(t, path)
	var ids []PageID
	for i := 0; i < 5; i++ {
		ids = append(ids, mustAllocWrite(t, s, byte(i)))
	}
	for _, id := range []PageID{ids[1], ids[3]} {
		if err := s.Free(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	list, err := s2.FreeList()
	if err != nil {
		t.Fatal(err)
	}
	want := []PageID{ids[3], ids[1]} // LIFO
	if len(list) != len(want) || list[0] != want[0] || list[1] != want[1] {
		t.Fatalf("FreeList = %v, want %v", list, want)
	}

	if err := s2.ResetFreeList([]PageID{ids[1], ids[3], ids[0]}); err != nil {
		t.Fatal(err)
	}
	list, err = s2.FreeList()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 || list[0] != ids[1] || list[1] != ids[3] || list[2] != ids[0] {
		t.Fatalf("FreeList after rebuild = %v", list)
	}
	// Alloc pops the rebuilt head and zeroes it.
	id, err := s2.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id != ids[1] {
		t.Errorf("Alloc after rebuild = %d, want %d", id, ids[1])
	}
	buf := make([]byte, PageSize)
	if err := s2.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, PageSize)) {
		t.Error("reused page not zeroed")
	}
}

// Opening a v1-format file yields a descriptive error, not a crash or a
// misread.
func TestFileStoreRejectsV1Format(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old")
	s := mustCreate(t, path)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := openRaw(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte(fileMagicV1), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte(fileMagicV1), PageSize); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, err = OpenFileStore(path)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("old unchecksummed format")) {
		t.Fatalf("open v1 file = %v, want old-format error", err)
	}
}

// Both header slots corrupt (but right magic) → typed ErrCorruptHeader.
func TestFileStoreCorruptHeaderTyped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	s := mustCreate(t, path)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := openRaw(path)
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < headerSlots; slot++ {
		if _, err := f.WriteAt([]byte{0xFF, 0xFF}, int64(slot)*PageSize+hdrSeqOff); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	_, err = OpenFileStore(path)
	if !errors.Is(err, ErrCorruptHeader) {
		t.Fatalf("open with both slots corrupt = %v, want ErrCorruptHeader", err)
	}
}
