package pager

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

// patternPage makes a page-sized buffer with a recognizable byte pattern.
func patternPage(b byte) []byte {
	buf := make([]byte, PageSize)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

// TestBufferPoolFlushAttemptsEveryFrame pins the Flush failure contract:
// a failed write-back must not stop the flush, must leave exactly the
// failed frames dirty, and must surface every failure in the joined
// error.
func TestBufferPoolFlushAttemptsEveryFrame(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	bp := NewBufferPool(fs, 8)
	for i := 0; i < 3; i++ {
		if _, err := bp.Alloc(); err != nil {
			t.Fatal(err)
		}
		if err := bp.Put(PageID(i), patternPage(byte('a'+i))); err != nil {
			t.Fatal(err)
		}
	}

	// First write succeeds, the remaining two fail.
	fs.ArmWrites(2)
	err := bp.Flush()
	if err == nil {
		t.Fatal("Flush with injected write faults returned nil")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Flush error %v does not wrap ErrInjected", err)
	}
	if got := bp.WriteBacks(); got != 3 {
		t.Fatalf("Flush attempted %d write-backs, want 3 (every dirty frame)", got)
	}

	// Only the two failed frames stayed dirty: a second flush writes
	// exactly those, and the store ends up fully consistent.
	fs.Disarm()
	if err := bp.Flush(); err != nil {
		t.Fatalf("Flush after disarm: %v", err)
	}
	if got := bp.WriteBacks(); got != 5 {
		t.Fatalf("second Flush wrote %d frames cumulatively, want 5 (3 attempts + 2 retries)", got)
	}
	for i := 0; i < 3; i++ {
		buf := make([]byte, PageSize)
		if err := fs.Inner.ReadPage(PageID(i), buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, patternPage(byte('a'+i))) {
			t.Fatalf("page %d not persisted correctly after retried flush", i)
		}
	}
}

// TestBufferPoolInvalidateKeepsUnpersistedFrames verifies that a failed
// flush aborts Invalidate before any frame is dropped, so dirty data is
// never silently discarded.
func TestBufferPoolInvalidateKeepsUnpersistedFrames(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	bp := NewBufferPool(fs, 8)
	if _, err := bp.Alloc(); err != nil {
		t.Fatal(err)
	}
	if err := bp.Put(0, patternPage('x')); err != nil {
		t.Fatal(err)
	}

	fs.ArmWrites(1)
	if err := bp.Invalidate(); err == nil {
		t.Fatal("Invalidate with failing write-back returned nil")
	}
	if bp.Len() != 1 {
		t.Fatalf("failed Invalidate dropped frames: len=%d, want 1", bp.Len())
	}

	fs.Disarm()
	if err := bp.Invalidate(); err != nil {
		t.Fatalf("Invalidate after disarm: %v", err)
	}
	if bp.Len() != 0 {
		t.Fatalf("Invalidate left %d frames", bp.Len())
	}
	buf := make([]byte, PageSize)
	if err := fs.Inner.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, patternPage('x')) {
		t.Fatal("dirty frame lost across failed-then-retried Invalidate")
	}
}

// TestBufferPoolGetHit checks the per-call hit flag that the index layer
// uses for cost accounting (pool-global counter deltas are not usable
// under concurrency).
func TestBufferPoolGetHit(t *testing.T) {
	ms := NewMemStore()
	bp := NewBufferPool(ms, 4)
	id, err := bp.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if _, hit, err := bp.GetHit(id); err != nil || hit {
		t.Fatalf("first Get: hit=%v err=%v, want miss", hit, err)
	}
	if _, hit, err := bp.GetHit(id); err != nil || !hit {
		t.Fatalf("second Get: hit=%v err=%v, want hit", hit, err)
	}

	// Pass-through pools never report hits.
	pass := NewBufferPool(ms, 0)
	if _, hit, err := pass.GetHit(id); err != nil || hit {
		t.Fatalf("pass-through Get: hit=%v err=%v, want miss", hit, err)
	}
}

// TestBufferPoolSegmentation checks the capacity-to-segment mapping:
// small pools stay single-segment (global LRU semantics), larger pools
// split, capacity is conserved, and per-segment stats add up.
func TestBufferPoolSegmentation(t *testing.T) {
	ms := NewMemStore()
	cases := []struct{ capacity, wantSegs int }{
		{0, 0}, {1, 1}, {7, 1}, {8, 1}, {16, 2}, {64, 8}, {128, 16}, {1024, 16},
	}
	for _, c := range cases {
		bp := NewBufferPool(ms, c.capacity)
		if got := bp.Segments(); got != c.wantSegs {
			t.Errorf("capacity %d: %d segments, want %d", c.capacity, got, c.wantSegs)
		}
		total := 0
		for _, s := range bp.SegmentStats() {
			total += s.Capacity
		}
		if total != c.capacity {
			t.Errorf("capacity %d: segment capacities sum to %d", c.capacity, total)
		}
	}
}

// TestBufferPoolConcurrentGets hammers one pool from many goroutines and
// checks every returned page's contents. Run under -race this is the
// lock-sharding safety test.
func TestBufferPoolConcurrentGets(t *testing.T) {
	ms := NewMemStore()
	const pages = 64
	for i := 0; i < pages; i++ {
		if _, err := ms.Alloc(); err != nil {
			t.Fatal(err)
		}
		if err := ms.WritePage(PageID(i), patternPage(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity below the working set forces concurrent eviction too.
	bp := NewBufferPool(ms, 32)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				id := PageID((i*7 + g*13) % pages)
				buf, err := bp.Get(id)
				if err != nil {
					errs <- err
					return
				}
				if buf[0] != byte(id) || buf[PageSize-1] != byte(id) {
					errs <- errors.New("page contents corrupted under concurrent access")
					return
				}
			}
		}(g)
	}
	// Concurrent stats readers must not race with the LRU churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			bp.SegmentStats()
			_ = bp.Len()
			_ = bp.Hits()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if bp.Hits()+bp.Misses() != 8*2000 {
		t.Fatalf("hits+misses = %d, want %d", bp.Hits()+bp.Misses(), 8*2000)
	}
}
