package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"
	"sync/atomic"

	"dynq/internal/obs"
)

// Every page persisted by FileStore carries a 16-byte trailer:
//
//	offset  size  field
//	0       4     CRC32C over data || pageID || epoch (little-endian)
//	4       8     epoch: the header sequence number the write belongs to
//	12      4     reserved (zero)
//
// The checksum covers the page ID so a block that lands at the wrong
// offset (a misdirected write) fails verification even if its bytes are
// internally consistent. The epoch lets Open-time recovery detect pages
// that were overwritten after the last committed header: any page
// reachable from a committed root must carry epoch <= the committed
// sequence number, otherwise part of the committed snapshot was clobbered
// by an unfinished flush.
const (
	pageTrailerSize = 16
	physPageSize    = PageSize + pageTrailerSize
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on both
// amd64 and arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptPage reports a page whose stored checksum does not match its
// contents. Errors returned by FileStore.ReadPage on a mismatch wrap it.
var ErrCorruptPage = errors.New("pager: page checksum mismatch")

// ErrCorruptHeader reports a file whose header slots are both unreadable.
var ErrCorruptHeader = errors.New("pager: no valid header slot")

// CorruptPageError carries the details of a checksum mismatch.
type CorruptPageError struct {
	ID   PageID
	Want uint32 // checksum stored in the trailer
	Got  uint32 // checksum recomputed from the page bytes
}

func (e *CorruptPageError) Error() string {
	return fmt.Sprintf("pager: page %d checksum mismatch (stored %08x, computed %08x)", e.ID, e.Want, e.Got)
}

func (e *CorruptPageError) Unwrap() error { return ErrCorruptPage }

// checksumFailures counts checksum mismatches observed by ReadPage across
// all FileStores in the process, for the pager_checksum_failures_total
// metric.
var checksumFailures atomic.Int64

// ChecksumFailures reports the number of page checksum mismatches
// detected process-wide since start.
func ChecksumFailures() int64 { return checksumFailures.Load() }

// crc32Of checksums a byte slice with the store's polynomial (used for
// header slots, which have no trailer).
func crc32Of(b []byte) uint32 { return crc32.Update(0, crcTable, b) }

// pageCRC computes the trailer checksum for a page's data at a given
// identity and epoch.
func pageCRC(data []byte, id PageID, epoch uint64) uint32 {
	var tail [12]byte
	binary.LittleEndian.PutUint32(tail[0:4], uint32(id))
	binary.LittleEndian.PutUint64(tail[4:12], epoch)
	c := crc32.Update(0, crcTable, data)
	return crc32.Update(c, crcTable, tail[:])
}

// sealRecord fills rec (len physPageSize, data already in rec[:PageSize])
// with the trailer for (id, epoch).
func sealRecord(rec []byte, id PageID, epoch uint64) {
	crc := pageCRC(rec[:PageSize], id, epoch)
	binary.LittleEndian.PutUint32(rec[PageSize:], crc)
	binary.LittleEndian.PutUint64(rec[PageSize+4:], epoch)
	binary.LittleEndian.PutUint32(rec[PageSize+12:], 0)
}

// verifyRecord checks rec's trailer against its contents and returns the
// stored epoch. On mismatch it returns a *CorruptPageError and bumps the
// process-wide failure counter.
func verifyRecord(rec []byte, id PageID) (uint64, error) {
	want := binary.LittleEndian.Uint32(rec[PageSize:])
	epoch := binary.LittleEndian.Uint64(rec[PageSize+4:])
	got := pageCRC(rec[:PageSize], id, epoch)
	if got != want {
		checksumFailures.Add(1)
		// Leave a queryable record in the process journal: a checksum
		// failure is an operational event, not just a counter tick.
		obs.DefaultJournal().Record(obs.EventChecksumFailure, obs.SeverityError,
			"page checksum mismatch on read", map[string]string{
				"page":     strconv.FormatUint(uint64(id), 10),
				"stored":   fmt.Sprintf("%08x", want),
				"computed": fmt.Sprintf("%08x", got),
			})
		return 0, &CorruptPageError{ID: id, Want: want, Got: got}
	}
	return epoch, nil
}
