package pager

import (
	"bytes"
	"math/rand"
	"os"
	"testing"
	"testing/quick"
)

func openRaw(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDWR, 0o644)
}

func TestBufferPoolPassThrough(t *testing.T) {
	s := NewMemStore()
	bp := NewBufferPool(s, 0)
	id, _ := bp.Alloc()
	if err := bp.Put(id, fillPage(0x11)); err != nil {
		t.Fatalf("put: %v", err)
	}
	for i := 0; i < 3; i++ {
		b, err := bp.Get(id)
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		if !bytes.Equal(b, fillPage(0x11)) {
			t.Fatal("bad contents")
		}
	}
	if bp.Hits() != 0 || bp.Misses() != 3 {
		t.Errorf("capacity-0 pool should never hit: hits=%d misses=%d", bp.Hits(), bp.Misses())
	}
}

func TestBufferPoolHitsAndEviction(t *testing.T) {
	s := NewMemStore()
	bp := NewBufferPool(s, 2)
	var ids []PageID
	for i := 0; i < 3; i++ {
		id, _ := bp.Alloc()
		if err := bp.Put(id, fillPage(byte(i))); err != nil {
			t.Fatalf("put: %v", err)
		}
		ids = append(ids, id)
	}
	// Pool holds pages 1,2 (page 0 was evicted, dirty → written back).
	if bp.Len() != 2 {
		t.Errorf("len = %d, want 2", bp.Len())
	}
	if bp.Evictions() != 1 || bp.WriteBacks() != 1 {
		t.Errorf("evictions=%d writeBacks=%d", bp.Evictions(), bp.WriteBacks())
	}
	// Page 0 must have reached the store despite eviction.
	buf := make([]byte, PageSize)
	if err := s.ReadPage(ids[0], buf); err != nil || !bytes.Equal(buf, fillPage(0)) {
		t.Errorf("evicted page lost: %v", err)
	}
	// Re-reading page 2 is a hit; page 0 is a miss.
	bp.ResetStats()
	if _, err := bp.Get(ids[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := bp.Get(ids[0]); err != nil {
		t.Fatal(err)
	}
	if bp.Hits() != 1 || bp.Misses() != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", bp.Hits(), bp.Misses())
	}
}

func TestBufferPoolLRUOrder(t *testing.T) {
	s := NewMemStore()
	bp := NewBufferPool(s, 2)
	a, _ := bp.Alloc()
	b, _ := bp.Alloc()
	c, _ := bp.Alloc()
	for _, id := range []PageID{a, b, c} {
		if err := s.WritePage(id, fillPage(byte(id))); err != nil {
			t.Fatal(err)
		}
	}
	bp.Get(a)
	bp.Get(b)
	bp.Get(a) // touch a: b becomes LRU
	bp.Get(c) // evicts b
	bp.ResetStats()
	bp.Get(a)
	bp.Get(c)
	if bp.Misses() != 0 {
		t.Errorf("a and c should still be cached, misses=%d", bp.Misses())
	}
	bp.Get(b)
	if bp.Misses() != 1 {
		t.Errorf("b should have been evicted, misses=%d", bp.Misses())
	}
}

func TestBufferPoolFlushAndInvalidate(t *testing.T) {
	s := NewMemStore()
	bp := NewBufferPool(s, 8)
	id, _ := bp.Alloc()
	if err := bp.Put(id, fillPage(0x42)); err != nil {
		t.Fatal(err)
	}
	// Before flush, the store still has zeros (write was buffered).
	buf := make([]byte, PageSize)
	s.ReadPage(id, buf)
	if bytes.Equal(buf, fillPage(0x42)) {
		t.Error("write should have been buffered, not written through")
	}
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	s.ReadPage(id, buf)
	if !bytes.Equal(buf, fillPage(0x42)) {
		t.Error("flush did not persist the page")
	}
	// Invalidate drops frames: next Get is a miss.
	bp.ResetStats()
	if err := bp.Invalidate(); err != nil {
		t.Fatal(err)
	}
	if bp.Len() != 0 {
		t.Errorf("len after invalidate = %d", bp.Len())
	}
	bp.Get(id)
	if bp.Misses() != 1 {
		t.Errorf("expected miss after invalidate, misses=%d", bp.Misses())
	}
}

func TestBufferPoolFree(t *testing.T) {
	s := NewMemStore()
	bp := NewBufferPool(s, 4)
	id, _ := bp.Alloc()
	bp.Put(id, fillPage(1))
	if err := bp.Free(id); err != nil {
		t.Fatal(err)
	}
	if bp.Len() != 0 {
		t.Error("freed page should leave the pool")
	}
	id2, _ := bp.Alloc()
	if id2 != id {
		t.Errorf("freed page not reused: got %d want %d", id2, id)
	}
	b, err := bp.Get(id2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, make([]byte, PageSize)) {
		t.Error("reused page should read as zeros")
	}
}

func TestBufferPoolPutRejectsShort(t *testing.T) {
	bp := NewBufferPool(NewMemStore(), 1)
	id, _ := bp.Alloc()
	if err := bp.Put(id, []byte{1, 2, 3}); err == nil {
		t.Error("short put should fail")
	}
}

func TestBufferPoolCapacity(t *testing.T) {
	bp := NewBufferPool(NewMemStore(), 7)
	if bp.Capacity() != 7 {
		t.Errorf("capacity = %d", bp.Capacity())
	}
}

// Property: a BufferPool over a MemStore behaves exactly like a plain
// map under any interleaving of Get/Put/Flush/Invalidate, for any
// capacity.
func TestBufferPoolModelProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		store := NewMemStore()
		bp := NewBufferPool(store, r.Intn(5)) // includes capacity 0
		model := map[PageID]byte{}
		var ids []PageID
		for step := 0; step < 150; step++ {
			switch op := r.Intn(5); {
			case op == 0 || len(ids) == 0: // alloc
				id, err := bp.Alloc()
				if err != nil {
					return false
				}
				ids = append(ids, id)
				model[id] = 0
			case op == 1: // put
				id := ids[r.Intn(len(ids))]
				b := byte(r.Intn(256))
				if err := bp.Put(id, fillPage(b)); err != nil {
					return false
				}
				model[id] = b
			case op == 2: // get + compare
				id := ids[r.Intn(len(ids))]
				data, err := bp.Get(id)
				if err != nil {
					return false
				}
				if data[0] != model[id] || data[PageSize-1] != model[id] {
					return false
				}
			case op == 3: // flush
				if err := bp.Flush(); err != nil {
					return false
				}
			case op == 4: // invalidate (must not lose dirty data)
				if err := bp.Invalidate(); err != nil {
					return false
				}
			}
		}
		// After a final flush, the raw store agrees with the model.
		if err := bp.Flush(); err != nil {
			return false
		}
		buf := make([]byte, PageSize)
		for id, b := range model {
			if err := store.ReadPage(id, buf); err != nil {
				return false
			}
			if buf[0] != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
