package pager

import (
	"errors"
	"sync/atomic"
)

// ErrInjected is the failure returned by a FaultStore when armed.
var ErrInjected = errors.New("pager: injected fault")

// FaultStore wraps a Store and injects failures on demand: after Arm(n),
// the n-th subsequent read (or write, per ArmWrites) fails with
// ErrInjected and the store keeps failing until Disarm. It exists for
// failure-propagation tests: every query engine must surface I/O errors
// instead of returning partial answers silently.
type FaultStore struct {
	Inner Store

	readCountdown  atomic.Int64 // <0: disarmed
	writeCountdown atomic.Int64
}

// NewFaultStore wraps inner with fault injection disarmed.
func NewFaultStore(inner Store) *FaultStore {
	f := &FaultStore{Inner: inner}
	f.readCountdown.Store(-1)
	f.writeCountdown.Store(-1)
	return f
}

// Arm makes the n-th subsequent ReadPage (1-based) and all reads after it
// fail.
func (f *FaultStore) Arm(n int64) { f.readCountdown.Store(n) }

// ArmWrites makes the n-th subsequent WritePage and all writes after it
// fail.
func (f *FaultStore) ArmWrites(n int64) { f.writeCountdown.Store(n) }

// Disarm stops injecting failures.
func (f *FaultStore) Disarm() {
	f.readCountdown.Store(-1)
	f.writeCountdown.Store(-1)
}

func trip(c *atomic.Int64) bool {
	for {
		v := c.Load()
		if v < 0 {
			return false
		}
		if v <= 1 {
			return true // stay tripped
		}
		if c.CompareAndSwap(v, v-1) {
			return false
		}
	}
}

// ReadPage implements Store.
func (f *FaultStore) ReadPage(id PageID, buf []byte) error {
	if trip(&f.readCountdown) {
		return ErrInjected
	}
	return f.Inner.ReadPage(id, buf)
}

// WritePage implements Store.
func (f *FaultStore) WritePage(id PageID, buf []byte) error {
	if trip(&f.writeCountdown) {
		return ErrInjected
	}
	return f.Inner.WritePage(id, buf)
}

// Alloc implements Store.
func (f *FaultStore) Alloc() (PageID, error) { return f.Inner.Alloc() }

// Free implements Store.
func (f *FaultStore) Free(id PageID) error { return f.Inner.Free(id) }

// NumPages implements Store.
func (f *FaultStore) NumPages() int { return f.Inner.NumPages() }

// Sync implements Store.
func (f *FaultStore) Sync() error { return f.Inner.Sync() }

// Close implements Store.
func (f *FaultStore) Close() error { return f.Inner.Close() }
