package pager

import (
	"errors"
	"fmt"
	"sync/atomic"
	"syscall"
	"time"
)

// ErrInjected is the failure returned by a FaultStore when armed.
var ErrInjected = errors.New("pager: injected fault")

// ErrNoSpace is the injected disk-full failure. It wraps syscall.ENOSPC
// so callers detect it exactly like the real thing:
// errors.Is(err, syscall.ENOSPC) holds for both.
var ErrNoSpace = fmt.Errorf("pager: injected disk full: %w", syscall.ENOSPC)

// FaultStore wraps a Store and injects failures on demand. It supports
// two modes, usable together:
//
//   - One-shot countdowns: after Arm(n), the n-th subsequent read
//     (1-based) and all reads after it fail with ErrInjected; ArmWrites,
//     ArmSyncs, ArmAllocs, ArmFrees do the same per operation, and
//     ArmTornWrites makes the n-th write persist only a prefix of the
//     page before the store starts failing. Countdowns give tests exact
//     control over which operation dies.
//
//   - A scripted FaultPlan: probabilistic per-op failure rates, torn
//     writes, bit flips, and added latency, driven by a deterministic
//     seeded generator. Plans drive the crash/reopen soak
//     (dqbench -faults).
//
// It exists for failure-propagation tests: every query engine must
// surface I/O errors instead of returning partial answers silently.
type FaultStore struct {
	Inner Store

	readCountdown  atomic.Int64 // <0: disarmed
	writeCountdown atomic.Int64
	tornCountdown  atomic.Int64
	syncCountdown  atomic.Int64
	allocCountdown atomic.Int64
	freeCountdown  atomic.Int64

	noSpaceCountdown atomic.Int64 // <0: disarmed; counts write-class ops
	noSpaceSticky    atomic.Bool

	plan atomic.Pointer[FaultPlan]
	rng  atomic.Uint64

	stats faultCounters
}

// FaultPlan is a probabilistic fault schedule. Each probability is the
// per-operation chance in [0, 1]; Seed makes a run reproducible.
type FaultPlan struct {
	Seed uint64

	ReadErr  float64 // ReadPage fails with ErrInjected
	WriteErr float64 // WritePage fails with ErrInjected
	SyncErr  float64 // Sync fails with ErrInjected
	AllocErr float64 // Alloc fails with ErrInjected
	FreeErr  float64 // Free fails with ErrInjected

	// TornWrite is the chance a WritePage persists only a random prefix
	// of the physical page and then reports ErrInjected, simulating a
	// torn sector write under power loss.
	TornWrite float64
	// BitFlip is the chance a successful WritePage is followed by a
	// single-bit corruption of the stored bytes (below the checksum),
	// simulating media rot.
	BitFlip float64

	// Latency is added to every intercepted operation.
	Latency time.Duration
}

// FaultStats counts operations seen and faults injected by a FaultStore.
type FaultStats struct {
	Reads, Writes, Syncs, Allocs, Frees int64

	InjectedReads, InjectedWrites, InjectedSyncs int64
	InjectedAllocs, InjectedFrees                int64
	TornWrites, BitFlips, NoSpace                int64
}

type faultCounters struct {
	reads, writes, syncs, allocs, frees               atomic.Int64
	injReads, injWrites, injSyncs, injAllocs, injFree atomic.Int64
	torn, flips, noSpace                              atomic.Int64
}

// NewFaultStore wraps inner with fault injection disarmed.
func NewFaultStore(inner Store) *FaultStore {
	f := &FaultStore{Inner: inner}
	f.readCountdown.Store(-1)
	f.writeCountdown.Store(-1)
	f.tornCountdown.Store(-1)
	f.syncCountdown.Store(-1)
	f.allocCountdown.Store(-1)
	f.freeCountdown.Store(-1)
	f.noSpaceCountdown.Store(-1)
	return f
}

// Arm makes the n-th subsequent ReadPage (1-based) and all reads after it
// fail.
func (f *FaultStore) Arm(n int64) { f.readCountdown.Store(n) }

// ArmWrites makes the n-th subsequent WritePage and all writes after it
// fail.
func (f *FaultStore) ArmWrites(n int64) { f.writeCountdown.Store(n) }

// ArmTornWrites makes the n-th subsequent WritePage persist only a
// prefix of the page (then report ErrInjected), with all writes after it
// failing outright — the write pattern of a crash mid-flush.
func (f *FaultStore) ArmTornWrites(n int64) { f.tornCountdown.Store(n) }

// ArmSyncs makes the n-th subsequent Sync and all syncs after it fail.
func (f *FaultStore) ArmSyncs(n int64) { f.syncCountdown.Store(n) }

// ArmAllocs makes the n-th subsequent Alloc and all allocs after it fail.
func (f *FaultStore) ArmAllocs(n int64) { f.allocCountdown.Store(n) }

// ArmFrees makes the n-th subsequent Free and all frees after it fail.
func (f *FaultStore) ArmFrees(n int64) { f.freeCountdown.Store(n) }

// ArmNoSpace simulates the disk filling up: the n-th subsequent
// write-class operation (WritePage, Alloc, or Sync; 1-based) fails with
// ErrNoSpace. Sticky mode keeps every write-class operation failing
// until Disarm or DisarmNoSpace — a full volume. Transient mode fails
// exactly one operation and then behaves as if space was freed.
func (f *FaultStore) ArmNoSpace(n int64, sticky bool) {
	f.noSpaceSticky.Store(sticky)
	f.noSpaceCountdown.Store(n)
}

// DisarmNoSpace frees the simulated volume without touching other
// armed faults.
func (f *FaultStore) DisarmNoSpace() { f.noSpaceCountdown.Store(-1) }

// NoSpaceArmed reports whether a disk-full fault is still pending or
// sticking.
func (f *FaultStore) NoSpaceArmed() bool { return f.noSpaceCountdown.Load() >= 0 }

// tripNoSpace advances the disk-full countdown for one write-class
// operation.
func (f *FaultStore) tripNoSpace() bool {
	sticky := f.noSpaceSticky.Load()
	for {
		v := f.noSpaceCountdown.Load()
		switch {
		case v < 0:
			return false
		case v <= 1:
			if sticky {
				return true // stay full
			}
			if f.noSpaceCountdown.CompareAndSwap(v, -1) {
				return true // one failure, then space returns
			}
		default:
			if f.noSpaceCountdown.CompareAndSwap(v, v-1) {
				return false
			}
		}
	}
}

// Script installs (or, with nil, removes) a probabilistic fault plan.
// The generator is reseeded from plan.Seed.
func (f *FaultStore) Script(plan *FaultPlan) {
	if plan != nil {
		f.rng.Store(plan.Seed)
	}
	f.plan.Store(plan)
}

// Disarm stops injecting failures: countdowns reset and any scripted
// plan is removed.
func (f *FaultStore) Disarm() {
	f.readCountdown.Store(-1)
	f.writeCountdown.Store(-1)
	f.tornCountdown.Store(-1)
	f.syncCountdown.Store(-1)
	f.allocCountdown.Store(-1)
	f.freeCountdown.Store(-1)
	f.noSpaceCountdown.Store(-1)
	f.plan.Store(nil)
}

// Stats returns cumulative operation and injection counts.
func (f *FaultStore) Stats() FaultStats {
	return FaultStats{
		Reads:          f.stats.reads.Load(),
		Writes:         f.stats.writes.Load(),
		Syncs:          f.stats.syncs.Load(),
		Allocs:         f.stats.allocs.Load(),
		Frees:          f.stats.frees.Load(),
		InjectedReads:  f.stats.injReads.Load(),
		InjectedWrites: f.stats.injWrites.Load(),
		InjectedSyncs:  f.stats.injSyncs.Load(),
		InjectedAllocs: f.stats.injAllocs.Load(),
		InjectedFrees:  f.stats.injFree.Load(),
		TornWrites:     f.stats.torn.Load(),
		BitFlips:       f.stats.flips.Load(),
		NoSpace:        f.stats.noSpace.Load(),
	}
}

func trip(c *atomic.Int64) bool {
	for {
		v := c.Load()
		if v < 0 {
			return false
		}
		if v <= 1 {
			return true // stay tripped
		}
		if c.CompareAndSwap(v, v-1) {
			return false
		}
	}
}

// tripOnce is trip that distinguishes the exact trip point: it returns
// (true, true) on the n-th operation, (true, false) on every operation
// after it, and (false, _) while counting down or disarmed.
func tripOnce(c *atomic.Int64) (tripped, first bool) {
	for {
		v := c.Load()
		switch {
		case v < 0:
			return false, false
		case v == 0:
			return true, false
		case v == 1:
			if c.CompareAndSwap(1, 0) {
				return true, true
			}
		default:
			if c.CompareAndSwap(v, v-1) {
				return false, false
			}
		}
	}
}

// next returns a deterministic pseudo-random 64-bit value (splitmix64
// over an atomically advanced state).
func (f *FaultStore) next() uint64 {
	for {
		old := f.rng.Load()
		state := old + 0x9E3779B97F4A7C15
		if f.rng.CompareAndSwap(old, state) {
			z := state
			z ^= z >> 30
			z *= 0xBF58476D1CE4E5B9
			z ^= z >> 27
			z *= 0x94D049BB133111EB
			z ^= z >> 31
			return z
		}
	}
}

func (f *FaultStore) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(f.next()>>11)/(1<<53) < p
}

// enter applies the plan's latency (if any) and returns the active plan.
func (f *FaultStore) enter() *FaultPlan {
	p := f.plan.Load()
	if p != nil && p.Latency > 0 {
		time.Sleep(p.Latency)
	}
	return p
}

// tornWriter is the optional store hook for prefix-only page writes.
// FileStore tears the physical record (data + checksum trailer);
// MemStore tears the logical page.
type tornWriter interface {
	WritePageTorn(id PageID, buf []byte, n int) error
}

// bitFlipper is the optional store hook for below-the-checksum
// single-bit corruption.
type bitFlipper interface {
	FlipBit(id PageID, bit int) error
}

// tearWrite persists a random prefix of the page via the inner store's
// torn-write hook (falling back to a plain failed write when the store
// has none) and reports ErrInjected.
func (f *FaultStore) tearWrite(id PageID, buf []byte) error {
	f.stats.torn.Add(1)
	if tw, ok := f.Inner.(tornWriter); ok {
		n := int(f.next() % uint64(physPageSize))
		if err := tw.WritePageTorn(id, buf, n); err != nil {
			return err
		}
	}
	return ErrInjected
}

// ReadPage implements Store.
func (f *FaultStore) ReadPage(id PageID, buf []byte) error {
	f.stats.reads.Add(1)
	if trip(&f.readCountdown) {
		f.stats.injReads.Add(1)
		return ErrInjected
	}
	if p := f.enter(); p != nil && f.chance(p.ReadErr) {
		f.stats.injReads.Add(1)
		return ErrInjected
	}
	return f.Inner.ReadPage(id, buf)
}

// WritePage implements Store.
func (f *FaultStore) WritePage(id PageID, buf []byte) error {
	f.stats.writes.Add(1)
	if f.tripNoSpace() {
		f.stats.noSpace.Add(1)
		return ErrNoSpace
	}
	if tripped, first := tripOnce(&f.tornCountdown); tripped {
		f.stats.injWrites.Add(1)
		if first {
			return f.tearWrite(id, buf)
		}
		return ErrInjected
	}
	if trip(&f.writeCountdown) {
		f.stats.injWrites.Add(1)
		return ErrInjected
	}
	if p := f.enter(); p != nil {
		if f.chance(p.TornWrite) {
			f.stats.injWrites.Add(1)
			return f.tearWrite(id, buf)
		}
		if f.chance(p.WriteErr) {
			f.stats.injWrites.Add(1)
			return ErrInjected
		}
		if err := f.Inner.WritePage(id, buf); err != nil {
			return err
		}
		if fl, ok := f.Inner.(bitFlipper); ok && f.chance(p.BitFlip) {
			f.stats.flips.Add(1)
			return fl.FlipBit(id, int(f.next()%uint64(physPageSize*8)))
		}
		return nil
	}
	return f.Inner.WritePage(id, buf)
}

// Alloc implements Store.
func (f *FaultStore) Alloc() (PageID, error) {
	f.stats.allocs.Add(1)
	if f.tripNoSpace() {
		f.stats.noSpace.Add(1)
		return InvalidPage, ErrNoSpace
	}
	if trip(&f.allocCountdown) {
		f.stats.injAllocs.Add(1)
		return InvalidPage, ErrInjected
	}
	if p := f.enter(); p != nil && f.chance(p.AllocErr) {
		f.stats.injAllocs.Add(1)
		return InvalidPage, ErrInjected
	}
	return f.Inner.Alloc()
}

// Free implements Store.
func (f *FaultStore) Free(id PageID) error {
	f.stats.frees.Add(1)
	if trip(&f.freeCountdown) {
		f.stats.injFree.Add(1)
		return ErrInjected
	}
	if p := f.enter(); p != nil && f.chance(p.FreeErr) {
		f.stats.injFree.Add(1)
		return ErrInjected
	}
	return f.Inner.Free(id)
}

// NumPages implements Store.
func (f *FaultStore) NumPages() int { return f.Inner.NumPages() }

// Sync implements Store.
func (f *FaultStore) Sync() error {
	f.stats.syncs.Add(1)
	if f.tripNoSpace() {
		f.stats.noSpace.Add(1)
		return ErrNoSpace
	}
	if trip(&f.syncCountdown) {
		f.stats.injSyncs.Add(1)
		return ErrInjected
	}
	if p := f.enter(); p != nil && f.chance(p.SyncErr) {
		f.stats.injSyncs.Add(1)
		return ErrInjected
	}
	return f.Inner.Sync()
}

// Close implements Store.
func (f *FaultStore) Close() error { return f.Inner.Close() }

// SetRoot forwards to the inner store when it keeps a root pointer
// (fault-free: root updates are in-memory staging, not I/O).
func (f *FaultStore) SetRoot(id PageID) error {
	if s, ok := f.Inner.(interface{ SetRoot(PageID) error }); ok {
		return s.SetRoot(id)
	}
	return nil
}

// Root forwards to the inner store when it keeps a root pointer.
func (f *FaultStore) Root() PageID {
	if s, ok := f.Inner.(interface{ Root() PageID }); ok {
		return s.Root()
	}
	return InvalidPage
}

// SetAux forwards to the inner store when it keeps caller metadata
// (fault-free: aux updates are in-memory staging, not I/O).
func (f *FaultStore) SetAux(data []byte) error {
	if s, ok := f.Inner.(interface{ SetAux([]byte) error }); ok {
		return s.SetAux(data)
	}
	return nil
}

// Aux forwards to the inner store when it keeps caller metadata.
func (f *FaultStore) Aux() []byte {
	if s, ok := f.Inner.(interface{ Aux() []byte }); ok {
		return s.Aux()
	}
	return nil
}

// ReadPageEpoch forwards to the inner store's verified epoch read when
// it has one, applying the same read-fault injection as ReadPage. The
// background scrubber uses this to check CRC + epoch trailers through
// whatever store the database was opened on.
func (f *FaultStore) ReadPageEpoch(id PageID, buf []byte) (uint64, error) {
	s, ok := f.Inner.(interface {
		ReadPageEpoch(PageID, []byte) (uint64, error)
	})
	if !ok {
		return 0, errors.New("pager: inner store has no epoch reads")
	}
	f.stats.reads.Add(1)
	if trip(&f.readCountdown) {
		f.stats.injReads.Add(1)
		return 0, ErrInjected
	}
	if p := f.enter(); p != nil && f.chance(p.ReadErr) {
		f.stats.injReads.Add(1)
		return 0, ErrInjected
	}
	return s.ReadPageEpoch(id, buf)
}

// CommittedSeq forwards to the inner store's committed header sequence
// when it has one (fault-free: it is an in-memory read).
func (f *FaultStore) CommittedSeq() uint64 {
	if s, ok := f.Inner.(interface{ CommittedSeq() uint64 }); ok {
		return s.CommittedSeq()
	}
	return 0
}

// VerifyHeader forwards to the inner store's committed-header recheck
// when it has one (fault-free: the probe wants the real on-disk truth).
func (f *FaultStore) VerifyHeader() error {
	if s, ok := f.Inner.(interface{ VerifyHeader() error }); ok {
		return s.VerifyHeader()
	}
	return nil
}
