// Package pager is the disk substrate under the index: a store of fixed
// 4 KiB pages (the page size of the paper's experiments, Section 5), with
// a file-backed and an in-memory implementation plus an LRU buffer pool.
//
// The paper's cost metric is disk accesses. The index layer counts one
// access per node fetched; the pager additionally distinguishes true
// store reads from buffer hits, which the server-side-buffering ablation
// uses (the paper argues in Section 4 that an LRU buffer at the server
// does not substitute for dynamic query processing).
package pager

import (
	"errors"
	"fmt"
)

// PageSize is the fixed size of every page in bytes.
const PageSize = 4096

// PageID identifies a page within a store. IDs are dense, starting at 0
// for the first data page.
type PageID uint32

// InvalidPage is the sentinel "no page" value.
const InvalidPage PageID = 0xFFFFFFFF

// Errors returned by stores.
var (
	ErrPageOutOfRange = errors.New("pager: page id out of range")
	ErrPageFreed      = errors.New("pager: access to freed page")
	ErrBadPageData    = errors.New("pager: page buffer must be exactly PageSize bytes")
	ErrClosed         = errors.New("pager: store is closed")
)

// Store is a flat array of fixed-size pages with allocation. Stores must
// support concurrent ReadPage calls when no write (WritePage/Alloc/Free)
// is in flight; the index layer's reader–writer locking guarantees that
// writes run with exclusive access, so stores need no locking of their
// own.
type Store interface {
	// ReadPage copies the page's contents into buf (len PageSize).
	ReadPage(id PageID, buf []byte) error
	// WritePage replaces the page's contents with buf (len PageSize).
	WritePage(id PageID, buf []byte) error
	// Alloc returns a fresh (zeroed) page.
	Alloc() (PageID, error)
	// Free releases a page for reuse.
	Free(id PageID) error
	// NumPages reports the number of pages ever allocated and not freed.
	NumPages() int
	// Sync durably persists all written pages where applicable.
	Sync() error
	// Close releases resources; the store is unusable afterwards.
	Close() error
}

// MemStore is an in-memory Store. It is the default substrate for the
// experiments: page fetches are counted, not timed, so memory is a
// faithful stand-in for disk under the paper's cost model.
type MemStore struct {
	pages    [][]byte
	free     []PageID
	freeSet  map[PageID]bool
	closed   bool
	allocCnt int
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{freeSet: make(map[PageID]bool)}
}

func (m *MemStore) check(id PageID) error {
	if m.closed {
		return ErrClosed
	}
	if int(id) >= len(m.pages) {
		return fmt.Errorf("%w: %d >= %d", ErrPageOutOfRange, id, len(m.pages))
	}
	if m.freeSet[id] {
		return fmt.Errorf("%w: %d", ErrPageFreed, id)
	}
	return nil
}

// ReadPage implements Store.
func (m *MemStore) ReadPage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrBadPageData
	}
	if err := m.check(id); err != nil {
		return err
	}
	copy(buf, m.pages[id])
	return nil
}

// WritePage implements Store.
func (m *MemStore) WritePage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrBadPageData
	}
	if err := m.check(id); err != nil {
		return err
	}
	copy(m.pages[id], buf)
	return nil
}

// Alloc implements Store.
func (m *MemStore) Alloc() (PageID, error) {
	if m.closed {
		return InvalidPage, ErrClosed
	}
	m.allocCnt++
	if n := len(m.free); n > 0 {
		id := m.free[n-1]
		m.free = m.free[:n-1]
		delete(m.freeSet, id)
		clear(m.pages[id])
		return id, nil
	}
	if len(m.pages) >= int(InvalidPage) {
		return InvalidPage, errors.New("pager: store full")
	}
	id := PageID(len(m.pages))
	m.pages = append(m.pages, make([]byte, PageSize))
	return id, nil
}

// Free implements Store.
func (m *MemStore) Free(id PageID) error {
	if err := m.check(id); err != nil {
		return err
	}
	m.free = append(m.free, id)
	m.freeSet[id] = true
	return nil
}

// NumPages implements Store.
func (m *MemStore) NumPages() int { return len(m.pages) - len(m.free) }

// Sync implements Store (no-op in memory).
func (m *MemStore) Sync() error {
	if m.closed {
		return ErrClosed
	}
	return nil
}

// Close implements Store.
func (m *MemStore) Close() error {
	m.closed = true
	m.pages = nil
	return nil
}

// WritePageTorn persists only the first n bytes of the page, simulating
// a torn write (FaultStore hook; the file-backed analogue also tears the
// checksum trailer).
func (m *MemStore) WritePageTorn(id PageID, buf []byte, n int) error {
	if len(buf) != PageSize {
		return ErrBadPageData
	}
	if err := m.check(id); err != nil {
		return err
	}
	if n < 0 {
		n = 0
	}
	if n > PageSize {
		n = PageSize
	}
	copy(m.pages[id][:n], buf[:n])
	return nil
}

// FlipBit flips one bit of the stored page in place (FaultStore hook).
func (m *MemStore) FlipBit(id PageID, bit int) error {
	if err := m.check(id); err != nil {
		return err
	}
	if bit < 0 {
		bit = -bit
	}
	bit %= PageSize * 8
	m.pages[id][bit/8] ^= 1 << (bit % 8)
	return nil
}
