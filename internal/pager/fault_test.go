package pager

import (
	"errors"
	"path/filepath"
	"testing"
)

// The new per-op countdowns: Sync, Alloc, and Free each trip on the n-th
// call and stay tripped until Disarm.
func TestFaultStoreOpCountdowns(t *testing.T) {
	fs := NewFaultStore(NewMemStore())

	fs.ArmSyncs(2)
	if err := fs.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := fs.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 2 = %v, want ErrInjected", err)
	}
	if err := fs.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 3 = %v, want ErrInjected (stays tripped)", err)
	}
	fs.Disarm()
	if err := fs.Sync(); err != nil {
		t.Fatalf("sync after disarm: %v", err)
	}

	fs.ArmAllocs(1)
	if _, err := fs.Alloc(); !errors.Is(err, ErrInjected) {
		t.Fatalf("alloc = %v, want ErrInjected", err)
	}
	fs.Disarm()
	id, err := fs.Alloc()
	if err != nil {
		t.Fatal(err)
	}

	fs.ArmFrees(1)
	if err := fs.Free(id); !errors.Is(err, ErrInjected) {
		t.Fatalf("free = %v, want ErrInjected", err)
	}
	fs.Disarm()
	if err := fs.Free(id); err != nil {
		t.Fatal(err)
	}

	st := fs.Stats()
	if st.InjectedSyncs != 2 || st.InjectedAllocs != 1 || st.InjectedFrees != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// ArmTornWrites persists a prefix on the n-th write (file-backed: the
// page then reads back corrupt) and fails outright afterwards.
func TestFaultStoreTornWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	inner := mustCreate(t, path)
	defer inner.Close()
	fs := NewFaultStore(inner)
	id := mustAllocWrite(t, fs, 0x77)
	if err := inner.Sync(); err != nil {
		t.Fatal(err)
	}

	fs.ArmTornWrites(1)
	if err := fs.WritePage(id, fillPage(0x99)); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write = %v, want ErrInjected", err)
	}
	if err := fs.WritePage(id, fillPage(0x99)); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after torn = %v, want ErrInjected", err)
	}
	if got := fs.Stats().TornWrites; got != 1 {
		t.Errorf("TornWrites = %d, want 1", got)
	}
	buf := make([]byte, PageSize)
	err := inner.ReadPage(id, buf)
	// Depending on the torn prefix length the page is either corrupt or
	// (zero-length tear) still the old content — never the new content.
	if err == nil {
		for i := range buf {
			if buf[i] == 0x99 {
				t.Fatal("torn write fully persisted the new page")
			}
		}
	} else if !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("read after torn write = %v", err)
	}
}

// A scripted plan with the same seed injects the same faults at the same
// operations; a plan with rate 1 always fires; rate 0 never fires.
func TestFaultStorePlanDeterminism(t *testing.T) {
	run := func(seed uint64) []bool {
		fs := NewFaultStore(NewMemStore())
		id, err := fs.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		fs.Script(&FaultPlan{Seed: seed, WriteErr: 0.5})
		var outcomes []bool
		for i := 0; i < 64; i++ {
			outcomes = append(outcomes, fs.WritePage(id, fillPage(1)) != nil)
		}
		return outcomes
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault schedules (suspicious)")
	}

	always := NewFaultStore(NewMemStore())
	id, _ := always.Alloc()
	always.Script(&FaultPlan{ReadErr: 1})
	if err := always.ReadPage(id, make([]byte, PageSize)); !errors.Is(err, ErrInjected) {
		t.Fatalf("rate-1 read = %v, want ErrInjected", err)
	}
	always.Script(&FaultPlan{}) // all rates zero
	if err := always.ReadPage(id, make([]byte, PageSize)); err != nil {
		t.Fatalf("rate-0 read = %v", err)
	}
}

// A scripted bit flip corrupts the stored page below the checksum: the
// write reports success but the page reads back as ErrCorruptPage.
func TestFaultStorePlanBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	inner := mustCreate(t, path)
	defer inner.Close()
	fs := NewFaultStore(inner)
	id := mustAllocWrite(t, fs, 0x00)

	fs.Script(&FaultPlan{Seed: 7, BitFlip: 1})
	if err := fs.WritePage(id, fillPage(0x55)); err != nil {
		t.Fatalf("write with bit flip = %v (flips corrupt silently)", err)
	}
	fs.Disarm()
	err := fs.ReadPage(id, make([]byte, PageSize))
	if !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("read after bit flip = %v, want ErrCorruptPage", err)
	}
	if got := fs.Stats().BitFlips; got != 1 {
		t.Errorf("BitFlips = %d, want 1", got)
	}
}
