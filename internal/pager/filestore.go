package pager

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
)

// File layout (format v2, magic "DYNQPG02"):
//
//	[slot 0: header, PageSize bytes][slot 1: header, PageSize bytes]
//	[page 0: PageSize data + 16-byte trailer][page 1: ...]...
//
// Each header slot:
//
//	offset 0   8 bytes  magic "DYNQPG02"
//	offset 8   8 bytes  commit sequence number (little endian)
//	offset 16  4 bytes  number of data pages (allocated + freed)
//	offset 20  4 bytes  free-list head page id (InvalidPage if none)
//	offset 24  4 bytes  user root page id
//	offset 28  2 bytes  aux length
//	offset 32  ...      aux bytes (up to MaxAux)
//	offset PageSize-4   CRC32C over bytes [0, PageSize-4)
//
// Commits are atomic: a commit writes the header to the slot NOT holding
// the current committed state (slot seq%2 for the new seq) and fsyncs.
// If the write tears, the other slot still holds the previous committed
// header; Open picks the valid slot with the highest sequence number.
//
// Allocation state (count, free list head, root, aux) lives in memory
// between commits; Sync and Close commit it. Data pages are written in
// place with a checksum + epoch trailer (see checksum.go); a page written
// after commit S carries epoch S+1, so recovery can tell whether any part
// of the committed snapshot was overwritten by an unfinished flush.
//
// Free pages are chained through their first 4 bytes; freeing rewrites
// the whole page (link + zeros) so freed pages stay checksummed.
const fileMagic = "DYNQPG02"

// fileMagicV1 is the pre-checksum single-header format, recognized only
// to produce a helpful error.
const fileMagicV1 = "DYNQPG01"

const (
	hdrMagicOff  = 0
	hdrSeqOff    = 8
	hdrCountOff  = 16
	hdrFreeOff   = 20
	hdrRootOff   = 24
	hdrAuxLenOff = 28
	hdrAuxOff    = 32
	hdrCRCOff    = PageSize - 4

	headerSlots = 2
	dataStart   = headerSlots * PageSize
)

// MaxAux is the caller-metadata capacity of a header slot.
const MaxAux = 256

// FileStore is a Store persisted in a single file with per-page checksums
// and atomic dual-slot header commits. It exists so indexes can be built
// once (cmd/dqload) and reopened by later runs; the experiment harness
// itself defaults to MemStore.
type FileStore struct {
	f         *os.File
	seq       uint64 // last committed header sequence number
	count     uint32 // data pages in the file (allocated + freed)
	free      PageID // head of free-page chain
	root      PageID // user root pointer (see SetRoot)
	aux       []byte // caller metadata (see SetAux)
	bothValid bool   // both header slots decoded cleanly at open
	closed    bool
}

// CreateFileStore creates (truncating) a page file at path.
func CreateFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: create %s: %w", path, err)
	}
	fs := &FileStore{f: f, free: InvalidPage, root: InvalidPage, bothValid: true}
	// Write the initial committed header to both slots so either survives
	// a torn first commit.
	hdr := fs.encodeHeader(1)
	for slot := 0; slot < headerSlots; slot++ {
		if _, err := f.WriteAt(hdr, int64(slot)*PageSize); err != nil {
			f.Close()
			return nil, fmt.Errorf("pager: init header of %s: %w", path, err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: sync %s: %w", path, err)
	}
	fs.seq = 1
	return fs, nil
}

// OpenFileStore opens an existing page file, picking the newest valid
// header slot. A file where neither slot decodes returns an error
// wrapping ErrCorruptHeader (or a descriptive error for foreign or
// old-format files).
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	fs, err := openHeader(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return fs, nil
}

func openHeader(f *os.File, path string) (*FileStore, error) {
	var (
		best      *FileStore
		valid     int
		sawOldFmt bool
		sawMagic  bool
	)
	buf := make([]byte, PageSize)
	for slot := 0; slot < headerSlots; slot++ {
		n, err := f.ReadAt(buf, int64(slot)*PageSize)
		if err != nil && n != PageSize {
			continue
		}
		if bytes.Equal(buf[hdrMagicOff:hdrMagicOff+8], []byte(fileMagicV1)) {
			sawOldFmt = true
			continue
		}
		if !bytes.Equal(buf[hdrMagicOff:hdrMagicOff+8], []byte(fileMagic)) {
			continue
		}
		sawMagic = true
		cand, ok := decodeHeader(f, buf)
		if !ok {
			continue
		}
		valid++
		if best == nil || cand.seq > best.seq {
			best = cand
		}
	}
	switch {
	case best != nil:
		best.bothValid = valid == headerSlots
		return best, nil
	case sawOldFmt:
		return nil, fmt.Errorf("pager: %s uses the old unchecksummed format %q; rebuild it with dqload", path, fileMagicV1)
	case sawMagic:
		return nil, fmt.Errorf("pager: %s: %w (both slots failed verification)", path, ErrCorruptHeader)
	default:
		return nil, fmt.Errorf("pager: %s is not a dynq page file", path)
	}
}

func decodeHeader(f *os.File, buf []byte) (*FileStore, bool) {
	if crc32Of(buf[:hdrCRCOff]) != binary.LittleEndian.Uint32(buf[hdrCRCOff:]) {
		return nil, false
	}
	auxLen := int(binary.LittleEndian.Uint16(buf[hdrAuxLenOff:]))
	if auxLen > MaxAux {
		return nil, false
	}
	return &FileStore{
		f:     f,
		seq:   binary.LittleEndian.Uint64(buf[hdrSeqOff:]),
		count: binary.LittleEndian.Uint32(buf[hdrCountOff:]),
		free:  PageID(binary.LittleEndian.Uint32(buf[hdrFreeOff:])),
		root:  PageID(binary.LittleEndian.Uint32(buf[hdrRootOff:])),
		aux:   append([]byte(nil), buf[hdrAuxOff:hdrAuxOff+auxLen]...),
	}, true
}

// encodeHeader renders the current in-memory state as a header slot image
// stamped with sequence number seq.
func (fs *FileStore) encodeHeader(seq uint64) []byte {
	hdr := make([]byte, PageSize)
	copy(hdr[hdrMagicOff:], fileMagic)
	binary.LittleEndian.PutUint64(hdr[hdrSeqOff:], seq)
	binary.LittleEndian.PutUint32(hdr[hdrCountOff:], fs.count)
	binary.LittleEndian.PutUint32(hdr[hdrFreeOff:], uint32(fs.free))
	binary.LittleEndian.PutUint32(hdr[hdrRootOff:], uint32(fs.root))
	binary.LittleEndian.PutUint16(hdr[hdrAuxLenOff:], uint16(len(fs.aux)))
	copy(hdr[hdrAuxOff:], fs.aux)
	binary.LittleEndian.PutUint32(hdr[hdrCRCOff:], crc32Of(hdr[:hdrCRCOff]))
	return hdr
}

// commit durably publishes the in-memory allocation state: it writes the
// next header to the slot not holding the committed one, then fsyncs.
// Data pages must already be synced by the caller (see Sync).
func (fs *FileStore) commit() error {
	next := fs.seq + 1
	slot := int64(next % headerSlots)
	if _, err := fs.f.WriteAt(fs.encodeHeader(next), slot*PageSize); err != nil {
		return fmt.Errorf("pager: write header slot %d: %w", slot, err)
	}
	if err := fs.f.Sync(); err != nil {
		return fmt.Errorf("pager: sync header: %w", err)
	}
	fs.seq = next
	return nil
}

func (fs *FileStore) offset(id PageID) int64 {
	return dataStart + int64(id)*physPageSize
}

func (fs *FileStore) check(id PageID) error {
	if fs.closed {
		return ErrClosed
	}
	if uint32(id) >= fs.count {
		return fmt.Errorf("%w: %d >= %d", ErrPageOutOfRange, id, fs.count)
	}
	return nil
}

// writeEpoch is the epoch stamped on pages written now: one past the
// committed sequence number, so recovery can detect post-commit writes.
func (fs *FileStore) writeEpoch() uint64 { return fs.seq + 1 }

// ReadPage implements Store. A page whose trailer checksum does not match
// its contents returns a *CorruptPageError wrapping ErrCorruptPage.
func (fs *FileStore) ReadPage(id PageID, buf []byte) error {
	_, err := fs.ReadPageEpoch(id, buf)
	return err
}

// ReadPageEpoch is ReadPage plus the epoch recorded in the page trailer,
// for the recovery walk.
func (fs *FileStore) ReadPageEpoch(id PageID, buf []byte) (uint64, error) {
	if len(buf) != PageSize {
		return 0, ErrBadPageData
	}
	if err := fs.check(id); err != nil {
		return 0, err
	}
	rec := make([]byte, physPageSize)
	if _, err := fs.f.ReadAt(rec, fs.offset(id)); err != nil {
		return 0, err
	}
	epoch, err := verifyRecord(rec, id)
	if err != nil {
		return 0, err
	}
	copy(buf, rec[:PageSize])
	return epoch, nil
}

// WritePage implements Store.
func (fs *FileStore) WritePage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrBadPageData
	}
	if err := fs.check(id); err != nil {
		return err
	}
	_, err := fs.f.WriteAt(fs.sealed(id, buf), fs.offset(id))
	return err
}

func (fs *FileStore) sealed(id PageID, buf []byte) []byte {
	rec := make([]byte, physPageSize)
	copy(rec, buf)
	sealRecord(rec, id, fs.writeEpoch())
	return rec
}

// WritePageTorn persists only the first n bytes of the page's physical
// record (data + trailer), simulating a torn write. It is a hook for
// FaultStore; n is clamped to [0, physPageSize).
func (fs *FileStore) WritePageTorn(id PageID, buf []byte, n int) error {
	if len(buf) != PageSize {
		return ErrBadPageData
	}
	if err := fs.check(id); err != nil {
		return err
	}
	if n < 0 {
		n = 0
	}
	if n >= physPageSize {
		n = physPageSize - 1
	}
	_, err := fs.f.WriteAt(fs.sealed(id, buf)[:n], fs.offset(id))
	return err
}

// FlipBit flips one bit of the page's stored physical record in place,
// bypassing the checksum. It is a hook for FaultStore; bit is taken
// modulo the record size in bits.
func (fs *FileStore) FlipBit(id PageID, bit int) error {
	if err := fs.check(id); err != nil {
		return err
	}
	if bit < 0 {
		bit = -bit
	}
	bit %= physPageSize * 8
	var b [1]byte
	off := fs.offset(id) + int64(bit/8)
	if _, err := fs.f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 1 << (bit % 8)
	_, err := fs.f.WriteAt(b[:], off)
	return err
}

// Alloc implements Store. Allocation state is in memory until the next
// Sync/Close commit.
func (fs *FileStore) Alloc() (PageID, error) {
	if fs.closed {
		return InvalidPage, ErrClosed
	}
	zero := make([]byte, PageSize)
	if fs.free != InvalidPage {
		id := fs.free
		link, err := fs.freeLink(id)
		if err != nil {
			return InvalidPage, err
		}
		if err := fs.WritePage(id, zero); err != nil {
			return InvalidPage, err
		}
		fs.free = link
		return id, nil
	}
	id := PageID(fs.count)
	fs.count++
	if err := fs.WritePage(id, zero); err != nil {
		fs.count--
		return InvalidPage, err
	}
	return id, nil
}

// freeLink reads the next-free link stored in a freed page, verifying its
// checksum.
func (fs *FileStore) freeLink(id PageID) (PageID, error) {
	buf := make([]byte, PageSize)
	if err := fs.ReadPage(id, buf); err != nil {
		return InvalidPage, err
	}
	return PageID(binary.LittleEndian.Uint32(buf)), nil
}

// Free implements Store. The freed page is rewritten in full (link +
// zeros) so it remains checksummed on disk.
func (fs *FileStore) Free(id PageID) error {
	if err := fs.check(id); err != nil {
		return err
	}
	page := make([]byte, PageSize)
	binary.LittleEndian.PutUint32(page, uint32(fs.free))
	if err := fs.WritePage(id, page); err != nil {
		return err
	}
	fs.free = id
	return nil
}

// FreeList walks the on-disk free chain and returns it in order. It
// fails on checksum errors, out-of-range links, or cycles.
func (fs *FileStore) FreeList() ([]PageID, error) {
	if fs.closed {
		return nil, ErrClosed
	}
	var list []PageID
	seen := make(map[PageID]bool)
	for id := fs.free; id != InvalidPage; {
		if uint32(id) >= fs.count {
			return nil, fmt.Errorf("%w: free-list link %d >= %d", ErrPageOutOfRange, id, fs.count)
		}
		if seen[id] {
			return nil, fmt.Errorf("pager: free-list cycle at page %d", id)
		}
		seen[id] = true
		list = append(list, id)
		next, err := fs.freeLink(id)
		if err != nil {
			return nil, err
		}
		id = next
	}
	return list, nil
}

// ResetFreeList discards the in-memory free chain and rebuilds it so that
// it contains exactly ids (head first), rewriting each page's link. The
// caller commits via Sync.
func (fs *FileStore) ResetFreeList(ids []PageID) error {
	if fs.closed {
		return ErrClosed
	}
	fs.free = InvalidPage
	for i := len(ids) - 1; i >= 0; i-- {
		if err := fs.Free(ids[i]); err != nil {
			return err
		}
	}
	return nil
}

// NumPages implements Store. Freed pages remain counted until reused; the
// file does not shrink.
func (fs *FileStore) NumPages() int { return int(fs.count) }

// CommittedSeq returns the sequence number of the last committed header.
func (fs *FileStore) CommittedSeq() uint64 { return fs.seq }

// VerifyHeader re-reads the committed header slot from disk and checks
// it still decodes to the committed sequence — the post-recovery sanity
// check the maintenance probe runs before clearing degraded mode, so a
// header torn by the failure burst that tripped read-only is caught
// before writes resume.
func (fs *FileStore) VerifyHeader() error {
	if fs.closed {
		return ErrClosed
	}
	buf := make([]byte, PageSize)
	slot := int64(fs.seq % headerSlots)
	if n, err := fs.f.ReadAt(buf, slot*PageSize); err != nil && n != PageSize {
		return fmt.Errorf("pager: reread header slot %d: %w", slot, err)
	}
	if !bytes.Equal(buf[hdrMagicOff:hdrMagicOff+8], []byte(fileMagic)) {
		return fmt.Errorf("pager: header slot %d: %w (bad magic)", slot, ErrCorruptHeader)
	}
	cand, ok := decodeHeader(fs.f, buf)
	if !ok {
		return fmt.Errorf("pager: header slot %d: %w", slot, ErrCorruptHeader)
	}
	if cand.seq != fs.seq {
		return fmt.Errorf("pager: header slot %d holds seq %d, committed state is %d: %w",
			slot, cand.seq, fs.seq, ErrCorruptHeader)
	}
	return nil
}

// BothHeaderSlotsValid reports whether both header slots decoded cleanly
// when the store was opened (false after recovering from a torn header
// commit; the next Sync repairs the stale slot).
func (fs *FileStore) BothHeaderSlotsValid() bool { return fs.bothValid }

// SetRoot records a user root page id (the index root). It is committed
// by the next Sync/Close.
func (fs *FileStore) SetRoot(id PageID) error {
	if fs.closed {
		return ErrClosed
	}
	fs.root = id
	return nil
}

// Root returns the user root page id.
func (fs *FileStore) Root() PageID { return fs.root }

// SetAux stages up to MaxAux bytes of caller metadata (e.g. index shape)
// for the next header commit.
func (fs *FileStore) SetAux(data []byte) error {
	if fs.closed {
		return ErrClosed
	}
	if len(data) > MaxAux {
		return fmt.Errorf("pager: aux data %d bytes exceeds %d", len(data), MaxAux)
	}
	fs.aux = append(fs.aux[:0], data...)
	return nil
}

// Aux returns the caller metadata from the last committed or staged
// header (nil if none).
func (fs *FileStore) Aux() []byte { return append([]byte(nil), fs.aux...) }

// Sync implements Store: it fsyncs the data pages, then atomically
// commits the current allocation state and metadata by writing the
// alternate header slot and fsyncing again. If the process dies between
// the two steps the previous header still describes a consistent file.
func (fs *FileStore) Sync() error {
	if fs.closed {
		return ErrClosed
	}
	if err := fs.f.Sync(); err != nil {
		return fmt.Errorf("pager: sync data: %w", err)
	}
	return fs.commit()
}

// Close implements Store: it commits (as Sync) and closes the file.
func (fs *FileStore) Close() error {
	if fs.closed {
		return nil
	}
	if err := fs.Sync(); err != nil {
		fs.closed = true
		fs.f.Close()
		return err
	}
	fs.closed = true
	return fs.f.Close()
}

// Crash abandons the store without committing, simulating a process
// crash: buffered state (allocations, root, aux) staged since the last
// Sync is lost. Test hook.
func (fs *FileStore) Crash() error {
	if fs.closed {
		return nil
	}
	fs.closed = true
	return fs.f.Close()
}
