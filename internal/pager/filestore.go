package pager

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
)

// FileStore is a Store persisted in a single file. It exists so indexes
// can be built once (cmd/dqload) and reopened by later runs; the
// experiment harness itself defaults to MemStore.
type FileStore struct {
	f      *os.File
	count  uint32 // data pages in the file (allocated + freed)
	free   PageID // head of free-page chain
	root   PageID // user root pointer (see SetRoot)
	aux    []byte // caller metadata (see SetAux)
	closed bool
}

// MaxAux is the caller-metadata capacity of the header page.
const MaxAux = 256

// CreateFileStore creates (truncating) a page file at path.
func CreateFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: create %s: %w", path, err)
	}
	fs := &FileStore{f: f, free: InvalidPage, root: InvalidPage}
	if err := fs.writeHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return fs, nil
}

// OpenFileStore opens an existing page file.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	hdr := make([]byte, PageSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: read header of %s: %w", path, err)
	}
	if !bytes.Equal(hdr[hdrMagicOff:hdrMagicOff+8], []byte(fileMagic)) {
		f.Close()
		return nil, fmt.Errorf("pager: %s is not a dynq page file", path)
	}
	auxLen := int(binary.LittleEndian.Uint16(hdr[hdrAuxLenOff:]))
	if auxLen > MaxAux {
		f.Close()
		return nil, fmt.Errorf("pager: %s header aux length %d corrupt", path, auxLen)
	}
	return &FileStore{
		f:     f,
		count: binary.LittleEndian.Uint32(hdr[hdrCountOff:]),
		free:  PageID(binary.LittleEndian.Uint32(hdr[hdrFreeOff:])),
		root:  PageID(binary.LittleEndian.Uint32(hdr[hdrRootOff:])),
		aux:   append([]byte(nil), hdr[hdrAuxOff:hdrAuxOff+auxLen]...),
	}, nil
}

func (fs *FileStore) writeHeader() error {
	hdr := make([]byte, PageSize)
	putHeader(hdr, fs.count, fs.free, fs.root)
	binary.LittleEndian.PutUint16(hdr[hdrAuxLenOff:], uint16(len(fs.aux)))
	copy(hdr[hdrAuxOff:], fs.aux)
	_, err := fs.f.WriteAt(hdr, 0)
	return err
}

func (fs *FileStore) offset(id PageID) int64 { return int64(id+1) * PageSize }

func (fs *FileStore) check(id PageID) error {
	if fs.closed {
		return ErrClosed
	}
	if uint32(id) >= fs.count {
		return fmt.Errorf("%w: %d >= %d", ErrPageOutOfRange, id, fs.count)
	}
	return nil
}

// ReadPage implements Store.
func (fs *FileStore) ReadPage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrBadPageData
	}
	if err := fs.check(id); err != nil {
		return err
	}
	_, err := fs.f.ReadAt(buf, fs.offset(id))
	return err
}

// WritePage implements Store.
func (fs *FileStore) WritePage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrBadPageData
	}
	if err := fs.check(id); err != nil {
		return err
	}
	_, err := fs.f.WriteAt(buf, fs.offset(id))
	return err
}

// Alloc implements Store.
func (fs *FileStore) Alloc() (PageID, error) {
	if fs.closed {
		return InvalidPage, ErrClosed
	}
	if fs.free != InvalidPage {
		id := fs.free
		var link [4]byte
		if _, err := fs.f.ReadAt(link[:], fs.offset(id)); err != nil {
			return InvalidPage, err
		}
		fs.free = PageID(binary.LittleEndian.Uint32(link[:]))
		zero := make([]byte, PageSize)
		if err := fs.WritePage(id, zero); err != nil {
			return InvalidPage, err
		}
		return id, fs.writeHeader()
	}
	id := PageID(fs.count)
	fs.count++
	zero := make([]byte, PageSize)
	if _, err := fs.f.WriteAt(zero, fs.offset(id)); err != nil {
		fs.count--
		return InvalidPage, err
	}
	return id, fs.writeHeader()
}

// Free implements Store.
func (fs *FileStore) Free(id PageID) error {
	if err := fs.check(id); err != nil {
		return err
	}
	var link [4]byte
	binary.LittleEndian.PutUint32(link[:], uint32(fs.free))
	if _, err := fs.f.WriteAt(link[:], fs.offset(id)); err != nil {
		return err
	}
	fs.free = id
	return fs.writeHeader()
}

// NumPages implements Store. Freed pages remain counted until reused; the
// file does not shrink.
func (fs *FileStore) NumPages() int { return int(fs.count) }

// SetRoot records a user root page id (the index root) in the file header.
func (fs *FileStore) SetRoot(id PageID) error {
	fs.root = id
	return fs.writeHeader()
}

// Root returns the user root page id recorded in the header.
func (fs *FileStore) Root() PageID { return fs.root }

// SetAux stores up to MaxAux bytes of caller metadata (e.g. index shape)
// in the header page, durable across reopen.
func (fs *FileStore) SetAux(data []byte) error {
	if len(data) > MaxAux {
		return fmt.Errorf("pager: aux data %d bytes exceeds %d", len(data), MaxAux)
	}
	fs.aux = append(fs.aux[:0], data...)
	return fs.writeHeader()
}

// Aux returns the caller metadata stored in the header (nil if none).
func (fs *FileStore) Aux() []byte { return append([]byte(nil), fs.aux...) }

// Sync implements Store.
func (fs *FileStore) Sync() error {
	if fs.closed {
		return ErrClosed
	}
	return fs.f.Sync()
}

// Close implements Store.
func (fs *FileStore) Close() error {
	if fs.closed {
		return nil
	}
	fs.closed = true
	if err := fs.writeHeader(); err != nil {
		fs.f.Close()
		return err
	}
	return fs.f.Close()
}
