package quadtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dynq/internal/geom"
	"dynq/internal/motion"
	"dynq/internal/pager"
	"dynq/internal/rtree"
	"dynq/internal/stats"
)

func worldBounds() geom.Box {
	return geom.Box{{Lo: 0, Hi: 100}, {Lo: 0, Hi: 100}}
}

func genEntries(t testing.TB, objects int, seed int64) []rtree.LeafEntry {
	t.Helper()
	segs, err := motion.GenerateSegments(motion.SimConfig{
		Objects: objects, Dims: 2, WorldSize: 100, Duration: 50,
		Speed: 1, SpeedStd: 0.2, UpdateMean: 1, UpdateStd: 0.25, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]rtree.LeafEntry, len(segs))
	for i, s := range segs {
		out[i] = rtree.LeafEntry{ID: rtree.ObjectID(s.ObjID), Seg: s.Seg}
	}
	return out
}

func buildQuadtree(t testing.TB, entries []rtree.LeafEntry) *Tree {
	t.Helper()
	qt, err := New(worldBounds(), 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := qt.Insert(e.ID, e.Seg); err != nil {
			t.Fatal(err)
		}
	}
	return qt
}

func bruteForce(entries []rtree.LeafEntry, spatial geom.Box, tw geom.Interval) map[rtree.ObjectID]int {
	q := append(spatial.Clone(), tw)
	out := map[rtree.ObjectID]int{}
	for _, e := range entries {
		if e.Seg.IntersectsBox(q) {
			out[e.ID]++
		}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(geom.Box{{Lo: 0, Hi: 1}}, 10); err == nil {
		t.Error("1-d bounds should be rejected")
	}
	if _, err := New(geom.Box{{Lo: 1, Hi: 0}, {Lo: 0, Hi: 1}}, 10); err == nil {
		t.Error("empty bounds should be rejected")
	}
	if _, err := New(worldBounds(), 0); err == nil {
		t.Error("zero depth should be rejected")
	}
}

func TestInsertValidation(t *testing.T) {
	qt, err := New(worldBounds(), 10)
	if err != nil {
		t.Fatal(err)
	}
	bad := geom.Segment{T: geom.Interval{Lo: 0, Hi: 1}, Start: geom.Point{-5, 5}, End: geom.Point{5, 5}}
	if err := qt.Insert(1, bad); err == nil {
		t.Error("out-of-bounds segment should be rejected")
	}
	if err := qt.Insert(1, geom.Segment{T: geom.Interval{Lo: 1, Hi: 0}, Start: geom.Point{1, 1}, End: geom.Point{2, 2}}); err == nil {
		t.Error("empty validity should be rejected")
	}
	if err := qt.Insert(1, geom.Segment{T: geom.Interval{Lo: 0, Hi: 1}, Start: geom.Point{1}, End: geom.Point{2}}); err == nil {
		t.Error("wrong dims should be rejected")
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	entries := genEntries(t, 100, 1)
	qt := buildQuadtree(t, entries)
	if qt.Len() != len(entries) {
		t.Fatalf("len = %d, want %d", qt.Len(), len(entries))
	}
	for _, q := range []struct {
		spatial geom.Box
		tw      geom.Interval
	}{
		{geom.Box{{Lo: 20, Hi: 35}, {Lo: 20, Hi: 35}}, geom.Interval{Lo: 10, Hi: 12}},
		{worldBounds(), geom.Interval{Lo: 0, Hi: 50}},
		{geom.Box{{Lo: 70, Hi: 90}, {Lo: 5, Hi: 25}}, geom.Interval{Lo: 40, Hi: 45}},
	} {
		var c stats.Counters
		got, err := qt.Search(q.spatial, q.tw, &c)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, n := range bruteForce(entries, q.spatial, q.tw) {
			want += n
		}
		if len(got) != want {
			t.Errorf("query %v/%v: got %d, want %d", q.spatial, q.tw, len(got), want)
		}
	}
	var c stats.Counters
	if _, err := qt.Search(geom.Box{{Lo: 0, Hi: 1}}, geom.Interval{Lo: 0, Hi: 1}, &c); err == nil {
		t.Error("1-d query should be rejected")
	}
	if _, err := qt.Search(worldBounds(), geom.Interval{Lo: 1, Hi: 0}, &c); err == nil {
		t.Error("empty window should be rejected")
	}
}

func TestStatsShape(t *testing.T) {
	entries := genEntries(t, 200, 2)
	qt := buildQuadtree(t, entries)
	st := qt.Stats()
	if st.Segments != len(entries) || st.Nodes < 10 || st.MaxDepth < 2 {
		t.Errorf("stats = %+v", st)
	}
}

// Property: quadtree results equal brute force for random queries.
func TestSearchProperty(t *testing.T) {
	entries := genEntries(t, 60, 3)
	qt := buildQuadtree(t, entries)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lo0, lo1 := r.Float64()*80, r.Float64()*80
		spatial := geom.Box{{Lo: lo0, Hi: lo0 + 5 + r.Float64()*15}, {Lo: lo1, Hi: lo1 + 5 + r.Float64()*15}}
		start := r.Float64() * 48
		tw := geom.Interval{Lo: start, Hi: start + r.Float64()*3}
		var c stats.Counters
		got, err := qt.Search(spatial, tw, &c)
		if err != nil {
			return false
		}
		want := 0
		for _, n := range bruteForce(entries, spatial, tw) {
			want += n
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The comparison the ablation bench quantifies: on the paper's workload
// the R-tree needs fewer node visits than the MX-CIF quadtree (midline
// straddlers pile up at shallow quadrants and every query rescans them).
func TestRTreeBeatsQuadtree(t *testing.T) {
	entries := genEntries(t, 300, 4)
	qt := buildQuadtree(t, entries)
	rt, err := rtree.BulkLoad(rtree.DefaultConfig(), pagerStore(), entries)
	if err != nil {
		t.Fatal(err)
	}
	var cQ, cR stats.Counters
	r := rand.New(rand.NewSource(5))
	for k := 0; k < 50; k++ {
		lo0, lo1 := r.Float64()*90, r.Float64()*90
		spatial := geom.Box{{Lo: lo0, Hi: lo0 + 8}, {Lo: lo1, Hi: lo1 + 8}}
		start := r.Float64() * 49
		tw := geom.Interval{Lo: start, Hi: start + 0.5}
		if _, err := qt.Search(spatial, tw, &cQ); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.RangeSearch(spatial, tw, rtree.SearchOptions{}, &cR); err != nil {
			t.Fatal(err)
		}
	}
	q, rr := cQ.Snapshot().DistanceComps, cR.Snapshot().DistanceComps
	if rr >= q {
		t.Errorf("R-tree distance comps (%d) should be below quadtree (%d)", rr, q)
	}
}

func pagerStore() pager.Store { return pager.NewMemStore() }
