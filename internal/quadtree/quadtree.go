// Package quadtree implements an MX-CIF quadtree over motion segments —
// the quadtree family is the other index structure the paper's related
// work surveys for mobile objects ([21] Samet's survey, [25] Tayeb,
// Ulusoy & Wolfson's quadtree-based dynamic attribute indexing). It
// exists as a comparison substrate: the ablation benchmarks measure it
// against the NSI R-tree on identical workloads, reproducing the
// conventional result that motivated the paper's choice of the R-tree
// family.
//
// Each segment is stored at the smallest quadrant that fully contains its
// spatial bounding box (the MX-CIF rule: no replication, no dedup), with
// the exact trajectory kept for leaf-level tests, like the NSI leaves.
// Node visits are charged to stats.Counters (a node is the unit of I/O,
// as in the paged R-tree).
package quadtree

import (
	"fmt"

	"dynq/internal/geom"
	"dynq/internal/rtree"
	"dynq/internal/stats"
)

// Tree is an MX-CIF quadtree over 2-d motion segments. Not safe for
// concurrent use.
type Tree struct {
	bounds   geom.Box // world extent (2-d)
	maxDepth int
	root     *node
	size     int
}

type node struct {
	quad     geom.Box
	items    []rtree.LeafEntry
	tHull    geom.Interval // validity hull of items + descendants
	children *[4]*node     // nil until split
}

// New creates a quadtree covering the 2-d world bounds. maxDepth caps
// subdivision (a segment whose box straddles a quadrant midline stays at
// that level regardless).
func New(bounds geom.Box, maxDepth int) (*Tree, error) {
	if len(bounds) != 2 || bounds.Empty() {
		return nil, fmt.Errorf("quadtree: bounds must be a non-empty 2-d box")
	}
	if maxDepth < 1 || maxDepth > 24 {
		return nil, fmt.Errorf("quadtree: maxDepth must be in [1,24]")
	}
	return &Tree{
		bounds:   bounds.Clone(),
		maxDepth: maxDepth,
		root:     &node{quad: bounds.Clone(), tHull: geom.EmptyInterval()},
	}, nil
}

// Len returns the number of indexed segments.
func (t *Tree) Len() int { return t.size }

// Insert adds one motion segment. Segments outside the world bounds are
// rejected.
func (t *Tree) Insert(id rtree.ObjectID, seg geom.Segment) error {
	if seg.Dims() != 2 {
		return fmt.Errorf("quadtree: segment must be 2-d")
	}
	if seg.T.Empty() {
		return fmt.Errorf("quadtree: segment has empty validity interval")
	}
	bb := spatialBB(seg)
	if !t.bounds.Contains(bb) {
		return fmt.Errorf("quadtree: segment of object %d escapes the world bounds", id)
	}
	n := t.root
	for depth := 0; depth < t.maxDepth; depth++ {
		n.tHull = n.tHull.Cover(seg.T)
		q := childIndex(n.quad, bb)
		if q < 0 {
			break // straddles a midline: stays here (the MX-CIF rule)
		}
		if n.children == nil {
			n.children = &[4]*node{}
		}
		if n.children[q] == nil {
			n.children[q] = &node{quad: childQuad(n.quad, q), tHull: geom.EmptyInterval()}
		}
		n = n.children[q]
	}
	n.tHull = n.tHull.Cover(seg.T)
	n.items = append(n.items, rtree.LeafEntry{ID: id, Seg: seg})
	t.size++
	return nil
}

// Search answers a spatio-temporal range query with exact leaf tests,
// charging one read per node visited and one distance computation per
// item or quadrant examined — the same accounting as the R-tree.
func (t *Tree) Search(spatial geom.Box, tw geom.Interval, c *stats.Counters) ([]rtree.Match, error) {
	if len(spatial) != 2 {
		return nil, fmt.Errorf("quadtree: query must be 2-d")
	}
	if tw.Empty() {
		return nil, fmt.Errorf("quadtree: query time window is empty")
	}
	qExact := append(spatial.Clone(), tw)
	var out []rtree.Match
	t.searchNode(t.root, spatial, tw, qExact, c, &out)
	c.AddResults(len(out))
	return out, nil
}

func (t *Tree) searchNode(n *node, spatial geom.Box, tw geom.Interval, qExact geom.Box, c *stats.Counters, out *[]rtree.Match) {
	// Quadtree nodes have no separate leaf level; charge them as leaf
	// reads when they carry items and internal otherwise, so totals stay
	// comparable.
	c.AddRead(n.children == nil)
	for _, e := range n.items {
		c.AddDistanceComps(1)
		if ov := e.Seg.OverlapTimeInBox(qExact); !ov.Empty() {
			*out = append(*out, rtree.Match{ID: e.ID, Seg: e.Seg, Overlap: ov})
		}
	}
	if n.children == nil {
		return
	}
	for _, ch := range *n.children {
		if ch == nil {
			continue
		}
		c.AddDistanceComps(1)
		if !ch.quad.Overlaps(spatial) || !ch.tHull.Overlaps(tw) {
			continue
		}
		t.searchNode(ch, spatial, tw, qExact, c, out)
	}
}

// Stats reports the tree's shape.
type Stats struct {
	Nodes    int
	Segments int
	MaxDepth int // deepest populated level
	MaxItems int // largest per-node item list (MX-CIF hot-spot measure)
}

// Stats walks the tree.
func (t *Tree) Stats() Stats {
	st := Stats{Segments: t.size}
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		st.Nodes++
		if depth > st.MaxDepth {
			st.MaxDepth = depth
		}
		if len(n.items) > st.MaxItems {
			st.MaxItems = len(n.items)
		}
		if n.children == nil {
			return
		}
		for _, ch := range *n.children {
			if ch != nil {
				walk(ch, depth+1)
			}
		}
	}
	walk(t.root, 0)
	return st
}

func spatialBB(seg geom.Segment) geom.Box {
	bb := make(geom.Box, 2)
	for i := 0; i < 2; i++ {
		lo, hi := seg.Start[i], seg.End[i]
		if lo > hi {
			lo, hi = hi, lo
		}
		bb[i] = geom.Interval{Lo: lo, Hi: hi}
	}
	return bb
}

// childIndex returns which quadrant (0..3) fully contains bb, or -1 if it
// straddles a midline.
func childIndex(quad, bb geom.Box) int {
	midX, midY := quad[0].Mid(), quad[1].Mid()
	var ix, iy int
	switch {
	case bb[0].Hi <= midX:
		ix = 0
	case bb[0].Lo >= midX:
		ix = 1
	default:
		return -1
	}
	switch {
	case bb[1].Hi <= midY:
		iy = 0
	case bb[1].Lo >= midY:
		iy = 1
	default:
		return -1
	}
	return iy*2 + ix
}

// childQuad returns the quadrant box for index q (0..3).
func childQuad(quad geom.Box, q int) geom.Box {
	midX, midY := quad[0].Mid(), quad[1].Mid()
	x := geom.Interval{Lo: quad[0].Lo, Hi: midX}
	if q%2 == 1 {
		x = geom.Interval{Lo: midX, Hi: quad[0].Hi}
	}
	y := geom.Interval{Lo: quad[1].Lo, Hi: midY}
	if q/2 == 1 {
		y = geom.Interval{Lo: midY, Hi: quad[1].Hi}
	}
	return geom.Box{x, y}
}
