// Package geom provides the geometric primitives of the paper's Section 3:
// intervals (Definition 1), boxes (Definition 2), points, motion segments,
// and the linear-inequality machinery used to compute the time intervals
// during which moving borders and moving points overlap axis-aligned
// regions (Section 4.1, Figure 3).
//
// All computation is performed in float64. Conversions to the float32
// on-disk key format round outward (see f32.go) so that a stored bounding
// box always contains the exact geometry it summarizes.
package geom

import "math"

// Interval is a closed range of values [Lo, Hi] (Definition 1 of the
// paper). An interval with Lo > Hi is empty. A single value v is
// represented as [v, v].
type Interval struct {
	Lo, Hi float64
}

// EmptyInterval returns a canonical empty interval.
func EmptyInterval() Interval { return Interval{Lo: 1, Hi: 0} }

// UniverseInterval returns the interval covering all representable values.
func UniverseInterval() Interval {
	return Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}
}

// IntervalOf returns the interval [v, v].
func IntervalOf(v float64) Interval { return Interval{Lo: v, Hi: v} }

// Empty reports whether the interval contains no values.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Length returns Hi-Lo, or 0 for an empty interval.
func (iv Interval) Length() float64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Intersect returns the common sub-range of two intervals (the paper's ∩).
// The result is empty if the intervals do not overlap.
func (iv Interval) Intersect(o Interval) Interval {
	return Interval{Lo: math.Max(iv.Lo, o.Lo), Hi: math.Min(iv.Hi, o.Hi)}
}

// Cover returns the smallest interval containing both operands (the
// paper's coverage operator ⊎). Covering with an empty interval returns
// the other operand unchanged.
func (iv Interval) Cover(o Interval) Interval {
	if iv.Empty() {
		return o
	}
	if o.Empty() {
		return iv
	}
	return Interval{Lo: math.Min(iv.Lo, o.Lo), Hi: math.Max(iv.Hi, o.Hi)}
}

// Overlaps reports whether the two intervals share at least one value
// (the paper's ≬).
func (iv Interval) Overlaps(o Interval) bool {
	return !iv.Intersect(o).Empty()
}

// Precedes reports whether every value of iv is at most o.Lo (the paper's
// ⪯). An empty interval vacuously precedes anything.
func (iv Interval) Precedes(o Interval) bool {
	if iv.Empty() {
		return true
	}
	return iv.Hi <= o.Lo
}

// Contains reports whether o is entirely inside iv. Every interval
// contains the empty interval.
func (iv Interval) Contains(o Interval) bool {
	if o.Empty() {
		return true
	}
	return iv.Lo <= o.Lo && o.Hi <= iv.Hi
}

// ContainsValue reports whether v lies in [Lo, Hi].
func (iv Interval) ContainsValue(v float64) bool {
	return iv.Lo <= v && v <= iv.Hi
}

// Expand returns the interval grown by delta on both sides. A negative
// delta shrinks it (possibly to empty).
func (iv Interval) Expand(delta float64) Interval {
	return Interval{Lo: iv.Lo - delta, Hi: iv.Hi + delta}
}

// Mid returns the midpoint of the interval.
func (iv Interval) Mid() float64 { return (iv.Lo + iv.Hi) / 2 }

// Add returns the interval sum {a+b : a ∈ iv, b ∈ o} (interval
// arithmetic; empty if either operand is empty).
func (iv Interval) Add(o Interval) Interval {
	if iv.Empty() || o.Empty() {
		return EmptyInterval()
	}
	return Interval{Lo: iv.Lo + o.Lo, Hi: iv.Hi + o.Hi}
}

// Mul returns the interval product {a·b : a ∈ iv, b ∈ o} (interval
// arithmetic; empty if either operand is empty). Used by the parametric
// space index to bound positions from parameter boxes.
func (iv Interval) Mul(o Interval) Interval {
	if iv.Empty() || o.Empty() {
		return EmptyInterval()
	}
	p1, p2 := iv.Lo*o.Lo, iv.Lo*o.Hi
	p3, p4 := iv.Hi*o.Lo, iv.Hi*o.Hi
	return Interval{
		Lo: math.Min(math.Min(p1, p2), math.Min(p3, p4)),
		Hi: math.Max(math.Max(p1, p2), math.Max(p3, p4)),
	}
}
