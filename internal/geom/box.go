package geom

import (
	"fmt"
	"strings"
)

// Box is an n-dimensional axis-aligned box ⟨I₁,…,Iₙ⟩ (Definition 2 of the
// paper): the cartesian product of one interval per dimension. A box is
// empty iff any of its extents is empty.
//
// Dimension order is a convention of the caller. The index packages use
// spatial dimensions first, temporal dimension(s) last.
type Box []Interval

// NewBox allocates a box with n empty extents.
func NewBox(n int) Box {
	b := make(Box, n)
	for i := range b {
		b[i] = EmptyInterval()
	}
	return b
}

// UniverseBox allocates a box with n unbounded extents.
func UniverseBox(n int) Box {
	b := make(Box, n)
	for i := range b {
		b[i] = UniverseInterval()
	}
	return b
}

// Clone returns a deep copy of the box.
func (b Box) Clone() Box {
	c := make(Box, len(b))
	copy(c, b)
	return c
}

// Empty reports whether the box covers no region (some extent is empty).
func (b Box) Empty() bool {
	for _, iv := range b {
		if iv.Empty() {
			return true
		}
	}
	return false
}

// Intersect returns the component-wise intersection of two boxes of equal
// dimensionality.
func (b Box) Intersect(o Box) Box {
	if len(b) != len(o) {
		panic(fmt.Sprintf("geom: intersect of %d-d box with %d-d box", len(b), len(o)))
	}
	r := make(Box, len(b))
	for i := range b {
		r[i] = b[i].Intersect(o[i])
	}
	return r
}

// Cover returns the smallest box containing both operands (⊎ applied
// per dimension). Covering with an empty box returns the other operand.
func (b Box) Cover(o Box) Box {
	if b.Empty() {
		return o.Clone()
	}
	if o.Empty() {
		return b.Clone()
	}
	r := make(Box, len(b))
	for i := range b {
		r[i] = b[i].Cover(o[i])
	}
	return r
}

// CoverInPlace grows b to also contain o. If b is empty it becomes a copy
// of o.
func (b Box) CoverInPlace(o Box) {
	if o.Empty() {
		return
	}
	if b.Empty() {
		copy(b, o)
		return
	}
	for i := range b {
		b[i] = b[i].Cover(o[i])
	}
}

// Overlaps reports whether the two boxes share at least one point.
func (b Box) Overlaps(o Box) bool {
	for i := range b {
		if !b[i].Overlaps(o[i]) {
			return false
		}
	}
	return true
}

// Contains reports whether o lies entirely inside b. Every box contains
// an empty box.
func (b Box) Contains(o Box) bool {
	if o.Empty() {
		return true
	}
	for i := range b {
		if !b[i].Contains(o[i]) {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether the point p (one coordinate per
// dimension) lies inside the box.
func (b Box) ContainsPoint(p Point) bool {
	for i := range b {
		if !b[i].ContainsValue(p[i]) {
			return false
		}
	}
	return true
}

// Area returns the product of the extent lengths (the box's n-dimensional
// volume); 0 for an empty box.
func (b Box) Area() float64 {
	if b.Empty() {
		return 0
	}
	a := 1.0
	for _, iv := range b {
		a *= iv.Length()
	}
	return a
}

// Margin returns the sum of the extent lengths (the R*-tree "margin"
// heuristic); 0 for an empty box.
func (b Box) Margin() float64 {
	if b.Empty() {
		return 0
	}
	m := 0.0
	for _, iv := range b {
		m += iv.Length()
	}
	return m
}

// Enlargement returns how much b's area would grow if it were extended to
// also cover o (the Guttman insertion heuristic).
func (b Box) Enlargement(o Box) float64 {
	return b.Cover(o).Area() - b.Area()
}

// Expand returns a copy of the box grown by delta on every side of every
// dimension.
func (b Box) Expand(delta float64) Box {
	r := make(Box, len(b))
	for i := range b {
		r[i] = b[i].Expand(delta)
	}
	return r
}

// Center returns the box's midpoint.
func (b Box) Center() Point {
	p := make(Point, len(b))
	for i := range b {
		p[i] = b[i].Mid()
	}
	return p
}

// Equal reports exact component-wise equality, treating all empty boxes
// as equal.
func (b Box) Equal(o Box) bool {
	if b.Empty() || o.Empty() {
		return b.Empty() && o.Empty()
	}
	if len(b) != len(o) {
		return false
	}
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the box as ⟨[lo,hi],…⟩ for debugging.
func (b Box) String() string {
	var sb strings.Builder
	sb.WriteString("⟨")
	for i, iv := range b {
		if i > 0 {
			sb.WriteString(", ")
		}
		if iv.Empty() {
			sb.WriteString("∅")
		} else {
			fmt.Fprintf(&sb, "[%g,%g]", iv.Lo, iv.Hi)
		}
	}
	sb.WriteString("⟩")
	return sb.String()
}

// Point is an n-dimensional location vector.
type Point []float64

// Clone returns a deep copy of the point.
func (p Point) Clone() Point {
	c := make(Point, len(p))
	copy(c, p)
	return c
}

// Add returns p + q.
func (p Point) Add(q Point) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] + q[i]
	}
	return r
}

// Sub returns p - q.
func (p Point) Sub(q Point) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] - q[i]
	}
	return r
}

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] * s
	}
	return r
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	s := 0.0
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return sqrt(s)
}

// Lerp returns the point p + f·(q-p), the linear interpolation between p
// (f=0) and q (f=1).
func (p Point) Lerp(q Point, f float64) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] + f*(q[i]-p[i])
	}
	return r
}
