package geom

import "math"

// The on-disk key format of the index stores box extents as float32 (this
// is what yields the paper's reported fanouts of 145/127 entries per 4 KiB
// page). A float64 → float32 conversion rounds to nearest, which could
// shrink a bounding box and break the invariant that a parent box contains
// its children. F32Floor and F32Ceil round outward instead.

// F32Floor returns the largest float32 value that is ≤ x. Used for box
// lower bounds.
func F32Floor(x float64) float32 {
	f := float32(x)
	if float64(f) > x {
		f = math.Nextafter32(f, float32(math.Inf(-1)))
	}
	return f
}

// F32Ceil returns the smallest float32 value that is ≥ x. Used for box
// upper bounds.
func F32Ceil(x float64) float32 {
	f := float32(x)
	if float64(f) < x {
		f = math.Nextafter32(f, float32(math.Inf(1)))
	}
	return f
}

// IntervalToF32 widens an interval outward to float32 precision, returning
// the rounded bounds. Empty intervals are preserved as empty.
func IntervalToF32(iv Interval) (lo, hi float32) {
	if iv.Empty() {
		return 1, 0
	}
	return F32Floor(iv.Lo), F32Ceil(iv.Hi)
}
