package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func seg(t0, t1, x0, y0, x1, y1 float64) Segment {
	return Segment{
		T:     Interval{t0, t1},
		Start: Point{x0, y0},
		End:   Point{x1, y1},
	}
}

func TestSegmentAt(t *testing.T) {
	s := seg(0, 10, 0, 0, 10, 20)
	if p := s.At(0); p[0] != 0 || p[1] != 0 {
		t.Errorf("At(0) = %v", p)
	}
	if p := s.At(10); p[0] != 10 || p[1] != 20 {
		t.Errorf("At(10) = %v", p)
	}
	if p := s.At(5); p[0] != 5 || p[1] != 10 {
		t.Errorf("At(5) = %v", p)
	}
	// Clamp outside validity.
	if p := s.At(-5); p[0] != 0 {
		t.Errorf("At(-5) = %v, should clamp to start", p)
	}
	if p := s.At(99); p[0] != 10 {
		t.Errorf("At(99) = %v, should clamp to end", p)
	}
	// Instantaneous segment.
	inst := seg(3, 3, 7, 8, 7, 8)
	if p := inst.At(3); p[0] != 7 || p[1] != 8 {
		t.Errorf("instantaneous At = %v", p)
	}
}

func TestSegmentVelocityAndBB(t *testing.T) {
	s := seg(0, 4, 0, 8, 8, 0)
	v := s.Velocity()
	if v[0] != 2 || v[1] != -2 {
		t.Errorf("velocity = %v", v)
	}
	bb := s.BoundingBox()
	want := Box{{0, 8}, {0, 8}, {0, 4}}
	if !bb.Equal(want) {
		t.Errorf("bb = %v, want %v", bb, want)
	}
	if s.Dims() != 2 {
		t.Errorf("dims = %d", s.Dims())
	}
	if v := seg(1, 1, 0, 0, 0, 0).Velocity(); v[0] != 0 || v[1] != 0 {
		t.Error("instantaneous segment should have zero velocity")
	}
}

func TestSegmentIntersectsBoxExact(t *testing.T) {
	// Object crosses the box's corner region but its BB overlaps a larger
	// area: the classic false-admission case the exact test avoids.
	s := seg(0, 10, 0, 0, 10, 10) // diagonal motion
	// Query box occupies the upper-left corner of the BB: x∈[0,2], y∈[8,10].
	// The diagonal never enters it (x == y along the trajectory).
	q := Box{{0, 2}, {8, 10}, {0, 10}}
	if s.IntersectsBox(q) {
		t.Error("exact test should reject corner box the trajectory misses")
	}
	if !s.BoundingBox().Overlaps(q) {
		t.Error("sanity: the BB does overlap (that is the point of the test)")
	}
	// A box straddling the diagonal is hit.
	q2 := Box{{4, 6}, {4, 6}, {0, 10}}
	if !s.IntersectsBox(q2) {
		t.Error("diagonal should pass through center box")
	}
	// Same spatial box but in a disjoint time window: no hit.
	q3 := Box{{4, 6}, {4, 6}, {20, 30}}
	if s.IntersectsBox(q3) {
		t.Error("time-disjoint query should not match")
	}
	// Time window clipped so the object has already left the region.
	q4 := Box{{0, 2}, {0, 2}, {5, 10}}
	if s.IntersectsBox(q4) {
		t.Error("object left [0,2]² before t=5")
	}
}

func TestSegmentOverlapTimeInBox(t *testing.T) {
	s := seg(0, 10, 0, 5, 10, 5) // horizontal motion at y=5
	q := Box{{2, 4}, {0, 10}, {0, 10}}
	iv := s.OverlapTimeInBox(q)
	if math.Abs(iv.Lo-2) > 1e-12 || math.Abs(iv.Hi-4) > 1e-12 {
		t.Errorf("overlap time = %v, want [2,4]", iv)
	}
	// Stationary object inside the box: whole clipped window.
	st := seg(0, 10, 3, 5, 3, 5)
	iv = st.OverlapTimeInBox(Box{{0, 4}, {0, 10}, {2, 6}})
	if iv != (Interval{2, 6}) {
		t.Errorf("stationary overlap = %v", iv)
	}
	// Stationary object outside: empty.
	if iv := st.OverlapTimeInBox(Box{{4, 5}, {0, 10}, {0, 10}}); !iv.Empty() {
		t.Errorf("outside stationary overlap = %v", iv)
	}
}

func TestSegmentCoordAndDist(t *testing.T) {
	s := seg(2, 6, 1, 1, 9, 1)
	cx := s.Coord(0)
	if cx.At(2) != 1 || cx.At(6) != 9 || cx.At(4) != 5 {
		t.Error("Coord(0) interpolation wrong")
	}
	if d := s.DistSqAt(4, Point{5, 4}); d != 9 {
		t.Errorf("DistSqAt = %v, want 9", d)
	}
}

// Property: exact intersection implies bounding-box intersection (the BB
// is a conservative filter), and every reported overlap time is a time at
// which the object really is inside the query box.
func TestSegmentExactVsBBProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := Segment{
			T:     Interval{r.Float64() * 5, 5 + r.Float64()*5},
			Start: Point{r.Float64() * 10, r.Float64() * 10},
			End:   Point{r.Float64() * 10, r.Float64() * 10},
		}
		q := Box{randInterval(r).Expand(5), randInterval(r).Expand(5), {r.Float64() * 4, 4 + r.Float64()*6}}
		iv := s.OverlapTimeInBox(q)
		if !iv.Empty() {
			if !s.BoundingBox().Overlaps(q) {
				return false // exact hit must imply BB hit
			}
			for i := 0; i < 8; i++ {
				tt := iv.Lo + r.Float64()*iv.Length()
				p := s.At(tt)
				// Position must be inside q's spatial extents (tolerantly).
				if p[0] < q[0].Lo-1e-9 || p[0] > q[0].Hi+1e-9 ||
					p[1] < q[1].Lo-1e-9 || p[1] > q[1].Hi+1e-9 {
					return false
				}
				if tt < q[2].Lo-1e-9 || tt > q[2].Hi+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: sampling the trajectory densely agrees with the analytic
// overlap interval (no interior misses).
func TestSegmentOverlapSamplingProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := Segment{
			T:     Interval{0, 10},
			Start: Point{r.Float64() * 10, r.Float64() * 10},
			End:   Point{r.Float64() * 10, r.Float64() * 10},
		}
		q := Box{{2, 8}, {2, 8}, {0, 10}}
		iv := s.OverlapTimeInBox(q)
		for i := 0; i <= 100; i++ {
			tt := float64(i) / 10
			p := s.At(tt)
			inside := p[0] >= 2 && p[0] <= 8 && p[1] >= 2 && p[1] <= 8
			if inside && !iv.ContainsValue(tt) {
				// Tolerate boundary-grazing samples.
				if math.Min(math.Abs(tt-iv.Lo), math.Abs(tt-iv.Hi)) < 1e-9 {
					continue
				}
				d := math.Min(math.Min(p[0]-2, 8-p[0]), math.Min(p[1]-2, 8-p[1]))
				if d < 1e-9 {
					continue
				}
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
