package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalEmpty(t *testing.T) {
	cases := []struct {
		iv   Interval
		want bool
	}{
		{Interval{0, 1}, false},
		{Interval{1, 0}, true},
		{Interval{2, 2}, false},
		{EmptyInterval(), true},
		{UniverseInterval(), false},
		{IntervalOf(5), false},
	}
	for _, c := range cases {
		if got := c.iv.Empty(); got != c.want {
			t.Errorf("Empty(%v) = %v, want %v", c.iv, got, c.want)
		}
	}
}

func TestIntervalIntersect(t *testing.T) {
	cases := []struct {
		a, b, want Interval
	}{
		{Interval{0, 5}, Interval{3, 8}, Interval{3, 5}},
		{Interval{0, 5}, Interval{5, 8}, Interval{5, 5}},
		{Interval{0, 5}, Interval{6, 8}, Interval{6, 5}},
		{Interval{0, 10}, Interval{2, 3}, Interval{2, 3}},
	}
	for _, c := range cases {
		got := c.a.Intersect(c.b)
		if got.Empty() != c.want.Empty() || (!got.Empty() && got != c.want) {
			t.Errorf("%v ∩ %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIntervalCover(t *testing.T) {
	a, b := Interval{0, 2}, Interval{5, 7}
	if got := a.Cover(b); got != (Interval{0, 7}) {
		t.Errorf("cover = %v", got)
	}
	if got := a.Cover(EmptyInterval()); got != a {
		t.Errorf("cover with empty = %v, want %v", got, a)
	}
	if got := EmptyInterval().Cover(b); got != b {
		t.Errorf("empty cover = %v, want %v", got, b)
	}
}

func TestIntervalPrecedes(t *testing.T) {
	if !(Interval{0, 2}).Precedes(Interval{2, 5}) {
		t.Error("[0,2] should precede [2,5]")
	}
	if (Interval{0, 3}).Precedes(Interval{2, 5}) {
		t.Error("[0,3] should not precede [2,5]")
	}
	if !EmptyInterval().Precedes(Interval{-10, -5}) {
		t.Error("empty should precede anything")
	}
}

func TestIntervalContains(t *testing.T) {
	big := Interval{0, 10}
	if !big.Contains(Interval{2, 5}) || !big.Contains(big) {
		t.Error("containment of sub-interval failed")
	}
	if big.Contains(Interval{-1, 5}) || big.Contains(Interval{5, 11}) {
		t.Error("containment should fail for escaping intervals")
	}
	if !big.Contains(EmptyInterval()) {
		t.Error("everything contains the empty interval")
	}
	if !big.ContainsValue(0) || !big.ContainsValue(10) || big.ContainsValue(10.5) {
		t.Error("ContainsValue boundary behaviour wrong")
	}
}

func TestIntervalExpandLengthMid(t *testing.T) {
	iv := Interval{2, 6}
	if got := iv.Expand(1); got != (Interval{1, 7}) {
		t.Errorf("expand = %v", got)
	}
	if got := iv.Expand(-3); !got.Empty() {
		t.Errorf("over-shrunk interval should be empty, got %v", got)
	}
	if iv.Length() != 4 || iv.Mid() != 4 {
		t.Errorf("length/mid = %v/%v", iv.Length(), iv.Mid())
	}
	if EmptyInterval().Length() != 0 {
		t.Error("empty interval length should be 0")
	}
}

func randInterval(r *rand.Rand) Interval {
	a, b := r.Float64()*20-10, r.Float64()*20-10
	if r.Intn(4) == 0 {
		return Interval{a, a} // degenerate point interval
	}
	if a > b {
		a, b = b, a
	}
	return Interval{a, b}
}

// Property: intersection is the greatest lower bound — it is contained in
// both operands, and any value in both operands is in the intersection.
func TestIntervalIntersectProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randInterval(r), randInterval(r)
		got := a.Intersect(b)
		if !a.Contains(got) || !b.Contains(got) {
			return false
		}
		for i := 0; i < 20; i++ {
			v := r.Float64()*24 - 12
			inBoth := a.ContainsValue(v) && b.ContainsValue(v)
			if inBoth != got.ContainsValue(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cover contains both operands and is the smallest such interval
// (its endpoints are drawn from the operands).
func TestIntervalCoverProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randInterval(r), randInterval(r)
		c := a.Cover(b)
		if !c.Contains(a) || !c.Contains(b) {
			return false
		}
		loOK := c.Lo == a.Lo || c.Lo == b.Lo
		hiOK := c.Hi == a.Hi || c.Hi == b.Hi
		return loOK && hiOK
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Overlaps is symmetric and agrees with non-empty intersection.
func TestIntervalOverlapsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randInterval(r), randInterval(r)
		return a.Overlaps(b) == b.Overlaps(a) &&
			a.Overlaps(b) == !a.Intersect(b).Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniverseInterval(t *testing.T) {
	u := UniverseInterval()
	for _, v := range []float64{0, 1e300, -1e300, math.MaxFloat64} {
		if !u.ContainsValue(v) {
			t.Errorf("universe should contain %g", v)
		}
	}
}

func TestIntervalArithmetic(t *testing.T) {
	a, b := Interval{Lo: 1, Hi: 2}, Interval{Lo: 10, Hi: 20}
	if got := a.Add(b); got != (Interval{Lo: 11, Hi: 22}) {
		t.Errorf("add = %v", got)
	}
	if got := a.Mul(b); got != (Interval{Lo: 10, Hi: 40}) {
		t.Errorf("mul = %v", got)
	}
	// Signs flip bounds.
	neg := Interval{Lo: -3, Hi: 2}
	if got := neg.Mul(Interval{Lo: 4, Hi: 5}); got != (Interval{Lo: -15, Hi: 10}) {
		t.Errorf("mixed-sign mul = %v", got)
	}
	if !a.Add(EmptyInterval()).Empty() || !EmptyInterval().Mul(b).Empty() {
		t.Error("arithmetic with empty should be empty")
	}
}

// Property: interval arithmetic is conservative — the product/sum of any
// members lies inside the result interval.
func TestIntervalArithmeticProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randInterval(r), randInterval(r)
		sum, prod := a.Add(b), a.Mul(b)
		for i := 0; i < 20; i++ {
			x := a.Lo + r.Float64()*a.Length()
			y := b.Lo + r.Float64()*b.Length()
			if !sum.ContainsValue(x+y) && math.Abs(x+y-sum.Lo) > 1e-9 && math.Abs(x+y-sum.Hi) > 1e-9 {
				return false
			}
			p := x * y
			if !prod.ContainsValue(p) && math.Abs(p-prod.Lo) > 1e-9 && math.Abs(p-prod.Hi) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
