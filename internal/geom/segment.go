package geom

// Segment is one motion segment of an object in native (d-dimensional)
// space: the object translates linearly from Start at time T.Lo to End at
// time T.Hi (Equation 1 of the paper, between two motion updates).
//
// The NSI leaf level stores segments by their end points, not their
// bounding boxes, so queries can test the exact trajectory (the leaf-level
// optimization of Section 3.2).
type Segment struct {
	T     Interval // valid time [t_l, t_h]
	Start Point    // location at T.Lo
	End   Point    // location at T.Hi
}

// Dims returns the spatial dimensionality of the segment.
func (s Segment) Dims() int { return len(s.Start) }

// At returns the object's location at time t, which must lie inside s.T
// (clamped otherwise). This is the location function f of Equation 1.
func (s Segment) At(t float64) Point {
	if s.T.Length() == 0 {
		return s.Start.Clone()
	}
	f := (t - s.T.Lo) / (s.T.Hi - s.T.Lo)
	if f < 0 {
		f = 0
	} else if f > 1 {
		f = 1
	}
	return s.Start.Lerp(s.End, f)
}

// Coord returns the i-th coordinate of the trajectory as a linear form of
// time.
func (s Segment) Coord(i int) Linear {
	return LinearBetween(s.T.Lo, s.Start[i], s.T.Hi, s.End[i])
}

// Velocity returns the constant velocity vector of the segment; zero for
// an instantaneous segment.
func (s Segment) Velocity() Point {
	v := make(Point, s.Dims())
	dt := s.T.Length()
	if dt == 0 {
		return v
	}
	for i := range v {
		v[i] = (s.End[i] - s.Start[i]) / dt
	}
	return v
}

// BoundingBox returns the segment's space-time bounding box with spatial
// dimensions first and the time interval as the final extent. This is the
// NSI index key of Section 3.2.
func (s Segment) BoundingBox() Box {
	d := s.Dims()
	b := make(Box, d+1)
	for i := 0; i < d; i++ {
		lo, hi := s.Start[i], s.End[i]
		if lo > hi {
			lo, hi = hi, lo
		}
		b[i] = Interval{Lo: lo, Hi: hi}
	}
	b[d] = s.T
	return b
}

// IntersectsBox reports whether the exact trajectory passes through the
// spatio-temporal query box q (spatial extents first, time extent last),
// i.e. whether there is a time t ∈ q[d] ∩ s.T at which the object's
// position lies inside the spatial extents of q. This is the exact
// leaf-level test of Section 3.2 that avoids the false admissions of the
// bounding-box test.
func (s Segment) IntersectsBox(q Box) bool {
	return !s.OverlapTimeInBox(q).Empty()
}

// OverlapTimeInBox returns the time interval during which the trajectory
// lies inside the spatial extents of q, clipped to q's time extent. The
// result is empty if the trajectory never enters q during q's validity.
func (s Segment) OverlapTimeInBox(q Box) Interval {
	d := s.Dims()
	w := s.T.Intersect(q[d])
	for i := 0; i < d && !w.Empty(); i++ {
		w = s.Coord(i).SolveBetween(q[i].Lo, q[i].Hi, w)
	}
	return w
}

// DistSqAt returns the squared Euclidean distance between the object's
// position at time t and the point p.
func (s Segment) DistSqAt(t float64, p Point) float64 {
	x := s.At(t)
	sum := 0.0
	for i := range x {
		dd := x[i] - p[i]
		sum += dd * dd
	}
	return sum
}
