package geom

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestIntervalSetBasic(t *testing.T) {
	var s IntervalSet
	if !s.Empty() || !s.Hull().Empty() {
		t.Error("new set should be empty")
	}
	s.Add(Interval{5, 7})
	s.Add(Interval{1, 2})
	s.Add(Interval{9, 10})
	ivs := s.Intervals()
	if len(ivs) != 3 || ivs[0] != (Interval{1, 2}) || ivs[1] != (Interval{5, 7}) || ivs[2] != (Interval{9, 10}) {
		t.Fatalf("intervals = %v", ivs)
	}
	if s.Hull() != (Interval{1, 10}) {
		t.Errorf("hull = %v", s.Hull())
	}
	if s.Length() != 4 {
		t.Errorf("length = %v", s.Length())
	}
	if !s.Contains(6) || s.Contains(3) || !s.Contains(1) || !s.Contains(10) {
		t.Error("membership wrong")
	}
}

func TestIntervalSetMerge(t *testing.T) {
	var s IntervalSet
	s.Add(Interval{1, 3})
	s.Add(Interval{5, 8})
	s.Add(Interval{2, 6}) // bridges both
	ivs := s.Intervals()
	if len(ivs) != 1 || ivs[0] != (Interval{1, 8}) {
		t.Fatalf("merged = %v", ivs)
	}
	// Touching endpoints merge too.
	s.Reset()
	s.Add(Interval{0, 1})
	s.Add(Interval{1, 2})
	if len(s.Intervals()) != 1 || s.Hull() != (Interval{0, 2}) {
		t.Errorf("touching merge = %v", s.Intervals())
	}
	// Empty interval is a no-op.
	s.Add(EmptyInterval())
	if len(s.Intervals()) != 1 {
		t.Error("adding empty interval changed the set")
	}
}

func TestIntervalSetAbsorb(t *testing.T) {
	var s IntervalSet
	s.Add(Interval{0, 10})
	s.Add(Interval{2, 3})
	if len(s.Intervals()) != 1 || s.Hull() != (Interval{0, 10}) {
		t.Errorf("absorbed = %v", s.Intervals())
	}
	// Superset replaces.
	s.Add(Interval{-5, 20})
	if len(s.Intervals()) != 1 || s.Hull() != (Interval{-5, 20}) {
		t.Errorf("superset = %v", s.Intervals())
	}
}

// Property: after any sequence of Adds, the stored intervals are sorted,
// disjoint (non-touching), and membership matches the naive union.
func TestIntervalSetInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var s IntervalSet
		var added []Interval
		for i := 0; i < 30; i++ {
			iv := randInterval(r)
			s.Add(iv)
			added = append(added, iv)
		}
		ivs := s.Intervals()
		if !sort.SliceIsSorted(ivs, func(a, b int) bool { return ivs[a].Lo < ivs[b].Lo }) {
			return false
		}
		for i := 1; i < len(ivs); i++ {
			if ivs[i-1].Hi >= ivs[i].Lo { // must be strictly separated
				return false
			}
		}
		for i := 0; i < 60; i++ {
			v := r.Float64()*24 - 12
			naive := false
			for _, iv := range added {
				if iv.ContainsValue(v) {
					naive = true
					break
				}
			}
			if naive != s.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalSetReset(t *testing.T) {
	var s IntervalSet
	s.Add(Interval{0, 1})
	s.Reset()
	if !s.Empty() || s.Length() != 0 {
		t.Error("reset should empty the set")
	}
}
