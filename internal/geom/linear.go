package geom

import "math"

func sqrt(x float64) float64 { return math.Sqrt(x) }

// Linear is the affine function of time v(t) = A + B·(t - T0). It models
// the moving borders of a query trapezoid (Section 4.1, Figure 3) and the
// coordinates of linearly translating objects (Equation 1).
type Linear struct {
	A  float64 // value at t = T0
	B  float64 // slope
	T0 float64 // reference time
}

// At evaluates the linear form at time t.
func (l Linear) At(t float64) float64 { return l.A + l.B*(t-l.T0) }

// LinearBetween returns the linear form interpolating value v0 at time t0
// and value v1 at time t1. If t1 == t0 the form is constant v0.
func LinearBetween(t0, v0, t1, v1 float64) Linear {
	if t1 == t0 {
		return Linear{A: v0, B: 0, T0: t0}
	}
	return Linear{A: v0, B: (v1 - v0) / (t1 - t0), T0: t0}
}

// Sub returns the linear form l(t) - o(t).
func (l Linear) Sub(o Linear) Linear {
	// Rebase o to l.T0: o(t) = o.A + o.B*(l.T0 - o.T0) + o.B*(t - l.T0).
	oa := o.A + o.B*(l.T0-o.T0)
	return Linear{A: l.A - oa, B: l.B - o.B, T0: l.T0}
}

// SolveLE returns the sub-interval of window w on which l(t) ≤ c.
//
// This single solver subsumes the paper's "four cases" of Figure 3(b):
// an upward- or downward-moving border crossing a fixed bound yields a
// half-line in t, clipped to the window; a parallel border yields either
// the whole window or nothing.
func (l Linear) SolveLE(c float64, w Interval) Interval {
	if w.Empty() {
		return EmptyInterval()
	}
	if l.B == 0 {
		if l.A <= c {
			return w
		}
		return EmptyInterval()
	}
	// l(t) = c at tc.
	tc := l.T0 + (c-l.A)/l.B
	if l.B > 0 {
		// Increasing: l(t) ≤ c for t ≤ tc.
		return w.Intersect(Interval{Lo: math.Inf(-1), Hi: tc})
	}
	// Decreasing: l(t) ≤ c for t ≥ tc.
	return w.Intersect(Interval{Lo: tc, Hi: math.Inf(1)})
}

// SolveGE returns the sub-interval of window w on which l(t) ≥ c.
func (l Linear) SolveGE(c float64, w Interval) Interval {
	return Linear{A: -l.A, B: -l.B, T0: l.T0}.SolveLE(-c, w)
}

// SolveBetween returns the sub-interval of w on which lo ≤ l(t) ≤ hi.
func (l Linear) SolveBetween(lo, hi float64, w Interval) Interval {
	return l.SolveLE(hi, w).Intersect(l.SolveGE(lo, w))
}
