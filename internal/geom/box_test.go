package geom

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func box2(x0, x1, y0, y1 float64) Box {
	return Box{{x0, x1}, {y0, y1}}
}

func TestBoxEmpty(t *testing.T) {
	if box2(0, 1, 0, 1).Empty() {
		t.Error("unit box should not be empty")
	}
	if !box2(1, 0, 0, 1).Empty() {
		t.Error("box with empty extent should be empty")
	}
	if !NewBox(3).Empty() {
		t.Error("NewBox should be empty")
	}
	if UniverseBox(3).Empty() {
		t.Error("UniverseBox should not be empty")
	}
}

func TestBoxIntersectCover(t *testing.T) {
	a := box2(0, 4, 0, 4)
	b := box2(2, 6, 3, 8)
	got := a.Intersect(b)
	want := box2(2, 4, 3, 4)
	if !got.Equal(want) {
		t.Errorf("intersect = %v, want %v", got, want)
	}
	cov := a.Cover(b)
	if !cov.Equal(box2(0, 6, 0, 8)) {
		t.Errorf("cover = %v", cov)
	}
	// Disjoint boxes intersect to empty.
	c := box2(10, 12, 10, 12)
	if !a.Intersect(c).Empty() {
		t.Error("disjoint intersect should be empty")
	}
	// Cover with empty returns the other.
	if !a.Cover(NewBox(2)).Equal(a) || !NewBox(2).Cover(a).Equal(a) {
		t.Error("cover with empty box broken")
	}
}

func TestBoxIntersectDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	_ = box2(0, 1, 0, 1).Intersect(Box{{0, 1}})
}

func TestBoxContains(t *testing.T) {
	a := box2(0, 10, 0, 10)
	if !a.Contains(box2(1, 2, 3, 4)) || !a.Contains(a) {
		t.Error("containment failed")
	}
	if a.Contains(box2(-1, 2, 3, 4)) {
		t.Error("escaping box should not be contained")
	}
	if !a.Contains(NewBox(2)) {
		t.Error("every box contains the empty box")
	}
	if !a.ContainsPoint(Point{5, 5}) || a.ContainsPoint(Point{5, 11}) {
		t.Error("ContainsPoint wrong")
	}
}

func TestBoxAreaMarginEnlargement(t *testing.T) {
	a := box2(0, 2, 0, 3)
	if a.Area() != 6 || a.Margin() != 5 {
		t.Errorf("area/margin = %v/%v", a.Area(), a.Margin())
	}
	if NewBox(2).Area() != 0 || NewBox(2).Margin() != 0 {
		t.Error("empty box should have zero area and margin")
	}
	b := box2(4, 6, 0, 3)
	// Cover is [0,6]x[0,3] = 18; enlargement = 18-6 = 12.
	if got := a.Enlargement(b); got != 12 {
		t.Errorf("enlargement = %v, want 12", got)
	}
}

func TestBoxCoverInPlace(t *testing.T) {
	a := NewBox(2)
	a.CoverInPlace(box2(1, 2, 1, 2))
	if !a.Equal(box2(1, 2, 1, 2)) {
		t.Errorf("cover-in-place into empty = %v", a)
	}
	a.CoverInPlace(box2(5, 6, -1, 0))
	if !a.Equal(box2(1, 6, -1, 2)) {
		t.Errorf("cover-in-place = %v", a)
	}
	before := a.Clone()
	a.CoverInPlace(NewBox(2))
	if !a.Equal(before) {
		t.Error("covering with empty should be a no-op")
	}
}

func TestBoxExpandCenterString(t *testing.T) {
	a := box2(0, 2, 4, 8)
	if !a.Expand(1).Equal(box2(-1, 3, 3, 9)) {
		t.Errorf("expand = %v", a.Expand(1))
	}
	c := a.Center()
	if c[0] != 1 || c[1] != 6 {
		t.Errorf("center = %v", c)
	}
	if s := a.String(); !strings.Contains(s, "[0,2]") {
		t.Errorf("string = %q", s)
	}
	if s := NewBox(1).String(); !strings.Contains(s, "∅") {
		t.Errorf("empty box string = %q", s)
	}
}

func randBox(r *rand.Rand, n int) Box {
	b := make(Box, n)
	for i := range b {
		b[i] = randInterval(r)
	}
	return b
}

// Property: box containment is consistent with point membership.
func TestBoxContainsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randBox(r, 3), randBox(r, 3)
		if a.Contains(b) {
			// Every corner-ish sample of b must be in a.
			for i := 0; i < 10; i++ {
				p := Point{
					b[0].Lo + r.Float64()*b[0].Length(),
					b[1].Lo + r.Float64()*b[1].Length(),
					b[2].Lo + r.Float64()*b[2].Length(),
				}
				if !b.Empty() && !a.ContainsPoint(p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: intersect ⊆ both, cover ⊇ both, overlap ⇔ non-empty intersect.
func TestBoxLatticeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randBox(r, 2), randBox(r, 2)
		inter := a.Intersect(b)
		cov := a.Cover(b)
		return a.Contains(inter) && b.Contains(inter) &&
			cov.Contains(a) && cov.Contains(b) &&
			a.Overlaps(b) == !inter.Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointOps(t *testing.T) {
	p, q := Point{1, 2}, Point{4, 6}
	if d := p.Dist(q); d != 5 {
		t.Errorf("dist = %v, want 5", d)
	}
	if s := p.Add(q); s[0] != 5 || s[1] != 8 {
		t.Errorf("add = %v", s)
	}
	if s := q.Sub(p); s[0] != 3 || s[1] != 4 {
		t.Errorf("sub = %v", s)
	}
	if s := p.Scale(2); s[0] != 2 || s[1] != 4 {
		t.Errorf("scale = %v", s)
	}
	m := p.Lerp(q, 0.5)
	if m[0] != 2.5 || m[1] != 4 {
		t.Errorf("lerp = %v", m)
	}
	c := p.Clone()
	c[0] = 99
	if p[0] != 1 {
		t.Error("clone should not alias")
	}
}
