package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearAt(t *testing.T) {
	l := Linear{A: 2, B: 3, T0: 1}
	if l.At(1) != 2 || l.At(2) != 5 || l.At(0) != -1 {
		t.Errorf("At values: %v %v %v", l.At(1), l.At(2), l.At(0))
	}
}

func TestLinearBetween(t *testing.T) {
	l := LinearBetween(0, 10, 5, 20)
	if l.At(0) != 10 || l.At(5) != 20 || l.At(2.5) != 15 {
		t.Error("interpolation wrong")
	}
	// Degenerate: zero-length time span yields a constant.
	c := LinearBetween(3, 7, 3, 99)
	if c.B != 0 || c.At(100) != 7 {
		t.Errorf("degenerate form = %+v", c)
	}
}

func TestLinearSub(t *testing.T) {
	a := Linear{A: 5, B: 2, T0: 0}
	b := Linear{A: 1, B: -1, T0: 3} // b(t) = 1 - (t-3) = 4 - t
	d := a.Sub(b)
	for _, tt := range []float64{-2, 0, 3, 7} {
		want := a.At(tt) - b.At(tt)
		if got := d.At(tt); math.Abs(got-want) > 1e-12 {
			t.Errorf("sub at %v = %v, want %v", tt, got, want)
		}
	}
}

func TestSolveLECases(t *testing.T) {
	w := Interval{0, 10}
	// Increasing border crosses threshold at t=4.
	up := Linear{A: 0, B: 1, T0: 0}
	if got := up.SolveLE(4, w); got != (Interval{0, 4}) {
		t.Errorf("increasing SolveLE = %v", got)
	}
	// Decreasing border crosses threshold at t=6.
	down := Linear{A: 10, B: -1, T0: 0}
	if got := down.SolveLE(4, w); got != (Interval{6, 10}) {
		t.Errorf("decreasing SolveLE = %v", got)
	}
	// Constant below: whole window. Constant above: empty.
	if got := (Linear{A: 3}).SolveLE(4, w); got != w {
		t.Errorf("constant-below = %v", got)
	}
	if got := (Linear{A: 5}).SolveLE(4, w); !got.Empty() {
		t.Errorf("constant-above = %v", got)
	}
	// Empty window in, empty out.
	if got := up.SolveLE(4, EmptyInterval()); !got.Empty() {
		t.Error("empty window should yield empty")
	}
}

func TestSolveGEAndBetween(t *testing.T) {
	w := Interval{0, 10}
	up := Linear{A: 0, B: 2, T0: 0} // reaches 4 at t=2, 12 at t=6
	if got := up.SolveGE(4, w); got != (Interval{2, 10}) {
		t.Errorf("SolveGE = %v", got)
	}
	if got := up.SolveBetween(4, 12, w); got != (Interval{2, 6}) {
		t.Errorf("SolveBetween = %v", got)
	}
}

// Property: SolveLE returns exactly the times in the window where the
// inequality holds (up to fp tolerance at the boundary).
func TestSolveLEProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := Linear{A: r.Float64()*10 - 5, B: r.Float64()*4 - 2, T0: r.Float64() * 5}
		c := r.Float64()*10 - 5
		w := Interval{0, 10}
		sol := l.SolveLE(c, w)
		const eps = 1e-9
		for i := 0; i < 40; i++ {
			tt := r.Float64() * 10
			holds := l.At(tt) <= c
			inSol := sol.ContainsValue(tt)
			if holds != inSol {
				// Allow disagreement only within eps of the crossing.
				if l.B != 0 {
					cross := l.T0 + (c-l.A)/l.B
					if math.Abs(tt-cross) < eps {
						continue
					}
				}
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SolveBetween(lo,hi) == SolveLE(hi) ∩ SolveGE(lo).
func TestSolveBetweenProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := Linear{A: r.Float64()*10 - 5, B: r.Float64()*4 - 2, T0: 0}
		lo := r.Float64()*6 - 3
		hi := lo + r.Float64()*4
		w := Interval{0, 10}
		a := l.SolveBetween(lo, hi, w)
		b := l.SolveLE(hi, w).Intersect(l.SolveGE(lo, w))
		if a.Empty() != b.Empty() {
			return false
		}
		return a.Empty() || a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
