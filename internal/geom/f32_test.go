package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestF32Rounding(t *testing.T) {
	// A value not representable in float32.
	x := 0.1
	lo, hi := F32Floor(x), F32Ceil(x)
	if float64(lo) > x {
		t.Errorf("floor %v > %v", lo, x)
	}
	if float64(hi) < x {
		t.Errorf("ceil %v < %v", hi, x)
	}
	if lo == hi {
		t.Error("0.1 is not float32-representable; floor and ceil must differ")
	}
	// Exactly representable values round to themselves.
	for _, v := range []float64{0, 1, -2.5, 1024} {
		if float64(F32Floor(v)) != v || float64(F32Ceil(v)) != v {
			t.Errorf("representable %v changed by rounding", v)
		}
	}
}

// Property: floor ≤ x ≤ ceil for all finite float64 in float32 range, and
// the rounded pair differs by at most one ULP around x.
func TestF32OutwardProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.Abs(x) > math.MaxFloat32/2 {
			return true
		}
		lo, hi := F32Floor(x), F32Ceil(x)
		return float64(lo) <= x && x <= float64(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a widened interval contains the original.
func TestIntervalToF32Property(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) ||
			math.Abs(a) > math.MaxFloat32/2 || math.Abs(b) > math.MaxFloat32/2 {
			return true
		}
		if a > b {
			a, b = b, a
		}
		lo, hi := IntervalToF32(Interval{a, b})
		return float64(lo) <= a && b <= float64(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalToF32Empty(t *testing.T) {
	lo, hi := IntervalToF32(EmptyInterval())
	if lo <= hi {
		t.Error("empty interval should stay empty after conversion")
	}
}
