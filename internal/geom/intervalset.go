package geom

import "sort"

// IntervalSet is a union of intervals maintained as a sorted list of
// disjoint, non-empty intervals. The PDQ engine uses it to represent the
// visibility episodes of an index entry along the query trajectory
// (the ⋃ T^j of Equation 3): an object may enter the observer's view,
// leave it, and enter again, producing disjoint episodes.
type IntervalSet struct {
	ivs []Interval
}

// Add inserts an interval into the set, merging it with any intervals it
// touches or overlaps. Empty intervals are ignored.
func (s *IntervalSet) Add(iv Interval) {
	if iv.Empty() {
		return
	}
	// Find insertion window: all stored intervals with Lo ≤ iv.Hi and
	// Hi ≥ iv.Lo merge with iv.
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].Hi >= iv.Lo })
	j := i
	merged := iv
	for j < len(s.ivs) && s.ivs[j].Lo <= iv.Hi {
		merged = merged.Cover(s.ivs[j])
		j++
	}
	if i == j {
		s.ivs = append(s.ivs, Interval{})
		copy(s.ivs[i+1:], s.ivs[i:])
		s.ivs[i] = merged
		return
	}
	s.ivs[i] = merged
	s.ivs = append(s.ivs[:i+1], s.ivs[j:]...)
}

// Intervals returns the disjoint intervals in increasing order. The
// returned slice aliases internal state; callers must not modify it.
func (s *IntervalSet) Intervals() []Interval { return s.ivs }

// Empty reports whether the set holds no values.
func (s *IntervalSet) Empty() bool { return len(s.ivs) == 0 }

// Hull returns the smallest single interval covering the whole set
// (empty for an empty set).
func (s *IntervalSet) Hull() Interval {
	if len(s.ivs) == 0 {
		return EmptyInterval()
	}
	return Interval{Lo: s.ivs[0].Lo, Hi: s.ivs[len(s.ivs)-1].Hi}
}

// Contains reports whether v lies in some interval of the set.
func (s *IntervalSet) Contains(v float64) bool {
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].Hi >= v })
	return i < len(s.ivs) && s.ivs[i].ContainsValue(v)
}

// Length returns the total measure of the set.
func (s *IntervalSet) Length() float64 {
	t := 0.0
	for _, iv := range s.ivs {
		t += iv.Length()
	}
	return t
}

// Reset empties the set, retaining capacity.
func (s *IntervalSet) Reset() { s.ivs = s.ivs[:0] }
