package geom

import (
	"math/rand"
	"testing"
)

func BenchmarkBoxOverlaps(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	boxes := make([]Box, 256)
	for i := range boxes {
		boxes[i] = randBox(r, 4)
	}
	q := randBox(r, 4)
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		if q.Overlaps(boxes[i%len(boxes)]) {
			hits++
		}
	}
	_ = hits
}

func BenchmarkSegmentOverlapTimeInBox(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	segs := make([]Segment, 256)
	for i := range segs {
		segs[i] = Segment{
			T:     Interval{Lo: r.Float64() * 50, Hi: 50 + r.Float64()*50},
			Start: Point{r.Float64() * 100, r.Float64() * 100},
			End:   Point{r.Float64() * 100, r.Float64() * 100},
		}
	}
	q := Box{{Lo: 30, Hi: 50}, {Lo: 30, Hi: 50}, {Lo: 40, Hi: 60}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = segs[i%len(segs)].OverlapTimeInBox(q)
	}
}

func BenchmarkSolveBetween(b *testing.B) {
	l := Linear{A: 3, B: 0.7, T0: 1}
	w := Interval{Lo: 0, Hi: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.SolveBetween(10, 40, w)
	}
}

func BenchmarkIntervalSetAdd(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	ivs := make([]Interval, 1024)
	for i := range ivs {
		ivs[i] = randInterval(r)
	}
	b.ResetTimer()
	var s IntervalSet
	for i := 0; i < b.N; i++ {
		if i%64 == 0 {
			s.Reset()
		}
		s.Add(ivs[i%len(ivs)])
	}
}
