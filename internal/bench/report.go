package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"dynq/internal/obs"
	"dynq/internal/stats"
)

// ReportSchemaVersion identifies the BENCH_*.json layout. Bump it when a
// field changes meaning; readers reject reports from a different schema
// so a stale baseline fails loudly instead of comparing garbage.
const ReportSchemaVersion = 1

// Report is the machine-readable record of one dqbench run: the
// environment it ran in, the workload parameters, and every measured
// figure. It is the durable artifact behind `dqbench -json` and the
// input to the `-compare` regression checker — the repo's recorded perf
// trajectory lives in files of this schema.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	CreatedUnix   int64  `json:"created_unix,omitempty"`
	GoVersion     string `json:"go_version"`
	Revision      string `json:"revision,omitempty"`
	OS            string `json:"os"`
	Arch          string `json:"arch"`
	NumCPU        int    `json:"num_cpu"`

	// Workload parameters: reports are only comparable when these match.
	Scale        float64 `json:"scale"`
	Trajectories int     `json:"trajectories"`
	Seed         int64   `json:"seed"`

	Figures []FigureReport `json:"figures"`
	// ShardCells holds the 1-vs-N sharded engine comparison when the run
	// included one (dqbench -shards).
	Shards     int               `json:"shards,omitempty"`
	ShardCells []ShardCellReport `json:"shard_cells,omitempty"`
	// ConcurrencyCells holds the 1-vs-N concurrent netq client comparison
	// when the run included one (dqbench -concurrency).
	ConcurrencyClients int                     `json:"concurrency_clients,omitempty"`
	ConcurrencyCells   []ConcurrencyCellReport `json:"concurrency_cells,omitempty"`
	// IngestCells holds the serial-Insert vs batched-ApplyUpdates ingest
	// throughput comparison when the run included one (dqbench -ingest).
	IngestCells []IngestCellReport `json:"ingest_cells,omitempty"`
}

// FigureReport is one measured figure of the paper's evaluation.
type FigureReport struct {
	Fig       int            `json:"fig"`
	Title     string         `json:"title"`
	Metric    string         `json:"metric"`
	Segments  int            `json:"segments"`
	ElapsedNS int64          `json:"elapsed_ns"`
	Latency   *LatencyReport `json:"latency,omitempty"`
	Cells     []CellReport   `json:"cells"`
}

// LatencyReport summarizes per-frame wall times in nanoseconds.
type LatencyReport struct {
	Count  int64   `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  float64 `json:"p50_ns"`
	P95NS  float64 `json:"p95_ns"`
	P99NS  float64 `json:"p99_ns"`
}

// LatencyFromHistogram converts an obs latency histogram (observations
// in seconds) into a LatencyReport, or nil for an empty histogram.
func LatencyFromHistogram(h *obs.Histogram) *LatencyReport {
	if h == nil || h.Count() == 0 {
		return nil
	}
	toNS := func(sec float64) float64 { return sec * float64(time.Second) }
	return &LatencyReport{
		Count:  h.Count(),
		MeanNS: toNS(h.Sum() / float64(h.Count())),
		P50NS:  toNS(h.Quantile(0.50)),
		P95NS:  toNS(h.Quantile(0.95)),
		P99NS:  toNS(h.Quantile(0.99)),
	}
}

// CellReport is one measured (strategy, overlap, range) point.
type CellReport struct {
	Strategy string     `json:"strategy"`
	Overlap  float64    `json:"overlap"`
	Range    float64    `json:"range"`
	First    CostReport `json:"first"`
	Subseq   CostReport `json:"subseq"`
}

// CostReport is the paper's per-query mean cost counters.
type CostReport struct {
	LeafReads     float64 `json:"leaf_reads"`
	InternalReads float64 `json:"internal_reads"`
	Reads         float64 `json:"reads"`
	DistanceComps float64 `json:"distance_comps"`
	PrunedNodes   float64 `json:"pruned_nodes"`
	Results       float64 `json:"results"`
}

func costReportFromMean(m stats.Mean) CostReport {
	return CostReport{
		LeafReads:     m.LeafReads,
		InternalReads: m.InternalReads,
		Reads:         m.Reads(),
		DistanceComps: m.DistanceComps,
		PrunedNodes:   m.PrunedNodes,
		Results:       m.Results,
	}
}

// ShardCellReport is one row of the 1-vs-N sharded engine comparison.
type ShardCellReport struct {
	Range     float64 `json:"range"` // 0 marks the KNN row
	Queries   int     `json:"queries"`
	SingleNS  int64   `json:"single_ns"`
	ShardedNS int64   `json:"sharded_ns"`
	Speedup   float64 `json:"speedup"`
}

// ConcurrencyCellReport is one row of the 1-vs-N concurrent client
// comparison: the same snapshot batch through the netq server with N
// client goroutines.
type ConcurrencyCellReport struct {
	Clients int     `json:"clients"`
	Queries int     `json:"queries"`
	WallNS  int64   `json:"wall_ns"`
	QPS     float64 `json:"qps"`
	Speedup float64 `json:"speedup"` // vs the 1-client row
	// Server-side rolling-window snapshot latency quantiles (seconds)
	// from the netq telemetry op, taken right after the batch.
	WindowP50 float64 `json:"window_p50,omitempty"`
	WindowP99 float64 `json:"window_p99,omitempty"`
}

// IngestCellReport is one row of the ingest throughput comparison: the
// same update stream as serial Insert round trips (batch 1) or batched
// ApplyUpdates requests, against an in-memory or WAL-armed engine.
type IngestCellReport struct {
	Batch int  `json:"batch"`
	WAL   bool `json:"wal"`
	// Shards > 1 marks sharded durable rows (one WAL per shard).
	Shards int `json:"shards,omitempty"`
	// Maint marks the durable row re-run with the self-healing
	// maintenance loop on; its delta vs the plain WAL row at the same
	// batch size is the loop's ingest overhead.
	Maint   bool    `json:"maint,omitempty"`
	Updates int     `json:"updates"`
	WallNS  int64   `json:"wall_ns"`
	UPS     float64 `json:"ups"`
	Speedup float64 `json:"speedup"` // vs the serial row with the same durability

	// Server-side telemetry for the row (seconds): wire-op latency
	// quantiles, and WAL fsync quantiles on the durable rows.
	WindowP50 float64 `json:"window_p50,omitempty"`
	WindowP99 float64 `json:"window_p99,omitempty"`
	FsyncP50  float64 `json:"fsync_p50,omitempty"`
	FsyncP99  float64 `json:"fsync_p99,omitempty"`
}

// NewReport stamps a report with the environment and the run's workload
// parameters.
func NewReport(cfg Config) *Report {
	goVersion, revision := obs.BuildInfo()
	return &Report{
		SchemaVersion: ReportSchemaVersion,
		CreatedUnix:   time.Now().Unix(),
		GoVersion:     goVersion,
		Revision:      revision,
		OS:            runtime.GOOS,
		Arch:          runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Scale:         cfg.Scale,
		Trajectories:  cfg.Trajectories,
		Seed:          cfg.Seed,
	}
}

// AddFigure appends one measured figure.
func (r *Report) AddFigure(spec FigureSpec, cells []Cell, segments int, elapsed time.Duration, lat *LatencyReport) {
	fr := FigureReport{
		Fig:       int(spec.Fig),
		Title:     spec.Title,
		Metric:    spec.Metric,
		Segments:  segments,
		ElapsedNS: elapsed.Nanoseconds(),
		Latency:   lat,
		Cells:     make([]CellReport, len(cells)),
	}
	for i, c := range cells {
		fr.Cells[i] = CellReport{
			Strategy: string(c.Strategy),
			Overlap:  c.Overlap,
			Range:    c.Range,
			First:    costReportFromMean(c.First),
			Subseq:   costReportFromMean(c.Subseq),
		}
	}
	r.Figures = append(r.Figures, fr)
}

// AddShardCells records the sharded-engine comparison rows.
func (r *Report) AddShardCells(shards int, cells []ShardCell) {
	r.Shards = shards
	for _, c := range cells {
		r.ShardCells = append(r.ShardCells, ShardCellReport{
			Range:     c.Range,
			Queries:   c.Queries,
			SingleNS:  c.Single.Nanoseconds(),
			ShardedNS: c.Sharded.Nanoseconds(),
			Speedup:   c.Speedup(),
		})
	}
}

// AddConcurrencyCells records the concurrent-client comparison rows,
// deriving each row's speedup from the 1-client baseline row.
func (r *Report) AddConcurrencyCells(clients int, cells []ConcurrencyCell) {
	r.ConcurrencyClients = clients
	var baseWall time.Duration
	for _, c := range cells {
		if c.Clients == 1 {
			baseWall = c.Wall
		}
	}
	for _, c := range cells {
		speedup := 0.0
		if c.Wall > 0 && baseWall > 0 {
			speedup = float64(baseWall) / float64(c.Wall)
		}
		r.ConcurrencyCells = append(r.ConcurrencyCells, ConcurrencyCellReport{
			Clients:   c.Clients,
			Queries:   c.Queries,
			WallNS:    c.Wall.Nanoseconds(),
			QPS:       c.QPS(),
			Speedup:   speedup,
			WindowP50: c.WindowP50,
			WindowP99: c.WindowP99,
		})
	}
}

// AddIngestCells records the ingest comparison rows, deriving each row's
// speedup from the serial (batch 1) row with the same durability mode.
func (r *Report) AddIngestCells(cells []IngestCell) {
	base := map[bool]float64{}
	for _, c := range cells {
		if c.Batch == 1 {
			base[c.WAL] = c.UPS()
		}
	}
	for _, c := range cells {
		speedup := 0.0
		if b := base[c.WAL]; b > 0 {
			speedup = c.UPS() / b
		}
		r.IngestCells = append(r.IngestCells, IngestCellReport{
			Batch:     c.Batch,
			WAL:       c.WAL,
			Shards:    c.Shards,
			Maint:     c.Maint,
			Updates:   c.Updates,
			WallNS:    c.Wall.Nanoseconds(),
			UPS:       c.UPS(),
			Speedup:   speedup,
			WindowP50: c.WindowP50,
			WindowP99: c.WindowP99,
			FsyncP50:  c.FsyncP50,
			FsyncP99:  c.FsyncP99,
		})
	}
}

// FigureByNumber returns the report's entry for one figure, if present.
func (r *Report) FigureByNumber(fig int) (FigureReport, bool) {
	for _, f := range r.Figures {
		if f.Fig == fig {
			return f, true
		}
	}
	return FigureReport{}, false
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// ReadReport loads a BENCH_*.json file, rejecting unknown schema
// versions.
func ReadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("bench: %s is not a benchmark report: %w", path, err)
	}
	if r.SchemaVersion != ReportSchemaVersion {
		return nil, fmt.Errorf("bench: %s has schema version %d, this binary speaks %d",
			path, r.SchemaVersion, ReportSchemaVersion)
	}
	return &r, nil
}
