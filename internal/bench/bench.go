// Package bench runs the paper's experiments (Section 5) and returns the
// rows behind every figure. It is shared by cmd/dqbench (human-readable
// tables) and the root benchmark suite (testing.B integration).
//
// Each experiment cell fixes a query range and an overlap level, runs a
// number of dynamic queries (random trajectories), and reports the mean
// cost of the first snapshot query and of the 50 subsequent snapshot
// queries, in the paper's two metrics: disk accesses (split leaf vs
// internal) and distance computations.
package bench

import (
	"fmt"
	"math/rand"
	"time"

	"dynq/internal/core"
	"dynq/internal/rtree"
	"dynq/internal/stats"
	"dynq/internal/workload"
)

// Strategy names a query evaluation strategy under test.
type Strategy string

// Strategies.
const (
	StratNaive Strategy = "naive"
	StratPDQ   Strategy = "pdq"
	StratNPDQ  Strategy = "npdq"
)

// Config controls an experiment run.
type Config struct {
	// Scale shrinks the paper's 5000-object population (1.0 = paper).
	Scale float64
	// Trajectories is the number of dynamic queries averaged per cell
	// (the paper uses 1000).
	Trajectories int
	// Seed makes runs reproducible.
	Seed int64
	// Latency, when non-nil, receives the wall time of every snapshot
	// frame evaluated (for percentile reporting alongside the paper's
	// mean-cost metrics).
	Latency func(time.Duration)
}

// DefaultConfig returns a configuration that completes a full figure in
// seconds on a laptop while preserving every qualitative shape.
func DefaultConfig() Config {
	return Config{Scale: 0.2, Trajectories: 20, Seed: 1}
}

// Cell is one measured point of a figure.
type Cell struct {
	Strategy Strategy
	Overlap  float64 // consecutive-snapshot overlap fraction
	Range    float64 // query window side
	First    stats.Mean
	Subseq   stats.Mean
}

// Index bundles a built index with its workload parameters.
type Index struct {
	Tree     *rtree.Tree
	Segments int
	cfg      Config
}

// BuildIndex constructs the experiment index. PDQ experiments use the
// paper's single-temporal-axis layout; NPDQ experiments the dual layout.
func BuildIndex(cfg Config, dualTime bool) (*Index, error) {
	tcfg := rtree.DefaultConfig()
	tcfg.DualTime = dualTime
	tree, n, err := workload.BuildIndex(tcfg, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Index{Tree: tree, Segments: n, cfg: cfg}, nil
}

// RunCell measures one (strategy, overlap, range) cell on the index.
func (ix *Index) RunCell(strategy Strategy, overlap, rng float64) (Cell, error) {
	q := workload.PaperQuery(overlap, rng)
	r := rand.New(rand.NewSource(ix.cfg.Seed*1000 + int64(overlap*10000) + int64(rng)))
	var first, subseq stats.Snapshot
	nSub := 0
	for tr := 0; tr < ix.cfg.Trajectories; tr++ {
		g, err := workload.Generate(q, r)
		if err != nil {
			return Cell{}, err
		}
		f, s, frames, err := ix.runOne(strategy, g)
		if err != nil {
			return Cell{}, err
		}
		first = first.Add(f)
		subseq = subseq.Add(s)
		nSub += frames
	}
	return Cell{
		Strategy: strategy,
		Overlap:  overlap,
		Range:    rng,
		First:    first.MeanOver(ix.cfg.Trajectories),
		Subseq:   subseq.MeanOver(nSub),
	}, nil
}

// observe reports one frame's wall time to the configured latency hook.
func (ix *Index) observe(start time.Time) {
	if ix.cfg.Latency != nil {
		ix.cfg.Latency(time.Since(start))
	}
}

// runOne evaluates one dynamic query and returns the first-frame cost,
// the summed subsequent cost and the number of subsequent frames.
func (ix *Index) runOne(strategy Strategy, g *workload.Query) (first, subseq stats.Snapshot, frames int, err error) {
	var c stats.Counters
	switch strategy {
	case StratNaive:
		naive := core.NewNaive(ix.Tree, rtree.SearchOptions{}, &c)
		for i := range g.Windows {
			before := c.Snapshot()
			start := time.Now()
			if _, err := naive.Snapshot(g.Windows[i], g.Times[i]); err != nil {
				return first, subseq, frames, err
			}
			ix.observe(start)
			delta := c.Snapshot().Sub(before)
			if i == 0 {
				first = delta
			} else {
				subseq = subseq.Add(delta)
				frames++
			}
		}
	case StratPDQ:
		pdq, err := core.NewPDQ(ix.Tree, g.Traj, core.PDQOptions{}, &c)
		if err != nil {
			return first, subseq, frames, err
		}
		defer pdq.Close()
		for i := range g.Windows {
			before := c.Snapshot()
			start := time.Now()
			if _, err := pdq.Drain(g.Times[i].Lo, g.Times[i].Hi); err != nil {
				return first, subseq, frames, err
			}
			ix.observe(start)
			delta := c.Snapshot().Sub(before)
			if i == 0 {
				first = delta
			} else {
				subseq = subseq.Add(delta)
				frames++
			}
		}
	case StratNPDQ:
		npdq := core.NewNPDQ(ix.Tree, core.NPDQOptions{}, &c)
		for i := range g.Windows {
			before := c.Snapshot()
			start := time.Now()
			if _, err := npdq.Next(g.Windows[i], g.Times[i]); err != nil {
				return first, subseq, frames, err
			}
			ix.observe(start)
			delta := c.Snapshot().Sub(before)
			if i == 0 {
				first = delta
			} else {
				subseq = subseq.Add(delta)
				frames++
			}
		}
	default:
		return first, subseq, frames, fmt.Errorf("bench: unknown strategy %q", strategy)
	}
	return first, subseq, frames, nil
}

// Figure identifies one of the paper's evaluation figures.
type Figure int

// FigureSpec describes how to regenerate a figure.
type FigureSpec struct {
	Fig        Figure
	Title      string
	Metric     string // "io" or "cpu"
	DualTime   bool   // index layout
	Strategies []Strategy
	Overlaps   []float64
	Ranges     []float64
}

// Specs enumerates every figure of the paper's evaluation section.
func Specs() []FigureSpec {
	pdqStrats := []Strategy{StratNaive, StratPDQ}
	npdqStrats := []Strategy{StratNaive, StratNPDQ}
	return []FigureSpec{
		{Fig: 6, Title: "I/O performance of PDQ", Metric: "io", Strategies: pdqStrats,
			Overlaps: workload.Overlaps, Ranges: []float64{8}},
		{Fig: 7, Title: "CPU performance of PDQ", Metric: "cpu", Strategies: pdqStrats,
			Overlaps: workload.Overlaps, Ranges: []float64{8}},
		{Fig: 8, Title: "Impact of query size on I/O (PDQ, subsequent queries)", Metric: "io",
			Strategies: []Strategy{StratPDQ}, Overlaps: workload.Overlaps, Ranges: workload.Ranges},
		{Fig: 9, Title: "Impact of query size on CPU (PDQ, subsequent queries)", Metric: "cpu",
			Strategies: []Strategy{StratPDQ}, Overlaps: workload.Overlaps, Ranges: workload.Ranges},
		{Fig: 10, Title: "I/O performance of NPDQ", Metric: "io", DualTime: true, Strategies: npdqStrats,
			Overlaps: workload.Overlaps, Ranges: []float64{8}},
		{Fig: 11, Title: "CPU performance of NPDQ", Metric: "cpu", DualTime: true, Strategies: npdqStrats,
			Overlaps: workload.Overlaps, Ranges: []float64{8}},
		{Fig: 12, Title: "Impact of query size on I/O (NPDQ, subsequent queries)", Metric: "io", DualTime: true,
			Strategies: []Strategy{StratNPDQ}, Overlaps: workload.Overlaps, Ranges: workload.Ranges},
		{Fig: 13, Title: "Impact of query size on CPU (NPDQ, subsequent queries)", Metric: "cpu", DualTime: true,
			Strategies: []Strategy{StratNPDQ}, Overlaps: workload.Overlaps, Ranges: workload.Ranges},
	}
}

// SpecFor returns the spec of one figure.
func SpecFor(fig Figure) (FigureSpec, error) {
	for _, s := range Specs() {
		if s.Fig == fig {
			return s, nil
		}
	}
	return FigureSpec{}, fmt.Errorf("bench: no figure %d (paper has figures 6-13)", fig)
}

// RunFigure measures every cell of a figure.
func RunFigure(cfg Config, spec FigureSpec) ([]Cell, *Index, error) {
	ix, err := BuildIndex(cfg, spec.DualTime)
	if err != nil {
		return nil, nil, err
	}
	cells, err := RunFigureOn(ix, spec)
	return cells, ix, err
}

// RunFigureOn measures a figure on an existing index (which must have the
// spec's temporal layout).
func RunFigureOn(ix *Index, spec FigureSpec) ([]Cell, error) {
	var cells []Cell
	for _, rng := range spec.Ranges {
		for _, ov := range spec.Overlaps {
			for _, st := range spec.Strategies {
				cell, err := ix.RunCell(st, ov, rng)
				if err != nil {
					return nil, err
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

// MixedExperiment measures the situational-awareness mix (the paper's
// introduction scenario): a population of nStatic long-lived landmarks /
// sensors plus nMobile vehicles, queried with NPDQ at the given overlap.
// It reports naive and NPDQ subsequent-query reads — the regime where
// discardability prunes the static bulk of the data (see DESIGN.md).
func MixedExperiment(cfg Config, nMobile, nStatic int, overlap float64) (naive, npdq Cell, err error) {
	tcfg := rtree.DefaultConfig()
	tcfg.DualTime = true
	tree, n, err := workload.BuildMixedIndex(tcfg, nMobile, nStatic, cfg.Seed)
	if err != nil {
		return Cell{}, Cell{}, err
	}
	ix := &Index{Tree: tree, Segments: n, cfg: cfg}
	naive, err = ix.RunCell(StratNaive, overlap, 8)
	if err != nil {
		return Cell{}, Cell{}, err
	}
	npdq, err = ix.RunCell(StratNPDQ, overlap, 8)
	return naive, npdq, err
}
