package bench

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"dynq"
	"dynq/internal/motion"
	"dynq/netq"
)

// IngestCell is one row of the ingest-throughput experiment: the same
// ordered motion-update stream pushed through a netq server either as
// serial Insert round-trips (Batch 1) or as batched ApplyUpdates
// requests.
type IngestCell struct {
	// Batch is the number of updates per wire request; 1 is the serial
	// Insert baseline the batched rows are compared against.
	Batch int
	// WAL marks the durable rows: a file-backed database with a
	// group-commit write-ahead log, so every acknowledged request
	// survives a crash. Non-WAL rows measure the in-memory engine.
	WAL bool
	// Shards > 1 marks the sharded durable rows: the same stream against
	// a sharded database with one log per shard, touched logs fsyncing
	// in parallel. 0 is the single-tree engine.
	Shards int
	// Maint marks the self-healing row: the same durable batched stream
	// with the maintenance loop running (auto-checkpoint policy,
	// background scrub, probe watchdog), so its delta against the plain
	// WAL row at the same batch size is the loop's ingest overhead.
	Maint   bool
	Updates int
	Wall    time.Duration

	// Server-side telemetry captured after the row's stream drained (the
	// row runs against a fresh server, so cumulative = this row):
	// latency quantiles of the row's wire op, and — on WAL rows — the
	// log's fsync-latency quantiles. All in seconds.
	WindowP50, WindowP99 float64
	FsyncP50, FsyncP99   float64
}

// UPS returns the row's sustained update throughput (updates/sec).
func (c IngestCell) UPS() float64 {
	if c.Wall <= 0 {
		return 0
	}
	return float64(c.Updates) / c.Wall.Seconds()
}

// IngestExperiment measures sustained ingest throughput through the wire
// protocol: the paper's motion-update stream applied to a fresh database
// behind a netq server, serially (one Insert per round trip) and in
// ApplyUpdates batches of each given size. Both an in-memory engine and
// a WAL-armed file engine (group-commit durability) are measured; every
// row's final segment count is cross-checked against what was sent, so
// the table doubles as a correctness run for the batched write path.
//
// Batching amortizes round trips, lock acquisition, and — on the durable
// rows — the per-commit fsync, which dominates: that is where the order
// of magnitude lives. The in-memory rows are the engine-bound reference
// (on loopback a round trip costs less than an R-tree insert), showing
// batched durable ingest approaching the no-durability ceiling.
//
// With shards > 1, batched durable rows against a sharded database (one
// write-ahead log per shard) are appended: each batch splits across the
// shard logs and the touched logs fsync in parallel, so the figure shows
// what partitioned durability adds on top of batching. Their speedup
// column compares against the same serial durable baseline.
func IngestExperiment(cfg Config, batches []int, shards int) ([]IngestCell, error) {
	for _, b := range batches {
		if b < 2 {
			return nil, fmt.Errorf("bench: ingest batch sizes must be >= 2, got %d", b)
		}
	}
	sim := motion.PaperConfig()
	sim.Objects = int(float64(sim.Objects) * cfg.Scale)
	if sim.Objects < 1 {
		sim.Objects = 1
	}
	sim.Seed = cfg.Seed
	segs, err := motion.GenerateSegments(sim)
	if err != nil {
		return nil, err
	}
	updates := make([]dynq.MotionUpdate, len(segs))
	for i, s := range segs {
		updates[i] = dynq.MotionUpdate{ID: dynq.ObjectID(s.ObjID), Segment: dynq.Segment{
			T0: s.Seg.T.Lo, T1: s.Seg.T.Hi,
			From: s.Seg.Start, To: s.Seg.End,
		}}
	}

	dir, err := os.MkdirTemp("", "dqbench-ingest")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Every row ingests the same stream, capped to keep the experiment
	// interactive at large scales. The WAL serial baseline is capped
	// further: it pays one group-commit window per update, and
	// throughput is a rate, so the shorter run does not bias it.
	if len(updates) > 25000 {
		updates = updates[:25000]
	}
	var cells []IngestCell
	for _, withWAL := range []bool{false, true} {
		serialCap := len(updates)
		if withWAL {
			serialCap = 500
		}
		for _, batch := range append([]int{1}, batches...) {
			cell, err := runIngestRow(updates, batch, withWAL, 0, serialCap, dir, false)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell)
		}
	}
	// Self-healing overhead row: the largest durable batch again, with
	// the maintenance loop ticking (auto-checkpoint + scrub + probe
	// watchdog). Its distance from the plain WAL row at the same batch
	// size is what the loop costs under sustained ingest.
	if len(batches) > 0 {
		cell, err := runIngestRow(updates, batches[len(batches)-1], true, 0, len(updates), dir, true)
		if err != nil {
			return nil, err
		}
		cells = append(cells, cell)
	}
	if shards > 1 {
		// Sharded durable rows, batched only: a serial baseline would just
		// re-measure one group-commit window per update.
		for _, batch := range batches {
			cell, err := runIngestRow(updates, batch, true, shards, len(updates), dir, false)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// runIngestRow times one (batch size, durability, sharding) row against
// a fresh database and server.
func runIngestRow(updates []dynq.MotionUpdate, batch int, withWAL bool, shards, serialCap int, dir string, maint bool) (IngestCell, error) {
	// Buffered like a production server: bufferless pass-through stores
	// re-decode the root path on every insert, which would hide the wire
	// and durability costs this experiment is about.
	var db dynq.Database
	var err error
	if shards > 1 {
		db, err = dynq.OpenSharded(dynq.ShardOptions{
			Options: dynq.Options{
				Path:        filepath.Join(dir, fmt.Sprintf("ingest-s%d-b%d.pages", shards, batch)),
				BufferPages: 4096,
			},
			Shards: shards,
			WAL:    true,
		})
	} else {
		opts := dynq.Options{BufferPages: 4096}
		if withWAL {
			suffix := ""
			if maint {
				suffix = "-maint"
			}
			path := filepath.Join(dir, fmt.Sprintf("ingest-b%d%s.pages", batch, suffix))
			opts.Path = path
			opts.WALPath = path + ".wal"
		}
		if maint {
			// Production-shaped self-healing settings: the byte threshold
			// is low enough that the stream forces real auto-checkpoints.
			opts.Maintenance = dynq.MaintenanceOptions{
				Checkpoint:       dynq.CheckpointPolicy{MaxBytes: 1 << 20},
				ScrubPagesPerSec: 50_000,
				ProbeBackoff:     time.Second,
			}
		}
		db, err = dynq.Open(opts)
	}
	if err != nil {
		return IngestCell{}, err
	}
	defer db.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return IngestCell{}, err
	}
	defer l.Close()
	srv := netq.NewServer(db)
	go srv.Serve(l)
	defer srv.Close()
	cl, err := netq.Dial(l.Addr().String())
	if err != nil {
		return IngestCell{}, err
	}
	defer cl.Close()

	n := len(updates)
	if batch == 1 && n > serialCap {
		n = serialCap
	}
	start := time.Now()
	if batch == 1 {
		for _, u := range updates[:n] {
			if err := cl.Insert(u.ID, u.Segment); err != nil {
				return IngestCell{}, err
			}
		}
	} else {
		for lo := 0; lo < n; lo += batch {
			hi := lo + batch
			if hi > n {
				hi = n
			}
			if err := cl.ApplyUpdates(updates[lo:hi]); err != nil {
				return IngestCell{}, err
			}
		}
	}
	wall := time.Since(start)
	st, err := cl.Stats()
	if err != nil {
		return IngestCell{}, err
	}
	if st.Segments != n {
		return IngestCell{}, fmt.Errorf("bench: ingest row (batch %d, wal %v, shards %d) left %d segments indexed, sent %d",
			batch, withWAL, shards, st.Segments, n)
	}
	cell := IngestCell{Batch: batch, WAL: withWAL, Shards: shards, Maint: maint, Updates: n, Wall: wall}
	tel, err := cl.Telemetry()
	if err != nil {
		return IngestCell{}, err
	}
	op := "apply-updates"
	if batch == 1 {
		op = "insert"
	}
	for _, ot := range tel.Ops {
		if ot.Op == op {
			cell.WindowP50, cell.WindowP99 = ot.P50, ot.P99
		}
	}
	if w := tel.WAL; w != nil {
		cell.FsyncP50, cell.FsyncP99 = w.FsyncLatency.P50, w.FsyncLatency.P99
	}
	return cell, nil
}
