package bench

import (
	"testing"
	"time"
)

func TestAddConcurrencyCells(t *testing.T) {
	r := &Report{SchemaVersion: ReportSchemaVersion}
	cells := []ConcurrencyCell{
		{Clients: 1, Queries: 100, Wall: 400 * time.Millisecond},
		{Clients: 8, Queries: 100, Wall: 100 * time.Millisecond},
	}
	r.AddConcurrencyCells(8, cells)
	if r.ConcurrencyClients != 8 || len(r.ConcurrencyCells) != 2 {
		t.Fatalf("cells = %+v", r.ConcurrencyCells)
	}
	got := r.ConcurrencyCells[1]
	if got.Speedup != 4.0 {
		t.Errorf("8-client speedup = %g, want 4", got.Speedup)
	}
	if qps := got.QPS; qps < 999 || qps > 1001 {
		t.Errorf("8-client qps = %g, want ~1000", qps)
	}
	if r.ConcurrencyCells[0].Speedup != 1.0 {
		t.Errorf("baseline speedup = %g, want 1", r.ConcurrencyCells[0].Speedup)
	}
}

// TestConcurrencyExperimentSmall runs the full wire experiment at a tiny
// scale: 1-vs-2 clients, answers cross-checked against the serial run
// inside the experiment itself.
func TestConcurrencyExperimentSmall(t *testing.T) {
	cells, segments, err := ConcurrencyExperiment(Config{Scale: 0.01, Trajectories: 2, Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if segments == 0 {
		t.Fatal("no segments generated")
	}
	if len(cells) != 2 || cells[0].Clients != 1 || cells[1].Clients != 2 {
		t.Fatalf("cells = %+v", cells)
	}
	for _, c := range cells {
		if c.Queries == 0 || c.Wall <= 0 {
			t.Errorf("degenerate cell %+v", c)
		}
	}
}
