package bench

import (
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dynq"
	"dynq/internal/motion"
	"dynq/internal/workload"
	"dynq/netq"
)

// ConcurrencyCell is one row of the read-concurrency experiment: the
// same snapshot workload pushed through a netq server by N client
// goroutines sharing one work queue.
type ConcurrencyCell struct {
	Clients int
	Queries int           // total queries executed by this row
	Wall    time.Duration // wall time for the whole batch
	// WindowP50/WindowP99 are the server's rolling-window snapshot
	// latency quantiles (shortest window, in seconds) as reported by the
	// netq telemetry op right after the batch — the server-side view of
	// the latency the clients just generated.
	WindowP50, WindowP99 float64
}

// QPS returns the row's aggregate query throughput.
func (c ConcurrencyCell) QPS() float64 {
	if c.Wall <= 0 {
		return 0
	}
	return float64(c.Queries) / c.Wall.Seconds()
}

// ConcurrencyExperiment loads the paper's population into one DB behind
// a netq server and times an identical snapshot-query batch driven by 1
// and by N concurrent client connections. Every answer is checked
// against a direct (in-process, serial) query of the same window, so the
// speedup row doubles as a correctness check of the concurrent read
// path. Like the sharding experiment, wall-clock speedup needs real
// cores: on a single-CPU host the extra clients only measure queueing.
func ConcurrencyExperiment(cfg Config, clients int) ([]ConcurrencyCell, int, error) {
	if clients < 2 {
		return nil, 0, fmt.Errorf("bench: concurrency experiment needs >= 2 clients, got %d", clients)
	}
	sim := motion.PaperConfig()
	sim.Objects = int(float64(sim.Objects) * cfg.Scale)
	if sim.Objects < 1 {
		sim.Objects = 1
	}
	sim.Seed = cfg.Seed
	segs, err := motion.GenerateSegments(sim)
	if err != nil {
		return nil, 0, err
	}
	db, err := dynq.Open(dynq.Options{})
	if err != nil {
		return nil, 0, err
	}
	defer db.Close()
	byObject := map[dynq.ObjectID][]dynq.Segment{}
	for _, s := range segs {
		byObject[s.ObjID] = append(byObject[s.ObjID], dynq.Segment{
			T0: s.Seg.T.Lo, T1: s.Seg.T.Hi,
			From: s.Seg.Start, To: s.Seg.End,
		})
	}
	if err := db.BulkLoad(byObject); err != nil {
		return nil, 0, err
	}

	// One flat batch of snapshot queries across the paper's range sweep,
	// with the serial in-process answer cardinality recorded per query.
	r := rand.New(rand.NewSource(cfg.Seed*101 + int64(clients)))
	var views []dynq.Rect
	var t0s, t1s []float64
	for _, rng := range workload.Ranges {
		q := workload.PaperQuery(0.5, rng)
		for tr := 0; tr < cfg.Trajectories; tr++ {
			g, err := workload.Generate(q, r)
			if err != nil {
				return nil, 0, err
			}
			for i, w := range g.Windows {
				rect := dynq.Rect{Min: make([]float64, len(w)), Max: make([]float64, len(w))}
				for d, iv := range w {
					rect.Min[d], rect.Max[d] = iv.Lo, iv.Hi
				}
				views = append(views, rect)
				t0s = append(t0s, g.Times[i].Lo)
				t1s = append(t1s, g.Times[i].Hi)
			}
		}
	}
	want := make([]int, len(views))
	for i := range views {
		rs, err := db.Snapshot(views[i], t0s[i], t1s[i])
		if err != nil {
			return nil, 0, err
		}
		want[i] = len(rs)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, 0, err
	}
	defer l.Close()
	// Size the read gate for the host and the queue for the client count,
	// so the experiment measures execution parallelism rather than
	// admission-control rejections.
	srv := netq.NewServer(db).WithConcurrency(runtime.GOMAXPROCS(0), 2*clients)
	go srv.Serve(l)
	defer srv.Close()
	addr := l.Addr().String()

	run := func(nClients int) (ConcurrencyCell, error) {
		conns := make([]*netq.Client, nClients)
		for i := range conns {
			cl, err := netq.Dial(addr)
			if err != nil {
				return ConcurrencyCell{}, err
			}
			defer cl.Close()
			conns[i] = cl
		}
		var next atomic.Int64
		errCh := make(chan error, nClients)
		var wg sync.WaitGroup
		start := time.Now()
		for _, cl := range conns {
			wg.Add(1)
			go func(cl *netq.Client) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(views) {
						return
					}
					rs, err := cl.Snapshot(views[i], t0s[i], t1s[i])
					if err != nil {
						errCh <- err
						return
					}
					if len(rs) != want[i] {
						errCh <- fmt.Errorf("bench: concurrent snapshot %d returned %d results, serial run had %d",
							i, len(rs), want[i])
						return
					}
				}
			}(cl)
		}
		wg.Wait()
		wall := time.Since(start)
		close(errCh)
		for err := range errCh {
			return ConcurrencyCell{}, err
		}
		cell := ConcurrencyCell{Clients: nClients, Queries: len(views), Wall: wall}
		// The server-side latency picture for this batch, through the same
		// wire op dqtop uses.
		tel, err := conns[0].Telemetry()
		if err != nil {
			return ConcurrencyCell{}, err
		}
		for _, op := range tel.Ops {
			if op.Op == string(netq.OpSnapshot) && len(op.Windows) > 0 {
				cell.WindowP50 = op.Windows[0].P50
				cell.WindowP99 = op.Windows[0].P99
			}
		}
		return cell, nil
	}

	// Untimed warmup settles connection setup and first-touch costs out
	// of the 1-client baseline.
	if _, err := run(1); err != nil {
		return nil, 0, err
	}
	var cells []ConcurrencyCell
	for _, n := range []int{1, clients} {
		c, err := run(n)
		if err != nil {
			return nil, 0, err
		}
		cells = append(cells, c)
	}
	return cells, len(segs), nil
}
