package bench

import "testing"

func TestMixedExperimentNPDQWins(t *testing.T) {
	cfg := Config{Scale: 1, Trajectories: 8, Seed: 1}
	naive, npdq, err := MixedExperiment(cfg, 200, 30000, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	nv, dq := naive.Subseq.Reads(), npdq.Subseq.Reads()
	t.Logf("mixed workload: naive %.2f reads/query, NPDQ %.2f (saving %.0f%%)", nv, dq, 100*(1-dq/nv))
	if dq >= nv*0.85 {
		t.Errorf("NPDQ (%.2f) should save ≥15%% vs naive (%.2f) on the static-heavy mix", dq, nv)
	}
}
