package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"dynq/internal/core"
	"dynq/internal/geom"
	"dynq/internal/motion"
	"dynq/internal/pager"
	"dynq/internal/rtree"
	"dynq/internal/shard"
	"dynq/internal/stats"
	"dynq/internal/workload"
)

// ShardCell is one row of the sharding experiment: the same snapshot
// workload evaluated on a single tree and on an N-shard parallel engine.
type ShardCell struct {
	Range   float64
	Queries int
	Single  time.Duration // wall time, one tree
	Sharded time.Duration // wall time, N shards on the worker pool
}

// Speedup returns single/sharded wall time (>1 means sharding won).
func (c ShardCell) Speedup() float64 {
	if c.Sharded == 0 {
		return 0
	}
	return float64(c.Single) / float64(c.Sharded)
}

// ShardExperiment loads the paper's population into one tree and into an
// N-shard engine, then times an identical snapshot-query sweep (every
// frame of Trajectories dynamic queries per range) on both, checking that
// the answers have the same cardinality. Wall-clock speedup needs real
// cores: on a single-CPU host the sharded engine only adds coordination
// overhead, which this experiment then measures honestly.
func ShardExperiment(cfg Config, shards, workers int) ([]ShardCell, int, error) {
	sim := motion.PaperConfig()
	sim.Objects = int(float64(sim.Objects) * cfg.Scale)
	if sim.Objects < 1 {
		sim.Objects = 1
	}
	sim.Seed = cfg.Seed
	segs, err := motion.GenerateSegments(sim)
	if err != nil {
		return nil, 0, err
	}
	entries := make([]rtree.LeafEntry, len(segs))
	for i, s := range segs {
		entries[i] = rtree.LeafEntry{ID: rtree.ObjectID(s.ObjID), Seg: s.Seg}
	}

	tcfg := rtree.DefaultConfig()
	tree, err := rtree.BulkLoad(tcfg, pager.NewMemStore(), entries)
	if err != nil {
		return nil, 0, err
	}
	engine, err := shard.New(tcfg, shard.Options{Shards: shards, Workers: workers},
		func(int) (pager.Store, error) { return pager.NewMemStore(), nil })
	if err != nil {
		return nil, 0, err
	}
	defer engine.Close()
	if err := engine.BulkLoad(entries); err != nil {
		return nil, 0, err
	}

	ctx := context.Background()
	var cells []ShardCell
	for _, rng := range workload.Ranges {
		q := workload.PaperQuery(0.5, rng)
		r := rand.New(rand.NewSource(cfg.Seed*77 + int64(rng)))
		var windows []geom.Box
		var times []geom.Interval
		for tr := 0; tr < cfg.Trajectories; tr++ {
			g, err := workload.Generate(q, r)
			if err != nil {
				return nil, 0, err
			}
			windows = append(windows, g.Windows...)
			times = append(times, g.Times...)
		}

		var c stats.Counters
		singleCounts := make([]int, len(windows))
		start := time.Now()
		for i := range windows {
			ms, err := tree.RangeSearch(windows[i], times[i], rtree.SearchOptions{}, &c)
			if err != nil {
				return nil, 0, err
			}
			singleCounts[i] = len(ms)
		}
		singleWall := time.Since(start)

		start = time.Now()
		for i := range windows {
			ms, err := engine.Snapshot(ctx, windows[i], times[i], 0)
			if err != nil {
				return nil, 0, err
			}
			if len(ms) != singleCounts[i] {
				return nil, 0, fmt.Errorf("bench: shard mismatch at range %g query %d: %d vs %d results",
					rng, i, len(ms), singleCounts[i])
			}
		}
		shardedWall := time.Since(start)

		cells = append(cells, ShardCell{
			Range:   rng,
			Queries: len(windows),
			Single:  singleWall,
			Sharded: shardedWall,
		})
	}

	// One KNN row rides along: the k-way merged best-first search against
	// the single-tree search, same cardinality check.
	r := rand.New(rand.NewSource(cfg.Seed * 101))
	const knnQueries, k = 200, 10
	var c stats.Counters
	type knnQ struct {
		p geom.Point
		t float64
	}
	qs := make([]knnQ, knnQueries)
	for i := range qs {
		qs[i] = knnQ{p: geom.Point{r.Float64() * 100, r.Float64() * 100}, t: r.Float64() * 100}
	}
	singleCounts := make([]int, len(qs))
	start := time.Now()
	for i, kq := range qs {
		nbs, err := core.KNN(tree, kq.p, kq.t, k, &c)
		if err != nil {
			return nil, 0, err
		}
		singleCounts[i] = len(nbs)
	}
	singleWall := time.Since(start)
	start = time.Now()
	for i, kq := range qs {
		nbs, err := engine.KNN(ctx, kq.p, kq.t, k)
		if err != nil {
			return nil, 0, err
		}
		if len(nbs) != singleCounts[i] {
			return nil, 0, fmt.Errorf("bench: shard KNN mismatch at query %d: %d vs %d neighbors",
				i, len(nbs), singleCounts[i])
		}
	}
	cells = append(cells, ShardCell{
		Range:   0, // marks the KNN row
		Queries: len(qs),
		Single:  singleWall,
		Sharded: time.Since(start),
	})
	return cells, len(entries), nil
}
