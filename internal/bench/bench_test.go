package bench

import (
	"testing"

	"dynq/internal/workload"
)

func tinyConfig() Config {
	return Config{Scale: 0.05, Trajectories: 5, Seed: 1}
}

func TestSpecsCoverEveryFigure(t *testing.T) {
	specs := Specs()
	if len(specs) != 8 {
		t.Fatalf("got %d specs, want 8 (figures 6-13)", len(specs))
	}
	seen := map[Figure]bool{}
	for _, s := range specs {
		if s.Fig < 6 || s.Fig > 13 {
			t.Errorf("unexpected figure %d", s.Fig)
		}
		if seen[s.Fig] {
			t.Errorf("figure %d duplicated", s.Fig)
		}
		seen[s.Fig] = true
		if s.Metric != "io" && s.Metric != "cpu" {
			t.Errorf("figure %d metric %q", s.Fig, s.Metric)
		}
		if len(s.Strategies) == 0 || len(s.Overlaps) == 0 || len(s.Ranges) == 0 {
			t.Errorf("figure %d has empty dimensions", s.Fig)
		}
	}
	if _, err := SpecFor(6); err != nil {
		t.Error(err)
	}
	if _, err := SpecFor(5); err == nil {
		t.Error("figure 5 should not resolve")
	}
}

func TestRunCellShapes(t *testing.T) {
	ix, err := BuildIndex(tinyConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := ix.RunCell(StratNaive, 0.9, 8)
	if err != nil {
		t.Fatal(err)
	}
	pdq, err := ix.RunCell(StratPDQ, 0.9, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Naive subsequent ≈ naive first (flat in frame index).
	if naive.Subseq.Reads() < naive.First.Reads()*0.5 || naive.Subseq.Reads() > naive.First.Reads()*2 {
		t.Errorf("naive subsequent (%.1f) should be near first (%.1f)",
			naive.Subseq.Reads(), naive.First.Reads())
	}
	// PDQ subsequent must be far below naive subsequent at 90% overlap.
	if pdq.Subseq.Reads() >= naive.Subseq.Reads() {
		t.Errorf("pdq subsequent reads %.2f not below naive %.2f",
			pdq.Subseq.Reads(), naive.Subseq.Reads())
	}
	if pdq.Subseq.DistanceComps >= naive.Subseq.DistanceComps {
		t.Errorf("pdq subsequent cpu %.1f not below naive %.1f",
			pdq.Subseq.DistanceComps, naive.Subseq.DistanceComps)
	}
	if _, err := ix.RunCell("bogus", 0.5, 8); err == nil {
		t.Error("unknown strategy should error")
	}
}

func TestRunFigureMonotoneShapes(t *testing.T) {
	cfg := tinyConfig()
	spec, err := SpecFor(6)
	if err != nil {
		t.Fatal(err)
	}
	cells, ix, err := RunFigure(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Segments == 0 {
		t.Fatal("index empty")
	}
	byStrat := map[Strategy][]Cell{}
	for _, c := range cells {
		byStrat[c.Strategy] = append(byStrat[c.Strategy], c)
	}
	if len(byStrat[StratNaive]) != len(workload.Overlaps) || len(byStrat[StratPDQ]) != len(workload.Overlaps) {
		t.Fatalf("cell counts: %d naive, %d pdq", len(byStrat[StratNaive]), len(byStrat[StratPDQ]))
	}
	// PDQ subsequent cost decreases (weakly) from 0% to 99.99% overlap,
	// and PDQ ≤ naive at every overlap.
	pdq := byStrat[StratPDQ]
	naive := byStrat[StratNaive]
	if pdq[len(pdq)-1].Subseq.Reads() > pdq[0].Subseq.Reads() {
		t.Errorf("pdq subsequent reads should fall with overlap: %.2f at 0%%, %.2f at 99.99%%",
			pdq[0].Subseq.Reads(), pdq[len(pdq)-1].Subseq.Reads())
	}
	for i := range pdq {
		if pdq[i].Subseq.Reads() > naive[i].Subseq.Reads() {
			t.Errorf("overlap %.2f: pdq %.2f > naive %.2f",
				pdq[i].Overlap, pdq[i].Subseq.Reads(), naive[i].Subseq.Reads())
		}
	}
}

func TestRunFigureQuerySizeShape(t *testing.T) {
	cfg := tinyConfig()
	spec, err := SpecFor(12)
	if err != nil {
		t.Fatal(err)
	}
	cells, _, err := RunFigure(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	// At fixed overlap, bigger ranges cost more I/O (Figures 8/12).
	byRange := map[float64]float64{}
	for _, c := range cells {
		if c.Overlap == 0.9 {
			byRange[c.Range] = c.Subseq.Reads()
		}
	}
	if !(byRange[8] <= byRange[14] && byRange[14] <= byRange[20]) {
		t.Errorf("subsequent reads should grow with range: 8→%.2f 14→%.2f 20→%.2f",
			byRange[8], byRange[14], byRange[20])
	}
}
