package compare

import (
	"path/filepath"
	"strings"
	"testing"

	"dynq/internal/bench"
)

func sampleReport() *bench.Report {
	return &bench.Report{
		SchemaVersion: bench.ReportSchemaVersion,
		Scale:         0.05,
		Trajectories:  5,
		Seed:          42,
		Figures: []bench.FigureReport{{
			Fig:    6,
			Title:  "Moving query cost",
			Metric: "disk accesses / query",
			Latency: &bench.LatencyReport{
				Count: 100, MeanNS: 1e6, P50NS: 0.9e6, P95NS: 2e6, P99NS: 3e6,
			},
			Cells: []bench.CellReport{
				{
					Strategy: "naive", Overlap: 0.5, Range: 10,
					First:  bench.CostReport{Reads: 40, DistanceComps: 120, Results: 8},
					Subseq: bench.CostReport{Reads: 40, DistanceComps: 120, Results: 8},
				},
				{
					Strategy: "incremental", Overlap: 0.5, Range: 10,
					First:  bench.CostReport{Reads: 40, DistanceComps: 120, Results: 8},
					Subseq: bench.CostReport{Reads: 6, DistanceComps: 30, Results: 8},
				},
			},
		}},
	}
}

func TestCompareIdenticalReportsPass(t *testing.T) {
	res, err := Compare(sampleReport(), sampleReport(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("identical reports flagged: %s", res.Summary())
	}
	if res.CellsCompared != 2 {
		t.Errorf("CellsCompared = %d, want 2", res.CellsCompared)
	}
}

func TestCompareFlagsInjectedRegression(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	// Inject a 50% regression into the incremental strategy's
	// subsequent-frame reads — the acceptance scenario.
	cur.Figures[0].Cells[1].Subseq.Reads *= 1.5

	res, err := Compare(base, cur, Options{Threshold: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("50% regression not flagged at a 10% threshold")
	}
	if len(res.Regressions) != 1 {
		t.Fatalf("regressions = %v, want exactly the injected one", res.Regressions)
	}
	r := res.Regressions[0]
	if r.Strategy != "incremental" || r.Phase != "subseq" || r.Metric != "reads" {
		t.Errorf("flagged %+v, want incremental/subseq/reads", r)
	}
	if got := r.Ratio(); got < 0.49 || got > 0.51 {
		t.Errorf("Ratio() = %v, want ~0.5", got)
	}
	if !strings.Contains(res.Summary(), "REGRESSION") {
		t.Errorf("Summary() = %q", res.Summary())
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Figures[0].Cells[0].First.Reads *= 1.05 // +5% under a 10% threshold

	res, err := Compare(base, cur, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Errorf("5%% drift flagged at default threshold: %s", res.Summary())
	}
}

func TestCompareIgnoresSubUnitCosts(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	base.Figures[0].Cells[1].Subseq.DistanceComps = 0.2
	cur.Figures[0].Cells[1].Subseq.DistanceComps = 0.6 // 3x, but below the floor

	res, err := Compare(base, cur, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Errorf("sub-unit mean change flagged: %s", res.Summary())
	}
}

func TestCompareRejectsDifferentWorkloads(t *testing.T) {
	for _, mut := range []func(*bench.Report){
		func(r *bench.Report) { r.Scale = 0.1 },
		func(r *bench.Report) { r.Seed = 7 },
		func(r *bench.Report) { r.Trajectories = 50 },
	} {
		cur := sampleReport()
		mut(cur)
		if _, err := Compare(sampleReport(), cur, Options{}); err == nil {
			t.Errorf("workload mismatch %+v not rejected", cur)
		}
	}
}

func TestCompareReportsMissingCells(t *testing.T) {
	cur := sampleReport()
	cur.Figures[0].Cells = cur.Figures[0].Cells[:1]

	res, err := Compare(sampleReport(), cur, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Missing) != 1 || !strings.Contains(res.Missing[0], "incremental") {
		t.Errorf("Missing = %v", res.Missing)
	}
	if !strings.Contains(res.Summary(), "not in this run") {
		t.Errorf("Summary() = %q", res.Summary())
	}
}

func TestCompareLatencyOptIn(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Figures[0].Latency.P95NS *= 2

	// Off by default: latency doubling is not flagged.
	res, err := Compare(base, cur, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("latency compared without opt-in: %s", res.Summary())
	}

	// Opted in: flagged as a latency regression.
	res, err = Compare(base, cur, Options{LatencyThreshold: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || res.Regressions[0].Phase != "latency" {
		t.Errorf("latency regression not flagged: %s", res.Summary())
	}
}

func TestReportRoundTripThroughFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := sampleReport().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := bench.ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compare(sampleReport(), back, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.CellsCompared != 2 {
		t.Errorf("round-tripped report differs from original: %s", res.Summary())
	}
}

func TestReadReportRejectsWrongSchema(t *testing.T) {
	r := sampleReport()
	r.SchemaVersion = 99
	path := filepath.Join(t.TempDir(), "BENCH_bad.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := bench.ReadReport(path); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Errorf("wrong schema read back without error: %v", err)
	}
}
