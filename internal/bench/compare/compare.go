// Package compare checks a fresh benchmark report against a recorded
// baseline and flags cost or latency regressions. The paper's cost
// counters (disk accesses, distance computations) are deterministic for
// a fixed seed, so cell-for-cell comparison is exact across machines;
// wall-clock latency is noisy and is only checked when explicitly
// enabled.
package compare

import (
	"fmt"
	"sort"
	"strings"

	"dynq/internal/bench"
)

// Options tunes the regression check.
type Options struct {
	// Threshold is the relative increase in a deterministic cost counter
	// (reads, distance comparisons) that counts as a regression.
	// Zero means the default of 10%.
	Threshold float64
	// LatencyThreshold, when positive, also compares p95 frame latency.
	// Latency is machine- and load-dependent, so it is off by default
	// and meant for runs pinned to comparable hardware.
	LatencyThreshold float64
}

// DefaultThreshold is the cost-counter tolerance used when
// Options.Threshold is zero.
const DefaultThreshold = 0.10

// minCost is the absolute floor below which relative cost changes are
// ignored: going from 0.2 to 0.5 reads per query is noise in the mean,
// not a regression worth failing CI over.
const minCost = 1.0

// Regression is one metric that got worse beyond the threshold.
type Regression struct {
	Fig      int
	Strategy string
	Overlap  float64
	Range    float64
	Phase    string // "first" | "subseq" | "latency"
	Metric   string
	Old      float64
	New      float64
}

// Ratio is the relative increase (0.5 = 50% worse).
func (r Regression) Ratio() float64 {
	if r.Old == 0 {
		return 0
	}
	return r.New/r.Old - 1
}

func (r Regression) String() string {
	return fmt.Sprintf("fig %d %s overlap=%g range=%g: %s %s %.2f -> %.2f (+%.1f%%)",
		r.Fig, r.Strategy, r.Overlap, r.Range, r.Phase, r.Metric,
		r.Old, r.New, 100*r.Ratio())
}

// Result summarizes one comparison.
type Result struct {
	Regressions []Regression
	// CellsCompared counts baseline cells matched in the new report.
	CellsCompared int
	// Missing lists baseline cells the new report no longer measures —
	// reported (not failed) so a narrowed run is visible, not silent.
	Missing []string
}

// OK reports whether the run is free of regressions.
func (r *Result) OK() bool { return len(r.Regressions) == 0 }

// Summary renders the result for terminal output.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "compared %d cells", r.CellsCompared)
	if len(r.Missing) > 0 {
		fmt.Fprintf(&b, " (%d baseline cells not in this run)", len(r.Missing))
	}
	if r.OK() {
		b.WriteString(": no regressions")
		return b.String()
	}
	fmt.Fprintf(&b, ": %d regression(s)\n", len(r.Regressions))
	for _, reg := range r.Regressions {
		b.WriteString("  REGRESSION " + reg.String() + "\n")
	}
	return strings.TrimRight(b.String(), "\n")
}

type cellKey struct {
	fig          int
	strategy     string
	overlap, rng float64
}

func (k cellKey) String() string {
	return fmt.Sprintf("fig %d %s overlap=%g range=%g", k.fig, k.strategy, k.overlap, k.rng)
}

// Compare checks the new report against the baseline. It errors when
// the two runs measured different workloads (scale, seed, trajectory
// count), because cost counters are only comparable on identical input.
func Compare(baseline, current *bench.Report, opts Options) (*Result, error) {
	if baseline.Scale != current.Scale {
		return nil, fmt.Errorf("compare: scale differs (baseline %g, current %g)", baseline.Scale, current.Scale)
	}
	if baseline.Seed != current.Seed {
		return nil, fmt.Errorf("compare: seed differs (baseline %d, current %d)", baseline.Seed, current.Seed)
	}
	if baseline.Trajectories != current.Trajectories {
		return nil, fmt.Errorf("compare: trajectory count differs (baseline %d, current %d)", baseline.Trajectories, current.Trajectories)
	}
	threshold := opts.Threshold
	if threshold == 0 {
		threshold = DefaultThreshold
	}

	cur := make(map[cellKey]bench.CellReport)
	for _, f := range current.Figures {
		for _, c := range f.Cells {
			cur[cellKey{f.Fig, c.Strategy, c.Overlap, c.Range}] = c
		}
	}

	res := &Result{}
	for _, f := range baseline.Figures {
		for _, oc := range f.Cells {
			key := cellKey{f.Fig, oc.Strategy, oc.Overlap, oc.Range}
			nc, ok := cur[key]
			if !ok {
				res.Missing = append(res.Missing, key.String())
				continue
			}
			res.CellsCompared++
			checkPhase(res, key, "first", oc.First, nc.First, threshold)
			checkPhase(res, key, "subseq", oc.Subseq, nc.Subseq, threshold)
		}
		if opts.LatencyThreshold > 0 {
			checkLatency(res, current, f, opts.LatencyThreshold)
		}
	}
	sort.Slice(res.Regressions, func(i, j int) bool {
		return res.Regressions[i].Ratio() > res.Regressions[j].Ratio()
	})
	return res, nil
}

func checkPhase(res *Result, key cellKey, phase string, old, cur bench.CostReport, threshold float64) {
	check := func(metric string, o, n float64) {
		if o < minCost && n < minCost {
			return
		}
		if o <= 0 {
			o = minCost // a metric appearing from zero is judged against the floor
		}
		if n > o*(1+threshold) {
			res.Regressions = append(res.Regressions, Regression{
				Fig: key.fig, Strategy: key.strategy, Overlap: key.overlap, Range: key.rng,
				Phase: phase, Metric: metric, Old: o, New: n,
			})
		}
	}
	check("reads", old.Reads, cur.Reads)
	check("distance_comps", old.DistanceComps, cur.DistanceComps)
}

func checkLatency(res *Result, current *bench.Report, baseFig bench.FigureReport, threshold float64) {
	if baseFig.Latency == nil {
		return
	}
	curFig, ok := current.FigureByNumber(baseFig.Fig)
	if !ok || curFig.Latency == nil {
		return
	}
	o, n := baseFig.Latency.P95NS, curFig.Latency.P95NS
	if o > 0 && n > o*(1+threshold) {
		res.Regressions = append(res.Regressions, Regression{
			Fig: baseFig.Fig, Strategy: "*", Phase: "latency", Metric: "p95_ns",
			Old: o, New: n,
		})
	}
}
