package core

import (
	"math/rand"
	"testing"

	"dynq/internal/geom"
	"dynq/internal/motion"
	"dynq/internal/pager"
	"dynq/internal/rtree"
	"dynq/internal/stats"
	"dynq/internal/trajectory"
)

// buildIndex creates a tree over a synthetic population.
func buildIndex(t testing.TB, cfg rtree.Config, objects int, duration float64, seed int64) (*rtree.Tree, []rtree.LeafEntry) {
	t.Helper()
	segs, err := motion.GenerateSegments(motion.SimConfig{
		Objects: objects, Dims: 2, WorldSize: 100, Duration: duration,
		Speed: 1, SpeedStd: 0.2, UpdateMean: 1, UpdateStd: 0.25, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]rtree.LeafEntry, len(segs))
	for i, s := range segs {
		entries[i] = rtree.LeafEntry{ID: rtree.ObjectID(s.ObjID), Seg: rtree.QuantizeSegment(s.Seg)}
	}
	tree, err := rtree.BulkLoad(cfg, pager.NewMemStore(), entries)
	if err != nil {
		t.Fatal(err)
	}
	return tree, entries
}

// straightTraj sweeps a w×w window from (x0,y0) along +x at the given
// speed over [t0, t1].
func straightTraj(t testing.TB, x0, y0, w, speed, t0, t1 float64) *trajectory.Trajectory {
	t.Helper()
	tr, err := trajectory.New([]trajectory.Key{
		{T: t0, Window: geom.Box{{Lo: x0, Hi: x0 + w}, {Lo: y0, Hi: y0 + w}}},
		{T: t1, Window: geom.Box{{Lo: x0 + speed*(t1-t0), Hi: x0 + w + speed*(t1-t0)}, {Lo: y0, Hi: y0 + w}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

type episodeKey struct {
	id       rtree.ObjectID
	segStart float64
	appear   float64
}

// bruteEpisodes computes every (segment, visibility episode) pair for a
// trajectory by exact geometry over all entries.
func bruteEpisodes(entries []rtree.LeafEntry, tr *trajectory.Trajectory) map[episodeKey]geom.Interval {
	out := map[episodeKey]geom.Interval{}
	var set geom.IntervalSet
	for _, e := range entries {
		set.Reset()
		tr.OverlapSegment(e.Seg, &set)
		for _, iv := range set.Intervals() {
			out[episodeKey{id: e.ID, segStart: e.Seg.T.Lo, appear: iv.Lo}] = iv
		}
	}
	return out
}

func TestPDQFullDrainMatchesBruteForce(t *testing.T) {
	tree, entries := buildIndex(t, rtree.DefaultConfig(), 300, 50, 1)
	tr := straightTraj(t, 10, 40, 8, 1, 5, 45)
	var c stats.Counters
	pdq, err := NewPDQ(tree, tr, PDQOptions{}, &c)
	if err != nil {
		t.Fatal(err)
	}
	defer pdq.Close()
	span := tr.TimeSpan()
	got, err := pdq.Drain(span.Lo, span.Hi)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteEpisodes(entries, tr)
	if len(got) != len(want) {
		t.Errorf("PDQ returned %d episodes, brute force %d", len(got), len(want))
	}
	const eps = 1e-9
	prevAppear := span.Lo - 1
	for _, r := range got {
		if r.Appear < prevAppear-eps {
			t.Errorf("results out of appear order: %g after %g", r.Appear, prevAppear)
		}
		prevAppear = r.Appear
		k := episodeKey{id: r.ID, segStart: r.Seg.T.Lo, appear: r.Appear}
		iv, ok := want[k]
		if !ok {
			t.Errorf("unexpected episode %+v", k)
			continue
		}
		if abs(iv.Hi-r.Disappear) > eps {
			t.Errorf("episode %+v disappear = %g, want %g", k, r.Disappear, iv.Hi)
		}
		delete(want, k)
	}
	for k := range want {
		t.Errorf("missing episode %+v", k)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestPDQFrameByFrameEqualsFullDrain(t *testing.T) {
	tree, _ := buildIndex(t, rtree.DefaultConfig(), 300, 50, 2)
	tr := straightTraj(t, 10, 40, 8, 1, 5, 45)

	var cAll stats.Counters
	pdqAll, err := NewPDQ(tree, tr, PDQOptions{}, &cAll)
	if err != nil {
		t.Fatal(err)
	}
	defer pdqAll.Close()
	all, err := pdqAll.Drain(5, 45)
	if err != nil {
		t.Fatal(err)
	}

	// The same results must arrive when pulled frame by frame (0.1 time
	// units per frame, the paper's snapshot rate), with no duplicates.
	var cStep stats.Counters
	pdqStep, err := NewPDQ(tree, tr, PDQOptions{}, &cStep)
	if err != nil {
		t.Fatal(err)
	}
	defer pdqStep.Close()
	var stepped []Result
	for f := 0; f < 400; f++ {
		lo := 5 + float64(f)*0.1
		hi := lo + 0.1
		rs, err := pdqStep.Drain(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		stepped = append(stepped, rs...)
	}
	if len(stepped) != len(all) {
		t.Fatalf("frame-by-frame returned %d results, full drain %d", len(stepped), len(all))
	}
	seen := map[episodeKey]bool{}
	for _, r := range all {
		seen[episodeKey{id: r.ID, segStart: r.Seg.T.Lo, appear: r.Appear}] = true
	}
	for _, r := range stepped {
		if !seen[episodeKey{id: r.ID, segStart: r.Seg.T.Lo, appear: r.Appear}] {
			t.Errorf("stepped result %v not in full drain", r.ID)
		}
	}
	// Same I/O, too: the whole point of the algorithm is that frame rate
	// does not multiply disk accesses.
	if cStep.Snapshot().Reads() != cAll.Snapshot().Reads() {
		t.Errorf("stepped reads = %d, full-drain reads = %d (must be identical)",
			cStep.Snapshot().Reads(), cAll.Snapshot().Reads())
	}
}

func TestPDQReadsEachNodeAtMostOnce(t *testing.T) {
	tree, _ := buildIndex(t, rtree.DefaultConfig(), 2000, 100, 3)
	st, err := tree.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// A trajectory sweeping the entire space for the entire duration
	// forces every node to be visited — but none twice.
	tr, err := trajectory.New([]trajectory.Key{
		{T: 0, Window: geom.Box{{Lo: 0, Hi: 100}, {Lo: 0, Hi: 100}}},
		{T: 100, Window: geom.Box{{Lo: 0, Hi: 100}, {Lo: 0, Hi: 100}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var c stats.Counters
	pdq, err := NewPDQ(tree, tr, PDQOptions{}, &c)
	if err != nil {
		t.Fatal(err)
	}
	defer pdq.Close()
	n, err := pdq.Drain(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(n) != tree.Size() {
		t.Errorf("whole-world drain returned %d, index holds %d", len(n), tree.Size())
	}
	s := c.Snapshot()
	total := int64(st.LeafNodes + st.InternalNodes)
	if s.Reads() != total {
		t.Errorf("reads = %d, tree has %d nodes (each must be read exactly once)", s.Reads(), total)
	}
	if s.LeafReads != int64(st.LeafNodes) {
		t.Errorf("leaf reads = %d, want %d", s.LeafReads, st.LeafNodes)
	}
}

func TestPDQBeatsNaiveOnOverlappingFrames(t *testing.T) {
	tree, _ := buildIndex(t, rtree.DefaultConfig(), 1000, 100, 4)
	tr := straightTraj(t, 20, 40, 8, 0.5, 10, 60)

	var cPDQ stats.Counters
	pdq, err := NewPDQ(tree, tr, PDQOptions{}, &cPDQ)
	if err != nil {
		t.Fatal(err)
	}
	defer pdq.Close()
	var cNaive stats.Counters
	naive := NewNaive(tree, rtree.SearchOptions{}, &cNaive)

	frames := 100
	for f := 0; f < frames; f++ {
		lo := 10 + float64(f)*0.5
		hi := lo + 0.5
		if _, err := pdq.Drain(lo, hi); err != nil {
			t.Fatal(err)
		}
		if _, err := naive.Snapshot(tr.WindowAt(lo), geom.Interval{Lo: lo, Hi: hi}); err != nil {
			t.Fatal(err)
		}
	}
	if pr, nr := cPDQ.Snapshot().Reads(), cNaive.Snapshot().Reads(); pr >= nr {
		t.Errorf("PDQ reads (%d) should be far below naive reads (%d)", pr, nr)
	}
	if pd, nd := cPDQ.Snapshot().DistanceComps, cNaive.Snapshot().DistanceComps; pd >= nd {
		t.Errorf("PDQ distance comps (%d) should be below naive (%d)", pd, nd)
	}
}

func TestPDQWindowValidation(t *testing.T) {
	tree, _ := buildIndex(t, rtree.DefaultConfig(), 50, 20, 5)
	tr := straightTraj(t, 10, 10, 8, 1, 0, 10)
	var c stats.Counters
	pdq, err := NewPDQ(tree, tr, PDQOptions{}, &c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pdq.GetNext(5, 4); err == nil {
		t.Error("inverted window should error")
	}
	pdq.Close()
	if _, err := pdq.GetNext(0, 1); err == nil {
		t.Error("GetNext after Close should error")
	}
	pdq.Close() // double close is a no-op
	// Dimension mismatch.
	oneD, err := trajectory.New([]trajectory.Key{
		{T: 0, Window: geom.Box{{Lo: 0, Hi: 1}}},
		{T: 1, Window: geom.Box{{Lo: 0, Hi: 1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPDQ(tree, oneD, PDQOptions{}, &c); err == nil {
		t.Error("dimension mismatch should be rejected")
	}
}

func TestPDQEmptyTree(t *testing.T) {
	tree, err := rtree.New(rtree.DefaultConfig(), pager.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	tr := straightTraj(t, 0, 0, 8, 1, 0, 10)
	var c stats.Counters
	pdq, err := NewPDQ(tree, tr, PDQOptions{}, &c)
	if err != nil {
		t.Fatal(err)
	}
	defer pdq.Close()
	r, err := pdq.GetNext(0, 10)
	if err != nil || r != nil {
		t.Errorf("empty tree GetNext = %v, %v", r, err)
	}
}

func TestPDQLiveUpdates(t *testing.T) {
	tree, _ := buildIndex(t, rtree.DefaultConfig(), 200, 100, 6)
	tr := straightTraj(t, 20, 40, 8, 0.5, 10, 90)
	var c stats.Counters
	pdq, err := NewPDQ(tree, tr, PDQOptions{LiveUpdates: true}, &c)
	if err != nil {
		t.Fatal(err)
	}
	defer pdq.Close()

	// Consume the first half of the trajectory.
	firstHalf, err := pdq.Drain(10, 50)
	if err != nil {
		t.Fatal(err)
	}
	returned := map[rtree.ObjectID]bool{}
	for _, r := range firstHalf {
		returned[r.ID] = true
	}

	// Insert objects that sit inside the future query path: the window at
	// t=70 is [50,58]×[40,48].
	for i := 0; i < 20; i++ {
		id := rtree.ObjectID(10000 + i)
		seg := geom.Segment{
			T:     geom.Interval{Lo: 60, Hi: 80},
			Start: geom.Point{52 + float64(i%4), 42 + float64(i/4)},
			End:   geom.Point{52 + float64(i%4), 42 + float64(i/4)},
		}
		if err := tree.Insert(id, seg); err != nil {
			t.Fatal(err)
		}
	}
	// Also insert an object far away that must not appear.
	if err := tree.Insert(99999, geom.Segment{
		T: geom.Interval{Lo: 60, Hi: 80}, Start: geom.Point{5, 5}, End: geom.Point{5, 5},
	}); err != nil {
		t.Fatal(err)
	}

	secondHalf, err := pdq.Drain(50, 90)
	if err != nil {
		t.Fatal(err)
	}
	got := map[rtree.ObjectID]bool{}
	for _, r := range secondHalf {
		got[r.ID] = true
	}
	for i := 0; i < 20; i++ {
		id := rtree.ObjectID(10000 + i)
		if !got[id] {
			t.Errorf("live-inserted object %d missing from PDQ results", id)
		}
	}
	if got[99999] {
		t.Error("far-away inserted object must not be returned")
	}
}

// Under heavy concurrent insertion the session must remain complete: every
// object that overlaps the not-yet-consumed part of the trajectory is
// eventually returned, whether it was present at session start or inserted
// mid-flight (including inserts that split nodes).
func TestPDQLiveUpdatesWithSplits(t *testing.T) {
	tree, entries := buildIndex(t, rtree.DefaultConfig(), 500, 100, 7)
	tr := straightTraj(t, 10, 40, 10, 0.8, 10, 90)
	var c stats.Counters
	pdq, err := NewPDQ(tree, tr, PDQOptions{LiveUpdates: true}, &c)
	if err != nil {
		t.Fatal(err)
	}
	defer pdq.Close()

	if _, err := pdq.Drain(10, 30); err != nil {
		t.Fatal(err)
	}

	// Insert thousands of segments to force leaf and internal splits while
	// the session is live. Half of them are relevant to the remaining
	// trajectory (alive during [40,90] near the future path).
	r := rand.New(rand.NewSource(8))
	var lateEntries []rtree.LeafEntry
	for i := 0; i < 4000; i++ {
		id := rtree.ObjectID(50000 + i)
		var seg geom.Segment
		if i%2 == 0 {
			x := 30 + r.Float64()*50
			y := 35 + r.Float64()*20
			t0 := 40 + r.Float64()*40
			seg = geom.Segment{
				T:     geom.Interval{Lo: t0, Hi: t0 + 5},
				Start: geom.Point{x, y},
				End:   geom.Point{x + r.Float64()*2, y + r.Float64()*2},
			}
		} else {
			// Irrelevant filler that still changes tree structure.
			seg = geom.Segment{
				T:     geom.Interval{Lo: r.Float64() * 20, Hi: 20 + r.Float64()*10},
				Start: geom.Point{r.Float64() * 100, r.Float64() * 20},
				End:   geom.Point{r.Float64() * 100, r.Float64() * 20},
			}
		}
		if err := tree.Insert(id, seg); err != nil {
			t.Fatal(err)
		}
		lateEntries = append(lateEntries, rtree.LeafEntry{ID: id, Seg: rtree.QuantizeSegment(seg)})
	}

	rest, err := pdq.Drain(30, 90)
	if err != nil {
		t.Fatal(err)
	}
	got := map[episodeKey]bool{}
	for _, r := range rest {
		got[episodeKey{id: r.ID, segStart: r.Seg.T.Lo, appear: r.Appear}] = true
	}
	// Every late-inserted entry whose visibility episode begins after
	// t=30 must have been returned.
	var set geom.IntervalSet
	missing := 0
	for _, e := range lateEntries {
		set.Reset()
		tr.OverlapSegment(e.Seg, &set)
		for _, iv := range set.Intervals() {
			if iv.Lo > 30.5 { // safely after the consumed prefix
				if !got[episodeKey{id: e.ID, segStart: e.Seg.T.Lo, appear: iv.Lo}] {
					missing++
				}
			}
		}
	}
	if missing > 0 {
		t.Errorf("%d late-inserted visible episodes were never returned", missing)
	}
	_ = entries
}

func TestPDQRebuildOnRootSplit(t *testing.T) {
	// Start from a tiny tree (single leaf), then insert enough to split
	// the root while a session with RebuildOnRootSplit runs.
	store := pager.NewMemStore()
	tree, err := rtree.New(rtree.DefaultConfig(), store)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		seg := geom.Segment{
			T:     geom.Interval{Lo: float64(i), Hi: float64(i) + 1},
			Start: geom.Point{50, 50},
			End:   geom.Point{50, 50},
		}
		if err := tree.Insert(rtree.ObjectID(i), seg); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := trajectory.New([]trajectory.Key{
		{T: 0, Window: geom.Box{{Lo: 0, Hi: 100}, {Lo: 0, Hi: 100}}},
		{T: 200, Window: geom.Box{{Lo: 0, Hi: 100}, {Lo: 0, Hi: 100}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var c stats.Counters
	pdq, err := NewPDQ(tree, tr, PDQOptions{LiveUpdates: true, RebuildOnRootSplit: true}, &c)
	if err != nil {
		t.Fatal(err)
	}
	defer pdq.Close()
	if _, err := pdq.Drain(0, 10); err != nil {
		t.Fatal(err)
	}
	// Force a root split (leaf fanout 127).
	for i := 100; i < 300; i++ {
		seg := geom.Segment{
			T:     geom.Interval{Lo: 100 + float64(i%100), Hi: 101 + float64(i%100)},
			Start: geom.Point{float64(i % 100), 50},
			End:   geom.Point{float64(i % 100), 50},
		}
		if err := tree.Insert(rtree.ObjectID(i), seg); err != nil {
			t.Fatal(err)
		}
	}
	got, err := pdq.Drain(10, 200)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[rtree.ObjectID]bool{}
	for _, r := range got {
		ids[r.ID] = true
	}
	missing := 0
	for i := 100; i < 300; i++ {
		if !ids[rtree.ObjectID(i)] {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d objects inserted across the root split were lost", missing)
	}
}

func TestPDQWithSPDQInflation(t *testing.T) {
	tree, entries := buildIndex(t, rtree.DefaultConfig(), 400, 50, 9)
	exact := straightTraj(t, 10, 40, 8, 1, 5, 45)
	inflated, err := exact.Inflate(func(float64) float64 { return 2 })
	if err != nil {
		t.Fatal(err)
	}
	var c1, c2 stats.Counters
	p1, err := NewPDQ(tree, exact, PDQOptions{}, &c1)
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	p2, err := NewPDQ(tree, inflated, PDQOptions{}, &c2)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	a, err := p1.Drain(5, 45)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p2.Drain(5, 45)
	if err != nil {
		t.Fatal(err)
	}
	// SPDQ retrieves a superset of object ids.
	bIDs := map[rtree.ObjectID]bool{}
	for _, r := range b {
		bIDs[r.ID] = true
	}
	for _, r := range a {
		if !bIDs[r.ID] {
			t.Errorf("object %d visible to exact PDQ missing from SPDQ", r.ID)
		}
	}
	if len(b) < len(a) {
		t.Errorf("SPDQ episodes (%d) should be ≥ PDQ episodes (%d)", len(b), len(a))
	}
	_ = entries
}
