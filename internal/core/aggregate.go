package core

import (
	"fmt"
	"sort"

	"dynq/internal/cache"
	"dynq/internal/rtree"
	"dynq/internal/stats"
	"dynq/internal/trajectory"
)

// ContinuousCount evaluates the aggregate COUNT(*) of a dynamic query —
// how many objects are inside the moving window at each sample time —
// using one predictive session and a disappearance-time heap, so the
// whole series costs one incremental traversal instead of one range
// aggregation per sample (the paper's future work (ii): dynamic queries
// with aggregation).
//
// Sample times must be increasing and lie within the trajectory's span.
func ContinuousCount(tree *rtree.Tree, traj *trajectory.Trajectory, times []float64, c *stats.Counters) ([]int, error) {
	if len(times) == 0 {
		return nil, nil
	}
	if !sort.Float64sAreSorted(times) {
		return nil, fmt.Errorf("core: sample times must be sorted")
	}
	span := traj.TimeSpan()
	if times[0] < span.Lo || times[len(times)-1] > span.Hi {
		return nil, fmt.Errorf("core: sample times [%g,%g] escape the trajectory span %v",
			times[0], times[len(times)-1], span)
	}
	pdq, err := NewPDQ(tree, traj, PDQOptions{}, c)
	if err != nil {
		return nil, err
	}
	defer pdq.Close()

	// Track visible episodes keyed by (object, episode start): an object
	// re-entering the view is a fresh episode. cache evicts on episode
	// end.
	live := cache.New[struct{}]()
	counts := make([]int, len(times))
	prev := span.Lo
	key := func(r *Result) uint64 {
		// Object id mixed with the episode's appear time; collisions
		// would require two episodes of one object starting at the same
		// instant, which visibility geometry excludes.
		return uint64(r.ID)<<20 ^ uint64(int64(r.Appear*1e6))&(1<<20-1)
	}
	for i, t := range times {
		// Pull every episode appearing up to t.
		for {
			r, err := pdq.GetNext(prev, t)
			if err != nil {
				return nil, err
			}
			if r == nil {
				break
			}
			if r.Disappear >= t {
				live.Put(key(r), struct{}{}, r.Disappear)
			}
		}
		// Strictly-before eviction: the count samples the visible set AT
		// instant t, so an episode ending exactly at t still overlaps it.
		live.AdvanceBefore(t)
		counts[i] = live.Len()
		prev = t
	}
	return counts, nil
}
