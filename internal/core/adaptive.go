package core

import (
	"fmt"
	"math"

	"dynq/internal/geom"
	"dynq/internal/rtree"
	"dynq/internal/stats"
	"dynq/internal/trajectory"
)

// Mode reports which engine an adaptive session is currently using.
type Mode int

// Adaptive session modes.
const (
	ModeNonPredictive Mode = iota // trajectory unknown: NPDQ per frame
	ModePredictive                // trajectory predicted: SPDQ streaming
)

func (m Mode) String() string {
	if m == ModePredictive {
		return "predictive"
	}
	return "non-predictive"
}

// AdaptiveOptions tune the PDQ ↔ NPDQ hand-off (the paper's future work
// (iv): "investigating the spectrum of possibilities between complete
// unpredictability and complete predictability of query motion and
// automating this in the query processor").
type AdaptiveOptions struct {
	// Slack is the deviation δ tolerated before a prediction is
	// abandoned; predictive mode runs as an SPDQ with windows inflated by
	// this much, so results stay complete while the observer wobbles
	// within δ of the predicted path.
	Slack float64
	// Horizon is how far ahead (time units) a prediction extends. When
	// the observer outlives it on a steady course, a fresh prediction is
	// registered.
	Horizon float64
	// StableFrames is how many consecutive frames of consistent motion
	// are required before the session switches to predictive mode.
	StableFrames int
	// Tolerance is the per-frame velocity inconsistency (length units)
	// still considered "steady". Defaults to Slack/4 when zero.
	Tolerance float64
}

func (o *AdaptiveOptions) setDefaults() error {
	if o.Slack <= 0 {
		return fmt.Errorf("core: adaptive Slack must be positive")
	}
	if o.Horizon <= 0 {
		return fmt.Errorf("core: adaptive Horizon must be positive")
	}
	if o.StableFrames < 2 {
		o.StableFrames = 3
	}
	if o.Tolerance <= 0 {
		o.Tolerance = o.Slack / 4
	}
	return nil
}

// Adaptive evaluates a dynamic query whose predictability varies: it
// watches the observer's actual view windows, runs NPDQ while the motion
// is erratic, and hands off to a semi-predictive (slack-inflated) PDQ as
// soon as the recent motion extrapolates — switching back the moment the
// observer deviates beyond the slack (Section 4's three-mode system:
// snapshot / predictive / non-predictive).
//
// Not safe for concurrent use.
type Adaptive struct {
	tree *rtree.Tree
	c    *stats.Counters
	opts AdaptiveOptions

	mode     Mode
	npdq     *NPDQ
	pdq      *PDQ
	traj     *trajectory.Trajectory
	hist     []frameObs // recent observed frames (bounded)
	switches int
}

type frameObs struct {
	t   float64 // frame start
	win geom.Box
}

// NewAdaptive starts an adaptive session.
func NewAdaptive(tree *rtree.Tree, opts AdaptiveOptions, c *stats.Counters) (*Adaptive, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	return &Adaptive{
		tree: tree,
		c:    c,
		opts: opts,
		npdq: NewNPDQ(tree, NPDQOptions{}, c),
	}, nil
}

// Close releases any live predictive session.
func (a *Adaptive) Close() {
	if a.pdq != nil {
		a.pdq.Close()
		a.pdq = nil
	}
}

// Mode returns the engine currently in use.
func (a *Adaptive) Mode() Mode { return a.mode }

// Switches reports how many PDQ↔NPDQ hand-offs have happened.
func (a *Adaptive) Switches() int { return a.switches }

// Frame reports the observer's actual view for one frame and returns the
// newly visible objects (incremental, like the underlying engines — the
// client keeps a ViewCache). Frames must advance monotonically in time.
func (a *Adaptive) Frame(window geom.Box, tw geom.Interval) ([]Result, error) {
	if len(window) != a.tree.Config().Dims {
		return nil, fmt.Errorf("core: window has %d dims, index has %d", len(window), a.tree.Config().Dims)
	}
	if tw.Empty() {
		return nil, fmt.Errorf("core: frame time window is empty")
	}
	if n := len(a.hist); n > 0 && tw.Lo < a.hist[n-1].t {
		return nil, fmt.Errorf("core: frames must advance in time")
	}
	a.observe(frameObs{t: tw.Lo, win: window.Clone()})

	if a.mode == ModePredictive {
		if a.onCourse(window, tw) {
			return a.pdq.Drain(tw.Lo, tw.Hi)
		}
		// Deviated beyond the slack: abandon the prediction.
		a.toNonPredictive()
	}
	out, err := a.npdq.Next(window, tw)
	if err != nil {
		return nil, err
	}
	if v, ok := a.steadyVelocity(); ok {
		handoff, err := a.toPredictive(window, tw, v)
		if err != nil {
			return nil, err
		}
		// The new predictive session re-announces this frame's view with
		// proper disappearance times; the client upserts, extending the
		// deadlines of objects NPDQ delivered with frame-length episodes.
		out = append(out, handoff...)
	}
	return out, nil
}

func (a *Adaptive) observe(f frameObs) {
	a.hist = append(a.hist, f)
	if max := a.opts.StableFrames + 1; len(a.hist) > max {
		a.hist = a.hist[len(a.hist)-max:]
	}
}

// onCourse reports whether the observed window stays within the slack of
// the predicted one and the prediction still covers this frame.
func (a *Adaptive) onCourse(window geom.Box, tw geom.Interval) bool {
	if a.traj.TimeSpan().Hi < tw.Hi {
		return false // prediction horizon exhausted
	}
	pred := a.traj.WindowAt(tw.Lo)
	dev := 0.0
	for i := range window {
		dev = math.Max(dev, math.Abs(window[i].Lo-(pred[i].Lo+a.opts.Slack)))
		dev = math.Max(dev, math.Abs(window[i].Hi-(pred[i].Hi-a.opts.Slack)))
	}
	return dev <= a.opts.Slack
}

// steadyVelocity extrapolates the recent window motion; ok is true when
// the last StableFrames deltas agree within the tolerance.
func (a *Adaptive) steadyVelocity() (geom.Point, bool) {
	need := a.opts.StableFrames + 1
	if len(a.hist) < need {
		return nil, false
	}
	h := a.hist[len(a.hist)-need:]
	d := a.tree.Config().Dims
	vel := make(geom.Point, d)
	// Mean velocity of the window's low corner over the stable span.
	dt := h[len(h)-1].t - h[0].t
	if dt <= 0 {
		return nil, false
	}
	for i := 0; i < d; i++ {
		vel[i] = (h[len(h)-1].win[i].Lo - h[0].win[i].Lo) / dt
	}
	// Every consecutive step must agree with the mean within tolerance.
	for k := 1; k < len(h); k++ {
		stepDt := h[k].t - h[k-1].t
		if stepDt <= 0 {
			return nil, false
		}
		for i := 0; i < d; i++ {
			pred := vel[i] * stepDt
			got := h[k].win[i].Lo - h[k-1].win[i].Lo
			if math.Abs(got-pred) > a.opts.Tolerance {
				return nil, false
			}
		}
	}
	return vel, true
}

// toPredictive registers a slack-inflated straight-line prediction from
// the current window at the estimated velocity, returning the new
// session's results for the current frame.
func (a *Adaptive) toPredictive(window geom.Box, tw geom.Interval, vel geom.Point) ([]Result, error) {
	d := a.tree.Config().Dims
	end := make(geom.Box, d)
	for i := 0; i < d; i++ {
		shift := vel[i] * a.opts.Horizon
		end[i] = geom.Interval{Lo: window[i].Lo + shift, Hi: window[i].Hi + shift}
	}
	traj, err := trajectory.New([]trajectory.Key{
		{T: tw.Lo, Window: window.Clone()},
		{T: tw.Lo + a.opts.Horizon, Window: end},
	})
	if err != nil {
		return nil, err
	}
	traj, err = traj.Inflate(func(float64) float64 { return a.opts.Slack })
	if err != nil {
		return nil, err
	}
	pdq, err := NewPDQ(a.tree, traj, PDQOptions{LiveUpdates: true}, a.c)
	if err != nil {
		return nil, err
	}
	a.traj = traj
	a.pdq = pdq
	a.mode = ModePredictive
	a.switches++
	return a.pdq.Drain(tw.Lo, tw.Hi)
}

func (a *Adaptive) toNonPredictive() {
	if a.pdq != nil {
		a.pdq.Close()
		a.pdq = nil
	}
	a.traj = nil
	a.mode = ModeNonPredictive
	a.switches++
	// NPDQ's previous-query memory is stale (the predictive phase did not
	// feed it); reset so the next snapshot is evaluated in full.
	a.npdq.Reset()
}
