// Package core implements the paper's contribution: query processing for
// dynamic queries over mobile objects.
//
// A dynamic query (Definition 4) is a time-ordered series of snapshot
// queries posed by a moving observer. Three evaluation strategies are
// provided, matching Section 4 and the experimental comparison of
// Section 5:
//
//   - Naive: each snapshot re-executed from scratch against the index
//     (the baseline the paper improves on).
//   - PDQ (Section 4.1): the observer's trajectory is known; a priority
//     queue ordered by visibility-start time turns the whole dynamic
//     query into one incremental index traversal that touches each node
//     at most once, with live-update management (Figure 4).
//   - NPDQ (Section 4.2): the trajectory is unknown; each snapshot prunes
//     index nodes whose overlap with the current query was already
//     covered by the previous query (the discardability test, Lemma 1),
//     guarded by node modification timestamps under concurrent inserts.
//
// All strategies charge costs to stats.Counters using the paper's two
// metrics: disk accesses (node loads, split leaf/internal) and distance
// computations (geometric predicate evaluations, one per entry examined).
package core

import (
	"dynq/internal/geom"
	"dynq/internal/rtree"
)

// Result is one object delivered to the client: the motion segment that
// made it visible and the visibility episode [Appear, Disappear] during
// which it stays inside the (moving) query window. The client caches the
// object keyed on Disappear (Section 4.1's caching note).
type Result struct {
	ID        rtree.ObjectID
	Seg       geom.Segment
	Appear    float64
	Disappear float64
}

// resultFromMatch converts an index match into a client result.
func resultFromMatch(m rtree.Match) Result {
	return Result{ID: m.ID, Seg: m.Seg, Appear: m.Overlap.Lo, Disappear: m.Overlap.Hi}
}
