package core

import (
	"errors"
	"testing"

	"dynq/internal/geom"
	"dynq/internal/motion"
	"dynq/internal/pager"
	"dynq/internal/rtree"
	"dynq/internal/stats"
	"dynq/internal/trajectory"
)

// faultTree builds an index over a fault-injecting store (disarmed during
// the build).
func faultTree(t *testing.T, cfg rtree.Config) (*rtree.Tree, *pager.FaultStore) {
	t.Helper()
	fs := pager.NewFaultStore(pager.NewMemStore())
	segs, err := motion.GenerateSegments(motion.SimConfig{
		Objects: 200, Dims: 2, WorldSize: 100, Duration: 50,
		Speed: 1, SpeedStd: 0.2, UpdateMean: 1, UpdateStd: 0.25, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]rtree.LeafEntry, len(segs))
	for i, s := range segs {
		entries[i] = rtree.LeafEntry{ID: rtree.ObjectID(s.ObjID), Seg: s.Seg}
	}
	tree, err := rtree.BulkLoad(cfg, fs, entries)
	if err != nil {
		t.Fatal(err)
	}
	return tree, fs
}

// Every engine must propagate injected read failures as errors — never a
// silent partial answer.
func TestEnginesPropagateReadFaults(t *testing.T) {
	win := geom.Box{{Lo: 20, Hi: 40}, {Lo: 20, Hi: 40}}
	tw := geom.Interval{Lo: 10, Hi: 12}

	t.Run("RangeSearch", func(t *testing.T) {
		tree, fs := faultTree(t, rtree.DefaultConfig())
		fs.Arm(2)
		defer fs.Disarm()
		var c stats.Counters
		if _, err := tree.RangeSearch(win, tw, rtree.SearchOptions{}, &c); !errors.Is(err, pager.ErrInjected) {
			t.Errorf("range search error = %v, want injected fault", err)
		}
	})
	t.Run("PDQ", func(t *testing.T) {
		tree, fs := faultTree(t, rtree.DefaultConfig())
		tr, err := trajectory.New([]trajectory.Key{
			{T: 5, Window: win},
			{T: 30, Window: win},
		})
		if err != nil {
			t.Fatal(err)
		}
		var c stats.Counters
		pdq, err := NewPDQ(tree, tr, PDQOptions{}, &c)
		if err != nil {
			t.Fatal(err)
		}
		defer pdq.Close()
		fs.Arm(2)
		defer fs.Disarm()
		_, err = pdq.Drain(5, 30)
		if !errors.Is(err, pager.ErrInjected) {
			t.Errorf("pdq error = %v, want injected fault", err)
		}
	})
	t.Run("NPDQ", func(t *testing.T) {
		cfg := rtree.DefaultConfig()
		cfg.DualTime = true
		tree, fs := faultTree(t, cfg)
		var c stats.Counters
		nq := NewNPDQ(tree, NPDQOptions{}, &c)
		fs.Arm(2)
		defer fs.Disarm()
		if _, err := nq.Next(win, tw); !errors.Is(err, pager.ErrInjected) {
			t.Errorf("npdq error = %v, want injected fault", err)
		}
	})
	t.Run("KNN", func(t *testing.T) {
		tree, fs := faultTree(t, rtree.DefaultConfig())
		fs.Arm(2)
		defer fs.Disarm()
		var c stats.Counters
		if _, err := KNN(tree, geom.Point{50, 50}, 10, 5, &c); !errors.Is(err, pager.ErrInjected) {
			t.Errorf("knn error = %v, want injected fault", err)
		}
	})
	t.Run("DistanceJoin", func(t *testing.T) {
		tree, fs := faultTree(t, rtree.DefaultConfig())
		fs.Arm(2)
		defer fs.Disarm()
		var c stats.Counters
		if _, err := DistanceJoin(tree, tree, 2, 10, &c); !errors.Is(err, pager.ErrInjected) {
			t.Errorf("join error = %v, want injected fault", err)
		}
	})
	t.Run("Insert", func(t *testing.T) {
		tree, fs := faultTree(t, rtree.DefaultConfig())
		fs.Arm(1)
		defer fs.Disarm()
		seg := geom.Segment{T: geom.Interval{Lo: 1, Hi: 2}, Start: geom.Point{1, 1}, End: geom.Point{2, 2}}
		if err := tree.Insert(99999, seg); !errors.Is(err, pager.ErrInjected) {
			t.Errorf("insert error = %v, want injected fault", err)
		}
	})
}

// After a transient fault clears, the same session keeps working: the
// engines hold no corrupted state.
func TestEnginesRecoverAfterTransientFault(t *testing.T) {
	tree, fs := faultTree(t, rtree.DefaultConfig())
	tr, err := trajectory.New([]trajectory.Key{
		{T: 5, Window: geom.Box{{Lo: 10, Hi: 30}, {Lo: 10, Hi: 30}}},
		{T: 40, Window: geom.Box{{Lo: 30, Hi: 50}, {Lo: 10, Hi: 30}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var c stats.Counters
	pdq, err := NewPDQ(tree, tr, PDQOptions{}, &c)
	if err != nil {
		t.Fatal(err)
	}
	defer pdq.Close()
	if _, err := pdq.Drain(5, 15); err != nil {
		t.Fatal(err)
	}
	fs.Arm(1)
	if _, err := pdq.Drain(15, 25); !errors.Is(err, pager.ErrInjected) {
		t.Fatalf("expected injected fault, got %v", err)
	}
	fs.Disarm()
	// The failed node pop was consumed; the session continues and the
	// remaining trajectory still yields results without error.
	rest, err := pdq.Drain(15, 40)
	if err != nil {
		t.Fatalf("session did not recover: %v", err)
	}
	_ = rest
}

func TestFaultStoreMechanics(t *testing.T) {
	fs := pager.NewFaultStore(pager.NewMemStore())
	id, err := fs.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, pager.PageSize)
	if err := fs.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	// Arm(3): two reads succeed, third and later fail.
	fs.Arm(3)
	for i := 0; i < 2; i++ {
		if err := fs.ReadPage(id, buf); err != nil {
			t.Fatalf("read %d should succeed: %v", i, err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := fs.ReadPage(id, buf); !errors.Is(err, pager.ErrInjected) {
			t.Fatalf("read should fail: %v", err)
		}
	}
	fs.Disarm()
	if err := fs.ReadPage(id, buf); err != nil {
		t.Fatalf("disarmed read failed: %v", err)
	}
	// Write faults.
	fs.ArmWrites(1)
	if err := fs.WritePage(id, buf); !errors.Is(err, pager.ErrInjected) {
		t.Fatalf("write should fail: %v", err)
	}
	fs.Disarm()
	if fs.NumPages() != 1 {
		t.Errorf("NumPages = %d", fs.NumPages())
	}
	if err := fs.Sync(); err != nil {
		t.Errorf("sync: %v", err)
	}
	if err := fs.Free(id); err != nil {
		t.Errorf("free: %v", err)
	}
	if err := fs.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}
