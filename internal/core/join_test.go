package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dynq/internal/geom"
	"dynq/internal/pager"
	"dynq/internal/rtree"
	"dynq/internal/stats"
)

func bruteJoin(a, b []rtree.LeafEntry, delta, t float64, self bool) map[[2]rtree.ObjectID]bool {
	out := map[[2]rtree.ObjectID]bool{}
	for _, ea := range a {
		if !ea.Seg.T.ContainsValue(t) {
			continue
		}
		pa := ea.Seg.At(t)
		for _, eb := range b {
			if !eb.Seg.T.ContainsValue(t) {
				continue
			}
			if self && ea.ID == eb.ID {
				continue
			}
			if pa.Dist(eb.Seg.At(t)) <= delta {
				k := [2]rtree.ObjectID{ea.ID, eb.ID}
				if self && k[0] > k[1] {
					k[0], k[1] = k[1], k[0]
				}
				out[k] = true
			}
		}
	}
	return out
}

func joinKeys(pairs []JoinPair) map[[2]rtree.ObjectID]bool {
	out := map[[2]rtree.ObjectID]bool{}
	for _, p := range pairs {
		out[[2]rtree.ObjectID{p.A, p.B}] = true
	}
	return out
}

func TestSelfDistanceJoinMatchesBruteForce(t *testing.T) {
	tree, entries := buildIndex(t, rtree.DefaultConfig(), 300, 40, 31)
	var c stats.Counters
	for _, tt := range []float64{5, 17.3, 33} {
		got, err := DistanceJoin(tree, tree, 2.0, tt, &c)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteJoin(entries, entries, 2.0, tt, true)
		gk := joinKeys(got)
		if len(gk) != len(want) {
			t.Fatalf("t=%g: %d pairs, want %d", tt, len(gk), len(want))
		}
		if len(gk) != len(got) {
			t.Fatalf("t=%g: duplicate pairs reported", tt)
		}
		for k := range want {
			if !gk[k] {
				t.Errorf("t=%g: missing pair %v", tt, k)
			}
		}
	}
}

func TestCrossDistanceJoinMatchesBruteForce(t *testing.T) {
	treeA, entriesA := buildIndex(t, rtree.DefaultConfig(), 150, 40, 32)
	treeB, entriesB := buildIndex(t, rtree.DefaultConfig(), 150, 40, 33)
	var c stats.Counters
	got, err := DistanceJoin(treeA, treeB, 3.0, 20, &c)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteJoin(entriesA, entriesB, 3.0, 20, false)
	gk := joinKeys(got)
	if len(gk) != len(want) || len(gk) != len(got) {
		t.Fatalf("%d pairs (%d unique), want %d", len(got), len(gk), len(want))
	}
	for k := range want {
		if !gk[k] {
			t.Errorf("missing pair %v", k)
		}
	}
	// Distances are correct and within delta.
	for _, p := range got {
		d := p.SegA.At(20).Dist(p.SegB.At(20))
		if math.Abs(d-p.Dist) > 1e-9 || d > 3.0 {
			t.Errorf("pair (%d,%d) dist %g reported %g", p.A, p.B, d, p.Dist)
		}
	}
}

func TestDistanceJoinValidation(t *testing.T) {
	tree, _ := buildIndex(t, rtree.DefaultConfig(), 30, 20, 34)
	oneD, err := rtree.New(rtree.Config{Dims: 1, MinFill: 0.4, BulkFill: 0.5}, pager.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	var c stats.Counters
	if _, err := DistanceJoin(tree, oneD, 1, 5, &c); err == nil {
		t.Error("dimension mismatch should be rejected")
	}
	if _, err := DistanceJoin(tree, tree, -1, 5, &c); err == nil {
		t.Error("negative delta should be rejected")
	}
	empty, err := rtree.New(rtree.DefaultConfig(), pager.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	got, err := DistanceJoin(tree, empty, 1, 5, &c)
	if err != nil || got != nil {
		t.Errorf("join with empty tree = %v, %v", got, err)
	}
}

func TestDistanceJoinPrunes(t *testing.T) {
	tree, _ := buildIndex(t, rtree.DefaultConfig(), 1000, 100, 35)
	st, err := tree.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var c stats.Counters
	if _, err := DistanceJoin(tree, tree, 1.0, 50, &c); err != nil {
		t.Fatal(err)
	}
	// A join at one instant must not read the whole (100-time-unit) tree.
	total := int64(st.LeafNodes + st.InternalNodes)
	if reads := c.Snapshot().Reads(); reads > total/3 {
		t.Errorf("join read %d of %d nodes; temporal pruning ineffective", reads, total)
	}
}

// Property: self-join equals brute force for random deltas and times.
func TestDistanceJoinProperty(t *testing.T) {
	tree, entries := buildIndex(t, rtree.DefaultConfig(), 120, 30, 36)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		delta := r.Float64() * 4
		tt := r.Float64() * 30
		var c stats.Counters
		got, err := DistanceJoin(tree, tree, delta, tt, &c)
		if err != nil {
			return false
		}
		want := bruteJoin(entries, entries, delta, tt, true)
		gk := joinKeys(got)
		if len(gk) != len(want) || len(got) != len(gk) {
			return false
		}
		for k := range want {
			if !gk[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestContinuousCount(t *testing.T) {
	tree, entries := buildIndex(t, rtree.DefaultConfig(), 200, 50, 37)
	tr := straightTraj(t, 10, 40, 10, 0.8, 5, 45)
	times := []float64{5, 10, 15, 20, 25, 30, 35, 40, 45}
	var c stats.Counters
	counts, err := ContinuousCount(tree, tr, times, &c)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != len(times) {
		t.Fatalf("got %d counts", len(counts))
	}
	// Brute force: objects whose exact position lies inside the window at
	// each sample time.
	for i, tt := range times {
		want := 0
		win := tr.WindowAt(tt)
		for _, e := range entries {
			if !e.Seg.T.ContainsValue(tt) {
				continue
			}
			if win.ContainsPoint(e.Seg.At(tt)) {
				want++
			}
		}
		// Boundary-grazing episodes can differ by one or two; require
		// close agreement.
		if diff := counts[i] - want; diff < -2 || diff > 2 {
			t.Errorf("t=%g: count %d, brute force %d", tt, counts[i], want)
		}
	}
	// Validation.
	if _, err := ContinuousCount(tree, tr, []float64{10, 5}, &c); err == nil {
		t.Error("unsorted sample times should be rejected")
	}
	if _, err := ContinuousCount(tree, tr, []float64{0, 10}, &c); err == nil {
		t.Error("samples outside the span should be rejected")
	}
	if got, err := ContinuousCount(tree, tr, nil, &c); err != nil || got != nil {
		t.Errorf("empty samples = %v, %v", got, err)
	}
}

// The aggregate uses one incremental traversal: the I/O of a full count
// series must be far below one naive range aggregation per sample.
func TestContinuousCountIsIncremental(t *testing.T) {
	tree, _ := buildIndex(t, rtree.DefaultConfig(), 1000, 100, 38)
	tr := straightTraj(t, 20, 40, 8, 0.5, 10, 60)
	var times []float64
	for tt := 10.0; tt <= 60; tt += 0.5 {
		times = append(times, tt)
	}
	var cAgg stats.Counters
	if _, err := ContinuousCount(tree, tr, times, &cAgg); err != nil {
		t.Fatal(err)
	}
	var cNaive stats.Counters
	naive := NewNaive(tree, rtree.SearchOptions{}, &cNaive)
	for _, tt := range times {
		if _, err := naive.Snapshot(tr.WindowAt(tt), geom.IntervalOf(tt)); err != nil {
			t.Fatal(err)
		}
	}
	if a, n := cAgg.Snapshot().Reads(), cNaive.Snapshot().Reads(); a*2 >= n {
		t.Errorf("continuous count reads (%d) should be well below per-sample naive (%d)", a, n)
	}
}
