package core

import (
	"math/rand"
	"testing"

	"dynq/internal/geom"
	"dynq/internal/rtree"
	"dynq/internal/stats"
)

func benchTree(b *testing.B, dual bool) *rtree.Tree {
	b.Helper()
	cfg := rtree.DefaultConfig()
	cfg.DualTime = dual
	tree, _ := buildIndex(b, cfg, 1000, 100, 61)
	return tree
}

// Throughput of one whole predictive dynamic query: trajectory
// registration plus a 500-frame drain.
func BenchmarkPDQSession(b *testing.B) {
	tree := benchTree(b, false)
	b.ResetTimer()
	results := 0
	for i := 0; i < b.N; i++ {
		tr := straightTraj(b, 20, 40, 8, 0.8, 10, 60)
		var c stats.Counters
		pdq, err := NewPDQ(tree, tr, PDQOptions{}, &c)
		if err != nil {
			b.Fatal(err)
		}
		for f := 0; f < 500; f++ {
			lo := 10 + float64(f)*0.1
			rs, err := pdq.Drain(lo, lo+0.1)
			if err != nil {
				b.Fatal(err)
			}
			results += len(rs)
		}
		pdq.Close()
	}
	b.ReportMetric(float64(results)/float64(b.N), "results/session")
}

func BenchmarkNPDQFrame(b *testing.B) {
	tree := benchTree(b, true)
	var c stats.Counters
	nq := NewNPDQ(tree, NPDQOptions{}, &c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := i % 500
		x := 20 + float64(f)*0.08
		tlo := 10 + float64(f)*0.1
		win := geom.Box{{Lo: x, Hi: x + 8}, {Lo: 40, Hi: 48}}
		if _, err := nq.Next(win, geom.Interval{Lo: tlo, Hi: tlo + 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKNN10(b *testing.B) {
	tree := benchTree(b, false)
	r := rand.New(rand.NewSource(62))
	var c stats.Counters
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geom.Point{r.Float64() * 100, r.Float64() * 100}
		if _, err := KNN(tree, p, r.Float64()*100, 10, &c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistanceSelfJoin(b *testing.B) {
	tree := benchTree(b, false)
	var c stats.Counters
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DistanceJoin(tree, tree, 1.5, float64(i%100), &c); err != nil {
			b.Fatal(err)
		}
	}
}
