package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dynq/internal/geom"
	"dynq/internal/pager"
	"dynq/internal/rtree"
	"dynq/internal/stats"
)

func dualConfig() rtree.Config {
	cfg := rtree.DefaultConfig()
	cfg.DualTime = true
	return cfg
}

// frameWindows produces the snapshot sequence of an observer moving along
// +x: window i is [x0+i·step, x0+i·step+w]×[y0,y0+w] over time
// [t0+i·dt, t0+(i+1)·dt].
func frameWindows(x0, y0, w, step, t0, dt float64, n int) (wins []geom.Box, tws []geom.Interval) {
	for i := 0; i < n; i++ {
		x := x0 + float64(i)*step
		wins = append(wins, geom.Box{{Lo: x, Hi: x + w}, {Lo: y0, Hi: y0 + w}})
		lo := t0 + float64(i)*dt
		tws = append(tws, geom.Interval{Lo: lo, Hi: lo + dt})
	}
	return wins, tws
}

// bruteBox returns the box-level (candidate) answer of one snapshot: the
// default NPDQ delivery granularity.
func bruteBox(entries []rtree.LeafEntry, win geom.Box, tw geom.Interval) map[episodeKey]bool {
	q := rtree.QueryBox(win, tw)
	out := map[episodeKey]bool{}
	for _, e := range entries {
		if e.Box(len(win)).Overlaps(q) {
			out[episodeKey{id: e.ID, segStart: e.Seg.T.Lo}] = true
		}
	}
	return out
}

// bruteExact returns the exact-trajectory answer of one snapshot.
func bruteExact(entries []rtree.LeafEntry, win geom.Box, tw geom.Interval) map[episodeKey]bool {
	q := append(win.Clone(), tw)
	out := map[episodeKey]bool{}
	for _, e := range entries {
		if !e.Seg.OverlapTimeInBox(q).Empty() {
			out[episodeKey{id: e.ID, segStart: e.Seg.T.Lo}] = true
		}
	}
	return out
}

// diffFrames computes the expected NPDQ output of frame i: this frame's
// answer minus the previous frame's answer, under the given snapshot
// semantics.
func diffFrames(cur, prev map[episodeKey]bool) map[episodeKey]bool {
	out := map[episodeKey]bool{}
	for k := range cur {
		if !prev[k] {
			out[k] = true
		}
	}
	return out
}

func resultKeys(rs []Result) map[episodeKey]bool {
	out := map[episodeKey]bool{}
	for _, r := range rs {
		out[episodeKey{id: r.ID, segStart: r.Seg.T.Lo}] = true
	}
	return out
}

func assertSameKeys(t *testing.T, frame int, got, want map[episodeKey]bool) {
	t.Helper()
	for k := range want {
		if !got[k] {
			t.Fatalf("frame %d: missing %+v", frame, k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Fatalf("frame %d: unexpected %+v", frame, k)
		}
	}
}

func TestNPDQMatchesBruteForceFrameByFrame(t *testing.T) {
	tree, entries := buildIndex(t, dualConfig(), 400, 60, 11)
	wins, tws := frameWindows(10, 40, 8, 0.4, 5, 0.5, 80)

	var c stats.Counters
	nq := NewNPDQ(tree, NPDQOptions{}, &c)
	prev := map[episodeKey]bool{}
	for i := range wins {
		got, err := nq.Next(wins[i], tws[i])
		if err != nil {
			t.Fatal(err)
		}
		cur := bruteBox(entries, wins[i], tws[i])
		assertSameKeys(t, i, resultKeys(got), diffFrames(cur, prev))
		prev = cur
	}
}

func TestNPDQExactAnswersMode(t *testing.T) {
	tree, entries := buildIndex(t, dualConfig(), 400, 60, 11)
	wins, tws := frameWindows(10, 40, 8, 0.4, 5, 0.5, 80)

	var c stats.Counters
	nq := NewNPDQ(tree, NPDQOptions{ExactAnswers: true}, &c)
	prev := map[episodeKey]bool{}
	for i := range wins {
		got, err := nq.Next(wins[i], tws[i])
		if err != nil {
			t.Fatal(err)
		}
		cur := bruteExact(entries, wins[i], tws[i])
		assertSameKeys(t, i, resultKeys(got), diffFrames(cur, prev))
		prev = cur
	}
}

// Candidate delivery is a superset of exact delivery, and every exact
// result carries its true visibility episode.
func TestNPDQCandidatesCoverExactAnswers(t *testing.T) {
	tree, entries := buildIndex(t, dualConfig(), 400, 60, 12)
	wins, tws := frameWindows(10, 40, 8, 0.4, 5, 0.5, 40)
	var c stats.Counters
	nq := NewNPDQ(tree, NPDQOptions{}, &c)
	delivered := map[episodeKey]bool{}
	for i := range wins {
		got, err := nq.Next(wins[i], tws[i])
		if err != nil {
			t.Fatal(err)
		}
		for k := range resultKeys(got) {
			delivered[k] = true
		}
		// Every exactly-visible segment this frame was delivered this
		// frame or earlier (the client keeps what still matches).
		prevDelivered := bruteBox(entries, wins[i], tws[i])
		for k := range bruteExact(entries, wins[i], tws[i]) {
			if !delivered[k] {
				t.Fatalf("frame %d: exact answer %+v never delivered", i, k)
			}
			if !prevDelivered[k] {
				t.Fatalf("frame %d: exact answer %+v not even a box candidate (impossible)", i, k)
			}
		}
	}
}

// With ExactAnswers (discarding off) the traversal sees every match, so
// TrackIDs suppression is exact: an object is delivered exactly when it
// newly enters the answer.
func TestNPDQTrackIDsObjectSemantics(t *testing.T) {
	tree, entries := buildIndex(t, dualConfig(), 400, 60, 12)
	wins, tws := frameWindows(10, 40, 8, 0.4, 5, 0.5, 60)

	var c stats.Counters
	nq := NewNPDQ(tree, NPDQOptions{TrackIDs: true, ExactAnswers: true}, &c)
	prevIDs := map[rtree.ObjectID]bool{}
	for i := range wins {
		got, err := nq.Next(wins[i], tws[i])
		if err != nil {
			t.Fatal(err)
		}
		curIDs := map[rtree.ObjectID]bool{}
		for k := range bruteExact(entries, wins[i], tws[i]) {
			curIDs[k.id] = true
		}
		gotIDs := map[rtree.ObjectID]bool{}
		for _, r := range got {
			gotIDs[r.ID] = true
		}
		for id := range curIDs {
			if prevIDs[id] {
				if gotIDs[id] {
					t.Fatalf("frame %d: object %d re-delivered despite TrackIDs", i, id)
				}
			} else if !gotIDs[id] {
				t.Fatalf("frame %d: new object %d missing", i, id)
			}
		}
		for id := range gotIDs {
			if !curIDs[id] {
				t.Fatalf("frame %d: object %d does not satisfy the query", i, id)
			}
		}
		prevIDs = curIDs
	}
}

// With discarding on, TrackIDs stays complete (every new object arrives)
// and sound (only true answers), though an object hidden inside a
// discarded node for a frame may be re-delivered later.
func TestNPDQTrackIDsWithDiscarding(t *testing.T) {
	tree, entries := buildIndex(t, dualConfig(), 400, 60, 12)
	wins, tws := frameWindows(10, 40, 8, 0.4, 5, 0.5, 60)

	var c stats.Counters
	nq := NewNPDQ(tree, NPDQOptions{TrackIDs: true}, &c)
	prevIDs := map[rtree.ObjectID]bool{}
	for i := range wins {
		got, err := nq.Next(wins[i], tws[i])
		if err != nil {
			t.Fatal(err)
		}
		curIDs := map[rtree.ObjectID]bool{}
		for k := range bruteBox(entries, wins[i], tws[i]) {
			curIDs[k.id] = true
		}
		gotIDs := map[rtree.ObjectID]bool{}
		for _, r := range got {
			gotIDs[r.ID] = true
		}
		for id := range curIDs {
			if !prevIDs[id] && !gotIDs[id] {
				t.Fatalf("frame %d: new object %d missing", i, id)
			}
		}
		for id := range gotIDs {
			if !curIDs[id] {
				t.Fatalf("frame %d: object %d does not satisfy the query", i, id)
			}
		}
		prevIDs = curIDs
	}
}

func TestNPDQSavesIOAtHighOverlap(t *testing.T) {
	tree, _ := buildIndex(t, dualConfig(), 2000, 100, 13)
	// 99% overlap: step is 1% of the window per frame.
	wins, tws := frameWindows(20, 40, 8, 0.08, 10, 0.1, 50)

	var cNPDQ, cNaive stats.Counters
	nq := NewNPDQ(tree, NPDQOptions{}, &cNPDQ)
	naive := NewNaive(tree, rtree.SearchOptions{}, &cNaive)

	var firstNPDQ, firstNaive int64
	for i := range wins {
		beforeD := cNPDQ.Snapshot()
		if _, err := nq.Next(wins[i], tws[i]); err != nil {
			t.Fatal(err)
		}
		beforeN := cNaive.Snapshot()
		if _, err := naive.Snapshot(wins[i], tws[i]); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			firstNPDQ = cNPDQ.Snapshot().Sub(beforeD).Reads()
			firstNaive = cNaive.Snapshot().Sub(beforeN).Reads()
		}
	}
	// The first snapshot is a plain search: identical cost.
	if firstNPDQ != firstNaive {
		t.Errorf("first query: NPDQ %d reads, naive %d (must match)", firstNPDQ, firstNaive)
	}
	// Subsequent queries: NPDQ strictly cheaper than naive at 99% overlap
	// (the paper's Figure 10 claim).
	dSub := cNPDQ.Snapshot().Reads() - firstNPDQ
	nSub := cNaive.Snapshot().Reads() - firstNaive
	if dSub >= nSub {
		t.Errorf("NPDQ subsequent reads (%d) should be below naive (%d) at 99%% overlap", dSub, nSub)
	}
}

func TestNPDQResetForgetsHistory(t *testing.T) {
	tree, _ := buildIndex(t, dualConfig(), 500, 50, 14)
	win := geom.Box{{Lo: 20, Hi: 28}, {Lo: 40, Hi: 48}}
	var c stats.Counters
	nq := NewNPDQ(tree, NPDQOptions{}, &c)
	first, err := nq.Next(win, geom.Interval{Lo: 10, Hi: 10.5})
	if err != nil {
		t.Fatal(err)
	}
	// Identical repeat query: everything was delivered, nothing new.
	second, err := nq.Next(win, geom.Interval{Lo: 10, Hi: 10.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != 0 {
		t.Errorf("repeat query returned %d results, want 0", len(second))
	}
	// After Reset, the same query returns the full answer again.
	nq.Reset()
	third, err := nq.Next(win, geom.Interval{Lo: 10, Hi: 10.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(third) != len(first) {
		t.Errorf("post-reset query returned %d, want %d", len(third), len(first))
	}
}

func TestNPDQZeroOverlapNoWorseThanNaive(t *testing.T) {
	tree, _ := buildIndex(t, dualConfig(), 2000, 100, 15)
	// Disjoint consecutive windows (0% overlap).
	wins, tws := frameWindows(5, 40, 8, 9, 10, 0.5, 10)
	var cNPDQ, cNaive stats.Counters
	nq := NewNPDQ(tree, NPDQOptions{}, &cNPDQ)
	naive := NewNaive(tree, rtree.SearchOptions{}, &cNaive)
	for i := range wins {
		if _, err := nq.Next(wins[i], tws[i]); err != nil {
			t.Fatal(err)
		}
		if _, err := naive.Snapshot(wins[i], tws[i]); err != nil {
			t.Fatal(err)
		}
	}
	// "If there is no overlap ... the NPDQ algorithm does not cause
	// improvement; neither does it cause harm."
	d, n := cNPDQ.Snapshot().Reads(), cNaive.Snapshot().Reads()
	if d > n {
		t.Errorf("NPDQ reads (%d) exceed naive (%d) at zero overlap", d, n)
	}
}

func TestNPDQValidation(t *testing.T) {
	tree, _ := buildIndex(t, dualConfig(), 50, 20, 16)
	var c stats.Counters
	nq := NewNPDQ(tree, NPDQOptions{}, &c)
	if _, err := nq.Next(geom.Box{{Lo: 0, Hi: 1}}, geom.Interval{Lo: 0, Hi: 1}); err == nil {
		t.Error("dimension mismatch should be rejected")
	}
	if _, err := nq.Next(geom.Box{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}, geom.Interval{Lo: 1, Hi: 0}); err == nil {
		t.Error("empty time window should be rejected")
	}
}

func TestNPDQEmptyTree(t *testing.T) {
	tree, err := rtree.New(dualConfig(), pager.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	var c stats.Counters
	nq := NewNPDQ(tree, NPDQOptions{}, &c)
	got, err := nq.Next(geom.Box{{Lo: 0, Hi: 8}, {Lo: 0, Hi: 8}}, geom.Interval{Lo: 0, Hi: 1})
	if err != nil || len(got) != 0 {
		t.Errorf("empty tree Next = %v, %v", got, err)
	}
}

// Under concurrent insertion, discardability must not hide new segments:
// a node that P's traversal saw may receive a segment matching Q, and the
// timestamp guard forces Q to visit it.
func TestNPDQConcurrentInsertsNotMissed(t *testing.T) {
	tree, entries := buildIndex(t, dualConfig(), 800, 100, 17)
	wins, tws := frameWindows(20, 40, 10, 0.1, 10, 0.5, 40)

	var c stats.Counters
	nq := NewNPDQ(tree, NPDQOptions{}, &c)
	live := append([]rtree.LeafEntry(nil), entries...)
	r := rand.New(rand.NewSource(18))
	prev := map[episodeKey]bool{}
	for i := range wins {
		// Between frames, insert segments near (and far from) the query.
		if i > 0 {
			for j := 0; j < 30; j++ {
				id := rtree.ObjectID(70000 + i*100 + j)
				x := wins[i][0].Lo - 2 + r.Float64()*12
				y := wins[i][1].Lo - 2 + r.Float64()*12
				t0 := tws[i].Lo - 1
				seg := geom.Segment{
					T:     geom.Interval{Lo: t0, Hi: t0 + 3},
					Start: geom.Point{x, y},
					End:   geom.Point{x + r.Float64(), y + r.Float64()},
				}
				if err := tree.Insert(id, seg); err != nil {
					t.Fatal(err)
				}
				live = append(live, rtree.LeafEntry{ID: id, Seg: rtree.QuantizeSegment(seg)})
			}
		}
		got, err := nq.Next(wins[i], tws[i])
		if err != nil {
			t.Fatal(err)
		}
		cur := bruteBox(live, wins[i], tws[i])
		want := diffFrames(cur, prev)
		gotKeys := resultKeys(got)
		// Completeness: everything new this frame must be delivered.
		for k := range want {
			if !gotKeys[k] {
				t.Fatalf("frame %d: concurrent insert hidden: %+v", i, k)
			}
		}
		// Soundness: only true answers of this frame are delivered; an
		// already-delivered answer may repeat when its leaf was modified
		// since the previous query (suppression is disabled there).
		for k := range gotKeys {
			if !cur[k] {
				t.Fatalf("frame %d: unexpected result %+v", i, k)
			}
		}
		prev = cur
	}
}

// Property: NPDQ (all dedup/exactness modes) equals brute force on random
// window walks over random data.
func TestNPDQBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree, entries := buildIndex(t, dualConfig(), 150, 40, seed)
		var c stats.Counters
		opts := NPDQOptions{TrackIDs: r.Intn(2) == 0, ExactAnswers: r.Intn(2) == 0}
		nq := NewNPDQ(tree, opts, &c)
		snapshot := bruteBox
		if opts.ExactAnswers {
			snapshot = bruteExact
		}
		x, y := r.Float64()*80, r.Float64()*80
		tNow := r.Float64() * 10
		prev := map[episodeKey]bool{}
		prevIDs := map[rtree.ObjectID]bool{}
		for i := 0; i < 12; i++ {
			x += r.Float64()*4 - 2
			y += r.Float64()*4 - 2
			dt := 0.2 + r.Float64()
			win := geom.Box{{Lo: x, Hi: x + 8}, {Lo: y, Hi: y + 8}}
			tw := geom.Interval{Lo: tNow, Hi: tNow + dt}
			got, err := nq.Next(win, tw)
			if err != nil {
				return false
			}
			cur := snapshot(entries, win, tw)
			if opts.TrackIDs {
				curIDs := map[rtree.ObjectID]bool{}
				for k := range cur {
					curIDs[k.id] = true
				}
				gotIDs := map[rtree.ObjectID]bool{}
				for _, res := range got {
					gotIDs[res.ID] = true
				}
				for id := range curIDs {
					// Completeness: new objects always arrive. Exact
					// non-redelivery additionally holds when discarding
					// is off (ExactAnswers).
					if (i == 0 || !prevIDs[id]) && !gotIDs[id] {
						return false
					}
					if opts.ExactAnswers && i > 0 && prevIDs[id] && gotIDs[id] {
						return false
					}
				}
				for id := range gotIDs {
					if !curIDs[id] {
						return false
					}
				}
				prevIDs = curIDs
			} else {
				want := diffFrames(cur, prev)
				gotKeys := resultKeys(got)
				if len(gotKeys) != len(want) {
					return false
				}
				for k := range want {
					if !gotKeys[k] {
						return false
					}
				}
			}
			prev = cur
			tNow += dt
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// The dual-temporal-axes layout is what gives NPDQ its pruning power
// (Figure 5). Discardability prunes a node only when its newest segment
// start predates the previous query AND it avoids the query's leading
// edge, so its effect is largest for long-lived objects (the static
// landmarks/sensors of the paper's motivating scenario); this test uses
// such a population to observe the layout contrast cleanly. Comparing raw
// read counts across layouts would conflate pruning with the fanout
// difference (113 vs 145), so compare each layout's savings against its
// own naive baseline.
func TestNPDQDualAxesPruneMoreThanSingle(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	var entries []rtree.LeafEntry
	for i := 0; i < 20000; i++ {
		x, y := r.Float64()*100, r.Float64()*100
		entries = append(entries, rtree.LeafEntry{
			ID: rtree.ObjectID(i),
			Seg: geom.Segment{
				T:     geom.Interval{Lo: r.Float64() * 2, Hi: 90 + r.Float64()*10},
				Start: geom.Point{x, y},
				End:   geom.Point{x + r.Float64(), y + r.Float64()},
			},
		})
	}
	wins, tws := frameWindows(20, 40, 8, 0.8, 10, 0.1, 30) // 90% overlap
	var ratio [2]float64
	for li, cfg := range []rtree.Config{dualConfig(), rtree.DefaultConfig()} {
		tree, err := rtree.BulkLoad(cfg, pager.NewMemStore(), entries)
		if err != nil {
			t.Fatal(err)
		}
		var cN, cB stats.Counters
		nq := NewNPDQ(tree, NPDQOptions{}, &cN)
		naive := NewNaive(tree, rtree.SearchOptions{}, &cB)
		for i := range wins {
			if _, err := nq.Next(wins[i], tws[i]); err != nil {
				t.Fatal(err)
			}
			if _, err := naive.Snapshot(wins[i], tws[i]); err != nil {
				t.Fatal(err)
			}
		}
		ratio[li] = float64(cN.Snapshot().Reads()) / float64(cB.Snapshot().Reads())
	}
	if ratio[0] >= ratio[1] {
		t.Errorf("dual-axes NPDQ/naive read ratio (%.3f) should be below single-axis ratio (%.3f)",
			ratio[0], ratio[1])
	}
	// On long-lived objects the dual layout should discard a large
	// fraction of the covered trailing region.
	if ratio[0] > 0.8 {
		t.Errorf("dual-axes ratio %.3f; expected substantial pruning on long-lived objects", ratio[0])
	}
	// Single-axis discardability is essentially inert (the Figure 5
	// observation): its ratio stays near 1.
	if ratio[1] < 0.9 {
		t.Errorf("single-axis ratio %.3f unexpectedly low; discardability should be inert", ratio[1])
	}
}
