package core

import (
	"fmt"
	"math"

	"dynq/internal/geom"
	"dynq/internal/pager"
	"dynq/internal/rtree"
	"dynq/internal/stats"
)

// JoinPair is one distance-join answer: two objects within the join
// distance of each other at the query time.
type JoinPair struct {
	A, B rtree.ObjectID
	SegA geom.Segment
	SegB geom.Segment
	Dist float64
}

// DistanceJoin finds every pair (a ∈ treeA, b ∈ treeB) of objects whose
// positions at time t lie within delta of each other — the paper's second
// direction of future work (Section 6 (ii), after the incremental
// distance joins of [6]). The trees may be the same tree (a self-join;
// pairs are then reported once with A < B and self-pairs suppressed).
//
// The algorithm descends both trees simultaneously, pruning node pairs
// whose boxes are farther than delta apart at the spatial level or have
// no segment alive at t, charging reads and distance computations like
// the other engines.
func DistanceJoin(treeA, treeB *rtree.Tree, delta, t float64, c *stats.Counters) ([]JoinPair, error) {
	if treeA.Config().Dims != treeB.Config().Dims {
		return nil, fmt.Errorf("core: join over trees of different dimensionality")
	}
	if delta < 0 {
		return nil, fmt.Errorf("core: join distance must be non-negative, got %g", delta)
	}
	rootA, levelA, okA := treeA.Root()
	rootB, levelB, okB := treeB.Root()
	if !okA || !okB {
		return nil, nil
	}
	j := &joiner{
		treeA: treeA, treeB: treeB,
		self:  treeA == treeB,
		delta: delta, t: t, c: c,
		d:      treeA.Config().Dims,
		loaded: make(map[pager.PageID]*rtree.Node),
	}
	var out []JoinPair
	if err := j.visit(rootA, levelA, rootB, levelB, &out); err != nil {
		return nil, err
	}
	c.AddResults(len(out))
	return out, nil
}

type joiner struct {
	treeA, treeB *rtree.Tree
	self         bool
	delta, t     float64
	c            *stats.Counters
	d            int
	// loaded caches decoded nodes for the duration of one join so a node
	// paired with many partners is read once (the disk-access accounting
	// of a join, as in [6]).
	loaded map[pager.PageID]*rtree.Node
}

func (j *joiner) load(tree *rtree.Tree, id pager.PageID) (*rtree.Node, error) {
	// For a self-join the two trees share pages; otherwise ids cannot
	// collide across trees only if stores differ, so key the cache by
	// tree when distinct.
	key := id
	if !j.self && tree == j.treeB {
		key = id | 1<<31
	}
	if n, ok := j.loaded[key]; ok {
		return n, nil
	}
	n, err := tree.Load(id, j.c)
	if err != nil {
		return nil, err
	}
	j.loaded[key] = n
	return n, nil
}

// aliveBox reports whether the dual-space box can contain a segment alive
// at time t, and the minimum spatial distance between two boxes.
func (j *joiner) alive(b geom.Box) bool {
	return b[j.d].Lo <= j.t && b[j.d+1].Hi >= j.t
}

func boxMinDist(a, b geom.Box, d int) float64 {
	s := 0.0
	for i := 0; i < d; i++ {
		switch {
		case a[i].Hi < b[i].Lo:
			dd := b[i].Lo - a[i].Hi
			s += dd * dd
		case b[i].Hi < a[i].Lo:
			dd := a[i].Lo - b[i].Hi
			s += dd * dd
		}
	}
	return math.Sqrt(s)
}

func (j *joiner) visit(idA pager.PageID, levelA int, idB pager.PageID, levelB int, out *[]JoinPair) error {
	// Descend the deeper side first so both reach the leaf level together.
	switch {
	case levelA > 0 && levelA >= levelB:
		nA, err := j.load(j.treeA, idA)
		if err != nil {
			return err
		}
		var bBox geom.Box
		if nb, err := j.peekBox(j.treeB, idB); err != nil {
			return err
		} else {
			bBox = nb
		}
		for _, ch := range nA.Children {
			j.c.AddDistanceComps(1)
			if !j.alive(ch.Box) {
				continue
			}
			if bBox != nil && boxMinDist(ch.Box, bBox, j.d) > j.delta {
				continue
			}
			if err := j.visit(ch.ID, levelA-1, idB, levelB, out); err != nil {
				return err
			}
		}
		return nil
	case levelB > 0:
		nB, err := j.load(j.treeB, idB)
		if err != nil {
			return err
		}
		aBox, err := j.peekBox(j.treeA, idA)
		if err != nil {
			return err
		}
		for _, ch := range nB.Children {
			j.c.AddDistanceComps(1)
			if !j.alive(ch.Box) {
				continue
			}
			if aBox != nil && boxMinDist(aBox, ch.Box, j.d) > j.delta {
				continue
			}
			if err := j.visit(idA, levelA, ch.ID, levelB-1, out); err != nil {
				return err
			}
		}
		return nil
	}
	// Both leaves: pair the alive segments.
	if j.self && idA == idB {
		return j.selfLeaf(idA, out)
	}
	if j.self && idA > idB {
		// Symmetric pair already (or to be) visited as (idB, idA).
		return nil
	}
	nA, err := j.load(j.treeA, idA)
	if err != nil {
		return err
	}
	nB, err := j.load(j.treeB, idB)
	if err != nil {
		return err
	}
	for _, ea := range nA.Entries {
		if !ea.Seg.T.ContainsValue(j.t) {
			continue
		}
		pa := ea.Seg.At(j.t)
		for _, eb := range nB.Entries {
			j.c.AddDistanceComps(1)
			if !eb.Seg.T.ContainsValue(j.t) {
				continue
			}
			if j.self && ea.ID == eb.ID {
				continue
			}
			dist := pa.Dist(eb.Seg.At(j.t))
			if dist <= j.delta {
				pair := JoinPair{A: ea.ID, B: eb.ID, SegA: ea.Seg, SegB: eb.Seg, Dist: dist}
				if j.self && pair.A > pair.B {
					// Normalize self-join pairs: the (leafB, leafA) visit
					// is suppressed, so this visit reports both orders.
					pair = JoinPair{A: eb.ID, B: ea.ID, SegA: eb.Seg, SegB: ea.Seg, Dist: dist}
				}
				*out = append(*out, pair)
			}
		}
	}
	return nil
}

// selfLeaf pairs the entries of a single leaf with each other.
func (j *joiner) selfLeaf(id pager.PageID, out *[]JoinPair) error {
	n, err := j.load(j.treeA, id)
	if err != nil {
		return err
	}
	for i, ea := range n.Entries {
		if !ea.Seg.T.ContainsValue(j.t) {
			continue
		}
		pa := ea.Seg.At(j.t)
		for _, eb := range n.Entries[i+1:] {
			j.c.AddDistanceComps(1)
			if !eb.Seg.T.ContainsValue(j.t) || ea.ID == eb.ID {
				continue
			}
			dist := pa.Dist(eb.Seg.At(j.t))
			if dist <= j.delta {
				a, b := ea, eb
				if a.ID > b.ID {
					a, b = b, a
				}
				*out = append(*out, JoinPair{A: a.ID, B: b.ID, SegA: a.Seg, SegB: b.Seg, Dist: dist})
			}
		}
	}
	return nil
}

// peekBox returns the MBR of a node (loading it through the join cache).
func (j *joiner) peekBox(tree *rtree.Tree, id pager.PageID) (geom.Box, error) {
	n, err := j.load(tree, id)
	if err != nil {
		return nil, err
	}
	return n.MBR(j.d), nil
}
