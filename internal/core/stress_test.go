package core

import (
	"math/rand"
	"sync"
	"testing"

	"dynq/internal/geom"
	"dynq/internal/rtree"
	"dynq/internal/stats"
	"dynq/internal/trajectory"
)

// Concurrent inserters, a live PDQ session, an NPDQ session and naive
// snapshot queries all share one tree. The test asserts nothing beyond
// absence of errors and a structurally valid tree — its value is under
// `go test -race`, where it exercises the tree lock, the PDQ update
// inbox, and the stats counters.
func TestConcurrentSessionsAndInserts(t *testing.T) {
	tree, _ := buildIndex(t, rtree.DefaultConfig(), 300, 100, 51)
	var wg sync.WaitGroup
	errs := make(chan error, 16)

	// Two inserters pushing motion updates.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 800; i++ {
				t0 := r.Float64() * 95
				x, y := r.Float64()*100, r.Float64()*100
				seg := geom.Segment{
					T:     geom.Interval{Lo: t0, Hi: t0 + 1 + r.Float64()},
					Start: geom.Point{x, y},
					End:   geom.Point{x + r.Float64()*2, y + r.Float64()*2},
				}
				if err := tree.Insert(rtree.ObjectID(200000+w*1000+i), seg); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}

	// A live PDQ session advancing through its trajectory.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tr, err := trajectory.New([]trajectory.Key{
			{T: 10, Window: geom.Box{{Lo: 20, Hi: 35}, {Lo: 20, Hi: 35}}},
			{T: 80, Window: geom.Box{{Lo: 60, Hi: 75}, {Lo: 20, Hi: 35}}},
		})
		if err != nil {
			errs <- err
			return
		}
		var c stats.Counters
		pdq, err := NewPDQ(tree, tr, PDQOptions{LiveUpdates: true}, &c)
		if err != nil {
			errs <- err
			return
		}
		defer pdq.Close()
		for f := 0; f < 70; f++ {
			lo := 10 + float64(f)
			if _, err := pdq.Drain(lo, lo+1); err != nil {
				errs <- err
				return
			}
		}
	}()

	// An NPDQ session walking its own window.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var c stats.Counters
		nq := NewNPDQ(tree, NPDQOptions{}, &c)
		for f := 0; f < 60; f++ {
			x := 30 + float64(f)*0.3
			tlo := 10 + float64(f)
			win := geom.Box{{Lo: x, Hi: x + 10}, {Lo: 40, Hi: 50}}
			if _, err := nq.Next(win, geom.Interval{Lo: tlo, Hi: tlo + 1}); err != nil {
				errs <- err
				return
			}
		}
	}()

	// Naive snapshots and kNN probes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var c stats.Counters
		naive := NewNaive(tree, rtree.SearchOptions{}, &c)
		r := rand.New(rand.NewSource(999))
		for f := 0; f < 60; f++ {
			lo := r.Float64() * 80
			win := geom.Box{{Lo: lo, Hi: lo + 10}, {Lo: lo, Hi: lo + 10}}
			tlo := r.Float64() * 95
			if _, err := naive.Snapshot(win, geom.Interval{Lo: tlo, Hi: tlo + 1}); err != nil {
				errs <- err
				return
			}
			if _, err := KNN(tree, geom.Point{lo, lo}, tlo, 5, &c); err != nil {
				errs <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("tree invalid after concurrent load: %v", err)
	}
}
