package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dynq/internal/geom"
	"dynq/internal/pager"
	"dynq/internal/rtree"
	"dynq/internal/stats"
)

func bruteKNN(entries []rtree.LeafEntry, p geom.Point, t float64, k int) []Neighbor {
	var all []Neighbor
	for _, e := range entries {
		if !e.Seg.T.ContainsValue(t) {
			continue
		}
		all = append(all, Neighbor{ID: e.ID, Seg: e.Seg, Dist: math.Sqrt(e.Seg.DistSqAt(t, p))})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestKNNMatchesBruteForce(t *testing.T) {
	tree, entries := buildIndex(t, rtree.DefaultConfig(), 500, 50, 21)
	var c stats.Counters
	for _, k := range []int{1, 5, 20} {
		got, err := KNN(tree, geom.Point{50, 50}, 25, k, &c)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteKNN(entries, geom.Point{50, 50}, 25, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d neighbors, want %d", k, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Errorf("k=%d neighbor %d: dist %g, want %g", k, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

func TestKNNChargesLessThanFullScan(t *testing.T) {
	tree, _ := buildIndex(t, rtree.DefaultConfig(), 2000, 100, 22)
	st, err := tree.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var c stats.Counters
	if _, err := KNN(tree, geom.Point{30, 70}, 50, 10, &c); err != nil {
		t.Fatal(err)
	}
	if reads := c.Snapshot().Reads(); reads >= int64(st.LeafNodes+st.InternalNodes)/2 {
		t.Errorf("kNN read %d nodes of %d; best-first should prune most of the tree",
			reads, st.LeafNodes+st.InternalNodes)
	}
}

func TestKNNValidation(t *testing.T) {
	tree, _ := buildIndex(t, rtree.DefaultConfig(), 50, 20, 23)
	var c stats.Counters
	if _, err := KNN(tree, geom.Point{1}, 5, 3, &c); err == nil {
		t.Error("dimension mismatch should be rejected")
	}
	if _, err := KNN(tree, geom.Point{1, 1}, 5, 0, &c); err == nil {
		t.Error("k=0 should be rejected")
	}
	empty, err := rtree.New(rtree.DefaultConfig(), pager.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	got, err := KNN(empty, geom.Point{1, 1}, 5, 3, &c)
	if err != nil || got != nil {
		t.Errorf("empty tree kNN = %v, %v", got, err)
	}
}

func TestKNNFewerThanK(t *testing.T) {
	// Only 3 objects alive at the query time.
	tree, err := rtree.New(rtree.DefaultConfig(), pager.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		seg := geom.Segment{
			T:     geom.Interval{Lo: 0, Hi: 10},
			Start: geom.Point{float64(i * 10), 0},
			End:   geom.Point{float64(i * 10), 10},
		}
		if err := tree.Insert(rtree.ObjectID(i), seg); err != nil {
			t.Fatal(err)
		}
	}
	// And some dead ones.
	for i := 10; i < 15; i++ {
		seg := geom.Segment{
			T:     geom.Interval{Lo: 50, Hi: 60},
			Start: geom.Point{1, 1},
			End:   geom.Point{2, 2},
		}
		if err := tree.Insert(rtree.ObjectID(i), seg); err != nil {
			t.Fatal(err)
		}
	}
	var c stats.Counters
	got, err := KNN(tree, geom.Point{0, 5}, 5, 10, &c)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d neighbors, want 3 (only 3 alive)", len(got))
	}
	if got[0].ID != 0 || got[1].ID != 1 || got[2].ID != 2 {
		t.Errorf("neighbor order = %v", got)
	}
}

func TestMovingKNN(t *testing.T) {
	tree, entries := buildIndex(t, rtree.DefaultConfig(), 300, 50, 24)
	var c stats.Counters
	times := []float64{10, 11, 12, 13}
	pos := func(t float64) geom.Point { return geom.Point{t * 2, 50} }
	got, err := MovingKNN(tree, pos, times, 5, 1.5, &c)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(times) {
		t.Fatalf("got %d frames", len(got))
	}
	for i, tt := range times {
		want := bruteKNN(entries, pos(tt), tt, 5)
		if len(got[i]) != len(want) {
			t.Fatalf("frame %d: %d neighbors, want %d", i, len(got[i]), len(want))
		}
		for j := range want {
			if math.Abs(got[i][j].Dist-want[j].Dist) > 1e-9 {
				t.Errorf("frame %d neighbor %d: dist %g, want %g", i, j, got[i][j].Dist, want[j].Dist)
			}
		}
	}
}

// Property: kNN equals brute force for random points, times and k.
func TestKNNProperty(t *testing.T) {
	tree, entries := buildIndex(t, rtree.DefaultConfig(), 200, 40, 25)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := geom.Point{r.Float64() * 100, r.Float64() * 100}
		tt := r.Float64() * 40
		k := 1 + r.Intn(15)
		var c stats.Counters
		got, err := KNN(tree, p, tt, k, &c)
		if err != nil {
			return false
		}
		want := bruteKNN(entries, p, tt, k)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNaiveSnapshot(t *testing.T) {
	tree, entries := buildIndex(t, rtree.DefaultConfig(), 300, 50, 26)
	var c stats.Counters
	naive := NewNaive(tree, rtree.SearchOptions{}, &c)
	win := geom.Box{{Lo: 20, Hi: 35}, {Lo: 20, Hi: 35}}
	tw := geom.Interval{Lo: 10, Hi: 12}
	got, err := naive.Snapshot(win, tw)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteExact(entries, win, tw)
	gotKeys := resultKeys(got)
	if len(gotKeys) != len(want) {
		t.Fatalf("naive found %d, want %d", len(gotKeys), len(want))
	}
	for k := range want {
		if !gotKeys[k] {
			t.Errorf("missing %+v", k)
		}
	}
	// Each result carries its exact visibility interval.
	for _, r := range got {
		if r.Appear > r.Disappear {
			t.Errorf("inverted episode %+v", r)
		}
		if r.Appear < tw.Lo-1e-9 || r.Disappear > tw.Hi+1e-9 {
			t.Errorf("episode escapes the query window: %+v", r)
		}
	}
	if _, err := naive.Snapshot(win, geom.Interval{Lo: 1, Hi: 0}); err == nil {
		t.Error("empty time window should be rejected")
	}
	// Identical repeat queries cost identical I/O: the baseline has no
	// cross-query state.
	before := c.Snapshot()
	if _, err := naive.Snapshot(win, tw); err != nil {
		t.Fatal(err)
	}
	mid := c.Snapshot()
	if _, err := naive.Snapshot(win, tw); err != nil {
		t.Fatal(err)
	}
	after := c.Snapshot()
	if mid.Sub(before).Reads() != after.Sub(mid).Reads() {
		t.Error("naive repeat queries should cost the same")
	}
}

func TestKNNBounded(t *testing.T) {
	tree, entries := buildIndex(t, rtree.DefaultConfig(), 300, 40, 27)
	var c stats.Counters
	p := geom.Point{50, 50}
	full, err := KNN(tree, p, 20, 10, &c)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 10 {
		t.Fatalf("full knn returned %d", len(full))
	}
	// A bound at the true k-th distance returns the same set.
	bounded, err := KNNBounded(tree, p, 20, 10, full[9].Dist, &c)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounded) != 10 {
		t.Fatalf("bounded knn returned %d", len(bounded))
	}
	for i := range full {
		if math.Abs(full[i].Dist-bounded[i].Dist) > 1e-9 {
			t.Errorf("neighbor %d: %g vs %g", i, full[i].Dist, bounded[i].Dist)
		}
	}
	// A bound below the k-th distance returns fewer (never wrong ones).
	tight, err := KNNBounded(tree, p, 20, 10, full[4].Dist, &c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tight) > 5 {
		t.Errorf("tight bound returned %d neighbors", len(tight))
	}
	for i := range tight {
		if math.Abs(tight[i].Dist-full[i].Dist) > 1e-9 {
			t.Errorf("tight neighbor %d mismatches full result", i)
		}
	}
	// Validation mirrors KNN.
	if _, err := KNNBounded(tree, geom.Point{1}, 20, 3, 5, &c); err == nil {
		t.Error("dimension mismatch should be rejected")
	}
	if _, err := KNNBounded(tree, p, 20, 0, 5, &c); err == nil {
		t.Error("k=0 should be rejected")
	}
	_ = entries
}

// The validity-based moving-kNN must read fewer nodes than re-running
// full kNN per sample on a densely sampled path, while returning exactly
// the per-sample brute-force answers. The workload's object speed is
// bounded near 1 (speed N(1, 0.2)); 2.0 is a safe cap.
func TestMovingKNNIncrementalSavesIO(t *testing.T) {
	tree, entries := buildIndex(t, rtree.DefaultConfig(), 2000, 100, 28)
	// High-rate sampling (50 frames per time unit, the regime where the
	// validity window spans several frames).
	var times []float64
	for tt := 10.0; tt < 16; tt += 0.02 {
		times = append(times, tt)
	}
	pos := func(t float64) geom.Point { return geom.Point{10 + t*0.5, 50} }

	var cInc stats.Counters
	inc, err := MovingKNN(tree, pos, times, 10, 1.5, &cInc)
	if err != nil {
		t.Fatal(err)
	}
	var cFull stats.Counters
	for _, tt := range times {
		if _, err := KNN(tree, pos(tt), tt, 10, &cFull); err != nil {
			t.Fatal(err)
		}
	}
	if a, b := cInc.Snapshot().Reads(), cFull.Snapshot().Reads(); a >= b {
		t.Errorf("incremental moving-kNN reads (%d) should be below per-sample kNN (%d)", a, b)
	}
	// Every sample must equal the brute-force answer (reuse included).
	for i, tt := range times {
		want := bruteKNN(entries, pos(tt), tt, 10)
		if len(inc[i]) != len(want) {
			t.Fatalf("sample %d: %d vs %d neighbors", i, len(inc[i]), len(want))
		}
		for j := range want {
			if math.Abs(inc[i][j].Dist-want[j].Dist) > 1e-9 {
				t.Errorf("sample %d neighbor %d: %g vs %g", i, j, inc[i][j].Dist, want[j].Dist)
			}
		}
	}
}
