package core

import (
	"fmt"

	"dynq/internal/geom"
	"dynq/internal/rtree"
	"dynq/internal/stats"
)

// Naive is the baseline strategy of Section 5: every snapshot query of
// the dynamic query is evaluated independently by a fresh index range
// search. Its per-snapshot cost is flat regardless of how much
// consecutive snapshots overlap, which is what Figures 6–13 contrast the
// dynamic query algorithms against.
type Naive struct {
	tree *rtree.Tree
	c    *stats.Counters
	opts rtree.SearchOptions
}

// NewNaive creates the baseline evaluator, charging costs to c.
func NewNaive(tree *rtree.Tree, opts rtree.SearchOptions, c *stats.Counters) *Naive {
	return &Naive{tree: tree, c: c, opts: opts}
}

// Snapshot evaluates one snapshot query from scratch.
func (n *Naive) Snapshot(window geom.Box, tw geom.Interval) ([]Result, error) {
	if tw.Empty() {
		return nil, fmt.Errorf("core: query time window is empty")
	}
	ms, err := n.tree.RangeSearch(window, tw, n.opts, n.c)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(ms))
	for i, m := range ms {
		out[i] = resultFromMatch(m)
	}
	return out, nil
}
