package core

import (
	"fmt"

	"dynq/internal/geom"
	"dynq/internal/pager"
	"dynq/internal/rtree"
	"dynq/internal/stats"
)

// NPDQOptions tune a non-predictive dynamic query session.
type NPDQOptions struct {
	// TrackIDs keeps the object-id set of the previous snapshot's
	// traversal and suppresses re-delivery at the object level, instead
	// of the default segment-level geometric suppression. Because a
	// discarded node's objects are not in the recorded set, an object can
	// occasionally be re-delivered after its node was skipped for a frame
	// (a harmless client-cache upsert); combined with ExactAnswers (which
	// disables discarding) suppression is exact. The id set costs
	// O(answer) server memory per session; the benchmark suite compares
	// both modes.
	TrackIDs bool
	// ExactAnswers filters answers with the exact leaf-level trajectory
	// test instead of delivering bounding-box candidates. Discardability
	// pruning is then disabled: Lemma 1 guarantees only that a skipped
	// node's Q-relevant segments *box*-matched the previous query, and a
	// segment can box-match P while its exact trajectory misses P's
	// window — discarding would hide it from Q even though the client
	// never received it. Exact mode therefore trades the paper's I/O
	// savings for exact delivery (see DESIGN.md).
	ExactAnswers bool
}

// NPDQ evaluates a non-predictive dynamic query (Section 4.2): a stream
// of snapshot queries whose future motion is unknown. Each Next call
// returns the objects that satisfy the new snapshot and were not
// retrieved by the immediately preceding one, pruning every index node R
// whose overlap with the new query Q is covered by the previous query P
// — Lemma 1's discardability test, discardable(P,Q,R) ⇔ (Q∩R) ⊂ P —
// evaluated on the dual temporal axes of Figure 5(b).
//
// In the default (paper) mode, membership is decided at bounding-box
// granularity: results are candidates whose exact visibility interval is
// reported when non-empty, and the client performs the final exact check
// when rendering (it holds the full segment geometry either way). This is
// the granularity at which the discardability lemma is sound.
//
// Node modification stamps guard discardability under concurrent inserts:
// a node changed since P ran cannot be discarded on P's authority.
//
// NPDQ is not safe for concurrent Next calls.
type NPDQ struct {
	tree *rtree.Tree
	c    *stats.Counters
	opts NPDQOptions

	hasPrev   bool
	prevQ     geom.Box // previous query in dual key space
	prevExact geom.Box // previous query spatial extents + time (exact test)
	prevSeq   uint64   // tree.ModSeq() observed before the previous query ran
	prevIDs   map[rtree.ObjectID]struct{}
	curIDs    map[rtree.ObjectID]struct{}
}

// NewNPDQ starts a non-predictive session over the tree, charging costs
// to c. The tree should use the dual-temporal-axes layout
// (rtree.Config.DualTime); with the single-axis layout the session is
// still correct but discardability almost never fires, which is exactly
// the problem Figure 5 illustrates (the ablation benchmark measures it).
func NewNPDQ(tree *rtree.Tree, opts NPDQOptions, c *stats.Counters) *NPDQ {
	n := &NPDQ{tree: tree, c: c, opts: opts}
	if opts.TrackIDs {
		n.prevIDs = make(map[rtree.ObjectID]struct{})
		n.curIDs = make(map[rtree.ObjectID]struct{})
	}
	return n
}

// Next evaluates the snapshot query (spatial window during time interval
// tw) and returns only the answers not retrieved by the previous Next
// call. The first call behaves as a plain snapshot query.
func (nq *NPDQ) Next(window geom.Box, tw geom.Interval) ([]Result, error) {
	if len(window) != nq.tree.Config().Dims {
		return nil, fmt.Errorf("core: query has %d dims, index has %d", len(window), nq.tree.Config().Dims)
	}
	if tw.Empty() {
		return nil, fmt.Errorf("core: query time window is empty")
	}
	q := rtree.QueryBox(window, tw)
	qExact := append(window.Clone(), tw)
	// Observe the modification sequence before traversal: any node
	// modified at or after this point will carry a larger stamp, and a
	// future query must not discard it on this query's authority.
	seqBefore := nq.tree.ModSeq()

	var out []Result
	if nq.opts.TrackIDs {
		clear(nq.curIDs)
	}
	root, _, ok := nq.tree.Root()
	if ok {
		if err := nq.visit(root, q, qExact, &out); err != nil {
			return nil, err
		}
	}
	nq.c.AddResults(len(out))

	nq.hasPrev = true
	nq.prevQ = q
	nq.prevExact = qExact
	nq.prevSeq = seqBefore
	if nq.opts.TrackIDs {
		nq.prevIDs, nq.curIDs = nq.curIDs, nq.prevIDs
	}
	return out, nil
}

// Reset forgets the previous query: the next call behaves like a first
// snapshot. Use it when the observer teleports (the paper's "snapshot
// mode").
func (nq *NPDQ) Reset() {
	nq.hasPrev = false
	if nq.opts.TrackIDs {
		clear(nq.prevIDs)
	}
}

func (nq *NPDQ) visit(id pager.PageID, q, qExact geom.Box, out *[]Result) error {
	n, err := nq.tree.Load(id, nq.c)
	if err != nil {
		return err
	}
	if n.Leaf() {
		nq.collectLeaf(n, q, qExact, out)
		return nil
	}
	// Timestamp guard (Section 4.2's update management). Every insertion
	// stamps all nodes along its path, so an ancestor's stamp dominates
	// its descendants': n.Stamp ≤ prevSeq proves nothing under n changed
	// since the previous query ran, making Lemma 1 applicable to n's
	// children. A dirty node's children must all be visited — each loaded
	// child then re-reads its own stamp, so pruning resumes in clean
	// subtrees below.
	canDiscard := nq.hasPrev && !nq.opts.ExactAnswers && n.Stamp <= nq.prevSeq
	for _, ch := range n.Children {
		nq.c.AddDistanceComps(1)
		if !ch.Box.Overlaps(q) {
			continue
		}
		if canDiscard && nq.discardable(ch.Box, q) {
			nq.c.AddPruned(1)
			continue
		}
		if err := nq.visit(ch.ID, q, qExact, out); err != nil {
			return err
		}
	}
	return nil
}

// discardable implements Lemma 1: R may be skipped iff every point of
// Q∩R lies inside P — everything of R relevant to Q was already
// retrieved by the previous query. The caller has established that R's
// subtree is unchanged since P ran.
func (nq *NPDQ) discardable(box, q geom.Box) bool {
	return nq.prevQ.Contains(q.Intersect(box))
}

func (nq *NPDQ) collectLeaf(n *rtree.Node, q, qExact geom.Box, out *[]Result) {
	d := nq.tree.Config().Dims
	// Geometric suppression ("this segment also satisfied P, so the
	// client already has it") is only valid for segments that were
	// present when P ran. A per-entry insertion time is not stored, but
	// the leaf's stamp bounds it: in a leaf modified since P, any entry
	// might be new, so everything matching Q is delivered (over-delivery
	// is safe — the client cache upserts by object id). TrackIDs mode is
	// immune: it suppresses against P's actually-computed answer.
	leafClean := nq.hasPrev && n.Stamp <= nq.prevSeq
	for _, e := range n.Entries {
		nq.c.AddDistanceComps(1)
		var ov geom.Interval
		if nq.opts.ExactAnswers {
			ov = e.Seg.OverlapTimeInBox(qExact)
			if ov.Empty() {
				continue
			}
		} else {
			if !e.Box(d).Overlaps(q) {
				continue
			}
			// Candidate semantics: report the exact episode when the
			// trajectory really crosses the window, otherwise the
			// conservative validity∩query window for the client to
			// re-check.
			ov = e.Seg.OverlapTimeInBox(qExact)
			if ov.Empty() {
				ov = e.Seg.T.Intersect(qExact[d])
			}
		}
		if nq.opts.TrackIDs {
			nq.curIDs[e.ID] = struct{}{}
			if _, seen := nq.prevIDs[e.ID]; seen {
				continue
			}
		} else if leafClean && nq.satisfiedPrev(e) {
			// Segment-level suppression: this segment was part of the
			// previous answer, so the client already has the object.
			continue
		}
		*out = append(*out, Result{ID: e.ID, Seg: e.Seg, Appear: ov.Lo, Disappear: ov.Hi})
	}
}

// satisfiedPrev reports whether the previous query delivered this
// segment, at the same granularity used for delivery.
func (nq *NPDQ) satisfiedPrev(e rtree.LeafEntry) bool {
	if nq.opts.ExactAnswers {
		return !e.Seg.OverlapTimeInBox(nq.prevExact).Empty()
	}
	return e.Box(nq.tree.Config().Dims).Overlaps(nq.prevQ)
}
