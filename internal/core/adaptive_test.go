package core

import (
	"testing"

	"dynq/internal/geom"
	"dynq/internal/rtree"
	"dynq/internal/stats"
)

func adaptiveOpts() AdaptiveOptions {
	return AdaptiveOptions{Slack: 1.0, Horizon: 10, StableFrames: 3}
}

// observerPath produces the frames of an observer that flies straight,
// turns abruptly, then flies straight again — the scenario the adaptive
// hand-off exists for.
func observerPath(frames int) (wins []geom.Box, tws []geom.Interval) {
	x, y := 10.0, 40.0
	for f := 0; f < frames; f++ {
		t0 := 5 + float64(f)*0.5
		switch {
		case f < 30: // steady east
			x += 0.4
		case f == 30: // abrupt turn
			y += 6
		default: // steady north
			y += 0.4
		}
		wins = append(wins, geom.Box{{Lo: x, Hi: x + 8}, {Lo: y, Hi: y + 8}})
		tws = append(tws, geom.Interval{Lo: t0, Hi: t0 + 0.5})
	}
	return wins, tws
}

func TestAdaptiveHandsOffBothWays(t *testing.T) {
	tree, _ := buildIndex(t, rtree.DefaultConfig(), 400, 60, 71)
	var c stats.Counters
	a, err := NewAdaptive(tree, adaptiveOpts(), &c)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	wins, tws := observerPath(60)
	var modes []Mode
	for i := range wins {
		if _, err := a.Frame(wins[i], tws[i]); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		modes = append(modes, a.Mode())
	}
	// Starts non-predictive, becomes predictive during the steady phase.
	if modes[0] != ModeNonPredictive {
		t.Error("session should start non-predictive")
	}
	if modes[20] != ModePredictive {
		t.Errorf("steady motion should reach predictive mode by frame 20 (mode=%v)", modes[20])
	}
	// The turn forces a fall-back...
	if modes[31] != ModeNonPredictive {
		t.Errorf("abrupt turn should fall back to non-predictive (mode=%v)", modes[31])
	}
	// ...and the second steady phase recovers predictive mode.
	if modes[59] != ModePredictive {
		t.Errorf("second steady phase should re-predict (mode=%v)", modes[59])
	}
	if a.Switches() < 3 {
		t.Errorf("expected ≥3 hand-offs, got %d", a.Switches())
	}
}

// The client view stays complete across hand-offs. The client model:
// every delivered segment is retained (the client holds the geometry and
// re-checks visibility itself, as in the paper's architecture), so at
// every frame each exactly-visible segment must have been delivered at
// some earlier or current frame.
func TestAdaptiveCompleteness(t *testing.T) {
	tree, entries := buildIndex(t, rtree.DefaultConfig(), 400, 60, 72)
	var c stats.Counters
	a, err := NewAdaptive(tree, adaptiveOpts(), &c)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	wins, tws := observerPath(60)
	type segKey struct {
		id rtree.ObjectID
		t0 float64
	}
	have := map[segKey]bool{}
	for i := range wins {
		rs, err := a.Frame(wins[i], tws[i])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		for _, r := range rs {
			have[segKey{id: r.ID, t0: r.Seg.T.Lo}] = true
		}
		// Brute force: exactly visible segments this frame.
		q := append(wins[i].Clone(), tws[i])
		for _, e := range entries {
			ov := e.Seg.OverlapTimeInBox(q)
			if ov.Empty() || ov.Length() < 1e-9 {
				continue // skip boundary-grazing
			}
			if !have[segKey{id: e.ID, t0: e.Seg.T.Lo}] {
				t.Fatalf("frame %d (mode %v): object %d segment@%g visible (episode %v) but never delivered",
					i, a.Mode(), e.ID, e.Seg.T.Lo, ov)
			}
		}
	}
}

// On a long steady course the adaptive session approaches PDQ-like I/O:
// far below per-frame naive evaluation.
func TestAdaptiveCheaperThanNaiveWhenSteady(t *testing.T) {
	tree, _ := buildIndex(t, rtree.DefaultConfig(), 1000, 100, 73)
	var cA, cN stats.Counters
	a, err := NewAdaptive(tree, adaptiveOpts(), &cA)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	naive := NewNaive(tree, rtree.SearchOptions{}, &cN)

	x := 10.0
	for f := 0; f < 100; f++ {
		t0 := 5 + float64(f)*0.5
		x += 0.4
		win := geom.Box{{Lo: x, Hi: x + 8}, {Lo: 40, Hi: 48}}
		tw := geom.Interval{Lo: t0, Hi: t0 + 0.5}
		if _, err := a.Frame(win, tw); err != nil {
			t.Fatal(err)
		}
		if _, err := naive.Snapshot(win, tw); err != nil {
			t.Fatal(err)
		}
	}
	ar, nr := cA.Snapshot().Reads(), cN.Snapshot().Reads()
	if ar*2 >= nr {
		t.Errorf("adaptive reads (%d) should be well below naive (%d) on a steady course", ar, nr)
	}
}

func TestAdaptiveValidation(t *testing.T) {
	tree, _ := buildIndex(t, rtree.DefaultConfig(), 50, 20, 74)
	var c stats.Counters
	if _, err := NewAdaptive(tree, AdaptiveOptions{Slack: 0, Horizon: 5}, &c); err == nil {
		t.Error("zero slack should be rejected")
	}
	if _, err := NewAdaptive(tree, AdaptiveOptions{Slack: 1, Horizon: 0}, &c); err == nil {
		t.Error("zero horizon should be rejected")
	}
	a, err := NewAdaptive(tree, adaptiveOpts(), &c)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := a.Frame(geom.Box{{Lo: 0, Hi: 1}}, geom.Interval{Lo: 0, Hi: 1}); err == nil {
		t.Error("dimension mismatch should be rejected")
	}
	if _, err := a.Frame(geom.Box{{Lo: 0, Hi: 8}, {Lo: 0, Hi: 8}}, geom.Interval{Lo: 1, Hi: 0}); err == nil {
		t.Error("empty time window should be rejected")
	}
	if _, err := a.Frame(geom.Box{{Lo: 0, Hi: 8}, {Lo: 0, Hi: 8}}, geom.Interval{Lo: 5, Hi: 5.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Frame(geom.Box{{Lo: 0, Hi: 8}, {Lo: 0, Hi: 8}}, geom.Interval{Lo: 4, Hi: 4.5}); err == nil {
		t.Error("time travel should be rejected")
	}
}
