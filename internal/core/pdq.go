package core

import (
	"container/heap"
	"fmt"
	"sync"

	"dynq/internal/geom"
	"dynq/internal/pager"
	"dynq/internal/rtree"
	"dynq/internal/stats"
	"dynq/internal/trajectory"
)

// PDQOptions tune a predictive dynamic query session.
type PDQOptions struct {
	// LiveUpdates subscribes the session to index insertions so objects
	// inserted while the query runs still appear (Section 4.1's update
	// management). Leave false for historical (read-only) workloads.
	LiveUpdates bool
	// RebuildOnRootSplit empties and re-seeds the priority queue when the
	// index grows a new root, instead of enqueueing the root's new sibling
	// (the paper's suggestion when the split is close to the root).
	RebuildOnRootSplit bool
}

// PDQ evaluates a predictive dynamic query: the observer's trajectory is
// registered up front and results are pulled incrementally with GetNext,
// in order of the time they become visible. Each index node is read at
// most once over the whole dynamic query, which is the source of the
// paper's I/O improvement (Figure 6).
//
// A PDQ is not safe for concurrent GetNext calls; concurrent index
// insertions are safe when LiveUpdates is enabled.
type PDQ struct {
	tree *rtree.Tree
	traj *trajectory.Trajectory
	c    *stats.Counters
	opts PDQOptions

	pq      pdqHeap
	seq     uint64 // monotone tiebreak for deterministic pop order
	lastPop pdqKey
	havePop bool
	closed  bool
	unsub   func()

	inboxMu sync.Mutex
	inbox   []rtree.Update
	rebuild bool
}

// NewPDQ starts a predictive dynamic query session over the tree for the
// given observer trajectory, charging all I/O and CPU to c.
func NewPDQ(tree *rtree.Tree, traj *trajectory.Trajectory, opts PDQOptions, c *stats.Counters) (*PDQ, error) {
	if traj.Dims() != tree.Config().Dims {
		return nil, fmt.Errorf("core: trajectory has %d dims, index has %d", traj.Dims(), tree.Config().Dims)
	}
	p := &PDQ{tree: tree, traj: traj, c: c, opts: opts}
	p.seedFromRoot()
	if opts.LiveUpdates {
		p.unsub = tree.OnUpdate(p.enqueueUpdate)
	}
	return p, nil
}

// seedFromRoot computes the root's overlap with the trajectory and primes
// the queue (the first step of Section 4.1's algorithm).
func (p *PDQ) seedFromRoot() {
	root, level, ok := p.tree.Root()
	if !ok {
		return
	}
	// The root's box is not stored anywhere above it; treat it as always
	// potentially overlapping and let exploration refine. Seeding with the
	// whole trajectory span is sound: the root is popped once.
	p.pushNode(root, level, p.traj.TimeSpan())
}

// enqueueUpdate receives insertion notifications. It runs under the tree
// lock, so it only records the update; GetNext integrates the inbox before
// consulting the queue.
func (p *PDQ) enqueueUpdate(u rtree.Update) {
	p.inboxMu.Lock()
	defer p.inboxMu.Unlock()
	if u.RootSplit && p.opts.RebuildOnRootSplit {
		p.rebuild = true
		p.inbox = p.inbox[:0]
		return
	}
	p.inbox = append(p.inbox, u)
}

// drainInbox integrates pending update notifications into the priority
// queue: subtree notifications enqueue the subtree root with its overlap
// episodes, entry notifications enqueue the segment directly.
func (p *PDQ) drainInbox() {
	p.inboxMu.Lock()
	inbox := p.inbox
	p.inbox = nil
	rebuild := p.rebuild
	p.rebuild = false
	p.inboxMu.Unlock()

	if rebuild {
		p.pq = p.pq[:0]
		p.havePop = false
		p.seedFromRoot()
		return
	}
	var set geom.IntervalSet
	for _, u := range inbox {
		set.Reset()
		switch u.Kind {
		case rtree.UpdateEntry:
			p.c.AddDistanceComps(1)
			p.traj.OverlapSegment(u.Entry.Seg, &set)
			for _, iv := range set.Intervals() {
				p.pushObject(u.Entry, iv)
			}
		case rtree.UpdateSubtree:
			p.c.AddDistanceComps(1)
			p.traj.OverlapBox(u.Box, &set)
			for _, iv := range set.Intervals() {
				p.pushNode(u.Node, u.Level, iv)
			}
		}
	}
}

// GetNext returns the next object that becomes visible during
// [tStart, tEnd], or nil when no (further) object appears in that window.
// It is Algorithm 4.1 of the paper: items are popped in visibility-start
// order; expired items (already invisible before tStart) are dropped;
// node items are expanded by computing each child's overlap episodes;
// duplicate items produced by update management are eliminated on pop.
//
// Callers advance tStart/tEnd monotonically along the trajectory (one
// window per pair of key snapshots, or per rendered frame).
func (p *PDQ) GetNext(tStart, tEnd float64) (*Result, error) {
	if p.closed {
		return nil, fmt.Errorf("core: GetNext on closed PDQ")
	}
	if tEnd < tStart {
		return nil, fmt.Errorf("core: GetNext window [%g,%g] is empty", tStart, tEnd)
	}
	p.drainInbox()
	for len(p.pq) > 0 && tEnd >= p.pq[0].key.iv.Lo {
		item := heap.Pop(&p.pq).(pdqItem)
		// Duplicate elimination (Section 4.1): duplicates share a priority
		// and therefore pop adjacently.
		if p.havePop && item.key == p.lastPop {
			continue
		}
		p.lastPop, p.havePop = item.key, true

		if tStart > item.key.iv.Hi {
			// The item's visibility ended before the window of interest;
			// the query has moved past it.
			continue
		}
		if item.key.isObj {
			p.c.AddResults(1)
			return &Result{
				ID:        item.entry.ID,
				Seg:       item.entry.Seg,
				Appear:    item.key.iv.Lo,
				Disappear: item.key.iv.Hi,
			}, nil
		}
		if err := p.expand(item, tStart); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// expand loads a node (one disk access) and enqueues every child whose
// visibility has not already ended.
func (p *PDQ) expand(item pdqItem, tStart float64) error {
	n, err := p.tree.Load(item.key.node, p.c)
	if err != nil {
		return err
	}
	var set geom.IntervalSet
	if n.Leaf() {
		for _, e := range n.Entries {
			p.c.AddDistanceComps(1)
			set.Reset()
			p.traj.OverlapSegment(e.Seg, &set)
			for _, iv := range set.Intervals() {
				if tStart <= iv.Hi {
					p.pushObject(e, iv)
				}
			}
		}
		return nil
	}
	for _, ch := range n.Children {
		p.c.AddDistanceComps(1)
		set.Reset()
		p.traj.OverlapBox(ch.Box, &set)
		if len(set.Intervals()) == 0 {
			// The trajectory never meets this subtree: pruned without
			// ever being loaded.
			p.c.AddPruned(1)
			continue
		}
		for _, iv := range set.Intervals() {
			if tStart <= iv.Hi {
				p.pushNode(ch.ID, n.Level-1, iv)
			}
		}
	}
	return nil
}

// Drain pulls every remaining result visible during [tStart, tEnd],
// repeatedly calling GetNext. It is the per-frame fetch loop of the
// visualization client.
func (p *PDQ) Drain(tStart, tEnd float64) ([]Result, error) {
	var out []Result
	for {
		r, err := p.GetNext(tStart, tEnd)
		if err != nil {
			return out, err
		}
		if r == nil {
			return out, nil
		}
		out = append(out, *r)
	}
}

// Pending reports the number of queued items (diagnostics).
func (p *PDQ) Pending() int { return len(p.pq) }

// Close releases the session's update subscription. The session must not
// be used afterwards.
func (p *PDQ) Close() {
	if p.closed {
		return
	}
	p.closed = true
	if p.unsub != nil {
		p.unsub()
	}
	p.pq = nil
}

func (p *PDQ) pushNode(id pager.PageID, level int, iv geom.Interval) {
	if iv.Empty() {
		return
	}
	p.seq++
	heap.Push(&p.pq, pdqItem{
		key: pdqKey{iv: iv, node: id, level: level},
		seq: p.seq,
	})
}

func (p *PDQ) pushObject(e rtree.LeafEntry, iv geom.Interval) {
	if iv.Empty() {
		return
	}
	p.seq++
	heap.Push(&p.pq, pdqItem{
		key:   pdqKey{iv: iv, isObj: true, obj: e.ID, segStart: e.Seg.T.Lo},
		entry: e,
		seq:   p.seq,
	})
}

// pdqKey identifies a queue item for ordering and duplicate elimination.
// Two notifications for the same node (or the same segment episode)
// produce equal keys and pop adjacently.
type pdqKey struct {
	iv       geom.Interval
	isObj    bool
	node     pager.PageID
	level    int
	obj      rtree.ObjectID
	segStart float64
}

type pdqItem struct {
	key   pdqKey
	entry rtree.LeafEntry // valid when key.isObj
	seq   uint64
}

type pdqHeap []pdqItem

func (h pdqHeap) Len() int { return len(h) }
func (h pdqHeap) Less(i, j int) bool {
	a, b := h[i].key, h[j].key
	if a.iv.Lo != b.iv.Lo {
		return a.iv.Lo < b.iv.Lo
	}
	// Total order among equal priorities so duplicates are adjacent.
	if a.isObj != b.isObj {
		return !a.isObj // nodes first: they may reveal earlier objects
	}
	if a.isObj {
		if a.obj != b.obj {
			return a.obj < b.obj
		}
		if a.segStart != b.segStart {
			return a.segStart < b.segStart
		}
	} else {
		if a.node != b.node {
			return a.node < b.node
		}
	}
	if a.iv.Hi != b.iv.Hi {
		return a.iv.Hi < b.iv.Hi
	}
	return h[i].seq < h[j].seq
}
func (h pdqHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pdqHeap) Push(x any)   { *h = append(*h, x.(pdqItem)) }
func (h *pdqHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
