package core

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"

	"dynq/internal/geom"
	"dynq/internal/pager"
	"dynq/internal/rtree"
	"dynq/internal/stats"
)

// Neighbor is one k-nearest-neighbor answer: the object's segment and its
// distance from the query point at the query time.
type Neighbor struct {
	ID   rtree.ObjectID
	Seg  geom.Segment
	Dist float64
}

// KNN finds the k objects nearest to point p at time t, using best-first
// search over the index (the Roussopoulos/Hjaltason-Samet strategy the
// paper's priority-queue design builds on, [17,7]). Only segments whose
// validity interval contains t are candidates; distance is to the
// object's interpolated position at t.
//
// This implements the paper's first listed direction of future work
// (Section 6 (i), after [24]): MovingKNN evaluates it along a query-point
// trajectory.
func KNN(tree *rtree.Tree, p geom.Point, t float64, k int, c *stats.Counters) ([]Neighbor, error) {
	return KNNCtx(context.Background(), tree, p, t, k, c)
}

// KNNCtx is KNN with cooperative cancellation: the context is checked
// before every node fetch, so a cancelled or expired query stops within
// one page fetch and returns the context's error.
func KNNCtx(ctx context.Context, tree *rtree.Tree, p geom.Point, t float64, k int, c *stats.Counters) ([]Neighbor, error) {
	d := tree.Config().Dims
	if len(p) != d {
		return nil, fmt.Errorf("core: query point has %d dims, index has %d", len(p), d)
	}
	if k <= 0 {
		return nil, fmt.Errorf("core: k must be positive, got %d", k)
	}
	root, level, ok := tree.Root()
	if !ok {
		return nil, nil
	}
	// Best-first search: items pop in increasing distance, so the i-th
	// object popped is exactly the i-th nearest neighbor — no distance
	// bound is needed for correctness.
	pq := &knnHeap{{node: root, level: level, dist: 0}}
	var out []Neighbor
	for pq.Len() > 0 {
		item := heap.Pop(pq).(knnItem)
		if item.isObj {
			out = append(out, item.nb)
			if len(out) >= k {
				break
			}
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n, err := tree.Load(item.node, c)
		if err != nil {
			return nil, err
		}
		if n.Leaf() {
			for _, e := range n.Entries {
				c.AddDistanceComps(1)
				if !e.Seg.T.ContainsValue(t) {
					continue
				}
				dist := math.Sqrt(e.Seg.DistSqAt(t, p))
				heap.Push(pq, knnItem{isObj: true, dist: dist, nb: Neighbor{ID: e.ID, Seg: e.Seg, Dist: dist}})
			}
		} else {
			for _, ch := range n.Children {
				c.AddDistanceComps(1)
				// Prune subtrees with no segment alive at t: alive needs
				// some start ≤ t and some end ≥ t.
				if ch.Box[d].Lo > t || ch.Box[d+1].Hi < t {
					continue
				}
				heap.Push(pq, knnItem{node: ch.ID, level: n.Level - 1, dist: boxDist(ch.Box[:d], p)})
			}
		}
	}
	c.AddResults(len(out))
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// boxDist is the minimum Euclidean distance from p to the spatial box.
func boxDist(b geom.Box, p geom.Point) float64 {
	s := 0.0
	for i := range b {
		switch {
		case p[i] < b[i].Lo:
			d := b[i].Lo - p[i]
			s += d * d
		case p[i] > b[i].Hi:
			d := p[i] - b[i].Hi
			s += d * d
		}
	}
	return math.Sqrt(s)
}

type knnItem struct {
	dist  float64
	isObj bool
	node  pager.PageID
	level int
	nb    Neighbor
}

type knnHeap []knnItem

func (h knnHeap) Len() int { return len(h) }
func (h knnHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	// Objects before nodes at equal distance, then by id for determinism.
	if h[i].isObj != h[j].isObj {
		return h[i].isObj
	}
	if h[i].isObj {
		return h[i].nb.ID < h[j].nb.ID
	}
	return h[i].node < h[j].node
}
func (h knnHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *knnHeap) Push(x any)   { *h = append(*h, x.(knnItem)) }
func (h *knnHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// KNNBounded is KNN restricted to candidates within maxDist of the query
// point: subtrees and objects farther away are pruned up front. With
// maxDist = +Inf it degenerates to KNN. It may return fewer than k
// neighbors when fewer lie within the bound.
func KNNBounded(tree *rtree.Tree, p geom.Point, t float64, k int, maxDist float64, c *stats.Counters) ([]Neighbor, error) {
	d := tree.Config().Dims
	if len(p) != d {
		return nil, fmt.Errorf("core: query point has %d dims, index has %d", len(p), d)
	}
	if k <= 0 {
		return nil, fmt.Errorf("core: k must be positive, got %d", k)
	}
	root, level, ok := tree.Root()
	if !ok {
		return nil, nil
	}
	pq := &knnHeap{{node: root, level: level, dist: 0}}
	var out []Neighbor
	for pq.Len() > 0 {
		item := heap.Pop(pq).(knnItem)
		if item.dist > maxDist {
			break // best-first: everything left is farther
		}
		if item.isObj {
			out = append(out, item.nb)
			if len(out) >= k {
				break
			}
			continue
		}
		n, err := tree.Load(item.node, c)
		if err != nil {
			return nil, err
		}
		if n.Leaf() {
			for _, e := range n.Entries {
				c.AddDistanceComps(1)
				if !e.Seg.T.ContainsValue(t) {
					continue
				}
				dist := math.Sqrt(e.Seg.DistSqAt(t, p))
				if dist > maxDist {
					continue
				}
				heap.Push(pq, knnItem{isObj: true, dist: dist, nb: Neighbor{ID: e.ID, Seg: e.Seg, Dist: dist}})
			}
		} else {
			for _, ch := range n.Children {
				c.AddDistanceComps(1)
				if ch.Box[d].Lo > t || ch.Box[d+1].Hi < t {
					continue
				}
				if dist := boxDist(ch.Box[:d], p); dist <= maxDist {
					heap.Push(pq, knnItem{node: ch.ID, level: n.Level - 1, dist: dist})
				}
			}
		}
	}
	c.AddResults(len(out))
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// MovingKNN evaluates k-nearest-neighbor queries along a moving query
// point — the paper's future work (i), following the moving-query-point
// technique of [24] (Song & Roussopoulos): each index evaluation fetches
// k+1 neighbors, and the gap between the k-th and (k+1)-th distances
// tells how far the configuration may drift before the answer *set* can
// change. While the query's displacement plus the worst-case object
// displacement (maxObjectSpeed·Δt) stays below half that gap — and every
// cached segment is still valid — subsequent samples reuse the cached
// membership, recomputing exact distances from the cached segments
// instead of touching the index.
//
// maxObjectSpeed must upper-bound every object's speed; pass a
// non-positive value to disable reuse (every sample searches the index).
// Sample times must be increasing.
func MovingKNN(tree *rtree.Tree, pos func(t float64) geom.Point, times []float64, k int, maxObjectSpeed float64, c *stats.Counters) ([][]Neighbor, error) {
	out := make([][]Neighbor, len(times))
	var (
		cached   []Neighbor // k+1 neighbors from the last evaluation
		gap      float64    // (d_{k+1} - d_k) / 2 at evaluation
		evalPos  geom.Point
		evalTime float64
	)
	reusable := func(p geom.Point, t float64) bool {
		if maxObjectSpeed <= 0 || len(cached) < k+1 {
			return false
		}
		drift := p.Dist(evalPos) + maxObjectSpeed*(t-evalTime)
		if drift >= gap {
			return false
		}
		for _, nb := range cached[:k] {
			if !nb.Seg.T.ContainsValue(t) {
				return false // the cached motion segment expired
			}
		}
		return true
	}
	for i, t := range times {
		p := pos(t)
		if reusable(p, t) {
			nbs := make([]Neighbor, k)
			for j, nb := range cached[:k] {
				nbs[j] = Neighbor{ID: nb.ID, Seg: nb.Seg, Dist: math.Sqrt(nb.Seg.DistSqAt(t, p))}
			}
			sort.Slice(nbs, func(a, b int) bool {
				if nbs[a].Dist != nbs[b].Dist {
					return nbs[a].Dist < nbs[b].Dist
				}
				return nbs[a].ID < nbs[b].ID
			})
			out[i] = nbs
			c.AddResults(k)
			continue
		}
		nbs, err := KNN(tree, p, t, k+1, c)
		if err != nil {
			return nil, err
		}
		if len(nbs) > k {
			cached = nbs
			gap = (nbs[k].Dist - nbs[k-1].Dist) / 2
			evalPos, evalTime = p.Clone(), t
			out[i] = nbs[:k]
		} else {
			cached = nil
			out[i] = nbs
		}
	}
	return out, nil
}
