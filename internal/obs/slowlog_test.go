package obs

import (
	"testing"
	"time"
)

func span(op string, wall time.Duration) Span {
	return Span{Op: op, WallNS: wall.Nanoseconds()}
}

// TestRecordAtThresholds checks the per-call bar: an explicit threshold
// wins over the log's default, zero falls back to the default, and a
// negative threshold disables capture for that call.
func TestRecordAtThresholds(t *testing.T) {
	l := NewSlowLog(8, 100*time.Millisecond)

	if l.RecordAt(span("read", 50*time.Millisecond), 0) {
		t.Error("50ms under the 100ms default was captured with threshold 0")
	}
	if !l.RecordAt(span("read", 150*time.Millisecond), 0) {
		t.Error("150ms over the 100ms default was dropped with threshold 0")
	}
	// Writes can run a stricter bar over the same ring.
	if !l.RecordAt(span("write", 20*time.Millisecond), 10*time.Millisecond) {
		t.Error("20ms over an explicit 10ms bar was dropped")
	}
	if l.RecordAt(span("write", 5*time.Millisecond), 10*time.Millisecond) {
		t.Error("5ms under an explicit 10ms bar was captured")
	}
	if l.RecordAt(span("write", time.Hour), -1) {
		t.Error("a negative threshold must disable capture for that call")
	}
	if got := l.Captured(); got != 2 {
		t.Errorf("Captured = %d, want 2", got)
	}
}

// TestRecentOpFiltering interleaves two op classes in one ring and
// checks that RecentOp isolates each while Recent still sees both.
func TestRecentOpFiltering(t *testing.T) {
	l := NewSlowLog(16, time.Millisecond)
	for i := 0; i < 3; i++ {
		l.Record(span("snapshot", 10*time.Millisecond))
		l.Record(span("apply-updates", 20*time.Millisecond))
	}

	if got := len(l.Recent(100)); got != 6 {
		t.Fatalf("Recent = %d entries, want 6", got)
	}
	writes := l.RecentOp("apply-updates", 100)
	if len(writes) != 3 {
		t.Fatalf("RecentOp(apply-updates) = %d entries, want 3", len(writes))
	}
	for _, e := range writes {
		if e.Span.Op != "apply-updates" {
			t.Errorf("filtered list leaked op %q", e.Span.Op)
		}
	}
	// The limit applies to matches, not ring slots scanned.
	if got := len(l.RecentOp("snapshot", 2)); got != 2 {
		t.Errorf("RecentOp(snapshot, 2) = %d entries, want 2", got)
	}
	if got := len(l.RecentOp("missing", 100)); got != 0 {
		t.Errorf("RecentOp(missing) = %d entries, want 0", got)
	}
}
