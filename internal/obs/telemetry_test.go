package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestTelemetryJSONRoundTripWithWAL checks the wire shape of the WAL
// section: populated fields survive a marshal/unmarshal cycle, and the
// section vanishes entirely when no log is armed.
func TestTelemetryJSONRoundTripWithWAL(t *testing.T) {
	tel := Telemetry{
		Time:          time.Unix(1_700_000_000, 0).UTC(),
		UptimeSeconds: 12.5,
		WAL: &WALTelemetry{
			Path:          "/tmp/db.wal",
			Appends:       42,
			AppendedBytes: 4096,
			Fsyncs:        7,
			Coalesced:     35,
			CoalesceRatio: 35.0 / 42.0,
			Checkpoints:   2,
			LastLSN:       42,
			DurableLSN:    42,
			CheckpointLSN: 40,
			CheckpointLag: 2,
			LogBytes:      5120,
			LiveBytes:     4096,
			FsyncLatency: HistSummary{
				Count: 7, Sum: 0.014, P50: 0.002, P95: 0.003, P99: 0.003,
				Windows: []WindowSnapshot{{Window: time.Minute, Count: 7, Sum: 0.014, P50: 0.002, P95: 0.003, P99: 0.003}},
			},
			BatchSize: HistSummary{Count: 7, Sum: 42, P50: 6},
		},
	}

	raw, err := json.Marshal(tel)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"wal"`, `"appends":42`, `"coalesce_ratio"`, `"checkpoint_lag":2`,
		`"fsync_latency"`, `"batch_size"`, `"log_bytes":5120`,
	} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("marshaled telemetry missing %s: %s", key, raw)
		}
	}

	var back Telemetry
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.WAL == nil {
		t.Fatal("WAL section lost in round trip")
	}
	if back.WAL.Appends != 42 || back.WAL.CheckpointLag != 2 {
		t.Errorf("counters lost: %+v", back.WAL)
	}
	if len(back.WAL.FsyncLatency.Windows) != 1 || back.WAL.FsyncLatency.Windows[0].Count != 7 {
		t.Errorf("fsync windows lost: %+v", back.WAL.FsyncLatency)
	}
	if back.WAL.BatchSize.Sum != 42 {
		t.Errorf("batch-size summary lost: %+v", back.WAL.BatchSize)
	}

	// No WAL armed: the key must be absent, and a round trip must keep
	// the pointer nil so dqtop's nil-gate works.
	raw, err = json.Marshal(Telemetry{Time: tel.Time})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"wal"`) {
		t.Errorf("nil WAL section still marshaled: %s", raw)
	}
	back = Telemetry{}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.WAL != nil {
		t.Errorf("nil WAL section materialized in round trip: %+v", back.WAL)
	}
}

// TestSummarizeWindowed checks the histogram-to-summary conversion used
// by the telemetry snapshot: cumulative stats plus one snapshot per
// requested window.
func TestSummarizeWindowed(t *testing.T) {
	w := NewWindowedHistogram(nil, 0, 0)
	for i := 0; i < 10; i++ {
		w.Observe(0.005)
	}
	s := SummarizeWindowed(w, DefWindows())
	if s.Count != 10 {
		t.Errorf("Count = %d, want 10", s.Count)
	}
	if s.Sum < 0.049 || s.Sum > 0.051 {
		t.Errorf("Sum = %v, want ~0.05", s.Sum)
	}
	if len(s.Windows) != len(DefWindows()) {
		t.Fatalf("Windows = %d, want %d", len(s.Windows), len(DefWindows()))
	}
	if s.Windows[0].Count != 10 {
		t.Errorf("1m window count = %d, want 10 (all observations recent)", s.Windows[0].Count)
	}
	if s.P50 <= 0 || s.P99 < s.P50 {
		t.Errorf("quantiles look wrong: p50=%v p99=%v", s.P50, s.P99)
	}
}
