package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefSlowThreshold is the default slow-operation capture threshold.
const DefSlowThreshold = 250 * time.Millisecond

// SlowEntry is one captured slow operation: the full span (trace ids,
// parameters, per-stage cost deltas) plus the threshold it exceeded.
type SlowEntry struct {
	Seq         uint64        `json:"seq"`
	Span        Span          `json:"span"`
	ThresholdNS time.Duration `json:"threshold_ns"`
}

// SlowLog ring-buffers every operation — read queries and writes alike —
// whose wall time met or exceeded a configurable threshold, keeping the
// operation's full trace span (per-stage cost deltas, view parameters,
// trace ids) for post-hoc diagnosis. One ring can serve several
// operation classes with distinct bars via RecordAt; entries are
// filterable by op name with RecentOp. Safe for concurrent use; the
// threshold can be adjusted at runtime.
type SlowLog struct {
	threshold atomic.Int64 // nanoseconds; <=0 disables capture

	mu   sync.Mutex
	ring []SlowEntry
	next uint64 // total entries ever captured; also the next seq
}

// NewSlowLog creates a slow-query log keeping the last capacity entries
// (minimum 1) and capturing queries at or above threshold (0 gets
// DefSlowThreshold; negative disables capture).
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	l := &SlowLog{ring: make([]SlowEntry, capacity)}
	l.SetThreshold(threshold)
	return l
}

// SetThreshold adjusts the capture threshold (0 restores the default;
// negative disables capture).
func (l *SlowLog) SetThreshold(d time.Duration) {
	if d == 0 {
		d = DefSlowThreshold
	}
	l.threshold.Store(int64(d))
}

// Threshold reports the current capture threshold (negative = disabled).
func (l *SlowLog) Threshold() time.Duration {
	return time.Duration(l.threshold.Load())
}

// Record captures the span if its wall time meets the log's threshold,
// reporting whether it was kept.
func (l *SlowLog) Record(s Span) bool {
	return l.RecordAt(s, time.Duration(l.threshold.Load()))
}

// RecordAt is Record with an explicit threshold, letting one shared ring
// apply per-class bars (e.g. a tighter slow-write threshold alongside
// the query threshold). Zero falls back to the log's own threshold;
// negative disables capture for this span.
func (l *SlowLog) RecordAt(s Span, threshold time.Duration) bool {
	th := int64(threshold)
	if th == 0 {
		th = l.threshold.Load()
	}
	if th < 0 || s.WallNS < th {
		return false
	}
	l.mu.Lock()
	l.ring[l.next%uint64(len(l.ring))] = SlowEntry{
		Seq:         l.next,
		Span:        s,
		ThresholdNS: time.Duration(th),
	}
	l.next++
	l.mu.Unlock()
	return true
}

// Captured reports the number of slow queries ever captured (entries
// older than the ring's capacity have rotated out).
func (l *SlowLog) Captured() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Recent returns up to limit buffered entries, newest first (limit <= 0
// means all buffered).
func (l *SlowLog) Recent(limit int) []SlowEntry {
	return l.RecentOp("", limit)
}

// RecentOp returns up to limit buffered entries whose span op matches,
// newest first. An empty op matches everything; limit <= 0 means all
// buffered.
func (l *SlowLog) RecentOp(op string, limit int) []SlowEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := uint64(len(l.ring))
	count := l.next
	if count > n {
		count = n
	}
	max := count
	if limit > 0 && uint64(limit) < max {
		max = uint64(limit)
	}
	out := make([]SlowEntry, 0, max)
	for i := uint64(0); i < count && uint64(len(out)) < max; i++ {
		e := l.ring[(l.next-1-i)%n]
		if op != "" && e.Span.Op != op {
			continue
		}
		out = append(out, e)
	}
	return out
}
