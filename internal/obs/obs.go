// Package obs is a zero-dependency observability layer for the dynq
// stack: fixed-bucket latency histograms with percentile extraction, a
// registry of named counters/gauges/histograms that renders both
// Prometheus text format and expvar-style JSON, and a ring-buffered
// query tracer that records per-query spans with per-stage cost deltas
// (the paper's disk-access and distance-computation counters from
// internal/stats, split pager → rtree → engine).
//
// Everything here is built on the standard library only and is safe for
// concurrent use: metric updates are lock-free atomics on the hot path,
// rendering takes a read lock.
package obs
