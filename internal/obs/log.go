package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the stack's structured logger: a slog.Logger writing
// to w at the given level ("debug", "info", "warn", "error") in the
// given format ("text" or "json"). Both binaries expose these as the
// -log-level and -log-format flags.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
	}
}

// NopLogger returns a logger that discards everything — the default for
// library components (e.g. the netq server) until a binary installs a
// real one.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}
