package obs

import (
	"strings"
	"testing"
)

func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `dynq_build_info{go_version="go`) {
		t.Errorf("no dynq_build_info with go_version label:\n%s", out)
	}
	if !strings.Contains(out, `revision=`) {
		t.Errorf("no revision label:\n%s", out)
	}
	if !strings.Contains(out, "dynq_uptime_seconds") {
		t.Errorf("no uptime gauge:\n%s", out)
	}
	// The build-info gauge is the constant 1.
	if v, ok := reg.Export()[`dynq_build_info{go_version="`+mustGoVersion()+`",revision="`+mustRevision()+`"}`]; !ok || v != 1.0 {
		t.Errorf("dynq_build_info = %v, %v; want 1", v, ok)
	}
}

func mustGoVersion() string { v, _ := BuildInfo(); return v }
func mustRevision() string  { _, r := BuildInfo(); return r }

func TestNewLogger(t *testing.T) {
	var b strings.Builder
	lg, err := NewLogger(&b, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hidden")
	lg.Info("visible", "k", "v")
	out := b.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("debug line leaked at info level: %s", out)
	}
	if !strings.Contains(out, `"msg":"visible"`) || !strings.Contains(out, `"k":"v"`) {
		t.Errorf("json handler output wrong: %s", out)
	}
	if _, err := NewLogger(&b, "loud", "text"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger(&b, "info", "xml"); err == nil {
		t.Error("bad format accepted")
	}
	NopLogger().Error("dropped") // must not panic, must not write anywhere visible
}
