package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	got := h.BucketCounts()
	want := []int64{2, 1, 1, 1} // ≤1: {0.5, 1}; ≤2: {1.5}; ≤4: {3}; +Inf: {100}
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Errorf("sum = %g, want 106", h.Sum())
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 40})
	for i := 0; i < 10; i++ {
		h.Observe(5)  // bucket (0, 10]
		h.Observe(15) // bucket (10, 20]
	}
	cases := []struct{ q, want float64 }{
		{0.50, 10}, // rank 10 lands exactly on the first bucket's upper bound
		{0.75, 15}, // rank 15: halfway through (10, 20]
		{1.00, 20},
		{0.25, 5}, // rank 5: halfway through (0, 10]
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
	h.Observe(50) // only the +Inf bucket
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %g, want clamp to last bound 2", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.ObserveDuration(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-8.0) > 1e-6 {
		t.Errorf("sum = %g, want 8.0", h.Sum())
	}
}
