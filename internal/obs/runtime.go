package obs

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// DefCollectorInterval is the default runtime sampling interval.
const DefCollectorInterval = 5 * time.Second

// DefCollectorCapacity is the default sample-ring capacity (at the
// default interval, about 21 minutes of history).
const DefCollectorCapacity = 256

// RuntimeSample is one point-in-time reading of process health:
// scheduler and memory state from the Go runtime plus whatever extra
// sources (buffer-pool occupancy, queue depths) the owner registered.
type RuntimeSample struct {
	Time           time.Time          `json:"time"`
	Goroutines     int                `json:"goroutines"`
	HeapAllocBytes uint64             `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64             `json:"heap_sys_bytes"`
	NumGC          uint32             `json:"num_gc"`
	GCPauseTotal   time.Duration      `json:"gc_pause_total_ns"`
	LastGCPause    time.Duration      `json:"last_gc_pause_ns"`
	Extra          map[string]float64 `json:"extra,omitempty"`
}

// Collector samples runtime health into a fixed-capacity time-series
// ring on a fixed interval. Extra sources (buffer-pool occupancy, netq
// queue depth) are polled with each sample; an optional OnSample hook
// lets the owner edge-detect state changes (degraded-mode flips,
// checksum-counter jumps) at sampling resolution. Start/Stop manage the
// sampling goroutine; SampleOnce takes a synchronous sample (used by
// tests and by snapshot builders that want a fresh reading).
type Collector struct {
	interval time.Duration

	mu       sync.Mutex
	sources  map[string]func() float64
	onSample []func(RuntimeSample)
	ring     []RuntimeSample
	next     uint64

	stop chan struct{}
	done chan struct{}
}

// NewCollector creates a collector sampling every interval (0 gets
// DefCollectorInterval) into a ring of capacity samples (0 gets
// DefCollectorCapacity). It does not start sampling; call Start.
func NewCollector(interval time.Duration, capacity int) *Collector {
	if interval <= 0 {
		interval = DefCollectorInterval
	}
	if capacity < 1 {
		capacity = DefCollectorCapacity
	}
	return &Collector{
		interval: interval,
		sources:  make(map[string]func() float64),
		ring:     make([]RuntimeSample, capacity),
	}
}

// Interval reports the sampling interval.
func (c *Collector) Interval() time.Duration { return c.interval }

// Source registers a named extra gauge polled with every sample.
// Call before Start.
func (c *Collector) Source(name string, fn func() float64) *Collector {
	c.mu.Lock()
	c.sources[name] = fn
	c.mu.Unlock()
	return c
}

// OnSample registers a hook invoked with each completed sample (on the
// sampling goroutine). Call before Start.
func (c *Collector) OnSample(fn func(RuntimeSample)) *Collector {
	c.mu.Lock()
	c.onSample = append(c.onSample, fn)
	c.mu.Unlock()
	return c
}

// SampleOnce takes one sample synchronously, stores it in the ring, runs
// the hooks, and returns it.
func (c *Collector) SampleOnce() RuntimeSample {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := RuntimeSample{
		Time:           time.Now(),
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		NumGC:          ms.NumGC,
		GCPauseTotal:   time.Duration(ms.PauseTotalNs),
	}
	if ms.NumGC > 0 {
		s.LastGCPause = time.Duration(ms.PauseNs[(ms.NumGC+255)%256])
	}

	c.mu.Lock()
	if len(c.sources) > 0 {
		s.Extra = make(map[string]float64, len(c.sources))
		for name, fn := range c.sources {
			s.Extra[name] = fn()
		}
	}
	c.ring[c.next%uint64(len(c.ring))] = s
	c.next++
	hooks := append([]func(RuntimeSample){}, c.onSample...)
	c.mu.Unlock()

	for _, h := range hooks {
		h(s)
	}
	return s
}

// Start launches the sampling goroutine (taking an immediate first
// sample). Calling Start on a running collector is a no-op.
func (c *Collector) Start() {
	c.mu.Lock()
	if c.stop != nil {
		c.mu.Unlock()
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	stop, done := c.stop, c.done
	c.mu.Unlock()

	go func() {
		defer close(done)
		c.SampleOnce()
		t := time.NewTicker(c.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.SampleOnce()
			}
		}
	}()
}

// Stop halts the sampling goroutine and waits for it to exit. Calling
// Stop on a stopped collector is a no-op.
func (c *Collector) Stop() {
	c.mu.Lock()
	stop, done := c.stop, c.done
	c.stop, c.done = nil, nil
	c.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Latest returns the most recent sample, if any has been taken.
func (c *Collector) Latest() (RuntimeSample, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.next == 0 {
		return RuntimeSample{}, false
	}
	return c.ring[(c.next-1)%uint64(len(c.ring))], true
}

// Samples returns the buffered time series, oldest first.
func (c *Collector) Samples() []RuntimeSample {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := uint64(len(c.ring))
	start := uint64(0)
	if c.next > n {
		start = c.next - n
	}
	out := make([]RuntimeSample, 0, c.next-start)
	for i := start; i < c.next; i++ {
		out = append(out, c.ring[i%n])
	}
	return out
}

// Register adds the collector's core readings to a registry as gauges
// over the latest sample (plus one gauge per extra source), so /metrics
// reflects the same numbers as /debug/runtime.
func (c *Collector) Register(reg *Registry) {
	reg.SetHelp("dynq_goroutines", "Goroutines at the last runtime sample.")
	reg.SetHelp("dynq_heap_alloc_bytes", "Live heap bytes at the last runtime sample.")
	reg.SetHelp("dynq_gc_pause_total_seconds", "Cumulative GC stop-the-world pause time.")
	reg.SetHelp("dynq_gc_last_pause_seconds", "Duration of the most recent GC pause.")
	latest := func(f func(RuntimeSample) float64) func() float64 {
		return func() float64 {
			s, ok := c.Latest()
			if !ok {
				return 0
			}
			return f(s)
		}
	}
	reg.GaugeFunc("dynq_goroutines", latest(func(s RuntimeSample) float64 { return float64(s.Goroutines) }))
	reg.GaugeFunc("dynq_heap_alloc_bytes", latest(func(s RuntimeSample) float64 { return float64(s.HeapAllocBytes) }))
	reg.GaugeFunc("dynq_gc_pause_total_seconds", latest(func(s RuntimeSample) float64 { return s.GCPauseTotal.Seconds() }))
	reg.GaugeFunc("dynq_gc_last_pause_seconds", latest(func(s RuntimeSample) float64 { return s.LastGCPause.Seconds() }))

	c.mu.Lock()
	names := make([]string, 0, len(c.sources))
	for name := range c.sources {
		names = append(names, name)
	}
	c.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		n := name
		reg.GaugeFunc("dynq_runtime_"+n, latest(func(s RuntimeSample) float64 { return s.Extra[n] }))
	}
}
