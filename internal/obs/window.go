package obs

import (
	"sort"
	"sync"
	"time"
)

// DefWindows are the rolling windows reported by default alongside
// cumulative histogram totals.
func DefWindows() []time.Duration {
	return []time.Duration{time.Minute, 5 * time.Minute}
}

// DefWindowInterval is the default sub-histogram rotation interval: the
// resolution of the rolling windows.
const DefWindowInterval = 10 * time.Second

// WindowSnapshot is the merged view of one rolling window: the
// observation count, sum, and percentiles over (approximately) the last
// Window of wall time, at the rotation interval's resolution.
type WindowSnapshot struct {
	Window time.Duration `json:"window"`
	Count  int64         `json:"count"`
	Sum    float64       `json:"sum"`
	P50    float64       `json:"p50"`
	P95    float64       `json:"p95"`
	P99    float64       `json:"p99"`
}

// windowSlot is one rotation interval's worth of bucketed observations.
type windowSlot struct {
	start  time.Time // zero while the slot is empty/expired
	counts []int64   // len(bounds)+1, last is +Inf
	count  int64
	sum    float64
}

// WindowedHistogram pairs a cumulative Histogram with a ring of bucketed
// sub-histograms rotated on a fixed interval, so callers can extract
// rolling-window percentiles ("p99 over the last minute") alongside the
// since-boot totals. Observations land in both the cumulative histogram
// and the current sub-histogram; a window snapshot merges the slots that
// overlap the requested window. Rotation is lazy — driven by Observe and
// Snapshot calls — so an idle histogram costs nothing.
//
// All methods are safe for concurrent use. The windowed side takes a
// mutex per Observe; the cumulative side stays lock-free.
type WindowedHistogram struct {
	cum      *Histogram
	interval time.Duration

	mu       sync.Mutex
	bounds   []float64
	slots    []windowSlot
	cur      int       // index of the slot receiving observations
	curStart time.Time // start of the current slot's interval

	now func() time.Time // injectable clock for tests
}

// NewWindowedHistogram creates a windowed histogram over the given
// bucket bounds (nil gets DefLatencyBuckets), rotating sub-histograms
// every interval (0 gets DefWindowInterval) with enough ring capacity to
// answer windows up to maxWindow (0 gets the largest of DefWindows).
func NewWindowedHistogram(bounds []float64, interval, maxWindow time.Duration) *WindowedHistogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets()
	}
	if interval <= 0 {
		interval = DefWindowInterval
	}
	if maxWindow <= 0 {
		for _, w := range DefWindows() {
			if w > maxWindow {
				maxWindow = w
			}
		}
	}
	if maxWindow < interval {
		maxWindow = interval
	}
	// One slot per interval covering maxWindow, plus the partially filled
	// current slot.
	n := int(maxWindow/interval) + 1
	w := &WindowedHistogram{
		cum:      NewHistogram(bounds),
		interval: interval,
		bounds:   append([]float64(nil), bounds...),
		slots:    make([]windowSlot, n),
		now:      time.Now,
	}
	for i := range w.slots {
		w.slots[i].counts = make([]int64, len(bounds)+1)
	}
	return w
}

// WithClock replaces the wall clock (tests only). Call before observing.
func (w *WindowedHistogram) WithClock(now func() time.Time) *WindowedHistogram {
	w.now = now
	return w
}

// rotate advances the ring so the current slot covers the interval
// containing now. Must be called with the lock held.
func (w *WindowedHistogram) rotate(now time.Time) {
	if w.curStart.IsZero() {
		w.curStart = now.Truncate(w.interval)
		w.slots[w.cur].start = w.curStart
		return
	}
	steps := int(now.Sub(w.curStart) / w.interval)
	if steps <= 0 {
		return
	}
	if steps >= len(w.slots) {
		// The whole ring expired while idle: clear everything in one pass.
		for i := range w.slots {
			w.slots[i].reset()
		}
		w.cur = 0
		w.curStart = now.Truncate(w.interval)
		w.slots[0].start = w.curStart
		return
	}
	for s := 0; s < steps; s++ {
		w.cur = (w.cur + 1) % len(w.slots)
		w.curStart = w.curStart.Add(w.interval)
		w.slots[w.cur].reset()
		w.slots[w.cur].start = w.curStart
	}
}

func (s *windowSlot) reset() {
	s.start = time.Time{}
	s.count = 0
	s.sum = 0
	for i := range s.counts {
		s.counts[i] = 0
	}
}

// Observe records one value into both the cumulative histogram and the
// current rotation slot.
func (w *WindowedHistogram) Observe(v float64) {
	w.cum.Observe(v)
	i := sort.SearchFloat64s(w.bounds, v)
	w.mu.Lock()
	w.rotate(w.now())
	slot := &w.slots[w.cur]
	slot.counts[i]++
	slot.count++
	slot.sum += v
	w.mu.Unlock()
}

// ObserveDuration records a duration in seconds.
func (w *WindowedHistogram) ObserveDuration(d time.Duration) { w.Observe(d.Seconds()) }

// Cumulative exposes the since-boot histogram (for registry attachment).
func (w *WindowedHistogram) Cumulative() *Histogram { return w.cum }

// Interval reports the rotation interval (the window resolution).
func (w *WindowedHistogram) Interval() time.Duration { return w.interval }

// Snapshot merges the rotation slots overlapping the last `window` of
// wall time into one WindowSnapshot. Windows longer than the ring's
// capacity are clamped to it.
func (w *WindowedHistogram) Snapshot(window time.Duration) WindowSnapshot {
	if window <= 0 {
		window = w.interval
	}
	snap := WindowSnapshot{Window: window}
	merged := make([]int64, len(w.bounds)+1)

	w.mu.Lock()
	now := w.now()
	w.rotate(now)
	cutoff := now.Add(-window)
	for i := range w.slots {
		s := &w.slots[i]
		// A slot covers [start, start+interval); include it when any part
		// of that interval lies inside (cutoff, now].
		if s.start.IsZero() || !s.start.Add(w.interval).After(cutoff) {
			continue
		}
		for b, c := range s.counts {
			merged[b] += c
		}
		snap.Count += s.count
		snap.Sum += s.sum
	}
	w.mu.Unlock()

	snap.P50 = quantileFromCounts(w.bounds, merged, 0.50)
	snap.P95 = quantileFromCounts(w.bounds, merged, 0.95)
	snap.P99 = quantileFromCounts(w.bounds, merged, 0.99)
	return snap
}
