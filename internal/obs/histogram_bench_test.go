package obs

import (
	"math"
	"testing"
)

// linearBucketIndex is the pre-binary-search bucketing, kept as the
// benchmark baseline and as an oracle for the equivalence test.
func linearBucketIndex(bounds []float64, v float64) int {
	i := 0
	for i < len(bounds) && v > bounds[i] {
		i++
	}
	return i
}

// TestObserveBucketingMatchesLinearScan pins the binary-search bucketing
// to the original linear scan across boundaries, midpoints, and the
// overflow bucket.
func TestObserveBucketingMatchesLinearScan(t *testing.T) {
	bounds := DefLatencyBuckets()
	values := []float64{0, 1e-9, 1e-6, 1.5e-6, 2.5e-6, 0.01, 0.0100001, 2.5, 2.6, 1e9}
	for _, b := range bounds {
		values = append(values, b, b*0.999, b*1.001)
	}
	for _, v := range values {
		h := NewHistogram(bounds)
		h.Observe(v)
		counts := h.BucketCounts()
		want := linearBucketIndex(bounds, v)
		got := -1
		for i, c := range counts {
			if c == 1 {
				got = i
				break
			}
		}
		if got != want {
			t.Errorf("Observe(%v) landed in bucket %d, linear scan says %d", v, got, want)
		}
	}
}

// benchValues spreads observations across the whole bucket range so the
// benchmark does not favor early-exit on either implementation.
func benchValues() []float64 {
	bounds := DefLatencyBuckets()
	vs := make([]float64, 0, len(bounds)*2+2)
	for _, b := range bounds {
		vs = append(vs, b*0.9, b*1.05)
	}
	return append(vs, 5.0, 1e-9) // overflow and underflow
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(nil) // 20 finite bounds + overflow: the 21-bucket default
	vs := benchValues()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(vs[i%len(vs)])
	}
}

// BenchmarkHistogramObserveLinear measures the replaced linear-scan
// bucketing over the same value stream, so `go test -bench Observe`
// shows the two side by side on the 21-bucket default.
func BenchmarkHistogramObserveLinear(b *testing.B) {
	h := NewHistogram(nil)
	vs := benchValues()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := vs[i%len(vs)]
		// The original Observe, inlined: linear bucket scan + the same
		// atomic count/sum updates.
		j := linearBucketIndex(h.bounds, v)
		h.counts[j].Add(1)
		h.count.Add(1)
		for {
			old := h.sum.Load()
			next := math.Float64bits(math.Float64frombits(old) + v)
			if h.sum.CompareAndSwap(old, next) {
				break
			}
		}
	}
}

func BenchmarkWindowedHistogramObserve(b *testing.B) {
	w := NewWindowedHistogram(nil, DefWindowInterval, 0)
	vs := benchValues()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Observe(vs[i%len(vs)])
	}
}
