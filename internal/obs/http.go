package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
)

// maxDebugLimit bounds the ?limit= query parameter on the debug
// endpoints; larger requests are rejected rather than silently clamped.
const maxDebugLimit = 100000

// HandlerConfig names the observability state a Handler serves. Any
// field may be nil/zero to disable its endpoints.
type HandlerConfig struct {
	Registry  *Registry        // /metrics, /debug/vars
	Tracer    *Tracer          // /debug/trace
	Health    func() error     // /healthz (nil func always healthy)
	SlowLog   *SlowLog         // /debug/slow
	Journal   *Journal         // /debug/events
	Collector *Collector       // /debug/runtime
	Telemetry func() Telemetry // /debug/telemetry (the netq stats snapshot)
}

// Handler serves the observability endpoints over a registry and a
// tracer (either may be nil to disable its endpoints):
//
//	/metrics        Prometheus text exposition format
//	/debug/vars     expvar-style JSON (metrics + runtime memstats)
//	/debug/trace    recent query spans as JSON Lines
//	/debug/pprof/*  the standard runtime profiles
//
// Use NewHandler for the full endpoint set (slow-query log, event
// journal, runtime collector, telemetry snapshot).
func Handler(reg *Registry, tr *Tracer) http.Handler {
	return NewHandler(HandlerConfig{Registry: reg, Tracer: tr})
}

// HandlerWithHealth is Handler plus a /healthz endpoint. health is
// polled on every probe: nil error → 200 "ok", non-nil → 503 with the
// error text (e.g. a database degraded to read-only). A nil health func
// always reports healthy.
func HandlerWithHealth(reg *Registry, tr *Tracer, health func() error) http.Handler {
	return NewHandler(HandlerConfig{Registry: reg, Tracer: tr, Health: health})
}

// httpError answers with a JSON error document, so the debug endpoints'
// failures are as machine-readable as their successes.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"error":  fmt.Sprintf(format, args...),
		"status": code,
	})
}

// parseLimit reads an optional ?limit= parameter: a positive integer up
// to maxDebugLimit. ok is false when the parameter is present but
// malformed or out of bounds (the handler has already answered 400).
func parseLimit(w http.ResponseWriter, r *http.Request) (limit int, ok bool) {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		return 0, true
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad limit %q: not an integer", raw)
		return 0, false
	}
	if n < 1 || n > maxDebugLimit {
		httpError(w, http.StatusBadRequest, "limit %d out of bounds [1, %d]", n, maxDebugLimit)
		return 0, false
	}
	return n, true
}

func writeJSON(w http.ResponseWriter, doc any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// NewHandler builds the observability mux over the given state:
//
//	/metrics          Prometheus text exposition format
//	/healthz          liveness probe (503 while unhealthy)
//	/debug/vars       expvar-style JSON (metrics + runtime memstats)
//	/debug/trace      recent query spans (?trace=<id>, ?format=json, ?limit=N)
//	/debug/slow       captured slow operations with full spans (?limit=N, ?op=NAME)
//	/debug/events     the operational event journal (?limit=N, ?since=SEQ)
//	/debug/runtime    runtime collector time series (?limit=N)
//	/debug/telemetry  the full stats snapshot served over netq
//	/debug/pprof/*    the standard runtime profiles
func NewHandler(cfg HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	if cfg.Registry != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			cfg.Registry.WritePrometheus(w)
		})
		mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			writeJSON(w, map[string]any{
				"metrics": cfg.Registry.Export(),
				"memstats": map[string]any{
					"alloc":       ms.Alloc,
					"total_alloc": ms.TotalAlloc,
					"sys":         ms.Sys,
					"heap_alloc":  ms.HeapAlloc,
					"num_gc":      ms.NumGC,
				},
				"goroutines": runtime.NumGoroutine(),
			})
		})
	}
	if cfg.Tracer != nil {
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
			serveTrace(cfg.Tracer, w, r)
		})
	}
	if cfg.SlowLog != nil {
		mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, r *http.Request) {
			limit, ok := parseLimit(w, r)
			if !ok {
				return
			}
			op := r.URL.Query().Get("op")
			doc := map[string]any{
				"threshold_ns": cfg.SlowLog.Threshold(),
				"captured":     cfg.SlowLog.Captured(),
				"entries":      cfg.SlowLog.RecentOp(op, limit),
			}
			if op != "" {
				doc["op"] = op
			}
			writeJSON(w, doc)
		})
	}
	if cfg.Journal != nil {
		mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
			limit, ok := parseLimit(w, r)
			if !ok {
				return
			}
			doc := map[string]any{
				"total":   cfg.Journal.Total(),
				"by_type": cfg.Journal.CountsByType(),
			}
			if raw := r.URL.Query().Get("since"); raw != "" {
				seq, err := strconv.ParseUint(raw, 10, 64)
				if err != nil {
					httpError(w, http.StatusBadRequest, "bad since %q: not a sequence number", raw)
					return
				}
				es := cfg.Journal.Since(seq)
				if limit > 0 && len(es) > limit {
					es = es[:limit]
				}
				doc["events"] = es
			} else {
				doc["events"] = cfg.Journal.Recent(limit)
			}
			writeJSON(w, doc)
		})
	}
	if cfg.Collector != nil {
		mux.HandleFunc("/debug/runtime", func(w http.ResponseWriter, r *http.Request) {
			limit, ok := parseLimit(w, r)
			if !ok {
				return
			}
			samples := cfg.Collector.Samples()
			if limit > 0 && len(samples) > limit {
				samples = samples[len(samples)-limit:]
			}
			doc := map[string]any{
				"interval_ns": cfg.Collector.Interval(),
				"samples":     samples,
			}
			if latest, ok := cfg.Collector.Latest(); ok {
				doc["latest"] = latest
			}
			writeJSON(w, doc)
		})
	}
	if cfg.Telemetry != nil {
		mux.HandleFunc("/debug/telemetry", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, cfg.Telemetry())
		})
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if cfg.Health != nil {
			if err := cfg.Health(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				w.Write([]byte(err.Error() + "\n"))
				return
			}
		}
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveTrace answers /debug/trace:
//
//	/debug/trace               recent spans as JSON Lines (?limit=N)
//	/debug/trace?trace=<id>    one correlated trace as a JSON doc
//	/debug/trace?format=json   all buffered spans grouped by trace
//
// A malformed trace id is a 400; a well-formed id with no buffered spans
// is a 404 — never an empty 200 that reads like a healthy-but-idle
// server.
func serveTrace(tr *Tracer, w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("trace"); id != "" {
		if _, err := ParseTraceID(id); err != nil {
			httpError(w, http.StatusBadRequest, "malformed trace id: %v", err)
			return
		}
		spans := tr.Trace(id)
		if len(spans) == 0 {
			httpError(w, http.StatusNotFound, "trace %s: no buffered spans (expired from the ring or never seen)", id)
			return
		}
		writeJSON(w, TraceDoc{TraceID: id, Spans: spans})
		return
	}
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, tr.Traces())
		return
	}
	limit, ok := parseLimit(w, r)
	if !ok {
		return
	}
	spans := tr.Recent()
	if limit > 0 && len(spans) > limit {
		spans = spans[len(spans)-limit:]
	}
	w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	enc := json.NewEncoder(w)
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return
		}
	}
}
