package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"runtime"
)

// Handler serves the observability endpoints over a registry and a
// tracer (either may be nil to disable its endpoints):
//
//	/metrics        Prometheus text exposition format
//	/debug/vars     expvar-style JSON (metrics + runtime memstats)
//	/debug/trace    recent query spans as JSON Lines
//	/debug/pprof/*  the standard runtime profiles
func Handler(reg *Registry, tr *Tracer) http.Handler {
	return HandlerWithHealth(reg, tr, nil)
}

// HandlerWithHealth is Handler plus a /healthz endpoint. health is
// polled on every probe: nil error → 200 "ok", non-nil → 503 with the
// error text (e.g. a database degraded to read-only). A nil health func
// always reports healthy.
func HandlerWithHealth(reg *Registry, tr *Tracer, health func() error) http.Handler {
	mux := newHandlerMux(reg, tr)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if health != nil {
			if err := health(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				w.Write([]byte(err.Error() + "\n"))
				return
			}
		}
		w.Write([]byte("ok\n"))
	})
	return mux
}

func newHandlerMux(reg *Registry, tr *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w)
		})
		mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			doc := map[string]any{
				"metrics": reg.Export(),
				"memstats": map[string]any{
					"alloc":       ms.Alloc,
					"total_alloc": ms.TotalAlloc,
					"sys":         ms.Sys,
					"heap_alloc":  ms.HeapAlloc,
					"num_gc":      ms.NumGC,
				},
				"goroutines": runtime.NumGoroutine(),
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(doc)
		})
	}
	if tr != nil {
		// /debug/trace               recent spans as JSON Lines
		// /debug/trace?trace=<id>    one correlated trace as a JSON doc
		// /debug/trace?format=json   all buffered spans grouped by trace
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
			if id := r.URL.Query().Get("trace"); id != "" {
				w.Header().Set("Content-Type", "application/json; charset=utf-8")
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				enc.Encode(TraceDoc{TraceID: id, Spans: tr.Trace(id)})
				return
			}
			if r.URL.Query().Get("format") == "json" {
				w.Header().Set("Content-Type", "application/json; charset=utf-8")
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				enc.Encode(tr.Traces())
				return
			}
			w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
			tr.WriteJSONL(w)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
