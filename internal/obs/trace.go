package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"dynq/internal/stats"
)

// StageDelta is the portion of an operation's cost attributable to one
// stage of the stack. Read stages carry counter deltas (pager, rtree,
// engine); write stages carry wall-time attribution instead (validate,
// wal-append, fsync-wait, tree-apply).
type StageDelta struct {
	Stage  string         `json:"stage"`
	WallNS int64          `json:"wall_ns,omitempty"`
	Delta  stats.Snapshot `json:"delta"`
}

// TimedStage builds a stage delta attributing wall time to one stage of
// a write's pipeline.
func TimedStage(stage string, d time.Duration) StageDelta {
	return StageDelta{Stage: stage, WallNS: d.Nanoseconds()}
}

// Stages decomposes a per-query stats.Snapshot delta into the pipeline's
// stages: the pager (buffer hits, page writes), the R-tree (node reads by
// level), and the engine that issued the traversal (distance
// computations, pruned nodes, answers). engine names the top stage, e.g.
// "pdq", "npdq", "snapshot", "knn".
func Stages(delta stats.Snapshot, engine string) []StageDelta {
	return []StageDelta{
		{Stage: "pager", Delta: stats.Snapshot{
			BufferHits: delta.BufferHits,
			PageWrites: delta.PageWrites,
		}},
		{Stage: "rtree", Delta: stats.Snapshot{
			InternalReads: delta.InternalReads,
			LeafReads:     delta.LeafReads,
		}},
		{Stage: engine, Delta: stats.Snapshot{
			DistanceComps: delta.DistanceComps,
			PrunedNodes:   delta.PrunedNodes,
			Results:       delta.Results,
		}},
	}
}

// Span is one traced query: the operation, its view window, the wall
// time, and the per-stage cost deltas measured around its evaluation.
// The TraceID/SpanID/ParentID triple correlates spans of one logical
// operation across processes and shards (see TraceContext); Shard is the
// partition index for per-shard child spans and -1 (or absent on older
// spans) for spans covering the whole operation.
type Span struct {
	ID       uint64       `json:"id"`
	TraceID  string       `json:"trace_id,omitempty"`
	SpanID   string       `json:"span_id,omitempty"`
	ParentID string       `json:"parent_id,omitempty"`
	Shard    int          `json:"shard"`
	Op       string       `json:"op"`
	Start    time.Time    `json:"start"`
	WallNS   int64        `json:"wall_ns"`
	ViewMin  []float64    `json:"view_min,omitempty"`
	ViewMax  []float64    `json:"view_max,omitempty"`
	T0       float64      `json:"t0"`
	T1       float64      `json:"t1"`
	Results  int          `json:"results"`
	Err      string       `json:"err,omitempty"`
	Stages   []StageDelta `json:"stages,omitempty"`
}

// NoShard is the Span.Shard value of a span that covers the whole
// operation rather than one partition.
const NoShard = -1

// Tracer ring-buffers the most recent query spans. Record is cheap (one
// mutexed slot write); dump the buffer with Recent or WriteJSONL.
type Tracer struct {
	mu   sync.Mutex
	ring []Span
	next uint64 // total spans ever recorded; also the next span id
}

// NewTracer creates a tracer keeping the last capacity spans (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Span, capacity)}
}

// Record stores a span, assigning it the next id. It returns the id.
func (t *Tracer) Record(s Span) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	s.ID = t.next
	t.ring[t.next%uint64(len(t.ring))] = s
	t.next++
	return s.ID
}

// Len reports the number of spans currently buffered.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next < uint64(len(t.ring)) {
		return int(t.next)
	}
	return len(t.ring)
}

// Recent returns the buffered spans, oldest first.
func (t *Tracer) Recent() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.ring))
	start := uint64(0)
	count := t.next
	if t.next > n {
		start = t.next - n
		count = n
	}
	out := make([]Span, 0, count)
	for i := start; i < t.next; i++ {
		out = append(out, t.ring[i%n])
	}
	return out
}

// Trace returns the buffered spans belonging to one trace id, oldest
// first.
func (t *Tracer) Trace(traceID string) []Span {
	var out []Span
	for _, s := range t.Recent() {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	return out
}

// TraceDoc is the correlated-JSON export of one trace: every buffered
// span sharing a trace id, oldest first.
type TraceDoc struct {
	TraceID string `json:"trace_id"`
	Spans   []Span `json:"spans"`
}

// Traces groups the buffered spans by trace id, in order of each trace's
// oldest span. Spans recorded without a trace id are grouped under "".
func (t *Tracer) Traces() []TraceDoc {
	var docs []TraceDoc
	index := make(map[string]int)
	for _, s := range t.Recent() {
		i, ok := index[s.TraceID]
		if !ok {
			i = len(docs)
			index[s.TraceID] = i
			docs = append(docs, TraceDoc{TraceID: s.TraceID})
		}
		docs[i].Spans = append(docs[i].Spans, s)
	}
	return docs
}

// WriteJSONL dumps the buffered spans as JSON Lines, oldest first.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range t.Recent() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}
