package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// BuildInfo reports the Go toolchain version and the VCS revision the
// binary was built from ("unknown" when the build carries no VCS stamp,
// e.g. go test binaries or plain `go build` outside a checkout).
func BuildInfo() (goVersion, revision string) {
	goVersion = runtime.Version()
	revision = "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return goVersion, revision
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			revision = s.Value
		}
	}
	return goVersion, revision
}

// RegisterBuildInfo adds the standard build-identity gauges to a
// registry: dynq_build_info (constant 1, carrying the Go version and git
// revision as labels, the Prometheus idiom for build metadata) and
// dynq_uptime_seconds (seconds since registration).
func RegisterBuildInfo(reg *Registry) {
	goVersion, revision := BuildInfo()
	start := time.Now()
	reg.SetHelp("dynq_build_info", "Build identity: constant 1 with go_version and revision labels.")
	reg.SetHelp("dynq_uptime_seconds", "Seconds since the process registered its metrics.")
	reg.GaugeFunc("dynq_build_info", func() float64 { return 1 },
		L("go_version", goVersion), L("revision", revision))
	reg.GaugeFunc("dynq_uptime_seconds", func() float64 { return time.Since(start).Seconds() })
}
