package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total").Add(5)
	tr := NewTracer(4)
	tr.Record(Span{Op: "snapshot"})

	hs := httptest.NewServer(Handler(reg, tr))
	defer hs.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, "requests_total 5") {
		t.Errorf("/metrics: %d %q", code, body)
	}
	code, body = get("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars: %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := doc["metrics"]; !ok {
		t.Error("/debug/vars missing metrics")
	}
	if _, ok := doc["memstats"]; !ok {
		t.Error("/debug/vars missing memstats")
	}
	code, body = get("/debug/trace")
	if code != 200 || !strings.Contains(body, `"op":"snapshot"`) {
		t.Errorf("/debug/trace: %d %q", code, body)
	}
	tc := NewTraceContext()
	var traced Span
	tc.Annotate(&traced)
	traced.Op = "knn"
	tr.Record(traced)
	code, body = get("/debug/trace?trace=" + tc.TraceID.String())
	if code != 200 {
		t.Fatalf("/debug/trace?trace=: %d", code)
	}
	var td TraceDoc
	if err := json.Unmarshal([]byte(body), &td); err != nil {
		t.Fatalf("correlated trace not JSON: %v", err)
	}
	if td.TraceID != tc.TraceID.String() || len(td.Spans) != 1 || td.Spans[0].Op != "knn" {
		t.Errorf("correlated trace = %+v", td)
	}
	code, body = get("/debug/trace?format=json")
	var docs []TraceDoc
	if code != 200 || json.Unmarshal([]byte(body), &docs) != nil || len(docs) != 2 {
		t.Errorf("/debug/trace?format=json: %d %q", code, body)
	}
	code, _ = get("/debug/pprof/cmdline")
	if code != 200 {
		t.Errorf("/debug/pprof/cmdline: %d", code)
	}
	code, _ = get("/debug/pprof/")
	if code != 200 {
		t.Errorf("/debug/pprof/ index: %d", code)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	var unhealthy error
	hs := httptest.NewServer(HandlerWithHealth(NewRegistry(), nil, func() error { return unhealthy }))
	defer hs.Close()

	get := func() (int, string) {
		t.Helper()
		resp, err := http.Get(hs.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get()
	if code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("healthy probe: %d %q", code, body)
	}
	unhealthy = errors.New("database degraded to read-only")
	code, body = get()
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "read-only") {
		t.Errorf("unhealthy probe: %d %q", code, body)
	}
	unhealthy = nil
	if code, _ := get(); code != 200 {
		t.Errorf("recovered probe: %d", code)
	}

	// The plain Handler wires no health func: the probe always says ok.
	plain := httptest.NewServer(Handler(NewRegistry(), nil))
	defer plain.Close()
	resp, err := http.Get(plain.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("plain Handler /healthz: %d (HandlerWithHealth(nil) semantics: always ok)", resp.StatusCode)
	}
}
