package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"

	"dynq/internal/stats"
)

func TestTracerRingBuffer(t *testing.T) {
	tr := NewTracer(2)
	tr.Record(Span{Op: "a"})
	tr.Record(Span{Op: "b"})
	tr.Record(Span{Op: "c"})
	got := tr.Recent()
	if len(got) != 2 || got[0].Op != "b" || got[1].Op != "c" {
		t.Fatalf("recent = %+v", got)
	}
	if got[0].ID != 1 || got[1].ID != 2 {
		t.Errorf("ids = %d, %d; want 1, 2", got[0].ID, got[1].ID)
	}
	if tr.Len() != 2 {
		t.Errorf("len = %d", tr.Len())
	}
}

func TestTracerWriteJSONL(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Span{Op: "npdq", Results: 3, Stages: Stages(stats.Snapshot{
		LeafReads: 4, InternalReads: 2, DistanceComps: 10, Results: 3, PrunedNodes: 1,
	}, "npdq")})
	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	lines := 0
	for sc.Scan() {
		lines++
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if s.Op != "npdq" || len(s.Stages) != 3 {
			t.Errorf("span = %+v", s)
		}
	}
	if lines != 1 {
		t.Errorf("lines = %d", lines)
	}
}

func TestStagesDecomposition(t *testing.T) {
	delta := stats.Snapshot{
		InternalReads: 2, LeafReads: 5, DistanceComps: 30,
		Results: 7, BufferHits: 3, PageWrites: 1, PrunedNodes: 4,
	}
	st := Stages(delta, "pdq")
	if len(st) != 3 {
		t.Fatalf("stages = %d", len(st))
	}
	if st[0].Stage != "pager" || st[0].Delta.BufferHits != 3 || st[0].Delta.PageWrites != 1 {
		t.Errorf("pager stage = %+v", st[0])
	}
	if st[1].Stage != "rtree" || st[1].Delta.Reads() != 7 {
		t.Errorf("rtree stage = %+v", st[1])
	}
	if st[2].Stage != "pdq" || st[2].Delta.DistanceComps != 30 || st[2].Delta.PrunedNodes != 4 || st[2].Delta.Results != 7 {
		t.Errorf("engine stage = %+v", st[2])
	}
	// The stages partition the delta: summing them restores it.
	var sum stats.Snapshot
	for _, s := range st {
		sum = sum.Add(s.Delta)
	}
	if sum != delta {
		t.Errorf("stage sum %+v != delta %+v", sum, delta)
	}
}
