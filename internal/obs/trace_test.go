package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"

	"dynq/internal/stats"
)

func TestTracerRingBuffer(t *testing.T) {
	tr := NewTracer(2)
	tr.Record(Span{Op: "a"})
	tr.Record(Span{Op: "b"})
	tr.Record(Span{Op: "c"})
	got := tr.Recent()
	if len(got) != 2 || got[0].Op != "b" || got[1].Op != "c" {
		t.Fatalf("recent = %+v", got)
	}
	if got[0].ID != 1 || got[1].ID != 2 {
		t.Errorf("ids = %d, %d; want 1, 2", got[0].ID, got[1].ID)
	}
	if tr.Len() != 2 {
		t.Errorf("len = %d", tr.Len())
	}
}

func TestTracerWriteJSONL(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Span{Op: "npdq", Results: 3, Stages: Stages(stats.Snapshot{
		LeafReads: 4, InternalReads: 2, DistanceComps: 10, Results: 3, PrunedNodes: 1,
	}, "npdq")})
	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	lines := 0
	for sc.Scan() {
		lines++
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if s.Op != "npdq" || len(s.Stages) != 3 {
			t.Errorf("span = %+v", s)
		}
	}
	if lines != 1 {
		t.Errorf("lines = %d", lines)
	}
}

func TestTracerTraceFilterAndGrouping(t *testing.T) {
	tr := NewTracer(16)
	a, b := NewTraceContext(), NewTraceContext()
	for i, tc := range []TraceContext{a, a.Child(), b, a.Child()} {
		var s Span
		tc.Annotate(&s)
		s.Op = "op"
		s.Shard = i - 1 // exercise both NoShard and shard indexes
		tr.Record(s)
	}
	tr.Record(Span{Op: "untraced", Shard: NoShard})

	got := tr.Trace(a.TraceID.String())
	if len(got) != 3 {
		t.Fatalf("Trace(a) = %d spans, want 3", len(got))
	}
	for _, s := range got[1:] {
		if s.ParentID != a.SpanID.String() {
			t.Errorf("child parent = %q, want %s", s.ParentID, a.SpanID)
		}
	}

	docs := tr.Traces()
	if len(docs) != 3 { // a, b, and the untraced group ""
		t.Fatalf("Traces() = %d groups, want 3", len(docs))
	}
	if docs[0].TraceID != a.TraceID.String() || len(docs[0].Spans) != 3 {
		t.Errorf("group 0 = %s with %d spans", docs[0].TraceID, len(docs[0].Spans))
	}
	if docs[2].TraceID != "" || docs[2].Spans[0].Op != "untraced" {
		t.Errorf("untraced group = %+v", docs[2])
	}

	// The correlated document round-trips through encoding/json.
	raw, err := json.Marshal(docs[0])
	if err != nil {
		t.Fatal(err)
	}
	var back TraceDoc
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.TraceID != docs[0].TraceID || len(back.Spans) != 3 || back.Spans[1].Shard != 0 {
		t.Errorf("round trip = %+v", back)
	}
}

func TestStagesDecomposition(t *testing.T) {
	delta := stats.Snapshot{
		InternalReads: 2, LeafReads: 5, DistanceComps: 30,
		Results: 7, BufferHits: 3, PageWrites: 1, PrunedNodes: 4,
	}
	st := Stages(delta, "pdq")
	if len(st) != 3 {
		t.Fatalf("stages = %d", len(st))
	}
	if st[0].Stage != "pager" || st[0].Delta.BufferHits != 3 || st[0].Delta.PageWrites != 1 {
		t.Errorf("pager stage = %+v", st[0])
	}
	if st[1].Stage != "rtree" || st[1].Delta.Reads() != 7 {
		t.Errorf("rtree stage = %+v", st[1])
	}
	if st[2].Stage != "pdq" || st[2].Delta.DistanceComps != 30 || st[2].Delta.PrunedNodes != 4 || st[2].Delta.Results != 7 {
		t.Errorf("engine stage = %+v", st[2])
	}
	// The stages partition the delta: summing them restores it.
	var sum stats.Snapshot
	for _, s := range st {
		sum = sum.Add(s.Delta)
	}
	if sum != delta {
		t.Errorf("stage sum %+v != delta %+v", sum, delta)
	}
}
