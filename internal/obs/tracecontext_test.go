package obs

import (
	"context"
	"testing"
)

func TestNewTraceContextUnique(t *testing.T) {
	a, b := NewTraceContext(), NewTraceContext()
	if a.TraceID.IsZero() || a.SpanID.IsZero() {
		t.Fatalf("new context has zero ids: %+v", a)
	}
	if a.TraceID == b.TraceID {
		t.Errorf("two new contexts share a trace id %s", a.TraceID)
	}
	if !a.Parent.IsZero() {
		t.Errorf("root context has a parent: %s", a.Parent)
	}
}

func TestChildKeepsTraceParentsSpan(t *testing.T) {
	root := NewTraceContext()
	child := root.Child()
	if child.TraceID != root.TraceID {
		t.Errorf("child trace id %s != root %s", child.TraceID, root.TraceID)
	}
	if child.Parent != root.SpanID {
		t.Errorf("child parent %s != root span %s", child.Parent, root.SpanID)
	}
	if child.SpanID == root.SpanID || child.SpanID.IsZero() {
		t.Errorf("child span id not fresh: %s", child.SpanID)
	}
}

func TestIDParseRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	tid, err := ParseTraceID(tc.TraceID.String())
	if err != nil || tid != tc.TraceID {
		t.Errorf("trace id round trip: %v %v", tid, err)
	}
	sid, err := ParseSpanID(tc.SpanID.String())
	if err != nil || sid != tc.SpanID {
		t.Errorf("span id round trip: %v %v", sid, err)
	}
	if _, err := ParseTraceID("xyz"); err == nil {
		t.Error("ParseTraceID accepted garbage")
	}
	if _, err := ParseSpanID("0123456789abcdefff"); err == nil {
		t.Error("ParseSpanID accepted wrong length")
	}
}

func TestContinueTrace(t *testing.T) {
	remote := NewTraceContext()
	tc, ok := ContinueTrace(remote.TraceID.String(), remote.SpanID.String())
	if !ok {
		t.Fatal("ContinueTrace rejected a valid wire header")
	}
	if tc.TraceID != remote.TraceID {
		t.Errorf("continued trace id %s != remote %s", tc.TraceID, remote.TraceID)
	}
	if tc.Parent != remote.SpanID {
		t.Errorf("continued parent %s != remote span %s", tc.Parent, remote.SpanID)
	}
	if tc.SpanID == remote.SpanID || tc.SpanID.IsZero() {
		t.Errorf("continued span id not fresh: %s", tc.SpanID)
	}

	// A malformed or absent header starts a fresh root trace instead.
	fresh, ok := ContinueTrace("", "")
	if ok {
		t.Error("ContinueTrace accepted an empty header")
	}
	if fresh.IsZero() || !fresh.Parent.IsZero() {
		t.Errorf("fallback context not a fresh root: %+v", fresh)
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if _, ok := TraceFromContext(ctx); ok {
		t.Error("empty context yielded a trace")
	}
	if _, ok := TracerFromContext(ctx); ok {
		t.Error("empty context yielded a tracer")
	}
	tc := NewTraceContext()
	tr := NewTracer(4)
	ctx = ContextWithTracer(ContextWithTrace(ctx, tc), tr)
	got, ok := TraceFromContext(ctx)
	if !ok || got != tc {
		t.Errorf("TraceFromContext = %+v, %v", got, ok)
	}
	gotTr, ok := TracerFromContext(ctx)
	if !ok || gotTr != tr {
		t.Errorf("TracerFromContext = %p, %v", gotTr, ok)
	}
}

func TestAnnotate(t *testing.T) {
	var s Span
	TraceContext{}.Annotate(&s)
	if s.TraceID != "" || s.SpanID != "" || s.ParentID != "" {
		t.Errorf("zero context annotated a span: %+v", s)
	}
	root := NewTraceContext()
	root.Annotate(&s)
	if s.TraceID != root.TraceID.String() || s.SpanID != root.SpanID.String() {
		t.Errorf("annotated span ids wrong: %+v", s)
	}
	if s.ParentID != "" {
		t.Errorf("root span has parent %q", s.ParentID)
	}
	var child Span
	root.Child().Annotate(&child)
	if child.ParentID != root.SpanID.String() {
		t.Errorf("child parent = %q, want %s", child.ParentID, root.SpanID)
	}
}
