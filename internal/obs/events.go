package obs

import (
	"sync"
	"time"
)

// EventType classifies an operational event in the journal.
type EventType string

// Known event types. Components append to this set freely; the journal
// itself is type-agnostic.
const (
	EventRecovery        EventType = "recovery"         // open-time recovery completed
	EventDegradedEnter   EventType = "degraded_enter"   // database entered read-only mode
	EventDegradedExit    EventType = "degraded_exit"    // database left read-only mode
	EventOverloadBurst   EventType = "overload_burst"   // admission control rejecting reads
	EventChecksumFailure EventType = "checksum_failure" // page checksum mismatch on read
	EventServerStart     EventType = "server_start"     // netq server began serving
	EventServerStop      EventType = "server_stop"      // netq server shut down
	EventWALReplay       EventType = "wal_replay"       // open-time WAL replay re-applied records
	EventSyncFailure     EventType = "sync_failure"     // checkpoint sync failed with a WAL armed
	EventCheckpoint      EventType = "checkpoint"       // Sync checkpointed and truncated the WAL
	EventAutoCheckpoint  EventType = "auto_checkpoint"  // maintenance loop checkpointed on policy
	EventProbe           EventType = "probe"            // degraded-mode recovery probe attempted
	EventScrub           EventType = "scrub"            // background scrub pass completed or found corruption
)

// Event severities.
const (
	SeverityInfo  = "info"
	SeverityWarn  = "warn"
	SeverityError = "error"
)

// Event is one operational occurrence worth a queryable record: a
// recovery report, a degraded-mode flip, an overload burst, a checksum
// failure. Seq increases monotonically per journal and never repeats,
// so pollers can resume from the last Seq they saw.
type Event struct {
	Seq      uint64            `json:"seq"`
	Time     time.Time         `json:"time"`
	Type     EventType         `json:"type"`
	Severity string            `json:"severity"`
	Message  string            `json:"message"`
	Fields   map[string]string `json:"fields,omitempty"`
}

// Journal is a typed, bounded ring of operational events. Record is
// cheap (one mutexed slot write); readers get snapshots. Safe for
// concurrent use.
type Journal struct {
	mu     sync.Mutex
	ring   []Event
	next   uint64 // total events ever recorded; also the next seq
	byType map[EventType]int64
	now    func() time.Time
}

// DefaultJournalCapacity bounds the process-wide journal.
const DefaultJournalCapacity = 1024

// defaultJournal is the process-wide journal: layers without their own
// plumbing (the pager's checksum verification, the database's degraded
// flag) record here, and servers serve it.
var defaultJournal = NewJournal(DefaultJournalCapacity)

// DefaultJournal returns the process-wide event journal.
func DefaultJournal() *Journal { return defaultJournal }

// NewJournal creates a journal keeping the last capacity events
// (minimum 1).
func NewJournal(capacity int) *Journal {
	if capacity < 1 {
		capacity = 1
	}
	return &Journal{
		ring:   make([]Event, capacity),
		byType: make(map[EventType]int64),
		now:    time.Now,
	}
}

// WithClock replaces the wall clock (tests only). Call before recording.
func (j *Journal) WithClock(now func() time.Time) *Journal {
	j.now = now
	return j
}

// Record appends an event, stamping its time and sequence number, and
// returns the assigned seq. fields may be nil.
func (j *Journal) Record(typ EventType, severity, message string, fields map[string]string) uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	e := Event{
		Seq:      j.next,
		Time:     j.now(),
		Type:     typ,
		Severity: severity,
		Message:  message,
		Fields:   fields,
	}
	j.ring[j.next%uint64(len(j.ring))] = e
	j.next++
	j.byType[typ]++
	return e.Seq
}

// Total reports the number of events ever recorded (the next seq).
func (j *Journal) Total() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// CountsByType snapshots the per-type totals (including events that have
// rotated out of the ring).
func (j *Journal) CountsByType() map[EventType]int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[EventType]int64, len(j.byType))
	for k, v := range j.byType {
		out[k] = v
	}
	return out
}

// Recent returns up to limit buffered events, newest first (limit <= 0
// means all buffered).
func (j *Journal) Recent(limit int) []Event {
	es := j.Since(0)
	// Since returns oldest first; flip to newest first and cap.
	for i, k := 0, len(es)-1; i < k; i, k = i+1, k-1 {
		es[i], es[k] = es[k], es[i]
	}
	if limit > 0 && len(es) > limit {
		es = es[:limit]
	}
	return es
}

// Since returns the buffered events with Seq >= seq, oldest first.
// Events older than the ring's capacity are gone; callers polling with
// a resume seq can detect loss by comparing the first returned Seq.
func (j *Journal) Since(seq uint64) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := uint64(len(j.ring))
	start := uint64(0)
	if j.next > n {
		start = j.next - n
	}
	if seq > start {
		start = seq
	}
	var out []Event
	for i := start; i < j.next; i++ {
		out = append(out, j.ring[i%n])
	}
	return out
}
