package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefLatencyBuckets are the default upper bounds (in seconds) for request
// latency histograms. They span 1 µs to 2.5 s, bracketing everything from
// an in-memory node visit to a cold full-index scan.
func DefLatencyBuckets() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
	}
}

// Histogram counts observations into fixed buckets with the given upper
// bounds (an implicit +Inf bucket catches the overflow). Observe is
// lock-free and safe for concurrent use; quantiles are extracted by
// linear interpolation inside the bucket that contains the requested
// rank.
type Histogram struct {
	bounds []float64      // sorted inclusive upper bounds
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram creates a histogram over the given bucket upper bounds,
// which must be sorted ascending. An empty slice gets DefLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets()
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; values past the last bound
	// land in the implicit +Inf bucket at index len(bounds).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the bucket upper bounds (shared; do not modify).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns a snapshot of the per-bucket (non-cumulative)
// counts; the last element is the +Inf overflow bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 < q ≤ 1) by locating the bucket
// holding the rank ⌈q·count⌉ and interpolating linearly between the
// bucket's bounds. Observations in the +Inf bucket clamp to the largest
// finite bound. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	return quantileFromCounts(h.bounds, h.BucketCounts(), q)
}

// quantileFromCounts extracts the q-quantile from a per-bucket count
// snapshot over the given bounds (last count is the +Inf bucket), using
// the same interpolation as Histogram.Quantile. It is shared with
// WindowedHistogram, whose rolling windows are merged count snapshots.
func quantileFromCounts(bounds []float64, counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i == len(bounds) { // +Inf bucket: no upper bound to lerp to
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum)) / float64(c)
		return lo + frac*(hi-lo)
	}
	return bounds[len(bounds)-1]
}
