package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutable clock for driving window rotation in tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestWindowedHistogramRollingDivergesFromCumulative(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowedHistogram(nil, 10*time.Second, time.Minute).WithClock(clk.Now)

	// A burst of slow observations, then a quiet interval, then fast ones.
	for i := 0; i < 100; i++ {
		w.Observe(1.0) // 1s — lands in an old slot
	}
	clk.Advance(2 * time.Minute) // slow burst ages out of the 1m window
	for i := 0; i < 100; i++ {
		w.Observe(0.001) // 1ms — recent
	}

	cum := w.Cumulative()
	if got := cum.Count(); got != 200 {
		t.Fatalf("cumulative count = %d, want 200", got)
	}
	if p99 := cum.Quantile(0.99); p99 < 0.5 {
		t.Errorf("cumulative p99 = %v, want >= 0.5 (half the observations were 1s)", p99)
	}
	snap := w.Snapshot(time.Minute)
	if snap.Count != 100 {
		t.Errorf("1m window count = %d, want 100 (slow burst aged out)", snap.Count)
	}
	if snap.P99 > 0.01 {
		t.Errorf("1m window p99 = %v, want <= 0.01 (only 1ms observations remain)", snap.P99)
	}
}

func TestWindowedHistogramRotationClearsExpiredSlots(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowedHistogram(nil, time.Second, 5*time.Second).WithClock(clk.Now)

	w.Observe(0.5)
	if got := w.Snapshot(5 * time.Second).Count; got != 1 {
		t.Fatalf("count after observe = %d, want 1", got)
	}
	// Step just past the window: the observation expires.
	clk.Advance(7 * time.Second)
	if got := w.Snapshot(5 * time.Second).Count; got != 0 {
		t.Errorf("count after expiry = %d, want 0", got)
	}
	// A very long idle gap (more than the whole ring) must clear cleanly.
	w.Observe(0.25)
	clk.Advance(time.Hour)
	if got := w.Snapshot(5 * time.Second).Count; got != 0 {
		t.Errorf("count after long idle = %d, want 0", got)
	}
	w.Observe(0.125)
	snap := w.Snapshot(5 * time.Second)
	if snap.Count != 1 || snap.Sum != 0.125 {
		t.Errorf("fresh slot after long idle = %+v, want count 1 sum 0.125", snap)
	}
	// Cumulative never forgets.
	if got := w.Cumulative().Count(); got != 3 {
		t.Errorf("cumulative count = %d, want 3", got)
	}
}

func TestWindowedHistogramPartialWindow(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowedHistogram(nil, 10*time.Second, 5*time.Minute).WithClock(clk.Now)

	for i := 0; i < 60; i++ {
		w.Observe(0.002)
		clk.Advance(time.Second)
	}
	// 60 observations over 60s: the 1m window sees (approximately) all of
	// them, the 5m window exactly all.
	if got := w.Snapshot(5 * time.Minute).Count; got != 60 {
		t.Errorf("5m count = %d, want 60", got)
	}
	oneMin := w.Snapshot(time.Minute).Count
	if oneMin < 50 || oneMin > 60 {
		t.Errorf("1m count = %d, want within [50, 60] (slot-resolution approximation)", oneMin)
	}
}

func TestWindowedHistogramConcurrent(t *testing.T) {
	w := NewWindowedHistogram(nil, time.Millisecond, 50*time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				w.Observe(float64(i%100) / 1000)
				if i%100 == 0 {
					w.Snapshot(10 * time.Millisecond)
					w.Snapshot(50 * time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := w.Cumulative().Count(); got != 16000 {
		t.Errorf("cumulative count = %d, want 16000", got)
	}
}

func TestSLOTrackerAttainmentAndBurn(t *testing.T) {
	clk := newFakeClock()
	tr := NewSLOTracker(SLOConfig{
		Window:                time.Minute,
		Interval:              time.Second,
		AvailabilityObjective: 0.99,
		LatencyTarget:         100 * time.Millisecond,
		LatencyObjective:      0.90,
	}).WithClock(clk.Now)

	// 100 requests: 2 errors, 20 slow successes, 78 fast successes.
	for i := 0; i < 78; i++ {
		tr.Record("snapshot", 10*time.Millisecond, false)
	}
	for i := 0; i < 20; i++ {
		tr.Record("snapshot", 500*time.Millisecond, false)
	}
	for i := 0; i < 2; i++ {
		tr.Record("snapshot", 10*time.Millisecond, true)
	}
	sts := tr.Status()
	if len(sts) != 1 {
		t.Fatalf("status count = %d, want 1", len(sts))
	}
	st := sts[0]
	if st.Total != 100 || st.Errors != 2 || st.Slow != 20 {
		t.Fatalf("counts = total %d errors %d slow %d, want 100/2/20", st.Total, st.Errors, st.Slow)
	}
	if got, want := st.Availability, 0.98; !closeTo(got, want) {
		t.Errorf("availability = %v, want %v", got, want)
	}
	if got, want := st.LatencyAttainment, 0.78; !closeTo(got, want) {
		t.Errorf("latency attainment = %v, want %v", got, want)
	}
	// Availability budget is 1%, observed error rate 2%: burn = 2.
	if got, want := st.AvailabilityBurn, 2.0; !closeTo(got, want) {
		t.Errorf("availability burn = %v, want %v", got, want)
	}
	// Latency budget is 10%, observed bad rate 22%: burn = 2.2.
	if got, want := st.LatencyBurn, 2.2; !closeTo(got, want) {
		t.Errorf("latency burn = %v, want %v", got, want)
	}
	if st.Met {
		t.Error("Met = true with both objectives missed")
	}

	// The bad minute ages out; a healthy minute follows.
	clk.Advance(2 * time.Minute)
	for i := 0; i < 50; i++ {
		tr.Record("snapshot", 5*time.Millisecond, false)
	}
	st = tr.Status()[0]
	if st.Total != 50 || st.Errors != 0 || st.Slow != 0 || !st.Met {
		t.Errorf("recovered window = %+v, want 50 clean requests with objectives met", st)
	}
	if st.AvailabilityBurn != 0 || st.LatencyBurn != 0 {
		t.Errorf("recovered burn rates = %v/%v, want 0/0", st.AvailabilityBurn, st.LatencyBurn)
	}
}

func TestSLOTrackerNoTraffic(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{})
	if sts := tr.Status(); len(sts) != 0 {
		t.Errorf("status with no traffic = %v, want empty", sts)
	}
	tr.Record("knn", time.Millisecond, false)
	st := tr.Status()[0]
	if !st.Met || st.Total != 1 {
		t.Errorf("single clean request: %+v, want met with total 1", st)
	}
}

func TestSLOTrackerConcurrent(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{Window: time.Second, Interval: 10 * time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ops := []string{"snapshot", "knn", "pdq-fetch"}
			for i := 0; i < 1000; i++ {
				tr.Record(ops[i%len(ops)], time.Duration(i%200)*time.Millisecond, i%97 == 0)
				if i%250 == 0 {
					tr.Status()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := len(tr.Status()); got != 3 {
		t.Errorf("tracked ops = %d, want 3", got)
	}
}

func closeTo(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
