package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// getJSON fetches a path and decodes the body as a JSON object.
func getJSON(t *testing.T, base, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var doc map[string]any
	if len(body) > 0 {
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("GET %s: body not JSON: %v\n%s", path, err, body)
		}
	}
	return resp.StatusCode, doc
}

func TestDebugTraceEdgeCases(t *testing.T) {
	tr := NewTracer(8)
	tc := NewTraceContext()
	var s Span
	tc.Annotate(&s)
	s.Op = "snapshot"
	tr.Record(s)

	hs := httptest.NewServer(Handler(NewRegistry(), tr))
	defer hs.Close()

	// Malformed ids: wrong length, non-hex. Both must be 400 with a JSON
	// error body, not an empty 200.
	for _, bad := range []string{"zz", "1234", strings.Repeat("g", 32), strings.Repeat("a", 33)} {
		code, doc := getJSON(t, hs.URL, "/debug/trace?trace="+bad)
		if code != http.StatusBadRequest {
			t.Errorf("trace=%q: status %d, want 400", bad, code)
		}
		if doc["error"] == nil {
			t.Errorf("trace=%q: no error field in %v", bad, doc)
		}
	}

	// A well-formed id the tracer has never seen is a 404.
	unknown := NewTraceContext().TraceID.String()
	code, doc := getJSON(t, hs.URL, "/debug/trace?trace="+unknown)
	if code != http.StatusNotFound || doc["error"] == nil {
		t.Errorf("unknown trace: status %d doc %v, want 404 with error", code, doc)
	}

	// The known id still works.
	code, doc = getJSON(t, hs.URL, "/debug/trace?trace="+tc.TraceID.String())
	if code != 200 || doc["trace_id"] != tc.TraceID.String() {
		t.Errorf("known trace: status %d doc %v", code, doc)
	}

	// Limit bounds on the JSONL listing.
	for _, bad := range []string{"abc", "-1", "0", "100001", "9999999999999999999999"} {
		code, doc := getJSON(t, hs.URL, "/debug/trace?limit="+bad)
		if code != http.StatusBadRequest || doc["error"] == nil {
			t.Errorf("limit=%q: status %d doc %v, want 400 with error", bad, code, doc)
		}
	}
	resp, err := http.Get(hs.URL + "/debug/trace?limit=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"op":"snapshot"`) {
		t.Errorf("limit=1: %d %q", resp.StatusCode, body)
	}
}

func TestDebugSlowEventsRuntimeEndpoints(t *testing.T) {
	slow := NewSlowLog(8, time.Millisecond)
	slow.Record(Span{Op: "snapshot", WallNS: int64(50 * time.Millisecond)})
	j := NewJournal(8)
	j.Record(EventDegradedEnter, SeverityError, "write failures", nil)
	j.Record(EventDegradedExit, SeverityInfo, "operator cleared", nil)
	col := NewCollector(time.Hour, 8)
	col.SampleOnce()

	hs := httptest.NewServer(NewHandler(HandlerConfig{
		Registry:  NewRegistry(),
		SlowLog:   slow,
		Journal:   j,
		Collector: col,
		Telemetry: func() Telemetry { return Telemetry{GoVersion: "gotest"} },
	}))
	defer hs.Close()

	code, doc := getJSON(t, hs.URL, "/debug/slow")
	if code != 200 || doc["captured"].(float64) != 1 {
		t.Errorf("/debug/slow: %d %v", code, doc)
	}
	entries := doc["entries"].([]any)
	if len(entries) != 1 {
		t.Fatalf("/debug/slow entries = %v", entries)
	}

	code, doc = getJSON(t, hs.URL, "/debug/events")
	if code != 200 || doc["total"].(float64) != 2 {
		t.Errorf("/debug/events: %d %v", code, doc)
	}
	if evs := doc["events"].([]any); len(evs) != 2 {
		t.Errorf("/debug/events events = %v", evs)
	}
	code, doc = getJSON(t, hs.URL, "/debug/events?since=1")
	if code != 200 {
		t.Fatalf("/debug/events?since=1: %d", code)
	}
	if evs := doc["events"].([]any); len(evs) != 1 {
		t.Errorf("since=1 events = %v, want just the exit event", evs)
	}
	if code, doc := getJSON(t, hs.URL, "/debug/events?since=banana"); code != 400 || doc["error"] == nil {
		t.Errorf("bad since: %d %v, want 400 with error", code, doc)
	}
	if code, doc := getJSON(t, hs.URL, "/debug/events?limit=-3"); code != 400 || doc["error"] == nil {
		t.Errorf("bad limit: %d %v, want 400 with error", code, doc)
	}

	code, doc = getJSON(t, hs.URL, "/debug/runtime")
	if code != 200 || doc["latest"] == nil {
		t.Errorf("/debug/runtime: %d %v", code, doc)
	}
	if samples := doc["samples"].([]any); len(samples) != 1 {
		t.Errorf("/debug/runtime samples = %v", samples)
	}

	code, doc = getJSON(t, hs.URL, "/debug/telemetry")
	if code != 200 || doc["go_version"] != "gotest" {
		t.Errorf("/debug/telemetry: %d %v", code, doc)
	}
}

// TestDebugSlowOpFilter checks /debug/slow?op=: the response keeps only
// matching entries, echoes the filter, and an unknown op yields an
// empty list (not an error).
func TestDebugSlowOpFilter(t *testing.T) {
	slow := NewSlowLog(8, time.Millisecond)
	slow.Record(Span{Op: "snapshot", WallNS: int64(40 * time.Millisecond)})
	slow.Record(Span{Op: "apply-updates", WallNS: int64(60 * time.Millisecond)})
	slow.Record(Span{Op: "apply-updates", WallNS: int64(80 * time.Millisecond)})

	hs := httptest.NewServer(NewHandler(HandlerConfig{SlowLog: slow}))
	defer hs.Close()

	code, doc := getJSON(t, hs.URL, "/debug/slow?op=apply-updates")
	if code != 200 {
		t.Fatalf("/debug/slow?op=: %d %v", code, doc)
	}
	if doc["op"] != "apply-updates" {
		t.Errorf("response does not echo the filter: %v", doc["op"])
	}
	entries := doc["entries"].([]any)
	if len(entries) != 2 {
		t.Fatalf("filtered entries = %d, want 2: %v", len(entries), entries)
	}
	for _, e := range entries {
		span := e.(map[string]any)["span"].(map[string]any)
		if span["op"] != "apply-updates" {
			t.Errorf("filter leaked op %v", span["op"])
		}
	}

	if code, doc := getJSON(t, hs.URL, "/debug/slow?op=missing"); code != 200 || len(doc["entries"].([]any)) != 0 {
		t.Errorf("unknown op: %d %v, want 200 with empty entries", code, doc)
	}

	// Unfiltered view still shows every class, and omits the op key.
	code, doc = getJSON(t, hs.URL, "/debug/slow")
	if code != 200 || len(doc["entries"].([]any)) != 3 {
		t.Errorf("unfiltered: %d %v, want 3 entries", code, doc)
	}
	if _, ok := doc["op"]; ok {
		t.Errorf("unfiltered response carries an op key: %v", doc)
	}
}
