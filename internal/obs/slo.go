package obs

import (
	"sort"
	"sync"
	"time"
)

// SLOConfig defines the service-level objectives an SLOTracker measures
// attainment against, over a rolling window.
type SLOConfig struct {
	// Window is the rolling evaluation window (0 gets 5 minutes).
	Window time.Duration
	// Interval is the window's rotation resolution (0 gets
	// DefWindowInterval).
	Interval time.Duration
	// AvailabilityObjective is the target fraction of requests answered
	// without error, e.g. 0.999 (0 gets 0.999).
	AvailabilityObjective float64
	// LatencyTarget is the per-request latency objective; a request slower
	// than this is "slow" even if it succeeds (0 gets 100ms).
	LatencyTarget time.Duration
	// LatencyObjective is the target fraction of requests faster than
	// LatencyTarget, e.g. 0.99 (0 gets 0.99).
	LatencyObjective float64
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Window <= 0 {
		c.Window = 5 * time.Minute
	}
	if c.Interval <= 0 {
		c.Interval = DefWindowInterval
	}
	if c.AvailabilityObjective <= 0 || c.AvailabilityObjective > 1 {
		c.AvailabilityObjective = 0.999
	}
	if c.LatencyTarget <= 0 {
		c.LatencyTarget = 100 * time.Millisecond
	}
	if c.LatencyObjective <= 0 || c.LatencyObjective > 1 {
		c.LatencyObjective = 0.99
	}
	return c
}

// SLOStatus is one operation's objective attainment over the tracker's
// rolling window.
type SLOStatus struct {
	Op     string        `json:"op"`
	Window time.Duration `json:"window"`
	Total  int64         `json:"total"`
	Errors int64         `json:"errors"`
	Slow   int64         `json:"slow"` // successful but over the latency target

	// Availability is the achieved non-error fraction; the objective it is
	// measured against rides along for display.
	Availability          float64 `json:"availability"`
	AvailabilityObjective float64 `json:"availability_objective"`
	// LatencyAttainment is the achieved fraction of requests under the
	// latency target.
	LatencyTargetSeconds float64 `json:"latency_target_seconds"`
	LatencyAttainment    float64 `json:"latency_attainment"`
	LatencyObjective     float64 `json:"latency_objective"`

	// Burn rates: observed budget consumption relative to the objective's
	// error budget (1.0 = burning exactly the budget; >1 = on track to
	// exhaust it before the window's worth of budget allows). A burn rate
	// is 0 with no traffic.
	AvailabilityBurn float64 `json:"availability_burn"`
	LatencyBurn      float64 `json:"latency_burn"`

	// Met reports whether both objectives are currently attained.
	Met bool `json:"met"`
}

// sloSlot is one rotation interval's worth of request outcomes for one
// operation.
type sloSlot struct {
	start  time.Time
	total  int64
	errors int64
	slow   int64
}

// sloSeries is the per-op ring of outcome slots.
type sloSeries struct {
	slots    []sloSlot
	cur      int
	curStart time.Time
}

// SLOTracker measures availability and latency-objective attainment per
// operation over a rolling window, with error-budget burn rates. Safe
// for concurrent use.
type SLOTracker struct {
	cfg SLOConfig

	mu     sync.Mutex
	series map[string]*sloSeries
	now    func() time.Time
}

// NewSLOTracker creates a tracker with the given objectives (zero fields
// get defaults: 5m window, 99.9% availability, 99% under 100ms).
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	return &SLOTracker{
		cfg:    cfg.withDefaults(),
		series: make(map[string]*sloSeries),
		now:    time.Now,
	}
}

// WithClock replaces the wall clock (tests only). Call before recording.
func (t *SLOTracker) WithClock(now func() time.Time) *SLOTracker {
	t.now = now
	return t
}

// Config reports the tracker's effective objectives.
func (t *SLOTracker) Config() SLOConfig { return t.cfg }

func (t *SLOTracker) seriesFor(op string) *sloSeries {
	s, ok := t.series[op]
	if !ok {
		n := int(t.cfg.Window/t.cfg.Interval) + 1
		s = &sloSeries{slots: make([]sloSlot, n)}
		t.series[op] = s
	}
	return s
}

// rotate advances a series' ring to the slot containing now. Must be
// called with the tracker lock held.
func (s *sloSeries) rotate(now time.Time, interval time.Duration) {
	if s.curStart.IsZero() {
		s.curStart = now.Truncate(interval)
		s.slots[s.cur].start = s.curStart
		return
	}
	steps := int(now.Sub(s.curStart) / interval)
	if steps <= 0 {
		return
	}
	if steps >= len(s.slots) {
		for i := range s.slots {
			s.slots[i] = sloSlot{}
		}
		s.cur = 0
		s.curStart = now.Truncate(interval)
		s.slots[0].start = s.curStart
		return
	}
	for i := 0; i < steps; i++ {
		s.cur = (s.cur + 1) % len(s.slots)
		s.curStart = s.curStart.Add(interval)
		s.slots[s.cur] = sloSlot{start: s.curStart}
	}
}

// Record notes one request outcome for op: its latency and whether it
// failed. Failed requests consume availability budget; successful ones
// slower than the latency target consume latency budget.
func (t *SLOTracker) Record(op string, d time.Duration, failed bool) {
	slow := d > t.cfg.LatencyTarget
	t.mu.Lock()
	s := t.seriesFor(op)
	s.rotate(t.now(), t.cfg.Interval)
	slot := &s.slots[s.cur]
	slot.total++
	if failed {
		slot.errors++
	} else if slow {
		slot.slow++
	}
	t.mu.Unlock()
}

// Status reports every tracked operation's attainment over the rolling
// window, sorted by op name.
func (t *SLOTracker) Status() []SLOStatus {
	t.mu.Lock()
	now := t.now()
	cutoff := now.Add(-t.cfg.Window)
	out := make([]SLOStatus, 0, len(t.series))
	for op, s := range t.series {
		s.rotate(now, t.cfg.Interval)
		st := SLOStatus{
			Op:                    op,
			Window:                t.cfg.Window,
			AvailabilityObjective: t.cfg.AvailabilityObjective,
			LatencyTargetSeconds:  t.cfg.LatencyTarget.Seconds(),
			LatencyObjective:      t.cfg.LatencyObjective,
		}
		for i := range s.slots {
			sl := &s.slots[i]
			if sl.start.IsZero() || !sl.start.Add(t.cfg.Interval).After(cutoff) {
				continue
			}
			st.Total += sl.total
			st.Errors += sl.errors
			st.Slow += sl.slow
		}
		out = append(out, st)
	}
	t.mu.Unlock()

	for i := range out {
		st := &out[i]
		if st.Total > 0 {
			st.Availability = 1 - float64(st.Errors)/float64(st.Total)
			st.LatencyAttainment = 1 - float64(st.Errors+st.Slow)/float64(st.Total)
			st.AvailabilityBurn = burnRate(1-st.Availability, 1-st.AvailabilityObjective)
			st.LatencyBurn = burnRate(1-st.LatencyAttainment, 1-st.LatencyObjective)
		}
		st.Met = st.Total == 0 ||
			(st.Availability >= st.AvailabilityObjective && st.LatencyAttainment >= st.LatencyObjective)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Op < out[j].Op })
	return out
}

// burnRate is the observed bad fraction relative to the budgeted bad
// fraction. An objective of exactly 1.0 has no budget: any failure is an
// infinite burn, reported as a large sentinel to stay JSON-safe.
func burnRate(observed, budget float64) float64 {
	if observed <= 0 {
		return 0
	}
	if budget <= 0 {
		return 1e9
	}
	return observed / budget
}
