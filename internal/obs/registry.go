package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (e.g. {op, snapshot}).
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (must be non-negative for Prometheus semantics).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reports the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

type metric struct {
	name    string
	labels  []Label
	kind    metricKind
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// series renders the name{labels} part of a Prometheus line, with extra
// labels (e.g. le) appended.
func (m *metric) series(extra ...Label) string {
	labels := append(append([]Label(nil), m.labels...), extra...)
	if len(labels) == 0 {
		return m.name
	}
	var b strings.Builder
	b.WriteString(m.name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Registry holds named metrics and renders them as Prometheus text
// exposition format or expvar-style JSON. Lookups are idempotent: asking
// for an existing (name, labels) pair returns the same metric, so callers
// can re-resolve instead of caching.
type Registry struct {
	mu      sync.RWMutex
	metrics []*metric
	byKey   map[string]*metric
	help    map[string]string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric), help: make(map[string]string)}
}

// SetHelp attaches a # HELP line to a metric family.
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = help
}

func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "\x00" + l.Value
	}
	sort.Strings(parts)
	return name + "\x01" + strings.Join(parts, "\x01")
}

func (r *Registry) lookup(name string, labels []Label, mk func() *metric) *metric {
	k := key(name, labels)
	r.mu.RLock()
	m, ok := r.byKey[k]
	r.mu.RUnlock()
	if ok {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[k]; ok {
		return m
	}
	m = mk()
	m.name = name
	m.labels = append([]Label(nil), labels...)
	r.byKey[k] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter returns (registering on first use) the counter with the given
// name and labels.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	m := r.lookup(name, labels, func() *metric {
		return &metric{kind: kindCounter, counter: &Counter{}}
	})
	return m.counter
}

// Gauge returns (registering on first use) the gauge with the given name
// and labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	m := r.lookup(name, labels, func() *metric {
		return &metric{kind: kindGauge, gauge: &Gauge{}}
	})
	return m.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at render
// time (for values owned elsewhere, e.g. buffer-pool hit ratios).
// Re-registering the same (name, labels) keeps the first function.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	r.lookup(name, labels, func() *metric {
		return &metric{kind: kindGaugeFunc, fn: fn}
	})
}

// Histogram returns (registering on first use) the histogram with the
// given name, bucket bounds, and labels. Nil bounds get
// DefLatencyBuckets.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	m := r.lookup(name, labels, func() *metric {
		return &metric{kind: kindHistogram, hist: NewHistogram(bounds)}
	})
	return m.hist
}

// AttachHistogram registers an externally owned histogram under the given
// name and labels, so a component that observes into its own histograms
// (e.g. the shard engine's per-shard fan-out timers) can surface them
// through a server's registry. Re-registering the same (name, labels)
// keeps the first histogram.
func (r *Registry) AttachHistogram(name string, h *Histogram, labels ...Label) {
	r.lookup(name, labels, func() *metric {
		return &metric{kind: kindHistogram, hist: h}
	})
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), families sorted by name, series in
// registration order within a family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	metrics := append([]*metric(nil), r.metrics...)
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.RUnlock()

	sort.SliceStable(metrics, func(i, j int) bool { return metrics[i].name < metrics[j].name })
	lastFamily := ""
	for _, m := range metrics {
		if m.name != lastFamily {
			lastFamily = m.name
			if h := help[m.name]; h != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, h); err != nil {
					return err
				}
			}
			typ := map[metricKind]string{
				kindCounter:   "counter",
				kindGauge:     "gauge",
				kindGaugeFunc: "gauge",
				kindHistogram: "histogram",
			}[m.kind]
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, typ); err != nil {
				return err
			}
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", m.series(), m.counter.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %s\n", m.series(), formatFloat(m.gauge.Value()))
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "%s %s\n", m.series(), formatFloat(m.fn()))
		case kindHistogram:
			err = writePromHistogram(w, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, m *metric) error {
	counts := m.hist.BucketCounts()
	bounds := m.hist.Bounds()
	var cum int64
	for i, b := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			m.name, strings.TrimPrefix(m.series(L("le", formatFloat(b))), m.name), cum); err != nil {
			return err
		}
	}
	cum += counts[len(bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		m.name, strings.TrimPrefix(m.series(L("le", "+Inf")), m.name), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		m.name, strings.TrimPrefix(m.series(), m.name), formatFloat(m.hist.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n",
		m.name, strings.TrimPrefix(m.series(), m.name), cum)
	return err
}

// Export returns the registry contents as a JSON-marshalable map: one
// entry per series, histograms expanded to count/sum/p50/p95/p99.
func (r *Registry) Export() map[string]any {
	r.mu.RLock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.RUnlock()
	out := make(map[string]any, len(metrics))
	for _, m := range metrics {
		switch m.kind {
		case kindCounter:
			out[m.series()] = m.counter.Value()
		case kindGauge:
			out[m.series()] = m.gauge.Value()
		case kindGaugeFunc:
			out[m.series()] = m.fn()
		case kindHistogram:
			out[m.series()] = map[string]any{
				"count": m.hist.Count(),
				"sum":   m.hist.Sum(),
				"p50":   m.hist.Quantile(0.50),
				"p95":   m.hist.Quantile(0.95),
				"p99":   m.hist.Quantile(0.99),
			}
		}
	}
	return out
}
