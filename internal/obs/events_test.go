package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestJournalRingAndSince(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 6; i++ {
		j.Record(EventOverloadBurst, SeverityWarn, fmt.Sprintf("burst %d", i),
			map[string]string{"n": fmt.Sprint(i)})
	}
	if got := j.Total(); got != 6 {
		t.Fatalf("total = %d, want 6", got)
	}
	recent := j.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("recent len = %d, want 4 (ring capacity)", len(recent))
	}
	if recent[0].Seq != 5 || recent[3].Seq != 2 {
		t.Errorf("recent seqs = %d..%d, want newest-first 5..2", recent[0].Seq, recent[3].Seq)
	}
	if got := j.Recent(2); len(got) != 2 || got[0].Seq != 5 {
		t.Errorf("recent(2) = %v", got)
	}

	since := j.Since(4)
	if len(since) != 2 || since[0].Seq != 4 || since[1].Seq != 5 {
		t.Errorf("since(4) = %v, want seqs 4,5 oldest-first", since)
	}
	// A resume point that has rotated out starts at the oldest survivor.
	if got := j.Since(0); len(got) != 4 || got[0].Seq != 2 {
		t.Errorf("since(0) = %v, want 4 events starting at seq 2", got)
	}
	if counts := j.CountsByType(); counts[EventOverloadBurst] != 6 {
		t.Errorf("by-type count = %v, want 6 overload bursts (rotation does not forget totals)", counts)
	}
}

func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				j.Record(EventChecksumFailure, SeverityError, "boom", nil)
				if i%100 == 0 {
					j.Recent(10)
					j.Since(0)
					j.CountsByType()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := j.Total(); got != 4000 {
		t.Errorf("total = %d, want 4000", got)
	}
}

func TestDefaultJournalIsProcessWide(t *testing.T) {
	before := DefaultJournal().Total()
	DefaultJournal().Record(EventServerStart, SeverityInfo, "test marker", nil)
	es := DefaultJournal().Since(before)
	found := false
	for _, e := range es {
		if e.Message == "test marker" {
			found = true
		}
	}
	if !found {
		t.Error("marker event not visible through DefaultJournal")
	}
}

func TestSlowLogThresholdAndRing(t *testing.T) {
	l := NewSlowLog(3, 100*time.Millisecond)
	fast := Span{Op: "snapshot", WallNS: int64(time.Millisecond)}
	slow := Span{Op: "knn", WallNS: int64(time.Second)}
	if l.Record(fast) {
		t.Error("fast span captured below threshold")
	}
	for i := 0; i < 5; i++ {
		s := slow
		s.Results = i
		if !l.Record(s) {
			t.Fatalf("slow span %d not captured", i)
		}
	}
	if got := l.Captured(); got != 5 {
		t.Fatalf("captured = %d, want 5", got)
	}
	recent := l.Recent(0)
	if len(recent) != 3 {
		t.Fatalf("recent len = %d, want 3 (ring capacity)", len(recent))
	}
	if recent[0].Span.Results != 4 || recent[2].Span.Results != 2 {
		t.Errorf("recent order = %d..%d, want newest-first 4..2",
			recent[0].Span.Results, recent[2].Span.Results)
	}
	if recent[0].ThresholdNS != 100*time.Millisecond {
		t.Errorf("entry threshold = %v, want 100ms", recent[0].ThresholdNS)
	}

	// Negative disables capture; zero restores the default.
	l.SetThreshold(-1)
	if l.Record(slow) {
		t.Error("span captured while disabled")
	}
	l.SetThreshold(0)
	if l.Threshold() != DefSlowThreshold {
		t.Errorf("threshold = %v, want default %v", l.Threshold(), DefSlowThreshold)
	}
}

func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(32, time.Microsecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Record(Span{Op: "snapshot", WallNS: int64(time.Millisecond)})
				if i%100 == 0 {
					l.Recent(5)
				}
			}
		}()
	}
	wg.Wait()
	if got := l.Captured(); got != 4000 {
		t.Errorf("captured = %d, want 4000", got)
	}
}

func TestCollectorSamplesAndSources(t *testing.T) {
	c := NewCollector(time.Hour, 4) // interval irrelevant: we sample by hand
	depth := 7.0
	c.Source("queue_depth", func() float64 { return depth })
	var hooked []RuntimeSample
	c.OnSample(func(s RuntimeSample) { hooked = append(hooked, s) })

	s := c.SampleOnce()
	if s.Goroutines <= 0 || s.HeapAllocBytes == 0 {
		t.Errorf("sample = %+v, want live runtime readings", s)
	}
	if s.Extra["queue_depth"] != 7 {
		t.Errorf("extra = %v, want queue_depth 7", s.Extra)
	}
	if len(hooked) != 1 {
		t.Fatalf("hook calls = %d, want 1", len(hooked))
	}
	depth = 9
	c.SampleOnce()
	latest, ok := c.Latest()
	if !ok || latest.Extra["queue_depth"] != 9 {
		t.Errorf("latest = %+v ok=%v, want queue_depth 9", latest, ok)
	}
	for i := 0; i < 10; i++ {
		c.SampleOnce()
	}
	if got := len(c.Samples()); got != 4 {
		t.Errorf("ring length = %d, want capacity 4", got)
	}

	// Register exposes the latest readings as gauges.
	reg := NewRegistry()
	c.Register(reg)
	exp := reg.Export()
	if exp["dynq_goroutines"].(float64) <= 0 {
		t.Errorf("dynq_goroutines gauge = %v, want > 0", exp["dynq_goroutines"])
	}
	if exp["dynq_runtime_queue_depth"].(float64) != 9 {
		t.Errorf("dynq_runtime_queue_depth gauge = %v, want 9", exp["dynq_runtime_queue_depth"])
	}
}

func TestCollectorStartStop(t *testing.T) {
	c := NewCollector(time.Millisecond, 64)
	c.Start()
	c.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for len(c.Samples()) < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := len(c.Samples()); got < 3 {
		t.Fatalf("samples after run = %d, want >= 3", got)
	}
	c.Stop()
	c.Stop() // idempotent
	n := len(c.Samples())
	time.Sleep(5 * time.Millisecond)
	if got := len(c.Samples()); got != n {
		t.Errorf("samples grew after Stop: %d -> %d", n, got)
	}
}
