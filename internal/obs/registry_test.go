package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("requests_total", "Total requests.")
	r.Counter("requests_total", L("op", "snapshot")).Add(3)
	r.Counter("requests_total", L("op", "knn")).Inc()
	r.Gauge("active_connections").Set(2)
	r.GaugeFunc("hit_ratio", func() float64 { return 0.25 })
	h := r.Histogram("latency_seconds", []float64{0.5, 1}, L("op", "snapshot"))
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE active_connections gauge
active_connections 2
# TYPE hit_ratio gauge
hit_ratio 0.25
# TYPE latency_seconds histogram
latency_seconds_bucket{op="snapshot",le="0.5"} 2
latency_seconds_bucket{op="snapshot",le="1"} 2
latency_seconds_bucket{op="snapshot",le="+Inf"} 3
latency_seconds_sum{op="snapshot"} 2.75
latency_seconds_count{op="snapshot"} 3
# HELP requests_total Total requests.
# TYPE requests_total counter
requests_total{op="snapshot"} 3
requests_total{op="knn"} 1
`
	if got := b.String(); got != want {
		t.Errorf("prometheus text:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRegistryIdempotentLookup(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", L("k", "v"))
	b := r.Counter("x", L("k", "v"))
	if a != b {
		t.Error("same (name, labels) should return the same counter")
	}
	c := r.Counter("x", L("k", "w"))
	if a == c {
		t.Error("different labels should return a different counter")
	}
}

func TestRegistryExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(1.5)
	h := r.Histogram("h", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	out := r.Export()
	if out["c"] != int64(7) {
		t.Errorf("c = %v", out["c"])
	}
	if out["g"] != 1.5 {
		t.Errorf("g = %v", out["g"])
	}
	hm, ok := out["h"].(map[string]any)
	if !ok || hm["count"] != int64(2) {
		t.Errorf("h = %v", out["h"])
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("hits").Inc()
				r.Histogram("lat", nil).Observe(0.001)
				var b strings.Builder
				if i%100 == 0 {
					r.WritePrometheus(&b)
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != 4000 {
		t.Errorf("hits = %d, want 4000", got)
	}
}
