package obs

import (
	"time"
)

// OpTelemetry is one operation's latency picture: cumulative since boot
// plus rolling windows.
type OpTelemetry struct {
	Op     string  `json:"op"`
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	Sum    float64 `json:"sum"` // cumulative seconds
	// Cumulative since-boot percentiles (seconds).
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	// Rolling windows, shortest first.
	Windows []WindowSnapshot `json:"windows,omitempty"`
}

// Telemetry is one server's stats snapshot: windowed and cumulative
// per-op latency, SLO attainment, the latest runtime sample, and recent
// operational events. It is the payload of the netq telemetry op (so
// non-HTTP clients and the future cluster router can poll it) and of the
// /debug/telemetry endpoint.
type Telemetry struct {
	Time          time.Time `json:"time"`
	Addr          string    `json:"addr,omitempty"` // filled by clients that know who they asked
	UptimeSeconds float64   `json:"uptime_seconds"`
	GoVersion     string    `json:"go_version"`
	Revision      string    `json:"revision"`
	Degraded      bool      `json:"degraded"`

	ActiveConns    int `json:"active_conns"`
	InflightOps    int `json:"inflight_ops"`
	ReadQueueDepth int `json:"read_queue_depth"`

	Ops  []OpTelemetry `json:"ops,omitempty"`
	SLOs []SLOStatus   `json:"slos,omitempty"`

	// WAL is the write-ahead-log section, present only when the server's
	// database has a log armed.
	WAL *WALTelemetry `json:"wal,omitempty"`

	// Maintenance is the self-healing section, present only when the
	// server's database runs the maintenance loop (auto-checkpoint,
	// degraded-mode probe, background scrub).
	Maintenance *MaintenanceTelemetry `json:"maintenance,omitempty"`

	Runtime *RuntimeSample `json:"runtime,omitempty"`

	SlowThreshold time.Duration `json:"slow_threshold_ns"`
	SlowCaptured  uint64        `json:"slow_captured"`

	EventsTotal uint64  `json:"events_total"`
	Events      []Event `json:"events,omitempty"` // newest first
}

// MaintenanceTelemetry is the self-healing section of a Telemetry
// snapshot: what the background maintenance loop has done since boot and
// where the database stands right now. Counters are cumulative.
type MaintenanceTelemetry struct {
	// Ticks counts maintenance loop iterations.
	Ticks int64 `json:"ticks"`

	// Auto-checkpoint policy.
	Checkpoints        int64   `json:"checkpoints"`         // policy-driven checkpoints completed
	CheckpointFailures int64   `json:"checkpoint_failures"` // policy-driven checkpoints that errored
	CheckpointPressure float64 `json:"checkpoint_pressure"` // worst log's fraction of its nearest threshold (>= 1 means due)

	// Degraded-mode recovery probe.
	Degraded             bool    `json:"degraded"`                        // read-only right now
	DegradedSeconds      float64 `json:"degraded_seconds,omitempty"`      // time spent degraded in the current episode
	Probes               int64   `json:"probes"`                          // durable probe writes attempted
	ProbeFailures        int64   `json:"probe_failures"`                  // probes that failed (backoff doubled)
	Heals                int64   `json:"heals"`                           // degraded episodes cleared by a probe
	NextProbeInSeconds   float64 `json:"next_probe_in_seconds,omitempty"` // backoff remaining before the next probe
	LastProbeError       string  `json:"last_probe_error,omitempty"`
	DowntimeTotalSeconds float64 `json:"downtime_total_seconds"` // cumulative degraded time across healed episodes

	// Background scrub.
	ScrubPages       int64  `json:"scrub_pages"`       // pages verified since boot
	ScrubCorruptions int64  `json:"scrub_corruptions"` // pages that failed verification
	ScrubPasses      int64  `json:"scrub_passes"`      // complete sweeps of the reachable set
	ScrubCursor      int64  `json:"scrub_cursor"`      // pages into the current pass
	LastScrubError   string `json:"last_scrub_error,omitempty"`
}

// HistSummary is one histogram's snapshot: cumulative since-boot stats
// plus rolling windows, shortest first.
type HistSummary struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	P50     float64          `json:"p50"`
	P95     float64          `json:"p95"`
	P99     float64          `json:"p99"`
	Windows []WindowSnapshot `json:"windows,omitempty"`
}

// SummarizeWindowed snapshots a windowed histogram into a HistSummary
// over the given rolling windows.
func SummarizeWindowed(w *WindowedHistogram, windows []time.Duration) HistSummary {
	cum := w.Cumulative()
	s := HistSummary{
		Count: cum.Count(),
		Sum:   cum.Sum(),
		P50:   cum.Quantile(0.50),
		P95:   cum.Quantile(0.95),
		P99:   cum.Quantile(0.99),
	}
	for _, win := range windows {
		s.Windows = append(s.Windows, w.Snapshot(win))
	}
	return s
}

// WALTelemetry is the write-ahead-log section of a Telemetry snapshot:
// group-commit behaviour (fsync latency, batch sizes, coalescing),
// append throughput, and checkpoint state. Counters are since boot;
// histogram summaries carry rolling windows alongside the cumulative
// picture.
type WALTelemetry struct {
	Path string `json:"path,omitempty"`
	// Logs is the number of per-shard logs aggregated into this snapshot
	// (0 for a single-log database). When > 1, counters and byte totals
	// are sums across logs, the LSN triple sums each log's independent
	// sequence, and histogram quantiles report the WORST shard (see
	// MergeWALTelemetry).
	Logs int `json:"logs,omitempty"`

	Appends       int64   `json:"appends"`
	AppendedBytes int64   `json:"appended_bytes"`
	Fsyncs        int64   `json:"fsyncs"`
	Coalesced     int64   `json:"coalesced"`
	CoalesceRatio float64 `json:"coalesce_ratio"` // coalesced / (coalesced + fsyncs)
	Checkpoints   int64   `json:"checkpoints"`

	LastLSN       uint64 `json:"last_lsn"`
	DurableLSN    uint64 `json:"durable_lsn"`
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
	CheckpointLag uint64 `json:"checkpoint_lag"` // records appended but not yet checkpointed
	LogBytes      int64  `json:"log_bytes"`      // current file size, headers included
	LiveBytes     int64  `json:"live_bytes"`     // record bytes since the last checkpoint

	FsyncLatency       HistSummary `json:"fsync_latency"`       // seconds per group-commit fsync
	BatchSize          HistSummary `json:"batch_size"`          // records made durable per fsync round
	AppendBytes        HistSummary `json:"append_bytes"`        // encoded record bytes per append
	CheckpointDuration HistSummary `json:"checkpoint_duration"` // seconds per checkpoint
}

// MergeWALTelemetry folds one log's snapshot into an aggregate — the
// sharded database's per-shard logs presented as one section. Counters,
// byte totals, LSNs, and checkpoint lag add (each log's LSN sequence is
// independent, so the sums read as fleet totals); histogram counts and
// sums add while quantiles take the maximum, so the aggregate's p99 is
// the worst shard's p99 — the number an operator acting on tail latency
// wants. The caller sets Path and Logs on the final aggregate.
func MergeWALTelemetry(agg, t WALTelemetry) WALTelemetry {
	agg.Appends += t.Appends
	agg.AppendedBytes += t.AppendedBytes
	agg.Fsyncs += t.Fsyncs
	agg.Coalesced += t.Coalesced
	agg.Checkpoints += t.Checkpoints
	if total := agg.Coalesced + agg.Fsyncs; total > 0 {
		agg.CoalesceRatio = float64(agg.Coalesced) / float64(total)
	}
	agg.LastLSN += t.LastLSN
	agg.DurableLSN += t.DurableLSN
	agg.CheckpointLSN += t.CheckpointLSN
	agg.CheckpointLag += t.CheckpointLag
	agg.LogBytes += t.LogBytes
	agg.LiveBytes += t.LiveBytes
	agg.FsyncLatency = mergeHistSummary(agg.FsyncLatency, t.FsyncLatency)
	agg.BatchSize = mergeHistSummary(agg.BatchSize, t.BatchSize)
	agg.AppendBytes = mergeHistSummary(agg.AppendBytes, t.AppendBytes)
	agg.CheckpointDuration = mergeHistSummary(agg.CheckpointDuration, t.CheckpointDuration)
	return agg
}

func mergeHistSummary(a, b HistSummary) HistSummary {
	out := HistSummary{
		Count: a.Count + b.Count,
		Sum:   a.Sum + b.Sum,
		P50:   max(a.P50, b.P50),
		P95:   max(a.P95, b.P95),
		P99:   max(a.P99, b.P99),
	}
	// Window lists come from the same rolling spans on every log, so they
	// merge positionally; a length mismatch keeps the longer tail as-is.
	n := len(a.Windows)
	if len(b.Windows) > n {
		n = len(b.Windows)
	}
	for i := 0; i < n; i++ {
		switch {
		case i >= len(a.Windows):
			out.Windows = append(out.Windows, b.Windows[i])
		case i >= len(b.Windows):
			out.Windows = append(out.Windows, a.Windows[i])
		default:
			wa, wb := a.Windows[i], b.Windows[i]
			out.Windows = append(out.Windows, WindowSnapshot{
				Window: wa.Window,
				Count:  wa.Count + wb.Count,
				Sum:    wa.Sum + wb.Sum,
				P50:    max(wa.P50, wb.P50),
				P95:    max(wa.P95, wb.P95),
				P99:    max(wa.P99, wb.P99),
			})
		}
	}
	return out
}
