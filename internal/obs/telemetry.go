package obs

import (
	"time"
)

// OpTelemetry is one operation's latency picture: cumulative since boot
// plus rolling windows.
type OpTelemetry struct {
	Op     string  `json:"op"`
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	Sum    float64 `json:"sum"` // cumulative seconds
	// Cumulative since-boot percentiles (seconds).
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	// Rolling windows, shortest first.
	Windows []WindowSnapshot `json:"windows,omitempty"`
}

// Telemetry is one server's stats snapshot: windowed and cumulative
// per-op latency, SLO attainment, the latest runtime sample, and recent
// operational events. It is the payload of the netq telemetry op (so
// non-HTTP clients and the future cluster router can poll it) and of the
// /debug/telemetry endpoint.
type Telemetry struct {
	Time          time.Time `json:"time"`
	Addr          string    `json:"addr,omitempty"` // filled by clients that know who they asked
	UptimeSeconds float64   `json:"uptime_seconds"`
	GoVersion     string    `json:"go_version"`
	Revision      string    `json:"revision"`
	Degraded      bool      `json:"degraded"`

	ActiveConns    int `json:"active_conns"`
	InflightOps    int `json:"inflight_ops"`
	ReadQueueDepth int `json:"read_queue_depth"`

	Ops  []OpTelemetry `json:"ops,omitempty"`
	SLOs []SLOStatus   `json:"slos,omitempty"`

	// WAL is the write-ahead-log section, present only when the server's
	// database has a log armed.
	WAL *WALTelemetry `json:"wal,omitempty"`

	Runtime *RuntimeSample `json:"runtime,omitempty"`

	SlowThreshold time.Duration `json:"slow_threshold_ns"`
	SlowCaptured  uint64        `json:"slow_captured"`

	EventsTotal uint64  `json:"events_total"`
	Events      []Event `json:"events,omitempty"` // newest first
}

// HistSummary is one histogram's snapshot: cumulative since-boot stats
// plus rolling windows, shortest first.
type HistSummary struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	P50     float64          `json:"p50"`
	P95     float64          `json:"p95"`
	P99     float64          `json:"p99"`
	Windows []WindowSnapshot `json:"windows,omitempty"`
}

// SummarizeWindowed snapshots a windowed histogram into a HistSummary
// over the given rolling windows.
func SummarizeWindowed(w *WindowedHistogram, windows []time.Duration) HistSummary {
	cum := w.Cumulative()
	s := HistSummary{
		Count: cum.Count(),
		Sum:   cum.Sum(),
		P50:   cum.Quantile(0.50),
		P95:   cum.Quantile(0.95),
		P99:   cum.Quantile(0.99),
	}
	for _, win := range windows {
		s.Windows = append(s.Windows, w.Snapshot(win))
	}
	return s
}

// WALTelemetry is the write-ahead-log section of a Telemetry snapshot:
// group-commit behaviour (fsync latency, batch sizes, coalescing),
// append throughput, and checkpoint state. Counters are since boot;
// histogram summaries carry rolling windows alongside the cumulative
// picture.
type WALTelemetry struct {
	Path string `json:"path,omitempty"`

	Appends       int64   `json:"appends"`
	AppendedBytes int64   `json:"appended_bytes"`
	Fsyncs        int64   `json:"fsyncs"`
	Coalesced     int64   `json:"coalesced"`
	CoalesceRatio float64 `json:"coalesce_ratio"` // coalesced / (coalesced + fsyncs)
	Checkpoints   int64   `json:"checkpoints"`

	LastLSN       uint64 `json:"last_lsn"`
	DurableLSN    uint64 `json:"durable_lsn"`
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
	CheckpointLag uint64 `json:"checkpoint_lag"` // records appended but not yet checkpointed
	LogBytes      int64  `json:"log_bytes"`      // current file size, headers included
	LiveBytes     int64  `json:"live_bytes"`     // record bytes since the last checkpoint

	FsyncLatency       HistSummary `json:"fsync_latency"`       // seconds per group-commit fsync
	BatchSize          HistSummary `json:"batch_size"`          // records made durable per fsync round
	AppendBytes        HistSummary `json:"append_bytes"`        // encoded record bytes per append
	CheckpointDuration HistSummary `json:"checkpoint_duration"` // seconds per checkpoint
}
