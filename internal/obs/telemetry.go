package obs

import (
	"time"
)

// OpTelemetry is one operation's latency picture: cumulative since boot
// plus rolling windows.
type OpTelemetry struct {
	Op     string  `json:"op"`
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	Sum    float64 `json:"sum"` // cumulative seconds
	// Cumulative since-boot percentiles (seconds).
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	// Rolling windows, shortest first.
	Windows []WindowSnapshot `json:"windows,omitempty"`
}

// Telemetry is one server's stats snapshot: windowed and cumulative
// per-op latency, SLO attainment, the latest runtime sample, and recent
// operational events. It is the payload of the netq telemetry op (so
// non-HTTP clients and the future cluster router can poll it) and of the
// /debug/telemetry endpoint.
type Telemetry struct {
	Time          time.Time `json:"time"`
	Addr          string    `json:"addr,omitempty"` // filled by clients that know who they asked
	UptimeSeconds float64   `json:"uptime_seconds"`
	GoVersion     string    `json:"go_version"`
	Revision      string    `json:"revision"`
	Degraded      bool      `json:"degraded"`

	ActiveConns    int `json:"active_conns"`
	InflightOps    int `json:"inflight_ops"`
	ReadQueueDepth int `json:"read_queue_depth"`

	Ops  []OpTelemetry `json:"ops,omitempty"`
	SLOs []SLOStatus   `json:"slos,omitempty"`

	Runtime *RuntimeSample `json:"runtime,omitempty"`

	SlowThreshold time.Duration `json:"slow_threshold_ns"`
	SlowCaptured  uint64        `json:"slow_captured"`

	EventsTotal uint64  `json:"events_total"`
	Events      []Event `json:"events,omitempty"` // newest first
}
