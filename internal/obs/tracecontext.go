package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
)

// TraceID is a 128-bit trace identifier shared by every span of one
// logical operation, across processes and shards. It renders as 32 hex
// characters.
type TraceID [16]byte

// String renders the id as lowercase hex.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the id is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// ParseTraceID parses the 32-hex-character form produced by String.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 2*len(t) {
		return t, fmt.Errorf("obs: trace id must be %d hex chars, got %q", 2*len(t), s)
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("obs: bad trace id %q: %w", s, err)
	}
	return t, nil
}

// SpanID is a 64-bit span identifier, unique within a trace. It renders
// as 16 hex characters.
type SpanID [8]byte

// String renders the id as lowercase hex.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the id is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// ParseSpanID parses the 16-hex-character form produced by String.
func ParseSpanID(str string) (SpanID, error) {
	var s SpanID
	if len(str) != 2*len(s) {
		return s, fmt.Errorf("obs: span id must be %d hex chars, got %q", 2*len(s), str)
	}
	if _, err := hex.Decode(s[:], []byte(str)); err != nil {
		return SpanID{}, fmt.Errorf("obs: bad span id %q: %w", str, err)
	}
	return s, nil
}

// TraceContext identifies one span's position within a trace: which trace
// it belongs to, its own id, and the id of the span that caused it (zero
// for a root span). It is carried through context.Context in-process and
// serialized into the netq request header across the wire.
type TraceContext struct {
	TraceID TraceID
	SpanID  SpanID
	Parent  SpanID
}

// NewTraceContext starts a new trace with a random trace id and a random
// root span id.
func NewTraceContext() TraceContext {
	var tc TraceContext
	// crypto/rand.Read never fails on supported platforms (it aborts the
	// program instead), so the error is impossible to observe.
	rand.Read(tc.TraceID[:])
	rand.Read(tc.SpanID[:])
	return tc
}

// Child returns a context for a new span within the same trace, parented
// to the receiver's span.
func (tc TraceContext) Child() TraceContext {
	child := TraceContext{TraceID: tc.TraceID, Parent: tc.SpanID}
	rand.Read(child.SpanID[:])
	return child
}

// IsZero reports whether the context carries no trace.
func (tc TraceContext) IsZero() bool { return tc.TraceID.IsZero() }

// ContinueTrace rebuilds a TraceContext from the wire form (two hex
// strings) and allocates a fresh child span id under it, so a server can
// continue a client's trace. ok is false — and a brand-new root context
// is returned — when traceID is absent or malformed.
func ContinueTrace(traceID, spanID string) (tc TraceContext, ok bool) {
	tid, err := ParseTraceID(traceID)
	if err != nil || tid.IsZero() {
		return NewTraceContext(), false
	}
	parent, err := ParseSpanID(spanID)
	if err != nil {
		parent = SpanID{}
	}
	tc = TraceContext{TraceID: tid, Parent: parent}
	rand.Read(tc.SpanID[:])
	return tc, true
}

type traceCtxKey struct{}
type tracerCtxKey struct{}

// ContextWithTrace attaches a trace context to ctx.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext extracts the trace context attached by
// ContextWithTrace, if any.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}

// ContextWithTracer attaches a span recorder to ctx, so layers deep in
// the query stack (e.g. the shard engine's fan-out) can record child
// spans without holding a reference to the server's tracer.
func ContextWithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerCtxKey{}, t)
}

// TracerFromContext extracts the tracer attached by ContextWithTracer,
// if any.
func TracerFromContext(ctx context.Context) (*Tracer, bool) {
	t, ok := ctx.Value(tracerCtxKey{}).(*Tracer)
	return t, ok
}

// Annotate stamps a span with the ids of a trace context (the span's own
// id, its parent, and the trace).
func (tc TraceContext) Annotate(s *Span) {
	if tc.IsZero() {
		return
	}
	s.TraceID = tc.TraceID.String()
	s.SpanID = tc.SpanID.String()
	if !tc.Parent.IsZero() {
		s.ParentID = tc.Parent.String()
	}
}
