package motion

import (
	"fmt"

	"dynq/internal/geom"
)

// Tracker implements the update policy of Section 3.1: the database's
// picture of an object is its last motion update, extrapolated linearly
// (dead reckoning). The object — or the sensor tracking it — compares its
// true position against that extrapolation and issues a new update only
// when the deviation exceeds a threshold, bounding the database's error
// while keeping the update rate low (the cost/precision trade-off of
// [28]).
//
// Observe feeds true positions in time order; whenever the dead-reckoned
// error exceeds the threshold, the tracker closes the current motion
// segment (which is then ready for indexing) and opens a new one from the
// observed state.
type Tracker struct {
	threshold float64

	started bool
	lastT   float64
	lastPos geom.Point
	lastVel geom.Point // velocity reported with the last update
	prevT   float64
	prevPos geom.Point // most recent observation (pending segment end)
}

// NewTracker creates a tracker that tolerates deviations up to threshold
// length units before issuing an update.
func NewTracker(threshold float64) *Tracker {
	return &Tracker{threshold: threshold}
}

// Observe records the object's true position at time t (strictly
// increasing across calls). If the dead-reckoned estimate has drifted
// beyond the threshold, the closed motion segment is returned for
// indexing; otherwise seg is nil. The very first observation initializes
// the tracker and reports the initial velocity estimate as zero.
func (tr *Tracker) Observe(t float64, pos geom.Point) (seg *geom.Segment, err error) {
	if !tr.started {
		tr.started = true
		tr.lastT, tr.prevT = t, t
		tr.lastPos = pos.Clone()
		tr.prevPos = pos.Clone()
		tr.lastVel = make(geom.Point, len(pos))
		return nil, nil
	}
	if t <= tr.prevT {
		return nil, fmt.Errorf("motion: observations must have increasing time: %g after %g", t, tr.prevT)
	}
	// Dead-reckoned position per the last update.
	predicted := tr.lastPos.Add(tr.lastVel.Scale(t - tr.lastT))
	if predicted.Dist(pos) <= tr.threshold {
		tr.prevT, tr.prevPos = t, pos.Clone()
		return nil, nil
	}
	// Deviation exceeded: close the segment at the current observation and
	// re-estimate velocity from the observed motion.
	closed := &geom.Segment{
		T:     geom.Interval{Lo: tr.lastT, Hi: t},
		Start: tr.lastPos.Clone(),
		End:   pos.Clone(),
	}
	dt := t - tr.lastT
	tr.lastVel = pos.Sub(tr.lastPos).Scale(1 / dt)
	tr.lastT = t
	tr.lastPos = pos.Clone()
	tr.prevT, tr.prevPos = t, pos.Clone()
	return closed, nil
}

// Flush closes and returns the pending segment up to the last
// observation, or nil if fewer than two observations arrived since the
// last update. Call it when an object disappears or the simulation ends.
func (tr *Tracker) Flush() *geom.Segment {
	if !tr.started || tr.prevT <= tr.lastT {
		return nil
	}
	seg := &geom.Segment{
		T:     geom.Interval{Lo: tr.lastT, Hi: tr.prevT},
		Start: tr.lastPos.Clone(),
		End:   tr.prevPos.Clone(),
	}
	tr.lastT = tr.prevT
	tr.lastPos = tr.prevPos.Clone()
	return seg
}

// Threshold returns the configured deviation bound.
func (tr *Tracker) Threshold() float64 { return tr.threshold }
