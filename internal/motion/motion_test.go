package motion

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dynq/internal/geom"
)

func smallConfig() SimConfig {
	return SimConfig{
		Objects:    20,
		Dims:       2,
		WorldSize:  100,
		Duration:   50,
		Speed:      1,
		SpeedStd:   0.2,
		UpdateMean: 1,
		UpdateStd:  0.25,
		Seed:       42,
	}
}

func TestGenerateSegmentsInvariants(t *testing.T) {
	cfg := smallConfig()
	segs, err := GenerateSegments(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no segments generated")
	}
	perObject := map[uint64][]TimedSegment{}
	for _, s := range segs {
		perObject[s.ObjID] = append(perObject[s.ObjID], s)
		// Inside the world.
		for i := 0; i < cfg.Dims; i++ {
			if s.Seg.Start[i] < 0 || s.Seg.Start[i] > cfg.WorldSize ||
				s.Seg.End[i] < 0 || s.Seg.End[i] > cfg.WorldSize {
				t.Fatalf("segment leaves the world: %+v", s)
			}
		}
		if s.Seg.T.Empty() || s.Seg.T.Length() <= 0 {
			t.Fatalf("degenerate validity interval: %+v", s.Seg.T)
		}
	}
	if len(perObject) != cfg.Objects {
		t.Fatalf("got %d objects, want %d", len(perObject), cfg.Objects)
	}
	for obj, list := range perObject {
		// Segments tile [0, Duration] contiguously and join continuously.
		if list[0].Seg.T.Lo != 0 {
			t.Fatalf("object %d starts at %g", obj, list[0].Seg.T.Lo)
		}
		last := list[len(list)-1]
		if math.Abs(last.Seg.T.Hi-cfg.Duration) > 1e-9 {
			t.Fatalf("object %d ends at %g, want %g", obj, last.Seg.T.Hi, cfg.Duration)
		}
		for i := 1; i < len(list); i++ {
			if list[i].Seg.T.Lo != list[i-1].Seg.T.Hi {
				t.Fatalf("object %d has a time gap at segment %d", obj, i)
			}
			for d := 0; d < cfg.Dims; d++ {
				if list[i].Seg.Start[d] != list[i-1].Seg.End[d] {
					t.Fatalf("object %d trajectory is discontinuous at segment %d", obj, i)
				}
			}
		}
	}
}

func TestGenerateSegmentsDeterministic(t *testing.T) {
	a, err := GenerateSegments(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSegments(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ObjID != b[i].ObjID || a[i].Seg.T != b[i].Seg.T || a[i].Seg.Start[0] != b[i].Seg.Start[0] {
			t.Fatalf("segment %d differs between identical seeds", i)
		}
	}
	cfg := smallConfig()
	cfg.Seed = 43
	c, err := GenerateSegments(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == len(c) && a[0].Seg.Start[0] == c[0].Seg.Start[0] {
		t.Error("different seeds should give different workloads")
	}
}

func TestGenerateSegmentsValidation(t *testing.T) {
	for _, bad := range []SimConfig{
		{Objects: 0, Dims: 2, WorldSize: 1, Duration: 1, UpdateMean: 1},
		{Objects: 1, Dims: 0, WorldSize: 1, Duration: 1, UpdateMean: 1},
		{Objects: 1, Dims: 2, WorldSize: 0, Duration: 1, UpdateMean: 1},
		{Objects: 1, Dims: 2, WorldSize: 1, Duration: 0, UpdateMean: 1},
		{Objects: 1, Dims: 2, WorldSize: 1, Duration: 1, UpdateMean: 0},
	} {
		if _, err := GenerateSegments(bad); err == nil {
			t.Errorf("config %+v should be rejected", bad)
		}
	}
}

func TestPaperConfigScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full paper workload skipped in -short mode")
	}
	segs, err := GenerateSegments(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Section 5 reports 502,504 segments for this configuration; our RNG
	// differs but the scale must match (~100 updates per object ⇒ ~500k).
	if len(segs) < 450000 || len(segs) > 560000 {
		t.Errorf("paper workload yields %d segments, want ≈502k", len(segs))
	}
}

func TestStreamOrdering(t *testing.T) {
	s, err := NewStream(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	total := s.Remaining()
	if total == 0 {
		t.Fatal("empty stream")
	}
	prev := math.Inf(-1)
	count := 0
	for {
		ts, ok := s.Next()
		if !ok {
			break
		}
		if ts.Seg.T.Lo < prev {
			t.Fatalf("stream out of order: %g after %g", ts.Seg.T.Lo, prev)
		}
		prev = ts.Seg.T.Lo
		count++
	}
	if count != total {
		t.Errorf("drained %d segments, Remaining said %d", count, total)
	}
}

func TestClampReflect(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-3, 3},
		{105, 95},
		{50, 50},
		{0, 0},
		{100, 100},
		{-150, 50},
	}
	for _, c := range cases {
		if got := clampReflect(c.in, 100); got != c.want {
			t.Errorf("clampReflect(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}

// Property: clampReflect always lands in [0, size].
func TestClampReflectProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
			return true
		}
		got := clampReflect(x, 100)
		return got >= 0 && got <= 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrackerNoUpdatesWhileOnCourse(t *testing.T) {
	tr := NewTracker(0.5)
	// First observation initializes (zero velocity); a stationary object
	// never deviates.
	for i := 0; i <= 10; i++ {
		seg, err := tr.Observe(float64(i), geom.Point{5, 5})
		if err != nil {
			t.Fatal(err)
		}
		if seg != nil {
			t.Fatalf("stationary object produced an update at t=%d", i)
		}
	}
	// No update fired, but the pending (stationary) motion is still
	// unreported: flushing closes it so it can be indexed.
	tail := tr.Flush()
	if tail == nil || tail.T != (geom.Interval{Lo: 0, Hi: 10}) || tail.Start[0] != 5 || tail.End[0] != 5 {
		t.Errorf("flush = %+v, want stationary segment [0,10]", tail)
	}
	if tr.Flush() != nil {
		t.Error("second flush should be nil")
	}
	if tr.Threshold() != 0.5 {
		t.Error("threshold accessor wrong")
	}
}

func TestTrackerEmitsOnDeviation(t *testing.T) {
	tr := NewTracker(0.5)
	tr.Observe(0, geom.Point{0, 0})
	// Object moves at speed 1 along x; dead reckoning predicts standing
	// still, so deviation crosses 0.5 after half a time unit.
	seg, err := tr.Observe(0.4, geom.Point{0.4, 0})
	if err != nil || seg != nil {
		t.Fatalf("deviation 0.4 should not trigger (seg=%v err=%v)", seg, err)
	}
	seg, err = tr.Observe(0.8, geom.Point{0.8, 0})
	if err != nil {
		t.Fatal(err)
	}
	if seg == nil {
		t.Fatal("deviation 0.8 should trigger an update")
	}
	if seg.T != (geom.Interval{Lo: 0, Hi: 0.8}) || seg.End[0] != 0.8 {
		t.Errorf("closed segment = %+v", seg)
	}
	// After the update the tracker dead-reckons with velocity 1: staying
	// on course produces no further updates.
	for _, tt := range []float64{1.2, 1.6, 2.0} {
		seg, err := tr.Observe(tt, geom.Point{tt, 0})
		if err != nil {
			t.Fatal(err)
		}
		if seg != nil {
			t.Fatalf("on-course motion triggered an update at t=%g", tt)
		}
	}
	// A turn triggers again.
	seg, err = tr.Observe(3.0, geom.Point{3.0, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if seg == nil {
		t.Fatal("turning should trigger an update")
	}
	// Flush returns the tail.
	tr.Observe(3.5, geom.Point{3.2, 1.2})
	tail := tr.Flush()
	if tail == nil || tail.T.Lo != 3.0 || tail.T.Hi != 3.5 {
		t.Errorf("flush = %+v", tail)
	}
	// Second flush is empty.
	if tr.Flush() != nil {
		t.Error("double flush should be nil")
	}
}

func TestTrackerRejectsTimeTravel(t *testing.T) {
	tr := NewTracker(1)
	tr.Observe(5, geom.Point{0, 0})
	if _, err := tr.Observe(5, geom.Point{1, 1}); err == nil {
		t.Error("equal timestamps should be rejected")
	}
	if _, err := tr.Observe(4, geom.Point{1, 1}); err == nil {
		t.Error("decreasing timestamps should be rejected")
	}
}

// Property: a tracker following any smooth trajectory reconstructs it
// within threshold + one observation step of error at segment joins.
func TestTrackerBoundedErrorProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newRand(seed)
		tr := NewTracker(0.5)
		// Piecewise-linear true trajectory with occasional turns.
		pos := geom.Point{r.Float64() * 10, r.Float64() * 10}
		vel := geom.Point{r.Float64()*2 - 1, r.Float64()*2 - 1}
		var segs []*geom.Segment
		dt := 0.05
		for step := 0; step < 400; step++ {
			tNow := float64(step) * dt
			if r.Intn(50) == 0 {
				vel = geom.Point{r.Float64()*2 - 1, r.Float64()*2 - 1}
			}
			pos = pos.Add(vel.Scale(dt))
			seg, err := tr.Observe(tNow, pos)
			if err != nil {
				return false
			}
			if seg != nil {
				segs = append(segs, seg)
			}
		}
		if tail := tr.Flush(); tail != nil {
			segs = append(segs, tail)
		}
		// Segments must be contiguous in time.
		for i := 1; i < len(segs); i++ {
			if segs[i].T.Lo != segs[i-1].T.Hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
