// Package motion implements the paper's motion model (Section 3.1):
// objects translate linearly between motion updates, each update carrying
// a validity interval and motion parameters (Equation 1). A simulator
// generates piecewise-linear trajectories matching the experimental
// workload, and a dead-reckoning tracker converts continuous observations
// into bounded-error motion updates (the update-threshold policy of [28]
// the paper adopts).
package motion

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"dynq/internal/geom"
)

// TimedSegment is one motion update of one object: the object moved
// linearly from Seg.Start to Seg.End during Seg.T.
type TimedSegment struct {
	ObjID uint64
	Seg   geom.Segment
}

// SimConfig describes a synthetic mobile-object population. The defaults
// (via PaperConfig) reproduce the paper's data generation: 5000 objects in
// a 100×100 space over 100 time units, re-updating approximately every 1
// time unit, moving at ≈1 length unit per time unit.
type SimConfig struct {
	Objects    int     // number of mobile objects
	Dims       int     // spatial dimensionality (paper: 2)
	WorldSize  float64 // space is [0, WorldSize]^Dims
	Duration   float64 // simulated time span [0, Duration]
	Speed      float64 // mean speed (length units per time unit)
	SpeedStd   float64 // standard deviation of per-segment speed
	UpdateMean float64 // mean time between motion updates
	UpdateStd  float64 // std-dev of time between updates
	Seed       int64   // RNG seed; runs are deterministic given a seed
}

// PaperConfig returns the workload of Section 5.
func PaperConfig() SimConfig {
	return SimConfig{
		Objects:    5000,
		Dims:       2,
		WorldSize:  100,
		Duration:   100,
		Speed:      1.0,
		SpeedStd:   0.2,
		UpdateMean: 1.0,
		UpdateStd:  0.25,
		Seed:       1,
	}
}

func (c SimConfig) validate() error {
	if c.Objects < 1 {
		return fmt.Errorf("motion: Objects must be positive, got %d", c.Objects)
	}
	if c.Dims < 1 {
		return fmt.Errorf("motion: Dims must be positive, got %d", c.Dims)
	}
	if c.WorldSize <= 0 || c.Duration <= 0 {
		return fmt.Errorf("motion: WorldSize and Duration must be positive")
	}
	if c.UpdateMean <= 0 {
		return fmt.Errorf("motion: UpdateMean must be positive")
	}
	return nil
}

// GenerateSegments produces every motion segment of every object for the
// whole duration, ordered by object then by time. Each object's segments
// tile [0, Duration] and join continuously (an update begins where the
// previous motion ended).
func GenerateSegments(cfg SimConfig) ([]TimedSegment, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	var out []TimedSegment
	for obj := 0; obj < cfg.Objects; obj++ {
		out = appendObjectSegments(out, cfg, uint64(obj), r)
	}
	return out, nil
}

func appendObjectSegments(out []TimedSegment, cfg SimConfig, obj uint64, r *rand.Rand) []TimedSegment {
	pos := make(geom.Point, cfg.Dims)
	for i := range pos {
		pos[i] = r.Float64() * cfg.WorldSize
	}
	t := 0.0
	for t < cfg.Duration {
		dt := cfg.UpdateMean + r.NormFloat64()*cfg.UpdateStd
		// Clamp pathological draws: updates arrive "approximately" every
		// UpdateMean units, never instantaneously.
		if dt < cfg.UpdateMean/10 {
			dt = cfg.UpdateMean / 10
		}
		if t+dt > cfg.Duration {
			dt = cfg.Duration - t
		}
		speed := cfg.Speed + r.NormFloat64()*cfg.SpeedStd
		if speed < 0 {
			speed = 0
		}
		vel := randomDirection(cfg.Dims, r)
		end := make(geom.Point, cfg.Dims)
		for i := range end {
			end[i] = clampReflect(pos[i]+vel[i]*speed*dt, cfg.WorldSize)
		}
		out = append(out, TimedSegment{
			ObjID: obj,
			Seg: geom.Segment{
				T:     geom.Interval{Lo: t, Hi: t + dt},
				Start: pos,
				End:   end,
			},
		})
		pos = end
		t += dt
	}
	return out
}

// randomDirection returns a unit vector uniform on the sphere.
func randomDirection(dims int, r *rand.Rand) geom.Point {
	v := make(geom.Point, dims)
	for {
		s := 0.0
		for i := range v {
			v[i] = r.NormFloat64()
			s += v[i] * v[i]
		}
		if s > 1e-12 {
			n := math.Sqrt(s)
			for i := range v {
				v[i] /= n
			}
			return v
		}
	}
}

// clampReflect keeps a coordinate inside [0, size] by reflecting
// overshoot back into the domain (objects bounce off the world border).
func clampReflect(x, size float64) float64 {
	for x < 0 || x > size {
		if x < 0 {
			x = -x
		}
		if x > size {
			x = 2*size - x
		}
	}
	return x
}

// Stream yields the same segments as GenerateSegments but ordered
// globally by segment start time, modelling the arrival order of motion
// updates at the database. It is used by the concurrent-update tests and
// the monitoring example.
type Stream struct {
	h segHeap
}

// NewStream builds a time-ordered update stream for the population.
func NewStream(cfg SimConfig) (*Stream, error) {
	segs, err := GenerateSegments(cfg)
	if err != nil {
		return nil, err
	}
	s := &Stream{h: segHeap(segs)}
	heap.Init(&s.h)
	return s, nil
}

// Next returns the next motion update in start-time order; ok is false
// when the stream is exhausted.
func (s *Stream) Next() (TimedSegment, bool) {
	if s.h.Len() == 0 {
		return TimedSegment{}, false
	}
	return heap.Pop(&s.h).(TimedSegment), true
}

// Remaining reports how many updates are left.
func (s *Stream) Remaining() int { return s.h.Len() }

type segHeap []TimedSegment

func (h segHeap) Len() int      { return len(h) }
func (h segHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h segHeap) Less(i, j int) bool {
	if h[i].Seg.T.Lo != h[j].Seg.T.Lo {
		return h[i].Seg.T.Lo < h[j].Seg.T.Lo
	}
	return h[i].ObjID < h[j].ObjID
}
func (h *segHeap) Push(x any) { *h = append(*h, x.(TimedSegment)) }
func (h *segHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
