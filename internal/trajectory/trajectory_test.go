package trajectory

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dynq/internal/geom"
)

func window(x0, x1, y0, y1 float64) geom.Box {
	return geom.Box{{Lo: x0, Hi: x1}, {Lo: y0, Hi: y1}}
}

// straightTrajectory moves a w×w window rightwards at the given speed:
// window center starts at (cx, cy) at t=0 and ends at t=dur.
func straightTrajectory(t *testing.T, cx, cy, w, speed, dur float64) *Trajectory {
	t.Helper()
	tr, err := New([]Key{
		{T: 0, Window: window(cx-w/2, cx+w/2, cy-w/2, cy+w/2)},
		{T: dur, Window: window(cx-w/2+speed*dur, cx+w/2+speed*dur, cy-w/2, cy+w/2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty key list should be rejected")
	}
	if _, err := New([]Key{{T: 0, Window: geom.Box{}}}); err == nil {
		t.Error("zero-dimensional window should be rejected")
	}
	if _, err := New([]Key{{T: 0, Window: window(1, 0, 0, 1)}}); err == nil {
		t.Error("empty window should be rejected")
	}
	if _, err := New([]Key{
		{T: 0, Window: window(0, 1, 0, 1)},
		{T: 0, Window: window(0, 1, 0, 1)},
	}); err == nil {
		t.Error("non-increasing key times should be rejected")
	}
	if _, err := New([]Key{
		{T: 0, Window: window(0, 1, 0, 1)},
		{T: 1, Window: geom.Box{{Lo: 0, Hi: 1}}},
	}); err == nil {
		t.Error("dimension mismatch between keys should be rejected")
	}
}

func TestAccessorsAndImmutability(t *testing.T) {
	keys := []Key{
		{T: 0, Window: window(0, 8, 0, 8)},
		{T: 10, Window: window(10, 18, 0, 8)},
	}
	tr, err := New(keys)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Dims() != 2 {
		t.Errorf("dims = %d", tr.Dims())
	}
	if tr.TimeSpan() != (geom.Interval{Lo: 0, Hi: 10}) {
		t.Errorf("span = %v", tr.TimeSpan())
	}
	// Mutating the input or the returned keys must not affect the
	// trajectory.
	keys[0].Window[0] = geom.Interval{Lo: -99, Hi: 99}
	got := tr.Keys()
	got[1].Window[0] = geom.Interval{Lo: -99, Hi: 99}
	if tr.Keys()[0].Window[0] != (geom.Interval{Lo: 0, Hi: 8}) ||
		tr.Keys()[1].Window[0] != (geom.Interval{Lo: 10, Hi: 18}) {
		t.Error("trajectory state was mutated through aliasing")
	}
}

func TestWindowAt(t *testing.T) {
	tr := straightTrajectory(t, 4, 4, 8, 1, 10) // center x: 4 → 14
	w := tr.WindowAt(5)
	if w[0] != (geom.Interval{Lo: 5, Hi: 13}) || w[1] != (geom.Interval{Lo: 0, Hi: 8}) {
		t.Errorf("window at t=5: %v", w)
	}
	// Clamped outside the span.
	if tr.WindowAt(-5)[0] != (geom.Interval{Lo: 0, Hi: 8}) {
		t.Errorf("window before start: %v", tr.WindowAt(-5))
	}
	if tr.WindowAt(99)[0] != (geom.Interval{Lo: 10, Hi: 18}) {
		t.Errorf("window after end: %v", tr.WindowAt(99))
	}
}

func TestWindowAtMultiSegment(t *testing.T) {
	tr, err := New([]Key{
		{T: 0, Window: window(0, 2, 0, 2)},
		{T: 1, Window: window(10, 12, 0, 2)},
		{T: 3, Window: window(10, 12, 20, 22)},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := tr.WindowAt(0.5)
	if w[0] != (geom.Interval{Lo: 5, Hi: 7}) {
		t.Errorf("first segment midpoint: %v", w)
	}
	w = tr.WindowAt(2)
	if w[1] != (geom.Interval{Lo: 10, Hi: 12}) || w[0] != (geom.Interval{Lo: 10, Hi: 12}) {
		t.Errorf("second segment midpoint: %v", w)
	}
}

// staticBox builds the dual-space box of a static object at (x, y) alive
// during [t0, t1].
func staticBox(x, y, t0, t1 float64) geom.Box {
	return geom.Box{{Lo: x, Hi: x}, {Lo: y, Hi: y}, {Lo: t0, Hi: t0}, {Lo: t1, Hi: t1}}
}

func TestOverlapBoxStationaryObject(t *testing.T) {
	// Window [0,8]² sweeping right at speed 1 for 20 tu. A point at
	// x=10, y=4 is covered while 10 ∈ [t, t+8] ⇒ t ∈ [2, 10].
	tr := straightTrajectory(t, 4, 4, 8, 1, 20)
	var set geom.IntervalSet
	tr.OverlapBox(staticBox(10, 4, 0, 100), &set)
	ivs := set.Intervals()
	if len(ivs) != 1 {
		t.Fatalf("episodes = %v", ivs)
	}
	if math.Abs(ivs[0].Lo-2) > 1e-9 || math.Abs(ivs[0].Hi-10) > 1e-9 {
		t.Errorf("visibility = %v, want [2,10]", ivs[0])
	}
	// Outside the swept corridor in y: never visible.
	set.Reset()
	tr.OverlapBox(staticBox(10, 20, 0, 100), &set)
	if !set.Empty() {
		t.Errorf("off-corridor box visible: %v", set.Intervals())
	}
	// Validity clipping: object only exists during [5, 6].
	set.Reset()
	tr.OverlapBox(staticBox(10, 4, 5, 6), &set)
	ivs = set.Intervals()
	if len(ivs) != 1 || math.Abs(ivs[0].Lo-5) > 1e-9 || math.Abs(ivs[0].Hi-6) > 1e-9 {
		t.Errorf("validity-clipped visibility = %v, want [5,6]", ivs)
	}
}

func TestOverlapBoxZigZagProducesEpisodes(t *testing.T) {
	// The window moves right over the box, away, and back: the box is
	// visible in two disjoint episodes.
	tr, err := New([]Key{
		{T: 0, Window: window(0, 4, 0, 4)},
		{T: 10, Window: window(20, 24, 0, 4)},
		{T: 20, Window: window(0, 4, 0, 4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	var set geom.IntervalSet
	tr.OverlapBox(staticBox(10, 2, 0, 100), &set)
	ivs := set.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("expected 2 visibility episodes, got %v", ivs)
	}
	// First pass: window covers x=10 while 10 ∈ [2t, 2t+4] ⇒ t ∈ [3, 5].
	if math.Abs(ivs[0].Lo-3) > 1e-9 || math.Abs(ivs[0].Hi-5) > 1e-9 {
		t.Errorf("first episode = %v, want [3,5]", ivs[0])
	}
	// Second pass is the mirror: t ∈ [15, 17].
	if math.Abs(ivs[1].Lo-15) > 1e-9 || math.Abs(ivs[1].Hi-17) > 1e-9 {
		t.Errorf("second episode = %v, want [15,17]", ivs[1])
	}
}

func TestOverlapBoxGrowingWindow(t *testing.T) {
	// The window grows in place (observer gaining altitude): a distant
	// point becomes visible once the border reaches it.
	tr, err := New([]Key{
		{T: 0, Window: window(4, 6, 4, 6)},
		{T: 10, Window: window(0, 10, 0, 10)},
	})
	if err != nil {
		t.Fatal(err)
	}
	var set geom.IntervalSet
	tr.OverlapBox(staticBox(8, 5, 0, 100), &set)
	ivs := set.Intervals()
	// Upper x border: 6 + 0.4t reaches 8 at t = 5.
	if len(ivs) != 1 || math.Abs(ivs[0].Lo-5) > 1e-9 || math.Abs(ivs[0].Hi-10) > 1e-9 {
		t.Errorf("growing-window visibility = %v, want [5,10]", ivs)
	}
}

func TestOverlapSegmentMovingObject(t *testing.T) {
	// Window [0,8]² moves right at speed 1; object moves left through it.
	tr := straightTrajectory(t, 4, 4, 8, 1, 20)
	obj := geom.Segment{
		T:     geom.Interval{Lo: 0, Hi: 20},
		Start: geom.Point{20, 4},
		End:   geom.Point{0, 4}, // speed -1 in x
	}
	var set geom.IntervalSet
	tr.OverlapSegment(obj, &set)
	ivs := set.Intervals()
	if len(ivs) != 1 {
		t.Fatalf("episodes = %v", ivs)
	}
	// Object x(t) = 20 - t; window [t, t+8]. Inside while t ≥ 6 and t ≤ 10.
	if math.Abs(ivs[0].Lo-6) > 1e-9 || math.Abs(ivs[0].Hi-10) > 1e-9 {
		t.Errorf("moving-object visibility = %v, want [6,10]", ivs[0])
	}
	// An object pacing the window stays visible the whole time.
	pacing := geom.Segment{
		T:     geom.Interval{Lo: 0, Hi: 20},
		Start: geom.Point{4, 4},
		End:   geom.Point{24, 4},
	}
	set.Reset()
	tr.OverlapSegment(pacing, &set)
	ivs = set.Intervals()
	if len(ivs) != 1 || math.Abs(ivs[0].Lo-0) > 1e-9 || math.Abs(ivs[0].Hi-20) > 1e-9 {
		t.Errorf("pacing object visibility = %v, want [0,20]", ivs)
	}
}

func TestSingleKeyTrajectory(t *testing.T) {
	tr, err := New([]Key{{T: 5, Window: window(0, 8, 0, 8)}})
	if err != nil {
		t.Fatal(err)
	}
	var set geom.IntervalSet
	tr.OverlapBox(staticBox(4, 4, 0, 10), &set)
	if set.Empty() || set.Hull() != (geom.Interval{Lo: 5, Hi: 5}) {
		t.Errorf("single-key overlap = %v", set.Intervals())
	}
	set.Reset()
	tr.OverlapBox(staticBox(40, 4, 0, 10), &set)
	if !set.Empty() {
		t.Error("far box should not overlap single-key window")
	}
	// Segment variant: object must be inside the window at T.
	set.Reset()
	obj := geom.Segment{T: geom.Interval{Lo: 0, Hi: 10}, Start: geom.Point{0, 4}, End: geom.Point{10, 4}}
	tr.OverlapSegment(obj, &set) // at t=5 the object is at x=5 ∈ [0,8]
	if set.Empty() {
		t.Error("object inside window at the key time should overlap")
	}
	// Object alive only outside the key time: no overlap.
	set.Reset()
	dead := geom.Segment{T: geom.Interval{Lo: 6, Hi: 10}, Start: geom.Point{4, 4}, End: geom.Point{4, 4}}
	tr.OverlapSegment(dead, &set)
	if !set.Empty() {
		t.Error("object born after the key time should not overlap")
	}
}

func TestInflateSPDQ(t *testing.T) {
	tr := straightTrajectory(t, 4, 4, 8, 1, 10)
	inflated, err := tr.Inflate(func(tt float64) float64 { return 1 + tt/10 })
	if err != nil {
		t.Fatal(err)
	}
	k := inflated.Keys()
	if k[0].Window[0] != (geom.Interval{Lo: -1, Hi: 9}) {
		t.Errorf("inflated first key = %v", k[0].Window)
	}
	if k[1].Window[0] != (geom.Interval{Lo: 8, Hi: 20}) {
		t.Errorf("inflated last key = %v", k[1].Window)
	}
	// SPDQ windows dominate PDQ windows: anything visible to the exact
	// trajectory is visible to the inflated one.
	var a, b geom.IntervalSet
	box := staticBox(12, 4, 0, 100)
	tr.OverlapBox(box, &a)
	inflated.OverlapBox(box, &b)
	if !a.Empty() && (b.Empty() || b.Hull().Lo > a.Hull().Lo || b.Hull().Hi < a.Hull().Hi) {
		t.Errorf("inflated visibility %v should contain exact visibility %v", b.Hull(), a.Hull())
	}
	if _, err := tr.Inflate(func(float64) float64 { return -1 }); err == nil {
		t.Error("negative inflation should be rejected")
	}
}

// Property: the analytic overlap interval agrees with dense sampling of
// "is the box inside the interpolated window at time t".
func TestOverlapBoxSamplingProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		keys := []Key{}
		tt := 0.0
		for k := 0; k < 3+r.Intn(3); k++ {
			cx, cy := r.Float64()*50, r.Float64()*50
			w := 4 + r.Float64()*10
			keys = append(keys, Key{T: tt, Window: window(cx, cx+w, cy, cy+w)})
			tt += 1 + r.Float64()*5
		}
		tr, err := New(keys)
		if err != nil {
			return false
		}
		box := staticBox(r.Float64()*60, r.Float64()*60, 0, 1000)
		var set geom.IntervalSet
		tr.OverlapBox(box, &set)
		span := tr.TimeSpan()
		for i := 0; i <= 300; i++ {
			tc := span.Lo + float64(i)/300*span.Length()
			w := tr.WindowAt(tc)
			inside := w[0].ContainsValue(box[0].Lo) && w[1].ContainsValue(box[1].Lo)
			if inside != set.Contains(tc) {
				// Tolerate boundary grazing.
				d := math.Min(
					math.Min(math.Abs(w[0].Lo-box[0].Lo), math.Abs(w[0].Hi-box[0].Lo)),
					math.Min(math.Abs(w[1].Lo-box[1].Lo), math.Abs(w[1].Hi-box[1].Lo)),
				)
				if d > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: OverlapSegment agrees with sampling the moving object against
// the moving window.
func TestOverlapSegmentSamplingProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := mustTraj(r)
		span := tr.TimeSpan()
		obj := geom.Segment{
			T:     geom.Interval{Lo: span.Lo + r.Float64()*2, Hi: span.Hi - r.Float64()*2},
			Start: geom.Point{r.Float64() * 60, r.Float64() * 60},
			End:   geom.Point{r.Float64() * 60, r.Float64() * 60},
		}
		if obj.T.Empty() {
			return true
		}
		var set geom.IntervalSet
		tr.OverlapSegment(obj, &set)
		for i := 0; i <= 300; i++ {
			tc := obj.T.Lo + float64(i)/300*obj.T.Length()
			w := tr.WindowAt(tc)
			p := obj.At(tc)
			inside := w.ContainsPoint(p)
			if inside != set.Contains(tc) {
				d := math.Min(
					math.Min(math.Abs(w[0].Lo-p[0]), math.Abs(w[0].Hi-p[0])),
					math.Min(math.Abs(w[1].Lo-p[1]), math.Abs(w[1].Hi-p[1])),
				)
				if d > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func mustTraj(r *rand.Rand) *Trajectory {
	keys := []Key{}
	tt := 0.0
	for k := 0; k < 3; k++ {
		cx, cy := r.Float64()*50, r.Float64()*50
		w := 4 + r.Float64()*10
		keys = append(keys, Key{T: tt, Window: window(cx, cx+w, cy, cy+w)})
		tt += 2 + r.Float64()*5
	}
	tr, err := New(keys)
	if err != nil {
		panic(err)
	}
	return tr
}
