package trajectory

import (
	"math/rand"
	"testing"

	"dynq/internal/geom"
)

func benchTrajectory(b *testing.B) *Trajectory {
	b.Helper()
	keys := []Key{
		{T: 0, Window: window(0, 8, 40, 48)},
		{T: 20, Window: window(40, 48, 40, 48)},
		{T: 35, Window: window(40, 48, 70, 78)},
		{T: 50, Window: window(10, 18, 70, 78)},
	}
	tr, err := New(keys)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkOverlapBox(b *testing.B) {
	tr := benchTrajectory(b)
	r := rand.New(rand.NewSource(1))
	boxes := make([]geom.Box, 256)
	for i := range boxes {
		x, y := r.Float64()*90, r.Float64()*90
		t0 := r.Float64() * 45
		boxes[i] = geom.Box{
			{Lo: x, Hi: x + 5}, {Lo: y, Hi: y + 5},
			{Lo: t0, Hi: t0 + 2}, {Lo: t0 + 1, Hi: t0 + 3},
		}
	}
	var set geom.IntervalSet
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set.Reset()
		tr.OverlapBox(boxes[i%len(boxes)], &set)
	}
}

func BenchmarkOverlapSegment(b *testing.B) {
	tr := benchTrajectory(b)
	r := rand.New(rand.NewSource(2))
	segs := make([]geom.Segment, 256)
	for i := range segs {
		t0 := r.Float64() * 45
		segs[i] = geom.Segment{
			T:     geom.Interval{Lo: t0, Hi: t0 + 1.5},
			Start: geom.Point{r.Float64() * 90, r.Float64() * 90},
			End:   geom.Point{r.Float64() * 90, r.Float64() * 90},
		}
	}
	var set geom.IntervalSet
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set.Reset()
		tr.OverlapSegment(segs[i%len(segs)], &set)
	}
}

func BenchmarkWindowAt(b *testing.B) {
	tr := benchTrajectory(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.WindowAt(float64(i%50) + 0.25)
	}
}
