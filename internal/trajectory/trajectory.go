// Package trajectory models the moving query window of a predictive
// dynamic query (Section 4.1). A trajectory is a sequence of key snapshot
// queries K¹…Kⁿ (Equation 2): spatial windows pinned at strictly
// increasing times. Between consecutive keys the window's borders
// interpolate linearly, sweeping the trapezoid regions of Figure 3.
//
// The central operation is computing the time interval(s) during which a
// space-time bounding box — or an exact motion segment — overlaps the
// moving window (Equation 3). The paper's "four cases" of border/box
// intersection reduce to solving linear inequalities in t, which
// geom.Linear provides; the per-dimension intervals are intersected, and
// the per-query-segment intervals unioned into disjoint visibility
// episodes.
package trajectory

import (
	"fmt"
	"sort"

	"dynq/internal/geom"
)

// Key is one key snapshot query: the observer's spatial window at time T.
type Key struct {
	T      float64
	Window geom.Box // one interval per spatial dimension
}

// Trajectory is an immutable sequence of key snapshots with strictly
// increasing times and equal-dimensionality non-empty windows.
type Trajectory struct {
	keys []Key
	dims int
}

// New validates and builds a trajectory. At least one key is required; a
// single key describes a stationary instantaneous query.
func New(keys []Key) (*Trajectory, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("trajectory: need at least one key snapshot")
	}
	dims := len(keys[0].Window)
	if dims == 0 {
		return nil, fmt.Errorf("trajectory: key windows must have at least one dimension")
	}
	for i, k := range keys {
		if len(k.Window) != dims {
			return nil, fmt.Errorf("trajectory: key %d has %d dims, want %d", i, len(k.Window), dims)
		}
		if k.Window.Empty() {
			return nil, fmt.Errorf("trajectory: key %d window is empty", i)
		}
		if i > 0 && keys[i-1].T >= k.T {
			return nil, fmt.Errorf("trajectory: key times must be strictly increasing (%g after %g)", k.T, keys[i-1].T)
		}
	}
	cp := make([]Key, len(keys))
	for i, k := range keys {
		cp[i] = Key{T: k.T, Window: k.Window.Clone()}
	}
	return &Trajectory{keys: cp, dims: dims}, nil
}

// Dims returns the spatial dimensionality of the query windows.
func (tr *Trajectory) Dims() int { return tr.dims }

// Keys returns a copy of the key snapshots.
func (tr *Trajectory) Keys() []Key {
	cp := make([]Key, len(tr.keys))
	for i, k := range tr.keys {
		cp[i] = Key{T: k.T, Window: k.Window.Clone()}
	}
	return cp
}

// TimeSpan returns [first key time, last key time].
func (tr *Trajectory) TimeSpan() geom.Interval {
	return geom.Interval{Lo: tr.keys[0].T, Hi: tr.keys[len(tr.keys)-1].T}
}

// WindowAt returns the interpolated query window at time t (clamped to
// the trajectory's time span). Snapshot queries posed by a renderer
// between key frames see exactly this window.
func (tr *Trajectory) WindowAt(t float64) geom.Box {
	n := len(tr.keys)
	if t <= tr.keys[0].T {
		return tr.keys[0].Window.Clone()
	}
	if t >= tr.keys[n-1].T {
		return tr.keys[n-1].Window.Clone()
	}
	j := sort.Search(n, func(i int) bool { return tr.keys[i].T > t }) - 1
	a, b := tr.keys[j], tr.keys[j+1]
	f := (t - a.T) / (b.T - a.T)
	w := make(geom.Box, tr.dims)
	for i := 0; i < tr.dims; i++ {
		w[i] = geom.Interval{
			Lo: a.Window[i].Lo + f*(b.Window[i].Lo-a.Window[i].Lo),
			Hi: a.Window[i].Hi + f*(b.Window[i].Hi-a.Window[i].Hi),
		}
	}
	return w
}

// Inflate returns the SPDQ variant of the trajectory (Section 4): each
// key window grown by delta(K.t), admitting observers that deviate from
// the predicted path by up to that much.
func (tr *Trajectory) Inflate(delta func(t float64) float64) (*Trajectory, error) {
	keys := make([]Key, len(tr.keys))
	for i, k := range tr.keys {
		d := delta(k.T)
		if d < 0 {
			return nil, fmt.Errorf("trajectory: negative inflation %g at t=%g", d, k.T)
		}
		keys[i] = Key{T: k.T, Window: k.Window.Expand(d)}
	}
	return New(keys)
}

// segmentRange returns the indices [lo, hi) of query segments S^j =
// (K^j, K^{j+1}) whose time spans overlap w. A single-key trajectory has
// one degenerate segment.
func (tr *Trajectory) segmentRange(w geom.Interval) (int, int) {
	n := len(tr.keys)
	if n == 1 {
		if w.ContainsValue(tr.keys[0].T) {
			return 0, 1
		}
		return 0, 0
	}
	// First segment with end time ≥ w.Lo.
	lo := sort.Search(n-1, func(j int) bool { return tr.keys[j+1].T >= w.Lo })
	// First segment with start time > w.Hi.
	hi := sort.Search(n-1, func(j int) bool { return tr.keys[j].T > w.Hi })
	return lo, hi
}

// OverlapBox appends to set the disjoint time intervals during which the
// moving query window overlaps the space-time box b, given in the index's
// dual key space: d spatial extents, then the start-time and end-time
// extents. This is Equation 3 evaluated for every relevant query segment.
func (tr *Trajectory) OverlapBox(b geom.Box, set *geom.IntervalSet) {
	if len(b) != tr.dims+2 {
		panic(fmt.Sprintf("trajectory: box has %d dims, want %d", len(b), tr.dims+2))
	}
	hull := geom.Interval{Lo: b[tr.dims].Lo, Hi: b[tr.dims+1].Hi} // validity hull
	span := tr.TimeSpan().Intersect(hull)
	if span.Empty() {
		return
	}
	if len(tr.keys) == 1 {
		if tr.keys[0].Window.Overlaps(geom.Box(b[:tr.dims])) {
			set.Add(geom.IntervalOf(tr.keys[0].T))
		}
		return
	}
	lo, hi := tr.segmentRange(span)
	for j := lo; j < hi; j++ {
		iv := tr.overlapBoxSegment(j, b, span)
		set.Add(iv)
	}
}

// overlapBoxSegment computes T^j for one query segment: the sub-interval
// of the segment's time span during which box b overlaps the interpolated
// window.
func (tr *Trajectory) overlapBoxSegment(j int, b geom.Box, span geom.Interval) geom.Interval {
	a, c := tr.keys[j], tr.keys[j+1]
	w := geom.Interval{Lo: a.T, Hi: c.T}.Intersect(span)
	for i := 0; i < tr.dims && !w.Empty(); i++ {
		lower := geom.LinearBetween(a.T, a.Window[i].Lo, c.T, c.Window[i].Lo)
		upper := geom.LinearBetween(a.T, a.Window[i].Hi, c.T, c.Window[i].Hi)
		// Overlap along dimension i: lower border ≤ box high AND upper
		// border ≥ box low (the four cases of Figure 3(b)).
		w = lower.SolveLE(b[i].Hi, w)
		w = upper.SolveGE(b[i].Lo, w)
	}
	return w
}

// OverlapSegment appends to set the disjoint time intervals during which
// the moving query window contains the (moving) object described by the
// exact motion segment s. This is the leaf-level test: both the query
// borders and the object's coordinates are linear in t, so containment per
// dimension is again a pair of linear inequalities.
func (tr *Trajectory) OverlapSegment(s geom.Segment, set *geom.IntervalSet) {
	if s.Dims() != tr.dims {
		panic(fmt.Sprintf("trajectory: segment has %d dims, want %d", s.Dims(), tr.dims))
	}
	span := tr.TimeSpan().Intersect(s.T)
	if span.Empty() {
		return
	}
	if len(tr.keys) == 1 {
		t := tr.keys[0].T
		if tr.keys[0].Window.ContainsPoint(s.At(t)) {
			set.Add(geom.IntervalOf(t))
		}
		return
	}
	lo, hi := tr.segmentRange(span)
	for j := lo; j < hi; j++ {
		iv := tr.overlapMotionSegment(j, s, span)
		set.Add(iv)
	}
}

func (tr *Trajectory) overlapMotionSegment(j int, s geom.Segment, span geom.Interval) geom.Interval {
	a, c := tr.keys[j], tr.keys[j+1]
	w := geom.Interval{Lo: a.T, Hi: c.T}.Intersect(span)
	for i := 0; i < tr.dims && !w.Empty(); i++ {
		lower := geom.LinearBetween(a.T, a.Window[i].Lo, c.T, c.Window[i].Lo)
		upper := geom.LinearBetween(a.T, a.Window[i].Hi, c.T, c.Window[i].Hi)
		x := s.Coord(i)
		// lower(t) ≤ x(t) ≤ upper(t).
		w = x.Sub(lower).SolveGE(0, w)
		w = upper.Sub(x).SolveGE(0, w)
	}
	return w
}
