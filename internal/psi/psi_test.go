package psi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dynq/internal/geom"
	"dynq/internal/motion"
	"dynq/internal/pager"
	"dynq/internal/rtree"
	"dynq/internal/stats"
)

func genEntries(t testing.TB, objects int, seed int64) []rtree.LeafEntry {
	t.Helper()
	segs, err := motion.GenerateSegments(motion.SimConfig{
		Objects: objects, Dims: 2, WorldSize: 100, Duration: 50,
		Speed: 1, SpeedStd: 0.2, UpdateMean: 1, UpdateStd: 0.25, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]rtree.LeafEntry, len(segs))
	for i, s := range segs {
		entries[i] = rtree.LeafEntry{ID: rtree.ObjectID(s.ObjID), Seg: s.Seg}
	}
	return entries
}

func bruteForce(entries []rtree.LeafEntry, spatial geom.Box, tw geom.Interval) map[rtree.ObjectID]int {
	q := append(spatial.Clone(), tw)
	out := map[rtree.ObjectID]int{}
	for _, e := range entries {
		if e.Seg.IntersectsBox(q) {
			out[e.ID]++
		}
	}
	return out
}

func TestParamRoundTrip(t *testing.T) {
	seg := geom.Segment{
		T:     geom.Interval{Lo: 2, Hi: 6},
		Start: geom.Point{10, 20},
		End:   geom.Point{18, 12},
	}
	p, err := toParam(2, seg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Start[0] != 10 || p.Start[1] != 20 || p.Start[2] != 2 || p.Start[3] != -2 {
		t.Errorf("params = %v", p.Start)
	}
	back := fromParam(2, p)
	if back.T != seg.T || back.Start[0] != 10 || back.End[0] != 18 || back.End[1] != 12 {
		t.Errorf("round trip = %+v", back)
	}
	if _, err := toParam(2, geom.Segment{T: geom.Interval{Lo: 0, Hi: 1}, Start: geom.Point{1}, End: geom.Point{2}}); err == nil {
		t.Error("wrong dims should be rejected")
	}
}

func TestPSIRangeSearchMatchesBruteForce(t *testing.T) {
	entries := genEntries(t, 100, 1)
	ix, err := BulkLoad(2, pager.NewMemStore(), entries)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Size() != len(entries) {
		t.Fatalf("size = %d, want %d", ix.Size(), len(entries))
	}
	// Quantized reference (the index stores f32).
	quant := make([]rtree.LeafEntry, len(entries))
	for i, e := range entries {
		quant[i] = rtree.LeafEntry{ID: e.ID, Seg: rtree.QuantizeSegment(e.Seg)}
	}
	for _, q := range []struct {
		spatial geom.Box
		tw      geom.Interval
	}{
		{geom.Box{{Lo: 20, Hi: 35}, {Lo: 20, Hi: 35}}, geom.Interval{Lo: 10, Hi: 12}},
		{geom.Box{{Lo: 0, Hi: 100}, {Lo: 0, Hi: 100}}, geom.Interval{Lo: 0, Hi: 1}},
		{geom.Box{{Lo: 70, Hi: 90}, {Lo: 5, Hi: 25}}, geom.Interval{Lo: 40, Hi: 45}},
	} {
		var c stats.Counters
		got, err := ix.RangeSearch(q.spatial, q.tw, &c)
		if err != nil {
			t.Fatal(err)
		}
		// PSI reconstructs segments from quantized parameters, so compare
		// object-level with a small tolerance on counts.
		want := 0
		for _, n := range bruteForce(quant, q.spatial, q.tw) {
			want += n
		}
		if diff := len(got) - want; diff < -2 || diff > 2 {
			t.Errorf("query %v/%v: got %d, brute force %d", q.spatial, q.tw, len(got), want)
		}
	}
}

func TestPSIInsertPath(t *testing.T) {
	ix, err := New(2, pager.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range genEntries(t, 20, 2) {
		if err := ix.Insert(e.ID, e.Seg); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	var c stats.Counters
	got, err := ix.RangeSearch(geom.Box{{Lo: 0, Hi: 100}, {Lo: 0, Hi: 100}}, geom.Interval{Lo: 0, Hi: 100}, &c)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != ix.Size() {
		t.Errorf("whole-world search found %d of %d", len(got), ix.Size())
	}
}

func TestPSIValidation(t *testing.T) {
	ix, err := New(2, pager.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	var c stats.Counters
	if _, err := ix.RangeSearch(geom.Box{{Lo: 0, Hi: 1}}, geom.Interval{Lo: 0, Hi: 1}, &c); err == nil {
		t.Error("dimension mismatch should be rejected")
	}
	if _, err := ix.RangeSearch(geom.Box{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}, geom.Interval{Lo: 1, Hi: 0}, &c); err == nil {
		t.Error("empty time window should be rejected")
	}
	got, err := ix.RangeSearch(geom.Box{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}, geom.Interval{Lo: 0, Hi: 1}, &c)
	if err != nil || got != nil {
		t.Errorf("empty index search = %v, %v", got, err)
	}
}

// Property: PSI finds exactly the same objects as direct (quantized)
// geometry, up to reconstruction rounding at window boundaries.
func TestPSIBruteForceProperty(t *testing.T) {
	entries := genEntries(t, 60, 3)
	ix, err := BulkLoad(2, pager.NewMemStore(), entries)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lo0, lo1 := r.Float64()*80, r.Float64()*80
		spatial := geom.Box{{Lo: lo0, Hi: lo0 + 5 + r.Float64()*20}, {Lo: lo1, Hi: lo1 + 5 + r.Float64()*20}}
		start := r.Float64() * 45
		tw := geom.Interval{Lo: start, Hi: start + r.Float64()*5}
		var c stats.Counters
		got, err := ix.RangeSearch(spatial, tw, &c)
		if err != nil {
			return false
		}
		// Reconstructed segments must genuinely intersect the query.
		qExact := append(spatial.Clone(), tw)
		for _, m := range got {
			if m.Seg.OverlapTimeInBox(qExact).Empty() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// The paper's Section 2 conclusion: NSI outperforms PSI on range queries
// because parameter space loses locality. Reproduce it: the same data and
// queries cost more node reads under PSI.
func TestNSIOutperformsPSI(t *testing.T) {
	entries := genEntries(t, 300, 4)
	psiIx, err := BulkLoad(2, pager.NewMemStore(), entries)
	if err != nil {
		t.Fatal(err)
	}
	nsiIx, err := rtree.BulkLoad(rtree.DefaultConfig(), pager.NewMemStore(), entries)
	if err != nil {
		t.Fatal(err)
	}
	var cPSI, cNSI stats.Counters
	r := rand.New(rand.NewSource(5))
	for k := 0; k < 50; k++ {
		lo0, lo1 := r.Float64()*90, r.Float64()*90
		spatial := geom.Box{{Lo: lo0, Hi: lo0 + 8}, {Lo: lo1, Hi: lo1 + 8}}
		start := r.Float64() * 49
		tw := geom.Interval{Lo: start, Hi: start + 0.5}
		if _, err := psiIx.RangeSearch(spatial, tw, &cPSI); err != nil {
			t.Fatal(err)
		}
		if _, err := nsiIx.RangeSearch(spatial, tw, rtree.SearchOptions{}, &cNSI); err != nil {
			t.Fatal(err)
		}
	}
	p, n := cPSI.Snapshot().Reads(), cNSI.Snapshot().Reads()
	if p <= n {
		t.Errorf("PSI reads (%d) should exceed NSI reads (%d) — the loss-of-locality result", p, n)
	}
}
