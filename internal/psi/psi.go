// Package psi implements Parametric Space Indexing — the alternative to
// Native Space Indexing studied in the paper's prior work [14,15] and
// summarized in its Section 2: instead of indexing a motion segment by
// its space-time bounding box, the segment is indexed as a *point* in
// motion-parameter space (initial location and velocity) with its
// validity interval on the temporal axes.
//
// The paper reports that NSI outperforms PSI "because of the loss of
// locality associated with PSI": a spatial range query maps to a
// non-rectangular region of parameter space that interval arithmetic can
// only bound loosely, so more nodes are visited. This package exists to
// reproduce that comparison (see BenchmarkAblationPSIvsNSI); the dynamic
// query engines use NSI exclusively, as the paper does.
package psi

import (
	"fmt"

	"dynq/internal/geom"
	"dynq/internal/pager"
	"dynq/internal/rtree"
	"dynq/internal/stats"
)

// Index is a PSI index over linearly moving objects. Internally it is an
// R-tree whose "spatial" key dimensions are the motion parameters
// (x₁…x_d, v₁…v_d); each motion segment occupies a single parameter-space
// point for its validity interval.
type Index struct {
	dims int // native space dimensionality d
	tree *rtree.Tree
}

// New creates an empty PSI index for d-dimensional motion over the store.
func New(dims int, store pager.Store) (*Index, error) {
	cfg := rtree.DefaultConfig()
	cfg.Dims = 2 * dims // location + velocity parameters
	tree, err := rtree.New(cfg, store)
	if err != nil {
		return nil, err
	}
	return &Index{dims: dims, tree: tree}, nil
}

// BulkLoad builds a PSI index from motion segments.
func BulkLoad(dims int, store pager.Store, segs []rtree.LeafEntry) (*Index, error) {
	cfg := rtree.DefaultConfig()
	cfg.Dims = 2 * dims
	conv := make([]rtree.LeafEntry, len(segs))
	for i, e := range segs {
		p, err := toParam(dims, e.Seg)
		if err != nil {
			return nil, fmt.Errorf("segment %d: %w", i, err)
		}
		conv[i] = rtree.LeafEntry{ID: e.ID, Seg: p}
	}
	tree, err := rtree.BulkLoad(cfg, store, conv)
	if err != nil {
		return nil, err
	}
	return &Index{dims: dims, tree: tree}, nil
}

// Insert adds one motion segment.
func (ix *Index) Insert(id rtree.ObjectID, seg geom.Segment) error {
	p, err := toParam(ix.dims, seg)
	if err != nil {
		return err
	}
	return ix.tree.Insert(id, p)
}

// Size returns the number of indexed segments.
func (ix *Index) Size() int { return ix.tree.Size() }

// toParam converts a native-space motion segment into its parameter-space
// representation: a stationary "segment" at (location(t_l), velocity)
// over the same validity interval.
func toParam(dims int, seg geom.Segment) (geom.Segment, error) {
	if len(seg.Start) != dims || len(seg.End) != dims {
		return geom.Segment{}, fmt.Errorf("psi: segment has %d dims, index expects %d", len(seg.Start), dims)
	}
	v := seg.Velocity()
	p := make(geom.Point, 2*dims)
	copy(p, seg.Start)
	copy(p[dims:], v)
	return geom.Segment{T: seg.T, Start: p, End: p.Clone()}, nil
}

// fromParam reconstructs the native-space motion segment.
func fromParam(dims int, p geom.Segment) geom.Segment {
	start := geom.Point(p.Start[:dims]).Clone()
	vel := geom.Point(p.Start[dims:])
	dt := p.T.Length()
	end := make(geom.Point, dims)
	for i := range end {
		end[i] = start[i] + vel[i]*dt
	}
	return geom.Segment{T: p.T, Start: start, End: end}
}

// RangeSearch answers a spatio-temporal range query over the PSI index:
// all segments whose native-space trajectory passes through the spatial
// window during tw. Internal nodes are pruned with interval arithmetic —
// the positions reachable from a parameter box during the query window —
// and leaf entries are tested exactly after conversion back to native
// space. Costs are charged like the NSI engines (one read per node, one
// distance computation per entry examined).
func (ix *Index) RangeSearch(spatial geom.Box, tw geom.Interval, c *stats.Counters) ([]rtree.Match, error) {
	if len(spatial) != ix.dims {
		return nil, fmt.Errorf("psi: query has %d dims, index has %d", len(spatial), ix.dims)
	}
	if tw.Empty() {
		return nil, fmt.Errorf("psi: query time window is empty")
	}
	root, _, ok := ix.tree.Root()
	if !ok {
		return nil, nil
	}
	qExact := append(spatial.Clone(), tw)
	var out []rtree.Match
	if err := ix.visit(root, spatial, tw, qExact, c, &out); err != nil {
		return nil, err
	}
	c.AddResults(len(out))
	return out, nil
}

func (ix *Index) visit(id pager.PageID, spatial geom.Box, tw geom.Interval, qExact geom.Box, c *stats.Counters, out *[]rtree.Match) error {
	n, err := ix.tree.Load(id, c)
	if err != nil {
		return err
	}
	if n.Leaf() {
		for _, e := range n.Entries {
			c.AddDistanceComps(1)
			native := fromParam(ix.dims, e.Seg)
			if ov := native.OverlapTimeInBox(qExact); !ov.Empty() {
				*out = append(*out, rtree.Match{ID: e.ID, Seg: native, Overlap: ov})
			}
		}
		return nil
	}
	for _, ch := range n.Children {
		c.AddDistanceComps(1)
		if ix.boxMayMatch(ch.Box, spatial, tw) {
			if err := ix.visit(ch.ID, spatial, tw, qExact, c, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// boxMayMatch is the conservative parameter-space pruning test: given a
// box over (locations, velocities, start times, end times), could some
// contained segment be inside the spatial window at some time in tw?
//
// A segment's position is x(t) = x₀ + v·(t − t_l) for t ∈ [t_l, t_h].
// With x₀, v, t_l ranging over the box and t over tw clipped to the
// box's validity hull, interval arithmetic bounds the reachable
// positions; the box is pruned if the bound misses the window in any
// dimension. This looseness — the elapsed-time range couples with the
// velocity range — is precisely PSI's "loss of locality".
func (ix *Index) boxMayMatch(b geom.Box, spatial geom.Box, tw geom.Interval) bool {
	d := ix.dims
	ts := b[2*d]   // start-time range
	te := b[2*d+1] // end-time range
	// Segments alive during tw: start ≤ tw.Hi and end ≥ tw.Lo.
	if ts.Lo > tw.Hi || te.Hi < tw.Lo {
		return false
	}
	// Query times achievable inside the box's validity hull.
	qt := tw.Intersect(geom.Interval{Lo: ts.Lo, Hi: te.Hi})
	if qt.Empty() {
		return false
	}
	// Elapsed time t − t_l ranges over [max(0, qt.Lo − ts.Hi), qt.Hi − ts.Lo].
	dt := geom.Interval{Lo: qt.Lo - ts.Hi, Hi: qt.Hi - ts.Lo}
	if dt.Lo < 0 {
		dt.Lo = 0
	}
	if dt.Empty() {
		return false
	}
	for i := 0; i < d; i++ {
		x0 := b[i]
		v := b[d+i]
		reach := x0.Add(v.Mul(dt))
		if !reach.Overlaps(spatial[i]) {
			return false
		}
	}
	return true
}
