package cache

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCacheBasic(t *testing.T) {
	c := New[string]()
	if c.Len() != 0 {
		t.Error("new cache should be empty")
	}
	if _, ok := c.NextDeadline(); ok {
		t.Error("empty cache has no deadline")
	}
	c.Put(1, "a", 10)
	c.Put(2, "b", 5)
	c.Put(3, "c", 20)
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	if v, ok := c.Get(2); !ok || v != "b" {
		t.Errorf("get 2 = %q %v", v, ok)
	}
	if d, ok := c.NextDeadline(); !ok || d != 5 {
		t.Errorf("deadline = %g %v", d, ok)
	}
	// AdvanceBefore(5): nothing evicted (deadline exactly at now is kept).
	if ev := c.AdvanceBefore(5); len(ev) != 0 {
		t.Errorf("AdvanceBefore evicted at t=5: %v", ev)
	}
	// Advance(5): discarded at its disappearance time — b goes.
	ev := c.Advance(5)
	if len(ev) != 1 || ev[0] != "b" {
		t.Errorf("evicted = %v", ev)
	}
	if _, ok := c.Get(2); ok {
		t.Error("evicted object still retrievable")
	}
	// Advance far: everything goes, in deadline order.
	ev = c.Advance(100)
	if len(ev) != 2 || ev[0] != "a" || ev[1] != "c" {
		t.Errorf("final eviction = %v", ev)
	}
	if c.Len() != 0 {
		t.Error("cache should be empty")
	}
}

// TestCacheAdvanceBoundary pins the paper's Section 4.1 semantics: an
// object whose disappearance time equals the frame timestamp is
// discarded by Advance at that frame, while AdvanceBefore (closed-
// interval sampling) keeps it through the instant.
func TestCacheAdvanceBoundary(t *testing.T) {
	c := New[string]()
	c.Put(1, "edge", 30)

	if ev := c.AdvanceBefore(30); len(ev) != 0 {
		t.Fatalf("AdvanceBefore(30) evicted %v; deadline-at-now must survive", ev)
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("object gone after AdvanceBefore at its own deadline")
	}
	ev := c.Advance(30)
	if len(ev) != 1 || ev[0] != "edge" {
		t.Fatalf("Advance(30) = %v, want the object discarded at its disappearance time", ev)
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d after at-deadline discard", c.Len())
	}
}

func TestCacheUpsertExtendsDeadline(t *testing.T) {
	c := New[int]()
	c.Put(7, 1, 5)
	c.Put(7, 2, 50) // re-entered the view with a later deadline
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	if ev := c.Advance(10); len(ev) != 0 {
		t.Errorf("refreshed object evicted early: %v", ev)
	}
	if v, _ := c.Get(7); v != 2 {
		t.Errorf("value not replaced: %d", v)
	}
	// Shrinking the deadline also works.
	c.Put(7, 3, 1)
	if ev := c.Advance(2); len(ev) != 1 || ev[0] != 3 {
		t.Errorf("shrunk-deadline eviction = %v", ev)
	}
}

func TestCacheRemove(t *testing.T) {
	c := New[int]()
	c.Put(1, 10, 5)
	c.Put(2, 20, 6)
	if !c.Remove(1) {
		t.Error("remove existing should report true")
	}
	if c.Remove(1) {
		t.Error("double remove should report false")
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
	ev := c.Advance(100)
	if len(ev) != 1 || ev[0] != 20 {
		t.Errorf("eviction after remove = %v", ev)
	}
}

func TestCacheValues(t *testing.T) {
	c := New[int]()
	for i := 0; i < 5; i++ {
		c.Put(uint64(i), i*i, float64(i))
	}
	vs := c.Values()
	sort.Ints(vs)
	if len(vs) != 5 || vs[4] != 16 {
		t.Errorf("values = %v", vs)
	}
}

// Property: the cache behaves like a map with deadlines — after any
// sequence of puts/advances, membership matches the model and evictions
// come out in deadline order.
func TestCacheModelProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New[float64]()
		model := map[uint64]float64{} // id → deadline
		now := 0.0
		for step := 0; step < 200; step++ {
			if r.Intn(3) == 0 {
				// Advance time.
				now += r.Float64() * 3
				ev := c.Advance(now)
				// Model eviction.
				expect := 0
				for id, dl := range model {
					if dl <= now {
						delete(model, id)
						expect++
					}
				}
				if len(ev) != expect {
					return false
				}
				// Evictions sorted by deadline.
				if !sort.Float64sAreSorted(ev) {
					return false
				}
			} else {
				id := uint64(r.Intn(20))
				dl := now + r.Float64()*10
				c.Put(id, dl, dl)
				model[id] = dl
			}
			if c.Len() != len(model) {
				return false
			}
		}
		for id, dl := range model {
			v, ok := c.Get(id)
			if !ok || v != dl {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
