// Package cache implements the client-side result cache of Section 4.1:
// the database returns each object together with the time it will leave
// the observer's view, and the client keeps objects "keyed on their
// disappearance time, discarding them from the cache at that time". The
// server never re-sends an object while it remains visible, so this cache
// plus the incremental query stream reconstructs the full visible set at
// every frame.
package cache

import (
	"container/heap"
)

// Cache is a disappearance-time cache mapping object ids to values.
// Put upserts an object with its eviction deadline; Advance removes and
// returns everything whose deadline has passed. The zero Cache is not
// usable; call New.
type Cache[V any] struct {
	items map[uint64]*item[V]
	pq    expiryHeap[V]
}

type item[V any] struct {
	id        uint64
	value     V
	disappear float64
	index     int // heap index, -1 when removed
}

// New creates an empty cache.
func New[V any]() *Cache[V] {
	return &Cache[V]{items: make(map[uint64]*item[V])}
}

// Put inserts or refreshes an object. A later Put for the same id
// replaces the value and deadline (an object re-entering the view gets a
// new disappearance time).
func (c *Cache[V]) Put(id uint64, v V, disappear float64) {
	if it, ok := c.items[id]; ok {
		it.value = v
		it.disappear = disappear
		heap.Fix(&c.pq, it.index)
		return
	}
	it := &item[V]{id: id, value: v, disappear: disappear}
	c.items[id] = it
	heap.Push(&c.pq, it)
}

// Get returns the cached value for id, if present.
func (c *Cache[V]) Get(id uint64) (V, bool) {
	if it, ok := c.items[id]; ok {
		return it.value, true
	}
	var zero V
	return zero, false
}

// Advance evicts every object whose disappearance time has been reached
// (deadline <= now), returning the evicted values. The paper keys cached
// objects on disappearance time and discards them "at that time"
// (Section 4.1): an object disappearing exactly at now has left the view.
func (c *Cache[V]) Advance(now float64) []V {
	var evicted []V
	for c.pq.Len() > 0 && c.pq[0].disappear <= now {
		it := heap.Pop(&c.pq).(*item[V])
		delete(c.items, it.id)
		evicted = append(evicted, it.value)
	}
	return evicted
}

// AdvanceBefore evicts only objects whose disappearance time is strictly
// before now, keeping those that disappear exactly at now. Closed-interval
// sampling — counting the set visible AT an instant, where an episode
// ending exactly at the sample time still overlaps it — wants this
// variant rather than Advance's at-deadline discard.
func (c *Cache[V]) AdvanceBefore(now float64) []V {
	var evicted []V
	for c.pq.Len() > 0 && c.pq[0].disappear < now {
		it := heap.Pop(&c.pq).(*item[V])
		delete(c.items, it.id)
		evicted = append(evicted, it.value)
	}
	return evicted
}

// Remove deletes an object regardless of deadline, reporting whether it
// was present.
func (c *Cache[V]) Remove(id uint64) bool {
	it, ok := c.items[id]
	if !ok {
		return false
	}
	heap.Remove(&c.pq, it.index)
	delete(c.items, id)
	return true
}

// Len reports the number of cached objects.
func (c *Cache[V]) Len() int { return len(c.items) }

// NextDeadline returns the earliest disappearance time in the cache;
// ok is false when empty.
func (c *Cache[V]) NextDeadline() (t float64, ok bool) {
	if c.pq.Len() == 0 {
		return 0, false
	}
	return c.pq[0].disappear, true
}

// Values returns all cached values in unspecified order.
func (c *Cache[V]) Values() []V {
	out := make([]V, 0, len(c.items))
	for _, it := range c.items {
		out = append(out, it.value)
	}
	return out
}

type expiryHeap[V any] []*item[V]

func (h expiryHeap[V]) Len() int { return len(h) }
func (h expiryHeap[V]) Less(i, j int) bool {
	if h[i].disappear != h[j].disappear {
		return h[i].disappear < h[j].disappear
	}
	return h[i].id < h[j].id
}
func (h expiryHeap[V]) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *expiryHeap[V]) Push(x any) {
	it := x.(*item[V])
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *expiryHeap[V]) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	it.index = -1
	*h = old[:n-1]
	return it
}
