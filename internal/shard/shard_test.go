package shard

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"dynq/internal/geom"
	"dynq/internal/obs"
	"dynq/internal/pager"
	"dynq/internal/rtree"
)

func memStores(int) (pager.Store, error) { return pager.NewMemStore(), nil }

func testEntries(n int) []rtree.LeafEntry {
	r := rand.New(rand.NewSource(42))
	entries := make([]rtree.LeafEntry, n)
	for i := range entries {
		x, y := r.Float64()*80, r.Float64()*80
		t0 := r.Float64() * 8
		entries[i] = rtree.LeafEntry{
			ID: rtree.ObjectID(i),
			Seg: geom.Segment{
				T:     geom.Interval{Lo: t0, Hi: t0 + 1 + r.Float64()},
				Start: geom.Point{x, y},
				End:   geom.Point{x + 1, y + 1},
			},
		}
	}
	return entries
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(rtree.DefaultConfig(), Options{Shards: 0}, memStores); err == nil {
		t.Fatal("Shards=0 accepted")
	}
	if _, err := New(rtree.DefaultConfig(), Options{Shards: 2, Workers: -1}, memStores); err == nil {
		t.Fatal("negative Workers accepted")
	}
	if _, err := New(rtree.DefaultConfig(), Options{Shards: 2, BufferPages: -1}, memStores); err == nil {
		t.Fatal("negative BufferPages accepted")
	}
}

func TestRoutingAndDistribution(t *testing.T) {
	e, err := New(rtree.DefaultConfig(), Options{Shards: 4, Workers: 2}, memStores)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Sequential ids must spread across shards (the point of the hash).
	hit := make([]int, 4)
	for id := 0; id < 1000; id++ {
		hit[e.ShardFor(rtree.ObjectID(id))]++
	}
	for i, n := range hit {
		if n < 100 {
			t.Fatalf("shard %d got only %d of 1000 sequential ids: %v", i, n, hit)
		}
	}

	entries := testEntries(200)
	for _, en := range entries {
		if err := e.Insert(en); err != nil {
			t.Fatal(err)
		}
	}
	if e.Size() != len(entries) {
		t.Fatalf("Size=%d after %d inserts", e.Size(), len(entries))
	}
	// Every segment must live on its ShardFor shard.
	for i := 0; i < e.Shards(); i++ {
		sh := e.Shard(i)
		if sh.Tree.Size() == 0 {
			t.Fatalf("shard %d is empty", i)
		}
	}

	// Delete routes to the owner shard.
	en := entries[17]
	if err := e.Delete(en.ID, en.Seg.T.Lo); err != nil {
		t.Fatal(err)
	}
	if e.Size() != len(entries)-1 {
		t.Fatalf("Size=%d after delete", e.Size())
	}
	if err := e.Delete(en.ID, en.Seg.T.Lo); !errors.Is(err, rtree.ErrNotFound) {
		t.Fatalf("second delete: %v", err)
	}
}

func TestBulkLoadMatchesInserts(t *testing.T) {
	entries := testEntries(300)
	bulk, err := New(rtree.DefaultConfig(), Options{Shards: 3, Workers: 2}, memStores)
	if err != nil {
		t.Fatal(err)
	}
	defer bulk.Close()
	if err := bulk.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	if bulk.Size() != len(entries) {
		t.Fatalf("Size=%d after bulk load of %d", bulk.Size(), len(entries))
	}
	if err := bulk.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := bulk.BulkLoad(entries); err == nil {
		t.Fatal("BulkLoad into non-empty engine accepted")
	}

	inc, err := New(rtree.DefaultConfig(), Options{Shards: 3, Workers: 2}, memStores)
	if err != nil {
		t.Fatal(err)
	}
	defer inc.Close()
	for _, en := range entries {
		if err := inc.Insert(en); err != nil {
			t.Fatal(err)
		}
	}

	ctx := context.Background()
	window := geom.Box{{Lo: 10, Hi: 50}, {Lo: 10, Hi: 50}}
	tw := geom.Interval{Lo: 2, Hi: 4}
	a, err := bulk.Snapshot(ctx, window, tw, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := inc.Snapshot(ctx, window, tw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("bulk-loaded and insert-built engines disagree: %d vs %d matches", len(a), len(b))
	}
}

func TestSnapshotLimitAndCancel(t *testing.T) {
	e, err := New(rtree.DefaultConfig(), Options{Shards: 3, Workers: 2}, memStores)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.BulkLoad(testEntries(300)); err != nil {
		t.Fatal(err)
	}
	window := geom.Box{{Lo: 0, Hi: 80}, {Lo: 0, Hi: 80}}
	tw := geom.Interval{Lo: 0, Hi: 10}

	all, err := e.Snapshot(context.Background(), window, tw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 10 {
		t.Fatalf("expected a populous window, got %d matches", len(all))
	}
	limited, err := e.Snapshot(context.Background(), window, tw, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 7 {
		t.Fatalf("limit 7 returned %d matches", len(limited))
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Snapshot(ctx, window, tw, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled snapshot: %v", err)
	}
	if _, err := e.KNN(ctx, geom.Point{40, 40}, 3, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled knn: %v", err)
	}
}

func TestCostAccounting(t *testing.T) {
	e, err := New(rtree.DefaultConfig(), Options{Shards: 4, Workers: 2}, memStores)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.BulkLoad(testEntries(400)); err != nil {
		t.Fatal(err)
	}
	e.ResetCost()
	if _, err := e.Snapshot(context.Background(), geom.Box{{Lo: 0, Hi: 80}, {Lo: 0, Hi: 80}}, geom.Interval{Lo: 0, Hi: 10}, 0); err != nil {
		t.Fatal(err)
	}
	total := e.CostSnapshot()
	if total.Reads() == 0 {
		t.Fatal("no reads counted")
	}
	var sum int64
	for i := 0; i < e.Shards(); i++ {
		sum += e.ShardCost(i).Reads()
	}
	if sum != total.Reads() {
		t.Fatalf("per-shard reads sum %d != aggregate %d", sum, total.Reads())
	}
}

func TestRegisterMetrics(t *testing.T) {
	e, err := New(rtree.DefaultConfig(), Options{Shards: 2, Workers: 2}, memStores)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.BulkLoad(testEntries(100)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Snapshot(context.Background(), geom.Box{{Lo: 0, Hi: 80}, {Lo: 0, Hi: 80}}, geom.Interval{Lo: 0, Hi: 10}, 0); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	e.Register(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`dynq_shards 2`,
		`dynq_shard_page_reads_total{shard="0"}`,
		`dynq_shard_page_reads_total{shard="1"}`,
		`dynq_shard_segments{shard="0"}`,
		`dynq_shard_task_seconds`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
}

func TestFanOutRecordsPerShardSpans(t *testing.T) {
	e, err := New(rtree.DefaultConfig(), Options{Shards: 4, Workers: 2}, memStores)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, en := range testEntries(300) {
		if err := e.Insert(en); err != nil {
			t.Fatal(err)
		}
	}

	// Without a trace in the context, no spans are recorded.
	tracer := obs.NewTracer(64)
	view := geom.Box{{Lo: 0, Hi: 80}, {Lo: 0, Hi: 80}}
	if _, err := e.Snapshot(context.Background(), view, geom.Interval{Lo: 0, Hi: 10}, 0); err != nil {
		t.Fatal(err)
	}
	if tracer.Len() != 0 {
		t.Fatalf("untraced query recorded %d spans", tracer.Len())
	}

	// With trace context + tracer armed, one child span per shard.
	tc := obs.NewTraceContext()
	ctx := obs.ContextWithTracer(obs.ContextWithTrace(context.Background(), tc), tracer)
	if _, err := e.Snapshot(ctx, view, geom.Interval{Lo: 0, Hi: 10}, 0); err != nil {
		t.Fatal(err)
	}
	spans := tracer.Trace(tc.TraceID.String())
	if len(spans) != e.Shards() {
		t.Fatalf("got %d spans, want %d", len(spans), e.Shards())
	}
	seen := make(map[int]bool)
	for _, s := range spans {
		if s.Op != "snapshot/shard" {
			t.Errorf("span op = %q", s.Op)
		}
		if s.ParentID != tc.SpanID.String() {
			t.Errorf("span parent = %q, want %s", s.ParentID, tc.SpanID)
		}
		if s.Shard < 0 || s.Shard >= e.Shards() || seen[s.Shard] {
			t.Errorf("bad or duplicate shard index %d", s.Shard)
		}
		seen[s.Shard] = true
		if len(s.Stages) != 3 || s.Stages[0].Stage != "pager" || s.Stages[1].Stage != "rtree" || s.Stages[2].Stage != "snapshot" {
			t.Errorf("shard %d stages = %+v", s.Shard, s.Stages)
		}
		if s.Stages[1].Delta.Reads() == 0 {
			t.Errorf("shard %d span shows no rtree reads", s.Shard)
		}
	}

	// KNN spans ride the same trace mechanism.
	if _, err := e.KNN(ctx, geom.Point{40, 40}, 5, 3); err != nil {
		t.Fatal(err)
	}
	knnSpans := 0
	for _, s := range tracer.Trace(tc.TraceID.String()) {
		if s.Op == "knn/shard" {
			knnSpans++
		}
	}
	if knnSpans != e.Shards() {
		t.Errorf("knn spans = %d, want %d", knnSpans, e.Shards())
	}
}
