package shard

import (
	"strconv"

	"dynq/internal/obs"
)

// Register exposes per-shard observability through a metric registry:
// cumulative cost-counter gauges (reads, distance computations, pruned
// nodes, results), segment-count and buffer gauges, and the engine-owned
// per-shard fan-out latency histograms. Idempotent per registry.
func (e *Engine) Register(reg *obs.Registry) {
	reg.SetHelp("dynq_shards", "Number of index partitions in the sharded engine.")
	reg.SetHelp("dynq_shard_page_reads_total", "Cumulative index node fetches, by shard.")
	reg.SetHelp("dynq_shard_distance_comps_total", "Cumulative geometric predicate evaluations, by shard.")
	reg.SetHelp("dynq_shard_pruned_nodes_total", "Index nodes skipped by a pruning rule, by shard.")
	reg.SetHelp("dynq_shard_results_total", "Objects returned, by shard.")
	reg.SetHelp("dynq_shard_segments", "Motion segments currently indexed, by shard.")
	reg.SetHelp("dynq_shard_buffer_hit_ratio", "Buffer pool hits / (hits + misses), by shard.")
	reg.SetHelp("dynq_shard_task_seconds", "Per-shard wall time of fanned-out query tasks.")

	reg.GaugeFunc("dynq_shards", func() float64 { return float64(len(e.shards)) })
	for i := range e.shards {
		sh := e.shards[i]
		l := obs.L("shard", strconv.Itoa(i))
		reg.GaugeFunc("dynq_shard_page_reads_total", func() float64 {
			return float64(sh.Counters.Snapshot().Reads())
		}, l)
		reg.GaugeFunc("dynq_shard_distance_comps_total", func() float64 {
			return float64(sh.Counters.Snapshot().DistanceComps)
		}, l)
		reg.GaugeFunc("dynq_shard_pruned_nodes_total", func() float64 {
			return float64(sh.Counters.Snapshot().PrunedNodes)
		}, l)
		reg.GaugeFunc("dynq_shard_results_total", func() float64 {
			return float64(sh.Counters.Snapshot().Results)
		}, l)
		reg.GaugeFunc("dynq_shard_segments", func() float64 {
			return float64(sh.Tree.Size())
		}, l)
		reg.GaugeFunc("dynq_shard_buffer_hit_ratio", func() float64 {
			p := sh.Tree.Pool()
			total := p.Hits() + p.Misses()
			if total == 0 {
				return 0
			}
			return float64(p.Hits()) / float64(total)
		}, l)
		reg.AttachHistogram("dynq_shard_task_seconds", e.latency[i], l)
	}
}
