package shard

import (
	"fmt"
	"sort"

	"dynq/internal/core"
	"dynq/internal/geom"
	"dynq/internal/trajectory"
)

// PDQ is a predictive dynamic query over a sharded engine: one core.PDQ
// cursor per shard, all registered on the same observer trajectory, merged
// through an appearance-time min-heap. Each per-shard stream delivers its
// results in order of appearance within a window, so taking the earliest
// buffered head across shards preserves the paper's "report each object
// once, in order of appearance" contract — an object lives in exactly one
// shard, so the merge can introduce no duplicates.
//
// Not safe for concurrent use by multiple goroutines; concurrent inserts
// to the engine are safe when the session was started with LiveUpdates.
type PDQ struct {
	e       *Engine
	cursors []*core.PDQ
	heads   []*core.Result // buffered head per shard; nil = needs refill
	done    []bool         // shard exhausted for the current window
	t0, t1  float64
	haveWin bool
	closed  bool
}

// NewPDQ starts one predictive cursor per shard over the trajectory.
func (e *Engine) NewPDQ(traj *trajectory.Trajectory, opts core.PDQOptions) (*PDQ, error) {
	p := &PDQ{
		e:       e,
		cursors: make([]*core.PDQ, len(e.shards)),
		heads:   make([]*core.Result, len(e.shards)),
		done:    make([]bool, len(e.shards)),
	}
	for i, sh := range e.shards {
		c, err := core.NewPDQ(sh.Tree, traj, opts, &sh.Counters)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.cursors[i] = c
	}
	return p, nil
}

// GetNext returns the next object becoming visible during [tStart, tEnd]
// across all shards, or nil when no further object appears in that
// window. Windows must advance monotonically, as for a single-tree PDQ.
func (p *PDQ) GetNext(tStart, tEnd float64) (*core.Result, error) {
	if p.closed {
		return nil, fmt.Errorf("shard: GetNext on closed PDQ")
	}
	if tEnd < tStart {
		return nil, fmt.Errorf("shard: GetNext window [%g,%g] is empty", tStart, tEnd)
	}
	if !p.haveWin || tStart != p.t0 || tEnd != p.t1 {
		// New window: shards exhausted for the previous window may have
		// more to deliver in this one.
		for i := range p.done {
			p.done[i] = false
		}
		p.t0, p.t1, p.haveWin = tStart, tEnd, true
	}
	if err := p.refill(); err != nil {
		return nil, err
	}
	best := -1
	for i, h := range p.heads {
		if h == nil {
			continue
		}
		if best == -1 || headLess(h, p.heads[best]) {
			best = i
		}
	}
	if best == -1 {
		return nil, nil
	}
	r := p.heads[best]
	p.heads[best] = nil
	return r, nil
}

// refill pulls a head from every shard cursor that has none, fanning the
// pulls out in parallel (the heavy per-window seeding touches every
// shard; subsequent refills touch only the shard just popped). Buffered
// heads whose visibility ended before the window are dropped and
// re-pulled, mirroring the expiry rule of core.PDQ.GetNext.
func (p *PDQ) refill() error {
	var idx []int
	for i := range p.cursors {
		if p.heads[i] != nil && p.heads[i].Disappear < p.t0 {
			p.heads[i] = nil // expired between windows
		}
		if p.heads[i] == nil && !p.done[i] {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return nil
	}
	fns := make([]func() error, len(idx))
	for j, i := range idx {
		i := i
		fns[j] = func() error {
			for {
				r, err := p.cursors[i].GetNext(p.t0, p.t1)
				if err != nil {
					return err
				}
				if r == nil {
					p.done[i] = true
					return nil
				}
				if r.Disappear < p.t0 {
					continue
				}
				p.heads[i] = r
				return nil
			}
		}
	}
	return p.e.run(fns)
}

// headLess orders buffered heads by appearance time, ties broken by
// object id then segment start, matching the single-tree heap's total
// order closely enough to be deterministic.
func headLess(a, b *core.Result) bool {
	if a.Appear != b.Appear {
		return a.Appear < b.Appear
	}
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	return a.Seg.T.Lo < b.Seg.T.Lo
}

// Drain pulls every remaining result visible during [tStart, tEnd].
func (p *PDQ) Drain(tStart, tEnd float64) ([]core.Result, error) {
	var out []core.Result
	for {
		r, err := p.GetNext(tStart, tEnd)
		if err != nil {
			return out, err
		}
		if r == nil {
			return out, nil
		}
		out = append(out, *r)
	}
}

// Pending sums the queued items across shard cursors (diagnostics).
func (p *PDQ) Pending() int {
	n := 0
	for _, c := range p.cursors {
		if c != nil {
			n += c.Pending()
		}
	}
	return n
}

// Close releases every per-shard cursor (and live-update subscription).
func (p *PDQ) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for _, c := range p.cursors {
		if c != nil {
			c.Close()
		}
	}
}

// NPDQ is a non-predictive dynamic query over a sharded engine: one
// core.NPDQ session per shard, each remembering its own previous snapshot
// for the discardability pruning of Lemma 1. Not safe for concurrent Next
// calls.
type NPDQ struct {
	e        *Engine
	sessions []*core.NPDQ
}

// NewNPDQ starts one non-predictive session per shard.
func (e *Engine) NewNPDQ(opts core.NPDQOptions) *NPDQ {
	n := &NPDQ{e: e, sessions: make([]*core.NPDQ, len(e.shards))}
	for i, sh := range e.shards {
		n.sessions[i] = core.NewNPDQ(sh.Tree, opts, &sh.Counters)
	}
	return n
}

// Next evaluates the snapshot on every shard in parallel and returns the
// union of the per-shard incremental answers, sorted by appearance time
// (ties by object id, then segment start) for a deterministic merge.
func (n *NPDQ) Next(window geom.Box, tw geom.Interval) ([]core.Result, error) {
	parts := make([][]core.Result, len(n.sessions))
	err := n.e.fanOut(func(i int, _ *Shard) error {
		rs, err := n.sessions[i].Next(window, tw)
		parts[i] = rs
		return err
	})
	if err != nil {
		return nil, err
	}
	return mergeResults(parts), nil
}

// Reset forgets every shard's previous snapshot (observer teleported).
func (n *NPDQ) Reset() {
	for _, s := range n.sessions {
		s.Reset()
	}
}

// Adaptive is an adaptive dynamic query over a sharded engine: one
// core.Adaptive session per shard, fed the same frames. Each shard
// predicts and hands off independently. Not safe for concurrent use.
type Adaptive struct {
	e        *Engine
	sessions []*core.Adaptive
}

// NewAdaptive starts one adaptive session per shard.
func (e *Engine) NewAdaptive(opts core.AdaptiveOptions) (*Adaptive, error) {
	a := &Adaptive{e: e, sessions: make([]*core.Adaptive, len(e.shards))}
	for i, sh := range e.shards {
		s, err := core.NewAdaptive(sh.Tree, opts, &sh.Counters)
		if err != nil {
			a.Close()
			return nil, err
		}
		a.sessions[i] = s
	}
	return a, nil
}

// Frame reports the observer's view to every shard in parallel and
// returns the union of newly visible objects, sorted by appearance.
func (a *Adaptive) Frame(window geom.Box, tw geom.Interval) ([]core.Result, error) {
	parts := make([][]core.Result, len(a.sessions))
	err := a.e.fanOut(func(i int, _ *Shard) error {
		rs, err := a.sessions[i].Frame(window, tw)
		parts[i] = rs
		return err
	})
	if err != nil {
		return nil, err
	}
	return mergeResults(parts), nil
}

// Predictive reports whether every shard session is currently running on
// a predicted trajectory.
func (a *Adaptive) Predictive() bool {
	for _, s := range a.sessions {
		if s == nil || s.Mode() != core.ModePredictive {
			return false
		}
	}
	return true
}

// Switches sums the PDQ↔NPDQ hand-offs across shards.
func (a *Adaptive) Switches() int {
	n := 0
	for _, s := range a.sessions {
		if s != nil {
			n += s.Switches()
		}
	}
	return n
}

// Close releases every shard session.
func (a *Adaptive) Close() {
	for _, s := range a.sessions {
		if s != nil {
			s.Close()
		}
	}
}

// mergeResults flattens per-shard result batches and sorts them by
// appearance time (ties by id, then segment start).
func mergeResults(parts [][]core.Result) []core.Result {
	var out []core.Result
	for _, rs := range parts {
		out = append(out, rs...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Appear != b.Appear {
			return a.Appear < b.Appear
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.Seg.T.Lo < b.Seg.T.Lo
	})
	return out
}
