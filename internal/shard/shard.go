// Package shard implements a hash-partitioned parallel query engine over
// N independent NSI R-trees. Motion segments are partitioned by ObjectID
// (a splitmix64 hash, so consecutive ids spread evenly), each shard owns
// its own pager store, buffer pool and cost counters, and queries fan out
// across a bounded worker pool shared by every operation on the engine.
//
// Point operations (Insert, Delete) route to one shard. Set queries
// (Snapshot, KNN, distance joins) run per shard in parallel and merge
// deterministically. Dynamic-query sessions (PDQ, NPDQ, adaptive) drive
// one per-shard cursor each and merge their streams through an
// appearance-time min-heap, preserving the paper's "each object reported
// once, in order of appearance" contract: an object lives in exactly one
// shard, so cross-shard duplicates are impossible, and a k-way merge of
// per-shard appearance-ordered streams is appearance-ordered.
//
// The partitioning is the classic scale-out step of distributed
// moving-object systems (Zhu & Yu's distributed continuous range queries;
// Keller et al.'s scalable dynamic spatial database): object-hash
// placement keeps every update a single-shard operation, at the cost of
// every query visiting all shards — the right trade for the paper's
// workload, where updates vastly outnumber query sessions.
package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"dynq/internal/geom"
	"dynq/internal/obs"
	"dynq/internal/pager"
	"dynq/internal/rtree"
	"dynq/internal/stats"
)

// Options configure an engine.
type Options struct {
	// Shards is the number of partitions (>= 1).
	Shards int
	// Workers bounds the number of per-shard tasks running concurrently
	// across ALL queries on the engine (default GOMAXPROCS).
	Workers int
	// BufferPages gives every shard its own LRU page buffer of this
	// capacity (0 = bufferless pass-through, the paper's setting).
	BufferPages int
}

func (o Options) withDefaults() (Options, error) {
	if o.Shards < 1 {
		return o, fmt.Errorf("shard: Shards must be >= 1, got %d", o.Shards)
	}
	if o.Workers < 0 {
		return o, fmt.Errorf("shard: Workers must be >= 0, got %d", o.Workers)
	}
	if o.BufferPages < 0 {
		return o, fmt.Errorf("shard: BufferPages must be >= 0, got %d", o.BufferPages)
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o, nil
}

// Shard is one partition: an R-tree over its own store, with its own cost
// counters so per-shard load is observable.
//
// mu serializes writers per shard and isolates readers from half-applied
// write batches: point writes and ApplyBatch sub-batches hold it
// exclusively, single-shard query tasks hold it shared. Because every
// writer holds at most ONE shard lock at a time and multi-shard readers
// (self joins) acquire theirs in ascending shard order, no lock cycle
// can form — which is what lets a write on shard 3 proceed while reads
// drain shard 7.
type Shard struct {
	Tree     *rtree.Tree
	Counters stats.Counters
	store    pager.Store
	mu       sync.RWMutex
}

// Engine is the sharded query engine. All methods are safe for concurrent
// use except where a session type documents otherwise; Close must not
// race with in-flight queries.
type Engine struct {
	cfg    rtree.Config
	opts   Options
	shards []*Shard

	tasks   chan func()
	workers sync.WaitGroup

	// latency records per-shard fan-out task wall time (one observation
	// per shard per fanned-out query), for the per-shard histograms the
	// server registry exposes.
	latency []*obs.Histogram
}

// New builds an engine of opts.Shards empty partitions. storeFor supplies
// the page store of shard i (memory or file-backed); on error, stores
// already created are closed.
func New(cfg rtree.Config, opts Options, storeFor func(i int) (pager.Store, error)) (*Engine, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		opts:    opts,
		shards:  make([]*Shard, opts.Shards),
		latency: make([]*obs.Histogram, opts.Shards),
		tasks:   make(chan func()),
	}
	for i := range e.shards {
		store, err := storeFor(i)
		if err != nil {
			e.closeStores()
			return nil, err
		}
		tree, err := rtree.NewBuffered(cfg, store, opts.BufferPages)
		if err != nil {
			store.Close()
			e.closeStores()
			return nil, err
		}
		sh := &Shard{Tree: tree, store: store}
		tree.SetCounters(&sh.Counters)
		e.shards[i] = sh
		e.latency[i] = obs.NewHistogram(nil)
	}
	e.startWorkers()
	return e, nil
}

// NewFromShards builds an engine over pre-built trees and their stores —
// the recovery path, where each shard's tree was restored from its own
// verified file rather than created empty. trees[i] must already read
// through stores[i]; opts.Shards must match len(trees). The engine wires
// each shard's counters into its tree, exactly as New does.
func NewFromShards(cfg rtree.Config, opts Options, trees []*rtree.Tree, stores []pager.Store) (*Engine, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(trees) != opts.Shards || len(stores) != opts.Shards {
		return nil, fmt.Errorf("shard: NewFromShards got %d trees and %d stores for %d shards",
			len(trees), len(stores), opts.Shards)
	}
	e := &Engine{
		cfg:     cfg,
		opts:    opts,
		shards:  make([]*Shard, opts.Shards),
		latency: make([]*obs.Histogram, opts.Shards),
		tasks:   make(chan func()),
	}
	for i := range e.shards {
		sh := &Shard{Tree: trees[i], store: stores[i]}
		trees[i].SetCounters(&sh.Counters)
		e.shards[i] = sh
		e.latency[i] = obs.NewHistogram(nil)
	}
	e.startWorkers()
	return e, nil
}

func (e *Engine) startWorkers() {
	e.workers.Add(e.opts.Workers)
	for w := 0; w < e.opts.Workers; w++ {
		go func() {
			defer e.workers.Done()
			for fn := range e.tasks {
				fn()
			}
		}()
	}
}

// Config returns the shared tree configuration.
func (e *Engine) Config() rtree.Config { return e.cfg }

// Shards returns the number of partitions.
func (e *Engine) Shards() int { return len(e.shards) }

// Workers returns the worker-pool bound.
func (e *Engine) Workers() int { return e.opts.Workers }

// Shard exposes partition i (tests, metrics).
func (e *Engine) Shard(i int) *Shard { return e.shards[i] }

// Store exposes the shard's page store — the recovery and checkpoint
// paths need it to stage metadata and commit pages per shard.
func (sh *Shard) Store() pager.Store { return sh.store }

// mix is the splitmix64 finalizer: object ids are often sequential, and
// a plain modulo would put entire id ranges on one shard.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Place returns the partition owning an object under a given shard
// count. Placement is a pure function of (id, shards) — it must be, so
// a reopened database routes every object exactly as the run that wrote
// it, and a WAL replay can detect records logged under a different
// shard count.
func Place(id rtree.ObjectID, shards int) int {
	return int(mix(uint64(id)) % uint64(shards))
}

// ShardFor returns the partition owning an object's segments.
func (e *Engine) ShardFor(id rtree.ObjectID) int {
	return Place(id, len(e.shards))
}

// Insert routes one motion update to its owner shard, locking only that
// shard: writes on one partition run concurrently with queries and
// writes on every other.
func (e *Engine) Insert(en rtree.LeafEntry) error {
	sh := e.shards[e.ShardFor(en.ID)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.Tree.Insert(en.ID, en.Seg)
}

// Delete removes the segment of an object starting at t0 from its owner
// shard. It returns rtree.ErrNotFound when no such segment is indexed.
func (e *Engine) Delete(id rtree.ObjectID, t0 float64) error {
	sh := e.shards[e.ShardFor(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.Tree.Delete(id, t0)
}

// Update is one element of an ApplyBatch write batch: an insertion, or
// (with Delete set) the removal of the object's segment starting at T0.
type Update struct {
	ID     rtree.ObjectID
	Seg    geom.Segment
	T0     float64
	Delete bool
}

// ApplyBatch partitions a write batch by owner shard and applies every
// per-shard sub-batch in parallel, each under ONE shard-lock
// acquisition: relative order within a shard is preserved (an object's
// delete-then-reinsert works, because both route to the same shard), and
// readers of a shard never observe a half-applied sub-batch. Cross-shard
// visibility is not atomic — shards finish independently.
//
// A delete of a missing segment fails its shard's sub-batch with
// rtree.ErrNotFound; the first error in shard order is returned, and
// other shards may have applied their sub-batches fully.
func (e *Engine) ApplyBatch(updates []Update) error {
	parts := make([][]Update, len(e.shards))
	for _, u := range updates {
		i := e.ShardFor(u.ID)
		parts[i] = append(parts[i], u)
	}
	return e.fanOut(func(i int, sh *Shard) error {
		if len(parts[i]) == 0 {
			return nil
		}
		sh.mu.Lock()
		defer sh.mu.Unlock()
		for _, u := range parts[i] {
			if u.Delete {
				if err := sh.Tree.Delete(u.ID, u.T0); err != nil {
					return err
				}
				continue
			}
			if err := sh.Tree.Insert(u.ID, u.Seg); err != nil {
				return err
			}
		}
		return nil
	})
}

// UpdateShards runs fn once per shard where touched[i] is true, on the
// worker pool, each invocation holding that shard's exclusive lock and
// timed into its latency histogram. It is the primitive behind
// WAL-logged batch writes: the caller partitions the batch itself and
// must append each sub-batch to the shard's log under the SAME lock
// acquisition that applies it, so the log's record order matches the
// order mutations became visible on that shard. Like ApplyBatch,
// cross-shard visibility is not atomic; the first error in shard order
// is returned and other shards may have completed.
func (e *Engine) UpdateShards(touched []bool, fn func(i int, sh *Shard) error) error {
	fns := make([]func() error, 0, len(e.shards))
	for i := range e.shards {
		if i >= len(touched) || !touched[i] {
			continue
		}
		i := i
		fns = append(fns, func() error {
			sh := e.shards[i]
			start := time.Now()
			defer func() { e.latency[i].ObserveDuration(time.Since(start)) }()
			sh.mu.Lock()
			defer sh.mu.Unlock()
			return fn(i, sh)
		})
	}
	return e.run(fns)
}

// Size returns the total number of indexed segments.
func (e *Engine) Size() int {
	n := 0
	for _, sh := range e.shards {
		sh.mu.RLock()
		n += sh.Tree.Size()
		sh.mu.RUnlock()
	}
	return n
}

// BulkLoad partitions the entry set by owner shard and bulk-loads every
// shard in parallel at the configured fill factor, replacing current
// contents. Every shard must be empty.
func (e *Engine) BulkLoad(entries []rtree.LeafEntry) error {
	for _, sh := range e.shards {
		if sh.Tree.Size() != 0 {
			return fmt.Errorf("shard: BulkLoad requires empty shards")
		}
	}
	parts := make([][]rtree.LeafEntry, len(e.shards))
	for _, en := range entries {
		i := e.ShardFor(en.ID)
		parts[i] = append(parts[i], en)
	}
	return e.fanOut(func(i int, sh *Shard) error {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		tree, err := rtree.BulkLoad(e.cfg, sh.store, parts[i])
		if err != nil {
			return err
		}
		if e.opts.BufferPages > 0 {
			if err := tree.UseBuffer(e.opts.BufferPages); err != nil {
				return err
			}
		}
		tree.SetCounters(&sh.Counters)
		sh.Tree = tree
		return nil
	})
}

// CostSnapshot returns the counters summed across shards.
func (e *Engine) CostSnapshot() stats.Snapshot {
	var sum stats.Snapshot
	for _, sh := range e.shards {
		sum = sum.Add(sh.Counters.Snapshot())
	}
	return sum
}

// ShardCost returns shard i's own counter snapshot.
func (e *Engine) ShardCost(i int) stats.Snapshot { return e.shards[i].Counters.Snapshot() }

// ResetCost zeroes every shard's counters.
func (e *Engine) ResetCost() {
	for _, sh := range e.shards {
		sh.Counters.Reset()
	}
}

// Stats walks every shard and returns the per-shard index shapes, in
// shard order.
func (e *Engine) Stats() ([]rtree.TreeStats, error) {
	out := make([]rtree.TreeStats, len(e.shards))
	err := e.fanOut(func(i int, sh *Shard) error {
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		st, err := sh.Tree.Stats()
		out[i] = st
		return err
	})
	return out, err
}

// Validate checks every shard's structural invariants.
func (e *Engine) Validate() error {
	return e.fanOut(func(_ int, sh *Shard) error {
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.Tree.Validate()
	})
}

// Close shuts the worker pool down and closes every shard's store.
func (e *Engine) Close() error {
	e.Shutdown()
	return e.closeStores()
}

// Shutdown stops the worker pool without touching the stores — the
// crash-simulation path, where the caller has already abandoned the
// stores mid-write and a clean Close would mask the simulated failure.
// The engine must not be used afterwards.
func (e *Engine) Shutdown() {
	close(e.tasks)
	e.workers.Wait()
}

func (e *Engine) closeStores() error {
	var errs []error
	for _, sh := range e.shards {
		if sh != nil {
			errs = append(errs, sh.store.Close())
		}
	}
	return errors.Join(errs...)
}

// run executes the given tasks on the bounded worker pool and blocks
// until all finish, returning the first error in task order. It is the
// fan-out primitive behind every parallel operation.
func (e *Engine) run(fns []func() error) error {
	errs := make([]error, len(fns))
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for i, fn := range fns {
		e.tasks <- func() {
			defer wg.Done()
			errs[i] = fn()
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// fanOut runs fn once per shard on the worker pool, timing each task into
// the shard's latency histogram.
func (e *Engine) fanOut(fn func(i int, sh *Shard) error) error {
	fns := make([]func() error, len(e.shards))
	for i := range e.shards {
		i := i
		fns[i] = func() error {
			start := time.Now()
			defer func() { e.latency[i].ObserveDuration(time.Since(start)) }()
			return fn(i, e.shards[i])
		}
	}
	return e.run(fns)
}

// fanOutTraced is fanOut plus trace recording. When the context carries
// both a trace context and a tracer (the netq server arms both per
// request via obs.ContextWithTrace/ContextWithTracer), every shard task
// records one child span — parented to the caller's span, tagged with
// the shard index — holding the shard's per-stage (pager/rtree/engine)
// cost deltas measured around the task. Shard counters are shared by all
// queries on the shard, so under concurrency a span's delta may include
// work charged by overlapping operations (same caveat as the server-wide
// op spans). Without a trace in the context it degrades to plain fanOut.
func (e *Engine) fanOutTraced(ctx context.Context, op, engine string, fn func(i int, sh *Shard) error) error {
	tc, okTrace := obs.TraceFromContext(ctx)
	tracer, okTracer := obs.TracerFromContext(ctx)
	if !okTrace || !okTracer {
		return e.fanOut(fn)
	}
	fns := make([]func() error, len(e.shards))
	for i := range e.shards {
		i := i
		fns[i] = func() error {
			sh := e.shards[i]
			start := time.Now()
			before := sh.Counters.Snapshot()
			err := fn(i, sh)
			wall := time.Since(start)
			e.latency[i].ObserveDuration(wall)
			delta := sh.Counters.Snapshot().Sub(before)
			span := obs.Span{
				Op:      op,
				Shard:   i,
				Start:   start,
				WallNS:  wall.Nanoseconds(),
				Results: int(delta.Results),
				Stages:  obs.Stages(delta, engine),
			}
			if err != nil {
				span.Err = err.Error()
			}
			tc.Child().Annotate(&span)
			tracer.Record(span)
			return err
		}
	}
	return e.run(fns)
}
